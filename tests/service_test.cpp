/// \file service_test.cpp
/// The concurrent tuning service (serve::TuningService): stress tests
/// proving that results under 8+ hammering threads are bit-identical to a
/// single-threaded reference run — including across a mid-stream hot
/// reload — plus the reload failure contract (corrupt / truncated /
/// wrong-search-space / missing artifacts leave the old model serving),
/// admission-queue accounting invariants, and the common/sync.hpp
/// primitives. Worker threads never call gtest assertions; they record
/// into pre-sized slots and the main thread verifies after join (keeps
/// the suite clean under ThreadSanitizer, which CI runs it with).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/sync.hpp"
#include "serve/tuning_service.hpp"
#include "workloads/suite.hpp"

namespace pnp {
namespace {

constexpr int kThreads = 8;

// --- common/sync.hpp primitives ---------------------------------------------

TEST(StripedSharedMutex, MapsKeysToValidStripesDeterministically) {
  StripedSharedMutex m(7);
  EXPECT_EQ(m.stripes(), 7u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const std::size_t s = m.stripe_of(k);
    EXPECT_LT(s, 7u);
    EXPECT_EQ(s, m.stripe_of(k));  // stable
    EXPECT_EQ(&m.for_key(k), &m.at(s));
  }
  // Dense keys must not all collapse onto one stripe.
  std::vector<int> hist(7, 0);
  for (std::uint64_t k = 0; k < 70; ++k) ++hist[m.stripe_of(k)];
  int nonzero = 0;
  for (int h : hist) nonzero += h > 0;
  EXPECT_GT(nonzero, 3);
  EXPECT_THROW(StripedSharedMutex(0), Error);
  EXPECT_THROW(m.at(7), Error);
}

TEST(VersionedSnapshot, PublishBumpsVersionAndKeepsOldAlive) {
  VersionedSnapshot<int> holder;
  EXPECT_EQ(holder.version(), 0u);
  EXPECT_EQ(holder.current().value, nullptr);
  EXPECT_EQ(holder.publish(std::make_shared<int>(10)), 1u);
  const auto old = holder.current();
  EXPECT_EQ(*old.value, 10);
  EXPECT_EQ(old.version, 1u);
  EXPECT_EQ(holder.publish(std::make_shared<int>(20)), 2u);
  // The old ref is still alive and unchanged; new readers see v2.
  EXPECT_EQ(*old.value, 10);
  EXPECT_EQ(*holder.current().value, 20);
  EXPECT_EQ(holder.version(), 2u);
  EXPECT_THROW(holder.publish(nullptr), Error);
}

// --- trained-service fixture -------------------------------------------------

/// A small serving world shared by every test: 10 Haswell suite regions,
/// three saved power artifacts (scalar-cap, so power_at works) that
/// differ in training length — v1/v2 reload material — plus an EDP
/// artifact and a Skylake-trained artifact for the negative paths.
class ServiceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto machine = hw::MachineModel::haswell();
    sim_ = new sim::Simulator(machine);
    auto regions = workloads::Suite::instance().all_regions();
    regions.resize(10);
    db_ = new core::MeasurementDb(
        *sim_, core::SearchSpace::for_machine(machine), regions);

    path_a_ = save_power_artifact(*db_, 3, "service_model_a.pnp");
    path_b_ = save_power_artifact(*db_, 5, "service_model_b.pnp");
    path_edp_ = ::testing::TempDir() + "service_model_edp.pnp";
    {
      core::PnpTuner t(*db_, options(3));
      t.train_edp_scenario(all_regions(*db_));
      t.save(path_edp_);
    }

    const auto sky = hw::MachineModel::skylake();
    sky_sim_ = new sim::Simulator(sky);
    auto sky_regions = workloads::Suite::instance().all_regions();
    sky_regions.resize(10);
    sky_db_ = new core::MeasurementDb(
        *sky_sim_, core::SearchSpace::for_machine(sky), sky_regions);
    path_sky_ = save_power_artifact(*sky_db_, 3, "service_model_sky.pnp");
  }

  static void TearDownTestSuite() {
    delete db_;
    delete sim_;
    delete sky_db_;
    delete sky_sim_;
    db_ = nullptr;
    sim_ = nullptr;
    sky_db_ = nullptr;
    sky_sim_ = nullptr;
  }

  /// Scalar-cap options so one model serves both `power` and `power_at`.
  static core::PnpOptions options(int epochs) {
    core::PnpOptions opt;
    opt.cap_onehot = false;
    opt.trainer.max_epochs = epochs;
    opt.trainer.min_loss = 0.0;
    return opt;
  }

  static std::vector<int> all_regions(const core::MeasurementDb& db) {
    std::vector<int> r;
    for (int i = 0; i < db.num_regions(); ++i) r.push_back(i);
    return r;
  }

  static std::string save_power_artifact(const core::MeasurementDb& db,
                                         int epochs, const char* name) {
    core::PnpTuner t(db, options(epochs));
    t.train_power_scenario(all_regions(db));
    const std::string path = ::testing::TempDir() + name;
    t.save(path);
    return path;
  }

  /// A deterministic mixed request set over the power model: cap-index
  /// queries, arbitrary-watt queries, region duplicates — `n` requests
  /// from a tiny LCG so every build produces the same set.
  static std::vector<serve::TuneRequest> mixed_power_requests(int n) {
    std::vector<serve::TuneRequest> reqs;
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    const auto next = [&s] {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      return static_cast<std::uint32_t>(s >> 33);
    };
    const int regions = db_->num_regions();
    const int caps = db_->num_caps();
    for (int i = 0; i < n; ++i) {
      const int region = static_cast<int>(next() % regions);
      if (i % 3 == 2) {
        // Unseen cap in watts, spread over [30, 90) W.
        const double w = 30.0 + static_cast<double>(next() % 600) / 10.0;
        reqs.push_back(serve::TuneRequest::power_at(region, w));
      } else {
        reqs.push_back(
            serve::TuneRequest::power(region, static_cast<int>(next() % caps)));
      }
    }
    return reqs;
  }

  /// Single-threaded reference answers for a request set, computed
  /// through a freshly loaded PnpTuner — a fully independent code path
  /// from the service (no cache, no batching, no threads).
  static std::vector<serve::TuneResult> reference_answers(
      const std::string& artifact, std::uint64_t version,
      const std::vector<serve::TuneRequest>& reqs) {
    const core::PnpTuner ref = core::PnpTuner::load(*db_, artifact);
    std::vector<serve::TuneResult> out;
    out.reserve(reqs.size());
    for (const auto& q : reqs) {
      serve::TuneResult r;
      r.model_version = version;
      switch (q.kind) {
        case serve::TuneRequest::Kind::Power:
          r.config = ref.predict_power(q.region, q.cap_index);
          r.cap_index = q.cap_index;
          break;
        case serve::TuneRequest::Kind::PowerAt:
          r.config = ref.predict_power_at(q.region, q.cap_w);
          r.cap_index = -1;
          break;
        case serve::TuneRequest::Kind::Edp: {
          const auto jc = ref.predict_edp(q.region);
          r.config = jc.cfg;
          r.cap_index = jc.cap_index;
          break;
        }
      }
      out.push_back(r);
    }
    return out;
  }

  /// Hammer `service` with `reqs` from kThreads workers pulling a shared
  /// atomic index; results land in request order. Workers record, the
  /// caller asserts.
  static std::vector<serve::TuneResult> hammer(
      serve::TuningService& service,
      const std::vector<serve::TuneRequest>& reqs) {
    std::vector<serve::TuneResult> results(reqs.size());
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> team;
    team.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      team.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= reqs.size()) return;
          results[i] = service.tune(reqs[i]);
        }
      });
    for (auto& th : team) th.join();
    return results;
  }

  static void expect_result_eq(const serve::TuneResult& got,
                               const serve::TuneResult& want, std::size_t i) {
    EXPECT_EQ(got.config, want.config) << "request " << i;
    EXPECT_EQ(got.cap_index, want.cap_index) << "request " << i;
    EXPECT_EQ(got.model_version, want.model_version) << "request " << i;
  }

  static sim::Simulator* sim_;
  static core::MeasurementDb* db_;
  static sim::Simulator* sky_sim_;
  static core::MeasurementDb* sky_db_;
  static std::string path_a_, path_b_, path_edp_, path_sky_;
};

sim::Simulator* ServiceFixture::sim_ = nullptr;
core::MeasurementDb* ServiceFixture::db_ = nullptr;
sim::Simulator* ServiceFixture::sky_sim_ = nullptr;
core::MeasurementDb* ServiceFixture::sky_db_ = nullptr;
std::string ServiceFixture::path_a_;
std::string ServiceFixture::path_b_;
std::string ServiceFixture::path_edp_;
std::string ServiceFixture::path_sky_;

// --- concurrent serving == single-threaded reference -------------------------

TEST_F(ServiceFixture, ConcurrentMixedQueriesMatchSingleThreadedReference) {
  const auto reqs = mixed_power_requests(600);
  const auto want = reference_answers(path_a_, 1, reqs);

  // Coalescing on (default), with a bounded admission wait to force the
  // queue paths; then direct mode; then the caller-batch API. All three
  // must be bit-identical to the reference.
  serve::TuningServiceOptions qopt;
  qopt.cache_shards = 4;
  qopt.max_batch = 8;
  qopt.batch_wait = std::chrono::microseconds(200);
  serve::TuningService queued(*db_, path_a_, qopt);
  const auto got_queued = hammer(queued, reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    expect_result_eq(got_queued[i], want[i], i);

  serve::TuningServiceOptions dopt;
  dopt.coalesce = false;
  serve::TuningService direct(*db_, path_a_, dopt);
  const auto got_direct = hammer(direct, reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    expect_result_eq(got_direct[i], want[i], i);

  serve::TuningService batch(*db_, path_a_);
  const auto got_batch = batch.tune_batch(reqs);
  ASSERT_EQ(got_batch.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i)
    expect_result_eq(got_batch[i], want[i], i);

  // Every distinct region encoded at most once per snapshot, despite the
  // races: the cache holds exactly the touched regions.
  std::vector<bool> touched(static_cast<std::size_t>(db_->num_regions()));
  for (const auto& q : reqs) touched[static_cast<std::size_t>(q.region)] = true;
  std::size_t distinct = 0;
  for (const bool t : touched) distinct += t;
  EXPECT_EQ(queued.cached_encodings(), distinct);
  EXPECT_EQ(direct.cached_encodings(), distinct);
}

TEST_F(ServiceFixture, ConcurrentEdpQueriesMatchReference) {
  std::vector<serve::TuneRequest> reqs;
  for (int i = 0; i < 200; ++i)
    reqs.push_back(serve::TuneRequest::edp(i % db_->num_regions()));
  const auto want = reference_answers(path_edp_, 1, reqs);

  serve::TuningService service(*db_, path_edp_);
  EXPECT_EQ(service.mode(), core::PnpTuner::Mode::Edp);
  const auto got = hammer(service, reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    expect_result_eq(got[i], want[i], i);

  // Wrong-kind requests fail cleanly on an EDP service.
  EXPECT_THROW(service.tune(serve::TuneRequest::power(0, 0)), Error);
  EXPECT_THROW(service.tune(serve::TuneRequest::power_at(0, 50.0)), Error);
}

// --- hot reload --------------------------------------------------------------

TEST_F(ServiceFixture, ReloadBoundaryEveryResultConsistentWithItsVersion) {
  const auto reqs = mixed_power_requests(400);
  const auto want_v1 = reference_answers(path_a_, 1, reqs);
  const auto want_v2 = reference_answers(path_b_, 2, reqs);

  serve::TuningService service(*db_, path_a_);
  ASSERT_EQ(service.model_version(), 1u);

  // 8 workers hammer the request list round-robin while the main thread
  // swaps A -> B mid-stream. Each worker records, per slot: its result
  // and whether it *observed* the reload as completed before issuing.
  struct Record {
    serve::TuneResult result;
    bool after_reload = false;
  };
  const int rounds = 4;
  std::vector<std::vector<Record>> log(
      kThreads, std::vector<Record>(reqs.size() * rounds));
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> reload_done{false};

  std::vector<std::thread> team;
  team.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    team.emplace_back([&, t] {
      auto& mine = log[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; i < mine.size(); ++i) {
        // The last request per thread waits out the swap, so every run
        // exercises traffic on both sides of the reload boundary even
        // when a starved reload() finishes after the main burst.
        if (i + 1 == mine.size())
          while (!reload_done.load(std::memory_order_acquire))
            std::this_thread::yield();
        mine[i].after_reload = reload_done.load(std::memory_order_acquire);
        mine[i].result = service.tune(reqs[i % reqs.size()]);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });

  // Let the old model serve some traffic, then swap.
  while (completed.load(std::memory_order_relaxed) < 50)
    std::this_thread::yield();
  EXPECT_EQ(service.reload(path_b_), 2u);
  reload_done.store(true, std::memory_order_release);
  for (auto& th : team) th.join();

  EXPECT_EQ(service.model_version(), 2u);
  std::size_t v1_seen = 0, v2_seen = 0;
  for (int t = 0; t < kThreads; ++t) {
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < log[t].size(); ++i) {
      const Record& rec = log[static_cast<std::size_t>(t)][i];
      const std::uint64_t v = rec.result.model_version;
      // Atomicity: the result must be bit-identical to the single-threaded
      // reference of the version that claims to have served it — a
      // half-swapped model would produce some other configuration.
      ASSERT_TRUE(v == 1 || v == 2) << "thread " << t << " slot " << i;
      const auto& want = v == 1 ? want_v1 : want_v2;
      expect_result_eq(rec.result, want[i % reqs.size()], i);
      // Versions can only move forward within a thread…
      EXPECT_GE(v, prev) << "thread " << t << " slot " << i;
      prev = v;
      // …and a request issued after the reload completed must see v2.
      if (rec.after_reload) {
        EXPECT_EQ(v, 2u) << "thread " << t << " slot " << i;
      }
      (v == 1 ? v1_seen : v2_seen)++;
    }
  }
  // The swap point itself was exercised: traffic ran on both models.
  EXPECT_GT(v1_seen, 0u);
  EXPECT_GT(v2_seen, 0u);
  EXPECT_EQ(service.stats().reloads, 1u);
}

TEST_F(ServiceFixture, FailedReloadsLeaveOldModelServing) {
  serve::TuningService service(*db_, path_a_);
  const auto reqs = mixed_power_requests(40);
  const auto want = reference_answers(path_a_, 1, reqs);
  const auto check_still_serving = [&] {
    EXPECT_EQ(service.model_version(), 1u);
    const auto got = service.tune_batch(reqs);
    for (std::size_t i = 0; i < reqs.size(); ++i)
      expect_result_eq(got[i], want[i], i);
  };

  // Missing file.
  EXPECT_THROW(service.reload(::testing::TempDir() + "no_such_model.pnp"),
               Error);
  check_still_serving();

  // Corrupt bytes (not a StateDict at all).
  const std::string corrupt = ::testing::TempDir() + "service_corrupt.pnp";
  {
    std::ofstream f(corrupt, std::ios::binary);
    f << "this is not a tuner artifact";
  }
  EXPECT_THROW(service.reload(corrupt), Error);
  check_still_serving();

  // Truncated real artifact (valid magic, cut mid-stream).
  std::string bytes;
  {
    std::ifstream f(path_a_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(f), {});
  }
  ASSERT_GT(bytes.size(), 100u);
  const std::string truncated = ::testing::TempDir() + "service_trunc.pnp";
  {
    std::ofstream f(truncated, std::ios::binary);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(service.reload(truncated), Error);
  check_still_serving();

  // Wrong search space: a Skylake-trained artifact against the Haswell
  // db. The head layouts coincide (6×3×8 over 4 caps on both machines) —
  // only the v2 space fingerprint catches this.
  EXPECT_THROW(service.reload(path_sky_), Error);
  check_still_serving();

  // Scenario switch: an EDP artifact cannot replace a power service.
  EXPECT_THROW(service.reload(path_edp_), Error);
  check_still_serving();

  EXPECT_EQ(service.stats().failed_reloads, 5u);
  EXPECT_EQ(service.stats().reloads, 0u);

  // And the service still accepts a *valid* reload afterwards.
  EXPECT_EQ(service.reload(path_b_), 2u);
  EXPECT_EQ(service.model_version(), 2u);
}

TEST_F(ServiceFixture, ConcurrentQueriesDuringFailedReloadsUndisturbed) {
  serve::TuningService service(*db_, path_a_);
  const auto reqs = mixed_power_requests(200);
  const auto want = reference_answers(path_a_, 1, reqs);

  const std::string corrupt = ::testing::TempDir() + "service_corrupt2.pnp";
  {
    std::ofstream f(corrupt, std::ios::binary);
    f << "garbage";
  }

  std::vector<serve::TuneResult> results(reqs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<int> failed_reloads{0};
  std::vector<std::thread> team;
  for (int t = 0; t < kThreads; ++t)
    team.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= reqs.size()) return;
        if (i % 25 == 7) {
          try {
            service.reload(corrupt);
          } catch (const Error&) {
            failed_reloads.fetch_add(1, std::memory_order_relaxed);
          }
        }
        results[i] = service.tune(reqs[i]);
      }
    });
  for (auto& th : team) th.join();

  EXPECT_GT(failed_reloads.load(), 0);
  EXPECT_EQ(service.model_version(), 1u);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    expect_result_eq(results[i], want[i], i);
}

// --- request validation under concurrency ------------------------------------

TEST_F(ServiceFixture, BadRequestsFailAloneWithoutPoisoningTheService) {
  serve::TuningService service(*db_, path_a_);

  EXPECT_THROW(service.tune(serve::TuneRequest::power(-1, 0)), Error);
  EXPECT_THROW(service.tune(serve::TuneRequest::power(db_->num_regions(), 0)),
               Error);
  EXPECT_THROW(service.tune(serve::TuneRequest::power(0, -1)), Error);
  EXPECT_THROW(service.tune(serve::TuneRequest::power(0, db_->num_caps())),
               Error);
  EXPECT_THROW(service.tune(serve::TuneRequest::power_at(0, -5.0)), Error);
  EXPECT_THROW(service.tune(serve::TuneRequest::edp(0)), Error);

  // Mixed good/bad traffic from many threads: every good request must
  // still match the reference, every bad one must throw to its caller.
  const auto good = mixed_power_requests(120);
  const auto want = reference_answers(path_a_, 1, good);
  std::vector<serve::TuneResult> results(good.size());
  std::vector<char> threw(good.size(), 0);
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> team;
  for (int t = 0; t < kThreads; ++t)
    team.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= good.size()) return;
        try {
          if (i % 10 == 3) {
            service.tune(serve::TuneRequest::power(-7, 0));
          } else {
            results[i] = service.tune(good[i]);
          }
        } catch (const Error&) {
          threw[i] = 1;
        }
      }
    });
  for (auto& th : team) th.join();

  for (std::size_t i = 0; i < good.size(); ++i) {
    if (i % 10 == 3) {
      EXPECT_EQ(threw[i], 1) << "request " << i;
    } else {
      ASSERT_EQ(threw[i], 0) << "request " << i;
      expect_result_eq(results[i], want[i], i);
    }
  }
}

// --- accounting --------------------------------------------------------------

TEST_F(ServiceFixture, StatsInvariantsHoldUnderConcurrency) {
  serve::TuningServiceOptions opt;
  opt.max_batch = 8;
  opt.batch_wait = std::chrono::microseconds(500);
  serve::TuningService service(*db_, path_a_, opt);

  const auto reqs = mixed_power_requests(256);
  hammer(service, reqs);

  const auto st = service.stats();
  EXPECT_EQ(st.requests, reqs.size());
  EXPECT_GE(st.batches, 1u);
  EXPECT_LE(st.batches, st.requests);
  // Every queued request either led its batch or rode along.
  EXPECT_EQ(st.coalesced, st.requests - st.batches);
  // Exactly one encoding lookup per request; the cache never shrinks.
  EXPECT_EQ(st.encode_hits + st.encode_misses, st.requests);
  EXPECT_GE(st.encode_misses, service.cached_encodings());
  EXPECT_LE(service.cached_encodings(),
            static_cast<std::size_t>(db_->num_regions()));

  // Steady state: repeating a served request computes no new encodings.
  const auto before = service.stats().encode_misses;
  for (int i = 0; i < 10; ++i) service.tune(reqs[0]);
  EXPECT_EQ(service.stats().encode_misses, before);
}

// --- worker-shard mode -------------------------------------------------------

TEST(ShardOfKey, DeterministicInRangeAndSpreading) {
  // The router every shard consumer shares: stable across calls, always
  // in range, and not degenerate (distinct small keys spread over
  // stripes rather than clumping on one).
  std::vector<int> hits(4, 0);
  for (std::uint64_t k = 0; k < 64; ++k) {
    const std::size_t s = shard_of_key(k, 4);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, shard_of_key(k, 4));
    ++hits[s];
  }
  for (int h : hits) EXPECT_GT(h, 0);
  EXPECT_THROW(shard_of_key(1, 0), Error);
}

TEST_F(ServiceFixture, ShardedServiceMatchesReferenceUnderConcurrency) {
  // Worker-shard mode answers exactly like the single-threaded tuner and
  // keeps the accounting invariants: shards change scheduling, nothing
  // else.
  serve::TuningServiceOptions opt;
  opt.worker_shards = 3;
  opt.max_batch = 8;
  serve::TuningService service(*db_, path_a_, opt);
  EXPECT_EQ(service.worker_shards(), 3);

  const auto reqs = mixed_power_requests(256);
  const auto want = reference_answers(path_a_, 1, reqs);
  const auto got = hammer(service, reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    expect_result_eq(got[i], want[i], i);

  const auto st = service.stats();
  EXPECT_EQ(st.requests, reqs.size());
  EXPECT_GE(st.batches, 1u);
  EXPECT_LE(st.batches, st.requests);
  EXPECT_EQ(st.coalesced, st.requests - st.batches);
  EXPECT_EQ(st.encode_hits + st.encode_misses, st.requests);
  EXPECT_LE(service.cached_encodings(),
            static_cast<std::size_t>(db_->num_regions()));
}

TEST_F(ServiceFixture, ShardedReloadBoundaryResultsMatchTheirVersion) {
  // Hot reload under worker shards: a client hammering throughout must
  // see every result consistent with the version that served it — v1
  // answers before the swap, v2 answers after, nothing in between.
  serve::TuningServiceOptions opt;
  opt.worker_shards = 2;
  serve::TuningService service(*db_, path_a_, opt);

  const auto reqs = mixed_power_requests(400);
  const auto want_v1 = reference_answers(path_a_, 1, reqs);
  const auto want_v2 = reference_answers(path_b_, 2, reqs);

  std::vector<serve::TuneResult> results(reqs.size());
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> team;
  for (int t = 0; t < kThreads; ++t)
    team.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= reqs.size()) return;
        results[i] = service.tune(reqs[i]);
      }
    });
  // Swap models mid-stream.
  while (next.load() < reqs.size() / 2) std::this_thread::yield();
  EXPECT_EQ(service.reload(path_b_), 2u);
  for (auto& th : team) th.join();

  // Every hammered result must match the reference for whichever version
  // claims to have served it (the stream may drain before the reload
  // lands — the version tag, not timing, is the contract).
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_TRUE(results[i].model_version == 1 || results[i].model_version == 2)
        << "request " << i << " version " << results[i].model_version;
    expect_result_eq(
        results[i],
        results[i].model_version == 1 ? want_v1[i] : want_v2[i], i);
  }
  // After the reload returns, the workers serve v2 — deterministically.
  const auto post = service.tune(reqs[0]);
  expect_result_eq(post, want_v2[0], 0);
}

TEST_F(ServiceFixture, ShardedBadRequestsFailAloneAndEdpServes) {
  // A malformed request must fail only its caller — the worker thread
  // catches and forwards, then keeps serving its shard.
  serve::TuningServiceOptions opt;
  opt.worker_shards = 2;
  serve::TuningService service(*db_, path_a_, opt);
  EXPECT_THROW(service.tune(serve::TuneRequest::power(db_->num_regions(), 0)),
               Error);
  EXPECT_THROW(service.tune(serve::TuneRequest::edp(0)), Error);  // wrong mode
  const auto ok = service.tune(serve::TuneRequest::power(0, 0));
  EXPECT_EQ(ok.model_version, 1u);

  // EDP artifacts serve through shards like any other.
  serve::TuningService edp(*db_, path_edp_, opt);
  const auto reqs = [&] {
    std::vector<serve::TuneRequest> r;
    for (int i = 0; i < db_->num_regions(); ++i)
      r.push_back(serve::TuneRequest::edp(i));
    return r;
  }();
  const auto want = reference_answers(path_edp_, 1, reqs);
  const auto got = hammer(edp, reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    expect_result_eq(got[i], want[i], i);
}

TEST_F(ServiceFixture, AdoptedTunerAndUntrainedRejection) {
  // The in-process adoption path (no artifact file) serves identically.
  core::PnpTuner t(*db_, options(3));
  t.train_power_scenario(all_regions(*db_));
  const auto reqs = mixed_power_requests(20);
  const auto want = reference_answers(path_a_, 1, reqs);
  serve::TuningService service(std::move(t));
  const auto got = service.tune_batch(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    expect_result_eq(got[i], want[i], i);

  core::PnpTuner untrained(*db_, options(3));
  EXPECT_THROW(serve::TuningService{std::move(untrained)}, Error);
}

}  // namespace
}  // namespace pnp
