/// Property tests for the procedural workload generator: across many
/// seeds and corpus sizes every generated region must produce verified
/// IR that round-trips through the printer/parser and builds a
/// well-formed flow graph (edge endpoints in range, CSR forms consistent
/// with the edge lists), and generation must be a pure function of the
/// options — two fresh Generator instances with the same seed are
/// bit-identical. Also covers family archetype guarantees and end-to-end
/// consumption by MeasurementDb / PnpTuner / InferenceEngine.

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "core/measurement_db.hpp"
#include "core/pnp_tuner.hpp"
#include "graph/builder.hpp"
#include "ir/extract.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "serve/inference_engine.hpp"
#include "workloads/generator.hpp"

namespace pnp::workloads {
namespace {

GeneratorOptions opts(std::uint64_t seed, int regions) {
  GeneratorOptions o;
  o.seed = seed;
  o.num_regions = regions;
  return o;
}

bool descriptors_equal(const sim::KernelDescriptor& a,
                       const sim::KernelDescriptor& b) {
  return a.app == b.app && a.region == b.region &&
         a.trip_count == b.trip_count && a.flops_per_iter == b.flops_per_iter &&
         a.bytes_per_iter == b.bytes_per_iter &&
         a.working_set_bytes == b.working_set_bytes &&
         a.imbalance == b.imbalance && a.branch_div == b.branch_div &&
         a.serial_frac == b.serial_frac && a.critical_frac == b.critical_frac &&
         a.chunk_overhead_scale == b.chunk_overhead_scale &&
         a.loop_nest_depth == b.loop_nest_depth && a.reduction == b.reduction &&
         a.has_calls == b.has_calls && a.flop_efficiency == b.flop_efficiency;
}

TEST(Generator, RequestedRegionCountExactly) {
  for (int n : {1, 2, 8, 33, 64}) {
    const Corpus c = Generator(opts(7, n)).generate();
    EXPECT_EQ(c.total_regions(), static_cast<std::size_t>(n)) << n;
    EXPECT_GE(c.application_count(), 1u);
  }
}

TEST(Generator, SameSeedBitIdenticalAcrossFreshInstances) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 9001ULL}) {
    const Corpus a = Generator(opts(seed, 24)).generate();
    const Corpus b = Generator(opts(seed, 24)).generate();
    ASSERT_EQ(a.application_count(), b.application_count()) << seed;
    for (std::size_t i = 0; i < a.application_count(); ++i) {
      const auto& aa = a.applications()[i];
      const auto& ba = b.applications()[i];
      EXPECT_EQ(aa.name, ba.name);
      ASSERT_EQ(aa.regions.size(), ba.regions.size());
      for (std::size_t r = 0; r < aa.regions.size(); ++r) {
        EXPECT_EQ(aa.regions[r].function, ba.regions[r].function);
        EXPECT_TRUE(
            descriptors_equal(aa.regions[r].desc, ba.regions[r].desc))
            << aa.regions[r].desc.qualified_name();
      }
      // Printed IR is the strongest bit-identity witness: it covers every
      // instruction the two generators emitted.
      EXPECT_EQ(ir::print_module(aa.module), ir::print_module(ba.module));
    }
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const Corpus a = Generator(opts(1, 16)).generate();
  const Corpus b = Generator(opts(2, 16)).generate();
  bool any_difference = false;
  const auto ra = a.all_regions(), rb = b.all_regions();
  for (std::size_t i = 0; i < std::min(ra.size(), rb.size()); ++i)
    if (!descriptors_equal(ra[i].region->desc, rb[i].region->desc))
      any_difference = true;
  EXPECT_TRUE(any_difference);
}

TEST(Generator, EveryModuleVerifiesAndRoundTripsAcrossSeedsAndSizes) {
  for (std::uint64_t seed : {3ULL, 17ULL, 99ULL}) {
    for (int n : {1, 9, 40}) {
      const Corpus c = Generator(opts(seed, n)).generate();
      for (const auto& app : c.applications()) {
        EXPECT_TRUE(ir::verify_module(app.module).empty())
            << app.name << " seed=" << seed;
        const std::string text = ir::print_module(app.module);
        const auto back = ir::parse_module(text);
        EXPECT_EQ(ir::print_module(back), text) << app.name;
      }
    }
  }
}

TEST(Generator, EveryRegionExtractsAndBuildsWellFormedFlowGraph) {
  const Corpus c = Generator(opts(7, 48)).generate();
  std::vector<graph::FlowGraph> graphs;
  for (const auto& rr : c.all_regions()) {
    const auto one =
        ir::extract_function(rr.app->module, rr.region->function);
    EXPECT_TRUE(ir::verify_module(one).empty()) << rr.region->function;
    graphs.push_back(graph::build_flow_graph(one));
    const auto& g = graphs.back();
    // Same model budget the paper corpus obeys.
    EXPECT_GE(g.num_nodes(), 15) << rr.region->function;
    EXPECT_LE(g.num_nodes(), 400) << rr.region->function;
    EXPECT_GT(g.num_edges(), g.num_nodes() / 2);
    for (const auto& e : g.edges()) {
      EXPECT_GE(e.src, 0);
      EXPECT_LT(e.src, g.num_nodes());
      EXPECT_GE(e.dst, 0);
      EXPECT_LT(e.dst, g.num_nodes());
    }
  }

  // CSR forms must agree with the raw relation edge lists.
  std::vector<const graph::FlowGraph*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);
  const auto vocab = graph::Vocabulary::from_graphs(ptrs);
  for (const auto& g : graphs) {
    const auto t = graph::to_tensors(g, vocab);
    for (int rel = 0; rel < graph::kNumModelRelations; ++rel) {
      const auto& edges = t.rel_edges[static_cast<std::size_t>(rel)];
      const auto& csr = t.csr(rel);
      ASSERT_EQ(csr.row_offset.size(),
                static_cast<std::size_t>(t.num_nodes) + 1);
      EXPECT_EQ(csr.num_edges(), static_cast<int>(edges.size()));
      const auto deg = t.in_degree(rel);
      std::vector<std::vector<int>> by_target(
          static_cast<std::size_t>(t.num_nodes));
      for (const auto& [src, dst] : edges)
        by_target[static_cast<std::size_t>(dst)].push_back(src);
      std::vector<int> expected_active;
      for (int v = 0; v < t.num_nodes; ++v) {
        const auto vi = static_cast<std::size_t>(v);
        ASSERT_LE(csr.row_offset[vi], csr.row_offset[vi + 1]);
        const int row = csr.row_offset[vi + 1] - csr.row_offset[vi];
        EXPECT_EQ(row, deg[vi]);
        ASSERT_EQ(row, static_cast<int>(by_target[vi].size()));
        for (int j = 0; j < row; ++j)
          EXPECT_EQ(csr.src[static_cast<std::size_t>(csr.row_offset[vi] + j)],
                    by_target[vi][static_cast<std::size_t>(j)]);
        if (row > 0) {
          expected_active.push_back(v);
          EXPECT_DOUBLE_EQ(csr.inv_deg[vi], 1.0 / row);
        } else {
          EXPECT_DOUBLE_EQ(csr.inv_deg[vi], 0.0);
        }
      }
      EXPECT_EQ(csr.active_dst, expected_active);
    }
  }
}

TEST(Generator, RegionNamesUniqueAndQualified) {
  const Corpus c = Generator(opts(5, 50)).generate();
  std::set<std::string> names;
  for (const auto& rr : c.all_regions()) {
    EXPECT_TRUE(names.insert(rr.region->desc.qualified_name()).second);
    EXPECT_EQ(rr.region->desc.app, rr.app->name);
    EXPECT_EQ(rr.region->function,
              rr.region->desc.qualified_name() + ".omp_outlined");
  }
  EXPECT_EQ(names.size(), 50u);
}

TEST(Generator, AllFamiliesAppearAndParseBack) {
  const Corpus c = Generator(opts(7, 64)).generate();
  std::set<Family> seen;
  for (const auto& app : c.applications()) {
    const auto fam = Generator::family_of(app.name);
    ASSERT_TRUE(fam.has_value()) << app.name;
    seen.insert(*fam);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumFamilies));

  EXPECT_FALSE(Generator::family_of("lulesh").has_value());
  EXPECT_FALSE(Generator::family_of("gemm").has_value());
  EXPECT_FALSE(Generator::family_of("g3_bogus").has_value());
  EXPECT_FALSE(Generator::family_of("gx_blas3").has_value());
  EXPECT_FALSE(Generator::family_of("g_blas3").has_value());  // no digits
  EXPECT_FALSE(Generator::family_of("").has_value());
}

TEST(Generator, FamilyArchetypesShapeDescriptors) {
  const Corpus c = Generator(opts(11, 96)).generate();
  for (const auto& app : c.applications()) {
    const Family fam = *Generator::family_of(app.name);
    for (const auto& r : app.regions) {
      const auto& d = r.desc;
      EXPECT_GE(d.trip_count, 1.0);
      EXPECT_GT(d.flops_per_iter, 0.0);
      EXPECT_GT(d.bytes_per_iter, 0.0);
      EXPECT_GT(d.working_set_bytes, 0.0);
      switch (fam) {
        case Family::Blas3:
          EXPECT_EQ(d.loop_nest_depth, 3);
          EXPECT_DOUBLE_EQ(d.flops_per_iter, 2.0 * d.trip_count * d.trip_count);
          break;
        case Family::Factorization:
          EXPECT_GE(d.imbalance, 0.3);
          break;
        case Family::MonteCarlo:
          EXPECT_GE(d.branch_div, 0.2);
          EXPECT_GE(d.working_set_bytes, 16.0 * 1024 * 1024);
          break;
        case Family::Critical:
          EXPECT_GE(d.critical_frac, 0.05);
          EXPECT_GE(d.serial_frac, 0.2);
          break;
        case Family::Stencil:
        case Family::ProxyMix:
          break;  // heterogeneous by design
      }
    }
  }
}

TEST(Generator, FamilyWeightsRestrictSampling) {
  GeneratorOptions o = opts(13, 20);
  o.family_weights = {0, 0, 0, 1, 0, 0};  // MonteCarlo only
  const Corpus c = Generator(o).generate();
  for (const auto& app : c.applications())
    EXPECT_EQ(Generator::family_of(app.name), Family::MonteCarlo) << app.name;
}

TEST(Generator, InvalidOptionsThrow) {
  EXPECT_THROW(Generator{opts(7, 0)}, pnp::Error);
  EXPECT_THROW(Generator{opts(7, -4)}, pnp::Error);
  GeneratorOptions bad_app = opts(7, 4);
  bad_app.max_regions_per_app = 0;
  EXPECT_THROW(Generator{bad_app}, pnp::Error);
  GeneratorOptions zero_w = opts(7, 4);
  zero_w.family_weights = {0, 0, 0, 0, 0, 0};
  EXPECT_THROW(Generator{zero_w}, pnp::Error);
  GeneratorOptions neg_w = opts(7, 4);
  neg_w.family_weights = {1, -1, 1, 1, 1, 1};
  EXPECT_THROW(Generator{neg_w}, pnp::Error);
}

TEST(Generator, GeneratedCorpusTrainsAndServes) {
  // The whole pipeline must consume a generated corpus exactly like the
  // paper suite: measurement sweep → training → batched serving.
  const Corpus c = Generator(opts(21, 6)).generate();
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator sim(machine);
  const core::MeasurementDb db(sim, core::SearchSpace::for_machine(machine),
                               c.all_regions());
  ASSERT_EQ(db.num_regions(), 6);

  core::PnpOptions popt;
  popt.trainer.max_epochs = 2;
  core::PnpTuner tuner(db, popt);
  tuner.train_power_scenario({0, 1, 2, 3});

  std::vector<sim::OmpConfig> direct;
  for (int r = 4; r < 6; ++r)
    for (int k = 0; k < db.num_caps(); ++k)
      direct.push_back(tuner.predict_power(r, k));

  serve::InferenceEngine engine(std::move(tuner));
  std::vector<serve::PowerQuery> queries;
  for (int r = 4; r < 6; ++r)
    for (int k = 0; k < db.num_caps(); ++k) queries.push_back({r, k});
  const auto batched = engine.predict_power_batch(queries);
  ASSERT_EQ(batched.size(), direct.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].threads, direct[i].threads);
    EXPECT_EQ(batched[i].schedule, direct[i].schedule);
    EXPECT_EQ(batched[i].chunk, direct[i].chunk);
  }
}

TEST(Generator, MixedCorpusDbFindsBothSuites) {
  const Corpus c = Generator(opts(31, 4)).generate();
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator sim(machine);
  auto regions = Suite::instance().all_regions();
  const int paper = static_cast<int>(regions.size());
  for (const auto& rr : c.all_regions()) regions.push_back(rr);
  const core::MeasurementDb db(sim, core::SearchSpace::for_machine(machine),
                               regions);
  EXPECT_EQ(db.num_regions(), paper + 4);
  EXPECT_GE(db.find_region("gemm", "r0_gemm"), 0);
  const auto& first_gen = c.applications()[0];
  EXPECT_GE(db.find_region(first_gen.name, first_gen.regions[0].desc.region),
            paper);
}

}  // namespace
}  // namespace pnp::workloads
