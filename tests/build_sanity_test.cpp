/// Build-wiring smoke test: exercises the quickstart pipeline end-to-end
/// (suite -> IR extraction -> PROGRAML flow graph -> simulator -> tiny PnP
/// train -> predict) so that ctest fails loudly if any module in the
/// pnp_common..pnp_core library stack stops linking or regresses its API.

#include <gtest/gtest.h>

#include "core/loocv.hpp"
#include "core/measurement_db.hpp"
#include "core/metrics.hpp"
#include "graph/builder.hpp"
#include "graph/export.hpp"
#include "ir/extract.hpp"
#include "workloads/suite.hpp"

namespace pnp {
namespace {

TEST(BuildSanityTest, QuickstartPipelineRuns) {
  // 1. Suite loads with the paper's 30 applications / 68 regions.
  const auto& suite = workloads::Suite::instance();
  ASSERT_EQ(suite.application_count(), 30u);
  ASSERT_EQ(suite.total_regions(), 68u);

  // 2. Extract one region's IR and build its flow graph.
  const auto* gemm = suite.find("gemm");
  ASSERT_NE(gemm, nullptr);
  ASSERT_FALSE(gemm->regions.empty());
  const auto& region = gemm->regions.front();
  const ir::Module one = ir::extract_function(gemm->module, region.function);
  ASSERT_FALSE(one.functions.empty());
  const auto fg = graph::build_flow_graph(one);
  EXPECT_GT(fg.num_nodes(), 0);
  EXPECT_FALSE(graph::summary(fg).empty());

  // 3. Simulate the region under a power cap.
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto r40 = simulator.expected(
      region.desc, sim::OmpConfig{8, sim::Schedule::Static, 0}, 40.0);
  EXPECT_GT(r40.seconds, 0.0);
  EXPECT_GT(r40.joules, 0.0);
  EXPECT_LE(r40.avg_power_w, 40.0 + 1.0);

  // 4. Train a deliberately tiny PnP model and predict a config.
  const auto space = core::SearchSpace::for_machine(machine);
  const core::MeasurementDb db(simulator, space, suite.all_regions());
  core::PnpOptions pnp;
  pnp.trainer.max_epochs = 3;
  core::PnpTuner tuner(db, pnp);
  std::vector<int> train;
  for (int r = 0; r < 10; ++r) train.push_back(r);
  const auto rep = tuner.train_power_scenario(train);
  EXPECT_GE(rep.epochs_run, 1);

  const int region_idx = db.find_region("gemm", "r0_gemm");
  ASSERT_GE(region_idx, 0);
  for (int k = 0; k < db.num_caps(); ++k) {
    const auto cfg = tuner.predict_power(region_idx, k);
    EXPECT_GE(cfg.threads, 1);
    EXPECT_LE(cfg.threads, machine.max_threads());
    EXPECT_GE(cfg.chunk, 0);
  }
}

}  // namespace
}  // namespace pnp
