/// Tests for the OpenMP execution simulator: invariants the cost model
/// must satisfy (monotonicity in the power cap, schedule trade-offs,
/// bandwidth saturation, Amdahl effects) plus determinism and the noise
/// model. Parameterized sweeps act as property tests across the Table I
/// configuration grid.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"

namespace pnp::sim {
namespace {

KernelDescriptor compute_kernel() {
  KernelDescriptor k;
  k.app = "t";
  k.region = "compute";
  k.trip_count = 1024;
  k.flops_per_iter = 2.0e6;
  k.bytes_per_iter = 8192;
  k.working_set_bytes = 24e6;
  k.flop_efficiency = 0.35;
  return k;
}

KernelDescriptor memory_kernel() {
  KernelDescriptor k;
  k.app = "t";
  k.region = "memory";
  k.trip_count = 4000;
  k.flops_per_iter = 2.0e4;
  k.bytes_per_iter = 96000;
  k.working_set_bytes = 400e6;
  k.flop_efficiency = 0.2;
  return k;
}

KernelDescriptor imbalanced_kernel() {
  KernelDescriptor k = compute_kernel();
  k.region = "imbalanced";
  k.imbalance = 0.8;
  return k;
}

KernelDescriptor tiny_kernel() {
  KernelDescriptor k;
  k.app = "t";
  k.region = "tiny";
  k.trip_count = 2000;
  k.flops_per_iter = 3.0;
  k.bytes_per_iter = 24.0;
  k.working_set_bytes = 48000;
  k.flop_efficiency = 0.1;
  return k;
}

class SimTest : public ::testing::Test {
 protected:
  hw::MachineModel machine_ = hw::MachineModel::haswell();
  Simulator sim_{machine_};
};

TEST_F(SimTest, TimeDecreasesWithHigherCapForComputeBound) {
  const auto k = compute_kernel();
  const OmpConfig cfg{16, Schedule::Static, 0};
  double prev = 1e300;
  for (double cap : {40.0, 60.0, 70.0, 85.0}) {
    const double t = sim_.expected(k, cfg, cap).seconds;
    EXPECT_LE(t, prev + 1e-12);
    prev = t;
  }
  // And meaningfully so: 40 W must be clearly slower than TDP.
  EXPECT_GT(sim_.expected(k, cfg, 40.0).seconds,
            1.3 * sim_.expected(k, cfg, 85.0).seconds);
}

TEST_F(SimTest, MemoryBoundInsensitiveToCap) {
  const auto k = memory_kernel();
  const OmpConfig cfg{16, Schedule::Static, 0};
  const double t_low = sim_.expected(k, cfg, 40.0).seconds;
  const double t_tdp = sim_.expected(k, cfg, 85.0).seconds;
  // Within ~15%: DRAM bandwidth, not core clock, limits this kernel.
  EXPECT_LT(t_low / t_tdp, 1.15);
}

TEST_F(SimTest, ComputeBoundScalesWithThreads) {
  const auto k = compute_kernel();
  const double t1 =
      sim_.expected(k, OmpConfig{1, Schedule::Static, 0}, 85.0).seconds;
  const double t16 =
      sim_.expected(k, OmpConfig{16, Schedule::Static, 0}, 85.0).seconds;
  EXPECT_GT(t1 / t16, 5.0);   // strong scaling...
  EXPECT_LT(t1 / t16, 16.0);  // ...but sub-linear (power + overheads)
}

TEST_F(SimTest, MemoryBoundSaturates) {
  const auto k = memory_kernel();
  const double t8 =
      sim_.expected(k, OmpConfig{8, Schedule::Static, 0}, 85.0).seconds;
  const double t32 =
      sim_.expected(k, OmpConfig{32, Schedule::Static, 0}, 85.0).seconds;
  // Beyond saturation, more threads gain little.
  EXPECT_LT(t8 / t32, 2.2);
}

TEST_F(SimTest, DynamicBeatsStaticUnderImbalance) {
  const auto k = imbalanced_kernel();
  const double t_static =
      sim_.expected(k, OmpConfig{16, Schedule::Static, 0}, 85.0).seconds;
  const double t_dynamic =
      sim_.expected(k, OmpConfig{16, Schedule::Dynamic, 32}, 85.0).seconds;
  EXPECT_LT(t_dynamic, t_static);
}

TEST_F(SimTest, StaticBeatsDynamicWhenBalancedAndChunksTiny) {
  auto k = compute_kernel();
  k.trip_count = 200000;
  k.flops_per_iter = 40.0;
  k.bytes_per_iter = 64.0;
  k.chunk_overhead_scale = 2.0;
  const double t_static =
      sim_.expected(k, OmpConfig{16, Schedule::Static, 0}, 85.0).seconds;
  const double t_dyn1 =
      sim_.expected(k, OmpConfig{16, Schedule::Dynamic, 1}, 85.0).seconds;
  EXPECT_LT(t_static, t_dyn1);
}

TEST_F(SimTest, GuidedBetweenStaticAndDynamicOnImbalance) {
  const auto k = imbalanced_kernel();
  const OmpConfig cs{16, Schedule::Static, 8};
  const OmpConfig cg{16, Schedule::Guided, 8};
  const OmpConfig cd{16, Schedule::Dynamic, 8};
  const double ts = sim_.expected(k, cs, 85.0).seconds;
  const double tg = sim_.expected(k, cg, 85.0).seconds;
  const double td = sim_.expected(k, cd, 85.0).seconds;
  EXPECT_LE(td, tg);
  EXPECT_LE(tg, ts);
}

TEST_F(SimTest, TinyKernelPrefersFewThreads) {
  const auto k = tiny_kernel();
  const double t_all =
      sim_.expected(k, OmpConfig{32, Schedule::Static, 0}, 40.0).seconds;
  const double t_few =
      sim_.expected(k, OmpConfig{4, Schedule::Static, 0}, 40.0).seconds;
  EXPECT_LT(t_few, t_all);
}

TEST_F(SimTest, SerialFractionCapsScaling) {
  auto k = compute_kernel();
  k.serial_frac = 0.5;
  const double t1 =
      sim_.expected(k, OmpConfig{1, Schedule::Static, 0}, 85.0).seconds;
  const double t16 =
      sim_.expected(k, OmpConfig{16, Schedule::Static, 0}, 85.0).seconds;
  EXPECT_LT(t1 / t16, 2.2);  // Amdahl: at most ~2x for 50% serial
}

TEST_F(SimTest, CriticalSectionsPenalizeManyThreads) {
  auto k = compute_kernel();
  k.critical_frac = 0.2;
  const auto base = compute_kernel();
  const OmpConfig cfg{16, Schedule::Static, 0};
  EXPECT_GT(sim_.expected(k, cfg, 85.0).seconds,
            sim_.expected(base, cfg, 85.0).seconds);
}

TEST_F(SimTest, EnergyEqualsPowerTimesTime) {
  const auto k = compute_kernel();
  for (double cap : {40.0, 85.0}) {
    const auto r = sim_.expected(k, OmpConfig{8, Schedule::Dynamic, 64}, cap);
    EXPECT_NEAR(r.joules, r.avg_power_w * r.seconds, 1e-9);
    EXPECT_LE(r.avg_power_w, cap + 1e-9);  // RAPL holds the budget
    EXPECT_DOUBLE_EQ(r.edp(), r.joules * r.seconds);
  }
}

TEST_F(SimTest, FrequencyReportedWithinLadder) {
  const auto k = compute_kernel();
  const auto r = sim_.expected(k, OmpConfig{16, Schedule::Static, 0}, 60.0);
  EXPECT_GE(r.frequency_ghz, machine_.fmin_ghz);
  EXPECT_LE(r.frequency_ghz, machine_.fmax_ghz);
}

TEST_F(SimTest, LowerCapLowersPowerForSameConfig) {
  const auto k = compute_kernel();
  const OmpConfig cfg{16, Schedule::Static, 0};
  EXPECT_LT(sim_.expected(k, cfg, 40.0).avg_power_w,
            sim_.expected(k, cfg, 85.0).avg_power_w);
}

TEST_F(SimTest, ExpectedIsDeterministic) {
  const auto k = compute_kernel();
  const OmpConfig cfg{8, Schedule::Guided, 32};
  const auto a = sim_.expected(k, cfg, 60.0);
  const auto b = sim_.expected(k, cfg, 60.0);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_DOUBLE_EQ(a.joules, b.joules);
}

TEST_F(SimTest, MeasureJitterIsDeterministicPerDraw) {
  const auto k = compute_kernel();
  const OmpConfig cfg{8, Schedule::Guided, 32};
  const auto a0 = sim_.measure(k, cfg, 60.0, 0);
  const auto b0 = sim_.measure(k, cfg, 60.0, 0);
  EXPECT_DOUBLE_EQ(a0.seconds, b0.seconds);
  const auto a1 = sim_.measure(k, cfg, 60.0, 1);
  EXPECT_NE(a0.seconds, a1.seconds);
}

TEST_F(SimTest, MeasureJitterIsBounded) {
  const auto k = compute_kernel();
  const OmpConfig cfg{8, Schedule::Static, 0};
  const double expected = sim_.expected(k, cfg, 60.0).seconds;
  for (std::uint64_t d = 0; d < 50; ++d) {
    const double t = sim_.measure(k, cfg, 60.0, d).seconds;
    EXPECT_GT(t, expected * 0.5);  // ~±4σ of the 12% log-normal jitter
    EXPECT_LT(t, expected * 2.0);
  }
}

TEST_F(SimTest, CountersScaleWithWork) {
  const auto small = tiny_kernel();
  const auto big = compute_kernel();
  const auto cs = sim_.profile_counters(small);
  const auto cb = sim_.profile_counters(big);
  EXPECT_GT(cb.instructions, cs.instructions);
  EXPECT_GT(cb.l3_misses, 0.0);
  // Cache hierarchy orders misses.
  EXPECT_GE(cs.l1_misses, cs.l2_misses);
  EXPECT_GE(cs.l2_misses, cs.l3_misses);
}

TEST_F(SimTest, BranchyKernelsMispredictMore) {
  auto k = compute_kernel();
  auto kb = k;
  kb.branch_div = 0.7;
  EXPECT_GT(sim_.profile_counters(kb).branch_mispredictions,
            sim_.profile_counters(k).branch_mispredictions);
  // And they run slower.
  const OmpConfig cfg{16, Schedule::Static, 0};
  EXPECT_GT(sim_.expected(kb, cfg, 85.0).seconds,
            sim_.expected(k, cfg, 85.0).seconds);
}

TEST_F(SimTest, DefaultConfigUsesAllHardwareThreads) {
  EXPECT_EQ(sim_.default_config().threads, machine_.max_threads());
  EXPECT_EQ(sim_.default_config().schedule, Schedule::Static);
  EXPECT_EQ(sim_.default_config().chunk, 0);
}

TEST_F(SimTest, InvalidInputsThrow) {
  const auto k = compute_kernel();
  EXPECT_THROW(sim_.expected(k, OmpConfig{0, Schedule::Static, 0}, 85.0),
               pnp::Error);
  EXPECT_THROW(sim_.expected(k, OmpConfig{8, Schedule::Static, 0}, 0.0),
               pnp::Error);
}

TEST(SimConfig, ToStringFormats) {
  EXPECT_EQ((OmpConfig{8, Schedule::Dynamic, 64}).to_string(), "8t/dynamic/64");
  EXPECT_EQ((OmpConfig{32, Schedule::Static, 0}).to_string(), "32t/static/def");
  EXPECT_EQ((OmpConfig{1, Schedule::Guided, 1}).to_string(), "1t/guided/1");
}

// ---------------------------------------------------------------------------
// Property sweeps over the whole Table I grid.
// ---------------------------------------------------------------------------

struct SweepCase {
  int threads;
  Schedule sched;
  int chunk;
};

class GridSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  hw::MachineModel machine_ = hw::MachineModel::skylake();
  Simulator sim_{machine_};
};

TEST_P(GridSweep, SaneResultsEverywhere) {
  const auto p = GetParam();
  const OmpConfig cfg{p.threads, p.sched, p.chunk};
  for (const auto& k :
       {compute_kernel(), memory_kernel(), imbalanced_kernel(), tiny_kernel()}) {
    for (double cap : {75.0, 100.0, 120.0, 150.0}) {
      const auto r = sim_.expected(k, cfg, cap);
      EXPECT_TRUE(std::isfinite(r.seconds)) << cfg.to_string();
      EXPECT_GT(r.seconds, 0.0);
      EXPECT_GT(r.joules, 0.0);
      EXPECT_LE(r.avg_power_w, cap + 1e-9);
      EXPECT_GE(r.avg_power_w, 0.0);
    }
  }
}

TEST_P(GridSweep, MonotoneInCapEverywhere) {
  const auto p = GetParam();
  const OmpConfig cfg{p.threads, p.sched, p.chunk};
  for (const auto& k : {compute_kernel(), memory_kernel(), tiny_kernel()}) {
    double prev = 1e300;
    for (double cap : {75.0, 100.0, 120.0, 150.0}) {
      const double t = sim_.expected(k, cfg, cap).seconds;
      EXPECT_LE(t, prev * (1.0 + 1e-12));
      prev = t;
    }
  }
}

// ---------------------------------------------------------------------------
// Cost-model invariants over procedurally generated descriptors. Golden
// values can't catch a regression that bends the model smoothly; these
// properties must hold for *any* descriptor the generator can sample.
// ---------------------------------------------------------------------------

class GeneratedDescriptorSweep : public ::testing::Test {
 protected:
  static std::vector<KernelDescriptor> descriptors() {
    workloads::GeneratorOptions opt;
    opt.seed = 3;
    opt.num_regions = 24;
    // Keep the corpus alive while reading its RegionRefs (they point into
    // it); descriptors are copied out so the sweep below owns its data.
    const workloads::Corpus corpus = workloads::Generator(opt).generate();
    std::vector<KernelDescriptor> out;
    for (const auto& rr : corpus.all_regions()) out.push_back(rr.region->desc);
    return out;
  }

  static std::vector<OmpConfig> configs() {
    return {OmpConfig{1, Schedule::Static, 0},
            OmpConfig{8, Schedule::Dynamic, 32},
            OmpConfig{16, Schedule::Guided, 8},
            OmpConfig{32, Schedule::Static, 256}};
  }
};

TEST_F(GeneratedDescriptorSweep, RuntimeNonIncreasingInPowerCap) {
  for (const auto& machine :
       {hw::MachineModel::haswell(), hw::MachineModel::skylake()}) {
    const Simulator sim(machine);
    for (const auto& k : descriptors()) {
      for (const auto& cfg : configs()) {
        double prev = 1e300;
        for (double cap = machine.min_cap_w; cap <= machine.tdp_w;
             cap += (machine.tdp_w - machine.min_cap_w) / 8.0) {
          const double t = sim.expected(k, cfg, cap).seconds;
          EXPECT_LE(t, prev * (1.0 + 1e-12))
              << k.qualified_name() << " " << cfg.to_string() << " @" << cap;
          prev = t;
        }
      }
    }
  }
}

TEST_F(GeneratedDescriptorSweep, PowerNeverExceedsCapAndResultsPositive) {
  const auto machine = hw::MachineModel::haswell();
  const Simulator sim(machine);
  for (const auto& k : descriptors()) {
    for (const auto& cfg : configs()) {
      for (double cap : {40.0, 52.5, 60.0, 70.0, 85.0}) {
        const auto r = sim.expected(k, cfg, cap);
        EXPECT_LE(r.avg_power_w, cap + 1e-9)
            << k.qualified_name() << " " << cfg.to_string();
        EXPECT_GE(r.avg_power_w, 0.0);
        EXPECT_TRUE(std::isfinite(r.seconds));
        EXPECT_GT(r.seconds, 0.0) << k.qualified_name();
        EXPECT_GT(r.joules, 0.0) << k.qualified_name();
        EXPECT_GT(r.edp(), 0.0) << k.qualified_name();
        EXPECT_GE(r.frequency_ghz, machine.fmin_ghz);
        EXPECT_LE(r.frequency_ghz, machine.fmax_ghz);
      }
    }
  }
}

TEST_F(GeneratedDescriptorSweep, MeasureStaysPositiveAndNearTheCap) {
  // measure() adds log-normal meter jitter on top of expected(), so the
  // hard cap invariant is an expected() property (above); the measured
  // power reading may wobble around it but must stay within the jitter
  // envelope (σ = 6% ⇒ ±5σ ≈ ×1.35) and strictly positive.
  const auto machine = hw::MachineModel::haswell();
  const Simulator sim(machine);
  for (const auto& k : descriptors()) {
    const OmpConfig cfg{8, Schedule::Dynamic, 32};
    for (std::uint64_t draw = 0; draw < 3; ++draw) {
      const auto r = sim.measure(k, cfg, 60.0, draw);
      EXPECT_GT(r.seconds, 0.0) << k.qualified_name();
      EXPECT_GT(r.joules, 0.0);
      EXPECT_GT(r.avg_power_w, 0.0);
      EXPECT_LE(r.avg_power_w, 60.0 * 1.35) << k.qualified_name();
      EXPECT_NEAR(r.joules, r.avg_power_w * r.seconds, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableOneGrid, GridSweep,
    ::testing::Values(SweepCase{1, Schedule::Static, 1},
                      SweepCase{4, Schedule::Static, 128},
                      SweepCase{8, Schedule::Dynamic, 1},
                      SweepCase{16, Schedule::Dynamic, 256},
                      SweepCase{32, Schedule::Guided, 8},
                      SweepCase{64, Schedule::Guided, 512},
                      SweepCase{64, Schedule::Static, 0},
                      SweepCase{16, Schedule::Guided, 0},
                      SweepCase{8, Schedule::Dynamic, 0}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return std::to_string(info.param.threads) + "t_" +
             std::string(schedule_name(info.param.sched)) + "_c" +
             std::to_string(info.param.chunk);
    });

}  // namespace
}  // namespace pnp::sim
