/// Unit tests for the PnP tuner wrapper itself: feature construction,
/// label encoding, the flat-head and basis-decomposition ablation paths,
/// and state import/export.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/pnp_tuner.hpp"
#include "graph/export.hpp"
#include "workloads/suite.hpp"

namespace pnp::core {
namespace {

class PnpTunerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    machine_ = new hw::MachineModel(hw::MachineModel::haswell());
    simulator_ = new sim::Simulator(*machine_);
    space_ = new SearchSpace(SearchSpace::for_machine(*machine_));
    db_ = new MeasurementDb(*simulator_, *space_,
                            workloads::Suite::instance().all_regions());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete space_;
    delete simulator_;
    delete machine_;
  }

  static PnpOptions fast(std::uint64_t seed = 5) {
    PnpOptions p;
    p.trainer.max_epochs = 12;
    p.trainer.patience = 4;
    p.seed = seed;
    return p;
  }

  static std::vector<int> first_regions(int n) {
    std::vector<int> v;
    for (int r = 0; r < n; ++r) v.push_back(r);
    return v;
  }

  static hw::MachineModel* machine_;
  static sim::Simulator* simulator_;
  static SearchSpace* space_;
  static MeasurementDb* db_;
};

hw::MachineModel* PnpTunerTest::machine_ = nullptr;
sim::Simulator* PnpTunerTest::simulator_ = nullptr;
SearchSpace* PnpTunerTest::space_ = nullptr;
MeasurementDb* PnpTunerTest::db_ = nullptr;

TEST_F(PnpTunerTest, BuildsOneGraphPerRegion) {
  PnpTuner tuner(*db_, fast());
  for (int r = 0; r < db_->num_regions(); r += 10) {
    const auto& g = tuner.region_graph(r);
    EXPECT_GT(g.num_nodes(), 0) << graph::summary(g);
  }
}

TEST_F(PnpTunerTest, FlatHeadVariantTrainsAndPredicts) {
  auto opt = fast(7);
  opt.factored_heads = false;  // one softmax over 6*3*8 = 144 classes
  PnpTuner tuner(*db_, opt);
  tuner.train_power_scenario(first_regions(25));
  for (int r = 25; r < 30; ++r) {
    const auto cfg = tuner.predict_power(r, 0);
    EXPECT_GE(space_->thread_class(cfg.threads), 0);
    EXPECT_GE(space_->chunk_class(cfg.chunk), 0);
  }
}

TEST_F(PnpTunerTest, FlatHeadEdpVariantDecodesCap) {
  auto opt = fast(9);
  opt.factored_heads = false;
  PnpTuner tuner(*db_, opt);
  tuner.train_edp_scenario(first_regions(25));
  for (int r = 25; r < 30; ++r) {
    const auto jc = tuner.predict_edp(r);
    EXPECT_GE(jc.cap_index, 0);
    EXPECT_LT(jc.cap_index, 4);
  }
}

TEST_F(PnpTunerTest, BasisDecompositionAblationRuns) {
  auto opt = fast(11);
  opt.num_bases = 3;  // RGCN basis decomposition (Schlichtkrull et al.)
  PnpTuner tuner(*db_, opt);
  const auto rep = tuner.train_power_scenario(first_regions(20));
  EXPECT_GT(rep.epochs_run, 0);
  const auto cfg = tuner.predict_power(40, 2);
  EXPECT_GE(cfg.threads, 1);
}

TEST_F(PnpTunerTest, CountersVariantChangesFeatureWidth) {
  auto s = fast(13);
  PnpTuner stat(*db_, s);
  stat.train_power_scenario(first_regions(15));
  auto d = fast(13);
  d.use_counters = true;
  PnpTuner dyn(*db_, d);
  dyn.train_power_scenario(first_regions(15));
  // 4 cap one-hot vs 4 + 5 counters.
  EXPECT_EQ(stat.net().config().extra_features, 4);
  EXPECT_EQ(dyn.net().config().extra_features, 9);
}

TEST_F(PnpTunerTest, UnseenCapRequiresScalarFeature) {
  auto opt = fast(15);
  opt.train_cap_indices = {1, 2, 3};
  opt.cap_onehot = true;  // invalid combination
  EXPECT_THROW(PnpTuner(*db_, opt), Error);
}

TEST_F(PnpTunerTest, PredictBeforeTrainThrows) {
  PnpTuner tuner(*db_, fast());
  EXPECT_THROW(tuner.predict_power(0, 0), Error);
  EXPECT_THROW(tuner.predict_edp(0), Error);
  EXPECT_THROW(tuner.state(), Error);
}

TEST_F(PnpTunerTest, ScenarioModesAreExclusive) {
  PnpTuner tuner(*db_, fast());
  tuner.train_power_scenario(first_regions(12));
  EXPECT_THROW(tuner.predict_edp(0), Error);
  tuner.train_edp_scenario(first_regions(12));
  EXPECT_THROW(tuner.predict_power(0, 0), Error);
  EXPECT_NO_THROW(tuner.predict_edp(0));
}

TEST_F(PnpTunerTest, StateRoundTripsBetweenTuners) {
  auto opt = fast(17);
  PnpTuner a(*db_, opt);
  a.train_power_scenario(first_regions(20));
  const auto sd = a.state();

  // Import into a fresh tuner with a different seed: after loading the GNN
  // and retraining the dense stage, predictions must be well-formed and
  // the GNN weights must match the source.
  auto opt2 = fast(99);
  PnpTuner b(*db_, opt2);
  b.import_gnn(sd, /*freeze_gnn=*/true);
  b.train_power_scenario(first_regions(20));
  EXPECT_EQ(b.net().state_dict().get("emb.token"), sd.get("emb.token"));
  EXPECT_EQ(b.net().state_dict().get("rgcn.3.w0"), sd.get("rgcn.3.w0"));
  EXPECT_NE(b.net().state_dict().get("dense.w1"), sd.get("dense.w1"));
}

TEST_F(PnpTunerTest, LabelsMatchOracle) {
  // The training labels must decode back to the db's best candidates.
  PnpTuner tuner(*db_, fast());
  (void)tuner;  // labels are private; verify through the db directly
  for (int r = 0; r < db_->num_regions(); r += 9) {
    for (int k = 0; k < db_->num_caps(); ++k) {
      const int c = db_->best_candidate_by_time(r, k);
      const auto cfg = space_->candidate(c);
      const auto back = space_->config_from_classes(
          space_->thread_class(cfg.threads), static_cast<int>(cfg.schedule),
          space_->chunk_class(cfg.chunk));
      EXPECT_TRUE(back == cfg) << cfg.to_string();
    }
  }
}

}  // namespace
}  // namespace pnp::core
