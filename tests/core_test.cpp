/// Tests for the tuner core: Table I search-space enumeration, the
/// exhaustive measurement database / oracle, and metrics algebra.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/error.hpp"
#include <cmath>

#include "common/stats.hpp"
#include "core/measurement_db.hpp"
#include "core/metrics.hpp"
#include "core/search_space.hpp"
#include "workloads/suite.hpp"

namespace pnp::core {
namespace {

TEST(SearchSpace, TableOneCountsSkylake) {
  const auto s = SearchSpace::for_machine(hw::MachineModel::skylake());
  EXPECT_EQ(s.thread_values(), (std::vector<int>{1, 4, 8, 16, 32, 64}));
  EXPECT_EQ(s.power_caps(), (std::vector<double>{75, 100, 120, 150}));
  EXPECT_EQ(s.chunk_values(), (std::vector<int>{1, 8, 32, 64, 128, 256, 512}));
  EXPECT_EQ(s.num_omp_configs(), 126);
  EXPECT_EQ(s.num_candidates_per_cap(), 127);
  // 504 regular + 4 defaults = 508 (paper §III-B).
  EXPECT_EQ(s.joint_size(), 508);
  EXPECT_DOUBLE_EQ(s.tdp(), 150.0);
}

TEST(SearchSpace, TableOneCountsHaswell) {
  const auto s = SearchSpace::for_machine(hw::MachineModel::haswell());
  EXPECT_EQ(s.thread_values(), (std::vector<int>{1, 2, 4, 8, 16, 32}));
  EXPECT_EQ(s.power_caps(), (std::vector<double>{40, 60, 70, 85}));
  EXPECT_EQ(s.joint_size(), 508);
}

TEST(SearchSpace, OmpIndexRoundTrip) {
  const auto s = SearchSpace::for_machine(hw::MachineModel::haswell());
  std::set<std::string> seen;
  for (int i = 0; i < s.num_omp_configs(); ++i) {
    const auto cfg = s.omp_config(i);
    EXPECT_EQ(s.omp_index(cfg), i);
    EXPECT_TRUE(seen.insert(cfg.to_string()).second) << "duplicate config";
  }
  EXPECT_EQ(s.omp_index(s.default_config()), -1);  // default is off-grid
}

TEST(SearchSpace, JointPointEnumeration) {
  const auto s = SearchSpace::for_machine(hw::MachineModel::haswell());
  int defaults = 0;
  std::set<int> caps_seen;
  for (int i = 0; i < s.joint_size(); ++i) {
    const auto p = s.joint_point(i);
    caps_seen.insert(p.cap_index);
    if (p.is_default) {
      ++defaults;
      EXPECT_EQ(p.cfg.threads, 32);
      EXPECT_EQ(p.cfg.chunk, 0);
    }
  }
  EXPECT_EQ(defaults, 4);
  EXPECT_EQ(caps_seen.size(), 4u);
}

TEST(SearchSpace, DefaultConfigIsAllHardwareThreads) {
  const auto sky = SearchSpace::for_machine(hw::MachineModel::skylake());
  EXPECT_EQ(sky.default_config().threads, 64);
  EXPECT_EQ(sky.default_config().schedule, sim::Schedule::Static);
  EXPECT_EQ(sky.default_config().chunk, 0);
}

TEST(SearchSpace, ClassCodecs) {
  const auto s = SearchSpace::for_machine(hw::MachineModel::haswell());
  EXPECT_EQ(s.num_thread_classes(), 6);
  EXPECT_EQ(s.num_schedule_classes(), 3);
  EXPECT_EQ(s.num_chunk_classes(), 8);  // 7 + compiler-default
  EXPECT_EQ(s.num_cap_classes(), 4);
  EXPECT_EQ(s.thread_class(8), 3);
  EXPECT_EQ(s.chunk_class(0), 0);
  EXPECT_EQ(s.chunk_class(512), 7);
  const auto cfg = s.config_from_classes(3, 1, 4);
  EXPECT_EQ(cfg.threads, 8);
  EXPECT_EQ(cfg.schedule, sim::Schedule::Dynamic);
  EXPECT_EQ(cfg.chunk, 64);
  EXPECT_THROW(s.thread_class(5), Error);
  EXPECT_THROW(s.chunk_class(33), Error);
  EXPECT_THROW(s.cap_index(99.0), Error);
  EXPECT_EQ(s.cap_index(70.0), 2);
}

TEST(SearchSpace, GenericMachineThreadsArePowersOfTwoNoDuplicates) {
  // The generic branch promises powers of two up to max_threads, at most
  // 6 thread classes, strictly increasing and duplicate-free.
  for (const int max_threads : {1, 2, 3, 4, 48, 64}) {
    SCOPED_TRACE(max_threads);
    hw::MachineModel m = hw::MachineModel::haswell();
    m.name = "generic-test-machine";
    m.sockets = 1;
    m.smt_per_core = 1;
    m.cores_per_socket = max_threads;
    ASSERT_EQ(m.max_threads(), max_threads);

    const auto s = SearchSpace::for_machine(m);
    const auto& t = s.thread_values();
    ASSERT_FALSE(t.empty());
    EXPECT_LE(t.size(), 6u);
    EXPECT_EQ(t.front(), 1);
    EXPECT_EQ(t.back(), max_threads);
    for (std::size_t i = 1; i < t.size(); ++i)
      EXPECT_LT(t[i - 1], t[i]) << "not strictly increasing at " << i;
    for (std::size_t i = 0; i + 1 < t.size(); ++i)
      EXPECT_EQ(t[i] & (t[i] - 1), 0) << t[i] << " is not a power of two";
    // thread_class must round-trip every value in the generic space too.
    for (std::size_t i = 0; i < t.size(); ++i)
      EXPECT_EQ(s.thread_class(t[i]), static_cast<int>(i));
  }
}

TEST(Metrics, Definitions) {
  EXPECT_DOUBLE_EQ(speedup(2.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(greenup(100.0, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(edp_improvement(8.0, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(normalized_speedup(1.0, 2.0), 0.5);
  EXPECT_THROW(speedup(0.0, 1.0), Error);
}

TEST(Metrics, PerAppGeomeanGroupsInOrder) {
  const std::vector<std::string> apps{"b", "b", "a", "a", "b"};
  const std::vector<double> vals{2.0, 8.0, 3.0, 3.0, 1.0};
  const auto g = per_app_geomean(apps, vals);
  ASSERT_EQ(g.apps.size(), 2u);
  EXPECT_EQ(g.apps[0], "b");  // first-seen order
  EXPECT_EQ(g.apps[1], "a");
  EXPECT_NEAR(g.geomeans[0], std::cbrt(16.0), 1e-12);
  EXPECT_DOUBLE_EQ(g.geomeans[1], 3.0);
}

// ---------------------------------------------------------------------------
// MeasurementDb against the full suite (shared fixture — the sweep of
// 68 × 4 × 127 configurations runs once).
// ---------------------------------------------------------------------------

class DbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    machine_ = new hw::MachineModel(hw::MachineModel::haswell());
    simulator_ = new sim::Simulator(*machine_);
    space_ = new SearchSpace(SearchSpace::for_machine(*machine_));
    db_ = new MeasurementDb(*simulator_, *space_,
                            workloads::Suite::instance().all_regions());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete space_;
    delete simulator_;
    delete machine_;
  }

  static hw::MachineModel* machine_;
  static sim::Simulator* simulator_;
  static SearchSpace* space_;
  static MeasurementDb* db_;
};

hw::MachineModel* DbTest::machine_ = nullptr;
sim::Simulator* DbTest::simulator_ = nullptr;
SearchSpace* DbTest::space_ = nullptr;
MeasurementDb* DbTest::db_ = nullptr;

TEST_F(DbTest, CoversWholeSuite) {
  EXPECT_EQ(db_->num_regions(), 68);
  EXPECT_EQ(db_->num_caps(), 4);
}

TEST_F(DbTest, OracleNeverWorseThanAnyCandidate) {
  for (int r = 0; r < db_->num_regions(); r += 7) {
    for (int k = 0; k < db_->num_caps(); ++k) {
      const double best = db_->best_time(r, k);
      for (int c = 0; c < space_->num_candidates_per_cap(); c += 13)
        EXPECT_LE(best, db_->at(r, k, c).seconds + 1e-15);
      EXPECT_LE(best, db_->at_default(r, k).seconds + 1e-15);
    }
  }
}

TEST_F(DbTest, EdpOracleNeverWorseThanAnyJointPoint) {
  for (int r = 0; r < db_->num_regions(); r += 11) {
    const auto jb = db_->best_by_edp(r);
    for (int k = 0; k < db_->num_caps(); ++k)
      for (int c = 0; c < space_->num_candidates_per_cap(); c += 17)
        EXPECT_LE(jb.edp, db_->at(r, k, c).edp() + 1e-15);
  }
}

TEST_F(DbTest, LookupMatchesFreshSimulation) {
  const int r = db_->find_region("gemm", "r0_gemm");
  ASSERT_GE(r, 0);
  const auto cfg = space_->omp_config(37);
  const auto fresh = simulator_->expected(db_->region(r).region->desc, cfg,
                                          space_->power_caps()[1]);
  EXPECT_DOUBLE_EQ(db_->at(r, 1, 37).seconds, fresh.seconds);
  EXPECT_DOUBLE_EQ(db_->at(r, 1, 37).joules, fresh.joules);
}

TEST_F(DbTest, FindRegionHandlesMissing) {
  EXPECT_EQ(db_->find_region("gemm", "nope"), -1);
  EXPECT_GE(db_->find_region("lulesh", "r3_apply_accel_bc"), 0);
}

TEST_F(DbTest, BestConfigsAreDiverseAcrossSuite) {
  // The corpus must not collapse to one best configuration, otherwise
  // there is nothing for a tuner to learn.
  std::set<std::string> best_configs;
  std::set<int> best_threads;
  for (int r = 0; r < db_->num_regions(); ++r) {
    const int c = db_->best_candidate_by_time(r, 0);
    const auto cfg = space_->candidate(c);
    best_configs.insert(cfg.to_string());
    best_threads.insert(cfg.threads);
  }
  EXPECT_GE(best_configs.size(), 8u);
  EXPECT_GE(best_threads.size(), 3u);
}

TEST_F(DbTest, TrisolvOracleUsesOneThread) {
  // Paper §VI: the trisolv region is fastest single-threaded everywhere.
  const int r = db_->find_region("trisolv", "r0_forward_subst");
  ASSERT_GE(r, 0);
  for (int k = 0; k < db_->num_caps(); ++k) {
    const auto cfg = space_->candidate(db_->best_candidate_by_time(r, k));
    EXPECT_EQ(cfg.threads, 1) << "cap index " << k;
  }
}

TEST_F(DbTest, OracleBeatsDefaultOnAggregate) {
  // Geometric-mean headroom must exist (it is what the tuners chase).
  std::vector<double> speedups;
  for (int r = 0; r < db_->num_regions(); ++r)
    for (int k = 0; k < db_->num_caps(); ++k)
      speedups.push_back(db_->at_default(r, k).seconds / db_->best_time(r, k));
  const double gm = geomean(speedups);
  EXPECT_GT(gm, 1.1);
  EXPECT_LT(gm, 5.0);
}

TEST_F(DbTest, LowCapHasMoreHeadroomThanTdp) {
  // The paper's Fig. 2/3 pattern: tuning pays more at tighter caps.
  std::vector<double> low, high;
  for (int r = 0; r < db_->num_regions(); ++r) {
    low.push_back(db_->at_default(r, 0).seconds / db_->best_time(r, 0));
    high.push_back(db_->at_default(r, db_->num_caps() - 1).seconds /
                   db_->best_time(r, db_->num_caps() - 1));
  }
  EXPECT_GT(geomean(low), geomean(high));
}

TEST_F(DbTest, EdpOracleBeatsDefaultAtTdp) {
  std::vector<double> gains;
  const int tdp = db_->num_caps() - 1;
  for (int r = 0; r < db_->num_regions(); ++r) {
    const auto& d = db_->at_default(r, tdp);
    gains.push_back(d.edp() / db_->best_by_edp(r).edp);
  }
  EXPECT_GT(geomean(gains), 1.3);
}

TEST_F(DbTest, MotivatingExampleShapeHolds) {
  // §I: the LULESH boundary-condition kernel's tuning headroom declines
  // monotonically as the cap rises, its best configs use few threads, and
  // the EDP optimum is not at TDP.
  const int r = db_->find_region("lulesh", "r3_apply_accel_bc");
  ASSERT_GE(r, 0);
  double prev = 1e300;
  for (int k = 0; k < db_->num_caps(); ++k) {
    const double sp = db_->at_default(r, k).seconds / db_->best_time(r, k);
    EXPECT_GT(sp, 1.5) << "cap index " << k;
    EXPECT_LT(sp, prev);
    prev = sp;
    const auto cfg = space_->candidate(db_->best_candidate_by_time(r, k));
    EXPECT_LE(cfg.threads, 8);
  }
  const auto jb = db_->best_by_edp(r);
  EXPECT_LT(jb.cap_index, db_->num_caps() - 1);  // EDP optimum below TDP
}

TEST_F(DbTest, MemoryBoundKernelsPreferLowCapsForEdp) {
  // The race-to-halt violation at corpus scale: for clearly bandwidth-
  // bound kernels the EDP-optimal cap is one of the two lowest.
  for (const char* name : {"jacobi-2d", "fdtd-2d", "mvt", "atax"}) {
    const auto* app = workloads::Suite::instance().find(name);
    ASSERT_NE(app, nullptr);
    const int r = db_->find_region(name, app->regions[0].desc.region);
    ASSERT_GE(r, 0) << name;
    EXPECT_LE(db_->best_by_edp(r).cap_index, 1) << name;
  }
}

TEST_F(DbTest, InvalidIndicesThrow) {
  EXPECT_THROW(db_->at(-1, 0, 0), Error);
  EXPECT_THROW(db_->at(0, 9, 0), Error);
  EXPECT_THROW(db_->at(0, 0, 1000), Error);
}

}  // namespace
}  // namespace pnp::core
