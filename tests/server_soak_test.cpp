/// \file server_soak_test.cpp
/// Soak + concurrency for the network front end (serve::Server): N client
/// threads stream mixed power/power_at traffic over their own
/// connections while a mid-stream hot reload swaps the model — every
/// served result must match the single-threaded PnpTuner reference *for
/// the model version that tagged it* — and a drain-under-load shutdown
/// must answer every accepted request before EOF with the stats frame
/// accounting for every reply. Client threads never call gtest
/// assertions: they record into pre-sized slots and the main thread
/// verifies after join (the suite runs under TSan/ASan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/net.hpp"
#include "core/measurement_log.hpp"
#include "serve/server.hpp"
#include "workloads/suite.hpp"

namespace pnp {
namespace {

namespace proto = serve::protocol;

constexpr int kClients = 6;
constexpr int kPerClient = 150;
constexpr int kWindow = 8;  ///< outstanding pipeline depth per client

proto::Op op_of(const serve::TuneRequest& q) {
  return q.kind == serve::TuneRequest::Kind::PowerAt ? proto::Op::PowerAt
                                                     : proto::Op::Power;
}

class SoakFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto machine = hw::MachineModel::haswell();
    sim_ = new sim::Simulator(machine);
    auto regions = workloads::Suite::instance().all_regions();
    regions.resize(10);
    db_ = new core::MeasurementDb(
        *sim_, core::SearchSpace::for_machine(machine), regions);
    path_a_ = save_power_artifact(3, "soak_model_a.pnp");
    path_b_ = save_power_artifact(5, "soak_model_b.pnp");
  }

  static void TearDownTestSuite() {
    delete db_;
    delete sim_;
    db_ = nullptr;
    sim_ = nullptr;
  }

  static std::string save_power_artifact(int epochs, const char* name) {
    core::PnpOptions opt;
    opt.cap_onehot = false;
    opt.trainer.max_epochs = epochs;
    opt.trainer.min_loss = 0.0;
    core::PnpTuner t(*db_, opt);
    std::vector<int> all;
    for (int r = 0; r < db_->num_regions(); ++r) all.push_back(r);
    t.train_power_scenario(all);
    const std::string path = ::testing::TempDir() + name;
    t.save(path);
    return path;
  }

  /// Client c's deterministic request stream (seeded LCG per client).
  static std::vector<serve::TuneRequest> client_requests(int client, int n) {
    std::vector<serve::TuneRequest> reqs;
    std::uint64_t s = 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(client);
    const auto next = [&s] {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      return static_cast<std::uint32_t>(s >> 33);
    };
    const int regions = db_->num_regions();
    const int caps = db_->num_caps();
    for (int i = 0; i < n; ++i) {
      const int region = static_cast<int>(next() % regions);
      if (i % 3 == 2)
        reqs.push_back(serve::TuneRequest::power_at(
            region, 30.0 + static_cast<double>(next() % 600) / 10.0));
      else
        reqs.push_back(serve::TuneRequest::power(
            region, static_cast<int>(next() % caps)));
    }
    return reqs;
  }

  /// Reference answers for one request set through a freshly loaded
  /// tuner (independent code path: no cache, no batching, no server).
  static std::vector<serve::TuneResult> reference_answers(
      const std::string& artifact, std::uint64_t version,
      const std::vector<serve::TuneRequest>& reqs) {
    const core::PnpTuner ref = core::PnpTuner::load(*db_, artifact);
    std::vector<serve::TuneResult> out;
    out.reserve(reqs.size());
    for (const auto& q : reqs) {
      serve::TuneResult r;
      r.model_version = version;
      if (q.kind == serve::TuneRequest::Kind::PowerAt) {
        r.config = ref.predict_power_at(q.region, q.cap_w);
        r.cap_index = -1;
      } else {
        r.config = ref.predict_power(q.region, q.cap_index);
        r.cap_index = q.cap_index;
      }
      out.push_back(r);
    }
    return out;
  }

  static sim::Simulator* sim_;
  static core::MeasurementDb* db_;
  static std::string path_a_, path_b_;
};

sim::Simulator* SoakFixture::sim_ = nullptr;
core::MeasurementDb* SoakFixture::db_ = nullptr;
std::string SoakFixture::path_a_;
std::string SoakFixture::path_b_;

/// One client thread's recorded outcome; workers record, main asserts.
struct ClientLog {
  std::vector<proto::Response> replies;  ///< slot i = reply to request i
  int received = 0;
  int shed = 0;
  std::string failure;  ///< non-empty = transport/protocol exception text
};

/// Windowed pipelining: keep up to kWindow requests outstanding, match
/// replies (possibly out of order) back to request slots by id.
void run_client(const net::Address& addr,
                const std::vector<serve::TuneRequest>& reqs, ClientLog& log) {
  try {
    net::Socket sock = net::connect_to(addr, /*retry_ms=*/2000);
    sock.set_recv_timeout_ms(20000);
    log.replies.resize(reqs.size());
    std::size_t sent = 0;
    int outstanding = 0;
    const auto recv_one = [&] {
      auto payload = net::recv_frame(sock);
      PNP_CHECK_MSG(payload.has_value(), "unexpected EOF mid-stream");
      const proto::Response r = proto::decode_response(*payload);
      PNP_CHECK_MSG(r.id >= 1 && r.id <= reqs.size(),
                    "reply id " << r.id << " out of range");
      log.replies[static_cast<std::size_t>(r.id) - 1] = r;
      ++log.received;
      if (r.status == proto::Status::Shed) ++log.shed;
      --outstanding;
    };
    while (sent < reqs.size()) {
      proto::Request q;
      q.id = static_cast<std::uint64_t>(sent) + 1;
      q.op = op_of(reqs[sent]);
      q.tune = reqs[sent];
      net::send_frame(sock, proto::encode_request(q));
      ++sent;
      ++outstanding;
      while (outstanding >= kWindow) recv_one();
    }
    while (outstanding > 0) recv_one();
  } catch (const std::exception& e) {
    log.failure = e.what();
  }
}

TEST_F(SoakFixture, ConcurrentClientsMatchVersionTaggedReferenceAcrossReload) {
  serve::TuningService service(*db_, path_a_);
  serve::ServerOptions opt;
  opt.workers = 4;
  opt.queue_depth = 256;  // > kClients * kWindow: nothing may shed
  serve::Server server(service, opt);

  std::vector<std::vector<serve::TuneRequest>> reqs;
  for (int c = 0; c < kClients; ++c)
    reqs.push_back(client_requests(c, kPerClient));

  std::vector<ClientLog> logs(kClients);
  std::vector<std::thread> team;
  for (int c = 0; c < kClients; ++c)
    team.emplace_back(
        [&, c] { run_client(server.address(), reqs[c], logs[c]); });

  // Mid-stream hot reload from its own connection, racing the clients.
  std::uint64_t new_version = 0;
  std::string reload_failure;
  std::thread reloader([&] {
    try {
      net::Socket sock = net::connect_to(server.address(), 2000);
      sock.set_recv_timeout_ms(20000);
      proto::Request q;
      q.id = 1;
      q.op = proto::Op::Reload;
      q.reload_path = path_b_;
      net::send_frame(sock, proto::encode_request(q));
      auto payload = net::recv_frame(sock);
      PNP_CHECK_MSG(payload.has_value(), "EOF before reload reply");
      const proto::Response r = proto::decode_response(*payload);
      PNP_CHECK_MSG(r.status == proto::Status::Ok, "reload failed: " << r.error);
      new_version = r.new_version;
    } catch (const std::exception& e) {
      reload_failure = e.what();
    }
  });
  for (auto& t : team) t.join();
  reloader.join();

  ASSERT_TRUE(reload_failure.empty()) << reload_failure;
  EXPECT_EQ(new_version, 2u);

  // Every reply matches the reference for the version that tagged it.
  std::uint64_t v1_hits = 0, v2_hits = 0;
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(logs[c].failure.empty()) << "client " << c << ": "
                                         << logs[c].failure;
    ASSERT_EQ(logs[c].received, kPerClient) << "client " << c;
    ASSERT_EQ(logs[c].shed, 0) << "client " << c;
    const auto want_v1 = reference_answers(path_a_, 1, reqs[c]);
    const auto want_v2 = reference_answers(path_b_, 2, reqs[c]);
    for (int i = 0; i < kPerClient; ++i) {
      const proto::Response& r = logs[c].replies[static_cast<std::size_t>(i)];
      ASSERT_EQ(r.status, proto::Status::Ok)
          << "client " << c << " request " << i << ": " << r.error;
      ASSERT_TRUE(r.result.model_version == 1 || r.result.model_version == 2)
          << "client " << c << " request " << i << " tagged v"
          << r.result.model_version;
      const auto& want = r.result.model_version == 1
                             ? want_v1[static_cast<std::size_t>(i)]
                             : want_v2[static_cast<std::size_t>(i)];
      EXPECT_EQ(r.result.config, want.config)
          << "client " << c << " request " << i << " (v"
          << r.result.model_version << ")";
      EXPECT_EQ(r.result.cap_index, want.cap_index)
          << "client " << c << " request " << i;
      r.result.model_version == 1 ? ++v1_hits : ++v2_hits;
    }
  }
  // The reload really happened mid-stream: traffic on both sides of it.
  // (kWindow replies per client are still in flight when the reload
  // lands, so with 6×150 requests both versions must appear unless the
  // reload raced past the entire run — tolerated but worth seeing.)
  RecordProperty("v1_hits", static_cast<int>(v1_hits));
  RecordProperty("v2_hits", static_cast<int>(v2_hits));
  EXPECT_EQ(v1_hits + v2_hits,
            static_cast<std::uint64_t>(kClients) * kPerClient);

  const auto st = server.stats();
  EXPECT_EQ(st.ok, static_cast<std::uint64_t>(kClients) * kPerClient + 1);
  EXPECT_EQ(st.shed, 0u);
  EXPECT_EQ(st.errors, 0u);
  EXPECT_EQ(st.malformed, 0u);
  EXPECT_EQ(server.latency().count(),
            static_cast<std::uint64_t>(kClients) * kPerClient);
}

TEST_F(SoakFixture, DrainUnderLoadAnswersEveryAcceptedRequestExactlyOnce) {
  serve::TuningService service(*db_, path_a_);
  serve::ServerOptions opt;
  opt.workers = 2;
  opt.queue_depth = 32;
  auto server = std::make_unique<serve::Server>(service, opt);

  // Clients stream until the server goes away; each records how many
  // replies of each status it saw and how many requests it sent.
  struct DrainLog {
    std::atomic<int> sent{0};
    int ok = 0, errors = 0, shed = 0;
    bool clean_eof = false;
    std::string failure;
  };
  std::vector<DrainLog> logs(kClients);
  std::vector<std::thread> team;
  for (int c = 0; c < kClients; ++c)
    team.emplace_back([&, c] {
      DrainLog& log = logs[c];
      try {
        net::Socket sock = net::connect_to(server->address(), 2000);
        sock.set_recv_timeout_ms(20000);
        const auto reqs = client_requests(c, 64);
        std::uint64_t id = 0;
        int outstanding = 0;
        bool open = true;
        const auto recv_one = [&]() -> bool {
          auto payload = net::recv_frame(sock);
          if (!payload.has_value()) return false;  // server drained us
          const proto::Response r = proto::decode_response(*payload);
          if (r.status == proto::Status::Ok) ++log.ok;
          else if (r.status == proto::Status::Error) ++log.errors;
          else ++log.shed;
          --outstanding;
          return true;
        };
        // Stream until the drain tears the connection down (send fails
        // or a read hits EOF); a generous cap bounds the runtime if the
        // shutdown below were ever to go missing.
        while (open && id < 20000) {
          const auto& q = reqs[static_cast<std::size_t>(id) % reqs.size()];
          proto::Request req;
          req.id = ++id;
          req.op = op_of(q);
          req.tune = q;
          try {
            net::send_frame(sock, proto::encode_request(req));
          } catch (const std::exception&) {
            break;  // write side torn down by the drain
          }
          log.sent.fetch_add(1, std::memory_order_relaxed);
          ++outstanding;
          while (open && outstanding >= kWindow) open = recv_one();
        }
        // Collect every reply the server still owes, through to EOF —
        // the drain contract says they all arrive before the close.
        while (recv_one()) {
        }
        log.clean_eof = true;
      } catch (const std::exception& e) {
        log.failure = e.what();
      }
    });

  // Let traffic build, then drain while clients are mid-burst.
  for (;;) {
    std::uint64_t total = 0;
    for (auto& l : logs) total += static_cast<std::uint64_t>(l.sent.load());
    if (total >= 200) break;
    std::this_thread::yield();
  }
  server->shutdown();
  for (auto& t : team) t.join();

  // Accounting: every reply the server counted was flushed to a client
  // before its EOF — the drain lost zero accepted requests.
  std::uint64_t client_ok = 0, client_errors = 0, client_shed = 0;
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(logs[c].failure.empty()) << "client " << c << ": "
                                         << logs[c].failure;
    EXPECT_TRUE(logs[c].clean_eof) << "client " << c;
    client_ok += static_cast<std::uint64_t>(logs[c].ok);
    client_errors += static_cast<std::uint64_t>(logs[c].errors);
    client_shed += static_cast<std::uint64_t>(logs[c].shed);
  }
  const auto st = server->stats();
  EXPECT_EQ(st.ok, client_ok);
  EXPECT_EQ(st.errors, client_errors);
  EXPECT_EQ(st.shed, client_shed);
  EXPECT_EQ(st.malformed, 0u);
  EXPECT_EQ(st.connections, static_cast<std::uint64_t>(kClients));
  // Tune traffic only, ok or error, lands in the histogram.
  EXPECT_EQ(server->latency().count(), client_ok + client_errors);
  EXPECT_GT(client_ok, 0u);
  server.reset();
}

/// Drain sweep over a mixed read/write blend: every 3rd request is an
/// `observe` (feedback-loop write path) carrying a truthful on-grid
/// measurement, the rest are tunes. The write-path drain contract: an
/// observe the server acked with Ok is durably in the measurement log
/// exactly once, no acked record is lost, and no record exists without
/// having been acked — the acked sequence numbers are exactly {1..N}
/// where N is the number of records the drained log holds.
TEST_F(SoakFixture, MixedReadWriteDrainLogsEveryAckedObserveExactlyOnce) {
  const std::string log_path = ::testing::TempDir() + "soak_observe.log";
  std::remove(log_path.c_str());
  core::MeasurementLog log(log_path);

  serve::TuningService service(*db_, path_a_);
  serve::ServerOptions opt;
  opt.workers = 2;
  opt.queue_depth = 32;
  opt.observe_log = &log;
  auto server = std::make_unique<serve::Server>(service, opt);

  const int nr = db_->num_regions();
  const int nc = db_->num_caps();
  const int nomp = db_->space().num_omp_configs();

  // Truthful on-grid observe derived from the request id alone, so the
  // main thread can re-derive what any acked record must contain.
  const auto observe_for_id = [&](std::uint64_t id) {
    const int r = static_cast<int>(id % static_cast<std::uint64_t>(nr));
    const int cap = static_cast<int>(id % static_cast<std::uint64_t>(nc));
    const int cand = static_cast<int>(id % static_cast<std::uint64_t>(nomp));
    core::MeasurementRecord rec;
    rec.region = r;
    rec.cap_w = db_->space().power_caps()[static_cast<std::size_t>(cap)];
    rec.config = db_->space().candidate(cand);
    const sim::ExecutionResult& truth = db_->at(r, cap, cand);
    rec.seconds = truth.seconds;
    rec.joules = truth.joules;
    return rec;
  };

  struct MixedLog {
    std::atomic<int> sent{0};
    int tune_ok = 0, errors = 0, shed = 0;
    std::vector<std::uint64_t> observe_seqs;  ///< seq of every Ok-acked observe
    bool clean_eof = false;
    std::string failure;
  };
  std::vector<MixedLog> logs(kClients);
  std::vector<std::thread> team;
  for (int c = 0; c < kClients; ++c)
    team.emplace_back([&, c] {
      MixedLog& mlog = logs[c];
      try {
        net::Socket sock = net::connect_to(server->address(), 2000);
        sock.set_recv_timeout_ms(20000);
        const auto reqs = client_requests(c, 64);
        std::uint64_t id = 0;
        int outstanding = 0;
        bool open = true;
        const auto recv_one = [&]() -> bool {
          auto payload = net::recv_frame(sock);
          if (!payload.has_value()) return false;  // server drained us
          const proto::Response r = proto::decode_response(*payload);
          if (r.status == proto::Status::Ok) {
            if (r.id % 3 == 0)
              mlog.observe_seqs.push_back(r.observe_seq);
            else
              ++mlog.tune_ok;
          } else if (r.status == proto::Status::Error) {
            ++mlog.errors;
          } else {
            ++mlog.shed;
          }
          --outstanding;
          return true;
        };
        while (open && id < 20000) {
          proto::Request req;
          req.id = ++id;
          if (id % 3 == 0) {
            req.op = proto::Op::Observe;
            req.observe = observe_for_id(id);
          } else {
            const auto& q = reqs[static_cast<std::size_t>(id) % reqs.size()];
            req.op = op_of(q);
            req.tune = q;
          }
          try {
            net::send_frame(sock, proto::encode_request(req));
          } catch (const std::exception&) {
            break;  // write side torn down by the drain
          }
          mlog.sent.fetch_add(1, std::memory_order_relaxed);
          ++outstanding;
          while (open && outstanding >= kWindow) open = recv_one();
        }
        while (recv_one()) {
        }
        mlog.clean_eof = true;
      } catch (const std::exception& e) {
        mlog.failure = e.what();
      }
    });

  // Let mixed traffic build, then drain mid-burst.
  for (;;) {
    std::uint64_t total = 0;
    for (auto& l : logs) total += static_cast<std::uint64_t>(l.sent.load());
    if (total >= 200) break;
    std::this_thread::yield();
  }
  server->shutdown();
  for (auto& t : team) t.join();

  std::uint64_t client_tune_ok = 0, client_errors = 0, client_shed = 0;
  std::vector<std::uint64_t> acked_seqs;
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(logs[c].failure.empty()) << "client " << c << ": "
                                         << logs[c].failure;
    EXPECT_TRUE(logs[c].clean_eof) << "client " << c;
    client_tune_ok += static_cast<std::uint64_t>(logs[c].tune_ok);
    client_errors += static_cast<std::uint64_t>(logs[c].errors);
    client_shed += static_cast<std::uint64_t>(logs[c].shed);
    acked_seqs.insert(acked_seqs.end(), logs[c].observe_seqs.begin(),
                      logs[c].observe_seqs.end());
  }
  // Every request was well-formed and on-grid: the only non-Ok status a
  // client may see is Shed (queue full during the burst).
  EXPECT_EQ(client_errors, 0u);

  // Exactly-once durability: the drained log's records correspond 1:1
  // with the Ok-acked observes — the acked seqs are {1..N} with no
  // duplicates, no gaps, and no unacked extras beyond N... a record the
  // server appended but whose reply was lost would violate clean_eof
  // above (the drain flushes every admitted reply before EOF).
  const auto records = core::MeasurementLog::read_all(log_path);
  EXPECT_EQ(records.size(), log.size());
  ASSERT_EQ(acked_seqs.size(), records.size());
  const std::set<std::uint64_t> unique_seqs(acked_seqs.begin(),
                                            acked_seqs.end());
  ASSERT_EQ(unique_seqs.size(), acked_seqs.size()) << "duplicate observe ack";
  if (!unique_seqs.empty()) {
    EXPECT_EQ(*unique_seqs.begin(), 1u);
    EXPECT_EQ(*unique_seqs.rbegin(), unique_seqs.size());
  }

  // No record was half-applied or mangled: every durable record lands on
  // the grid and carries the exact truthful values some client sent.
  for (const auto& rec : records) {
    const core::GridCell cell = core::locate_observation(*db_, rec);
    const sim::ExecutionResult& truth =
        db_->at(cell.region, cell.cap, cell.candidate);
    EXPECT_EQ(rec.seconds, truth.seconds);
    EXPECT_EQ(rec.joules, truth.joules);
  }

  const auto st = server->stats();
  EXPECT_EQ(st.ok, client_tune_ok + acked_seqs.size());
  EXPECT_EQ(st.errors, 0u);
  EXPECT_EQ(st.shed, client_shed);
  EXPECT_EQ(st.malformed, 0u);
  // Only tune traffic lands in the latency histogram.
  EXPECT_EQ(server->latency().count(), client_tune_ok);
  EXPECT_GT(acked_seqs.size(), 0u);
  server.reset();
}

}  // namespace
}  // namespace pnp
