/// Unit tests for pnp::common — RNG determinism, statistics, tables,
/// serialization.

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace pnp {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng r(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 5000; ++i) ++seen[r.uniform_index(10)];
  for (int c : seen) EXPECT_GT(c, 300);  // roughly uniform
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng r(1);
  EXPECT_THROW(r.uniform_index(0), Error);
}

TEST(Rng, NormalMomentsApproximate) {
  Rng r(13);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = r.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.03);
  EXPECT_NEAR(stddev(xs), 1.0, 0.03);
}

TEST(Rng, LognormalJitterCentersNearOne) {
  Rng r(17);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = r.lognormal_jitter(0.03);
  EXPECT_NEAR(mean(xs), 1.0, 0.01);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Hash, Fnv1aStable) {
  EXPECT_EQ(fnv1a("hello"), fnv1a("hello"));
  EXPECT_NE(fnv1a("hello"), fnv1a("hellp"));
  EXPECT_NE(fnv1a(""), 0u);
}

TEST(Hash, CombineOrderMatters) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Stats, MeanGeomeanBasics) {
  std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(geomean(xs), 2.0);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(geomean(xs), Error);
}

TEST(Stats, MedianEvenOdd) {
  std::vector<double> odd{3.0, 1.0, 2.0};
  std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, FractionAtLeast) {
  std::vector<double> xs{0.5, 0.95, 1.0, 0.94};
  EXPECT_DOUBLE_EQ(fraction_at_least(xs, 0.95), 0.5);
  EXPECT_DOUBLE_EQ(fraction_below(xs, 0.95), 0.5);
}

TEST(Stats, ArgminArgmaxTieBreaksLow) {
  std::vector<double> xs{2.0, 1.0, 1.0, 3.0};
  EXPECT_EQ(argmin(xs), 1u);
  std::vector<double> ys{3.0, 3.0, 1.0};
  EXPECT_EQ(argmax(ys), 0u);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> zs{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Strings, SplitJoinTrim) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(starts_with("fo", "foo"));
}

TEST(Strings, SplitWsDropsEmpty) {
  auto parts = split_ws("  a \t b\nc ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Table, AlignmentAndCsv) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nx,1\nlonger,2.5\n");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(StateDict, RoundTripThroughStream) {
  StateDict sd;
  sd.put("alpha", {1.0, -2.5, 3.25});
  sd.put("beta", {});
  sd.put("gamma", {1e-300, 1e300});
  std::stringstream ss;
  sd.save(ss);
  const StateDict back = StateDict::load(ss);
  EXPECT_EQ(back, sd);
  EXPECT_TRUE(back.contains("alpha"));
  EXPECT_EQ(back.get("alpha").size(), 3u);
  EXPECT_THROW(back.get("missing"), Error);
}

TEST(StateDict, RejectsGarbage) {
  std::stringstream ss;
  ss << "not a statedict";
  EXPECT_THROW(StateDict::load(ss), Error);
}

TEST(CheckMacros, ThrowWithMessage) {
  try {
    PNP_CHECK_MSG(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace pnp
