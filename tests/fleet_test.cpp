/// Tests for the cross-machine transfer harness (core::Fleet +
/// core::FleetEvaluator, docs/HARDWARE.md): fleet construction over
/// generated machines, the unseen-machine split's training and scoring,
/// determinism of the split results, and the artifact-v4 machine-identity
/// rules — a fleet artifact serves every fleet machine (including ones it
/// never trained on) while a single-machine artifact refuses a foreign db.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "core/fleet.hpp"
#include "core/tuner_artifact.hpp"
#include "workloads/generator.hpp"

namespace pnp::core {
namespace {

constexpr std::uint64_t kFleetSeed = 42;

class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::GeneratorOptions gopt;
    gopt.seed = 19;
    gopt.num_regions = 6;
    corpus_ = new workloads::Corpus(workloads::Generator(gopt).generate());
    fleet_ = new Fleet(kFleetSeed, 4, corpus_->all_regions());
  }
  static void TearDownTestSuite() {
    delete fleet_;
    delete corpus_;
  }

  static PnpOptions fast_options() {
    PnpOptions opt;
    opt.trainer.max_epochs = 2;
    return opt;
  }

  static workloads::Corpus* corpus_;
  static Fleet* fleet_;
};

workloads::Corpus* FleetTest::corpus_ = nullptr;
Fleet* FleetTest::fleet_ = nullptr;

TEST_F(FleetTest, ConstructionSweepsEveryMachine) {
  ASSERT_EQ(fleet_->size(), 4);
  EXPECT_EQ(fleet_->seed(), kFleetSeed);
  const hw::MachineGenerator gen(kFleetSeed);
  for (int i = 0; i < fleet_->size(); ++i) {
    EXPECT_EQ(fleet_->machine(i).name, gen.machine(i).name);
    EXPECT_EQ(fleet_->db(i).num_regions(), 6);
    EXPECT_GT(fleet_->db(i).num_caps(), 0);
    // Each db sweeps its own machine's space — caps end at that TDP.
    EXPECT_DOUBLE_EQ(fleet_->db(i).space().tdp(), fleet_->machine(i).tdp_w);
  }
  EXPECT_THROW(fleet_->machine(-1), Error);
  EXPECT_THROW(fleet_->db(4), Error);
  EXPECT_THROW(Fleet(kFleetSeed, 0, corpus_->all_regions()), Error);
}

TEST_F(FleetTest, TrainProducesFleetArtifactWithMachineIdentity) {
  const FleetEvaluator ev(*fleet_);
  const TunerArtifact art = ev.train(/*holdout=*/1, fast_options());
  EXPECT_EQ(art.version, TunerArtifact::kFormatVersion);
  EXPECT_TRUE(art.fleet);
  EXPECT_TRUE(art.opt_machine_features);
  // Trained on machines 0..2 → three fleet fingerprints, tenant 0 first.
  ASSERT_EQ(art.fleet_fingerprints.size(), 3u);
  EXPECT_EQ(art.machine_name, fleet_->machine(0).name);
  EXPECT_EQ(art.machine_fingerprint,
            hw::machine_fingerprint(fleet_->machine(0)));
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(art.fleet_fingerprints[static_cast<std::size_t>(i)],
              hw::machine_fingerprint(fleet_->machine(i)));
  EXPECT_THROW(ev.train(/*holdout=*/0, fast_options()), Error);
  EXPECT_THROW(ev.train(/*holdout=*/4, fast_options()), Error);
}

TEST_F(FleetTest, FleetArtifactServesHeldOutMachine) {
  const FleetEvaluator ev(*fleet_);
  const TunerArtifact art = ev.train(/*holdout=*/1, fast_options());
  // Machine 3 is not in the fingerprint list — a fleet artifact still
  // loads there (that is the whole point of the transfer split).
  const MachineSplitResult res = ev.score_on(3, art);
  EXPECT_EQ(res.machine_index, 3);
  EXPECT_EQ(res.machine_name, fleet_->machine(3).name);
  EXPECT_EQ(res.fingerprint, hw::machine_fingerprint(fleet_->machine(3)));
  EXPECT_EQ(res.overall.queries,
            fleet_->db(3).num_regions() * fleet_->db(3).num_caps());
  EXPECT_GT(res.overall.geomean_speedup, 0.0);
  EXPECT_GT(res.overall.geomean_normalized, 0.0);
  EXPECT_LE(res.overall.geomean_normalized, 1.0 + 1e-9);
  ASSERT_EQ(static_cast<int>(res.per_cap.size()), fleet_->db(3).num_caps());
}

TEST_F(FleetTest, EvaluateIsDeterministic) {
  const FleetEvaluator ev(*fleet_);
  const auto a = ev.evaluate(/*holdout=*/2, fast_options());
  const auto b = ev.evaluate(/*holdout=*/2, fast_options());
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].machine_index, b[i].machine_index);
    EXPECT_EQ(a[i].fingerprint, b[i].fingerprint);
    EXPECT_DOUBLE_EQ(a[i].overall.geomean_speedup,
                     b[i].overall.geomean_speedup);
    EXPECT_DOUBLE_EQ(a[i].overall.geomean_normalized,
                     b[i].overall.geomean_normalized);
    EXPECT_EQ(a[i].overall.oracle_match, b[i].overall.oracle_match);
  }
}

TEST_F(FleetTest, SingleMachineArtifactRefusesForeignDb) {
  // Train an ordinary (non-fleet) tuner on machine 0 and try to serve
  // machine 1: the v4 machine fingerprint must refuse the load even
  // though both generated machines share the same grid *shape*.
  PnpTuner tuner(fleet_->db(0), fast_options());
  std::vector<int> all;
  for (int r = 0; r < fleet_->db(0).num_regions(); ++r) all.push_back(r);
  tuner.train_power_scenario(all);
  const TunerArtifact art = tuner.to_artifact();
  EXPECT_FALSE(art.fleet);
  EXPECT_NE(art.machine_fingerprint, 0u);

  // Same machine: loads.
  EXPECT_NO_THROW(PnpTuner::from_artifact(fleet_->db(0), art));
  // Foreign machine: refused with the cross-machine message.
  try {
    PnpTuner::from_artifact(fleet_->db(1), art);
    FAIL() << "cross-machine load was accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cross-machine"), std::string::npos);
  }
}

TEST_F(FleetTest, FleetArtifactRoundTripsThroughDisk) {
  const FleetEvaluator ev(*fleet_);
  const TunerArtifact art = ev.train(/*holdout=*/2, fast_options());
  const std::string path = ::testing::TempDir() + "/fleet_artifact.pnp";
  art.save_file(path);
  const TunerArtifact loaded = TunerArtifact::load_file(path);
  std::remove(path.c_str());
  EXPECT_TRUE(loaded.fleet);
  EXPECT_EQ(loaded.machine_name, art.machine_name);
  EXPECT_EQ(loaded.machine_fingerprint, art.machine_fingerprint);
  EXPECT_EQ(loaded.fleet_fingerprints, art.fleet_fingerprints);
  EXPECT_TRUE(loaded.opt_machine_features);
  // The reloaded artifact scores the held-out machines identically.
  const MachineSplitResult from_mem = ev.score_on(2, art);
  const MachineSplitResult from_disk = ev.score_on(2, loaded);
  EXPECT_DOUBLE_EQ(from_mem.overall.geomean_speedup,
                   from_disk.overall.geomean_speedup);
  EXPECT_DOUBLE_EQ(from_mem.overall.geomean_normalized,
                   from_disk.overall.geomean_normalized);
}

}  // namespace
}  // namespace pnp::core
