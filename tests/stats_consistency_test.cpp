/// \file stats_consistency_test.cpp
/// TuningService::stats() consistency under concurrency (the documented
/// contract in serve/tuning_service.hpp): while tuner threads hammer the
/// service, every stats() snapshot must satisfy
///
///   encode_hits + encode_misses <= requests
///   batches + coalesced         <= requests
///
/// — the derived counters may trail `requests` (a request is counted on
/// entry, its cache/batch accounting lands later) but must never lead
/// it, which is exactly what the release/acquire ordering plus the
/// "requests loaded last" read order buys. At quiescence both turn into
/// the equalities service_test already asserts. Snapshot readers race
/// real tuners on the leader/follower path, the coalescing path, and
/// the worker-shard path.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/tuning_service.hpp"
#include "workloads/suite.hpp"

namespace pnp::serve {
namespace {

constexpr int kTuners = 6;
constexpr int kReaders = 2;
constexpr int kRequestsPerTuner = 400;

class StatsConsistencyFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto machine = hw::MachineModel::haswell();
    sim_ = new sim::Simulator(machine);
    auto regions = workloads::Suite::instance().all_regions();
    regions.resize(10);
    db_ = new core::MeasurementDb(
        *sim_, core::SearchSpace::for_machine(machine), regions);
    core::PnpOptions opt;
    opt.trainer.max_epochs = 3;
    opt.trainer.min_loss = 0.0;
    core::PnpTuner t(*db_, opt);
    std::vector<int> all;
    for (int r = 0; r < db_->num_regions(); ++r) all.push_back(r);
    t.train_power_scenario(all);
    model_path_ = ::testing::TempDir() + "stats_consistency_model.pnp";
    t.save(model_path_);
  }

  static void TearDownTestSuite() {
    delete db_;
    delete sim_;
    db_ = nullptr;
    sim_ = nullptr;
  }

  /// Hammer `service` with kTuners threads while kReaders threads pull
  /// stats() snapshots as fast as they can. Violations are counted, not
  /// asserted, inside the threads (TSan-clean gtest usage); the main
  /// thread asserts after join.
  static void hammer_and_check(TuningService& service) {
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> hits_lead{0}, batch_lead{0}, snapshots{0};

    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int i = 0; i < kReaders; ++i) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          const TuningService::Stats st = service.stats();
          snapshots.fetch_add(1, std::memory_order_relaxed);
          if (st.encode_hits + st.encode_misses > st.requests)
            hits_lead.fetch_add(1, std::memory_order_relaxed);
          if (st.batches + st.coalesced > st.requests)
            batch_lead.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    std::vector<std::thread> tuners;
    tuners.reserve(kTuners);
    for (int t = 0; t < kTuners; ++t) {
      tuners.emplace_back([&service, t] {
        for (int i = 0; i < kRequestsPerTuner; ++i) {
          const int region = (t * 31 + i) % service.db().num_regions();
          const int cap = (t + i) % service.db().num_caps();
          service.tune(TuneRequest::power(region, cap));
        }
      });
    }
    for (auto& th : tuners) th.join();
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : readers) th.join();

    EXPECT_EQ(hits_lead.load(), 0u)
        << "a snapshot saw encode_hits + encode_misses > requests";
    EXPECT_EQ(batch_lead.load(), 0u)
        << "a snapshot saw batches + coalesced > requests";
    EXPECT_GT(snapshots.load(), 0u);

    // Quiescent: the inequalities close into the documented equalities.
    const TuningService::Stats st = service.stats();
    EXPECT_EQ(st.requests,
              static_cast<std::uint64_t>(kTuners) * kRequestsPerTuner);
    EXPECT_EQ(st.encode_hits + st.encode_misses, st.requests);
    EXPECT_EQ(st.batches + st.coalesced, st.requests);
  }

  static sim::Simulator* sim_;
  static core::MeasurementDb* db_;
  static std::string model_path_;
};

sim::Simulator* StatsConsistencyFixture::sim_ = nullptr;
core::MeasurementDb* StatsConsistencyFixture::db_ = nullptr;
std::string StatsConsistencyFixture::model_path_;

TEST_F(StatsConsistencyFixture, LeaderFollowerPathNeverLeads) {
  TuningServiceOptions opt;
  TuningService service(*db_, model_path_, opt);
  hammer_and_check(service);
}

TEST_F(StatsConsistencyFixture, CoalescingBatchPathNeverLeads) {
  TuningServiceOptions opt;
  opt.max_batch = 8;
  opt.batch_wait = std::chrono::microseconds(100);
  TuningService service(*db_, model_path_, opt);
  hammer_and_check(service);
}

TEST_F(StatsConsistencyFixture, WorkerShardPathNeverLeads) {
  TuningServiceOptions opt;
  opt.worker_shards = 3;
  TuningService service(*db_, model_path_, opt);
  hammer_and_check(service);
}

}  // namespace
}  // namespace pnp::serve
