/// Tests for the cross-suite generalization harness (core::Evaluator):
/// split validation, test-grid enumeration, metric correctness against
/// known-perfect (oracle) and known-neutral (default) predictions, the
/// unseen-cap protocol, and the split builders.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/evaluator.hpp"
#include "serve/inference_engine.hpp"
#include "workloads/generator.hpp"

namespace pnp::core {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::GeneratorOptions gopt;
    gopt.seed = 19;
    gopt.num_regions = 10;
    corpus_ = new workloads::Corpus(workloads::Generator(gopt).generate());
    machine_ = new hw::MachineModel(hw::MachineModel::haswell());
    simulator_ = new sim::Simulator(*machine_);
    space_ = new SearchSpace(SearchSpace::for_machine(*machine_));
    db_ = new MeasurementDb(*simulator_, *space_, corpus_->all_regions());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete space_;
    delete simulator_;
    delete machine_;
    delete corpus_;
  }

  static EvalSplit half_split() {
    EvalSplit s;
    s.name = "half";
    for (int r = 0; r < db_->num_regions(); ++r)
      (r < db_->num_regions() / 2 ? s.train_regions : s.test_regions)
          .push_back(r);
    return s;
  }

  static EvaluatorOptions fast_options() {
    EvaluatorOptions opt;
    opt.pnp.trainer.max_epochs = 2;
    return opt;
  }

  static workloads::Corpus* corpus_;
  static hw::MachineModel* machine_;
  static sim::Simulator* simulator_;
  static SearchSpace* space_;
  static MeasurementDb* db_;
};

workloads::Corpus* EvaluatorTest::corpus_ = nullptr;
hw::MachineModel* EvaluatorTest::machine_ = nullptr;
sim::Simulator* EvaluatorTest::simulator_ = nullptr;
SearchSpace* EvaluatorTest::space_ = nullptr;
MeasurementDb* EvaluatorTest::db_ = nullptr;

TEST_F(EvaluatorTest, MalformedSplitsThrow) {
  const Evaluator ev(*simulator_, *db_);
  EvalSplit s = half_split();
  s.train_regions.clear();
  EXPECT_THROW(ev.queries(s), pnp::Error);

  s = half_split();
  s.test_regions.clear();
  EXPECT_THROW(ev.queries(s), pnp::Error);

  s = half_split();
  s.test_regions.push_back(s.train_regions[0]);  // overlap
  EXPECT_THROW(ev.queries(s), pnp::Error);

  s = half_split();
  s.test_regions.push_back(db_->num_regions());  // out of range
  EXPECT_THROW(ev.queries(s), pnp::Error);

  s = half_split();
  s.test_regions.push_back(s.test_regions[0]);  // duplicate test region
  EXPECT_THROW(ev.queries(s), pnp::Error);

  s = half_split();
  s.train_regions.push_back(s.train_regions[0]);  // duplicate train region
  EXPECT_THROW(ev.queries(s), pnp::Error);

  s = half_split();
  for (int k = 0; k < db_->num_caps(); ++k) s.train_cap_indices.push_back(k);
  EXPECT_THROW(ev.queries(s), pnp::Error);  // holds out no cap

  s = half_split();
  s.train_cap_indices = {0, 0, 1};  // duplicate cap index
  EXPECT_THROW(ev.queries(s), pnp::Error);
}

TEST_F(EvaluatorTest, QueriesEnumerateTestGridRowMajor) {
  const Evaluator ev(*simulator_, *db_);
  const EvalSplit s = half_split();
  const auto qs = ev.queries(s);
  ASSERT_EQ(qs.size(), s.test_regions.size() *
                           static_cast<std::size_t>(db_->num_caps()));
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto C = static_cast<std::size_t>(db_->num_caps());
    EXPECT_EQ(qs[i].region, s.test_regions[i / C]);
    EXPECT_EQ(qs[i].cap_index, static_cast<int>(i % C));
  }

  const EvalSplit hc = with_heldout_cap(half_split(), 0, db_->num_caps());
  const auto hqs = ev.queries(hc);
  ASSERT_EQ(hqs.size(), hc.test_regions.size());
  for (const auto& q : hqs) EXPECT_EQ(q.cap_index, 0);
}

TEST_F(EvaluatorTest, OraclePredictionsScorePerfectly) {
  const Evaluator ev(*simulator_, *db_);
  const EvalSplit s = half_split();
  const auto qs = ev.queries(s);
  std::vector<sim::OmpConfig> oracle;
  for (const auto& q : qs)
    oracle.push_back(space_->candidate(
        db_->best_candidate_by_time(q.region, q.cap_index)));
  const auto res = ev.score(s, oracle);
  EXPECT_EQ(res.name, "half");
  EXPECT_EQ(res.overall.queries, static_cast<int>(qs.size()));
  EXPECT_NEAR(res.overall.geomean_normalized, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(res.overall.oracle_match, 1.0);
  EXPECT_GE(res.overall.geomean_speedup, 1.0);
  ASSERT_EQ(res.per_cap.size(), static_cast<std::size_t>(db_->num_caps()));
  for (const auto& m : res.per_cap) {
    EXPECT_NEAR(m.geomean_normalized, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(m.oracle_match, 1.0);
  }
}

TEST_F(EvaluatorTest, DefaultPredictionsScoreNeutrally) {
  const Evaluator ev(*simulator_, *db_);
  const EvalSplit s = half_split();
  const auto qs = ev.queries(s);
  const std::vector<sim::OmpConfig> dflt(qs.size(),
                                         simulator_->default_config());
  const auto res = ev.score(s, dflt);
  EXPECT_NEAR(res.overall.geomean_speedup, 1.0, 1e-12);
  EXPECT_LE(res.overall.geomean_normalized, 1.0 + 1e-12);
  for (std::size_t i = 0; i < res.per_app_speedup.apps.size(); ++i)
    EXPECT_NEAR(res.per_app_speedup.geomeans[i], 1.0, 1e-12);
}

TEST_F(EvaluatorTest, ScoreRejectsWrongConfigCount) {
  const Evaluator ev(*simulator_, *db_);
  const EvalSplit s = half_split();
  std::vector<sim::OmpConfig> configs(3, simulator_->default_config());
  EXPECT_THROW(ev.score(s, configs), pnp::Error);
}

TEST_F(EvaluatorTest, EvaluateEndToEndProducesSaneMetrics) {
  const Evaluator ev(*simulator_, *db_);
  const auto res = ev.evaluate(half_split(), fast_options());
  EXPECT_GT(res.overall.queries, 0);
  EXPECT_TRUE(std::isfinite(res.overall.geomean_speedup));
  EXPECT_GT(res.overall.geomean_speedup, 0.0);
  EXPECT_GT(res.overall.geomean_normalized, 0.0);
  // Predicted configs may land off the sweep grid (default-chunk with a
  // non-default thread count) and slightly beat the grid oracle, so only
  // a sanity ceiling applies here.
  EXPECT_LT(res.overall.geomean_normalized, 2.0);
  EXPECT_GE(res.overall.oracle_match, 0.0);
  EXPECT_LE(res.overall.oracle_match, 1.0);
  EXPECT_EQ(res.num_train_regions, db_->num_regions() / 2);
  EXPECT_EQ(res.num_test_regions,
            db_->num_regions() - db_->num_regions() / 2);
  // Every test application shows up in the per-app aggregation.
  EXPECT_FALSE(res.per_app_speedup.apps.empty());
}

TEST_F(EvaluatorTest, EvaluateIsDeterministic) {
  const Evaluator ev(*simulator_, *db_);
  const auto a = ev.evaluate(half_split(), fast_options());
  const auto b = ev.evaluate(half_split(), fast_options());
  EXPECT_DOUBLE_EQ(a.overall.geomean_speedup, b.overall.geomean_speedup);
  EXPECT_DOUBLE_EQ(a.overall.geomean_normalized,
                   b.overall.geomean_normalized);
  EXPECT_DOUBLE_EQ(a.overall.oracle_match, b.overall.oracle_match);
}

TEST_F(EvaluatorTest, HeldOutCapUsesScalarFeatureAndScoresHeldCapOnly) {
  const Evaluator ev(*simulator_, *db_);
  const int high = db_->num_caps() - 1;
  const EvalSplit s = with_heldout_cap(half_split(), high, db_->num_caps());
  const auto res = ev.evaluate(s, fast_options());
  ASSERT_EQ(res.eval_cap_indices.size(), 1u);
  EXPECT_EQ(res.eval_cap_indices[0], high);
  ASSERT_EQ(res.per_cap.size(), 1u);
  EXPECT_EQ(res.overall.queries, res.per_cap[0].queries);
  EXPECT_GT(res.overall.geomean_speedup, 0.0);

  // The trained tuner must carry the unseen-cap recipe (scalar cap).
  const PnpTuner tuner = ev.train(s, fast_options());
  const auto cfg =
      tuner.predict_power_at(s.test_regions[0], 0.5 * space_->tdp());
  EXPECT_GT(cfg.threads, 0);
}

TEST_F(EvaluatorTest, PredictPowerAtBatchMatchesSingleQueryPath) {
  // The served unseen-cap path (cached encodings + scalar cap feature)
  // must be bit-identical to PnpTuner::predict_power_at — pnp_eval's
  // unseen-cap metrics ride on it.
  const Evaluator ev(*simulator_, *db_);
  const EvalSplit s = with_heldout_cap(half_split(), 0, db_->num_caps());
  const double cap_w = db_->space().power_caps()[0];

  const PnpTuner direct = ev.train(s, fast_options());
  std::vector<sim::OmpConfig> expected;
  for (int r : s.test_regions)
    expected.push_back(direct.predict_power_at(r, cap_w));

  // Training is deterministic, so a second train() yields the same model.
  serve::InferenceEngine engine(ev.train(s, fast_options()));
  const auto batched = engine.predict_power_at_batch(s.test_regions, cap_w);
  // Repeat to exercise the warm encoding cache.
  const auto again = engine.predict_power_at_batch(s.test_regions, cap_w);
  ASSERT_EQ(batched.size(), expected.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].threads, expected[i].threads);
    EXPECT_EQ(batched[i].schedule, expected[i].schedule);
    EXPECT_EQ(batched[i].chunk, expected[i].chunk);
    EXPECT_EQ(again[i].threads, expected[i].threads);
  }
  EXPECT_THROW(engine.predict_power_at_batch(s.test_regions, -5.0),
               pnp::Error);

  // A one-hot-cap model must refuse arbitrary-cap serving.
  serve::InferenceEngine onehot(ev.train(half_split(), fast_options()));
  EXPECT_THROW(onehot.predict_power_at_batch(s.test_regions, cap_w),
               pnp::Error);
}

TEST_F(EvaluatorTest, SplitBuildersPartitionByAppAndCap) {
  const auto split = make_app_split(*db_, "by-name", [](const std::string& a) {
    return !a.empty() && a.back() % 2 == 0;
  });
  EXPECT_EQ(split.name, "by-name");
  EXPECT_EQ(split.train_regions.size() + split.test_regions.size(),
            static_cast<std::size_t>(db_->num_regions()));
  for (int r : split.test_regions) {
    const auto& app = db_->region(r).region->desc.app;
    EXPECT_EQ(app.back() % 2, 0) << app;
  }

  const auto hc = with_heldout_cap(half_split(), 1, db_->num_caps());
  ASSERT_EQ(hc.train_cap_indices.size(),
            static_cast<std::size_t>(db_->num_caps()) - 1);
  for (int k : hc.train_cap_indices) EXPECT_NE(k, 1);
  EXPECT_THROW(with_heldout_cap(half_split(), -1, db_->num_caps()),
               pnp::Error);
  EXPECT_THROW(with_heldout_cap(half_split(), db_->num_caps(),
                                db_->num_caps()),
               pnp::Error);
  // One cap total: the complement would be empty = the all-caps sentinel.
  EXPECT_THROW(with_heldout_cap(half_split(), 0, 1), pnp::Error);
}

}  // namespace
}  // namespace pnp::core
