/// \file histogram_test.cpp
/// common::LatencyHistogram contract tests (the serving layer's latency
/// export, docs/SERVING.md): quantile bracketing (the reported window
/// always contains the exact sample quantile, and overestimates by at
/// most one sub-bucket), deterministic cross-thread merge (merged
/// per-thread histograms equal the histogram of the concatenated
/// samples, in any merge order), overflow-bucket behavior above
/// kMaxTracked, and the stats-frame encode/decode round trip including
/// rejection of every malformed-wire shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/latency_histogram.hpp"
#include "common/wire.hpp"

namespace pnp {
namespace {

using Hist = LatencyHistogram;

/// Deterministic sample stream: a tiny LCG stretched over several
/// octaves, with exact duplicates mixed in.
std::vector<std::uint64_t> lcg_samples(int n, std::uint64_t seed) {
  std::vector<std::uint64_t> v;
  v.reserve(static_cast<std::size_t>(n));
  std::uint64_t s = seed;
  for (int i = 0; i < n; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    // Spread over [0, 2^26) with a bias toward small values, as real
    // latencies are.
    const int shift = static_cast<int>((s >> 58) % 27);
    v.push_back((s >> 33) >> (26 - shift) % 27);
  }
  return v;
}

/// The exact q-quantile the histogram brackets: the ceil(q*n)-th smallest.
std::uint64_t exact_quantile(std::vector<std::uint64_t> v, double q) {
  std::sort(v.begin(), v.end());
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(v.size())));
  rank = std::min(std::max<std::size_t>(rank, 1), v.size());
  return v[rank - 1];
}

// --- bucket layout -----------------------------------------------------------

TEST(LatencyHistogram, BucketIndexAndBoundsAreMutuallyConsistent) {
  // Every probed value must land in a bucket whose bounds contain it.
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 300; ++v) probes.push_back(v);
  for (int p = 3; p < 40; ++p) {
    const std::uint64_t b = 1ull << p;
    probes.insert(probes.end(), {b - 1, b, b + 1});
  }
  probes.insert(probes.end(),
                {Hist::kMaxTracked - 1, Hist::kMaxTracked,
                 Hist::kMaxTracked + 1, ~0ull});
  for (const std::uint64_t v : probes) {
    const std::size_t idx = Hist::bucket_index(v);
    ASSERT_LT(idx, Hist::kBucketCount) << "value " << v;
    const auto b = Hist::bucket_bounds(idx);
    EXPECT_LE(b.lower, v) << "value " << v << " bucket " << idx;
    EXPECT_GE(b.upper, v) << "value " << v << " bucket " << idx;
  }
  // Above kMaxTracked is exactly the overflow bucket.
  EXPECT_EQ(Hist::bucket_index(Hist::kMaxTracked), Hist::kOverflowBucket - 1);
  EXPECT_EQ(Hist::bucket_index(Hist::kMaxTracked + 1), Hist::kOverflowBucket);
  EXPECT_EQ(Hist::bucket_index(~0ull), Hist::kOverflowBucket);
}

TEST(LatencyHistogram, BucketsTileTheTrackedRangeWithoutGapsOrOverlap) {
  std::uint64_t expect_lower = 0;
  for (std::size_t i = 0; i + 1 < Hist::kBucketCount; ++i) {
    const auto b = Hist::bucket_bounds(i);
    EXPECT_EQ(b.lower, expect_lower) << "bucket " << i;
    ASSERT_GE(b.upper, b.lower) << "bucket " << i;
    // Sub-bucket resolution: width ≤ lower/8 for every octave bucket.
    if (b.lower >= Hist::kSubBuckets) {
      EXPECT_LE(b.upper - b.lower + 1, b.lower / 8 + 1) << "bucket " << i;
    }
    expect_lower = b.upper + 1;
  }
  EXPECT_EQ(expect_lower, Hist::kMaxTracked + 1);
  const auto of = Hist::bucket_bounds(Hist::kOverflowBucket);
  EXPECT_EQ(of.lower, Hist::kMaxTracked + 1);
  EXPECT_EQ(of.upper, ~0ull);
  EXPECT_THROW(Hist::bucket_bounds(Hist::kBucketCount), Error);
}

// --- quantile bracketing -----------------------------------------------------

TEST(LatencyHistogram, QuantileBoundsBracketTheExactSampleQuantile) {
  const auto samples = lcg_samples(5000, 0x9e3779b97f4a7c15ull);
  Hist h;
  for (const auto v : samples) h.record(v);
  ASSERT_EQ(h.count(), samples.size());

  for (const double q : {0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0}) {
    const std::uint64_t exact = exact_quantile(samples, q);
    const auto b = h.quantile_bounds(q);
    EXPECT_LE(b.lower, exact) << "q=" << q;
    EXPECT_GE(b.upper, exact) << "q=" << q;
    // The scalar form is the conservative upper bound, and in-range
    // buckets are at most one sub-bucket wide: ≤ 12.5% + 1 ns high.
    EXPECT_EQ(h.quantile_ns(q), b.upper);
    EXPECT_LE(b.upper, exact + exact / 8 + 1) << "q=" << q;
  }
  // p100's upper bound is clamped to the exact max.
  EXPECT_EQ(h.quantile_ns(1.0), h.max_ns());
  EXPECT_EQ(h.max_ns(), *std::max_element(samples.begin(), samples.end()));
}

TEST(LatencyHistogram, QuantilesOfTinyAndSingularDistributions) {
  Hist h;
  h.record(42);
  // One sample: every quantile is that sample, exactly (42 < kSubBuckets*8
  // octave → still bracketed; upper clamped to max).
  for (const double q : {0.001, 0.5, 0.99, 1.0}) {
    const auto b = h.quantile_bounds(q);
    EXPECT_LE(b.lower, 42u) << "q=" << q;
    EXPECT_EQ(b.upper, 42u) << "q=" << q;
  }
  // Sub-kSubBuckets values get exact single-value buckets.
  Hist tiny;
  for (std::uint64_t v = 0; v < Hist::kSubBuckets; ++v) tiny.record(v);
  EXPECT_EQ(tiny.quantile_bounds(0.0001).lower, 0u);
  EXPECT_EQ(tiny.quantile_bounds(0.0001).upper, 0u);
  EXPECT_EQ(tiny.quantile_ns(1.0), Hist::kSubBuckets - 1);
}

TEST(LatencyHistogram, QuantileOnEmptyHistogramThrows) {
  Hist h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_THROW(h.quantile_bounds(0.5), Error);
}

// --- overflow ----------------------------------------------------------------

TEST(LatencyHistogram, OverflowBucketKeepsExactCountAndMax) {
  Hist h;
  h.record(100);
  h.record(Hist::kMaxTracked + 1);
  h.record(~0ull);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_EQ(h.max_ns(), ~0ull);
  // A quantile landing in overflow reports [kMaxTracked+1, exact max].
  const auto b = h.quantile_bounds(0.9);
  EXPECT_EQ(b.lower, Hist::kMaxTracked + 1);
  EXPECT_EQ(b.upper, ~0ull);
  // But a quantile below it is untouched by the overflow samples.
  EXPECT_LE(h.quantile_bounds(0.33).upper, 103u);
}

// --- merge -------------------------------------------------------------------

TEST(LatencyHistogram, MergeEqualsConcatenationInAnyOrder) {
  const auto all = lcg_samples(3000, 7);
  constexpr int kThreads = 6;

  // Reference: one histogram over the concatenated stream.
  Hist want;
  for (const auto v : all) want.record(v);

  // kThreads histograms recorded concurrently over disjoint slices, then
  // merged in two different orders.
  std::vector<Hist> parts(kThreads);
  {
    std::vector<std::thread> team;
    for (int t = 0; t < kThreads; ++t)
      team.emplace_back([&, t] {
        for (std::size_t i = static_cast<std::size_t>(t); i < all.size();
             i += kThreads)
          parts[static_cast<std::size_t>(t)].record(all[i]);
      });
    for (auto& th : team) th.join();
  }
  Hist fwd, rev;
  for (int t = 0; t < kThreads; ++t) fwd.merge(parts[t]);
  for (int t = kThreads - 1; t >= 0; --t) rev.merge(parts[t]);

  for (const Hist* got : {&fwd, &rev}) {
    EXPECT_EQ(got->count(), want.count());
    EXPECT_EQ(got->total_ns(), want.total_ns());
    EXPECT_EQ(got->max_ns(), want.max_ns());
    for (std::size_t i = 0; i < Hist::kBucketCount; ++i)
      ASSERT_EQ(got->bucket(i), want.bucket(i)) << "bucket " << i;
  }
}

TEST(LatencyHistogram, ConcurrentRecordIntoOneHistogramLosesNothing) {
  Hist h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> team;
  for (int t = 0; t < kThreads; ++t)
    team.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<std::uint64_t>(t * 1000 + i % 777));
    });
  for (auto& th : team) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_sum = 0;
  for (std::size_t i = 0; i < Hist::kBucketCount; ++i) bucket_sum += h.bucket(i);
  EXPECT_EQ(bucket_sum, h.count());
}

// --- wire round trip ---------------------------------------------------------

TEST(LatencyHistogram, EncodeDecodeRoundTripsEveryCounter) {
  Hist h;
  for (const auto v : lcg_samples(2000, 11)) h.record(v);
  h.record(Hist::kMaxTracked + 5);  // make the overflow bucket non-empty

  std::string payload;
  h.encode(payload);

  Hist got;
  got.record(999999);  // decode must replace, not merge
  wire::Reader r(payload);
  got.decode(r);
  EXPECT_TRUE(r.done());

  EXPECT_EQ(got.count(), h.count());
  EXPECT_EQ(got.total_ns(), h.total_ns());
  EXPECT_EQ(got.max_ns(), h.max_ns());
  EXPECT_EQ(got.overflow_count(), h.overflow_count());
  for (std::size_t i = 0; i < Hist::kBucketCount; ++i)
    ASSERT_EQ(got.bucket(i), h.bucket(i)) << "bucket " << i;
  // Re-encoding the decoded histogram is byte-identical.
  std::string again;
  got.encode(again);
  EXPECT_EQ(again, payload);
}

TEST(LatencyHistogram, EmptyHistogramRoundTrips) {
  Hist h;
  std::string payload;
  h.encode(payload);
  Hist got;
  wire::Reader r(payload);
  got.decode(r);
  EXPECT_EQ(got.count(), 0u);
  EXPECT_EQ(got.max_ns(), 0u);
}

TEST(LatencyHistogram, EncodeUnderConcurrentRecordAlwaysDecodes) {
  // encode() must emit an internally consistent snapshot even while
  // workers hammer record(): every frame decodes cleanly (sum == count,
  // no trailing bytes), exactly what a live stats poller relies on.
  Hist h;
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> team;
  for (int t = 0; t < kWriters; ++t)
    team.emplace_back([&h, &stop, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed))
        h.record(static_cast<std::uint64_t>(t) * 131 + (i++ % 100003));
    });
  // Don't start sampling until the writers are demonstrably running, so
  // every encode round genuinely races live record() calls.
  while (h.count() < 1000) std::this_thread::yield();
  std::uint64_t prev_count = 0;
  for (int round = 0; round < 200; ++round) {
    std::string payload;
    h.encode(payload);
    Hist got;
    wire::Reader r(payload);
    ASSERT_NO_THROW(got.decode(r)) << "round " << round;
    EXPECT_TRUE(r.done()) << "round " << round;
    // Snapshots are monotone: counts only grow between encodes.
    EXPECT_GE(got.count(), prev_count) << "round " << round;
    prev_count = got.count();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : team) th.join();
  EXPECT_GT(prev_count, 0u);
}

TEST(LatencyHistogram, DecodeRejectsMalformedWire) {
  Hist h;
  h.record(5);
  h.record(5000);
  std::string good;
  h.encode(good);

  const auto expect_reject = [](std::string payload) {
    Hist sink;
    wire::Reader r(payload);
    EXPECT_THROW(sink.decode(r), Error) << "payload size " << payload.size();
  };

  // Truncation at every prefix length.
  for (std::size_t n = 0; n < good.size(); ++n)
    expect_reject(good.substr(0, n));

  // Layout tag mismatch (a histogram built with different constants).
  {
    std::string bad = good;
    bad[0] = static_cast<char>(bad[0] ^ 1);
    expect_reject(bad);
  }
  // Bucket index out of range / unsorted / duplicated, and a bucket-sum
  // that disagrees with the count header — rebuild the wire form by hand.
  const auto build = [&](std::uint32_t idx0, std::uint32_t idx1,
                         std::uint64_t n0, std::uint64_t n1,
                         std::uint64_t count) {
    std::string out;
    wire::put_u32(out, (static_cast<std::uint32_t>(Hist::kSubBits) << 16) |
                           static_cast<std::uint32_t>(Hist::kBucketCount));
    wire::put_u64(out, count);
    wire::put_u64(out, 5005);  // total
    wire::put_u64(out, 5000);  // max
    wire::put_u32(out, 2);     // nonzero buckets
    wire::put_u32(out, idx0);
    wire::put_u64(out, n0);
    wire::put_u32(out, idx1);
    wire::put_u64(out, n1);
    return out;
  };
  const auto i5 = static_cast<std::uint32_t>(Hist::bucket_index(5));
  const auto i5k = static_cast<std::uint32_t>(Hist::bucket_index(5000));
  expect_reject(build(i5, static_cast<std::uint32_t>(Hist::kBucketCount), 1, 1,
                      2));                      // index out of range
  expect_reject(build(i5k, i5, 1, 1, 2));       // unsorted
  expect_reject(build(i5, i5, 1, 1, 2));        // duplicate
  expect_reject(build(i5, i5k, 0, 2, 2));       // zero count entry
  expect_reject(build(i5, i5k, 1, 2, 2));       // bucket sum != count
}

}  // namespace
}  // namespace pnp
