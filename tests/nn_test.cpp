/// Unit tests for the NN substrate: matrix kernels, losses, optimizers,
/// serialization, and end-to-end trainability on toy tasks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "nn/loss.hpp"
#include "nn/matrix.hpp"
#include "nn/optim.hpp"
#include "nn/rgcn_net.hpp"
#include "nn/trainer.hpp"

namespace pnp::nn {
namespace {

TEST(Matrix, ShapeAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, XavierWithinBounds) {
  Rng rng(3);
  const Matrix m = Matrix::xavier(10, 20, rng);
  const double a = std::sqrt(6.0 / 30.0);
  for (double v : m.flat()) {
    EXPECT_GE(v, -a);
    EXPECT_LE(v, a);
  }
}

TEST(Matrix, GemmAgainstHandComputed) {
  Matrix a(2, 3), b(3, 2), c(2, 2);
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  gemm_acc(a, b, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
  // Accumulation semantics.
  gemm_acc(a, b, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 116.0);
}

TEST(Matrix, TransposedGemmsAgree) {
  Rng rng(11);
  Matrix a = Matrix::xavier(4, 3, rng);
  Matrix b = Matrix::xavier(4, 5, rng);
  // a^T b via gemm_tn vs explicit transpose + gemm.
  Matrix at(3, 4);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 3; ++j) at(j, i) = a(i, j);
  Matrix c1(3, 5), c2(3, 5);
  gemm_tn_acc(a, b, c1);
  gemm_acc(at, b, c2);
  for (std::size_t i = 0; i < c1.size(); ++i)
    EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-12);
}

TEST(Matrix, GemmNtAgrees) {
  Rng rng(13);
  Matrix a = Matrix::xavier(4, 3, rng);
  Matrix b = Matrix::xavier(5, 3, rng);
  Matrix bt(3, 5);
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 3; ++j) bt(j, i) = b(i, j);
  Matrix c1(4, 5), c2(4, 5);
  gemm_nt_acc(a, b, c1);
  gemm_acc(a, bt, c2);
  for (std::size_t i = 0; i < c1.size(); ++i)
    EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-12);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 2), c(2, 2);
  EXPECT_THROW(gemm_acc(a, b, c), Error);
  EXPECT_THROW(a.add_scaled(b, 1.0), Error);
}

TEST(Matrix, BiasAndColsum) {
  Matrix m(2, 3);
  m.fill(1.0);
  std::vector<double> bias{1.0, 2.0, 3.0};
  add_bias_rows(m, bias);
  EXPECT_DOUBLE_EQ(m(0, 2), 4.0);
  std::vector<double> cs(3, 0.0);
  colsum_acc(m, cs);
  EXPECT_DOUBLE_EQ(cs[0], 4.0);
  EXPECT_DOUBLE_EQ(cs[2], 8.0);
}

TEST(Loss, SoftmaxSumsToOne) {
  std::vector<double> logits{1.0, 2.0, 3.0};
  const auto p = softmax(logits);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_GT(p[2], p[1]);
}

TEST(Loss, CrossEntropyMatchesClosedForm) {
  std::vector<double> logits{0.0, 0.0};
  std::vector<double> grad(2);
  const double l = softmax_cross_entropy(logits, 0, grad);
  EXPECT_NEAR(l, std::log(2.0), 1e-12);
  EXPECT_NEAR(grad[0], -0.5, 1e-12);
  EXPECT_NEAR(grad[1], 0.5, 1e-12);
}

TEST(Loss, CrossEntropyGradIsFiniteDifferenceCorrect) {
  std::vector<double> logits{0.3, -1.2, 0.7, 2.0};
  std::vector<double> grad(4);
  softmax_cross_entropy(logits, 2, grad);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    auto lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    std::vector<double> dummy(4);
    const double fd = (softmax_cross_entropy(lp, 2, dummy) -
                       softmax_cross_entropy(lm, 2, dummy)) /
                      (2 * eps);
    EXPECT_NEAR(grad[i], fd, 1e-6);
  }
}

TEST(Loss, NumericallyStableForHugeLogits) {
  std::vector<double> logits{1000.0, -1000.0};
  std::vector<double> grad(2);
  const double l = softmax_cross_entropy(logits, 0, grad);
  EXPECT_NEAR(l, 0.0, 1e-9);
  EXPECT_TRUE(std::isfinite(grad[1]));
}

TEST(Optim, SgdStepsDownhill) {
  // Minimize f(w) = (w-3)^2 by hand-feeding gradients.
  Param p("w", Matrix::zeros(1, 1));
  std::vector<Param*> ps{&p};
  Sgd opt(0.1);
  for (int i = 0; i < 200; ++i) {
    p.g(0, 0) = 2.0 * (p.w(0, 0) - 3.0);
    opt.step(ps);
    p.g.zero();
  }
  EXPECT_NEAR(p.w(0, 0), 3.0, 1e-6);
}

TEST(Optim, SgdMomentumConvergesFasterOnRavine) {
  // On an ill-conditioned quadratic, momentum needs fewer steps than
  // plain SGD with the same learning rate.
  auto run = [](double momentum) {
    Param p("w", Matrix::zeros(1, 2));
    p.w(0, 0) = 5.0;
    p.w(0, 1) = 5.0;
    std::vector<Param*> ps{&p};
    Sgd opt(0.02, momentum);
    int steps = 0;
    while (steps < 5000) {
      p.g(0, 0) = 2.0 * 10.0 * p.w(0, 0);  // steep axis
      p.g(0, 1) = 2.0 * 0.5 * p.w(0, 1);   // shallow axis
      opt.step(ps);
      p.g.zero();
      ++steps;
      if (std::abs(p.w(0, 0)) < 1e-3 && std::abs(p.w(0, 1)) < 1e-3) break;
    }
    return steps;
  };
  EXPECT_LT(run(0.9), run(0.0));
}

TEST(Optim, AdamConvergesOnQuadratic) {
  Param p("w", Matrix::zeros(1, 2));
  std::vector<Param*> ps{&p};
  auto opt = Adam::plain(0.05);
  for (int i = 0; i < 600; ++i) {
    p.g(0, 0) = 2.0 * (p.w(0, 0) - 1.0);
    p.g(0, 1) = 2.0 * (p.w(0, 1) + 2.0);
    opt->step(ps);
    p.g.zero();
  }
  EXPECT_NEAR(p.w(0, 0), 1.0, 1e-3);
  EXPECT_NEAR(p.w(0, 1), -2.0, 1e-3);
}

TEST(Optim, AdamWDecaysWeightsWithoutGradient) {
  Param p("w", Matrix::zeros(1, 1));
  p.w(0, 0) = 1.0;
  std::vector<Param*> ps{&p};
  auto opt = Adam::adamw_amsgrad(1e-3, 0.5);
  for (int i = 0; i < 10; ++i) {
    p.g.zero();  // zero gradient: only decoupled decay acts
    opt->step(ps);
  }
  EXPECT_LT(p.w(0, 0), 1.0);
  EXPECT_GT(p.w(0, 0), 0.9);  // ~ (1 - lr*wd)^10
}

TEST(Optim, FrozenParamsUntouched) {
  Param p("w", Matrix::zeros(1, 1));
  p.trainable = false;
  p.g(0, 0) = 100.0;
  std::vector<Param*> ps{&p};
  auto opt = Adam::plain(0.1);
  opt->step(ps);
  EXPECT_DOUBLE_EQ(p.w(0, 0), 0.0);
}

TEST(Optim, Names) {
  EXPECT_EQ(Adam::plain(1e-3)->name(), "adam");
  EXPECT_EQ(Adam::adamw_amsgrad()->name(), "adamw");
  EXPECT_EQ(Sgd(0.1).name(), "sgd");
}

// ---------------------------------------------------------------------------
// RgcnNet structural tests (gradient correctness lives in
// nn_gradcheck_test.cpp).
// ---------------------------------------------------------------------------

graph::GraphTensors toy_graph(int num_nodes, int vocab_size,
                              std::uint64_t seed) {
  graph::GraphTensors g;
  g.name = "toy";
  g.num_nodes = num_nodes;
  Rng rng(seed);
  for (int i = 0; i < num_nodes; ++i) {
    g.token.push_back(
        static_cast<int>(rng.uniform_index(static_cast<std::size_t>(vocab_size))));
    g.kind.push_back(static_cast<int>(rng.uniform_index(3)));
  }
  for (int rel = 0; rel < graph::kNumEdgeRelations; ++rel) {
    for (int e = 0; e < num_nodes; ++e) {
      const int s = static_cast<int>(
          rng.uniform_index(static_cast<std::size_t>(num_nodes)));
      const int d = static_cast<int>(
          rng.uniform_index(static_cast<std::size_t>(num_nodes)));
      g.rel_edges[static_cast<std::size_t>(2 * rel)].emplace_back(s, d);
      g.rel_edges[static_cast<std::size_t>(2 * rel + 1)].emplace_back(d, s);
    }
  }
  return g;
}

RgcnNetConfig toy_config(int vocab_size) {
  RgcnNetConfig c;
  c.vocab_size = vocab_size;
  c.emb_dim = 6;
  c.rgcn_layers = 2;
  c.hidden = 7;
  c.dense_hidden1 = 8;
  c.dense_hidden2 = 5;
  c.head_sizes = {3, 2};
  c.extra_features = 2;
  c.seed = 99;
  return c;
}

TEST(RgcnNet, ForwardShapes) {
  RgcnNet net(toy_config(10));
  const auto g = toy_graph(9, 10, 5);
  const auto gc = net.encode(g);
  EXPECT_EQ(static_cast<int>(gc.readout.size()), 7);
  EXPECT_EQ(gc.H.size(), 3u);  // emb + 2 layers
  const std::vector<double> extra{0.5, -0.5};
  const auto dc = net.dense_forward(gc.readout, extra);
  EXPECT_EQ(static_cast<int>(dc.logits.size()), 5);
  EXPECT_EQ(net.head_logits(dc, 0).size(), 3u);
  EXPECT_EQ(net.head_logits(dc, 1).size(), 2u);
}

TEST(RgcnNet, DeterministicForward) {
  RgcnNet a(toy_config(10)), b(toy_config(10));
  const auto g = toy_graph(9, 10, 5);
  const std::vector<double> extra{0.1, 0.2};
  const auto da = a.forward(g, extra);
  const auto db = b.forward(g, extra);
  for (std::size_t i = 0; i < da.logits.size(); ++i)
    EXPECT_DOUBLE_EQ(da.logits[i], db.logits[i]);
}

TEST(RgcnNet, ExtraFeaturesChangeOutput) {
  RgcnNet net(toy_config(10));
  const auto g = toy_graph(9, 10, 5);
  const auto d1 = net.forward(g, std::vector<double>{0.0, 0.0});
  const auto d2 = net.forward(g, std::vector<double>{5.0, -3.0});
  bool differ = false;
  for (std::size_t i = 0; i < d1.logits.size(); ++i)
    if (std::abs(d1.logits[i] - d2.logits[i]) > 1e-9) differ = true;
  EXPECT_TRUE(differ);
}

TEST(RgcnNet, StateDictRoundTrip) {
  RgcnNet a(toy_config(10));
  auto cfg_b = toy_config(10);
  cfg_b.seed = 123456;  // different init
  RgcnNet b(cfg_b);
  const auto g = toy_graph(9, 10, 5);
  const std::vector<double> extra{0.1, 0.2};
  b.load_state_dict(a.state_dict());
  const auto da = a.forward(g, extra);
  const auto db = b.forward(g, extra);
  for (std::size_t i = 0; i < da.logits.size(); ++i)
    EXPECT_DOUBLE_EQ(da.logits[i], db.logits[i]);
}

TEST(RgcnNet, GnnOnlyLoadPreservesDense) {
  RgcnNet a(toy_config(10));
  auto cfg_b = toy_config(10);
  cfg_b.seed = 4242;
  RgcnNet b(cfg_b);
  const auto before = b.state_dict();
  b.load_state_dict(a.state_dict(), /*load_gnn_only=*/true);
  const auto after = b.state_dict();
  // GNN params now equal a's; dense params unchanged from b's init.
  EXPECT_EQ(after.get("emb.token"), a.state_dict().get("emb.token"));
  EXPECT_EQ(after.get("dense.w1"), before.get("dense.w1"));
  EXPECT_NE(after.get("rgcn.0.w0"), before.get("rgcn.0.w0"));
}

TEST(RgcnNet, FreezeGnnStopsGnnUpdates) {
  RgcnNet net(toy_config(10));
  net.set_gnn_frozen(true);
  EXPECT_TRUE(net.gnn_frozen());
  EXPECT_LT(net.num_weights(/*trainable_only=*/true),
            net.num_weights(/*trainable_only=*/false));
  // Frozen GNN backward is a no-op: grads stay zero.
  const auto g = toy_graph(9, 10, 5);
  const auto gc = net.encode(g);
  std::vector<double> dr(7, 1.0);
  net.gnn_backward(gc, dr);
  for (Param* p : net.params()) {
    if (p->name.rfind("rgcn.", 0) == 0 || p->name.rfind("emb.", 0) == 0) {
      for (double v : p->g.flat()) EXPECT_DOUBLE_EQ(v, 0.0);
    }
  }
}

TEST(RgcnNet, BasisDecompositionRuns) {
  auto cfg = toy_config(10);
  cfg.num_bases = 2;
  RgcnNet net(cfg);
  const auto g = toy_graph(9, 10, 5);
  const auto dc = net.forward(g, std::vector<double>{0.0, 0.0});
  EXPECT_EQ(dc.logits.size(), 5u);
  // Far fewer relation weights than the full model.
  RgcnNet full(toy_config(10));
  EXPECT_LT(net.num_weights(), full.num_weights());
}

TEST(RgcnNet, RejectsBadConfigs) {
  auto cfg = toy_config(10);
  cfg.vocab_size = 0;
  EXPECT_THROW(RgcnNet{cfg}, Error);
  cfg = toy_config(10);
  cfg.head_sizes.clear();
  EXPECT_THROW(RgcnNet{cfg}, Error);
}

TEST(RgcnNet, RejectsEmptyGraph) {
  RgcnNet net(toy_config(10));
  graph::GraphTensors g;
  g.num_nodes = 0;
  EXPECT_THROW(net.encode(g), Error);
}

// ---------------------------------------------------------------------------
// Trainer: toy-task convergence.
// ---------------------------------------------------------------------------

TEST(Trainer, LearnsToSeparateTwoGraphClasses) {
  // Class 0: nodes mostly token 1; class 1: nodes mostly token 2. The net
  // must learn to classify by token content.
  auto cfg = toy_config(4);
  cfg.extra_features = 0;
  cfg.head_sizes = {2};
  RgcnNet net(cfg);

  std::vector<graph::GraphTensors> graphs;
  std::vector<TrainSample> samples;
  for (int i = 0; i < 12; ++i) {
    auto g = toy_graph(8, 1, static_cast<std::uint64_t>(i));
    const int label = i % 2;
    for (auto& t : g.token) t = label + 1;
    graphs.push_back(std::move(g));
  }
  for (int i = 0; i < 12; ++i) {
    TrainSample s;
    s.graph = &graphs[static_cast<std::size_t>(i)];
    s.members.push_back(SampleMember{{}, {i % 2}});
    samples.push_back(std::move(s));
  }

  auto opt = Adam::plain(5e-3);
  TrainerConfig tc;
  tc.max_epochs = 120;
  tc.batch_size = 4;
  tc.min_loss = 1e-3;
  const auto rep = train(net, *opt, samples, tc);
  EXPECT_EQ(evaluate_accuracy(net, samples), 1.0);
  EXPECT_LT(rep.final_loss, rep.epoch_loss.front());
}

TEST(Trainer, ExtraFeaturesAloneCanDriveLabels) {
  // Same graph for every sample; label is determined by the extra feature.
  auto cfg = toy_config(5);
  cfg.extra_features = 1;
  cfg.head_sizes = {2};
  RgcnNet net(cfg);
  const auto g = toy_graph(8, 5, 77);

  std::vector<TrainSample> samples;
  TrainSample s;
  s.graph = &g;
  for (int i = 0; i < 8; ++i)
    s.members.push_back(
        SampleMember{{i % 2 ? 1.0 : -1.0}, {i % 2}});
  samples.push_back(std::move(s));

  auto opt = Adam::plain(1e-2);
  TrainerConfig tc;
  tc.max_epochs = 200;
  tc.min_loss = 1e-3;
  tc.patience = 50;
  train(net, *opt, samples, tc);
  EXPECT_EQ(evaluate_accuracy(net, samples), 1.0);
}

TEST(Trainer, FrozenGnnTrainsFasterPerEpoch) {
  auto cfg = toy_config(6);
  cfg.extra_features = 0;
  cfg.head_sizes = {2};

  std::vector<graph::GraphTensors> graphs;
  for (int i = 0; i < 16; ++i)
    graphs.push_back(toy_graph(30, 6, static_cast<std::uint64_t>(i)));
  std::vector<TrainSample> samples;
  for (int i = 0; i < 16; ++i) {
    TrainSample s;
    s.graph = &graphs[static_cast<std::size_t>(i)];
    s.members.push_back(SampleMember{{}, {i % 2}});
    samples.push_back(std::move(s));
  }

  TrainerConfig tc;
  tc.max_epochs = 30;
  tc.patience = 1000;  // run all epochs for a fair timing comparison
  tc.min_loss = 0.0;

  // Wall clock on a noisy shared box: compare best-of-3 runs, not single
  // samples — the minimum strips scheduler preemption from both sides.
  double full_s = 1e30, frozen_s = 1e30;
  int full_epochs = -1, frozen_epochs = -1;
  for (int rep = 0; rep < 3; ++rep) {
    RgcnNet full(cfg);
    auto o1 = Adam::plain(1e-3);
    const auto rep_full = train(full, *o1, samples, tc);
    full_s = std::min(full_s, rep_full.seconds);
    full_epochs = rep_full.epochs_run;

    RgcnNet frozen(cfg);
    frozen.set_gnn_frozen(true);
    auto o2 = Adam::plain(1e-3);
    const auto rep_frozen = train(frozen, *o2, samples, tc);
    frozen_s = std::min(frozen_s, rep_frozen.seconds);
    frozen_epochs = rep_frozen.epochs_run;
  }
  EXPECT_EQ(full_epochs, frozen_epochs);
  // The cached-encode path must be substantially faster (paper: 4.18×).
  EXPECT_LT(frozen_s, full_s);
}

TEST(Trainer, PredictLabelsMatchesEvaluate) {
  auto cfg = toy_config(4);
  cfg.extra_features = 0;
  cfg.head_sizes = {2, 3};
  RgcnNet net(cfg);
  const auto g = toy_graph(8, 4, 3);
  const auto preds = predict_labels(net, g, {});
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_GE(preds[0], 0);
  EXPECT_LT(preds[0], 2);
  EXPECT_GE(preds[1], 0);
  EXPECT_LT(preds[1], 3);
}

TEST(Trainer, RejectsEmptySampleSet) {
  RgcnNet net(toy_config(4));
  auto opt = Adam::plain(1e-3);
  std::vector<TrainSample> samples;
  TrainerConfig tc;
  EXPECT_THROW(train(net, *opt, samples, tc), Error);
}

}  // namespace
}  // namespace pnp::nn
