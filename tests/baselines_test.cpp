/// Tests for the baseline tuners (BLISS-style and OpenTuner-like):
/// budget accounting, sanity of the returned configurations, and the
/// relationship oracle ≥ tuner ≥ worst case.

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/baselines.hpp"
#include "core/measurement_db.hpp"
#include "workloads/suite.hpp"

namespace pnp::core {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    machine_ = new hw::MachineModel(hw::MachineModel::haswell());
    simulator_ = new sim::Simulator(*machine_);
    space_ = new SearchSpace(SearchSpace::for_machine(*machine_));
    db_ = new MeasurementDb(*simulator_, *space_,
                            workloads::Suite::instance().all_regions());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete space_;
    delete simulator_;
    delete machine_;
  }

  static hw::MachineModel* machine_;
  static sim::Simulator* simulator_;
  static SearchSpace* space_;
  static MeasurementDb* db_;
};

hw::MachineModel* BaselinesTest::machine_ = nullptr;
sim::Simulator* BaselinesTest::simulator_ = nullptr;
SearchSpace* BaselinesTest::space_ = nullptr;
MeasurementDb* BaselinesTest::db_ = nullptr;

TEST_F(BaselinesTest, BlissRespectsSamplingBudget) {
  BaselineOptions opt;
  opt.bliss_samples = 20;
  BlissTuner bliss(*simulator_, *space_, opt);
  const auto& desc = db_->region(0).region->desc;
  const auto c = bliss.tune_at_cap(desc, 60.0);
  EXPECT_LE(c.executions, 20);
  EXPECT_GE(c.executions, 5);
}

TEST_F(BaselinesTest, OpenTunerRespectsEvalBudget) {
  BaselineOptions opt;
  opt.opentuner_evals = 40;
  OpenTunerLike otl(*simulator_, *space_, opt);
  const auto& desc = db_->region(0).region->desc;
  const auto c = otl.tune_edp(desc);
  EXPECT_LE(c.executions, 40);
  EXPECT_GE(c.executions, 2);
}

TEST_F(BaselinesTest, ChoicesAreValidSpacePoints) {
  BaselineOptions opt;
  BlissTuner bliss(*simulator_, *space_, opt);
  OpenTunerLike otl(*simulator_, *space_, opt);
  for (int r : {0, 20, 40, 60}) {
    const auto& desc = db_->region(r).region->desc;
    for (const auto& c : {bliss.tune_at_cap(desc, 40.0),
                          otl.tune_at_cap(desc, 40.0)}) {
      const bool on_grid = space_->omp_index(c.cfg) >= 0;
      const bool is_default = c.cfg == space_->default_config();
      EXPECT_TRUE(on_grid || is_default) << c.cfg.to_string();
    }
    const auto je = bliss.tune_edp(desc);
    EXPECT_GE(je.cap_index, 0);
    EXPECT_LT(je.cap_index, 4);
  }
}

TEST_F(BaselinesTest, NeverBeatTheOracleMeaningfully) {
  // Baselines pick from the same space the oracle scans; with noisy
  // sampling their *selected* configuration can be at most marginally
  // better than the oracle's noiseless best (ties / jitter).
  BaselineOptions opt;
  BlissTuner bliss(*simulator_, *space_, opt);
  OpenTunerLike otl(*simulator_, *space_, opt);
  for (int r : {3, 17, 33, 51}) {
    const auto& desc = db_->region(r).region->desc;
    for (int k : {0, 3}) {
      const double cap = space_->power_caps()[static_cast<std::size_t>(k)];
      const double oracle = db_->best_time(r, k);
      for (const auto& c :
           {bliss.tune_at_cap(desc, cap), otl.tune_at_cap(desc, cap)}) {
        const double t = simulator_->expected(desc, c.cfg, cap).seconds;
        EXPECT_GE(t, oracle * 0.999);
      }
    }
  }
}

TEST_F(BaselinesTest, UsuallyBeatTheDefault) {
  // Aggregate sanity: sampling tuners should recover most of the headroom.
  BaselineOptions opt;
  BlissTuner bliss(*simulator_, *space_, opt);
  std::vector<double> norm;
  for (int r = 0; r < db_->num_regions(); r += 6) {
    const auto& desc = db_->region(r).region->desc;
    const double cap = space_->power_caps()[0];
    const auto c = bliss.tune_at_cap(desc, cap);
    const double t = simulator_->expected(desc, c.cfg, cap).seconds;
    norm.push_back(db_->at_default(r, 0).seconds / t);
  }
  EXPECT_GT(geomean(norm), 1.0);
}

TEST_F(BaselinesTest, DeterministicGivenSeed) {
  BaselineOptions opt;
  opt.seed = 4242;
  const auto& desc = db_->region(10).region->desc;
  BlissTuner b1(*simulator_, *space_, opt);
  BlissTuner b2(*simulator_, *space_, opt);
  const auto c1 = b1.tune_at_cap(desc, 70.0);
  const auto c2 = b2.tune_at_cap(desc, 70.0);
  EXPECT_TRUE(c1.cfg == c2.cfg);
  OpenTunerLike o1(*simulator_, *space_, opt);
  OpenTunerLike o2(*simulator_, *space_, opt);
  EXPECT_TRUE(o1.tune_edp(desc).cfg == o2.tune_edp(desc).cfg);
}

TEST_F(BaselinesTest, SeedsChangeTrajectories) {
  BaselineOptions a, b;
  a.seed = 1;
  b.seed = 2;
  int differ = 0;
  BlissTuner ta(*simulator_, *space_, a);
  BlissTuner tb(*simulator_, *space_, b);
  for (int r : {5, 15, 25, 35, 45}) {
    const auto& desc = db_->region(r).region->desc;
    if (!(ta.tune_at_cap(desc, 40.0).cfg == tb.tune_at_cap(desc, 40.0).cfg))
      ++differ;
  }
  EXPECT_GE(differ, 1);
}

}  // namespace
}  // namespace pnp::core
