// End-to-end tests for the serving feedback loop (docs/SERVING.md,
// "Model lifecycle"): observe → MeasurementLog → RetrainController
// (replay, warm-start fine-tune, held-out gate) → TuningService::reload.
//
// The positive path proves a weak incumbent measurably improves after
// online ingestion and is republished through reload(); every negative
// path proves the incumbent keeps serving bit-identical predictions at
// an unchanged version when the candidate is worse, corrupt, or the log
// is poisoned.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/evaluator.hpp"
#include "core/measurement_log.hpp"
#include "core/pnp_tuner.hpp"
#include "core/tuner_artifact.hpp"
#include "serve/retrainer.hpp"
#include "serve/tuning_service.hpp"
#include "workloads/suite.hpp"

namespace pnp::serve {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

class RetrainFixture : public ::testing::Test {
 protected:
  RetrainFixture()
      : machine_(hw::MachineModel::haswell()),
        sim_(machine_),
        db_(sim_, core::SearchSpace::for_machine(machine_),
            workloads::Suite::instance().all_regions()) {}

  /// Train a deliberately weak incumbent (2 epochs) and save it.
  std::string save_weak_incumbent(const std::string& name) {
    core::PnpOptions o;
    o.trainer.max_epochs = 2;
    core::PnpTuner tuner(db_, o);
    std::vector<int> all;
    for (int r = 0; r < db_.num_regions(); ++r) all.push_back(r);
    tuner.train_power_scenario(all);
    const std::string path = temp_path(name);
    tuner.save(path);
    return path;
  }

  /// Truthful observations for every grid cell of the given regions'
  /// first candidates — enough fresh records to trigger a round.
  void log_truth(core::MeasurementLog& log, int num_regions) {
    const auto& space = db_.space();
    for (int r = 0; r < num_regions; ++r) {
      for (int k = 0; k < db_.num_caps(); ++k) {
        core::MeasurementRecord m;
        m.region = r;
        m.cap_w = space.power_caps()[static_cast<std::size_t>(k)];
        m.config = space.candidate(0);
        const auto& res = db_.at(r, k, 0);
        m.seconds = res.seconds;
        m.joules = res.joules;
        log.append(m);
      }
    }
  }

  /// Full (region × cap) prediction grid through the service — the
  /// "what would a client see" witness for bit-identity checks.
  std::vector<sim::OmpConfig> serve_grid(TuningService& service) {
    std::vector<sim::OmpConfig> grid;
    for (int r = 0; r < db_.num_regions(); ++r)
      for (int k = 0; k < db_.num_caps(); ++k)
        grid.push_back(service.tune(TuneRequest::power(r, k)).config);
    return grid;
  }

  hw::MachineModel machine_;
  sim::Simulator sim_;
  core::MeasurementDb db_;
};

TEST_F(RetrainFixture, ConstructorValidatesOptions) {
  const std::string model = save_weak_incumbent("rt_ctor.pnp");
  TuningService service(db_, model, {});

  RetrainOptions missing_log;
  missing_log.publish_path = temp_path("rt_ctor_cand.pnp");
  EXPECT_THROW(RetrainController(sim_, service, missing_log), Error);

  RetrainOptions missing_publish;
  missing_publish.log_path = temp_path("rt_ctor_log.bin");
  EXPECT_THROW(RetrainController(sim_, service, missing_publish), Error);

  RetrainOptions bad_holdout;
  bad_holdout.log_path = temp_path("rt_ctor_log.bin");
  bad_holdout.publish_path = temp_path("rt_ctor_cand.pnp");
  bad_holdout.holdout_regions = {db_.num_regions()};
  EXPECT_THROW(RetrainController(sim_, service, bad_holdout), Error);
}

TEST_F(RetrainFixture, NoNewDataIsANoOp) {
  const std::string model = save_weak_incumbent("rt_nodata.pnp");
  TuningService service(db_, model, {});
  const std::string log_path = temp_path("rt_nodata_log.bin");
  std::remove(log_path.c_str());
  core::MeasurementLog log(log_path);

  RetrainOptions opt;
  opt.log_path = log_path;
  opt.publish_path = temp_path("rt_nodata_cand.pnp");
  RetrainController ctl(sim_, service, opt);

  EXPECT_EQ(ctl.run_once(), RetrainController::Outcome::NoNewData);
  EXPECT_EQ(ctl.stats().attempts, 0u);
  EXPECT_EQ(service.model_version(), 1u);
}

TEST_F(RetrainFixture, ImprovedCandidateIsPublishedAndServedImmediately) {
  const std::string model = save_weak_incumbent("rt_improve.pnp");
  TuningService service(db_, model, {});
  const std::string log_path = temp_path("rt_improve_log.bin");
  std::remove(log_path.c_str());
  core::MeasurementLog log(log_path);
  log_truth(log, 4);

  RetrainOptions opt;
  opt.log_path = log_path;
  opt.publish_path = temp_path("rt_improve_cand.pnp");
  opt.fine_tune.max_epochs = 60;
  RetrainController ctl(sim_, service, opt);

  // Incumbent's held-out quality before the loop runs.
  core::EvalSplit split;
  split.name = "gate";
  split.test_regions = ctl.holdout_regions();
  for (int r = 0; r < db_.num_regions(); ++r)
    if (!std::count(split.test_regions.begin(), split.test_regions.end(), r))
      split.train_regions.push_back(r);
  const core::Evaluator ev(sim_, db_);
  const auto queries = ev.queries(split);
  const auto score = [&](TuningService& s) {
    std::vector<sim::OmpConfig> cfgs;
    for (const auto& q : queries)
      cfgs.push_back(s.tune(TuneRequest::power(q.region, q.cap_index)).config);
    return ev.score(split, cfgs).overall;
  };
  const auto before = score(service);

  ASSERT_EQ(ctl.run_once(), RetrainController::Outcome::Published);
  EXPECT_EQ(ctl.stats().published, 1u);
  EXPECT_EQ(ctl.stats().observed, 16u);
  EXPECT_EQ(ctl.stats().last_published_version, 2u);
  EXPECT_EQ(service.model_version(), 2u);

  // The model measurably improved on the held-out split, through the
  // very service clients are hitting.
  const auto after = score(service);
  EXPECT_GT(after.geomean_speedup, before.geomean_speedup);
  EXPECT_GE(after.oracle_match, before.oracle_match);

  // The published artifact round-trips: a fresh service loading the
  // candidate file serves the same predictions.
  TuningService fresh(db_, opt.publish_path, {});
  for (const auto& q : queries)
    EXPECT_TRUE(
        fresh.tune(TuneRequest::power(q.region, q.cap_index)).config ==
        service.tune(TuneRequest::power(q.region, q.cap_index)).config);
}

TEST_F(RetrainFixture, WorseCandidateIsGateRejectedAndIncumbentUntouched) {
  const std::string model = save_weak_incumbent("rt_worse.pnp");
  TuningService service(db_, model, {});
  const std::string log_path = temp_path("rt_worse_log.bin");
  std::remove(log_path.c_str());
  core::MeasurementLog log(log_path);
  log_truth(log, 2);

  RetrainOptions opt;
  opt.log_path = log_path;
  opt.publish_path = temp_path("rt_worse_cand.pnp");
  opt.fine_tune.max_epochs = 60;
  // An unreachable gate margin: even a genuinely better candidate cannot
  // clear it, standing in for "fine-tune made things worse on held-out".
  opt.min_speedup_gain = 100.0;
  RetrainController ctl(sim_, service, opt);

  const auto grid_before = serve_grid(service);
  ASSERT_EQ(ctl.run_once(), RetrainController::Outcome::RejectedGate);
  EXPECT_EQ(ctl.stats().rejected_gate, 1u);
  EXPECT_EQ(ctl.stats().published, 0u);

  // Incumbent version and predictions bit-identical after the rejection.
  EXPECT_EQ(service.model_version(), 1u);
  const auto grid_after = serve_grid(service);
  ASSERT_EQ(grid_before.size(), grid_after.size());
  for (std::size_t i = 0; i < grid_before.size(); ++i)
    EXPECT_TRUE(grid_before[i] == grid_after[i]) << "grid cell " << i;
}

TEST_F(RetrainFixture, CorruptCandidateNeverServes) {
  const std::string model = save_weak_incumbent("rt_corrupt.pnp");
  TuningService service(db_, model, {});
  const std::string log_path = temp_path("rt_corrupt_log.bin");
  std::remove(log_path.c_str());
  core::MeasurementLog log(log_path);
  log_truth(log, 4);

  RetrainOptions opt;
  opt.log_path = log_path;
  opt.publish_path = temp_path("rt_corrupt_cand.pnp");
  opt.fine_tune.max_epochs = 60;
  // Corrupt the candidate artifact after the save, before the reload —
  // a torn disk write, in effect. reload() must refuse it.
  opt.test_hook_after_save = [](const std::string& path) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << "garbage";
  };
  RetrainController ctl(sim_, service, opt);

  const auto grid_before = serve_grid(service);
  ASSERT_EQ(ctl.run_once(), RetrainController::Outcome::RejectedCandidate);
  EXPECT_EQ(ctl.stats().rejected_candidate, 1u);
  EXPECT_EQ(ctl.stats().published, 0u);
  EXPECT_EQ(service.model_version(), 1u);
  EXPECT_EQ(service.stats().failed_reloads, 1u);

  const auto grid_after = serve_grid(service);
  for (std::size_t i = 0; i < grid_before.size(); ++i)
    EXPECT_TRUE(grid_before[i] == grid_after[i]) << "grid cell " << i;
}

TEST_F(RetrainFixture, PoisonedLogIsRejectedWholesaleAndRepeatably) {
  const std::string model = save_weak_incumbent("rt_poison.pnp");
  TuningService service(db_, model, {});
  const std::string log_path = temp_path("rt_poison_log.bin");
  std::remove(log_path.c_str());
  {
    core::MeasurementLog log(log_path);
    log_truth(log, 2);
  }
  {
    // Poison the tail the way an external writer (or bit rot) would —
    // bytes the hardened reader must refuse.
    std::ofstream os(log_path, std::ios::binary | std::ios::app);
    os << "POISONED BYTES";
  }

  RetrainOptions opt;
  opt.log_path = log_path;
  opt.publish_path = temp_path("rt_poison_cand.pnp");
  opt.fine_tune.max_epochs = 60;
  RetrainController ctl(sim_, service, opt);

  const auto grid_before = serve_grid(service);
  const auto& train_before = ctl.train_db();
  const double cell_before = train_before.at(0, 0, 0).seconds;

  ASSERT_EQ(ctl.run_once(), RetrainController::Outcome::RejectedLog);
  EXPECT_EQ(ctl.stats().rejected_log, 1u);
  EXPECT_EQ(ctl.stats().observed, 0u);
  EXPECT_EQ(ctl.stats().attempts, 0u);

  // Nothing was applied (even the intact prefix), nothing trained,
  // nothing published — and the next round rejects again rather than
  // consuming past the poison.
  EXPECT_DOUBLE_EQ(ctl.train_db().at(0, 0, 0).seconds, cell_before);
  EXPECT_EQ(service.model_version(), 1u);
  ASSERT_EQ(ctl.run_once(), RetrainController::Outcome::RejectedLog);
  EXPECT_EQ(ctl.stats().rejected_log, 2u);

  const auto grid_after = serve_grid(service);
  for (std::size_t i = 0; i < grid_before.size(); ++i)
    EXPECT_TRUE(grid_before[i] == grid_after[i]) << "grid cell " << i;
}

TEST_F(RetrainFixture, OffGridObservationIsRejectedLog) {
  const std::string model = save_weak_incumbent("rt_offgrid.pnp");
  TuningService service(db_, model, {});
  const std::string log_path = temp_path("rt_offgrid_log.bin");
  std::remove(log_path.c_str());
  {
    core::MeasurementLog log(log_path);
    log_truth(log, 1);
    // Structurally valid record that cannot land on this service's grid.
    core::MeasurementRecord m;
    m.region = db_.num_regions() + 7;
    m.cap_w = db_.space().power_caps()[0];
    m.config = db_.space().candidate(0);
    m.seconds = 1.0;
    m.joules = 40.0;
    log.append(m);
  }

  RetrainOptions opt;
  opt.log_path = log_path;
  opt.publish_path = temp_path("rt_offgrid_cand.pnp");
  RetrainController ctl(sim_, service, opt);

  ASSERT_EQ(ctl.run_once(), RetrainController::Outcome::RejectedLog);
  EXPECT_EQ(ctl.stats().observed, 0u);  // all-or-nothing: prefix not applied
  EXPECT_EQ(service.model_version(), 1u);
}

TEST_F(RetrainFixture, BackgroundThreadPublishesAndStopsCleanly) {
  const std::string model = save_weak_incumbent("rt_thread.pnp");
  TuningService service(db_, model, {});
  const std::string log_path = temp_path("rt_thread_log.bin");
  std::remove(log_path.c_str());
  core::MeasurementLog log(log_path);
  log_truth(log, 4);

  RetrainOptions opt;
  opt.log_path = log_path;
  opt.publish_path = temp_path("rt_thread_cand.pnp");
  opt.fine_tune.max_epochs = 60;
  RetrainController ctl(sim_, service, opt);
  ctl.start(std::chrono::milliseconds(20));

  // Serve reads concurrently with the background round.
  for (int i = 0; i < 200; ++i)
    service.tune(TuneRequest::power(i % db_.num_regions(), 0));
  // Wait (bounded) for the publish to land.
  for (int i = 0; i < 500 && ctl.stats().published == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ctl.stop();

  EXPECT_EQ(ctl.stats().published, 1u);
  EXPECT_EQ(service.model_version(), 2u);
  // stop() is idempotent and start() can be called again.
  ctl.stop();
  ctl.start(std::chrono::milliseconds(50));
  ctl.stop();
}

}  // namespace
}  // namespace pnp::serve
