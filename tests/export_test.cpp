/// Tests for graph/export (previously untested): the DOT and JSON
/// renderings must be syntactically sound, mention every vertex and edge
/// exactly once, and be deterministic; summary() must report the exact
/// kind/relation counts. Also covers the common/json emission layer the
/// JSON export is built on (writer correctness + strict validation).

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/json.hpp"
#include "graph/builder.hpp"
#include "graph/export.hpp"
#include "ir/extract.hpp"
#include "workloads/suite.hpp"

namespace pnp::graph {
namespace {

std::size_t count_occurrences(const std::string& hay, const std::string& pin) {
  std::size_t n = 0;
  for (std::size_t p = hay.find(pin); p != std::string::npos;
       p = hay.find(pin, p + pin.size()))
    ++n;
  return n;
}

/// Small hand-built multigraph, including a duplicate (src, dst, rel)
/// edge — exports must keep both.
FlowGraph small_graph() {
  FlowGraph g;
  g.name = "test:g";
  const int a = g.add_node(NodeKind::Instruction, "br");
  const int b = g.add_node(NodeKind::Instruction, "fadd f64");
  const int v = g.add_node(NodeKind::Variable, "var f64");
  const int c = g.add_node(NodeKind::Constant, "const f64");
  g.add_edge(a, b, EdgeRelation::Control, 0);
  g.add_edge(b, v, EdgeRelation::Data, 0);
  g.add_edge(c, b, EdgeRelation::Data, 1);
  g.add_edge(c, b, EdgeRelation::Data, 2);  // duplicate endpoints
  g.add_edge(a, b, EdgeRelation::Call, 0);
  return g;
}

FlowGraph suite_graph() {
  const auto* app = workloads::Suite::instance().find("gemm");
  const auto one = ir::extract_function(app->module, app->regions[0].function);
  return build_flow_graph(one);
}

TEST(ExportDot, MentionsEveryVertexAndEdgeExactlyOnce) {
  const FlowGraph g = small_graph();
  const std::string dot = to_dot(g);
  EXPECT_EQ(dot.rfind("digraph", 0), 0u);
  EXPECT_EQ(count_occurrences(dot, "{"), 1u);
  EXPECT_EQ(count_occurrences(dot, "}"), 1u);
  for (int i = 0; i < g.num_nodes(); ++i)
    EXPECT_EQ(count_occurrences(dot, "  n" + std::to_string(i) + " [label="),
              1u)
        << i;
  EXPECT_EQ(count_occurrences(dot, " -> "),
            static_cast<std::size_t>(g.num_edges()));
  // Edge lines carry their relation color.
  EXPECT_EQ(count_occurrences(dot, "color=blue"), 3u);   // data
  EXPECT_EQ(count_occurrences(dot, "color=red"), 1u);    // call
  EXPECT_EQ(count_occurrences(dot, "color=black"), 1u);  // control
}

TEST(ExportDot, DeterministicAndCoversSuiteGraph) {
  const FlowGraph g = suite_graph();
  const std::string a = to_dot(g);
  EXPECT_EQ(a, to_dot(g));
  EXPECT_EQ(count_occurrences(a, " -> "),
            static_cast<std::size_t>(g.num_edges()));
  EXPECT_EQ(count_occurrences(a, "[label="),
            static_cast<std::size_t>(g.num_nodes()));
}

TEST(ExportJson, ValidatesAndMentionsEveryVertexAndEdgeExactlyOnce) {
  const FlowGraph g = small_graph();
  const std::string doc = to_json(g);
  std::string err;
  EXPECT_TRUE(json_validate(doc, &err)) << err;
  for (int i = 0; i < g.num_nodes(); ++i)
    EXPECT_EQ(
        count_occurrences(doc, "{\"id\":" + std::to_string(i) + ",\"kind\""),
        1u)
        << i;
  EXPECT_EQ(count_occurrences(doc, "\"src\":"),
            static_cast<std::size_t>(g.num_edges()));
  EXPECT_EQ(count_occurrences(doc, "\"dst\":"),
            static_cast<std::size_t>(g.num_edges()));
  EXPECT_NE(doc.find("\"num_nodes\":4"), std::string::npos);
  EXPECT_NE(doc.find("\"num_edges\":5"), std::string::npos);
  // Kinds and relations spelled out, duplicate edge kept.
  EXPECT_EQ(count_occurrences(doc, "\"kind\":\"instruction\""), 2u);
  EXPECT_EQ(count_occurrences(doc, "\"kind\":\"variable\""), 1u);
  EXPECT_EQ(count_occurrences(doc, "\"kind\":\"constant\""), 1u);
  EXPECT_EQ(count_occurrences(doc, "\"rel\":\"data\""), 3u);
  EXPECT_EQ(count_occurrences(doc, "\"src\":3,\"dst\":1,\"rel\":\"data\""),
            2u);
}

TEST(ExportJson, DeterministicOnSuiteGraphAndEscapesText) {
  const FlowGraph g = suite_graph();
  const std::string a = to_json(g);
  EXPECT_EQ(a, to_json(g));
  std::string err;
  EXPECT_TRUE(json_validate(a, &err)) << err;

  FlowGraph weird;
  weird.name = "quo\"te\\slash\nline";
  weird.add_node(NodeKind::Instruction, "text with \"quotes\"\tand tabs");
  const std::string doc = to_json(weird);
  EXPECT_TRUE(json_validate(doc, &err)) << err;
  EXPECT_NE(doc.find("quo\\\"te\\\\slash\\nline"), std::string::npos);
}

TEST(ExportSummary, ReportsExactCounts) {
  const FlowGraph g = small_graph();
  const std::string s = summary(g);
  EXPECT_NE(s.find("test:g"), std::string::npos);
  EXPECT_NE(s.find("nodes=4"), std::string::npos);
  EXPECT_NE(s.find("instr=2"), std::string::npos);
  EXPECT_NE(s.find("var=1"), std::string::npos);
  EXPECT_NE(s.find("const=1"), std::string::npos);
  EXPECT_NE(s.find("edges=5"), std::string::npos);
  EXPECT_NE(s.find("ctl=1"), std::string::npos);
  EXPECT_NE(s.find("data=3"), std::string::npos);
  EXPECT_NE(s.find("call=1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// common/json: the emission layer under the JSON export and pnp_eval.
// ---------------------------------------------------------------------------

TEST(JsonWriter, BuildsNestedDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("n").value(3);
  w.key("pi").value(3.25);
  w.key("big").value(std::uint64_t{18446744073709551615ULL});
  w.key("ok").value(true);
  w.key("name").value("a\"b");
  w.key("none").null();
  w.key("xs").begin_array().value(1).value(2.5).begin_object().end_object();
  w.end_array();
  w.end_object();
  const std::string doc = w.str();
  EXPECT_EQ(doc,
            "{\"n\":3,\"pi\":3.25,\"big\":18446744073709551615,\"ok\":true,"
            "\"name\":\"a\\\"b\",\"none\":null,\"xs\":[1,2.5,{}]}\n");
  std::string err;
  EXPECT_TRUE(json_validate(doc, &err)) << err;
}

TEST(JsonWriter, DoubleRoundTripsExactly) {
  JsonWriter w;
  w.begin_array().value(0.1).value(1.0 / 3.0).value(-2.5e-17).end_array();
  const std::string doc = w.str();
  EXPECT_TRUE(json_validate(doc));
  // %.17g preserves every double bit-exactly.
  double a = 0, b = 0, c = 0;
  ASSERT_EQ(std::sscanf(doc.c_str(), "[%lg,%lg,%lg]", &a, &b, &c), 3);
  EXPECT_EQ(a, 0.1);
  EXPECT_EQ(b, 1.0 / 3.0);
  EXPECT_EQ(c, -2.5e-17);
}

TEST(JsonWriter, StructuralMisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), pnp::Error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), pnp::Error);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), pnp::Error);  // incomplete document
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("k");
    EXPECT_THROW(w.end_object(), pnp::Error);  // dangling key
  }
  {
    JsonWriter w;
    w.value(1);
    EXPECT_THROW(w.value(2), pnp::Error);  // second top-level value
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.value(1.0 / 0.0), pnp::Error);  // non-finite number
  }
}

TEST(JsonValidate, AcceptsValidRejectsInvalid) {
  for (const char* good :
       {"{}", "[]", "null", "true", "-1.5e-3", "\"s\"", "[1,2,3]",
        "{\"a\":[{\"b\":null}]}", "  {\"a\" : 1}  ", "\"\\u00e9\\n\""}) {
    std::string err;
    EXPECT_TRUE(json_validate(good, &err)) << good << ": " << err;
  }
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "{a:1}", "01", "1 2",
        "nul", "[\"\\x\"]", "\"unterminated", "{\"a\":1,}", "[}", "+1",
        "\"\\u12g4\""}) {
    EXPECT_FALSE(json_validate(bad)) << bad;
  }
}

TEST(JsonQuote, EscapesControlAndSpecials) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b\\c\nd\te\r"), "\"a\\\"b\\\\c\\nd\\te\\r\"");
  EXPECT_EQ(json_quote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

}  // namespace
}  // namespace pnp::graph
