/// Unit tests for the mini-IR substrate: builder, printer/parser
/// round-trips, verifier diagnostics, and llvm-extract-style extraction.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ir/builder.hpp"
#include "ir/extract.hpp"
#include "ir/module.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace pnp::ir {
namespace {

/// A small but representative module: a loop with a phi, loads/stores,
/// arithmetic, a call, and an atomic.
Module make_test_module() {
  Module m;
  m.name = "testmod";
  m.globals.push_back(Global{"A", Type::F64});
  m.globals.push_back(Global{"B", Type::F64});
  m.declarations.push_back(Declaration{"sqrt", Type::F64, {Type::F64}});

  Function fn;
  fn.name = "kernel";
  fn.ret = Type::Void;
  fn.args.push_back(Argument{"p", Type::Ptr});
  fn.args.push_back(Argument{"n", Type::I64});
  m.functions.push_back(std::move(fn));
  Function& f = m.functions.back();

  Builder b(m, f);
  const int entry = b.add_block("entry");
  const int header = b.add_block("header");
  const int body = b.add_block("body");
  const int exit = b.add_block("exit");

  b.set_block(entry);
  b.br(header);

  b.set_block(header);
  const Value i = b.phi(Type::I64, {{b.ci64(0), entry}});
  const Value cond = b.icmp("slt", i, b.arg(1));
  b.condbr(cond, body, exit);

  b.set_block(body);
  const Value pa = b.gep(b.global("A"), i);
  const Value va = b.load(Type::F64, pa);
  const Value v2 = b.fmul(va, b.cf64(2.5));
  const Value v3 = b.call(Type::F64, "sqrt", {v2});
  const Value pb = b.gep(b.global("B"), i);
  b.store(v3, pb);
  b.atomicrmw("fadd", b.arg(0), v3);
  const Value inext = b.add(i, b.ci64(1));
  b.br(header);
  b.phi_add_incoming(i, inext, body);

  b.set_block(exit);
  b.barrier();
  b.ret();
  return m;
}

TEST(IrBuilder, ProducesVerifiableModule) {
  const Module m = make_test_module();
  EXPECT_TRUE(verify_module(m).empty());
  EXPECT_EQ(m.instruction_count(), 15u);
}

TEST(IrBuilder, TempIdsAreSequential) {
  const Module m = make_test_module();
  const Function& f = m.functions.front();
  EXPECT_EQ(f.next_temp, 8);  // phi, icmp, gep, load, fmul, call, gep, add
}

TEST(IrBuilder, TypeMismatchThrows) {
  Module m;
  m.name = "x";
  m.functions.push_back(Function{"f", Type::Void, {}, {}, 0});
  Builder b(m, m.functions.back());
  b.set_block(b.add_block("entry"));
  EXPECT_THROW(b.fadd(b.cf64(1.0), b.ci64(1)), Error);
  EXPECT_THROW(b.load(Type::F64, b.ci64(3)), Error);
  EXPECT_THROW(b.icmp("slt", b.cf64(1.0), b.cf64(2.0)), Error);
}

TEST(IrBuilder, DuplicateBlockNameThrows) {
  Module m;
  m.functions.push_back(Function{"f", Type::Void, {}, {}, 0});
  Builder b(m, m.functions.back());
  b.add_block("bb");
  EXPECT_THROW(b.add_block("bb"), Error);
}

TEST(IrPrinter, ContainsExpectedConstructs) {
  const Module m = make_test_module();
  const std::string text = print_module(m);
  EXPECT_NE(text.find("module \"testmod\""), std::string::npos);
  EXPECT_NE(text.find("global @A f64"), std::string::npos);
  EXPECT_NE(text.find("declare f64 @sqrt(f64)"), std::string::npos);
  EXPECT_NE(text.find("define void @kernel(ptr %p, i64 %n)"), std::string::npos);
  EXPECT_NE(text.find("phi i64 [ 0, %entry ]"), std::string::npos);
  EXPECT_NE(text.find("icmp slt i64"), std::string::npos);
  EXPECT_NE(text.find("atomicrmw fadd f64 %p"), std::string::npos);
  EXPECT_NE(text.find("call f64 @sqrt("), std::string::npos);
  EXPECT_NE(text.find("barrier"), std::string::npos);
}

TEST(IrParser, RoundTripIsIdentity) {
  const Module m = make_test_module();
  const std::string once = print_module(m);
  const Module back = parse_module(once);
  EXPECT_TRUE(verify_module(back).empty());
  EXPECT_EQ(print_module(back), once);
}

TEST(IrParser, RoundTripPreservesCounts) {
  const Module m = make_test_module();
  const Module back = parse_module(print_module(m));
  EXPECT_EQ(back.instruction_count(), m.instruction_count());
  EXPECT_EQ(back.globals.size(), m.globals.size());
  EXPECT_EQ(back.declarations.size(), m.declarations.size());
  EXPECT_EQ(back.functions.size(), m.functions.size());
}

TEST(IrParser, FloatConstantsRoundTrip) {
  Module m;
  m.name = "f";
  m.functions.push_back(Function{"g", Type::Void, {}, {}, 0});
  Builder b(m, m.functions.back());
  b.set_block(b.add_block("entry"));
  const Value v = b.fadd(b.cf64(0.1), b.cf64(1e-300));
  b.fmul(v, b.cf64(12345.6789));
  b.ret();
  const Module back = parse_module(print_module(m));
  EXPECT_EQ(print_module(back), print_module(m));
  const auto& ops = back.functions[0].blocks[0].instrs[0].operands;
  EXPECT_DOUBLE_EQ(ops[0].fval, 0.1);
  EXPECT_DOUBLE_EQ(ops[1].fval, 1e-300);
}

TEST(IrParser, SelectCastsAndMultiIndexGepRoundTrip) {
  Module m;
  m.name = "misc";
  m.globals.push_back(Global{"G", Type::F64});
  m.functions.push_back(Function{"f", Type::Void,
                                 {Argument{"p", Type::Ptr},
                                  Argument{"i", Type::I64}},
                                 {},
                                 0});
  Builder b(m, m.functions.back());
  b.set_block(b.add_block("entry"));
  const Value p2 = b.gep2(b.global("G"), b.arg(1), b.ci64(7));
  const Value v = b.load(Type::F64, p2);
  const Value cond = b.fcmp("olt", v, b.cf64(0.0));
  const Value sel = b.select(cond, v, b.cf64(1.0));
  const Value as_int = b.cast(Opcode::FPToSI, Type::I64, sel);
  const Value widened = b.sitofp(as_int, Type::F64);
  const Value narrowed = b.cast(Opcode::FPTrunc, Type::F32, widened);
  (void)narrowed;
  b.ret();
  ASSERT_TRUE(verify_module(m).empty());
  const std::string text = print_module(m);
  EXPECT_EQ(print_module(parse_module(text)), text);
}

TEST(IrParser, RejectsGarbage) {
  EXPECT_THROW(parse_module("nonsense line"), Error);
  EXPECT_THROW(parse_module("define void @f() {\n"), Error);  // unterminated
  EXPECT_THROW(parse_module("define void @f() {\nentry:\n  frobnicate\n}\n"),
               Error);
}

TEST(IrParser, RejectsUnknownOperands) {
  EXPECT_THROW(
      parse_module("define void @f() {\nentry:\n  br %nosuchblock\n}\n"),
      Error);
  EXPECT_THROW(parse_module(
                   "define void @f() {\nentry:\n  store f64 1.0, @missing\n}\n"),
               Error);
}

TEST(IrVerifier, DetectsMissingTerminator) {
  Module m = make_test_module();
  m.functions[0].blocks[2].instrs.pop_back();  // drop body's 'br'
  const auto problems = verify_module(m);
  ASSERT_FALSE(problems.empty());
  bool found = false;
  for (const auto& p : problems)
    if (p.find("terminator") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(IrVerifier, DetectsUseOfUndefinedTemp) {
  Module m = make_test_module();
  Instruction bogus;
  bogus.op = Opcode::FAdd;
  bogus.type = Type::F64;
  bogus.result = 99;
  bogus.operands = {Value::temp(77, Type::F64), Value::const_float(1.0)};
  auto& body = m.functions[0].blocks[2].instrs;
  body.insert(body.begin(), bogus);
  const auto problems = verify_module(m);
  bool found = false;
  for (const auto& p : problems)
    if (p.find("undefined temp %t77") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(IrVerifier, DetectsRedefinition) {
  Module m = make_test_module();
  auto& body = m.functions[0].blocks[2].instrs;
  Instruction dup = body[1];  // the load (defines a temp)
  body.insert(body.begin() + 2, dup);
  const auto problems = verify_module(m);
  bool found = false;
  for (const auto& p : problems)
    if (p.find("redefined") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(IrVerifier, DetectsBadPredicate) {
  Module m = make_test_module();
  m.functions[0].blocks[1].instrs[1].aux = "weird";
  const auto problems = verify_module(m);
  bool found = false;
  for (const auto& p : problems)
    if (p.find("predicate") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(IrVerifier, DetectsUnknownCallee) {
  Module m = make_test_module();
  m.declarations.clear();  // sqrt becomes unknown
  const auto problems = verify_module(m);
  bool found = false;
  for (const auto& p : problems)
    if (p.find("unknown function") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(IrVerifier, ThrowHelperListsProblems) {
  Module m = make_test_module();
  m.functions[0].blocks[2].instrs.pop_back();
  EXPECT_THROW(verify_or_throw(m), Error);
  EXPECT_NO_THROW(verify_or_throw(make_test_module()));
}

TEST(IrExtract, CarvesFunctionWithDependencies) {
  Module m = make_test_module();
  // Add a second function that should not survive extraction.
  Function extra;
  extra.name = "other";
  extra.ret = Type::Void;
  m.functions.push_back(std::move(extra));
  Builder b(m, m.functions.back());
  b.set_block(b.add_block("entry"));
  b.ret();

  const Module ext = extract_function(m, "kernel");
  EXPECT_EQ(ext.name, "testmod:kernel");
  ASSERT_EQ(ext.functions.size(), 1u);
  EXPECT_EQ(ext.functions[0].name, "kernel");
  EXPECT_EQ(ext.globals.size(), 2u);  // A and B both referenced
  ASSERT_EQ(ext.declarations.size(), 1u);
  EXPECT_EQ(ext.declarations[0].name, "sqrt");
  EXPECT_TRUE(verify_module(ext).empty());
}

TEST(IrExtract, RemapsGlobalIndices) {
  Module m = make_test_module();
  // Prepend an unreferenced global so indices shift.
  m.globals.insert(m.globals.begin(), Global{"unused", Type::F64});
  for (auto& bb : m.functions[0].blocks)
    for (auto& in : bb.instrs)
      for (auto& v : in.operands)
        if (v.kind == Value::Kind::Global) ++v.index;
  ASSERT_TRUE(verify_module(m).empty());

  const Module ext = extract_function(m, "kernel");
  EXPECT_EQ(ext.globals.size(), 2u);
  EXPECT_TRUE(verify_module(ext).empty());
  // The printed form must reference the same global names as the original.
  const std::string text = print_module(ext);
  EXPECT_NE(text.find("@A"), std::string::npos);
  EXPECT_NE(text.find("@B"), std::string::npos);
  EXPECT_EQ(text.find("@unused"), std::string::npos);
}

TEST(IrExtract, MissingFunctionThrows) {
  const Module m = make_test_module();
  EXPECT_THROW(extract_function(m, "nope"), Error);
}

TEST(IrTypes, Predicates) {
  EXPECT_TRUE(is_integer(Type::I1));
  EXPECT_TRUE(is_integer(Type::I64));
  EXPECT_FALSE(is_integer(Type::F32));
  EXPECT_TRUE(is_float(Type::F64));
  EXPECT_FALSE(is_float(Type::Ptr));
  EXPECT_TRUE(is_arith(Type::I32));
  EXPECT_FALSE(is_arith(Type::Void));
}

TEST(IrTypes, NameRoundTrip) {
  for (Type t : {Type::Void, Type::I1, Type::I32, Type::I64, Type::F32,
                 Type::F64, Type::Ptr}) {
    Type back;
    ASSERT_TRUE(parse_type(type_name(t), back));
    EXPECT_EQ(back, t);
  }
  Type dummy;
  EXPECT_FALSE(parse_type("i128", dummy));
}

TEST(IrOpcodes, NameRoundTrip) {
  for (Opcode op : {Opcode::Load, Opcode::Store, Opcode::FAdd, Opcode::Phi,
                    Opcode::CondBr, Opcode::AtomicRMW, Opcode::Barrier,
                    Opcode::Gep, Opcode::SIToFP}) {
    Opcode back;
    ASSERT_TRUE(parse_opcode(opcode_name(op), back));
    EXPECT_EQ(back, op);
  }
  Opcode dummy;
  EXPECT_FALSE(parse_opcode("fma", dummy));
}

}  // namespace
}  // namespace pnp::ir
