/// End-to-end integration tests: the PnP tuner's train→predict pipeline on
/// a reduced LOOCV (to keep runtimes test-friendly), the experiment
/// drivers, and the transfer-learning workflow.

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/loocv.hpp"
#include "core/metrics.hpp"
#include "workloads/suite.hpp"

namespace pnp::core {
namespace {

/// Shared small-scale fixture: Haswell db + fast trainer settings.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    machine_ = new hw::MachineModel(hw::MachineModel::haswell());
    simulator_ = new sim::Simulator(*machine_);
    space_ = new SearchSpace(SearchSpace::for_machine(*machine_));
    db_ = new MeasurementDb(*simulator_, *space_,
                            workloads::Suite::instance().all_regions());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete space_;
    delete simulator_;
    delete machine_;
  }

  static PnpOptions fast_pnp(std::uint64_t seed = 11) {
    PnpOptions p;
    p.trainer.max_epochs = 25;
    p.trainer.patience = 6;
    p.seed = seed;
    return p;
  }

  static hw::MachineModel* machine_;
  static sim::Simulator* simulator_;
  static SearchSpace* space_;
  static MeasurementDb* db_;
};

hw::MachineModel* IntegrationTest::machine_ = nullptr;
sim::Simulator* IntegrationTest::simulator_ = nullptr;
SearchSpace* IntegrationTest::space_ = nullptr;
MeasurementDb* IntegrationTest::db_ = nullptr;

TEST_F(IntegrationTest, TrainingFitsTheTrainingSet) {
  PnpTuner tuner(*db_, fast_pnp());
  std::vector<int> train;
  for (int r = 0; r < 30; ++r) train.push_back(r);
  const auto rep = tuner.train_power_scenario(train);
  // Exact-match over three heads after a deliberately short training run.
  EXPECT_GT(rep.train_accuracy, 0.4);
  EXPECT_LT(rep.final_loss, rep.epoch_loss.front());
}

TEST_F(IntegrationTest, PredictionsAreValidConfigs) {
  PnpTuner tuner(*db_, fast_pnp());
  std::vector<int> train;
  for (int r = 0; r < 30; ++r) train.push_back(r);
  tuner.train_power_scenario(train);
  for (int r = 30; r < 40; ++r) {
    for (int k = 0; k < db_->num_caps(); ++k) {
      const auto cfg = tuner.predict_power(r, k);
      EXPECT_GE(cfg.threads, 1);
      EXPECT_LE(cfg.threads, machine_->max_threads());
      EXPECT_GE(cfg.chunk, 0);
    }
  }
}

TEST_F(IntegrationTest, StaticTunerBeatsDefaultOnHeldOut) {
  // Reduced LOOCV over the first 10 applications, static features only.
  ExperimentOptions opt;
  opt.pnp = fast_pnp();
  opt.max_apps = 10;
  opt.run_pnp_dynamic = false;
  opt.run_baselines = false;
  const auto res = run_power_experiment(*simulator_, *db_, opt);

  const auto& cells = res.tuners.at(kPnpStatic);
  std::vector<double> speedups;
  const auto by_app = regions_by_app(*db_);
  for (int a = 0; a < 10; ++a)
    for (int r : by_app[static_cast<std::size_t>(a)].second)
      for (std::size_t k = 0; k < res.caps.size(); ++k)
        speedups.push_back(
            res.default_seconds[static_cast<std::size_t>(r)][k] /
            cells[static_cast<std::size_t>(r)][k].seconds);
  // On held-out applications the tuner must on average beat the default.
  EXPECT_GT(geomean(speedups), 1.0);
}

TEST_F(IntegrationTest, PredictionsNeverBelowOracleFloor) {
  ExperimentOptions opt;
  opt.pnp = fast_pnp();
  opt.max_apps = 6;
  opt.run_pnp_dynamic = false;
  opt.run_baselines = false;
  const auto res = run_power_experiment(*simulator_, *db_, opt);
  const auto& cells = res.tuners.at(kPnpStatic);
  const auto by_app = regions_by_app(*db_);
  for (int a = 0; a < 6; ++a) {
    for (int r : by_app[static_cast<std::size_t>(a)].second) {
      for (std::size_t k = 0; k < res.caps.size(); ++k) {
        const double norm = normalized_speedup(
            res.oracle_seconds[static_cast<std::size_t>(r)][k],
            cells[static_cast<std::size_t>(r)][k].seconds);
        EXPECT_GT(norm, 0.0);
        EXPECT_LE(norm, 1.05);  // small slack: chunk-0 off-grid predictions
      }
    }
  }
}

TEST_F(IntegrationTest, EdpExperimentProducesChoicesForEveryRegion) {
  ExperimentOptions opt;
  opt.pnp = fast_pnp();
  opt.max_apps = 6;
  opt.run_pnp_dynamic = false;
  opt.run_baselines = false;
  const auto res = run_edp_experiment(*simulator_, *db_, opt);
  const auto& cells = res.tuners.at(kPnpStatic);
  const auto by_app = regions_by_app(*db_);
  for (int a = 0; a < 6; ++a) {
    for (int r : by_app[static_cast<std::size_t>(a)].second) {
      const auto& c = cells[static_cast<std::size_t>(r)];
      EXPECT_GT(c.seconds, 0.0);
      EXPECT_GT(c.joules, 0.0);
      EXPECT_GE(c.cap_index, 0);
      EXPECT_LT(c.cap_index, 4);
      // EDP of the choice can never beat the oracle EDP.
      EXPECT_GE(c.seconds * c.joules,
                res.oracle_edp[static_cast<std::size_t>(r)] * 0.999);
    }
  }
}

TEST_F(IntegrationTest, UnseenCapExperimentPredictsAtHeldOutCap) {
  ExperimentOptions opt;
  opt.pnp = fast_pnp();
  opt.max_apps = 5;
  const auto res = run_unseen_cap_experiment(*simulator_, *db_, opt);
  ASSERT_EQ(res.heldout_cap_indices.size(), 2u);
  EXPECT_EQ(res.heldout_cap_indices[0], 0);
  EXPECT_EQ(res.heldout_cap_indices[1], 3);
  const auto by_app = regions_by_app(*db_);
  for (std::size_t hi = 0; hi < 2; ++hi) {
    for (int a = 0; a < 5; ++a)
      for (int r : by_app[static_cast<std::size_t>(a)].second)
        EXPECT_GT(res.pnp[hi][static_cast<std::size_t>(r)].seconds, 0.0);
  }
}

TEST_F(IntegrationTest, TransferLearningIsFasterAndComparable) {
  // Cross-machine transfer: Haswell → Skylake on a reduced suite.
  const auto sky = hw::MachineModel::skylake();
  const sim::Simulator sky_sim(sky);
  const auto sky_space = SearchSpace::for_machine(sky);
  const MeasurementDb sky_db(sky_sim, sky_space,
                             workloads::Suite::instance().all_regions());

  ExperimentOptions opt;
  opt.pnp = fast_pnp();
  opt.pnp.trainer.max_epochs = 15;
  opt.pnp.trainer.patience = 1000;  // fixed epochs: timing comparison
  opt.pnp.trainer.min_loss = 0.0;
  const auto rep = run_transfer_experiment(*db_, sky_db, opt);

  EXPECT_GT(rep.speedup, 1.5);  // paper: 4.18×
  EXPECT_LT(rep.transfer_trainable_weights, rep.full_trainable_weights);
  // The transferred model must stay in the same quality class.
  EXPECT_GT(rep.transfer_accuracy, 0.5 * rep.full_accuracy);
}

TEST_F(IntegrationTest, LoocvFoldsExcludeValidationApp) {
  const auto by_app = regions_by_app(*db_);
  EXPECT_EQ(by_app.size(), 30u);
  std::size_t total = 0;
  for (const auto& [app, regions] : by_app) total += regions.size();
  EXPECT_EQ(total, 68u);
  // Region indices are contiguous per app and non-overlapping.
  std::vector<bool> seen(68, false);
  for (const auto& [app, regions] : by_app)
    for (int r : regions) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(r)]);
      seen[static_cast<std::size_t>(r)] = true;
    }
}

TEST_F(IntegrationTest, DeterministicAcrossRuns) {
  ExperimentOptions opt;
  opt.pnp = fast_pnp(123);
  opt.max_apps = 4;
  opt.run_pnp_dynamic = false;
  opt.run_baselines = false;
  const auto a = run_power_experiment(*simulator_, *db_, opt);
  const auto b = run_power_experiment(*simulator_, *db_, opt);
  const auto& ca = a.tuners.at(kPnpStatic);
  const auto& cb = b.tuners.at(kPnpStatic);
  const auto by_app = regions_by_app(*db_);
  for (int ai = 0; ai < 4; ++ai)
    for (int r : by_app[static_cast<std::size_t>(ai)].second)
      for (std::size_t k = 0; k < a.caps.size(); ++k)
        EXPECT_TRUE(ca[static_cast<std::size_t>(r)][k].cfg ==
                    cb[static_cast<std::size_t>(r)][k].cfg);
}

}  // namespace
}  // namespace pnp::core
