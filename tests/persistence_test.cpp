/// \file persistence_test.cpp
/// The persistence + serving subsystem: hardened StateDict (v2 typed
/// entries, v1 back-compat, malformed-input corpus), TunerArtifact
/// round-trips, PnpTuner::save/load bit-exactness, and InferenceEngine
/// batched-vs-sequential equivalence.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "core/tuner_artifact.hpp"
#include "serve/inference_engine.hpp"
#include "workloads/suite.hpp"

namespace pnp {
namespace {

// --- byte-crafting helpers --------------------------------------------------

void append_u64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void append_f64(std::string& s, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, 8);
  append_u64(s, bits);
}

/// Serialize entries in the legacy v1 layout (f64 arrays only).
std::string v1_bytes(
    const std::vector<std::pair<std::string, std::vector<double>>>& entries) {
  std::string s = "PNPSTAT1";
  append_u64(s, entries.size());
  for (const auto& [name, values] : entries) {
    append_u64(s, name.size());
    s += name;
    append_u64(s, values.size());
    for (double d : values) append_f64(s, d);
  }
  return s;
}

StateDict load_bytes(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  return StateDict::load(is);
}

std::string dict_bytes(const StateDict& sd) {
  std::ostringstream os(std::ios::binary);
  sd.save(os);
  return os.str();
}

// --- StateDict v2 ------------------------------------------------------------

TEST(StateDictV2, RoundTripTypedEntries) {
  StateDict sd;
  sd.put("weights", {1.0, -2.5, 1e300, 1e-300});
  sd.put("empty", {});
  sd.put_string("kind", "pnp-tuner");
  sd.put_string("blob", std::string("a\0b\nc", 5));
  sd.put_int("version", -7);
  sd.put_int("big", std::int64_t(1) << 62);

  const StateDict back = load_bytes(dict_bytes(sd));
  EXPECT_EQ(back, sd);
  EXPECT_EQ(back.get_string("blob"), std::string("a\0b\nc", 5));
  EXPECT_EQ(back.get_int("big"), std::int64_t(1) << 62);
  // Kinds have separate namespaces and separate lookups.
  EXPECT_FALSE(back.contains("kind"));
  EXPECT_TRUE(back.contains_string("kind"));
  EXPECT_THROW(back.get_int("kind"), Error);
}

TEST(StateDictV2, V1FilesStillLoad) {
  const std::string bytes =
      v1_bytes({{"emb.token", {1.0, 2.0}}, {"rgcn.0.w0", {-1.5}}});
  const StateDict sd = load_bytes(bytes);
  EXPECT_EQ(sd.size(), 2u);
  EXPECT_EQ(sd.get("emb.token"), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sd.get("rgcn.0.w0"), (std::vector<double>{-1.5}));
}

TEST(StateDictV2, TruncationAtEveryByteRejected) {
  StateDict sd;
  sd.put("ab", {3.0, 4.0});
  sd.put_string("s", "xy");
  sd.put_int("i", 5);
  const std::string full = dict_bytes(sd);
  ASSERT_GT(full.size(), 40u);
  for (std::size_t len = 0; len < full.size(); ++len) {
    SCOPED_TRACE(len);
    EXPECT_THROW(load_bytes(full.substr(0, len)), Error);
  }
  EXPECT_EQ(load_bytes(full), sd);
}

TEST(StateDictV2, BadMagicRejected) {
  EXPECT_THROW(load_bytes("not a statedict at all"), Error);
  std::string wrong = dict_bytes(StateDict{});
  wrong[7] = '9';  // unknown version digit
  EXPECT_THROW(load_bytes(wrong), Error);
}

TEST(StateDictV2, AbsurdLengthsRejectedWithoutAllocation) {
  // The motivating bug: a ~24-byte file whose array length claims 2^32
  // elements must fail cleanly instead of pre-allocating 32 GiB.
  std::string s = "PNPSTAT1";
  append_u64(s, 1);               // one entry
  append_u64(s, 1);               // name length
  s += "w";
  append_u64(s, (1ULL << 32) - 1);  // array length: ~4 billion doubles
  EXPECT_THROW(load_bytes(s), Error);

  // Absurd entry counts and name lengths fail the same way.
  std::string t = "PNPSTAT1";
  append_u64(t, ~0ULL);
  EXPECT_THROW(load_bytes(t), Error);
  std::string u = "PNPSTAT1";
  append_u64(u, 1);
  append_u64(u, 1ULL << 50);  // name length
  EXPECT_THROW(load_bytes(u), Error);
}

TEST(StateDictV2, DuplicateEntryNamesRejected) {
  const std::string bytes = v1_bytes({{"dup", {1.0}}, {"dup", {2.0}}});
  EXPECT_THROW(load_bytes(bytes), Error);
}

TEST(StateDictV2, TrailingGarbageRejected) {
  StateDict sd;
  sd.put("a", {1.0});
  EXPECT_THROW(load_bytes(dict_bytes(sd) + "x"), Error);
  EXPECT_THROW(load_bytes(dict_bytes(sd) + std::string(1, '\0')), Error);
}

TEST(StateDictV2, UnknownTagRejected) {
  std::string s = "PNPSTAT2";
  append_u64(s, 1);
  s.push_back(9);  // no such tag
  append_u64(s, 1);
  s += "x";
  append_u64(s, 0);
  EXPECT_THROW(load_bytes(s), Error);
}

TEST(StateDictV2, SaveFileToUnwritablePathThrows) {
  StateDict sd;
  sd.put("a", {1.0});
  EXPECT_THROW(sd.save_file("/nonexistent-dir/sub/state.bin"), Error);
  EXPECT_THROW(StateDict::load_file("/nonexistent-dir/state.bin"), Error);
}

// --- trained-tuner fixture ---------------------------------------------------

/// A small trained world shared by the artifact/serving tests: 10 regions
/// of the Haswell suite, a few epochs — enough for deterministic,
/// non-trivial predictions without slowing the suite down.
class PersistenceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto machine = hw::MachineModel::haswell();
    sim_ = new sim::Simulator(machine);
    auto regions = workloads::Suite::instance().all_regions();
    regions.resize(10);
    db_ = new core::MeasurementDb(
        *sim_, core::SearchSpace::for_machine(machine), regions);
  }
  static void TearDownTestSuite() {
    delete db_;
    delete sim_;
    db_ = nullptr;
    sim_ = nullptr;
  }

  static core::PnpOptions small_options() {
    core::PnpOptions opt;
    opt.trainer.max_epochs = 4;
    opt.trainer.min_loss = 0.0;
    return opt;
  }

  static std::vector<int> all_regions() {
    std::vector<int> r;
    for (int i = 0; i < db_->num_regions(); ++i) r.push_back(i);
    return r;
  }

  static sim::Simulator* sim_;
  static core::MeasurementDb* db_;
};

sim::Simulator* PersistenceFixture::sim_ = nullptr;
core::MeasurementDb* PersistenceFixture::db_ = nullptr;

TEST_F(PersistenceFixture, SaveLoadPredictBitExactPower) {
  core::PnpTuner trained(*db_, small_options());
  trained.train_power_scenario(all_regions());

  const std::string path = ::testing::TempDir() + "pnp_artifact_power.pnp";
  trained.save(path);
  const core::PnpTuner loaded = core::PnpTuner::load(*db_, path);
  EXPECT_EQ(loaded.mode(), core::PnpTuner::Mode::Power);
  EXPECT_EQ(loaded.vocab().size(), trained.vocab().size());

  for (int r = 0; r < db_->num_regions(); ++r)
    for (int k = 0; k < db_->num_caps(); ++k)
      EXPECT_EQ(loaded.predict_power(r, k), trained.predict_power(r, k))
          << "region " << r << " cap " << k;
}

TEST_F(PersistenceFixture, SaveLoadPredictBitExactEdp) {
  core::PnpOptions opt = small_options();
  core::PnpTuner trained(*db_, opt);
  trained.train_edp_scenario(all_regions());

  const std::string path = ::testing::TempDir() + "pnp_artifact_edp.pnp";
  trained.save(path);
  const core::PnpTuner loaded = core::PnpTuner::load(*db_, path);
  EXPECT_EQ(loaded.mode(), core::PnpTuner::Mode::Edp);

  for (int r = 0; r < db_->num_regions(); ++r) {
    const auto a = trained.predict_edp(r);
    const auto b = loaded.predict_edp(r);
    EXPECT_EQ(a.cap_index, b.cap_index);
    EXPECT_EQ(a.cfg, b.cfg);
  }
}

TEST_F(PersistenceFixture, SaveLoadRoundTripsCountersAndScalarCap) {
  core::PnpOptions opt = small_options();
  opt.use_counters = true;
  opt.cap_onehot = false;
  core::PnpTuner trained(*db_, opt);
  trained.train_power_scenario(all_regions());

  const std::string path = ::testing::TempDir() + "pnp_artifact_dyn.pnp";
  trained.save(path);
  const core::PnpTuner loaded = core::PnpTuner::load(*db_, path);
  for (int r = 0; r < db_->num_regions(); ++r)
    for (int k = 0; k < db_->num_caps(); ++k)
      EXPECT_EQ(loaded.predict_power(r, k), trained.predict_power(r, k));
  // The scalar-cap variant also serves unseen caps after reload.
  EXPECT_EQ(loaded.predict_power_at(0, 0.55), trained.predict_power_at(0, 0.55));
}

TEST_F(PersistenceFixture, SaveWithoutTrainingThrows) {
  core::PnpTuner untrained(*db_, small_options());
  EXPECT_THROW(untrained.save(::testing::TempDir() + "nope.pnp"), Error);
}

TEST_F(PersistenceFixture, ArtifactMetadataValidated) {
  core::PnpTuner trained(*db_, small_options());
  trained.train_power_scenario(all_regions());
  const std::string path = ::testing::TempDir() + "pnp_artifact_meta.pnp";
  trained.save(path);
  const StateDict good = StateDict::load_file(path);

  {  // wrong kind
    StateDict bad = good;
    bad.put_string("artifact.kind", "something-else");
    EXPECT_THROW(core::TunerArtifact::from_state_dict(bad), Error);
  }
  {  // future version
    StateDict bad = good;
    bad.put_int("artifact.version", core::TunerArtifact::kFormatVersion + 1);
    EXPECT_THROW(core::TunerArtifact::from_state_dict(bad), Error);
  }
  {  // untrained / out-of-range mode
    StateDict bad = good;
    bad.put_int("tuner.mode", 0);
    EXPECT_THROW(core::TunerArtifact::from_state_dict(bad), Error);
    bad.put_int("tuner.mode", 3);
    EXPECT_THROW(core::TunerArtifact::from_state_dict(bad), Error);
  }
  {  // vocabulary count disagrees with the token blob
    StateDict bad = good;
    bad.put_int("vocab.count", bad.get_int("vocab.count") + 1);
    EXPECT_THROW(core::TunerArtifact::from_state_dict(bad), Error);
  }
  {  // broken head layout
    StateDict bad = good;
    bad.put("model.head_sizes", {6.0, 0.0, 8.0});
    EXPECT_THROW(core::TunerArtifact::from_state_dict(bad), Error);
    bad.put("model.head_sizes", {6.5});
    EXPECT_THROW(core::TunerArtifact::from_state_dict(bad), Error);
    bad.put("model.head_sizes", {1e300});  // unrepresentable as int
    EXPECT_THROW(core::TunerArtifact::from_state_dict(bad), Error);
    bad.put("model.head_sizes", {std::nan("")});
    EXPECT_THROW(core::TunerArtifact::from_state_dict(bad), Error);
  }
  {  // network dimensions that would OOM at RgcnNet construction
    StateDict bad = good;
    bad.put_int("opt.emb_dim", 2000000000);
    EXPECT_THROW(core::TunerArtifact::from_state_dict(bad), Error);
    bad.put_int("opt.emb_dim", -1);
    EXPECT_THROW(core::TunerArtifact::from_state_dict(bad), Error);
    StateDict bad2 = good;
    bad2.put_int("opt.rgcn_layers", std::int64_t(1) << 40);
    EXPECT_THROW(core::TunerArtifact::from_state_dict(bad2), Error);
  }
  // The untouched dict still loads and serves.
  const auto art = core::TunerArtifact::from_state_dict(good);
  EXPECT_EQ(art.mode, core::TunerArtifact::Mode::Power);
}

TEST_F(PersistenceFixture, MalformedArtifactFileCorpusRejected) {
  core::PnpTuner trained(*db_, small_options());
  trained.train_power_scenario(all_regions());
  const std::string path = ::testing::TempDir() + "pnp_artifact_corpus.pnp";
  trained.save(path);

  std::ostringstream os(std::ios::binary);
  core::TunerArtifact::load_file(path).to_state_dict().save(os);
  const std::string full = os.str();
  ASSERT_GT(full.size(), 1000u);

  // Truncations: every boundary in the header region, then sampled
  // offsets across the body and the very end of the file.
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < 64; ++i) cuts.push_back(i);
  for (std::size_t i = 64; i < full.size(); i += 509) cuts.push_back(i);
  for (std::size_t i = full.size() - 16; i < full.size(); ++i) cuts.push_back(i);
  for (std::size_t cut : cuts) {
    SCOPED_TRACE(cut);
    EXPECT_THROW(load_bytes(full.substr(0, cut)), Error);
  }

  // Trailing garbage and bad magic on the real artifact bytes.
  EXPECT_THROW(load_bytes(full + "!"), Error);
  std::string bad_magic = full;
  bad_magic[0] = 'X';
  EXPECT_THROW(load_bytes(bad_magic), Error);

  // A valid *empty* StateDict is not a tuner artifact.
  EXPECT_THROW(core::TunerArtifact::from_state_dict(StateDict{}), Error);
}

TEST_F(PersistenceFixture, ImportGnnFromLegacyV1File) {
  // Cross-machine transfer must keep working from v1 GNN-only dumps.
  core::PnpTuner source(*db_, small_options());
  source.train_power_scenario(all_regions());
  const StateDict state = source.state();

  std::vector<std::pair<std::string, std::vector<double>>> entries;
  for (const auto& name : state.names()) entries.emplace_back(name, state.get(name));
  const std::string path = ::testing::TempDir() + "legacy_v1.state";
  {
    std::ofstream f(path, std::ios::binary);
    const std::string bytes = v1_bytes(entries);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  core::PnpTuner target(*db_, small_options());
  target.import_gnn(StateDict::load_file(path), /*freeze_gnn=*/true);
  target.train_power_scenario(all_regions());
  EXPECT_EQ(target.mode(), core::PnpTuner::Mode::Power);
}

// --- artifact v3: constraint fingerprint -------------------------------------

TEST_F(PersistenceFixture, LegacyVersionArtifactsServeOnLegacyPath) {
  // v1/v2 files never recorded a constraint fingerprint. They must still
  // load against an unconstrained (Table I) space and serve bit-identical
  // predictions through the historic decode path.
  core::PnpTuner trained(*db_, small_options());
  trained.train_power_scenario(all_regions());
  const std::string path = ::testing::TempDir() + "pnp_artifact_v3.pnp";
  trained.save(path);
  const StateDict good = StateDict::load_file(path);

  for (std::int64_t version : {std::int64_t{1}, std::int64_t{2}}) {
    SCOPED_TRACE(version);
    StateDict legacy = good;
    legacy.put_int("artifact.version", version);
    const auto art = core::TunerArtifact::from_state_dict(legacy);
    EXPECT_EQ(art.version, version);
    EXPECT_FALSE(art.has_constraint_fingerprint);
    EXPECT_TRUE(art.constraint_rules().empty());

    const std::string p = ::testing::TempDir() + "pnp_artifact_legacy_" +
                          std::to_string(version) + ".pnp";
    legacy.save_file(p);
    const core::PnpTuner loaded = core::PnpTuner::load(*db_, p);
    for (int r = 0; r < db_->num_regions(); ++r)
      for (int k = 0; k < db_->num_caps(); ++k)
        EXPECT_EQ(loaded.predict_power(r, k), trained.predict_power(r, k))
            << "region " << r << " cap " << k;
  }
}

TEST_F(PersistenceFixture, ConstraintFingerprintGuardsLoad) {
  // A db over the extended, constraint-carrying space: its artifacts are
  // v3 with a non-empty fingerprint, and loading demands an exact match.
  const auto machine = hw::MachineModel::haswell();
  auto regions = workloads::Suite::instance().all_regions();
  regions.resize(8);
  const core::MeasurementDb xdb(
      *sim_, core::SearchSpace::extended_for_machine(machine), regions);
  ASSERT_TRUE(xdb.space().has_constraints());

  core::PnpTuner trained(xdb, small_options());
  trained.train_power_scenario([&] {
    std::vector<int> r;
    for (int i = 0; i < xdb.num_regions(); ++i) r.push_back(i);
    return r;
  }());
  const std::string path = ::testing::TempDir() + "pnp_artifact_ext.pnp";
  trained.save(path);
  const StateDict good = StateDict::load_file(path);

  // The untouched v3 artifact reloads and serves the constrained space.
  const core::PnpTuner reloaded = core::PnpTuner::load(xdb, path);
  EXPECT_EQ(reloaded.predict_power(0, 0), trained.predict_power(0, 0));

  {  // pre-v3 artifact (no fingerprint) vs a constraint-carrying space
    StateDict legacy = good;
    legacy.put_int("artifact.version", 2);
    const std::string p = ::testing::TempDir() + "pnp_artifact_ext_v2.pnp";
    legacy.save_file(p);
    EXPECT_THROW(core::PnpTuner::load(xdb, p), Error);
  }
  {  // fingerprint present but disagreeing with the space's rule set
    StateDict bad = good;
    auto rules = bad.get("space.constraints");
    ASSERT_GE(rules.size(), 3u);
    rules[1] += 1.0;  // perturb the first rule's parameter
    bad.put("space.constraints", rules);
    const std::string p = ::testing::TempDir() + "pnp_artifact_ext_bad.pnp";
    bad.save_file(p);
    EXPECT_THROW(core::PnpTuner::load(xdb, p), Error);
  }
  {  // fingerprint emptied: "v3, no rules" must not serve a ruled space
    StateDict bad = good;
    bad.put("space.constraints", {});
    const std::string p = ::testing::TempDir() + "pnp_artifact_ext_empty.pnp";
    bad.save_file(p);
    EXPECT_THROW(core::PnpTuner::load(xdb, p), Error);
  }
  {  // head-layout family flipped (factored artifact claiming dense heads)
    StateDict bad = good;
    bad.put_int("opt.factored_heads", 0);
    const std::string p = ::testing::TempDir() + "pnp_artifact_ext_dense.pnp";
    bad.save_file(p);
    EXPECT_THROW(core::PnpTuner::load(xdb, p), Error);
  }
}

TEST_F(PersistenceFixture, MalformedConstraintFingerprintRejected) {
  core::PnpTuner trained(*db_, small_options());
  trained.train_power_scenario(all_regions());
  const std::string path = ::testing::TempDir() + "pnp_artifact_fp.pnp";
  trained.save(path);
  const StateDict good = StateDict::load_file(path);

  const auto rejects = [&](std::vector<double> fp) {
    StateDict bad = good;
    bad.put("space.constraints", std::move(fp));
    EXPECT_THROW(core::TunerArtifact::from_state_dict(bad), Error);
  };
  rejects({1.0, 2.0});                    // not a multiple of 3
  rejects({9.0, 1.0, 1.0});               // no such rule kind
  rejects({-1.0, 1.0, 1.0});              // negative kind
  rejects({0.5, 1.0, 1.0});               // fractional kind
  rejects({0.0, std::nan(""), 1.0});      // non-finite parameter
  rejects({0.0, 1.0, HUGE_VAL});          // infinite parameter
  rejects(std::vector<double>(3 * 4097));  // absurd rule count

  // A well-formed empty fingerprint still loads (v3 over Table I space).
  const auto art = core::TunerArtifact::from_state_dict(good);
  EXPECT_TRUE(art.has_constraint_fingerprint);
  EXPECT_TRUE(art.constraint_rules().empty());
}

// --- InferenceEngine ---------------------------------------------------------

TEST_F(PersistenceFixture, BatchedPowerMatchesSequential) {
  core::PnpTuner tuner(*db_, small_options());
  tuner.train_power_scenario(all_regions());
  const std::string path = ::testing::TempDir() + "pnp_engine_power.pnp";
  tuner.save(path);

  serve::InferenceEngine engine(*db_, path);
  // A batch with duplicates, reversed order, and every (region, cap) pair.
  std::vector<serve::PowerQuery> queries;
  for (int r = db_->num_regions() - 1; r >= 0; --r)
    for (int k = 0; k < db_->num_caps(); ++k) {
      queries.push_back({r, k});
      if (r % 3 == 0) queries.push_back({r, k});
    }
  const auto batched = engine.predict_power_batch(queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i)
    EXPECT_EQ(batched[i],
              tuner.predict_power(queries[i].region, queries[i].cap_index))
        << "query " << i;
  // Each distinct graph was encoded exactly once despite duplicates.
  EXPECT_EQ(engine.cached_encodings(),
            static_cast<std::size_t>(db_->num_regions()));

  // Single-query API agrees too, and repeated batches stay stable.
  EXPECT_EQ(engine.predict_power(0, 1), tuner.predict_power(0, 1));
  EXPECT_EQ(engine.predict_power_batch(queries), batched);
}

TEST_F(PersistenceFixture, BatchedEdpMatchesSequential) {
  core::PnpTuner tuner(*db_, small_options());
  tuner.train_edp_scenario(all_regions());
  serve::InferenceEngine engine(
      core::PnpTuner::load(*db_, [&] {
        const std::string p = ::testing::TempDir() + "pnp_engine_edp.pnp";
        tuner.save(p);
        return p;
      }()));

  std::vector<int> regions;
  for (int r = 0; r < db_->num_regions(); ++r) {
    regions.push_back(r);
    regions.push_back(db_->num_regions() - 1 - r);
  }
  const auto batched = engine.predict_edp_batch(regions);
  ASSERT_EQ(batched.size(), regions.size());
  for (std::size_t i = 0; i < regions.size(); ++i) {
    const auto expect = tuner.predict_edp(regions[i]);
    EXPECT_EQ(batched[i].cap_index, expect.cap_index);
    EXPECT_EQ(batched[i].cfg, expect.cfg);
  }
}

TEST_F(PersistenceFixture, EngineRejectsBadQueries) {
  core::PnpTuner tuner(*db_, small_options());
  tuner.train_power_scenario(all_regions());
  serve::InferenceEngine engine(std::move(tuner));

  EXPECT_THROW(engine.predict_power(-1, 0), Error);
  EXPECT_THROW(engine.predict_power(db_->num_regions(), 0), Error);
  EXPECT_THROW(engine.predict_power(0, -1), Error);
  EXPECT_THROW(engine.predict_power(0, db_->num_caps()), Error);
  EXPECT_THROW(engine.predict_edp(0), Error);  // power-mode engine

  // A batch that fails validation must not poison the encoding cache:
  // the valid region in the failed batch still serves correctly after.
  const auto before = engine.predict_power(3, 1);
  const std::vector<serve::PowerQuery> mixed = {{5, 0},
                                                {db_->num_regions(), 0}};
  EXPECT_THROW(engine.predict_power_batch(mixed), Error);
  EXPECT_EQ(engine.predict_power(5, 0), engine.predict_power(5, 0));
  EXPECT_EQ(engine.predict_power(3, 1), before);

  core::PnpTuner untrained(*db_, small_options());
  EXPECT_THROW(serve::InferenceEngine{std::move(untrained)}, Error);
}

}  // namespace
}  // namespace pnp
