/// Search-equivalence and constraint-layer tests (ISSUE 8): beam/top-k
/// model-guided search vs the exhaustive oracle, the extended
/// constraint-carrying spaces, custom-space validation, and the serving
/// decode's fast-path/fallback protocol end to end.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "core/config_search.hpp"
#include "core/measurement_db.hpp"
#include "core/pnp_tuner.hpp"
#include "core/search_space.hpp"
#include "core/tuner_artifact.hpp"
#include "serve/inference_engine.hpp"
#include "serve/tuning_service.hpp"
#include "workloads/suite.hpp"

namespace pnp::core {
namespace {

/// Deterministic logit generator (xorshift64*): tests never touch global
/// RNG state, so every run scores the identical synthetic models.
class LogitGen {
 public:
  explicit LogitGen(std::uint64_t seed) : s_(seed * 2685821657736338717ull + 1) {}
  double next() {
    s_ ^= s_ >> 12;
    s_ ^= s_ << 25;
    s_ ^= s_ >> 27;
    const std::uint64_t v = s_ * 2685821657736338717ull;
    return static_cast<double>(v >> 11) / 4503599627370496.0 - 1.0;  // [-1,1)
  }
  std::vector<double> vec(int n) {
    std::vector<double> out(static_cast<std::size_t>(n));
    for (double& x : out) x = next();
    return out;
  }

 private:
  std::uint64_t s_;
};

std::vector<SearchSpace> all_spaces() {
  std::vector<SearchSpace> spaces;
  for (const auto& m :
       {hw::MachineModel::haswell(), hw::MachineModel::skylake()}) {
    spaces.push_back(SearchSpace::for_machine(m));
    spaces.push_back(SearchSpace::extended_for_machine(m));
  }
  return spaces;
}

bool same_choice(const SearchChoice& a, const SearchChoice& b) {
  return a.cap_cls == b.cap_cls && a.thread_cls == b.thread_cls &&
         a.sched_cls == b.sched_cls && a.chunk_cls == b.chunk_cls &&
         a.score == b.score;  // bit-identical, not approximately equal
}

// --- Extended / custom space shape ----------------------------------------

TEST(ExtendedSpace, HaswellExceedsTwoThousandConfigs) {
  const auto s = SearchSpace::extended_for_machine(hw::MachineModel::haswell());
  EXPECT_EQ(s.num_thread_classes(), 12);
  EXPECT_EQ(s.num_schedule_classes(), 3);
  EXPECT_EQ(s.num_chunk_classes(), 16);  // 15 values + default class
  EXPECT_GE(s.joint_size(), 2000);
  EXPECT_EQ(s.joint_size(), 4 * (12 * 3 * 15 + 1));
  EXPECT_TRUE(s.has_constraints());
  EXPECT_GT(s.joint_invalid_count(), 0);
  EXPECT_LT(s.joint_invalid_count(), s.joint_size());
}

TEST(ExtendedSpace, SkylakeExceedsTwoThousandConfigs) {
  const auto s = SearchSpace::extended_for_machine(hw::MachineModel::skylake());
  EXPECT_EQ(s.num_thread_classes(), 16);
  EXPECT_GE(s.joint_size(), 2000);
  EXPECT_TRUE(s.has_constraints());
}

TEST(ExtendedSpace, FullGridValidAtTdpOnly) {
  const auto s = SearchSpace::extended_for_machine(hw::MachineModel::haswell());
  // The thread-per-watt slope admits the whole thread grid exactly at TDP.
  EXPECT_EQ(s.max_valid_threads(s.tdp()), 32);
  // At the tightest cap (40 W) high thread counts are pruned:
  // 40 * 32 / 85 ≈ 15.06, so 12 is the largest admissible grid value.
  EXPECT_EQ(s.max_valid_threads(40.0), 12);
  EXPECT_FALSE(s.is_valid({16, sim::Schedule::Static, 32}, 40.0));
  EXPECT_TRUE(s.is_valid({12, sim::Schedule::Static, 32}, 40.0));
}

TEST(ExtendedSpace, DefaultConfigValidAtEveryCap) {
  for (const auto& s : all_spaces())
    for (double cap_w : s.power_caps())
      EXPECT_TRUE(s.is_valid(s.default_config(), cap_w));
}

TEST(ExtendedSpace, DynamicScheduleChunkFloor) {
  const auto s = SearchSpace::extended_for_machine(hw::MachineModel::haswell());
  EXPECT_FALSE(s.is_valid({4, sim::Schedule::Dynamic, 2}, s.tdp()));
  EXPECT_TRUE(s.is_valid({4, sim::Schedule::Dynamic, 4}, s.tdp()));
  EXPECT_TRUE(s.is_valid({4, sim::Schedule::Static, 2}, s.tdp()));
}

TEST(ExtendedSpace, ChunkThreadProductCeiling) {
  const auto s = SearchSpace::extended_for_machine(hw::MachineModel::haswell());
  EXPECT_FALSE(s.is_valid({32, sim::Schedule::Static, 256}, s.tdp()));
  EXPECT_TRUE(s.is_valid({8, sim::Schedule::Static, 256}, s.tdp()));
}

TEST(PaperSpace, TableOneCarriesNoConstraints) {
  for (const auto& m :
       {hw::MachineModel::haswell(), hw::MachineModel::skylake()}) {
    const auto s = SearchSpace::for_machine(m);
    EXPECT_FALSE(s.has_constraints());
    EXPECT_EQ(s.joint_invalid_count(), 0);
    // Constraint pruning can never remove a config the oracle would pick:
    // every joint point stays valid at its cap.
    for (int i = 0; i < s.joint_size(); ++i) {
      const auto p = s.joint_point(i);
      EXPECT_TRUE(s.is_valid(
          p.cfg, s.power_caps()[static_cast<std::size_t>(p.cap_index)]));
    }
  }
}

TEST(CustomSpace, ValidatesItsInputs) {
  const sim::OmpConfig def{8, sim::Schedule::Static, 0};
  const std::vector<sim::Schedule> scheds{sim::Schedule::Static};
  EXPECT_THROW(SearchSpace::custom({}, scheds, {1}, {50.0}, def), Error);
  EXPECT_THROW(SearchSpace::custom({8}, scheds, {1}, {60.0, 50.0}, def),
               Error);  // caps must ascend
  EXPECT_THROW(SearchSpace::custom({8}, scheds, {1}, {50.0},
                                   {8, sim::Schedule::Static, 16}),
               Error);  // default chunk must be 0
  EXPECT_THROW(SearchSpace::custom({4}, scheds, {1}, {50.0}, def),
               Error);  // default threads off the grid
  EXPECT_THROW(SearchSpace::custom({8}, {sim::Schedule::Dynamic}, {1}, {50.0},
                                   def),
               Error);  // default schedule off the grid
  EXPECT_THROW(
      SearchSpace::custom({8}, scheds, {1}, {50.0}, def,
                          {{static_cast<ConstraintRule::Kind>(99), 1.0, 0.0}}),
      Error);  // unknown constraint kind
  const auto ok = SearchSpace::custom(
      {4, 8}, scheds, {1, 2}, {50.0}, def,
      {{ConstraintRule::Kind::kMaxThreads, 4.0, 0.0}});
  EXPECT_TRUE(ok.has_constraints());
  EXPECT_EQ(ok.max_valid_threads(50.0), 4);
}

// --- Beam search vs the exhaustive oracle ---------------------------------

template <typename T>
void check_power_equivalence(const SearchSpace& s, std::uint64_t seed) {
  LogitGen gen(seed);
  const auto thr64 = gen.vec(s.num_thread_classes());
  const auto sch64 = gen.vec(s.num_schedule_classes());
  const auto chk64 = gen.vec(s.num_chunk_classes());
  std::vector<T> thr(thr64.begin(), thr64.end());
  std::vector<T> sch(sch64.begin(), sch64.end());
  std::vector<T> chk(chk64.begin(), chk64.end());
  const std::span<const T> ts(thr), ss(sch), cs(chk);
  for (double cap_w : s.power_caps()) {
    const SearchChoice oracle = exhaustive_power<T>(s, cap_w, ts, ss, cs);
    EXPECT_TRUE(s.is_valid(
        s.config_from_classes(oracle.thread_cls, oracle.sched_cls,
                              oracle.chunk_cls),
        cap_w));
    // Full width (0) and any width >= the space size are bit-identical to
    // the exhaustive scan.
    for (int width : {0, s.joint_size()}) {
      const SearchChoice beam = search_power<T>(s, cap_w, ts, ss, cs, width);
      EXPECT_TRUE(same_choice(beam, oracle))
          << "cap " << cap_w << " width " << width;
    }
    // Narrow beams must still answer with a valid config and can never
    // beat the oracle's score.
    for (int width : {1, 2, 3}) {
      const SearchChoice beam = search_power<T>(s, cap_w, ts, ss, cs, width);
      EXPECT_TRUE(s.is_valid(
          s.config_from_classes(beam.thread_cls, beam.sched_cls,
                                beam.chunk_cls),
          cap_w));
      EXPECT_LE(beam.score, oracle.score);
    }
  }
}

template <typename T>
void check_edp_equivalence(const SearchSpace& s, std::uint64_t seed) {
  LogitGen gen(seed);
  const auto cap64 = gen.vec(s.num_cap_classes());
  const auto thr64 = gen.vec(s.num_thread_classes());
  const auto sch64 = gen.vec(s.num_schedule_classes());
  const auto chk64 = gen.vec(s.num_chunk_classes());
  std::vector<T> cap(cap64.begin(), cap64.end());
  std::vector<T> thr(thr64.begin(), thr64.end());
  std::vector<T> sch(sch64.begin(), sch64.end());
  std::vector<T> chk(chk64.begin(), chk64.end());
  const std::span<const T> ps(cap), ts(thr), ss(sch), cs(chk);
  const SearchChoice oracle = exhaustive_edp<T>(s, ps, ts, ss, cs);
  for (int width : {0, s.joint_size()}) {
    const SearchChoice beam = search_edp<T>(s, ps, ts, ss, cs, width);
    EXPECT_TRUE(same_choice(beam, oracle)) << "width " << width;
  }
  for (int width : {1, 2, 3}) {
    const SearchChoice beam = search_edp<T>(s, ps, ts, ss, cs, width);
    EXPECT_TRUE(s.is_valid(
        s.config_from_classes(beam.thread_cls, beam.sched_cls, beam.chunk_cls),
        s.power_caps()[static_cast<std::size_t>(beam.cap_cls)]));
    EXPECT_LE(beam.score, oracle.score);
  }
}

TEST(BeamSearch, MatchesExhaustivePowerF64) {
  for (const auto& s : all_spaces())
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u})
      check_power_equivalence<double>(s, seed);
}

TEST(BeamSearch, MatchesExhaustivePowerF32) {
  for (const auto& s : all_spaces())
    for (std::uint64_t seed : {1u, 2u, 3u})
      check_power_equivalence<float>(s, seed);
}

TEST(BeamSearch, MatchesExhaustiveEdpF64) {
  for (const auto& s : all_spaces())
    for (std::uint64_t seed : {7u, 8u, 9u, 10u, 11u})
      check_edp_equivalence<double>(s, seed);
}

TEST(BeamSearch, MatchesExhaustiveEdpF32) {
  for (const auto& s : all_spaces())
    for (std::uint64_t seed : {7u, 8u, 9u})
      check_edp_equivalence<float>(s, seed);
}

TEST(BeamSearch, TieBreakIsLexicographicOnEqualLogits) {
  // All-zero logits: every tuple scores 0, so the winner must be the first
  // valid tuple in (cap, thread, sched, chunk) lexicographic order — the
  // same first-max-wins protocol as nn::argmax_index.
  for (const auto& s : all_spaces()) {
    const std::vector<double> thr(static_cast<std::size_t>(s.num_thread_classes()), 0.0);
    const std::vector<double> sch(static_cast<std::size_t>(s.num_schedule_classes()), 0.0);
    const std::vector<double> chk(static_cast<std::size_t>(s.num_chunk_classes()), 0.0);
    const double cap_w = s.power_caps().front();
    const SearchChoice beam =
        search_power<double>(s, cap_w, thr, sch, chk, 0);
    const SearchChoice oracle =
        exhaustive_power<double>(s, cap_w, thr, sch, chk);
    EXPECT_TRUE(same_choice(beam, oracle));
    EXPECT_EQ(oracle.thread_cls, 0);
    EXPECT_EQ(oracle.sched_cls, 0);
    EXPECT_EQ(oracle.chunk_cls, 0);  // (1 thread, static, default chunk)
  }
}

TEST(BeamSearch, FastPathEqualsArgmaxOnUnconstrainedSpace) {
  // On a constraint-free space the per-head argmax tuple is always valid,
  // so the search must return exactly the independent-argmax decode.
  const auto s = SearchSpace::for_machine(hw::MachineModel::haswell());
  LogitGen gen(42);
  const auto thr = gen.vec(s.num_thread_classes());
  const auto sch = gen.vec(s.num_schedule_classes());
  const auto chk = gen.vec(s.num_chunk_classes());
  const auto argmax = [](const std::vector<double>& v) {
    int best = 0;
    for (std::size_t i = 1; i < v.size(); ++i)
      if (v[i] > v[static_cast<std::size_t>(best)]) best = static_cast<int>(i);
    return best;
  };
  const SearchChoice c =
      search_power<double>(s, s.power_caps()[0], thr, sch, chk, 0);
  EXPECT_EQ(c.thread_cls, argmax(thr));
  EXPECT_EQ(c.sched_cls, argmax(sch));
  EXPECT_EQ(c.chunk_cls, argmax(chk));
  EXPECT_FALSE(c.used_fallback);
}

TEST(BeamSearch, FallsBackToDefaultWhenEverythingIsPruned) {
  // kMaxThreads 0.5 prunes every grid config; only the default survives
  // (the fallback guarantee).
  const auto s = SearchSpace::custom(
      {4, 8}, {sim::Schedule::Static, sim::Schedule::Dynamic}, {16, 32},
      {50.0, 80.0}, {8, sim::Schedule::Static, 0},
      {{ConstraintRule::Kind::kMaxThreads, 0.5, 0.0}});
  LogitGen gen(3);
  const auto thr = gen.vec(s.num_thread_classes());
  const auto sch = gen.vec(s.num_schedule_classes());
  const auto chk = gen.vec(s.num_chunk_classes());
  for (double cap_w : s.power_caps()) {
    const SearchChoice c = search_power<double>(s, cap_w, thr, sch, chk, 0);
    // The default tuple is reachable as a regular (always-valid) beam
    // member, so this is a genuine search result, not the emergency
    // fallback path.
    EXPECT_EQ(s.config_from_classes(c.thread_cls, c.sched_cls, c.chunk_cls),
              s.default_config());
    const SearchChoice ex = exhaustive_power<double>(s, cap_w, thr, sch, chk);
    EXPECT_TRUE(same_choice(c, ex));
  }
  // Dense layout: the only valid flat class is the default tuple's.
  std::vector<double> dense(
      static_cast<std::size_t>(s.num_thread_classes() *
                               s.num_schedule_classes() *
                               s.num_chunk_classes()));
  LogitGen dg(4);
  for (double& x : dense) x = dg.next();
  const int flat = dense_argmax_valid<double>(s, dense, false, 50.0);
  ASSERT_GE(flat, 0);
  const TunerClasses tc = tuner_classes_from_flat(s, flat, false);
  EXPECT_EQ(s.config_from_classes(tc.thread, tc.sched, tc.chunk),
            s.default_config());
}

TEST(DenseArgmax, EqualsPlainArgmaxOnUnconstrainedSpace) {
  const auto s = SearchSpace::for_machine(hw::MachineModel::skylake());
  LogitGen gen(9);
  std::vector<double> dense(
      static_cast<std::size_t>(s.num_thread_classes() *
                               s.num_schedule_classes() *
                               s.num_chunk_classes()));
  for (double& x : dense) x = gen.next();
  int plain = 0;
  for (std::size_t i = 1; i < dense.size(); ++i)
    if (dense[i] > dense[static_cast<std::size_t>(plain)])
      plain = static_cast<int>(i);
  EXPECT_EQ(dense_argmax_valid<double>(s, dense, false, s.power_caps()[0]),
            plain);
}

// --- Trained models: serving equals the tuner, across spaces and widths ---

MeasurementDb small_db(const hw::MachineModel& m, const SearchSpace& space) {
  auto regions = workloads::Suite::instance().all_regions();
  regions.resize(12);  // enough structure, fast to measure and train
  return MeasurementDb(sim::Simulator(m), space, regions);
}

TEST(ModelGuidedServing, EngineMatchesTunerOnExtendedSpace) {
  const auto m = hw::MachineModel::haswell();
  const auto space = SearchSpace::extended_for_machine(m);
  const MeasurementDb db = small_db(m, space);
  PnpOptions opt;
  opt.trainer.max_epochs = 2;
  PnpTuner tuner(db, opt);
  std::vector<int> all;
  for (int r = 0; r < db.num_regions(); ++r) all.push_back(r);
  tuner.train_power_scenario(all);

  // The tuner's own predictions (full-width search) are the reference;
  // the engine must match at full width through both scratch paths.
  std::vector<sim::OmpConfig> ref;
  for (int r = 0; r < db.num_regions(); ++r)
    for (int k = 0; k < db.num_caps(); ++k)
      ref.push_back(tuner.predict_power(r, k));

  for (const bool use_arena : {true, false}) {
    serve::EngineOptions eopt;
    eopt.use_arena = use_arena;
    serve::InferenceEngine engine(PnpTuner::from_artifact(db, tuner.to_artifact()),
                                  eopt);
    std::size_t i = 0;
    for (int r = 0; r < db.num_regions(); ++r)
      for (int k = 0; k < db.num_caps(); ++k)
        EXPECT_EQ(engine.predict_power(r, k), ref[i++])
            << "region " << r << " cap " << k << " arena " << use_arena;
  }

  // A narrow beam still serves valid configs at every cap.
  serve::EngineOptions narrow;
  narrow.beam_width = 2;
  serve::InferenceEngine engine(PnpTuner::from_artifact(db, tuner.to_artifact()),
                                narrow);
  for (int r = 0; r < db.num_regions(); ++r)
    for (int k = 0; k < db.num_caps(); ++k)
      EXPECT_TRUE(space.is_valid(
          engine.predict_power(r, k),
          space.power_caps()[static_cast<std::size_t>(k)]));
}

TEST(ModelGuidedServing, EdpEngineMatchesTunerOnExtendedSpace) {
  const auto m = hw::MachineModel::haswell();
  const auto space = SearchSpace::extended_for_machine(m);
  const MeasurementDb db = small_db(m, space);
  PnpOptions opt;
  opt.trainer.max_epochs = 2;
  PnpTuner tuner(db, opt);
  std::vector<int> all;
  for (int r = 0; r < db.num_regions(); ++r) all.push_back(r);
  tuner.train_edp_scenario(all);

  std::vector<PnpTuner::JointChoice> ref;
  for (int r = 0; r < db.num_regions(); ++r) ref.push_back(tuner.predict_edp(r));

  serve::InferenceEngine engine(
      PnpTuner::from_artifact(db, tuner.to_artifact()));
  for (int r = 0; r < db.num_regions(); ++r) {
    const auto jc = engine.predict_edp(r);
    EXPECT_EQ(jc.cap_index, ref[static_cast<std::size_t>(r)].cap_index);
    EXPECT_EQ(jc.cfg, ref[static_cast<std::size_t>(r)].cfg);
    EXPECT_TRUE(space.is_valid(
        jc.cfg, space.power_caps()[static_cast<std::size_t>(jc.cap_index)]));
  }
}

TEST(ModelGuidedServing, ServiceHotReloadsExtendedSpaceArtifact) {
  const auto m = hw::MachineModel::haswell();
  const auto space = SearchSpace::extended_for_machine(m);
  const MeasurementDb db = small_db(m, space);
  ASSERT_GE(space.joint_size(), 2000);

  PnpOptions opt;
  opt.trainer.max_epochs = 2;
  std::vector<int> all;
  for (int r = 0; r < db.num_regions(); ++r) all.push_back(r);

  PnpTuner first(db, opt);
  first.train_power_scenario(all);
  const std::string p1 = testing::TempDir() + "search_ext_v1.pnp";
  const std::string p2 = testing::TempDir() + "search_ext_v2.pnp";
  first.save(p1);
  opt.seed = 99;  // a genuinely different second model
  PnpTuner second(db, opt);
  second.train_power_scenario(all);
  second.save(p2);

  serve::TuningServiceOptions sopt;
  sopt.beam_width = 4;
  serve::TuningService service(db, p1, sopt);
  EXPECT_EQ(service.model_version(), 1u);

  // Serve → hot-reload → serve; both versions answer deterministically and
  // within the constraint layer.
  const auto grid = [&](std::uint64_t want_version) {
    std::vector<serve::TuneResult> out;
    for (int r = 0; r < db.num_regions(); ++r)
      for (int k = 0; k < db.num_caps(); ++k) {
        const auto res = service.tune(serve::TuneRequest::power(r, k));
        EXPECT_EQ(res.model_version, want_version);
        EXPECT_TRUE(space.is_valid(
            res.config, space.power_caps()[static_cast<std::size_t>(k)]));
        out.push_back(res);
      }
    return out;
  };
  const auto g1a = grid(1);
  const auto g1b = grid(1);
  for (std::size_t i = 0; i < g1a.size(); ++i)
    EXPECT_EQ(g1a[i].config, g1b[i].config);

  EXPECT_EQ(service.reload(p2), 2u);
  const auto g2 = grid(2);
  EXPECT_EQ(g2.size(), g1a.size());
}

}  // namespace
}  // namespace pnp::core
