/// Central-difference gradient checks for every trainable stage of the
/// RGCN network: token/kind embeddings, RGCN layers (full and
/// basis-decomposed), dense layers, biases, and the multi-head
/// cross-entropy — the backward passes are hand-derived, so these tests
/// are the safety net for the whole learning stack.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/rgcn_net.hpp"

namespace pnp::nn {
namespace {

graph::GraphTensors small_graph(std::uint64_t seed) {
  graph::GraphTensors g;
  g.name = "gc";
  g.num_nodes = 7;
  Rng rng(seed);
  for (int i = 0; i < g.num_nodes; ++i) {
    g.token.push_back(static_cast<int>(rng.uniform_index(5)));
    g.kind.push_back(static_cast<int>(rng.uniform_index(3)));
  }
  for (int rel = 0; rel < graph::kNumEdgeRelations; ++rel) {
    const int edges = 2 + rel;  // uneven relation populations
    for (int e = 0; e < edges; ++e) {
      const int s = static_cast<int>(rng.uniform_index(7));
      const int d = static_cast<int>(rng.uniform_index(7));
      g.rel_edges[static_cast<std::size_t>(2 * rel)].emplace_back(s, d);
      g.rel_edges[static_cast<std::size_t>(2 * rel + 1)].emplace_back(d, s);
    }
  }
  return g;
}

RgcnNetConfig gc_config(int num_bases) {
  RgcnNetConfig c;
  c.vocab_size = 5;
  c.emb_dim = 4;
  c.rgcn_layers = 2;
  c.hidden = 5;
  c.dense_hidden1 = 6;
  c.dense_hidden2 = 4;
  c.head_sizes = {3, 2};
  c.extra_features = 2;
  c.num_bases = num_bases;
  c.seed = 7;
  // A softer slope exercises both LeakyReLU branches.
  c.leaky_slope = 0.1;
  return c;
}

/// Loss for fixed labels; the quantity the gradcheck differentiates.
double loss_of(const RgcnNet& net, const graph::GraphTensors& g,
               const std::vector<double>& extra,
               const std::vector<int>& labels) {
  const auto dc = net.forward(g, extra);
  double loss = 0.0;
  std::vector<double> scratch(dc.logits.size());
  int off = 0;
  for (std::size_t h = 0; h < labels.size(); ++h) {
    const int len = net.config().head_sizes[h];
    std::vector<double> grad(static_cast<std::size_t>(len));
    loss += softmax_cross_entropy(
        std::span<const double>(dc.logits)
            .subspan(static_cast<std::size_t>(off), static_cast<std::size_t>(len)),
        labels[h], grad);
    off += len;
  }
  return loss;
}

/// Analytic gradients for the same loss.
void backward_of(RgcnNet& net, const graph::GraphTensors& g,
                 const std::vector<double>& extra,
                 const std::vector<int>& labels) {
  const auto gc = net.encode(g);
  const auto dc = net.dense_forward(gc.readout, extra);
  std::vector<double> dlogits(dc.logits.size(), 0.0);
  int off = 0;
  for (std::size_t h = 0; h < labels.size(); ++h) {
    const int len = net.config().head_sizes[h];
    softmax_cross_entropy(
        std::span<const double>(dc.logits)
            .subspan(static_cast<std::size_t>(off), static_cast<std::size_t>(len)),
        labels[h],
        std::span<double>(dlogits).subspan(static_cast<std::size_t>(off),
                                           static_cast<std::size_t>(len)));
    off += len;
  }
  const auto dr = net.dense_backward(dc, dlogits);
  net.gnn_backward(gc, dr);
}

/// Checks d(loss)/d(param[k]) for a deterministic sample of entries of
/// every parameter against central differences.
void check_all_params(int num_bases) {
  RgcnNet net(gc_config(num_bases));
  const auto g = small_graph(21);
  const std::vector<double> extra{0.4, -0.7};
  const std::vector<int> labels{1, 0};

  net.zero_grad();
  backward_of(net, g, extra, labels);

  const double eps = 1e-6;
  Rng pick(31);
  for (Param* p : net.params()) {
    // Sample up to 6 entries per parameter.
    const std::size_t n = p->w.size();
    for (int s = 0; s < 6; ++s) {
      const std::size_t k = pick.uniform_index(n);
      const double orig = p->w.data()[k];
      p->w.data()[k] = orig + eps;
      const double lp = loss_of(net, g, extra, labels);
      p->w.data()[k] = orig - eps;
      const double lm = loss_of(net, g, extra, labels);
      p->w.data()[k] = orig;
      const double fd = (lp - lm) / (2.0 * eps);
      const double an = p->g.data()[k];
      const double denom = std::max({std::abs(fd), std::abs(an), 1e-8});
      EXPECT_LT(std::abs(fd - an) / denom, 1e-5)
          << p->name << "[" << k << "]: analytic " << an << " vs numeric "
          << fd;
    }
  }
}

TEST(GradCheck, FullRelationWeights) { check_all_params(/*num_bases=*/0); }

TEST(GradCheck, BasisDecomposition) { check_all_params(/*num_bases=*/2); }

TEST(GradCheck, GraphWithIsolatedNodes) {
  // Nodes with zero in-degree in some relations stress the normalization
  // path (no division by zero, correct gradients).
  RgcnNet net(gc_config(0));
  graph::GraphTensors g;
  g.num_nodes = 5;
  g.name = "sparse";
  for (int i = 0; i < 5; ++i) {
    g.token.push_back(i % 5);
    g.kind.push_back(i % 3);
  }
  // Only one relation has edges at all.
  g.rel_edges[0].emplace_back(0, 1);
  g.rel_edges[1].emplace_back(1, 0);

  const std::vector<double> extra{1.0, 0.0};
  const std::vector<int> labels{2, 1};
  net.zero_grad();
  backward_of(net, g, extra, labels);

  const double eps = 1e-6;
  Param* w0 = nullptr;
  for (Param* p : net.params())
    if (p->name == "rgcn.0.w0") w0 = p;
  ASSERT_NE(w0, nullptr);
  for (std::size_t k = 0; k < std::min<std::size_t>(w0->w.size(), 8); ++k) {
    const double orig = w0->w.data()[k];
    w0->w.data()[k] = orig + eps;
    const double lp = loss_of(net, g, extra, labels);
    w0->w.data()[k] = orig - eps;
    const double lm = loss_of(net, g, extra, labels);
    w0->w.data()[k] = orig;
    const double fd = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(w0->g.data()[k], fd, 1e-6);
  }
}

TEST(GradCheck, GradAccumulationIsAdditive) {
  // backward twice == 2 × backward once.
  RgcnNet net(gc_config(0));
  const auto g = small_graph(5);
  const std::vector<double> extra{0.1, 0.1};
  const std::vector<int> labels{0, 1};

  net.zero_grad();
  backward_of(net, g, extra, labels);
  std::vector<double> once;
  for (Param* p : net.params())
    once.insert(once.end(), p->g.flat().begin(), p->g.flat().end());

  net.zero_grad();
  backward_of(net, g, extra, labels);
  backward_of(net, g, extra, labels);
  std::size_t idx = 0;
  for (Param* p : net.params())
    for (double v : p->g.flat())
      EXPECT_NEAR(v, 2.0 * once[idx++], 1e-12);
}

TEST(GradCheck, ZeroGradClears) {
  RgcnNet net(gc_config(0));
  const auto g = small_graph(5);
  backward_of(net, g, {0.1, 0.1}, {0, 1});
  net.zero_grad();
  for (Param* p : net.params())
    for (double v : p->g.flat()) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace pnp::nn
