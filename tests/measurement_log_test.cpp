// Tests for core::MeasurementLog (the feedback loop's durable ingest
// format), validate/locate/replay, and the overflow-hardened grid
// indexing of MeasurementDb (docs/SERVING.md, "Model lifecycle").

#include <climits>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/wire.hpp"
#include "core/measurement_db.hpp"
#include "core/measurement_log.hpp"
#include "workloads/suite.hpp"

namespace pnp::core {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(is), {});
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

MeasurementRecord record(int region, double cap_w, int threads,
                         sim::Schedule sched, int chunk, double seconds,
                         double joules) {
  MeasurementRecord m;
  m.region = region;
  m.cap_w = cap_w;
  m.config = sim::OmpConfig{threads, sched, chunk};
  m.seconds = seconds;
  m.joules = joules;
  return m;
}

TEST(MeasurementLogTest, AppendAndReadAllRoundTrips) {
  const std::string path = temp_path("mlog_roundtrip.bin");
  std::remove(path.c_str());
  {
    MeasurementLog log(path);
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.append(record(0, 40.0, 4, sim::Schedule::Static, 0, 1.25,
                                55.0)),
              1u);
    EXPECT_EQ(log.append(record(3, 70.0, 16, sim::Schedule::Guided, 8, 0.5,
                                30.0)),
              2u);
    EXPECT_EQ(log.size(), 2u);
  }
  const auto records = MeasurementLog::read_all(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].region, 0);
  EXPECT_DOUBLE_EQ(records[0].cap_w, 40.0);
  EXPECT_EQ(records[0].config.threads, 4);
  EXPECT_EQ(records[0].config.schedule, sim::Schedule::Static);
  EXPECT_DOUBLE_EQ(records[0].seconds, 1.25);
  EXPECT_DOUBLE_EQ(records[0].joules, 55.0);
  EXPECT_EQ(records[1].region, 3);
  EXPECT_EQ(records[1].config.threads, 16);
  EXPECT_EQ(records[1].config.schedule, sim::Schedule::Guided);
  EXPECT_EQ(records[1].config.chunk, 8);
}

TEST(MeasurementLogTest, ReopenResumesCountAndAppends) {
  const std::string path = temp_path("mlog_reopen.bin");
  std::remove(path.c_str());
  {
    MeasurementLog log(path);
    log.append(record(1, 40.0, 2, sim::Schedule::Dynamic, 4, 2.0, 80.0));
  }
  {
    MeasurementLog log(path);
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(log.append(record(2, 55.0, 8, sim::Schedule::Static, 0, 1.0,
                                42.0)),
              2u);
  }
  EXPECT_EQ(MeasurementLog::read_all(path).size(), 2u);
}

TEST(MeasurementLogTest, BadMagicRejected) {
  const std::string path = temp_path("mlog_badmagic.bin");
  dump(path, "NOTALOG1");
  EXPECT_THROW(MeasurementLog::read_all(path), Error);
  EXPECT_THROW(MeasurementLog{path}, Error);
}

TEST(MeasurementLogTest, TornTailRejectedWholesale) {
  const std::string path = temp_path("mlog_torn.bin");
  std::remove(path.c_str());
  {
    MeasurementLog log(path);
    log.append(record(0, 40.0, 4, sim::Schedule::Static, 0, 1.0, 50.0));
    log.append(record(1, 55.0, 8, sim::Schedule::Guided, 2, 0.7, 33.0));
  }
  // Chop mid-record: a crash between the length prefix and the payload.
  std::string bytes = slurp(path);
  dump(path, bytes.substr(0, bytes.size() - 5));
  // All-or-nothing: the intact first record is NOT returned.
  EXPECT_THROW(MeasurementLog::read_all(path), Error);
  // And the writer refuses to open over a torn log rather than appending
  // unreadable garbage after the tear.
  EXPECT_THROW(MeasurementLog{path}, Error);
}

TEST(MeasurementLogTest, OversizedLengthClaimRejected) {
  const std::string path = temp_path("mlog_oversize.bin");
  std::string bytes = "PNPMLOG1";
  {
    std::string frame;
    wire::put_u32(frame, 1u << 20);  // absurd length claim, no payload
    bytes += frame;
  }
  dump(path, bytes);
  EXPECT_THROW(MeasurementLog::read_all(path), Error);
}

TEST(MeasurementLogTest, PoisonedValuesRejected) {
  const std::string path = temp_path("mlog_poison.bin");
  MeasurementLog log(path);
  // Every invalid field is refused at append time…
  EXPECT_THROW(log.append(record(-1, 40.0, 4, sim::Schedule::Static, 0, 1.0,
                                 50.0)),
               Error);
  EXPECT_THROW(log.append(record(0, 0.0, 4, sim::Schedule::Static, 0, 1.0,
                                 50.0)),
               Error);
  EXPECT_THROW(log.append(record(0, 40.0, 0, sim::Schedule::Static, 0, 1.0,
                                 50.0)),
               Error);
  EXPECT_THROW(log.append(record(0, 40.0, 4, sim::Schedule::Static, -2, 1.0,
                                 50.0)),
               Error);
  EXPECT_THROW(log.append(record(0, 40.0, 4, sim::Schedule::Static, 0, -1.0,
                                 50.0)),
               Error);
  EXPECT_THROW(log.append(record(0, 40.0, 4, sim::Schedule::Static, 0, 1.0,
                                 0.0)),
               Error);
  EXPECT_EQ(log.size(), 0u);
}

TEST(MeasurementLogTest, NarrowingRegionRejectedOnRead) {
  // A u32 region that does not fit an int must not wrap negative.
  const std::string path = temp_path("mlog_narrow.bin");
  std::string payload;
  wire::put_u32(payload, 0xFFFFFFFFu);  // region
  wire::put_f64(payload, 40.0);
  wire::put_u32(payload, 4);  // threads
  wire::put_u8(payload, 0);   // schedule
  wire::put_u32(payload, 0);  // chunk
  wire::put_f64(payload, 1.0);
  wire::put_f64(payload, 50.0);
  std::string bytes = "PNPMLOG1";
  wire::put_u32(bytes, static_cast<std::uint32_t>(payload.size()));
  bytes += payload;
  dump(path, bytes);
  EXPECT_THROW(MeasurementLog::read_all(path), Error);
}

class GridFixture : public ::testing::Test {
 protected:
  static const MeasurementDb& db() {
    static const hw::MachineModel machine = hw::MachineModel::haswell();
    static const sim::Simulator sim(machine);
    static const MeasurementDb instance(
        sim, SearchSpace::for_machine(machine),
        workloads::Suite::instance().all_regions());
    return instance;
  }
};

TEST_F(GridFixture, LocateObservationMapsOnGridRecords) {
  const auto& space = db().space();
  MeasurementRecord m = record(2, space.power_caps()[1], 1, sim::Schedule::Static,
                               0, 1.0, 40.0);
  m.config = space.candidate(5);
  const GridCell cell = locate_observation(db(), m);
  EXPECT_EQ(cell.region, 2);
  EXPECT_EQ(cell.cap, 1);
  EXPECT_EQ(cell.candidate, 5);

  // The default config maps to the dedicated default slot.
  m.config = space.default_config();
  EXPECT_EQ(locate_observation(db(), m).candidate, space.num_omp_configs());
}

TEST_F(GridFixture, LocateObservationRejectsOffGrid) {
  const auto& space = db().space();
  MeasurementRecord ok = record(0, space.power_caps()[0], 1,
                                sim::Schedule::Static, 0, 1.0, 40.0);
  ok.config = space.candidate(0);

  MeasurementRecord m = ok;
  m.region = db().num_regions();
  EXPECT_THROW(locate_observation(db(), m), Error);

  m = ok;
  m.cap_w = 17.77;  // between grid caps
  EXPECT_THROW(locate_observation(db(), m), Error);

  m = ok;
  m.config.threads = 9999;  // off-grid config that is not the default
  EXPECT_THROW(locate_observation(db(), m), Error);
}

TEST_F(GridFixture, ApplyObservationPreservesCountersAndFrequency) {
  MeasurementDb copy = db();
  const sim::ExecutionResult before = copy.at(1, 2, 3);
  copy.apply_observation(1, 2, 3, before.seconds * 2.0, before.joules * 3.0);
  const sim::ExecutionResult& after = copy.at(1, 2, 3);
  EXPECT_DOUBLE_EQ(after.seconds, before.seconds * 2.0);
  EXPECT_DOUBLE_EQ(after.joules, before.joules * 3.0);
  EXPECT_DOUBLE_EQ(after.avg_power_w,
                   before.joules * 3.0 / (before.seconds * 2.0));
  EXPECT_DOUBLE_EQ(after.frequency_ghz, before.frequency_ghz);
  EXPECT_DOUBLE_EQ(after.counters.instructions, before.counters.instructions);
  EXPECT_DOUBLE_EQ(after.counters.l3_misses, before.counters.l3_misses);
  // Untouched neighbors stay bit-identical.
  EXPECT_DOUBLE_EQ(copy.at(1, 2, 4).seconds, db().at(1, 2, 4).seconds);
}

TEST_F(GridFixture, ReplayObservationsIsAllOrNothing) {
  MeasurementDb copy = db();
  const auto& space = db().space();
  MeasurementRecord good = record(0, space.power_caps()[0], 1,
                                  sim::Schedule::Static, 0, 9.0, 90.0);
  good.config = space.candidate(0);
  MeasurementRecord bad = good;
  bad.region = db().num_regions();  // cannot land on the grid

  const double untouched = copy.at(0, 0, 0).seconds;
  EXPECT_THROW(replay_observations(copy, {good, bad}), Error);
  // The good record preceding the bad one was NOT applied.
  EXPECT_DOUBLE_EQ(copy.at(0, 0, 0).seconds, untouched);

  EXPECT_EQ(replay_observations(copy, {good}), 1u);
  EXPECT_DOUBLE_EQ(copy.at(0, 0, 0).seconds, 9.0);

  // `from` skips already-consumed records.
  EXPECT_EQ(replay_observations(copy, {good, good}, 1), 1u);
}

TEST(GridSlotTest, MatchesRowMajorReferenceWithoutOverflow) {
  // Products that overflow int (and even uint32) must index correctly:
  // the ingestion path grows corpora unbounded, and extended spaces put
  // thousands of candidates per (region, cap).
  const std::size_t caps = 11, per_cap = 3000;
  const std::size_t region = 69999, cap = 10, candidate = 2999;
  // 64-bit reference arithmetic, unsigned throughout.
  const std::size_t want = (region * caps + cap) * per_cap + candidate;
  EXPECT_EQ(MeasurementDb::grid_slot(region, caps, per_cap, cap, candidate),
            want);
  ASSERT_GT(want, static_cast<std::size_t>(INT_MAX))
      << "reference case must actually exceed int range";

  // Spot-check the general formula against an explicit triple loop on a
  // small grid (the same code path slot() routes through).
  std::size_t flat = 0;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t k = 0; k < 4; ++k)
      for (std::size_t c = 0; c < 5; ++c)
        EXPECT_EQ(MeasurementDb::grid_slot(r, 4, 5, k, c), flat++);
}

TEST(GridSlotTest, LargeCorpusReplayIndexesCorrectly) {
  // A synthetic corpus big enough that region*caps*per_cap products
  // exceed INT_MAX if computed in int. We can't allocate that grid, so
  // exercise the replay path's *indexing* on the biggest real db we have
  // and the slot math on the synthetic sizes above; at() bounds-checking
  // guards the rest.
  const hw::MachineModel machine = hw::MachineModel::haswell();
  const sim::Simulator sim(machine);
  const MeasurementDb db(sim, SearchSpace::for_machine(machine),
                         workloads::Suite::instance().all_regions());
  MeasurementDb copy = db;
  const auto& space = db.space();
  // Touch the last cell of the grid through the observation path: any
  // narrowing in the slot computation lands out of bounds and throws.
  const int r = db.num_regions() - 1;
  const int k = db.num_caps() - 1;
  const int c = space.num_omp_configs();  // the default slot
  const double s = db.at(r, k, c).seconds;
  copy.apply_observation(r, k, c, s * 1.5, db.at(r, k, c).joules);
  EXPECT_DOUBLE_EQ(copy.at(r, k, c).seconds, s * 1.5);
}

}  // namespace
}  // namespace pnp::core
