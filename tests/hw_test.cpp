/// Unit tests for the hardware/power substrate: machine models, the
/// RAPL/Variorum-style power-cap controller, and the energy meter.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hw/machine.hpp"
#include "hw/power.hpp"

namespace pnp::hw {
namespace {

TEST(MachineModel, PaperTopologies) {
  const auto sky = MachineModel::skylake();
  EXPECT_EQ(sky.total_cores(), 32);
  EXPECT_EQ(sky.max_threads(), 64);
  EXPECT_DOUBLE_EQ(sky.tdp_w, 150.0);
  EXPECT_DOUBLE_EQ(sky.min_cap_w, 75.0);

  const auto has = MachineModel::haswell();
  EXPECT_EQ(has.total_cores(), 16);
  EXPECT_EQ(has.max_threads(), 32);
  EXPECT_DOUBLE_EQ(has.tdp_w, 85.0);
  EXPECT_DOUBLE_EQ(has.min_cap_w, 40.0);
}

TEST(MachineModel, AllCoreDemandNearTdp) {
  // Calibration invariant: all cores busy at a realistic all-core clock
  // should demand roughly the TDP (it is what TDP means).
  const auto sky = MachineModel::skylake();
  const double d = sky.power_demand_w(32, 2, 2.6, 1.0);
  EXPECT_NEAR(d, sky.tdp_w, 10.0);

  const auto has = MachineModel::haswell();
  const double dh = has.power_demand_w(16, 2, 2.4, 1.0);
  EXPECT_NEAR(dh, has.tdp_w, 8.0);
}

TEST(MachineModel, PowerDemandMonotoneInFrequencyAndCores) {
  const auto m = MachineModel::skylake();
  double prev = 0.0;
  for (double f = 1.0; f <= 3.7; f += 0.3) {
    const double d = m.power_demand_w(16, 1, f);
    EXPECT_GT(d, prev);
    prev = d;
  }
  EXPECT_LT(m.power_demand_w(4, 1, 2.0), m.power_demand_w(8, 1, 2.0));
}

TEST(MachineModel, MemoryStalledCoresDrawLess) {
  const auto m = MachineModel::haswell();
  EXPECT_LT(m.power_demand_w(16, 2, 2.0, 0.1),
            m.power_demand_w(16, 2, 2.0, 1.0));
}

TEST(MachineModel, CacheTotalsScaleWithResources) {
  const auto m = MachineModel::skylake();
  EXPECT_DOUBLE_EQ(m.l3_total_bytes(2), 2.0 * m.l3_total_bytes(1));
  EXPECT_DOUBLE_EQ(m.l2_total_bytes(8), 2.0 * m.l2_total_bytes(4));
  EXPECT_GT(m.l2_total_bytes(1), m.l1_total_bytes(1));
}

TEST(PowerCap, ClampsToMachineLimits) {
  const auto m = MachineModel::haswell();
  PowerCapController ctl(m);
  EXPECT_DOUBLE_EQ(ctl.cap_watts(), m.tdp_w);  // default: TDP
  EXPECT_DOUBLE_EQ(ctl.set_cap_watts(10.0), m.min_cap_w);
  EXPECT_DOUBLE_EQ(ctl.set_cap_watts(500.0), m.tdp_w);
  EXPECT_DOUBLE_EQ(ctl.set_cap_watts(60.0), 60.0);
}

TEST(PowerCap, FrequencyFallsAsCapTightens) {
  const auto m = MachineModel::haswell();
  double prev = 0.0;
  for (double cap : {40.0, 60.0, 70.0, 85.0}) {
    const double f = PowerCapController::max_frequency_ghz(m, cap, 16, 2);
    EXPECT_GE(f, prev);  // higher cap → at least as fast
    prev = f;
    EXPECT_GE(f, m.fmin_ghz);
    EXPECT_LE(f, m.fmax_ghz);
  }
}

TEST(PowerCap, FrequencyFallsWithMoreActiveCores) {
  const auto m = MachineModel::skylake();
  const double f4 = PowerCapController::max_frequency_ghz(m, 100.0, 4, 1);
  const double f16 = PowerCapController::max_frequency_ghz(m, 100.0, 16, 1);
  const double f32 = PowerCapController::max_frequency_ghz(m, 100.0, 32, 2);
  EXPECT_GT(f4, f16);
  EXPECT_GT(f16, f32);
}

TEST(PowerCap, SingleCoreRunsAtMaxEvenUnderLowCap) {
  // One active core fits any sane package budget at top clock.
  const auto m = MachineModel::haswell();
  EXPECT_DOUBLE_EQ(
      PowerCapController::max_frequency_ghz(m, m.min_cap_w, 1, 1),
      m.fmax_ghz);
}

TEST(PowerCap, ChosenFrequencyRespectsBudget) {
  const auto m = MachineModel::skylake();
  for (double cap : {75.0, 100.0, 120.0, 150.0}) {
    for (int cores : {1, 8, 16, 32}) {
      const int sockets = cores > 16 ? 2 : 1;
      const double f =
          PowerCapController::max_frequency_ghz(m, cap, cores, sockets);
      if (f > m.fmin_ghz + 1e-9) {  // above the floor, demand must fit
        EXPECT_LE(m.power_demand_w(cores, sockets, f), cap + 1e-9)
            << "cap " << cap << " cores " << cores;
      }
    }
  }
}

TEST(PowerCap, StatefulAndStaticAgree) {
  const auto m = MachineModel::haswell();
  PowerCapController ctl(m);
  ctl.set_cap_watts(60.0);
  EXPECT_DOUBLE_EQ(ctl.max_frequency_ghz(8, 1),
                   PowerCapController::max_frequency_ghz(m, 60.0, 8, 1));
}

TEST(EnergyMeter, IntegratesPowerOverTime) {
  EnergyMeter em;
  em.accumulate(100.0, 2.0);
  em.accumulate(50.0, 2.0);
  EXPECT_DOUBLE_EQ(em.joules(), 300.0);
  EXPECT_DOUBLE_EQ(em.seconds(), 4.0);
  EXPECT_DOUBLE_EQ(em.average_power_w(), 75.0);
  em.reset();
  EXPECT_DOUBLE_EQ(em.joules(), 0.0);
  EXPECT_DOUBLE_EQ(em.average_power_w(), 0.0);
}

TEST(EnergyMeter, RejectsNegativeInputs) {
  EnergyMeter em;
  EXPECT_THROW(em.accumulate(-1.0, 1.0), Error);
  EXPECT_THROW(em.accumulate(1.0, -1.0), Error);
}

}  // namespace
}  // namespace pnp::hw
