/// Tests for the Variorum-style facade over the power substrate.

#include <gtest/gtest.h>

#include "hw/variorum.hpp"

namespace pnp::hw::variorum {
namespace {

TEST(Variorum, CapIsBestEffortClamped) {
  NodePowerDomain node(MachineModel::haswell());
  double applied = 0.0;
  EXPECT_EQ(cap_best_effort_node_power_limit(node, 10.0, &applied), 0);
  EXPECT_DOUBLE_EQ(applied, 40.0);  // clamped to min cap
  EXPECT_EQ(cap_best_effort_node_power_limit(node, 60.0, &applied), 0);
  EXPECT_DOUBLE_EQ(applied, 60.0);
  EXPECT_EQ(cap_best_effort_node_power_limit(node, 1000.0, nullptr), 0);
  double w = 0.0;
  EXPECT_EQ(get_node_power_limit(node, &w), 0);
  EXPECT_DOUBLE_EQ(w, 85.0);  // clamped to TDP
}

TEST(Variorum, EnergyReadsTrackMeter) {
  NodePowerDomain node(MachineModel::skylake());
  node.meter().accumulate(100.0, 3.0);
  double j = 0.0;
  EXPECT_EQ(get_node_energy_joules(node, &j), 0);
  EXPECT_DOUBLE_EQ(j, 300.0);
}

TEST(Variorum, NullPointersRejected) {
  NodePowerDomain node(MachineModel::skylake());
  EXPECT_EQ(get_node_power_limit(node, nullptr), -1);
  EXPECT_EQ(get_node_energy_joules(node, nullptr), -1);
}

TEST(Variorum, PrintPowerMentionsDomain) {
  NodePowerDomain node(MachineModel::skylake());
  cap_best_effort_node_power_limit(node, 120.0, nullptr);
  const auto s = print_power(node);
  EXPECT_NE(s.find("skylake"), std::string::npos);
  EXPECT_NE(s.find("120"), std::string::npos);
}

TEST(Variorum, CapAffectsFrequencyThroughController) {
  NodePowerDomain node(MachineModel::haswell());
  cap_best_effort_node_power_limit(node, 40.0, nullptr);
  const double f_low = node.controller().max_frequency_ghz(16, 2);
  cap_best_effort_node_power_limit(node, 85.0, nullptr);
  const double f_tdp = node.controller().max_frequency_ghz(16, 2);
  EXPECT_LT(f_low, f_tdp);
}

}  // namespace
}  // namespace pnp::hw::variorum
