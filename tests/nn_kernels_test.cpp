/// Equivalence property tests for the fast training engine: the
/// blocked/SIMD (optionally OpenMP-parallel) GEMM kernels against the
/// naive reference implementations across random shapes, the row-mapped
/// CSR kernels against materialized gather/scatter, the CSR form of
/// GraphTensors against the plain edge lists, the engine's RGCN forward
/// against a from-scratch reference implementation, and the GradBuffer
/// backward against in-place gradient accumulation.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "graph/flow_graph.hpp"
#include "nn/matrix.hpp"
#include "nn/rgcn_net.hpp"

namespace pnp::nn {
namespace {

Matrix random_matrix(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.flat()) v = rng.uniform(-2.0, 2.0);
  return m;
}

/// |a - b| within 1e-12 relative to the larger magnitude (the SIMD kernels
/// may contract multiply-adds, so exact bit equality is not guaranteed).
void expect_close(const Matrix& a, const Matrix& b, double tol = 1e-12) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double denom =
        std::max({std::abs(a.data()[i]), std::abs(b.data()[i]), 1.0});
    EXPECT_NEAR(a.data()[i] / denom, b.data()[i] / denom, tol)
        << "element " << i << " of " << a.rows() << "x" << a.cols();
  }
}

TEST(GemmKernels, MatchNaiveAcrossRandomShapes) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    const int m = 1 + static_cast<int>(rng.uniform_index(40));
    const int k = 1 + static_cast<int>(rng.uniform_index(40));
    const int n = 1 + static_cast<int>(rng.uniform_index(40));
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    Matrix c_fast = random_matrix(m, n, rng);
    Matrix c_ref = c_fast;

    gemm_acc(a, b, c_fast);
    detail::gemm_acc_naive(a, b, c_ref);
    expect_close(c_fast, c_ref);

    const Matrix at = random_matrix(k, m, rng);
    Matrix t_fast = random_matrix(m, n, rng);
    Matrix t_ref = t_fast;
    gemm_tn_acc(at, b, t_fast);
    detail::gemm_tn_acc_naive(at, b, t_ref);
    expect_close(t_fast, t_ref);

    const Matrix bt = random_matrix(n, k, rng);
    Matrix n_fast = random_matrix(m, n, rng);
    Matrix n_ref = n_fast;
    gemm_nt_acc(a, bt, n_fast);
    detail::gemm_nt_acc_naive(a, bt, n_ref);
    expect_close(n_fast, n_ref);
  }
}

TEST(GemmKernels, LargeShapesMatchNaive) {
  // Big enough to cross the PNP_PARALLEL row-parallel threshold, so the
  // OpenMP path (when built in) is exercised and must stay bit-compatible
  // with its own sequential order.
  Rng rng(11);
  const Matrix a = random_matrix(300, 64, rng);
  const Matrix b = random_matrix(64, 48, rng);
  Matrix c_fast = Matrix::zeros(300, 48);
  Matrix c_ref = Matrix::zeros(300, 48);
  gemm_acc(a, b, c_fast);
  detail::gemm_acc_naive(a, b, c_ref);
  expect_close(c_fast, c_ref);
}

TEST(GemmKernels, BiasFusedOverwriteMatchesSeparatePasses) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = 1 + static_cast<int>(rng.uniform_index(30));
    const int k = 1 + static_cast<int>(rng.uniform_index(30));
    const int n = 1 + static_cast<int>(rng.uniform_index(30));
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    std::vector<double> bias(static_cast<std::size_t>(n));
    for (double& v : bias) v = rng.uniform(-1.0, 1.0);

    Matrix c_fast = random_matrix(m, n, rng);  // stale contents overwritten
    gemm_bias(a, b, bias, c_fast);

    Matrix c_ref = Matrix::zeros(m, n);
    detail::gemm_acc_naive(a, b, c_ref);
    add_bias_rows(c_ref, bias);
    expect_close(c_fast, c_ref);

    // Empty bias = plain overwrite.
    Matrix c0 = random_matrix(m, n, rng);
    gemm_bias(a, b, {}, c0);
    Matrix c0_ref = Matrix::zeros(m, n);
    detail::gemm_acc_naive(a, b, c0_ref);
    expect_close(c0, c0_ref);

    const Matrix bt = random_matrix(n, k, rng);
    Matrix nt_fast = random_matrix(m, n, rng);
    gemm_nt(a, bt, nt_fast);
    Matrix nt_ref = Matrix::zeros(m, n);
    detail::gemm_nt_acc_naive(a, bt, nt_ref);
    expect_close(nt_fast, nt_ref);
  }
}

TEST(GemmKernels, RowMappedVariantsMatchMaterializedGatherScatter) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const int full = 8 + static_cast<int>(rng.uniform_index(30));
    const int k = 1 + static_cast<int>(rng.uniform_index(20));
    const int n = 1 + static_cast<int>(rng.uniform_index(24));
    // A strictly increasing subset of rows (as CSR active targets are).
    std::vector<int> rows;
    for (int i = 0; i < full; ++i)
      if (rng.uniform(0.0, 1.0) < 0.5) rows.push_back(i);
    if (rows.empty()) rows.push_back(0);
    const int a_rows = static_cast<int>(rows.size());

    // gemm_acc_rows: C.row(rows[i]) += A.row(i)·B.
    const Matrix a = random_matrix(a_rows, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    Matrix c_fast = random_matrix(full, n, rng);
    Matrix c_ref = c_fast;
    gemm_acc_rows(a, b, c_fast, rows);
    Matrix dense = Matrix::zeros(a_rows, n);
    detail::gemm_acc_naive(a, b, dense);
    for (int i = 0; i < a_rows; ++i)
      for (int j = 0; j < n; ++j)
        c_ref(rows[static_cast<std::size_t>(i)], j) += dense(i, j);
    expect_close(c_fast, c_ref);

    // gemm_tn_acc_rows: C += Aᵀ·gather(B, rows).
    const Matrix big_b = random_matrix(full, n, rng);
    Matrix gathered(a_rows, n);
    for (int i = 0; i < a_rows; ++i)
      for (int j = 0; j < n; ++j)
        gathered(i, j) = big_b(rows[static_cast<std::size_t>(i)], j);
    Matrix tn_fast = random_matrix(k, n, rng);
    Matrix tn_ref = tn_fast;
    gemm_tn_acc_rows(a, big_b, rows, tn_fast);
    detail::gemm_tn_acc_naive(a, gathered, tn_ref);
    expect_close(tn_fast, tn_ref);

    // gemm_nt_rows: C = gather(A, rows)·Bᵀ.
    const Matrix big_a = random_matrix(full, k, rng);
    const Matrix bt = random_matrix(n, k, rng);
    Matrix gathered_a(a_rows, k);
    for (int i = 0; i < a_rows; ++i)
      for (int p = 0; p < k; ++p)
        gathered_a(i, p) = big_a(rows[static_cast<std::size_t>(i)], p);
    Matrix ntr_fast = random_matrix(a_rows, n, rng);
    gemm_nt_rows(big_a, rows, bt, ntr_fast);
    Matrix ntr_ref = Matrix::zeros(a_rows, n);
    detail::gemm_nt_acc_naive(gathered_a, bt, ntr_ref);
    expect_close(ntr_fast, ntr_ref);
  }
}

// ---------------------------------------------------------------------------
// CSR form of GraphTensors.
// ---------------------------------------------------------------------------

graph::GraphTensors random_graph(int num_nodes, int vocab, std::uint64_t seed,
                                 int edges_per_rel) {
  graph::GraphTensors g;
  g.name = "random";
  g.num_nodes = num_nodes;
  Rng rng(seed);
  for (int i = 0; i < num_nodes; ++i) {
    g.token.push_back(static_cast<int>(
        rng.uniform_index(static_cast<std::size_t>(vocab))));
    g.kind.push_back(static_cast<int>(rng.uniform_index(3)));
  }
  for (int r = 0; r < graph::kNumModelRelations; ++r)
    for (int e = 0; e < edges_per_rel; ++e)
      g.rel_edges[static_cast<std::size_t>(r)].emplace_back(
          static_cast<int>(
              rng.uniform_index(static_cast<std::size_t>(num_nodes))),
          static_cast<int>(
              rng.uniform_index(static_cast<std::size_t>(num_nodes))));
  return g;
}

TEST(GraphCsr, MatchesEdgeListsAndInDegrees) {
  const auto g = random_graph(23, 5, 99, 40);
  for (int r = 0; r < graph::kNumModelRelations; ++r) {
    const auto& csr = g.csr(r);
    const auto deg = g.in_degree(r);
    ASSERT_EQ(csr.row_offset.size(), static_cast<std::size_t>(g.num_nodes) + 1);
    ASSERT_EQ(csr.inv_deg.size(), static_cast<std::size_t>(g.num_nodes));
    EXPECT_EQ(csr.num_edges(),
              static_cast<int>(g.rel_edges[static_cast<std::size_t>(r)].size()));

    // Row extents and normalization match the in-degrees.
    int active_seen = 0;
    for (int i = 0; i < g.num_nodes; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      EXPECT_EQ(csr.row_offset[ii + 1] - csr.row_offset[ii], deg[ii]);
      if (deg[ii] > 0) {
        EXPECT_DOUBLE_EQ(csr.inv_deg[ii], 1.0 / deg[ii]);
        EXPECT_EQ(csr.active_dst[static_cast<std::size_t>(active_seen)], i);
        ++active_seen;
      } else {
        EXPECT_DOUBLE_EQ(csr.inv_deg[ii], 0.0);
      }
    }
    EXPECT_EQ(csr.num_active(), active_seen);

    // Each target's sources appear in edge-insertion order.
    std::vector<std::vector<int>> expected(
        static_cast<std::size_t>(g.num_nodes));
    for (const auto& [src, dst] : g.rel_edges[static_cast<std::size_t>(r)])
      expected[static_cast<std::size_t>(dst)].push_back(src);
    for (int i = 0; i < g.num_nodes; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      const std::vector<int> got(
          csr.src.begin() + csr.row_offset[ii],
          csr.src.begin() + csr.row_offset[ii + 1]);
      EXPECT_EQ(got, expected[ii]);
    }
  }
}

TEST(GraphCsr, LazilyRebuildsAfterEdgeMutation) {
  auto g = random_graph(9, 4, 3, 6);
  EXPECT_EQ(g.csr(0).num_edges(), 6);
  g.rel_edges[0].emplace_back(2, 5);
  EXPECT_EQ(g.csr(0).num_edges(), 7);  // stale CSR was rebuilt
  const auto deg = g.in_degree(0);
  EXPECT_EQ(g.csr(0).row_offset[6] - g.csr(0).row_offset[5], deg[5]);
}

// ---------------------------------------------------------------------------
// Engine vs reference RGCN forward.
// ---------------------------------------------------------------------------

RgcnNetConfig small_config(int vocab) {
  RgcnNetConfig c;
  c.vocab_size = vocab;
  c.emb_dim = 6;
  c.rgcn_layers = 3;
  c.hidden = 9;
  c.dense_hidden1 = 8;
  c.dense_hidden2 = 7;
  c.head_sizes = {4, 3};
  c.extra_features = 0;
  c.seed = 5;
  return c;
}

const Matrix& param_by_name(RgcnNet& net, const std::string& name) {
  for (Param* p : net.params())
    if (p->name == name) return p->w;
  ADD_FAILURE() << "missing param " << name;
  static Matrix dummy;
  return dummy;
}

/// Textbook RGCN forward (edge-list aggregation, naive products) — the
/// ground truth the CSR/SIMD engine must reproduce.
std::vector<double> reference_readout(RgcnNet& net,
                                      const graph::GraphTensors& g) {
  const auto& cfg = net.config();
  const int n = g.num_nodes;
  const Matrix& et = param_by_name(net, "emb.token");
  const Matrix& ek = param_by_name(net, "emb.kind");
  Matrix h(n, cfg.emb_dim);
  for (int i = 0; i < n; ++i)
    for (int d = 0; d < cfg.emb_dim; ++d)
      h(i, d) = et(g.token[static_cast<std::size_t>(i)], d) +
                ek(g.kind[static_cast<std::size_t>(i)], d);

  for (int l = 0; l < cfg.rgcn_layers; ++l) {
    const std::string prefix = "rgcn." + std::to_string(l) + ".";
    const Matrix& w0 = param_by_name(net, prefix + "w0");
    const Matrix& bias = param_by_name(net, prefix + "bias");
    Matrix z = Matrix::zeros(n, cfg.hidden);
    detail::gemm_acc_naive(h, w0, z);
    for (int r = 0; r < cfg.num_relations; ++r) {
      const auto deg = g.in_degree(r);
      Matrix m = Matrix::zeros(n, h.cols());
      for (const auto& [src, dst] : g.rel_edges[static_cast<std::size_t>(r)])
        for (int d = 0; d < h.cols(); ++d)
          m(dst, d) += h(src, d) / deg[static_cast<std::size_t>(dst)];
      const Matrix& wr = param_by_name(net, prefix + "wr." + std::to_string(r));
      detail::gemm_acc_naive(m, wr, z);
    }
    add_bias_rows(z, bias.flat());
    Matrix hn(n, cfg.hidden);
    for (std::size_t i = 0; i < z.size(); ++i)
      hn.data()[i] =
          z.data()[i] > 0.0 ? z.data()[i] : cfg.leaky_slope * z.data()[i];
    h = std::move(hn);
  }

  std::vector<double> readout(static_cast<std::size_t>(cfg.hidden), 0.0);
  for (int i = 0; i < n; ++i)
    for (int d = 0; d < cfg.hidden; ++d)
      readout[static_cast<std::size_t>(d)] += h(i, d);
  for (double& v : readout) v /= n;
  return readout;
}

TEST(RgcnEngine, EncodeMatchesReferenceForward) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    RgcnNet net(small_config(6));
    const auto g = random_graph(17, 6, seed, 25);
    const auto gc = net.encode(g);
    const auto ref = reference_readout(net, g);
    ASSERT_EQ(gc.readout.size(), ref.size());
    for (std::size_t d = 0; d < ref.size(); ++d)
      EXPECT_NEAR(gc.readout[d], ref[d], 1e-9) << "dim " << d;
  }
}

TEST(RgcnEngine, EncodeIntoReusedCacheMatchesFreshEncode) {
  RgcnNet net(small_config(6));
  const auto g1 = random_graph(17, 6, 1, 25);
  const auto g2 = random_graph(9, 6, 2, 10);  // different shape
  RgcnNet::GnnCache reused;
  net.encode_into(g1, reused);
  net.encode_into(g2, reused);  // shrinks the buffers
  net.encode_into(g1, reused);  // grows them back
  const auto fresh = net.encode(g1);
  ASSERT_EQ(reused.readout.size(), fresh.readout.size());
  for (std::size_t d = 0; d < fresh.readout.size(); ++d)
    EXPECT_DOUBLE_EQ(reused.readout[d], fresh.readout[d]);
}

TEST(RgcnEngine, EncodeIsDeterministic) {
  RgcnNet net(small_config(6));
  const auto g = random_graph(17, 6, 4, 25);
  const auto a = net.encode(g);
  const auto b = net.encode(g);
  for (std::size_t d = 0; d < a.readout.size(); ++d)
    EXPECT_DOUBLE_EQ(a.readout[d], b.readout[d]);
}

TEST(RgcnEngine, GradBufferMatchesDirectAccumulation) {
  for (int num_bases : {0, 2}) {
    auto cfg = small_config(6);
    cfg.num_bases = num_bases;
    RgcnNet net(cfg);
    const auto g = random_graph(13, 6, 8, 18);
    const auto gc = net.encode(g);
    const auto dc = net.dense_forward(gc.readout, {});
    std::vector<double> dlogits(dc.logits.size());
    for (std::size_t i = 0; i < dlogits.size(); ++i)
      dlogits[i] = 0.1 * static_cast<double>(i + 1);

    net.zero_grad();
    const auto dr_direct = net.dense_backward(dc, dlogits);
    net.gnn_backward(gc, dr_direct);
    std::vector<double> direct;
    for (Param* p : net.params())
      direct.insert(direct.end(), p->g.flat().begin(), p->g.flat().end());

    auto grads = net.make_grad_buffer();
    RgcnNet::BackwardWs ws;
    const auto dr_buf = net.dense_backward_into(dc, dlogits, grads);
    EXPECT_EQ(dr_direct, dr_buf);
    net.gnn_backward_into(gc, dr_buf, grads, ws);

    net.zero_grad();
    net.add_grad_buffer(grads);
    std::size_t idx = 0;
    for (Param* p : net.params())
      for (double v : p->g.flat()) EXPECT_DOUBLE_EQ(v, direct[idx++]);
  }
}

}  // namespace
}  // namespace pnp::nn
