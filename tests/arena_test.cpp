/// \file arena_test.cpp
/// The static workspace planner (nn/arena.hpp) and the arena-backed
/// serving fast path built on it. Three layers of guarantees:
///
///  1. Planner safety properties, driven with random interval sets:
///     tensors with overlapping lifetimes never share bytes, every offset
///     honors its alignment, and the arena never exceeds the sum of the
///     individual aligned sizes (reuse can only shrink it).
///  2. Serving bit-identity: the arena-backed Workspace path produces
///     predictions bit-identical to the allocation-path Scratch oracle —
///     across power, power_at, and edp queries, and across a hot reload.
///  3. The fast path's reason to exist: steady-state arena serving
///     performs ZERO heap allocations, verified by counting every global
///     operator new in this binary.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hpp"
#include "core/pnp_tuner.hpp"
#include "core/tuner_artifact.hpp"
#include "nn/arena.hpp"
#include "serve/inference_engine.hpp"
#include "serve/tuning_service.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

// --- global allocation counter ----------------------------------------------
// One gtest binary per test file (tests/CMakeLists.txt), so overriding the
// global allocation functions here is scoped to this suite. Counting is
// always on; tests read the counter before/after the region of interest.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// The replacements below pair malloc-backed new with free-backed delete —
// a matched set; GCC's heuristic can't see across the replacement.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  void* p = std::aligned_alloc(a, (n + a - 1) / a * a);
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

// --- planner unit tests ------------------------------------------------------

TEST(ArenaPlan, EmptyPlanIsEmpty) {
  const auto plan = nn::ArenaPlan::build({});
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.total_bytes(), 0u);
}

TEST(ArenaPlan, MalformedSpecsRejected) {
  EXPECT_THROW(nn::ArenaPlan::build({{"bad", 8, 3, 2}}), Error);
  EXPECT_THROW(nn::ArenaPlan::build({{"bad-align", 8, 0, 1, 48}}), Error);
  EXPECT_THROW(nn::ArenaPlan::build({{"zero-align", 8, 0, 1, 0}}), Error);
}

TEST(ArenaPlan, DisjointLifetimesShareBytes) {
  // Two same-size tensors whose intervals never meet collapse into one
  // reservation; a third overlapping both needs its own bytes.
  const auto plan = nn::ArenaPlan::build({
      {"a", 256, 0, 1},
      {"b", 256, 2, 3},
      {"c", 256, 0, 3},
  });
  EXPECT_EQ(plan.offset(0), plan.offset(1));
  EXPECT_EQ(plan.total_bytes(), 512u);
}

TEST(ArenaPlan, OverlappingLifetimesNeverShare) {
  const auto plan = nn::ArenaPlan::build({
      {"a", 64, 0, 2},
      {"b", 64, 1, 3},
  });
  EXPECT_NE(plan.offset(0), plan.offset(1));
  EXPECT_EQ(plan.total_bytes(), 128u);
}

TEST(ArenaPlan, ZeroByteTensorsAreLegal) {
  // A model with no extra features plans an empty slot; it must not
  // disturb its neighbours.
  const auto plan = nn::ArenaPlan::build({
      {"empty", 0, 0, 1},
      {"real", 128, 0, 2},
  });
  EXPECT_EQ(plan.total_bytes(), 128u);
}

bool lifetimes_overlap(const nn::TensorSpec& a, const nn::TensorSpec& b) {
  return a.first_use <= b.last_use && b.first_use <= a.last_use;
}

bool bytes_overlap(const nn::PlannedTensor& a, const nn::PlannedTensor& b) {
  if (a.spec.bytes == 0 || b.spec.bytes == 0) return false;
  return a.offset < b.offset + b.spec.bytes &&
         b.offset < a.offset + a.spec.bytes;
}

TEST(ArenaPlan, PropertyRandomIntervalsSafeAndBounded) {
  // The two safety properties over 300 random interval sets: conflicting
  // tensors never share bytes; the arena never exceeds the sum of the
  // aligned sizes (what a no-reuse layout would take).
  Rng rng(20260808);
  for (int trial = 0; trial < 300; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_index(12));
    // One alignment per trial (like ModelState's all-64 plans): the
    // sum-of-aligned-sizes bound below assumes a common alignment.
    const std::size_t align = std::size_t{1} << (3 + rng.uniform_index(5));
    std::vector<nn::TensorSpec> specs;
    for (int i = 0; i < n; ++i) {
      nn::TensorSpec s;
      s.name = "t" + std::to_string(i);
      s.bytes = rng.uniform_index(4096);  // 0 allowed
      s.first_use = static_cast<int>(rng.uniform_index(10));
      s.last_use = s.first_use + static_cast<int>(rng.uniform_index(5));
      s.align = align;
      specs.push_back(s);
    }
    const auto plan = nn::ArenaPlan::build(specs);
    ASSERT_EQ(plan.size(), specs.size());

    std::size_t no_reuse = 0;
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const nn::PlannedTensor& t = plan.at(i);
      EXPECT_EQ(t.offset % t.spec.align, 0u)
          << "trial " << trial << ": tensor " << i << " misaligned";
      EXPECT_LE(t.offset + t.spec.bytes, plan.total_bytes());
      no_reuse += (t.spec.bytes + t.spec.align - 1) / t.spec.align *
                  t.spec.align;
    }
    EXPECT_LE(plan.total_bytes(), no_reuse) << "trial " << trial;

    for (std::size_t i = 0; i < plan.size(); ++i)
      for (std::size_t j = i + 1; j < plan.size(); ++j)
        if (lifetimes_overlap(plan.at(i).spec, plan.at(j).spec))
          EXPECT_FALSE(bytes_overlap(plan.at(i), plan.at(j)))
              << "trial " << trial << ": tensors " << i << " and " << j
              << " overlap in both lifetime and bytes";
  }
}

TEST(ArenaTest, TypedViewsRespectSizeAndAlignment) {
  nn::Arena arena(nn::ArenaPlan::build({
      {"doubles", 8 * sizeof(double), 0, 1},
      {"ints", 4 * sizeof(int), 1, 2},
  }));
  EXPECT_EQ(arena.count<double>(0), 8u);
  EXPECT_EQ(arena.count<int>(1), 4u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arena.data<double>(0)) % 64, 0u);
  // A 12-byte tensor is not viewable as doubles.
  nn::Arena odd(nn::ArenaPlan::build({{"odd", 12, 0, 1}}));
  EXPECT_THROW(odd.data<double>(0), Error);
}

// --- serving fixture ---------------------------------------------------------

/// A small trained world shared by the serving tests: 10 regions of the
/// Haswell suite, a few epochs — deterministic, non-trivial predictions.
class ArenaServingFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto machine = hw::MachineModel::haswell();
    sim_ = new sim::Simulator(machine);
    auto regions = workloads::Suite::instance().all_regions();
    regions.resize(10);
    db_ = new core::MeasurementDb(
        *sim_, core::SearchSpace::for_machine(machine), regions);
  }
  static void TearDownTestSuite() {
    delete db_;
    delete sim_;
    db_ = nullptr;
    sim_ = nullptr;
  }

  static core::PnpOptions small_options() {
    core::PnpOptions opt;
    opt.trainer.max_epochs = 4;
    opt.trainer.min_loss = 0.0;
    return opt;
  }

  static std::vector<int> all_regions() {
    std::vector<int> r;
    for (int i = 0; i < db_->num_regions(); ++i) r.push_back(i);
    return r;
  }

  static core::TunerArtifact trained_power_artifact(bool scalar_cap = false) {
    core::PnpOptions opt = small_options();
    opt.cap_onehot = !scalar_cap;
    core::PnpTuner tuner(*db_, opt);
    tuner.train_power_scenario(all_regions());
    return tuner.to_artifact();
  }

  static sim::Simulator* sim_;
  static core::MeasurementDb* db_;
};

sim::Simulator* ArenaServingFixture::sim_ = nullptr;
core::MeasurementDb* ArenaServingFixture::db_ = nullptr;

serve::EngineOptions engine_options(bool use_arena) {
  serve::EngineOptions opt;
  opt.use_arena = use_arena;
  return opt;
}

TEST_F(ArenaServingFixture, ArenaPowerPredictionsMatchOracle) {
  const auto art = trained_power_artifact();
  serve::InferenceEngine arena(core::PnpTuner::from_artifact(*db_, art),
                               engine_options(true));
  serve::InferenceEngine oracle(core::PnpTuner::from_artifact(*db_, art),
                                engine_options(false));
  std::vector<serve::PowerQuery> grid;
  for (int r = 0; r < db_->num_regions(); ++r)
    for (int k = 0; k < db_->num_caps(); ++k) grid.push_back({r, k});
  const auto a = arena.predict_power_batch(grid);
  const auto b = oracle.predict_power_batch(grid);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << "query " << i;
}

TEST_F(ArenaServingFixture, ArenaPowerAtPredictionsMatchOracle) {
  const auto art = trained_power_artifact(/*scalar_cap=*/true);
  serve::InferenceEngine arena(core::PnpTuner::from_artifact(*db_, art),
                               engine_options(true));
  serve::InferenceEngine oracle(core::PnpTuner::from_artifact(*db_, art),
                                engine_options(false));
  const auto regions = all_regions();
  for (const double cap_w : {35.0, 52.5, 71.0}) {
    const auto a = arena.predict_power_at_batch(regions, cap_w);
    const auto b = oracle.predict_power_at_batch(regions, cap_w);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_EQ(a[i], b[i]) << "region " << i << " cap " << cap_w;
  }
}

TEST_F(ArenaServingFixture, ArenaEdpPredictionsMatchOracle) {
  core::PnpTuner t1(*db_, small_options());
  t1.train_edp_scenario(all_regions());
  const auto art = t1.to_artifact();
  serve::InferenceEngine arena(core::PnpTuner::from_artifact(*db_, art),
                               engine_options(true));
  serve::InferenceEngine oracle(core::PnpTuner::from_artifact(*db_, art),
                                engine_options(false));
  const auto regions = all_regions();
  const auto a = arena.predict_edp_batch(regions);
  const auto b = oracle.predict_edp_batch(regions);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cfg, b[i].cfg) << "region " << i;
    EXPECT_EQ(a[i].cap_index, b[i].cap_index) << "region " << i;
  }
}

TEST_F(ArenaServingFixture, ArenaServiceMatchesOracleAcrossReload) {
  // Same request stream against an arena-backed service and the
  // allocation-path oracle service, with a hot reload in the middle —
  // results (and served versions) must stay bit-identical throughout.
  const auto art = trained_power_artifact();
  const std::string path = ::testing::TempDir() + "arena_reload.pnp";
  art.save_file(path);

  serve::TuningServiceOptions arena_opt, oracle_opt;
  arena_opt.use_arena = true;
  oracle_opt.use_arena = false;
  serve::TuningService arena_svc(core::PnpTuner::from_artifact(*db_, art),
                                 arena_opt);
  serve::TuningService oracle_svc(core::PnpTuner::from_artifact(*db_, art),
                                  oracle_opt);

  const auto compare_grid = [&] {
    for (int r = 0; r < db_->num_regions(); ++r)
      for (int k = 0; k < db_->num_caps(); ++k) {
        const auto q = serve::TuneRequest::power(r, k);
        const auto a = arena_svc.tune(q);
        const auto b = oracle_svc.tune(q);
        EXPECT_EQ(a.config, b.config) << "region " << r << " cap " << k;
        EXPECT_EQ(a.model_version, b.model_version);
      }
  };
  compare_grid();
  EXPECT_EQ(arena_svc.reload(path), 2u);
  EXPECT_EQ(oracle_svc.reload(path), 2u);
  compare_grid();
}

TEST_F(ArenaServingFixture, WorkspacePlanIsBoundedAndStable) {
  const auto art = trained_power_artifact();
  const serve::ModelState model(core::PnpTuner::from_artifact(*db_, art));
  serve::ModelState::Workspace ws;
  ws.bind(model);
  const std::size_t bytes = ws.arena_bytes();
  ASSERT_GT(bytes, 0u);
  // Re-binding to the same model must keep the same plan (no re-planning
  // churn in the serve loop).
  ws.bind(model);
  EXPECT_EQ(ws.arena_bytes(), bytes);
  // The plan must not exceed a no-reuse layout of its own tensors.
  std::size_t no_reuse = 0;
  for (std::size_t i = 0; i < ws.plan().size(); ++i) {
    const auto& s = ws.plan().at(i).spec;
    no_reuse += (s.bytes + s.align - 1) / s.align * s.align;
  }
  EXPECT_LE(bytes, no_reuse);
}

TEST_F(ArenaServingFixture, SteadyStateArenaServingIsAllocationFree) {
  const auto art = trained_power_artifact();
  const serve::ModelState model(core::PnpTuner::from_artifact(*db_, art));

  // Warm up: encode the region, bind the workspace, run once so every
  // lazily sized buffer exists.
  nn::RgcnNet::GnnCache enc;
  model.encode(0, enc);
  serve::ModelState::Workspace ws;
  model.run_heads(enc, 0, 0, std::nullopt, ws);
  (void)model.decode_power(ws);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int iter = 0; iter < 200; ++iter) {
    const int cap = iter % db_->num_caps();
    model.run_heads(enc, 0, cap, std::nullopt, ws);
    const sim::OmpConfig cfg = model.decode_power(ws);
    ASSERT_GE(cfg.threads, 1);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << "arena steady-state serving allocated " << (after - before)
      << " times in 200 requests";
}

}  // namespace
