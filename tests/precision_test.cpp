/// \file precision_test.cpp
/// The opt-in f32 inference tier: f64 stays the bit-exact reference; f32
/// is a serving-time down-conversion of the dense phase. Covered here:
///
///  - the accuracy contract: over the full (region × cap) grid, the f32
///    tier's argmax-flip rate against f64 is bounded and the predicted
///    power/time deltas (core::Evaluator::precision_delta) are small;
///  - artifact round-trips preserve the persisted serving tier, and old
///    artifacts without the field default to f64;
///  - precision overrides at every layer (engine options, service
///    options) beat the artifact's preference;
///  - mixed-precision hot reload: an f64-serving TuningService publishes
///    an f32 artifact mid-stream and switches tiers atomically.

#include <gtest/gtest.h>

#include <vector>

#include "core/evaluator.hpp"
#include "core/pnp_tuner.hpp"
#include "core/tuner_artifact.hpp"
#include "serve/inference_engine.hpp"
#include "serve/tuning_service.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

namespace {

class PrecisionFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto machine = hw::MachineModel::haswell();
    sim_ = new sim::Simulator(machine);
    auto regions = workloads::Suite::instance().all_regions();
    regions.resize(10);
    db_ = new core::MeasurementDb(
        *sim_, core::SearchSpace::for_machine(machine), regions);
  }
  static void TearDownTestSuite() {
    delete db_;
    delete sim_;
    db_ = nullptr;
    sim_ = nullptr;
  }

  static core::PnpOptions small_options() {
    core::PnpOptions opt;
    opt.trainer.max_epochs = 4;
    opt.trainer.min_loss = 0.0;
    return opt;
  }

  static std::vector<int> all_regions() {
    std::vector<int> r;
    for (int i = 0; i < db_->num_regions(); ++i) r.push_back(i);
    return r;
  }

  static core::TunerArtifact trained_power_artifact() {
    core::PnpTuner tuner(*db_, small_options());
    tuner.train_power_scenario(all_regions());
    return tuner.to_artifact();
  }

  static serve::EngineOptions at(nn::Precision p) {
    serve::EngineOptions opt;
    opt.precision = p;
    return opt;
  }

  static sim::Simulator* sim_;
  static core::MeasurementDb* db_;
};

sim::Simulator* PrecisionFixture::sim_ = nullptr;
core::MeasurementDb* PrecisionFixture::db_ = nullptr;

TEST_F(PrecisionFixture, EnginePrecisionFollowsArtifactAndOverride) {
  core::TunerArtifact art = trained_power_artifact();
  EXPECT_EQ(art.serve_precision, nn::Precision::f64);  // default tier

  art.serve_precision = nn::Precision::f32;
  serve::InferenceEngine follows(core::PnpTuner::from_artifact(*db_, art));
  EXPECT_EQ(follows.precision(), nn::Precision::f32);

  serve::InferenceEngine overridden(core::PnpTuner::from_artifact(*db_, art),
                                    at(nn::Precision::f64));
  EXPECT_EQ(overridden.precision(), nn::Precision::f64);
}

TEST_F(PrecisionFixture, ArtifactRoundTripPreservesPrecision) {
  core::TunerArtifact art = trained_power_artifact();
  art.serve_precision = nn::Precision::f32;
  const std::string path = ::testing::TempDir() + "precision_rt.pnp";
  art.save_file(path);
  const auto loaded = core::TunerArtifact::load_file(path);
  EXPECT_EQ(loaded.serve_precision, nn::Precision::f32);

  // A corrupt tier value is rejected up front, before any model state is
  // built (the enum is persisted as 0/1).
  StateDict sd = art.to_state_dict();
  sd.put_int("serve.precision", 7);
  EXPECT_THROW(core::TunerArtifact::from_state_dict(sd), Error);
}

TEST_F(PrecisionFixture, F32TierAccuracyCloseToF64) {
  const auto art = trained_power_artifact();
  serve::InferenceEngine f64_engine(core::PnpTuner::from_artifact(*db_, art),
                                    at(nn::Precision::f64));
  serve::InferenceEngine f32_engine(core::PnpTuner::from_artifact(*db_, art),
                                    at(nn::Precision::f32));

  std::vector<serve::PowerQuery> grid;
  for (int r = 0; r < db_->num_regions(); ++r)
    for (int k = 0; k < db_->num_caps(); ++k) grid.push_back({r, k});
  const auto ref = f64_engine.predict_power_batch(grid);
  const auto f32 = f32_engine.predict_power_batch(grid);
  ASSERT_EQ(ref.size(), f32.size());

  int flips = 0;
  for (std::size_t i = 0; i < ref.size(); ++i)
    if (!(ref[i] == f32[i])) ++flips;
  // The dense phase rounds to ~7 significant digits; argmax ties are the
  // only place that can show. A small trained model must agree almost
  // everywhere — allow at most 5% flips.
  EXPECT_LE(flips, static_cast<int>(ref.size()) / 20)
      << flips << " of " << ref.size() << " predictions flipped";

  // f64 must be the unchanged reference: a second f64 engine from the
  // same artifact reproduces it bit for bit.
  serve::InferenceEngine f64_again(core::PnpTuner::from_artifact(*db_, art),
                                   at(nn::Precision::f64));
  const auto ref2 = f64_again.predict_power_batch(grid);
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(ref[i], ref2[i]);
}

TEST_F(PrecisionFixture, EvaluatorPrecisionDeltaBoundsTheTier) {
  const auto art = trained_power_artifact();
  serve::InferenceEngine f64_engine(core::PnpTuner::from_artifact(*db_, art),
                                    at(nn::Precision::f64));
  serve::InferenceEngine f32_engine(core::PnpTuner::from_artifact(*db_, art),
                                    at(nn::Precision::f32));

  core::Evaluator evaluator(*sim_, *db_);
  core::EvalSplit split;
  split.name = "tier-diff";
  for (int r = 0; r < db_->num_regions(); ++r)
    (r < db_->num_regions() / 2 ? split.train_regions : split.test_regions)
        .push_back(r);

  // precision_delta scores one config per queries() entry, in order:
  // test_regions × all caps.
  std::vector<serve::PowerQuery> grid;
  for (const int r : split.test_regions)
    for (int k = 0; k < db_->num_caps(); ++k) grid.push_back({r, k});
  const auto ref = f64_engine.predict_power_batch(grid);
  const auto f32 = f32_engine.predict_power_batch(grid);

  const auto d = evaluator.precision_delta(split, ref, f32);
  EXPECT_EQ(d.queries, static_cast<int>(grid.size()));
  EXPECT_EQ(d.flips <= d.queries, true);
  EXPECT_GE(d.flip_rate, 0.0);
  EXPECT_LE(d.flip_rate, 0.05);
  // Where configs agree the simulator scores agree; flipped configs must
  // still land within a few watts / a sizable time fraction of reference.
  EXPECT_LT(d.max_abs_dpower_w, 10.0);
  EXPECT_GT(d.geomean_speedup_reference, 0.0);
  EXPECT_GT(d.geomean_speedup_candidate, 0.0);
  EXPECT_NEAR(d.geomean_speedup_candidate, d.geomean_speedup_reference,
              0.25 * d.geomean_speedup_reference);

  // Identical inputs → zero delta, unity everything else.
  const auto zero = evaluator.precision_delta(split, ref, ref);
  EXPECT_EQ(zero.flips, 0);
  EXPECT_EQ(zero.flip_rate, 0.0);
  EXPECT_EQ(zero.max_abs_dpower_w, 0.0);
  EXPECT_EQ(zero.max_abs_dtime_s, 0.0);

  // Size mismatches are caller bugs, not data.
  std::vector<sim::OmpConfig> short_cand(ref.begin(), ref.end() - 1);
  EXPECT_THROW(evaluator.precision_delta(split, ref, short_cand), Error);
}

TEST_F(PrecisionFixture, ServicePrecisionOverrideAndMixedReload) {
  // An f64-serving service hot-reloads an artifact whose persisted tier
  // is f32: the snapshot swap must switch tiers atomically and keep
  // serving the same scenario.
  core::TunerArtifact art = trained_power_artifact();
  const std::string f64_path = ::testing::TempDir() + "mixed_f64.pnp";
  art.save_file(f64_path);
  art.serve_precision = nn::Precision::f32;
  const std::string f32_path = ::testing::TempDir() + "mixed_f32.pnp";
  art.save_file(f32_path);

  serve::TuningService svc(*db_, f64_path);
  EXPECT_EQ(svc.precision(), nn::Precision::f64);
  const auto q = serve::TuneRequest::power(0, 0);
  const auto before = svc.tune(q);
  EXPECT_EQ(before.model_version, 1u);

  EXPECT_EQ(svc.reload(f32_path), 2u);
  EXPECT_EQ(svc.precision(), nn::Precision::f32);
  const auto after = svc.tune(q);
  EXPECT_EQ(after.model_version, 2u);
  // Same weights, narrower tier: the served config must match what a
  // standalone f32 engine predicts.
  serve::InferenceEngine f32_engine(core::PnpTuner::from_artifact(*db_, art),
                                    at(nn::Precision::f32));
  EXPECT_EQ(after.config, f32_engine.predict_power(0, 0));

  // A service-level override beats both artifacts' preferences.
  serve::TuningServiceOptions pinned;
  pinned.precision = nn::Precision::f64;
  serve::TuningService svc64(*db_, f32_path, pinned);
  EXPECT_EQ(svc64.precision(), nn::Precision::f64);
  EXPECT_EQ(svc64.reload(f32_path), 2u);
  EXPECT_EQ(svc64.precision(), nn::Precision::f64);
}

TEST_F(PrecisionFixture, ShardedF32ServiceMatchesUnshardedF32) {
  // Worker shards and the f32 tier compose: a 2-shard f32 service returns
  // exactly what the single-threaded f32 path returns.
  const auto art = trained_power_artifact();
  serve::TuningServiceOptions f32_opt;
  f32_opt.precision = nn::Precision::f32;
  serve::TuningService reference(core::PnpTuner::from_artifact(*db_, art),
                                 f32_opt);
  serve::TuningServiceOptions sharded_opt = f32_opt;
  sharded_opt.worker_shards = 2;
  serve::TuningService sharded(core::PnpTuner::from_artifact(*db_, art),
                               sharded_opt);
  EXPECT_EQ(sharded.worker_shards(), 2);
  EXPECT_EQ(sharded.precision(), nn::Precision::f32);

  for (int r = 0; r < db_->num_regions(); ++r)
    for (int k = 0; k < db_->num_caps(); ++k) {
      const auto q = serve::TuneRequest::power(r, k);
      const auto a = sharded.tune(q);
      const auto b = reference.tune(q);
      EXPECT_EQ(a.config, b.config) << "region " << r << " cap " << k;
    }
}

}  // namespace
