/// Tests for the workload suite and IR generation: corpus shape (the
/// paper's 30 applications / 68 regions), IR validity of every region,
/// structural fidelity of generated code to its descriptor, and graph
/// size bounds.

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "graph/builder.hpp"
#include "ir/extract.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "workloads/irgen.hpp"
#include "workloads/suite.hpp"

namespace pnp::workloads {
namespace {

TEST(Suite, PaperCorpusShape) {
  const auto& s = Suite::instance();
  EXPECT_EQ(s.application_count(), 30u);
  EXPECT_EQ(s.total_regions(), 68u);
}

TEST(Suite, ContainsAllPaperApplications) {
  const auto& s = Suite::instance();
  for (const char* name :
       {"rsbench", "xsbench", "minife", "quicksilver", "miniamr", "lulesh",
        "seidel-2d", "adi", "jacobi-2d", "bicg", "atax", "gramschmidt",
        "correlation", "doitgen", "covariance", "gemm", "syrk", "cholesky",
        "gemver", "mvt", "durbin", "trisolv", "syr2k", "lu", "symm",
        "fdtd-2d", "fdtd-apml", "2mm", "gesummv", "trmm"}) {
    EXPECT_NE(s.find(name), nullptr) << name;
  }
  EXPECT_EQ(s.find("notanapp"), nullptr);
}

TEST(Suite, ProxyAppsHaveMultipleRegions) {
  const auto& s = Suite::instance();
  EXPECT_EQ(s.find("lulesh")->regions.size(), 9u);
  EXPECT_EQ(s.find("minife")->regions.size(), 6u);
  EXPECT_EQ(s.find("miniamr")->regions.size(), 6u);
  EXPECT_EQ(s.find("quicksilver")->regions.size(), 5u);
  EXPECT_EQ(s.find("rsbench")->regions.size(), 2u);
  EXPECT_EQ(s.find("xsbench")->regions.size(), 2u);
}

TEST(Suite, EveryModuleVerifies) {
  for (const auto& app : Suite::instance().applications()) {
    EXPECT_TRUE(ir::verify_module(app.module).empty()) << app.name;
  }
}

TEST(Suite, EveryRegionFunctionExistsAndExtracts) {
  for (const auto& app : Suite::instance().applications()) {
    for (const auto& r : app.regions) {
      const auto* fn = app.module.find_function(r.function);
      ASSERT_NE(fn, nullptr) << r.function;
      const auto one = ir::extract_function(app.module, r.function);
      EXPECT_TRUE(ir::verify_module(one).empty()) << r.function;
      EXPECT_EQ(one.functions.size(), 1u);
    }
  }
}

TEST(Suite, RegionNamesUniqueAndQualified) {
  std::set<std::string> names;
  for (const auto& rr : Suite::instance().all_regions()) {
    const auto qn = rr.region->desc.qualified_name();
    EXPECT_TRUE(names.insert(qn).second) << "duplicate region " << qn;
    EXPECT_EQ(rr.region->desc.app, rr.app->name);
  }
  EXPECT_EQ(names.size(), 68u);
}

TEST(Suite, EveryModuleRoundTripsThroughText) {
  // Printer/parser must handle everything the generator can emit.
  for (const auto& app : Suite::instance().applications()) {
    const std::string text = ir::print_module(app.module);
    const auto back = ir::parse_module(text);
    EXPECT_EQ(ir::print_module(back), text) << app.name;
  }
}

TEST(Suite, GraphSizesWithinModelBudget) {
  for (const auto& app : Suite::instance().applications()) {
    for (const auto& r : app.regions) {
      const auto one = ir::extract_function(app.module, r.function);
      const auto g = graph::build_flow_graph(one);
      EXPECT_GE(g.num_nodes(), 15) << r.desc.qualified_name();
      EXPECT_LE(g.num_nodes(), 400) << r.desc.qualified_name();
      EXPECT_GT(g.num_edges(), g.num_nodes() / 2);
    }
  }
}

TEST(Suite, DescriptorsAreDiverse) {
  // The corpus must span compute-bound, memory-bound, imbalanced, tiny,
  // divergent, and serial-heavy kernels — the families the tuner learns.
  int imbalanced = 0, divergent = 0, reductions = 0, serial_heavy = 0,
      tiny_k = 0;
  for (const auto& rr : Suite::instance().all_regions()) {
    const auto& d = rr.region->desc;
    if (d.imbalance > 0.4) ++imbalanced;
    if (d.branch_div > 0.4) ++divergent;
    if (d.reduction) ++reductions;
    if (d.serial_frac > 0.3) ++serial_heavy;
    if (d.trip_count * (d.flops_per_iter + d.bytes_per_iter) < 1e6) ++tiny_k;
  }
  EXPECT_GE(imbalanced, 8);
  EXPECT_GE(divergent, 4);
  EXPECT_GE(reductions, 8);
  EXPECT_GE(serial_heavy, 3);
  EXPECT_GE(tiny_k, 4);
}

TEST(Suite, TrisolvIsTheSingleThreadOutlier) {
  // Paper §VI: trisolv runs fastest with one thread everywhere.
  const auto* app = Suite::instance().find("trisolv");
  ASSERT_NE(app, nullptr);
  EXPECT_GT(app->regions[0].desc.serial_frac, 0.8);
}

TEST(Suite, InstanceIsSingleton) {
  EXPECT_EQ(&Suite::instance(), &Suite::instance());
}

// ---------------------------------------------------------------------------
// Corpus: the shared abstraction under the paper suite and generated
// corpora (everything downstream consumes RegionRefs, not Suite itself).
// ---------------------------------------------------------------------------

TEST(Corpus, HandBuiltCorpusBehavesLikeSuite) {
  sim::KernelDescriptor k;
  k.app = "toy";
  k.region = "r0_loop";
  std::vector<Application> apps;
  Application app;
  app.name = "toy";
  app.module = emit_application("toy", {k});
  Region region;
  region.function = "toy.r0_loop.omp_outlined";
  region.desc = k;
  app.regions.push_back(std::move(region));
  apps.push_back(std::move(app));

  const Corpus corpus(std::move(apps));
  EXPECT_EQ(corpus.application_count(), 1u);
  EXPECT_EQ(corpus.total_regions(), 1u);
  ASSERT_NE(corpus.find("toy"), nullptr);
  EXPECT_EQ(corpus.find("absent"), nullptr);
  EXPECT_EQ(corpus.application_names(), std::vector<std::string>{"toy"});
  const auto refs = corpus.all_regions();
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].app, &corpus.applications()[0]);
  EXPECT_EQ(refs[0].region, &corpus.applications()[0].regions[0]);
}

TEST(Corpus, SuiteIsACorpusAndNamesFollowAppOrder) {
  const Corpus& corpus = Suite::instance();  // upcast must be seamless
  EXPECT_EQ(corpus.total_regions(), 68u);
  const auto names = corpus.application_names();
  ASSERT_EQ(names.size(), corpus.application_count());
  for (std::size_t i = 0; i < names.size(); ++i)
    EXPECT_EQ(names[i], corpus.applications()[i].name);
  EXPECT_EQ(names.front(), "rsbench");
  EXPECT_EQ(names.back(), "trmm");
}

TEST(Corpus, RegionRefsStableAcrossCorpusMove) {
  sim::KernelDescriptor k;
  k.app = "toy";
  k.region = "r0_loop";
  std::vector<Application> apps(1);
  apps[0].name = "toy";
  apps[0].module = emit_application("toy", {k});
  apps[0].regions.push_back(Region{k, "toy.r0_loop.omp_outlined"});
  Corpus first(std::move(apps));
  const auto refs = first.all_regions();
  const Corpus second(std::move(first));  // move the corpus, not its apps
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].app, &second.applications()[0]);
  EXPECT_EQ(refs[0].region->desc.app, "toy");
}

// ---------------------------------------------------------------------------
// IR generation fidelity: descriptor traits must be visible in the code.
// ---------------------------------------------------------------------------

sim::KernelDescriptor base_desc() {
  sim::KernelDescriptor k;
  k.app = "test";
  k.region = "r0";
  k.trip_count = 100;
  k.flops_per_iter = 64;
  k.bytes_per_iter = 128;
  k.loop_nest_depth = 2;
  return k;
}

int count_opcode(const ir::Module& m, ir::Opcode op) {
  int n = 0;
  for (const auto& f : m.functions)
    for (const auto& b : f.blocks)
      for (const auto& in : b.instrs)
        if (in.op == op) ++n;
  return n;
}

TEST(IrGen, ReductionEmitsAtomic) {
  auto k = base_desc();
  k.reduction = true;
  const auto m = emit_application("test", {k});
  EXPECT_GE(count_opcode(m, ir::Opcode::AtomicRMW), 1);
  auto k2 = base_desc();
  const auto m2 = emit_application("test", {k2});
  EXPECT_EQ(count_opcode(m2, ir::Opcode::AtomicRMW), 0);
}

TEST(IrGen, DivergenceEmitsBranchyBody) {
  auto k = base_desc();
  k.branch_div = 0.6;
  const auto m = emit_application("test", {k});
  auto k2 = base_desc();
  k2.branch_div = 0.0;
  const auto m2 = emit_application("test", {k2});
  EXPECT_GT(count_opcode(m, ir::Opcode::CondBr), count_opcode(m2, ir::Opcode::CondBr));
  EXPECT_GE(count_opcode(m, ir::Opcode::FCmp), 1);
}

TEST(IrGen, CriticalSectionEmitsKmpcCalls) {
  auto k = base_desc();
  k.critical_frac = 0.1;
  const auto m = emit_application("test", {k});
  const std::string text = ir::print_module(m);
  EXPECT_NE(text.find("@__kmpc_critical"), std::string::npos);
  EXPECT_NE(text.find("@__kmpc_end_critical"), std::string::npos);
}

TEST(IrGen, SerialFractionEmitsSingleConstruct) {
  auto k = base_desc();
  k.serial_frac = 0.5;
  const auto m = emit_application("test", {k});
  const std::string text = ir::print_module(m);
  EXPECT_NE(text.find("@__kmpc_single"), std::string::npos);
}

TEST(IrGen, MathCallsEmitIntrinsics) {
  auto k = base_desc();
  k.has_calls = true;
  const auto m = emit_application("test", {k});
  const std::string text = ir::print_module(m);
  EXPECT_NE(text.find("call f64 @sqrt"), std::string::npos);
}

TEST(IrGen, NestDepthShapesLoops) {
  auto k1 = base_desc();
  k1.loop_nest_depth = 1;
  auto k3 = base_desc();
  k3.loop_nest_depth = 3;
  const auto m1 = emit_application("test", {k1});
  const auto m3 = emit_application("test", {k3});
  EXPECT_GT(count_opcode(m3, ir::Opcode::Phi), count_opcode(m1, ir::Opcode::Phi));
}

TEST(IrGen, ImbalanceLoadsInnerBound) {
  // Imbalanced nests read their inner trip count from memory (CSR-style),
  // visible as a fptosi cast.
  auto k = base_desc();
  k.imbalance = 0.7;
  k.loop_nest_depth = 2;
  const auto m = emit_application("test", {k});
  EXPECT_GE(count_opcode(m, ir::Opcode::FPToSI), 1);
  auto kb = base_desc();
  kb.imbalance = 0.0;
  kb.loop_nest_depth = 2;
  const auto mb = emit_application("test", {kb});
  EXPECT_EQ(count_opcode(mb, ir::Opcode::FPToSI), 0);
}

TEST(IrGen, ArithmeticIntensityShapesBody) {
  auto hot = base_desc();
  hot.flops_per_iter = 1e6;
  hot.bytes_per_iter = 16;
  auto cold = base_desc();
  cold.flops_per_iter = 4;
  cold.bytes_per_iter = 4096;
  const auto mh = emit_application("test", {hot});
  const auto mc = emit_application("test", {cold});
  const int hot_flops =
      count_opcode(mh, ir::Opcode::FMul) + count_opcode(mh, ir::Opcode::FAdd);
  const int cold_flops =
      count_opcode(mc, ir::Opcode::FMul) + count_opcode(mc, ir::Opcode::FAdd);
  EXPECT_GT(hot_flops, cold_flops);
  EXPECT_GT(count_opcode(mc, ir::Opcode::Load),
            count_opcode(mh, ir::Opcode::Load));
}

TEST(IrGen, RegionEndsWithBarrier) {
  const auto m = emit_application("test", {base_desc()});
  EXPECT_GE(count_opcode(m, ir::Opcode::Barrier), 1);
}

TEST(IrGen, DriverCallsEveryRegion) {
  auto k1 = base_desc();
  auto k2 = base_desc();
  k2.region = "r1";
  const auto m = emit_application("test", {k1, k2});
  const auto* driver = m.find_function("test.main");
  ASSERT_NE(driver, nullptr);
  int calls = 0;
  for (const auto& b : driver->blocks)
    for (const auto& in : b.instrs)
      if (in.op == ir::Opcode::Call) ++calls;
  EXPECT_EQ(calls, 2);
}

TEST(IrGen, MismatchedAppNameThrows) {
  auto k = base_desc();
  k.app = "other";
  EXPECT_THROW(emit_application("test", {k}), pnp::Error);
}

}  // namespace
}  // namespace pnp::workloads
