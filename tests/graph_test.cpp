/// Unit tests for the PROGRAML-style flow-graph substrate: construction
/// invariants, vocabulary, and tensor conversion.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/builder.hpp"
#include "graph/export.hpp"
#include "graph/flow_graph.hpp"
#include "graph/vocab.hpp"
#include "ir/builder.hpp"
#include "ir/extract.hpp"
#include "workloads/suite.hpp"

namespace pnp::graph {
namespace {

ir::Module simple_loop_module() {
  ir::Module m;
  m.name = "g";
  m.globals.push_back(ir::Global{"A", ir::Type::F64});
  m.declarations.push_back(ir::Declaration{"sqrt", ir::Type::F64, {ir::Type::F64}});
  m.functions.push_back(ir::Function{"loop", ir::Type::Void,
                                     {ir::Argument{"n", ir::Type::I64}},
                                     {},
                                     0});
  ir::Builder b(m, m.functions.back());
  const int entry = b.add_block("entry");
  const int header = b.add_block("header");
  const int body = b.add_block("body");
  const int exit = b.add_block("exit");
  b.set_block(entry);
  b.br(header);
  b.set_block(header);
  const auto i = b.phi(ir::Type::I64, {{b.ci64(0), entry}});
  const auto c = b.icmp("slt", i, b.arg(0));
  b.condbr(c, body, exit);
  b.set_block(body);
  const auto p = b.gep(b.global("A"), i);
  const auto v = b.load(ir::Type::F64, p);
  const auto s = b.call(ir::Type::F64, "sqrt", {v});
  b.store(s, p);
  const auto ni = b.add(i, b.ci64(1));
  b.br(header);
  b.phi_add_incoming(i, ni, body);
  b.set_block(exit);
  b.ret();
  return m;
}

TEST(FlowGraphBuild, NodeKindsAndCounts) {
  const auto g = build_flow_graph(simple_loop_module());
  // 11 instructions + 1 extern stub for sqrt.
  EXPECT_EQ(g.count_kind(NodeKind::Instruction), 12);
  // Variables: arg n, temps (phi, icmp, gep, load, call, add), global A.
  EXPECT_EQ(g.count_kind(NodeKind::Variable), 8);
  // Constants: 0 and 1.
  EXPECT_EQ(g.count_kind(NodeKind::Constant), 2);
}

TEST(FlowGraphBuild, ControlEdgesOnlyBetweenInstructions) {
  const auto g = build_flow_graph(simple_loop_module());
  for (const auto& e : g.edges()) {
    if (e.rel != EdgeRelation::Control) continue;
    EXPECT_EQ(g.node(e.src).kind, NodeKind::Instruction);
    EXPECT_EQ(g.node(e.dst).kind, NodeKind::Instruction);
  }
}

TEST(FlowGraphBuild, DataEdgesTouchExactlyOneNonInstruction) {
  const auto g = build_flow_graph(simple_loop_module());
  int data_edges = 0;
  for (const auto& e : g.edges()) {
    if (e.rel != EdgeRelation::Data) continue;
    ++data_edges;
    const bool src_instr = g.node(e.src).kind == NodeKind::Instruction;
    const bool dst_instr = g.node(e.dst).kind == NodeKind::Instruction;
    EXPECT_NE(src_instr, dst_instr)
        << "data edge must connect an instruction with a variable/constant";
    // Constants are only ever read (never defined).
    if (g.node(e.dst).kind == NodeKind::Constant)
      ADD_FAILURE() << "constant node used as a data-edge target";
  }
  EXPECT_GT(data_edges, 10);
}

TEST(FlowGraphBuild, BranchTargetsGetControlEdges) {
  const auto g = build_flow_graph(simple_loop_module());
  // The condbr instruction has 2 successor control edges; plus every
  // non-terminal instruction has its fallthrough edge. Count edges whose
  // src is the condbr node (text "condbr").
  int condbr_node = -1;
  for (int i = 0; i < g.num_nodes(); ++i)
    if (g.node(i).text == "condbr") condbr_node = i;
  ASSERT_GE(condbr_node, 0);
  int succ = 0;
  for (const auto& e : g.edges())
    if (e.rel == EdgeRelation::Control && e.src == condbr_node) ++succ;
  EXPECT_EQ(succ, 2);
}

TEST(FlowGraphBuild, BackEdgeExistsForLoop) {
  const auto g = build_flow_graph(simple_loop_module());
  // The body's terminating br jumps back to the header's phi — so some
  // control edge must go from a later node id to an earlier one.
  bool back = false;
  for (const auto& e : g.edges())
    if (e.rel == EdgeRelation::Control && e.dst < e.src) back = true;
  EXPECT_TRUE(back);
}

TEST(FlowGraphBuild, ExternalCallGetsStubAndRoundTripEdges) {
  const auto g = build_flow_graph(simple_loop_module());
  int stub = -1;
  for (int i = 0; i < g.num_nodes(); ++i)
    if (g.node(i).text == "decl @sqrt") stub = i;
  ASSERT_GE(stub, 0);
  int to_stub = 0, from_stub = 0;
  for (const auto& e : g.edges()) {
    if (e.rel != EdgeRelation::Call) continue;
    if (e.dst == stub) ++to_stub;
    if (e.src == stub) ++from_stub;
  }
  EXPECT_EQ(to_stub, 1);
  EXPECT_EQ(from_stub, 1);
}

TEST(FlowGraphBuild, InternalCallLinksCallerAndCallee) {
  // Use a real suite application: its driver calls every region.
  const auto& suite = workloads::Suite::instance();
  const auto* app = suite.find("gemm");
  ASSERT_NE(app, nullptr);
  const auto g = build_flow_graph(app->module);
  int call_edges = 0;
  for (const auto& e : g.edges())
    if (e.rel == EdgeRelation::Call) ++call_edges;
  // Driver calls 1 region (entry + ret edges) plus the region's intrinsic
  // calls: at least 2 call edges.
  EXPECT_GE(call_edges, 2);
}

TEST(FlowGraphBuild, ConstantsDedupedByValue) {
  ir::Module m;
  m.name = "c";
  m.functions.push_back(ir::Function{"f", ir::Type::Void, {}, {}, 0});
  ir::Builder b(m, m.functions.back());
  b.set_block(b.add_block("entry"));
  const auto x = b.fadd(b.cf64(2.5), b.cf64(2.5));  // same constant twice
  b.fmul(x, b.cf64(3.5));                           // a different one
  b.ret();
  const auto g = build_flow_graph(m);
  EXPECT_EQ(g.count_kind(NodeKind::Constant), 2);
}

TEST(FlowGraphBuild, Deterministic) {
  const auto g1 = build_flow_graph(simple_loop_module());
  const auto g2 = build_flow_graph(simple_loop_module());
  ASSERT_EQ(g1.num_nodes(), g2.num_nodes());
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  for (int i = 0; i < g1.num_nodes(); ++i) {
    EXPECT_EQ(g1.node(i).kind, g2.node(i).kind);
    EXPECT_EQ(g1.node(i).text, g2.node(i).text);
  }
}

TEST(Vocabulary, OovAtZeroAndFirstSeenOrder) {
  Vocabulary v;
  EXPECT_EQ(v.size(), 1);
  EXPECT_EQ(v.id_or_oov("anything"), 0);
  const int a = v.add("alpha");
  const int b = v.add("beta");
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(v.add("alpha"), 1);  // idempotent
  EXPECT_EQ(v.id_or_oov("beta"), 2);
  EXPECT_EQ(v.token(2), "beta");
  EXPECT_EQ(v.token(0), "<oov>");
}

TEST(Vocabulary, FromGraphsCoversAllTokens) {
  const auto m = simple_loop_module();
  const auto g = build_flow_graph(m);
  const auto v = Vocabulary::from_graphs({&g});
  for (const auto& n : g.nodes()) EXPECT_TRUE(v.contains(n.text)) << n.text;
}

TEST(GraphTensors, RelationsSplitByDirection) {
  const auto m = simple_loop_module();
  const auto g = build_flow_graph(m);
  const auto v = Vocabulary::from_graphs({&g});
  const auto t = to_tensors(g, v);
  EXPECT_EQ(t.num_nodes, g.num_nodes());
  // Forward and backward lists mirror each other.
  for (int rel = 0; rel < kNumEdgeRelations; ++rel) {
    const auto& fwd = t.rel_edges[static_cast<std::size_t>(2 * rel)];
    const auto& bwd = t.rel_edges[static_cast<std::size_t>(2 * rel + 1)];
    ASSERT_EQ(fwd.size(), bwd.size());
    for (std::size_t i = 0; i < fwd.size(); ++i) {
      EXPECT_EQ(fwd[i].first, bwd[i].second);
      EXPECT_EQ(fwd[i].second, bwd[i].first);
    }
  }
}

TEST(GraphTensors, InDegreeMatchesEdges) {
  const auto m = simple_loop_module();
  const auto g = build_flow_graph(m);
  const auto v = Vocabulary::from_graphs({&g});
  const auto t = to_tensors(g, v);
  for (int rel = 0; rel < kNumModelRelations; ++rel) {
    const auto deg = t.in_degree(rel);
    std::size_t sum = 0;
    for (int d : deg) sum += static_cast<std::size_t>(d);
    EXPECT_EQ(sum, t.rel_edges[static_cast<std::size_t>(rel)].size());
  }
}

TEST(GraphTensors, OovTokensForUnseenVocabulary) {
  const auto m = simple_loop_module();
  const auto g = build_flow_graph(m);
  Vocabulary empty;  // nothing registered
  const auto t = to_tensors(g, empty);
  for (int tok : t.token) EXPECT_EQ(tok, 0);
}

TEST(GraphExport, DotContainsNodesAndColors) {
  const auto g = build_flow_graph(simple_loop_module());
  const auto dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("color=blue"), std::string::npos);  // data edges
  EXPECT_NE(dot.find("color=red"), std::string::npos);   // call edges
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);
}

TEST(GraphExport, SummaryMentionsCounts) {
  const auto g = build_flow_graph(simple_loop_module());
  const auto s = summary(g);
  EXPECT_NE(s.find("nodes="), std::string::npos);
  EXPECT_NE(s.find("call="), std::string::npos);
}

TEST(FlowGraph, EdgeEndpointValidation) {
  FlowGraph g;
  const int a = g.add_node(NodeKind::Instruction, "x");
  EXPECT_THROW(g.add_edge(a, 5, EdgeRelation::Control), pnp::Error);
  EXPECT_THROW(g.add_edge(-1, a, EdgeRelation::Data), pnp::Error);
}

}  // namespace
}  // namespace pnp::graph
