/// Tests for the hardware zoo (docs/HARDWARE.md): the seeded
/// MachineGenerator's determinism and archetype invariants, the shared
/// machine_by_name registry, machine fingerprints and feature vectors,
/// the generic SearchSpace::for_machine/extended_for_machine property
/// sweep over generated machines, and the machine-plumbing bugfixes
/// (exact ladder frequencies, the socket-consistency check).

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/search_space.hpp"
#include "hw/machine_generator.hpp"
#include "hw/power.hpp"

namespace pnp::hw {
namespace {

constexpr std::uint64_t kSeed = 42;
constexpr int kSweep = 32;  ///< machines per property sweep

bool same_machine(const MachineModel& a, const MachineModel& b) {
  return a.name == b.name && a.sockets == b.sockets &&
         a.cores_per_socket == b.cores_per_socket &&
         a.smt_per_core == b.smt_per_core && a.fmin_ghz == b.fmin_ghz &&
         a.fmax_ghz == b.fmax_ghz && a.fstep_ghz == b.fstep_ghz &&
         a.l1d_kib_per_core == b.l1d_kib_per_core &&
         a.l2_kib_per_core == b.l2_kib_per_core &&
         a.l3_mib_per_socket == b.l3_mib_per_socket &&
         a.mem_bw_gbs_per_socket == b.mem_bw_gbs_per_socket &&
         a.numa_remote_factor == b.numa_remote_factor &&
         a.p_static_w == b.p_static_w &&
         a.p_uncore_per_socket_w == b.p_uncore_per_socket_w &&
         a.alpha_w_per_core == b.alpha_w_per_core &&
         a.beta_w_per_core == b.beta_w_per_core && a.tdp_w == b.tdp_w &&
         a.min_cap_w == b.min_cap_w &&
         a.flops_per_cycle_per_core == b.flops_per_cycle_per_core &&
         a.smt_throughput_gain == b.smt_throughput_gain;
}

TEST(MachineGenerator, DeterministicAcrossGeneratorsAndCallOrder) {
  const MachineGenerator g1(kSeed);
  const MachineGenerator g2(kSeed);
  // Draw in opposite orders: machine(i) must be a pure function of
  // (seed, index), independent of what was drawn before.
  std::vector<MachineModel> fwd, rev;
  for (int i = 0; i < 8; ++i) fwd.push_back(g1.machine(i));
  for (int i = 7; i >= 0; --i) rev.push_back(g2.machine(i));
  for (int i = 0; i < 8; ++i)
    EXPECT_TRUE(same_machine(fwd[static_cast<std::size_t>(i)],
                             rev[static_cast<std::size_t>(7 - i)]))
        << "machine " << i << " depends on draw order";
  // fleet() is just machine(0..n-1).
  const auto fleet = g1.fleet(8);
  for (int i = 0; i < 8; ++i)
    EXPECT_TRUE(same_machine(fleet[static_cast<std::size_t>(i)],
                             fwd[static_cast<std::size_t>(i)]));
}

TEST(MachineGenerator, DistinctSeedsAndIndicesDiffer) {
  const MachineGenerator a(1), b(2);
  EXPECT_FALSE(same_machine(a.machine(0), b.machine(0)));
  EXPECT_FALSE(same_machine(a.machine(0), a.machine(4)));  // same archetype
}

TEST(MachineGenerator, GeneratorContractHoldsAcrossTheSweep) {
  const MachineGenerator gen(kSeed);
  for (int i = 0; i < kSweep; ++i) {
    const MachineModel m = gen.machine(i);
    SCOPED_TRACE(m.name);
    // Name is the spec.
    EXPECT_EQ(m.name, "gen:" + std::to_string(kSeed) + ":" + std::to_string(i));
    // Head-layout invariant: the full 6-class thread grid fits.
    EXPECT_GE(m.max_threads(), 32);
    // Sane topology.
    EXPECT_GE(m.sockets, 1);
    EXPECT_GE(m.cores_per_socket, 1);
    EXPECT_GE(m.smt_per_core, 1);
    // Integer-MHz ladder with fmin exactly on it.
    const double mhz = 1000.0;
    EXPECT_DOUBLE_EQ(std::round(m.fmax_ghz * mhz), m.fmax_ghz * mhz);
    EXPECT_DOUBLE_EQ(std::round(m.fmin_ghz * mhz), m.fmin_ghz * mhz);
    EXPECT_DOUBLE_EQ(std::round(m.fstep_ghz * mhz), m.fstep_ghz * mhz);
    EXPECT_GT(m.fstep_ghz, 0.0);
    EXPECT_LT(m.fmin_ghz, m.fmax_ghz);
    const long long steps = std::llround((m.fmax_ghz - m.fmin_ghz) * mhz) /
                            std::llround(m.fstep_ghz * mhz);
    EXPECT_DOUBLE_EQ(std::llround(m.fstep_ghz * mhz) * steps,
                     std::llround((m.fmax_ghz - m.fmin_ghz) * mhz))
        << "fmin is off the ladder";
    // Non-degenerate cap range; integer TDP watts.
    EXPECT_GT(m.min_cap_w, 0.0);
    EXPECT_LT(m.min_cap_w, m.tdp_w);
    EXPECT_DOUBLE_EQ(std::round(m.tdp_w), m.tdp_w);
    EXPECT_GE(m.min_cap_w, 0.4 * m.tdp_w - 1.0);
    EXPECT_LE(m.min_cap_w, 0.6 * m.tdp_w + 1.0);
    // Power model self-consistency: the TDP admits all cores at some
    // ladder frequency, i.e. the lowest ladder point's all-core demand
    // fits under the TDP.
    EXPECT_LE(m.power_demand_w(m.total_cores(), m.sockets, m.fmin_ghz),
              m.tdp_w + 1e-9);
  }
}

TEST(MachineGenerator, ArchetypesAreRoundRobinAndShapeTheDraw) {
  const MachineGenerator gen(kSeed);
  for (int i = 0; i < 12; ++i)
    EXPECT_EQ(static_cast<int>(gen.archetype_of(i)), i % kNumMachineArchetypes);
  // Family shape spot checks over several draws of each archetype.
  for (int k = 0; k < 4; ++k) {
    const MachineModel server = gen.machine(4 * k + 0);
    EXPECT_GE(server.sockets, 2) << server.name;
    const MachineModel desktop = gen.machine(4 * k + 1);
    EXPECT_EQ(desktop.sockets, 1) << desktop.name;
    const MachineModel thin = gen.machine(4 * k + 2);
    EXPECT_GE(thin.total_cores(), 32) << thin.name;
    const MachineModel hbm = gen.machine(4 * k + 3);
    EXPECT_GT(hbm.mem_bw_gbs_per_socket, desktop.mem_bw_gbs_per_socket)
        << hbm.name;
  }
  for (int a = 0; a < kNumMachineArchetypes; ++a)
    EXPECT_NE(archetype_name(static_cast<MachineArchetype>(a)), nullptr);
}

TEST(MachineFingerprint, UniqueAcrossZooAndSensitiveToEveryField) {
  const MachineGenerator gen(kSeed);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i)
    EXPECT_TRUE(seen.insert(machine_fingerprint(gen.machine(i))).second)
        << "fingerprint collision at machine " << i;
  // Same descriptor → same fingerprint; any field flip changes it.
  MachineModel m = gen.machine(0);
  const std::uint64_t fp = machine_fingerprint(m);
  EXPECT_EQ(machine_fingerprint(gen.machine(0)), fp);
  MachineModel renamed = m;
  renamed.name += "x";
  EXPECT_NE(machine_fingerprint(renamed), fp);
  MachineModel retuned = m;
  retuned.alpha_w_per_core += 1e-12;
  EXPECT_NE(machine_fingerprint(retuned), fp);
}

TEST(MachineFeatures, BoundedAndDiscriminative) {
  const MachineGenerator gen(kSeed);
  std::set<std::array<double, kNumMachineFeatures>> distinct;
  for (int i = 0; i < kSweep; ++i) {
    const auto f = machine_feature_vector(gen.machine(i));
    for (double v : f) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, -8.0);
      EXPECT_LE(v, 8.0);
    }
    distinct.insert(f);
  }
  // The features must actually tell the fleet's machines apart.
  EXPECT_GT(distinct.size(), static_cast<std::size_t>(kSweep / 2));
}

TEST(MachineRegistry, EveryAcceptedNameRoundTrips) {
  // The two paper machines.
  EXPECT_EQ(machine_by_name("haswell").name, "haswell");
  EXPECT_EQ(machine_by_name("skylake").name, "skylake");
  EXPECT_TRUE(same_machine(machine_by_name("haswell"), MachineModel::haswell()));
  EXPECT_TRUE(same_machine(machine_by_name("skylake"), MachineModel::skylake()));
  // Generated specs resolve to the exact generator draw.
  const MachineGenerator gen(kSeed);
  for (int i = 0; i < 8; ++i) {
    const std::string spec =
        "gen:" + std::to_string(kSeed) + ":" + std::to_string(i);
    const MachineModel m = machine_by_name(spec);
    EXPECT_EQ(m.name, spec);
    EXPECT_TRUE(same_machine(m, gen.machine(i)));
  }
}

TEST(MachineRegistry, RejectsBadNames) {
  EXPECT_THROW(machine_by_name(""), Error);
  EXPECT_THROW(machine_by_name("broadwell"), Error);
  EXPECT_THROW(machine_by_name("gen:"), Error);
  EXPECT_THROW(machine_by_name("gen:7"), Error);
  EXPECT_THROW(machine_by_name("gen:7:"), Error);
  EXPECT_THROW(machine_by_name("gen:x:0"), Error);
  EXPECT_THROW(machine_by_name("gen:7:-1"), Error);
  EXPECT_THROW(machine_by_name("gen:7:2garbage"), Error);
  EXPECT_THROW(machine_by_name("gen:7:0:extra"), Error);
}

TEST(PowerCapController, LadderFrequenciesAreExactLadderPoints) {
  // The bugfix: stepping by integer ladder index instead of repeated
  // f -= fstep, so no accumulated FP error walks the result off the
  // ladder. Check every cap/core combination lands exactly on
  // fmax − k·fstep for all generated machines plus the paper pair.
  const MachineGenerator gen(kSeed);
  std::vector<MachineModel> machines = {MachineModel::haswell(),
                                        MachineModel::skylake()};
  for (int i = 0; i < 8; ++i) machines.push_back(gen.machine(i));
  for (const MachineModel& m : machines) {
    SCOPED_TRACE(m.name);
    for (double cap = m.min_cap_w; cap <= m.tdp_w; cap += 7.0) {
      for (int cores : {1, m.total_cores() / 2, m.total_cores()}) {
        if (cores < 1) continue;
        const double f =
            PowerCapController::max_frequency_ghz(m, cap, cores, m.sockets);
        EXPECT_GE(f, m.fmin_ghz - 1e-12);
        EXPECT_LE(f, m.fmax_ghz + 1e-12);
        const double k = (m.fmax_ghz - f) / m.fstep_ghz;
        EXPECT_DOUBLE_EQ(m.fmax_ghz - std::round(k) * m.fstep_ghz, f)
            << "cap " << cap << " cores " << cores << " → off-ladder " << f;
      }
    }
  }
}

TEST(MachineModel, PowerDemandRejectsCorelessSocketState) {
  const MachineModel m = MachineModel::haswell();
  // The tightened check: active cores with no socket is inconsistent.
  EXPECT_THROW(m.power_demand_w(4, 0, 2.0), Error);
  // Zero cores on zero sockets stays the valid idle query.
  EXPECT_DOUBLE_EQ(m.power_demand_w(0, 0, 2.0), m.p_static_w);
}

}  // namespace
}  // namespace pnp::hw

namespace pnp::core {
namespace {

using hw::MachineGenerator;
using hw::MachineModel;

/// Shared property assertions for a machine's generated space.
void check_space(const SearchSpace& s, const MachineModel& m) {
  // Threads strictly increasing, positive, within the machine.
  const auto& th = s.thread_values();
  ASSERT_FALSE(th.empty());
  EXPECT_GE(th.front(), 1);
  for (std::size_t i = 1; i < th.size(); ++i)
    EXPECT_LT(th[i - 1], th[i]) << m.name;
  EXPECT_LE(th.back(), m.max_threads()) << m.name;
  // Caps strictly ascending within [min_cap, tdp], ending at the TDP.
  const auto& caps = s.power_caps();
  ASSERT_FALSE(caps.empty());
  for (std::size_t i = 1; i < caps.size(); ++i)
    EXPECT_LT(caps[i - 1], caps[i]) << m.name;
  EXPECT_GE(caps.front(), m.min_cap_w - 1e-9) << m.name;
  EXPECT_DOUBLE_EQ(caps.back(), m.tdp_w) << m.name;
  EXPECT_DOUBLE_EQ(s.tdp(), m.tdp_w);
  // The default is representable as a label and always valid.
  const sim::OmpConfig dflt = s.default_config();
  EXPECT_EQ(dflt.chunk, 0);
  EXPECT_GE(s.thread_class(dflt.threads), 0) << m.name;
  for (double cap : caps) EXPECT_TRUE(s.is_valid(dflt, cap)) << m.name;
}

TEST(GeneratedSpaces, ForMachinePropertySweep) {
  const MachineGenerator gen(42);
  for (int i = 0; i < 32; ++i) {
    const MachineModel m = gen.machine(i);
    SCOPED_TRACE(m.name);
    const SearchSpace s = SearchSpace::for_machine(m);
    check_space(s, m);
    // The generator contract (max_threads ≥ 32) guarantees the full
    // Table-I-shaped grid, so every zoo machine shares one head layout.
    EXPECT_EQ(s.num_thread_classes(), 6);
    EXPECT_EQ(s.num_schedule_classes(), 3);
    EXPECT_EQ(s.num_chunk_classes(), 8);
    EXPECT_EQ(s.num_cap_classes(), 4);
    EXPECT_FALSE(s.has_constraints());
  }
}

TEST(GeneratedSpaces, ExtendedForMachinePropertySweep) {
  const MachineGenerator gen(42);
  for (int i = 0; i < 32; ++i) {
    const MachineModel m = gen.machine(i);
    SCOPED_TRACE(m.name);
    const SearchSpace s = SearchSpace::extended_for_machine(m);
    check_space(s, m);
    EXPECT_GE(s.joint_size(), 2000);
    EXPECT_TRUE(s.has_constraints());
    // Constraint pruning removes candidates but never the fallback.
    EXPECT_GT(s.joint_invalid_count(), 0);
    for (double cap : s.power_caps())
      EXPECT_TRUE(s.is_valid(s.default_config(), cap));
  }
}

TEST(GeneratedSpaces, DegenerateMachinesHandledOrRejected) {
  // A 1-thread machine: the generic branch must either produce a valid
  // single-thread grid or refuse with a clear error — never a malformed
  // space. (The zoo never emits one; hand-built descriptors can.)
  MachineModel tiny = MachineModel::haswell();
  tiny.name = "tiny";
  tiny.sockets = 1;
  tiny.cores_per_socket = 1;
  tiny.smt_per_core = 1;
  try {
    const SearchSpace s = SearchSpace::for_machine(tiny);
    check_space(s, tiny);
    EXPECT_EQ(s.thread_values().back(), 1);
  } catch (const Error&) {
    SUCCEED();  // clear rejection is equally acceptable
  }

  // min_cap == tdp would produce duplicate caps: either deduplicated to
  // a single-cap space or rejected.
  MachineModel flat = MachineModel::haswell();
  flat.name = "flat";
  flat.min_cap_w = flat.tdp_w;
  try {
    const SearchSpace s = SearchSpace::for_machine(flat);
    const auto& caps = s.power_caps();
    for (std::size_t i = 1; i < caps.size(); ++i)
      EXPECT_LT(caps[i - 1], caps[i]);
    EXPECT_DOUBLE_EQ(caps.back(), flat.tdp_w);
  } catch (const Error&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace pnp::core
