/// \file server_test.cpp
/// The network front end (serve::Server + serve/protocol): loopback
/// round trips of every request type bit-identical to a direct
/// TuningService / PnpTuner reference, the malformed-frame corpus
/// (truncated length prefix, oversized length claim, unknown opcode,
/// garbage payload, trailing bytes, mid-frame disconnect) each rejected
/// cleanly while a canary connection keeps serving, deterministic
/// load-shedding when the admission queue fills (workers parked on the
/// test hook), and graceful drain: every accepted request answers before
/// the connection sees EOF. Client threads never call gtest assertions;
/// they record and the main thread verifies.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/net.hpp"
#include "common/wire.hpp"
#include "serve/server.hpp"
#include "workloads/suite.hpp"

namespace pnp {
namespace {

namespace proto = serve::protocol;

/// A test client: one connection, frame-level send/recv, id-keyed reply
/// collection (the server may answer a pipeline out of order).
struct Client {
  explicit Client(const net::Address& addr) : sock(net::connect_to(addr)) {
    sock.set_recv_timeout_ms(10000);  // a hung test fails, not wedges
  }

  void send(const proto::Request& q) {
    net::send_frame(sock, proto::encode_request(q));
  }
  void send_tune(std::uint64_t id, proto::Op op, const serve::TuneRequest& t) {
    proto::Request q;
    q.id = id;
    q.op = op;
    q.tune = t;
    send(q);
  }
  /// Raw bytes, bypassing framing — the malformed-frame corpus.
  void send_raw(std::string_view bytes) {
    sock.write_all(bytes.data(), bytes.size());
  }

  /// Next response frame; throws on EOF (use eof() when EOF is the point).
  proto::Response recv() {
    auto payload = net::recv_frame(sock);
    PNP_CHECK_MSG(payload.has_value(), "unexpected EOF from server");
    return proto::decode_response(*payload);
  }
  /// Collect exactly n responses keyed by id.
  std::map<std::uint64_t, proto::Response> recv_n(std::size_t n) {
    std::map<std::uint64_t, proto::Response> out;
    for (std::size_t i = 0; i < n; ++i) {
      const proto::Response r = recv();
      out[r.id] = r;
    }
    return out;
  }
  bool eof() { return !net::recv_frame(sock).has_value(); }

  net::Socket sock;
};

/// Trained serving world shared by every test: 10 Haswell regions, two
/// scalar-cap power artifacts (v1/v2 reload material) and an EDP
/// artifact, mirroring tests/service_test.cpp.
class ServerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto machine = hw::MachineModel::haswell();
    sim_ = new sim::Simulator(machine);
    auto regions = workloads::Suite::instance().all_regions();
    regions.resize(10);
    db_ = new core::MeasurementDb(
        *sim_, core::SearchSpace::for_machine(machine), regions);
    path_a_ = save_artifact(3, "server_model_a.pnp", /*edp=*/false);
    path_b_ = save_artifact(5, "server_model_b.pnp", /*edp=*/false);
    path_edp_ = save_artifact(3, "server_model_edp.pnp", /*edp=*/true);
  }

  static void TearDownTestSuite() {
    delete db_;
    delete sim_;
    db_ = nullptr;
    sim_ = nullptr;
  }

  static core::PnpOptions options(int epochs) {
    core::PnpOptions opt;
    opt.cap_onehot = false;  // power_at must be servable
    opt.trainer.max_epochs = epochs;
    opt.trainer.min_loss = 0.0;
    return opt;
  }

  static std::string save_artifact(int epochs, const char* name, bool edp) {
    core::PnpTuner t(*db_, options(epochs));
    std::vector<int> all;
    for (int r = 0; r < db_->num_regions(); ++r) all.push_back(r);
    if (edp) t.train_edp_scenario(all);
    else t.train_power_scenario(all);
    const std::string path = ::testing::TempDir() + name;
    t.save(path);
    return path;
  }

  /// Deterministic mixed tune requests (power / power_at), as
  /// (op, TuneRequest) pairs ready for the wire.
  static std::vector<std::pair<proto::Op, serve::TuneRequest>> mixed_requests(
      int n, std::uint64_t seed) {
    std::vector<std::pair<proto::Op, serve::TuneRequest>> reqs;
    std::uint64_t s = seed;
    const auto next = [&s] {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      return static_cast<std::uint32_t>(s >> 33);
    };
    const int regions = db_->num_regions();
    const int caps = db_->num_caps();
    for (int i = 0; i < n; ++i) {
      const int region = static_cast<int>(next() % regions);
      if (i % 3 == 2) {
        const double w = 30.0 + static_cast<double>(next() % 600) / 10.0;
        reqs.emplace_back(proto::Op::PowerAt,
                          serve::TuneRequest::power_at(region, w));
      } else {
        reqs.emplace_back(
            proto::Op::Power,
            serve::TuneRequest::power(region, static_cast<int>(next() % caps)));
      }
    }
    return reqs;
  }

  /// Single-threaded reference through a freshly loaded PnpTuner — fully
  /// independent of the service/server code path.
  static serve::TuneResult reference(const core::PnpTuner& ref,
                                     std::uint64_t version,
                                     const serve::TuneRequest& q) {
    serve::TuneResult r;
    r.model_version = version;
    switch (q.kind) {
      case serve::TuneRequest::Kind::Power:
        r.config = ref.predict_power(q.region, q.cap_index);
        r.cap_index = q.cap_index;
        break;
      case serve::TuneRequest::Kind::PowerAt:
        r.config = ref.predict_power_at(q.region, q.cap_w);
        r.cap_index = -1;
        break;
      case serve::TuneRequest::Kind::Edp: {
        const auto jc = ref.predict_edp(q.region);
        r.config = jc.cfg;
        r.cap_index = jc.cap_index;
        break;
      }
    }
    return r;
  }

  static void expect_result_eq(const serve::TuneResult& got,
                               const serve::TuneResult& want, std::uint64_t id) {
    EXPECT_EQ(got.config, want.config) << "request id " << id;
    EXPECT_EQ(got.cap_index, want.cap_index) << "request id " << id;
    EXPECT_EQ(got.model_version, want.model_version) << "request id " << id;
  }

  static sim::Simulator* sim_;
  static core::MeasurementDb* db_;
  static std::string path_a_, path_b_, path_edp_;
};

sim::Simulator* ServerFixture::sim_ = nullptr;
core::MeasurementDb* ServerFixture::db_ = nullptr;
std::string ServerFixture::path_a_;
std::string ServerFixture::path_b_;
std::string ServerFixture::path_edp_;

// --- options validation ------------------------------------------------------

TEST_F(ServerFixture, RejectsBadOptionsAndBadEndpoints) {
  serve::TuningService service(*db_, path_a_);
  const auto with = [](auto mut) {
    serve::ServerOptions o;
    mut(o);
    return o;
  };
  EXPECT_THROW(serve::Server(service,
                             with([](auto& o) { o.workers = 0; })),
               Error);
  EXPECT_THROW(serve::Server(service,
                             with([](auto& o) { o.queue_depth = 0; })),
               Error);
  EXPECT_THROW(serve::Server(service, with([](auto& o) {
                               o.max_frame_bytes = net::kMaxFrameBytes + 1;
                             })),
               Error);
  EXPECT_THROW(serve::Server(service,
                             with([](auto& o) { o.listen = "bogus:addr"; })),
               Error);
  // A stale unix socket file is an error, not silently stolen.
  const std::string sock_path = ::testing::TempDir() + "server_stale.sock";
  std::remove(sock_path.c_str());
  {
    serve::Server first(service,
                        with([&](auto& o) { o.listen = "unix:" + sock_path; }));
    EXPECT_THROW(serve::Server(service, with([&](auto& o) {
                                 o.listen = "unix:" + sock_path;
                               })),
                 Error);
  }
  // ...and the file is unlinked on close, so rebinding works.
  serve::Server again(service,
                      with([&](auto& o) { o.listen = "unix:" + sock_path; }));
}

// --- loopback round trips ----------------------------------------------------

TEST_F(ServerFixture, EveryRequestTypeRoundTripsBitIdenticalToReference) {
  serve::TuningService service(*db_, path_a_);
  serve::Server server(service, {});
  Client c(server.address());

  // Mixed power/power_at pipeline, answered out of order, every result
  // byte-equal to the fresh-tuner reference at version 1.
  const auto reqs = mixed_requests(60, 0x9e3779b97f4a7c15ull);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    c.send_tune(i + 1, reqs[i].first, reqs[i].second);
  auto replies = c.recv_n(reqs.size());
  {
    const core::PnpTuner ref = core::PnpTuner::load(*db_, path_a_);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const auto it = replies.find(i + 1);
      ASSERT_NE(it, replies.end()) << "no reply for id " << i + 1;
      ASSERT_EQ(it->second.status, proto::Status::Ok) << it->second.error;
      EXPECT_EQ(it->second.op, reqs[i].first);
      expect_result_eq(it->second.result,
                       reference(ref, 1, reqs[i].second), i + 1);
    }
  }

  // reload -> v2; the same requests now match the v2 reference.
  {
    proto::Request q;
    q.id = 1000;
    q.op = proto::Op::Reload;
    q.reload_path = path_b_;
    c.send(q);
    const auto r = c.recv();
    ASSERT_EQ(r.status, proto::Status::Ok) << r.error;
    ASSERT_EQ(r.op, proto::Op::Reload);
    EXPECT_EQ(r.new_version, 2u);
  }
  for (std::size_t i = 0; i < reqs.size(); ++i)
    c.send_tune(2000 + i, reqs[i].first, reqs[i].second);
  replies = c.recv_n(reqs.size());
  {
    const core::PnpTuner ref = core::PnpTuner::load(*db_, path_b_);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const auto& r = replies.at(2000 + i);
      ASSERT_EQ(r.status, proto::Status::Ok) << r.error;
      expect_result_eq(r.result, reference(ref, 2, reqs[i].second), 2000 + i);
    }
  }

  // stats: counters agree with the server's own view, histogram counts
  // every tune request answered so far (ok or error), sampled before the
  // stats request itself is counted.
  {
    proto::Request q;
    q.id = 3000;
    q.op = proto::Op::Stats;
    c.send(q);
    LatencyHistogram hist;
    auto payload = net::recv_frame(c.sock);
    ASSERT_TRUE(payload.has_value());
    const auto r = proto::decode_response(*payload, &hist);
    ASSERT_EQ(r.status, proto::Status::Ok) << r.error;
    ASSERT_EQ(r.op, proto::Op::Stats);
    EXPECT_EQ(r.server.connections, 1u);
    EXPECT_EQ(r.server.ok, 2 * reqs.size() + 1);  // tunes + reload
    EXPECT_EQ(r.server.errors, 0u);
    EXPECT_EQ(r.server.shed, 0u);
    EXPECT_EQ(r.server.malformed, 0u);
    EXPECT_EQ(hist.count(), 2 * reqs.size());  // reload/stats excluded
    EXPECT_EQ(r.service.requests, 2 * reqs.size());
    EXPECT_EQ(r.service.reloads, 1u);
    EXPECT_EQ(hist.count(), server.latency().count());
    EXPECT_EQ(hist.max_ns(), server.latency().max_ns());
  }

  // An invalid region is a per-request error; the connection survives it.
  {
    c.send_tune(4000, proto::Op::Power, serve::TuneRequest::power(9999, 0));
    const auto r = c.recv();
    EXPECT_EQ(r.status, proto::Status::Error);
    EXPECT_FALSE(r.error.empty());
    c.send_tune(4001, proto::Op::Power, reqs[0].second);
    EXPECT_EQ(c.recv().status, proto::Status::Ok);
  }

  server.shutdown();
  EXPECT_TRUE(c.eof());
}

TEST_F(ServerFixture, EdpRoundTripOverUnixSocketMatchesReference) {
  const std::string sock_path = ::testing::TempDir() + "server_edp.sock";
  std::remove(sock_path.c_str());
  serve::TuningService service(*db_, path_edp_);
  serve::ServerOptions opt;
  opt.listen = "unix:" + sock_path;
  serve::Server server(service, opt);
  ASSERT_TRUE(server.address().is_unix);

  Client c(server.address());
  const core::PnpTuner ref = core::PnpTuner::load(*db_, path_edp_);
  for (int region = 0; region < db_->num_regions(); ++region)
    c.send_tune(static_cast<std::uint64_t>(region) + 1, proto::Op::Edp,
                serve::TuneRequest::edp(region));
  const auto replies = c.recv_n(static_cast<std::size_t>(db_->num_regions()));
  for (int region = 0; region < db_->num_regions(); ++region) {
    const auto& r = replies.at(static_cast<std::uint64_t>(region) + 1);
    ASSERT_EQ(r.status, proto::Status::Ok) << r.error;
    expect_result_eq(r.result,
                     reference(ref, 1, serve::TuneRequest::edp(region)),
                     static_cast<std::uint64_t>(region) + 1);
  }
}

// --- malformed-frame corpus --------------------------------------------------

TEST_F(ServerFixture, MalformedFramesRejectCleanlyWhileOthersKeepServing) {
  serve::TuningService service(*db_, path_a_);
  serve::ServerOptions opt;
  opt.max_frame_bytes = 1024;
  serve::Server server(service, opt);

  // The canary holds one connection open across the whole corpus and
  // must get a correct answer after every abuse.
  Client canary(server.address());
  const core::PnpTuner ref = core::PnpTuner::load(*db_, path_a_);
  const auto probe_canary = [&](std::uint64_t id) {
    canary.send_tune(id, proto::Op::Power, serve::TuneRequest::power(1, 0));
    const auto r = canary.recv();
    ASSERT_EQ(r.status, proto::Status::Ok) << r.error;
    expect_result_eq(r.result,
                     reference(ref, 1, serve::TuneRequest::power(1, 0)), id);
  };
  probe_canary(1);

  std::uint64_t malformed = 0;

  // (a) Truncated length prefix: 2 of 4 header bytes, then half-close.
  // The stream cannot resync -> error frame (id unknowable: 0), then EOF.
  {
    Client c(server.address());
    c.send_raw(std::string_view("\x02\x00", 2));
    c.sock.shutdown_write();
    const auto r = c.recv();
    EXPECT_EQ(r.status, proto::Status::Error);
    EXPECT_EQ(r.id, 0u);
    EXPECT_TRUE(c.eof());
    ++malformed;
    probe_canary(2);
  }

  // (b) Oversized length claim: rejected before allocation, connection
  // closed.
  {
    Client c(server.address());
    std::string header;
    wire::put_u32(header, opt.max_frame_bytes + 1);
    c.send_raw(header);
    const auto r = c.recv();
    EXPECT_EQ(r.status, proto::Status::Error);
    EXPECT_NE(r.error.find("exceeds"), std::string::npos) << r.error;
    EXPECT_TRUE(c.eof());
    ++malformed;
    probe_canary(3);
  }

  // (c) Mid-frame disconnect: a frame claiming 64 bytes delivers 10, then
  // the peer vanishes.
  {
    Client c(server.address());
    std::string partial;
    wire::put_u32(partial, 64);
    partial.append(10, 'x');
    c.send_raw(partial);
    c.sock.shutdown_write();
    EXPECT_EQ(c.recv().status, proto::Status::Error);
    EXPECT_TRUE(c.eof());
    ++malformed;
    probe_canary(4);
  }

  // (d) Unknown opcode: the frame boundary is intact, so the error frame
  // echoes the request id and the connection keeps serving.
  {
    Client c(server.address());
    std::string payload;
    wire::put_u64(payload, 77);
    wire::put_u8(payload, 9);
    net::send_frame(c.sock, payload);
    const auto r = c.recv();
    EXPECT_EQ(r.status, proto::Status::Error);
    EXPECT_EQ(r.id, 77u);
    EXPECT_NE(r.error.find("opcode"), std::string::npos) << r.error;
    ++malformed;
    c.send_tune(78, proto::Op::Power, serve::TuneRequest::power(0, 0));
    EXPECT_EQ(c.recv().status, proto::Status::Ok);  // same conn still serves
    probe_canary(5);
  }

  // (e) Garbage payload too short for even an id: error frame with id 0,
  // connection survives.
  {
    Client c(server.address());
    net::send_frame(c.sock, "abc");
    const auto r = c.recv();
    EXPECT_EQ(r.status, proto::Status::Error);
    EXPECT_EQ(r.id, 0u);
    ++malformed;
    // (f) Truncated arguments after a valid opcode.
    std::string payload;
    wire::put_u64(payload, 91);
    wire::put_u8(payload, static_cast<std::uint8_t>(proto::Op::Power));
    wire::put_u32(payload, 1);  // region present, cap_index missing
    net::send_frame(c.sock, payload);
    const auto r2 = c.recv();
    EXPECT_EQ(r2.status, proto::Status::Error);
    EXPECT_EQ(r2.id, 91u);
    ++malformed;
    // (g) Trailing bytes after a well-formed request.
    proto::Request q;
    q.id = 92;
    q.op = proto::Op::Edp;
    q.tune = serve::TuneRequest::edp(0);
    std::string enc = proto::encode_request(q);
    wire::put_u8(enc, 0xff);
    net::send_frame(c.sock, enc);
    const auto r3 = c.recv();
    EXPECT_EQ(r3.status, proto::Status::Error);
    EXPECT_EQ(r3.id, 92u);
    EXPECT_NE(r3.error.find("trailing"), std::string::npos) << r3.error;
    ++malformed;
    // (h) Empty payload.
    net::send_frame(c.sock, "");
    EXPECT_EQ(c.recv().status, proto::Status::Error);
    ++malformed;
    c.send_tune(93, proto::Op::Power, serve::TuneRequest::power(0, 0));
    EXPECT_EQ(c.recv().status, proto::Status::Ok);
    probe_canary(6);
  }

  const auto st = server.stats();
  EXPECT_EQ(st.malformed, malformed);
  EXPECT_EQ(st.shed, 0u);
  server.shutdown();
  EXPECT_TRUE(canary.eof());
}

// --- backpressure + drain (deterministic via the worker hook) ----------------

/// A gate the single worker parks on: the test learns when the worker
/// has dequeued a job (entered) and releases all executions at once.
struct WorkerGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  int entered = 0;

  serve::ServerOptions options(int queue_depth) {
    serve::ServerOptions o;
    o.workers = 1;
    o.queue_depth = queue_depth;
    o.test_hook_before_execute = [this] {
      std::unique_lock<std::mutex> lk(mu);
      ++entered;
      cv.notify_all();
      cv.wait(lk, [this] { return open; });
    };
    return o;
  }
  void wait_entered(int n) {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return entered >= n; });
  }
  void release() {
    std::lock_guard<std::mutex> lk(mu);
    open = true;
    cv.notify_all();
  }
};

TEST_F(ServerFixture, FullQueueShedsExplicitlyAndServesEveryAcceptedRequest) {
  serve::TuningService service(*db_, path_a_);
  WorkerGate gate;
  serve::Server server(service, gate.options(/*queue_depth=*/1));
  Client c(server.address());

  // id 1 occupies the (single) worker, id 2 fills the queue; the reader
  // is strictly sequential per connection, so ids 3..6 must shed.
  c.send_tune(1, proto::Op::Power, serve::TuneRequest::power(0, 0));
  gate.wait_entered(1);
  for (std::uint64_t id = 2; id <= 6; ++id)
    c.send_tune(id, proto::Op::Power, serve::TuneRequest::power(0, 1));
  // Shed replies arrive immediately, while the worker is still parked.
  auto shed = c.recv_n(4);
  for (std::uint64_t id = 3; id <= 6; ++id) {
    ASSERT_TRUE(shed.count(id)) << "expected shed frame for id " << id;
    EXPECT_EQ(shed[id].status, proto::Status::Shed);
  }
  // The reader counts a shed only after its frame is delivered, so the
  // out-of-band stats() API trails the frames we just read off the
  // socket by the reader's post-send increment — poll briefly. (In-band
  // stats requests never see the gap: the same reader thread increments
  // before it reads the next frame.)
  for (int spin = 0; spin < 10000 && server.stats().shed < 4; ++spin)
    std::this_thread::yield();
  EXPECT_EQ(server.stats().shed, 4u);

  gate.release();
  const auto done = c.recv_n(2);
  const core::PnpTuner ref = core::PnpTuner::load(*db_, path_a_);
  ASSERT_EQ(done.at(1).status, proto::Status::Ok);
  expect_result_eq(done.at(1).result,
                   reference(ref, 1, serve::TuneRequest::power(0, 0)), 1);
  ASSERT_EQ(done.at(2).status, proto::Status::Ok);
  expect_result_eq(done.at(2).result,
                   reference(ref, 1, serve::TuneRequest::power(0, 1)), 2);
  const auto st = server.stats();
  EXPECT_EQ(st.ok, 2u);
  EXPECT_EQ(st.shed, 4u);
  EXPECT_EQ(server.latency().count(), 2u);  // shed never reaches the histogram
}

TEST_F(ServerFixture, ShutdownDrainsEveryAcceptedRequestThenClosesCleanly) {
  serve::TuningService service(*db_, path_a_);
  WorkerGate gate;
  auto server = std::make_unique<serve::Server>(
      service, gate.options(/*queue_depth=*/4));
  const net::Address addr = server->address();
  Client c(addr);

  // Fill the pipeline: id 1 executing (parked on the gate — waited for,
  // so the queue is empty when the burst lands), 2..5 queued. The shed
  // frame for id 6 proves 2..5 were admitted (sequential reader) before
  // shutdown begins.
  c.send_tune(1, proto::Op::Power, serve::TuneRequest::power(1, 0));
  gate.wait_entered(1);
  for (std::uint64_t id = 2; id <= 6; ++id)
    c.send_tune(id, proto::Op::Power,
                serve::TuneRequest::power(static_cast<int>(id) % 10, 0));
  {
    const auto r = c.recv();
    EXPECT_EQ(r.id, 6u);
    EXPECT_EQ(r.status, proto::Status::Shed);
  }

  std::thread closer([&] { server->shutdown(); });
  gate.release();
  closer.join();

  // Every accepted request (1..5) answered ok, then EOF — zero lost.
  const auto replies = c.recv_n(5);
  const core::PnpTuner ref = core::PnpTuner::load(*db_, path_a_);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(replies.count(id)) << "accepted request " << id << " lost";
    ASSERT_EQ(replies.at(id).status, proto::Status::Ok);
    expect_result_eq(
        replies.at(id).result,
        reference(ref, 1,
                  serve::TuneRequest::power(static_cast<int>(id) % 10, 0)),
        id);
  }
  EXPECT_TRUE(c.eof());
  const auto st = server->stats();
  EXPECT_EQ(st.ok, 5u);
  EXPECT_EQ(st.shed, 1u);

  // The listener is gone: a fresh connect must fail.
  server.reset();
  EXPECT_THROW(net::connect_to(addr), Error);
}

}  // namespace
}  // namespace pnp
