/// \file bench_table2_model.cpp
/// Reproduces Table II (the model hyperparameters) and the §IV-B
/// transfer-learning claim: training the GNN on Haswell, then retraining
/// only the dense layers for Skylake, cuts training time ~4.18× (≈76%)
/// with comparable quality. The harness trains (1) the full model on
/// Haswell, (2) a from-scratch model on Skylake, (3) a transfer model on
/// Skylake with the imported, frozen Haswell GNN, and reports wall-clock
/// times, trainable-parameter counts, and train-set accuracies.

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/loocv.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

int main() {
  std::printf("=== Table II — Deep-learning model hyperparameters ===\n\n");
  Table t({"hyperparameter", "value"});
  t.add_row({"Layers", "RGCN (4), FCNN (3)"});
  t.add_row({"Activation", "LeakyReLU (GNN), ReLU (dense)"});
  t.add_row({"Optimizer", "AdamW (amsgrad) for power scenario, Adam for EDP"});
  t.add_row({"Learning rate", "0.001"});
  t.add_row({"Batch size", "16"});
  t.add_row({"Loss", "cross-entropy (factorized heads)"});
  t.add_row({"Node features", "token embedding + node-kind embedding"});
  t.add_row({"Relations", "control/data/call x fwd/bwd (6)"});
  std::printf("%s", t.to_string().c_str());

  std::printf("\n=== §IV-B — transfer learning Haswell -> Skylake ===\n\n");
  const auto haswell = hw::MachineModel::haswell();
  const auto skylake = hw::MachineModel::skylake();
  const sim::Simulator sim_h(haswell), sim_s(skylake);
  const auto space_h = core::SearchSpace::for_machine(haswell);
  const auto space_s = core::SearchSpace::for_machine(skylake);
  const auto regions = workloads::Suite::instance().all_regions();
  const core::MeasurementDb db_h(sim_h, space_h, regions);
  const core::MeasurementDb db_s(sim_s, space_s, regions);

  core::ExperimentOptions opt;
  opt.pnp.seed = 20230222;
  // Fixed-epoch training so the wall-clock comparison is apples-to-apples.
  opt.pnp.trainer.max_epochs = 25;
  opt.pnp.trainer.patience = 1000;
  opt.pnp.trainer.min_loss = 0.0;

  const auto rep = core::run_transfer_experiment(db_h, db_s, opt);

  Table x({"quantity", "from scratch", "transferred GNN"});
  x.add_row({"training time (s)", fmt_double(rep.full_target_seconds, 2),
             fmt_double(rep.transfer_target_seconds, 2)});
  x.add_row({"trainable weights", std::to_string(rep.full_trainable_weights),
             std::to_string(rep.transfer_trainable_weights)});
  x.add_row({"train accuracy", fmt_double(rep.full_accuracy, 3),
             fmt_double(rep.transfer_accuracy, 3)});
  std::printf("%s", x.to_string().c_str());
  std::printf(
      "\ntransfer speedup: %.2fx (paper: 4.18x, i.e. ~76%% less training "
      "time)\nsource (Haswell) full training took %.2fs\n",
      rep.speedup, rep.source_train_seconds);
  return 0;
}
