/// \file bench_fig6_edp.cpp
/// Reproduces Figure 6 (a: Skylake, b: Haswell): joint power-and-
/// configuration tuning for energy-delay product. Reports, per
/// application, the oracle-normalized EDP improvement of Default,
/// PnP (static), PnP (dynamic), BLISS, and OpenTuner, plus the prose
/// aggregates of §IV-C: static-variant geomean EDP improvement ≈ 1.85×
/// (Skylake) / 1.37× (Haswell), rising to ≈ 2.31× / 1.52× with counters;
/// within-5%-of-oracle in 45% (static) → 57% (dynamic) of cases.

#include <cstdio>

#include "report_utils.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

namespace {

void run_system(const hw::MachineModel& machine, std::uint64_t seed_tweak) {
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const core::MeasurementDb db(simulator, space,
                               workloads::Suite::instance().all_regions());
  auto opt = bench::default_experiment_options();
  opt.pnp.seed ^= seed_tweak;
  const auto res = core::run_edp_experiment(simulator, db, opt);

  // Per-app normalized EDP improvement (oracle = 1.0).
  std::printf("\n--- %s: normalized EDP improvement (oracle = 1.0) ---\n",
              machine.name.c_str());
  std::vector<std::string> header{"application", "Default"};
  std::vector<std::string> names;
  for (const auto& [n, c] : res.tuners) names.push_back(n);
  for (const auto& n : names) header.push_back(n);
  Table t(header);

  const std::size_t R = res.regions.size();
  std::vector<double> def_norm(R);
  std::map<std::string, std::vector<double>> tuner_norm;
  for (std::size_t r = 0; r < R; ++r) {
    const double edp_def = res.default_seconds[r] * res.default_joules[r];
    // improvement_X / improvement_oracle == oracle_edp / edp_X.
    def_norm[r] = res.oracle_edp[r] / edp_def;
    for (const auto& n : names) {
      const auto& c = res.tuners.at(n)[r];
      tuner_norm[n].push_back(res.oracle_edp[r] / (c.seconds * c.joules));
    }
  }
  const auto da = core::per_app_geomean(res.apps, def_norm);
  std::map<std::string, core::PerAppGeomean> ta;
  for (const auto& n : names)
    ta[n] = core::per_app_geomean(res.apps, tuner_norm[n]);
  for (std::size_t a = 0; a < da.apps.size(); ++a) {
    std::vector<std::string> row{da.apps[a], fmt_double(da.geomeans[a], 3)};
    for (const auto& n : names)
      row.push_back(fmt_double(ta[n].geomeans[a], 3));
    t.add_row(row);
  }
  std::printf("%s", t.to_string().c_str());

  std::printf("\n-- %s aggregates --\n", machine.name.c_str());
  for (const auto& n : names) {
    std::vector<double> improvement;
    for (std::size_t r = 0; r < R; ++r) {
      const auto& c = res.tuners.at(n)[r];
      improvement.push_back(
          core::edp_improvement(res.default_seconds[r] * res.default_joules[r],
                                c.seconds * c.joules));
    }
    std::printf(
        "  %-16s geomean EDP improvement over default@TDP: %.2fx  "
        "(>=0.95 oracle: %4.1f%%, >=0.80: %4.1f%%)\n",
        n.c_str(), geomean(improvement),
        100.0 * fraction_at_least(tuner_norm[n], 0.95),
        100.0 * fraction_at_least(tuner_norm[n], 0.80));
  }
  {
    std::vector<double> oracle_improvement;
    for (std::size_t r = 0; r < R; ++r)
      oracle_improvement.push_back(res.default_seconds[r] *
                                   res.default_joules[r] / res.oracle_edp[r]);
    std::printf("  %-16s geomean EDP improvement over default@TDP: %.2fx\n",
                "Oracle", geomean(oracle_improvement));
  }
}

}  // namespace

int main() {
  std::printf("=== Fig. 6 — EDP tuning (joint power + OpenMP config, LOOCV) ===\n");
  run_system(hw::MachineModel::skylake(), 0x6a);
  run_system(hw::MachineModel::haswell(), 0x6b);
  return 0;
}
