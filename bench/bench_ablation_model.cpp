/// \file bench_ablation_model.cpp
/// Ablations of the design choices DESIGN.md calls out (not a paper
/// artifact — §VII-adjacent "what mattered" analysis):
///
///   A. factorized heads (ours) vs one flat softmax over all
///      configurations (the paper's literal formulation);
///   B. full per-relation RGCN weights vs basis decomposition
///      (Schlichtkrull et al.'s regularizer);
///   C. static graphs only vs graphs + profiled counters (the paper's
///      §IV-B question, at ablation scale).
///
/// Scale: first 12 applications, scenario 1 LOOCV on the Haswell model —
/// small enough to run in about a minute, large enough to rank variants.

#include <cstdio>

#include "report_utils.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

namespace {

struct Variant {
  const char* name;
  core::PnpOptions opt;
};

double run_variant(const sim::Simulator& simulator,
                   const core::MeasurementDb& db, core::PnpOptions opt,
                   int max_apps, std::vector<double>& norms_out) {
  core::ExperimentOptions eopt;
  eopt.pnp = std::move(opt);
  eopt.max_apps = max_apps;
  eopt.run_pnp_dynamic = false;
  eopt.run_baselines = false;
  const auto res = core::run_power_experiment(simulator, db, eopt);
  const auto& cells = res.tuners.at(core::kPnpStatic);

  const auto by_app = core::regions_by_app(db);
  std::vector<double> norms;
  for (int a = 0; a < max_apps; ++a)
    for (int r : by_app[static_cast<std::size_t>(a)].second)
      for (std::size_t k = 0; k < res.caps.size(); ++k)
        norms.push_back(core::normalized_speedup(
            res.oracle_seconds[static_cast<std::size_t>(r)][k],
            cells[static_cast<std::size_t>(r)][k].seconds));
  norms_out = norms;
  return geomean(norms);
}

}  // namespace

int main() {
  std::printf("=== Model ablations (12-app LOOCV, Haswell, scenario 1) ===\n\n");
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const core::MeasurementDb db(simulator, space,
                               workloads::Suite::instance().all_regions());

  auto base = bench::default_experiment_options().pnp;
  base.trainer.max_epochs = 24;

  std::vector<Variant> variants;
  variants.push_back({"factored heads (default)", base});
  {
    auto v = base;
    v.factored_heads = false;
    variants.push_back({"flat 144-way softmax", v});
  }
  {
    auto v = base;
    v.num_bases = 3;
    variants.push_back({"basis decomposition (B=3)", v});
  }
  {
    auto v = base;
    v.use_counters = true;
    variants.push_back({"+ profiled counters", v});
  }
  {
    auto v = base;
    v.rgcn_layers = 1;
    variants.push_back({"1 RGCN layer (vs 4)", v});
  }

  Table t({"variant", "geomean norm. speedup", ">=0.95x oracle", "weights"});
  const int max_apps = 12;
  for (auto& v : variants) {
    std::vector<double> norms;
    const double gm = run_variant(simulator, db, v.opt, max_apps, norms);
    // Count weights of a representative (briefly trained) model.
    std::vector<int> some;
    for (int r = 0; r < 10; ++r) some.push_back(r);
    auto opt_probe = v.opt;
    opt_probe.trainer.max_epochs = 1;
    core::PnpTuner sized(db, opt_probe);
    sized.train_power_scenario(some);
    t.add_row({v.name, fmt_double(gm, 3),
               fmt_double(100.0 * fraction_at_least(norms, 0.95), 1) + "%",
               std::to_string(sized.net().num_weights())});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nreading: at this reduced scale the graph-only variants converge to "
      "the same\npredictions — the head/bases/depth choices trade weights, "
      "not accuracy — while\nprofiled counters add the magnitude information "
      "static graphs cannot carry\n(the paper's §IV-B finding).\n");
  return 0;
}
