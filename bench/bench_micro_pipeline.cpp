/// \file bench_micro_pipeline.cpp
/// google-benchmark micro-benchmarks for the library's substrates: IR
/// emission, graph construction (+ CSR tensor form), RGCN
/// forward/backward in steady-state training mode (reused workspaces, the
/// path train() drives), one full train epoch, simulator throughput,
/// exhaustive-sweep (oracle) cost, and per-run cost of the sampling
/// baselines. These quantify the §VI claim that a trained PnP tuner needs
/// *no* executions while BLISS/OpenTuner pay per region.
///
/// Besides the normal console output, the binary writes BENCH_micro.json
/// (kernel → ns/op) to the working directory — or to the path in the
/// PNP_BENCH_JSON environment variable — for CI artifact upload and the
/// before/after tables in docs/BENCHMARKS.md.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/latency_histogram.hpp"
#include "core/baselines.hpp"
#include "core/config_search.hpp"
#include "core/measurement_db.hpp"
#include "core/pnp_tuner.hpp"
#include "core/tuner_artifact.hpp"
#include "graph/builder.hpp"
#include "ir/extract.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "nn/trainer.hpp"
#include "serve/inference_engine.hpp"
#include "serve/tuning_service.hpp"
#include "workloads/generator.hpp"
#include "workloads/irgen.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

namespace {

const workloads::Application& gemm_app() {
  return *workloads::Suite::instance().find("gemm");
}

void BM_IrEmission(benchmark::State& state) {
  const auto& desc = gemm_app().regions[0].desc;
  for (auto _ : state) {
    auto m = workloads::emit_application("gemm", {desc});
    benchmark::DoNotOptimize(m.instruction_count());
  }
}
BENCHMARK(BM_IrEmission);

void BM_GenerateCorpus(benchmark::State& state) {
  // Procedural corpus sampling + IR emission + verification for 32
  // regions — the per-run setup cost of every cross-suite evaluation
  // (pnp_eval) and generated-load scenario.
  workloads::GeneratorOptions opt;
  opt.seed = 7;
  opt.num_regions = 32;
  const workloads::Generator gen(opt);
  for (auto _ : state) {
    const auto corpus = gen.generate();
    benchmark::DoNotOptimize(corpus.total_regions());
  }
}
BENCHMARK(BM_GenerateCorpus);

void BM_FlowGraphBuild(benchmark::State& state) {
  const auto one =
      ir::extract_function(gemm_app().module, gemm_app().regions[0].function);
  for (auto _ : state) {
    auto g = graph::build_flow_graph(one);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_FlowGraphBuild);

void BM_GraphTensorsBuild(benchmark::State& state) {
  // Vocabulary lookup + per-relation edge lists + the CSR message-passing
  // form (dst-sorted offsets, 1/deg) built once per graph.
  const auto one =
      ir::extract_function(gemm_app().module, gemm_app().regions[0].function);
  const auto fg = graph::build_flow_graph(one);
  const auto vocab = graph::Vocabulary::from_graphs({&fg});
  for (auto _ : state) {
    auto t = graph::to_tensors(fg, vocab);
    benchmark::DoNotOptimize(t.csr(0).num_edges());
  }
}
BENCHMARK(BM_GraphTensorsBuild);

void BM_SimulatorExpected(benchmark::State& state) {
  const sim::Simulator simulator(hw::MachineModel::haswell());
  const auto& desc = gemm_app().regions[0].desc;
  const sim::OmpConfig cfg{16, sim::Schedule::Dynamic, 64};
  for (auto _ : state)
    benchmark::DoNotOptimize(simulator.expected(desc, cfg, 60.0).seconds);
}
BENCHMARK(BM_SimulatorExpected);

void BM_ExhaustiveOracleSweep(benchmark::State& state) {
  // Cost of what the paper's oracle does for ONE region at one cap:
  // 127 candidate evaluations.
  const sim::Simulator simulator(hw::MachineModel::haswell());
  const auto space = core::SearchSpace::for_machine(hw::MachineModel::haswell());
  const auto& desc = gemm_app().regions[0].desc;
  for (auto _ : state) {
    double best = 1e300;
    for (int c = 0; c < space.num_candidates_per_cap(); ++c)
      best = std::min(best,
                      simulator.expected(desc, space.candidate(c), 60.0).seconds);
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_ExhaustiveOracleSweep);

void BM_BeamSearch(benchmark::State& state, int width) {
  // Model-guided decode over the extended, constraint-carrying space
  // (haswell: 2164 joint classes, 3 validity rules) in EDP mode — the
  // largest search the serving path ever runs. width < 0 scans the full
  // joint class grid (the exhaustive test oracle), width == 0 runs the
  // staged beam unpruned (exact), small widths show the sub-linear cost
  // the production fallback actually pays.
  static const core::SearchSpace space =
      core::SearchSpace::extended_for_machine(hw::MachineModel::haswell());
  static const std::vector<double> logits = [] {
    std::vector<double> v;
    std::uint64_t x = 0x2545f4914f6cdd1dull;  // deterministic pseudo-logits
    const int n = space.num_cap_classes() + space.num_thread_classes() +
                  space.num_schedule_classes() + space.num_chunk_classes();
    for (int i = 0; i < n; ++i) {
      x ^= x >> 12;
      x ^= x << 25;
      x ^= x >> 27;
      v.push_back(static_cast<double>((x * 0x2545f4914f6cdd1dull) >> 11) *
                      0x1p-52 -
                  1.0);
    }
    // Plant the per-head argmax on (lowest cap, highest thread count) —
    // a tuple the thread-per-watt rule prunes — so search_edp cannot take
    // its O(1) fast path and the rows below time the staged beam itself.
    v[0] = 8.0;
    v[static_cast<std::size_t>(space.num_cap_classes() +
                               space.num_thread_classes()) -
      1] = 8.0;
    return v;
  }();
  const std::span<const double> all(logits);
  const std::size_t np = static_cast<std::size_t>(space.num_cap_classes());
  const std::size_t nt = static_cast<std::size_t>(space.num_thread_classes());
  const std::size_t ns = static_cast<std::size_t>(space.num_schedule_classes());
  const std::size_t nc = static_cast<std::size_t>(space.num_chunk_classes());
  const auto cap = all.subspan(0, np), thr = all.subspan(np, nt),
             sch = all.subspan(np + nt, ns), chk = all.subspan(np + nt + ns, nc);
  for (auto _ : state) {
    const core::SearchChoice c =
        width < 0 ? core::exhaustive_edp<double>(space, cap, thr, sch, chk)
                  : core::search_edp<double>(space, cap, thr, sch, chk, width);
    benchmark::DoNotOptimize(c.score);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_BeamSearch, exhaustive, -1);
BENCHMARK_CAPTURE(BM_BeamSearch, full_width, 0);
BENCHMARK_CAPTURE(BM_BeamSearch, width4, 4);

nn::RgcnNetConfig table2_config(int vocab_size) {
  nn::RgcnNetConfig cfg;
  cfg.vocab_size = vocab_size;
  cfg.head_sizes = {6, 3, 8};
  cfg.extra_features = 0;
  return cfg;
}

void BM_RgcnForward(benchmark::State& state) {
  // Steady-state training mode: the encode/dense workspaces are reused
  // across passes (zero allocation), exactly as train() drives them.
  const auto one =
      ir::extract_function(gemm_app().module, gemm_app().regions[0].function);
  const auto fg = graph::build_flow_graph(one);
  const auto vocab = graph::Vocabulary::from_graphs({&fg});
  const auto tensors = graph::to_tensors(fg, vocab);
  nn::RgcnNet net(table2_config(vocab.size()));
  nn::RgcnNet::GnnCache gc;
  nn::RgcnNet::DenseCache dc;
  for (auto _ : state) {
    net.encode_into(tensors, gc);
    net.dense_forward_into(gc.readout, {}, dc);
    benchmark::DoNotOptimize(dc.logits[0]);
  }
}
BENCHMARK(BM_RgcnForward);

void BM_RgcnForwardBackward(benchmark::State& state) {
  const auto one =
      ir::extract_function(gemm_app().module, gemm_app().regions[0].function);
  const auto fg = graph::build_flow_graph(one);
  const auto vocab = graph::Vocabulary::from_graphs({&fg});
  const auto tensors = graph::to_tensors(fg, vocab);
  nn::RgcnNet net(table2_config(vocab.size()));
  nn::RgcnNet::GnnCache gc;
  nn::RgcnNet::DenseCache dc;
  std::vector<double> dlogits;
  for (auto _ : state) {
    net.encode_into(tensors, gc);
    net.dense_forward_into(gc.readout, {}, dc);
    dlogits.assign(dc.logits.size(), 0.1);
    const auto dr = net.dense_backward(dc, dlogits);
    net.gnn_backward(gc, dr);
    net.zero_grad();
    benchmark::DoNotOptimize(dc.logits[0]);
  }
}
BENCHMARK(BM_RgcnForwardBackward);

void BM_TrainEpoch(benchmark::State& state) {
  // One full training epoch (16 region graphs × 4 members, batch 16) —
  // the unit the LOOCV folds repeat tens of times per trained fold.
  const auto& suite = workloads::Suite::instance();
  std::vector<graph::FlowGraph> graphs;
  std::vector<const graph::FlowGraph*> graph_ptrs;
  const auto regions = suite.all_regions();
  for (int i = 0; i < 16 && i < static_cast<int>(regions.size()); ++i) {
    const auto& rr = regions[static_cast<std::size_t>(i)];
    const auto m = ir::extract_function(rr.app->module, rr.region->function);
    graphs.push_back(graph::build_flow_graph(m));
  }
  for (const auto& g : graphs) graph_ptrs.push_back(&g);
  const auto vocab = graph::Vocabulary::from_graphs(graph_ptrs);
  std::vector<graph::GraphTensors> tensors;
  for (const auto& g : graphs) tensors.push_back(graph::to_tensors(g, vocab));

  std::vector<nn::TrainSample> samples;
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    nn::TrainSample s;
    s.graph = &tensors[i];
    for (int mbr = 0; mbr < 4; ++mbr)
      s.members.push_back(nn::SampleMember{
          {}, {static_cast<int>(i) % 6, mbr % 3, (mbr + static_cast<int>(i)) % 8}});
    samples.push_back(std::move(s));
  }

  nn::TrainerConfig tc;
  tc.max_epochs = 1;
  tc.patience = 1000;
  tc.min_loss = 0.0;
  nn::RgcnNet net(table2_config(vocab.size()));
  auto opt = nn::Adam::adamw_amsgrad();
  for (auto _ : state) {
    const auto rep = nn::train(net, *opt, samples, tc);
    benchmark::DoNotOptimize(rep.final_loss);
  }
}
BENCHMARK(BM_TrainEpoch);

void BM_PnpInference(benchmark::State& state) {
  // Whole-pipeline inference cost for one unseen region: what replaces the
  // baselines' 20–40 sampled executions.
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  static const core::MeasurementDb db(
      simulator, space, workloads::Suite::instance().all_regions());
  core::PnpOptions opt;
  opt.trainer.max_epochs = 8;
  static core::PnpTuner tuner(db, opt);
  static bool trained = false;
  if (!trained) {
    std::vector<int> train;
    for (int r = 0; r < 40; ++r) train.push_back(r);
    tuner.train_power_scenario(train);
    trained = true;
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(tuner.predict_power(50, 1).threads);
}
BENCHMARK(BM_PnpInference);

/// Shared serving fixtures: one measurement db and ONE trained artifact
/// behind every serving benchmark, so the f64/f32 rows and the service
/// saturation curves all serve the same weights and differ only in the
/// dimension each benchmark varies (precision, thread count, shard mode).
const core::MeasurementDb& serving_db() {
  static const core::MeasurementDb* db = [] {
    const auto machine = hw::MachineModel::haswell();
    const sim::Simulator simulator(machine);
    return new core::MeasurementDb(
        simulator, core::SearchSpace::for_machine(machine),
        workloads::Suite::instance().all_regions());
  }();
  return *db;
}

const core::TunerArtifact& serving_artifact() {
  static const core::TunerArtifact* art = [] {
    core::PnpOptions opt;
    opt.trainer.max_epochs = 8;
    core::PnpTuner tuner(serving_db(), opt);
    std::vector<int> train;
    for (int r = 0; r < 40; ++r) train.push_back(r);
    tuner.train_power_scenario(train);
    return new core::TunerArtifact(tuner.to_artifact());
  }();
  return *art;
}

void BM_PredictBatch(benchmark::State& state, nn::Precision precision) {
  // Steady-state serving: a 64-query batch (16 regions × 4 caps) through
  // the InferenceEngine's arena-backed fast path. Each distinct graph is
  // encoded once ever (cached across batches) and the dense phase runs in
  // one planned workspace — compare the per-query cost (ns/op ÷ 64)
  // against BM_PnpInference, which re-encodes the graph on every call,
  // and the f32 row against the f64 row for the SIMD-width win.
  static serve::InferenceEngine* engines[2] = {nullptr, nullptr};
  const std::size_t pi = precision == nn::Precision::f32 ? 1 : 0;
  if (!engines[pi]) {
    serve::EngineOptions eopt;
    eopt.precision = precision;
    engines[pi] = new serve::InferenceEngine(
        core::PnpTuner::from_artifact(serving_db(), serving_artifact()), eopt);
  }
  serve::InferenceEngine& engine = *engines[pi];
  static const std::vector<serve::PowerQuery> queries = [] {
    std::vector<serve::PowerQuery> q;
    for (int r = 40; r < 56; ++r)
      for (int k = 0; k < serving_db().num_caps(); ++k) q.push_back({r, k});
    return q;
  }();
  for (auto _ : state) {
    auto out = engine.predict_power_batch(queries);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK_CAPTURE(BM_PredictBatch, f64, nn::Precision::f64);
BENCHMARK_CAPTURE(BM_PredictBatch, f32, nn::Precision::f32);

/// Saturation-curve body shared by the per-precision and sharded service
/// benchmarks: N caller threads issue single power queries against one
/// TuningService; items_per_second is the served query rate. Run at
/// 1/2/4/8 threads the curve shows where each serving mode saturates
/// (numbers in docs/BENCHMARKS.md).
void service_throughput(benchmark::State& state, serve::TuningService& svc) {
  // Round-robin over 16 held-out regions × all caps; offset per thread so
  // concurrent callers hit different shards.
  int i = state.thread_index() * 7;
  for (auto _ : state) {
    const serve::TuneRequest q = serve::TuneRequest::power(
        40 + (i % 16), i % serving_db().num_caps());
    ++i;
    benchmark::DoNotOptimize(svc.tune(q).config.threads);
  }
  state.SetItemsProcessed(state.iterations());
}

serve::TuningService& service_for(nn::Precision precision, int worker_shards) {
  const auto make = [](nn::Precision p, int shards) {
    serve::TuningServiceOptions sopt;
    sopt.precision = p;
    sopt.worker_shards = shards;
    return new serve::TuningService(
        core::PnpTuner::from_artifact(serving_db(), serving_artifact()), sopt);
  };
  static serve::TuningService* f64_svc = make(nn::Precision::f64, 0);
  static serve::TuningService* f32_svc = make(nn::Precision::f32, 0);
  static serve::TuningService* sharded_svc = make(nn::Precision::f64, 2);
  if (worker_shards > 0) return *sharded_svc;
  return precision == nn::Precision::f32 ? *f32_svc : *f64_svc;
}

void BM_ServiceThroughput(benchmark::State& state, nn::Precision precision,
                          int worker_shards) {
  service_throughput(state, service_for(precision, worker_shards));
}
BENCHMARK_CAPTURE(BM_ServiceThroughput, f64, nn::Precision::f64, 0)
    ->ThreadRange(1, 8)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_ServiceThroughput, f32, nn::Precision::f32, 0)
    ->ThreadRange(1, 8)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_ServiceThroughput, sharded, nn::Precision::f64, 2)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_HistogramRecord(benchmark::State& state) {
  // The per-request cost the network server pays to record one latency
  // sample into common::LatencyHistogram (one relaxed fetch_add per
  // counter, no locks). Run at 1/4 threads: the multi-threaded rate
  // shows the recording path stays wait-free under the worker pool.
  static LatencyHistogram hist;
  std::uint64_t v = 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(state.thread_index());
  for (auto _ : state) {
    v = v * 6364136223846793005ull + 1442695040888963407ull;
    hist.record((v >> 33) & 0xfffff);  // 0..1M ns, several octaves
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord)->Threads(1)->Threads(4)->UseRealTime();

void BM_BlissTuneOneRegion(benchmark::State& state) {
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const auto& desc = gemm_app().regions[0].desc;
  core::BaselineOptions opt;
  core::BlissTuner bliss(simulator, space, opt);
  for (auto _ : state)
    benchmark::DoNotOptimize(bliss.tune_at_cap(desc, 60.0).executions);
}
BENCHMARK(BM_BlissTuneOneRegion);

void BM_OpenTunerTuneOneRegion(benchmark::State& state) {
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const auto& desc = gemm_app().regions[0].desc;
  core::BaselineOptions opt;
  core::OpenTunerLike otl(simulator, space, opt);
  for (auto _ : state)
    benchmark::DoNotOptimize(otl.tune_at_cap(desc, 60.0).executions);
}
BENCHMARK(BM_OpenTunerTuneOneRegion);

/// Console output plus a kernel → ns/op map written as BENCH_micro.json
/// (or $PNP_BENCH_JSON) when the run finishes — the machine-readable
/// artifact CI uploads and docs/BENCHMARKS.md tables are built from.
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  // benchmark 1.8 replaced Run::error_occurred with Run::skipped; detect
  // whichever this libbenchmark has so the bench builds against both.
  template <class R, class = void>
  struct HasSkipped : std::false_type {};
  template <class R>
  struct HasSkipped<R, std::void_t<decltype(std::declval<const R&>().skipped)>>
      : std::true_type {};
  template <class R>
  static bool run_skipped(const R& run) {
    if constexpr (HasSkipped<R>::value)
      return static_cast<bool>(run.skipped);
    else
      return run.error_occurred;
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run_skipped(run) || run.run_type != Run::RT_Iteration) continue;
      const double ns = run.GetAdjustedRealTime();  // console unit is ns
      // Keep one entry per kernel (under --benchmark_repetitions every
      // repetition reports the same name — keep the fastest).
      bool found = false;
      for (auto& [name, best] : results_)
        if (name == run.benchmark_name()) {
          best = std::min(best, ns);
          found = true;
          break;
        }
      if (!found) results_.emplace_back(run.benchmark_name(), ns);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  /// Parse an existing flat `"name": number` map written by a previous
  /// run — the only shape this reporter ever produces — so a filtered run
  /// (--benchmark_filter=BM_Service.*) merges into the full kernel table
  /// instead of clobbering it down to the filtered subset. Anything that
  /// doesn't parse is skipped (the re-measured entries still land).
  static std::vector<std::pair<std::string, double>> read_existing(
      const std::string& path) {
    std::vector<std::pair<std::string, double>> out;
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (!f) return out;
    char line[512];
    while (std::fgets(line, sizeof line, f)) {
      const char* q1 = std::strchr(line, '"');
      if (!q1) continue;
      const char* q2 = std::strchr(q1 + 1, '"');
      if (!q2) continue;
      const char* colon = std::strchr(q2 + 1, ':');
      if (!colon) continue;
      char* end = nullptr;
      const double ns = std::strtod(colon + 1, &end);
      if (end == colon + 1) continue;
      out.emplace_back(std::string(q1 + 1, q2), ns);
    }
    std::fclose(f);
    return out;
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    const char* env_path = std::getenv("PNP_BENCH_JSON");
    const std::string path = env_path ? env_path : "BENCH_micro.json";
    // Merge by key: keep every previously recorded kernel, overwrite the
    // ones this run re-measured, append the new ones in run order.
    std::vector<std::pair<std::string, double>> merged = read_existing(path);
    for (const auto& [name, ns] : results_) {
      bool found = false;
      for (auto& [mname, mns] : merged)
        if (mname == name) {
          mns = ns;
          found = true;
          break;
        }
      if (!found) merged.emplace_back(name, ns);
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < merged.size(); ++i)
      std::fprintf(f, "  \"%s\": %.1f%s\n", merged[i].first.c_str(),
                   merged[i].second, i + 1 < merged.size() ? "," : "");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s (%zu kernels, %zu re-measured, ns/op)\n",
                 path.c_str(), merged.size(), results_.size());
  }

 private:
  std::vector<std::pair<std::string, double>> results_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonExportReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
