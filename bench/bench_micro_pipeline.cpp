/// \file bench_micro_pipeline.cpp
/// google-benchmark micro-benchmarks for the library's substrates: IR
/// emission, graph construction, RGCN forward/backward, simulator
/// throughput, exhaustive-sweep (oracle) cost, and per-run cost of the
/// sampling baselines. These quantify the §VI claim that a trained PnP
/// tuner needs *no* executions while BLISS/OpenTuner pay per region.

#include <benchmark/benchmark.h>

#include "core/baselines.hpp"
#include "core/measurement_db.hpp"
#include "core/pnp_tuner.hpp"
#include "graph/builder.hpp"
#include "ir/extract.hpp"
#include "nn/loss.hpp"
#include "nn/trainer.hpp"
#include "workloads/irgen.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

namespace {

const workloads::Application& gemm_app() {
  return *workloads::Suite::instance().find("gemm");
}

void BM_IrEmission(benchmark::State& state) {
  const auto& desc = gemm_app().regions[0].desc;
  for (auto _ : state) {
    auto m = workloads::emit_application("gemm", {desc});
    benchmark::DoNotOptimize(m.instruction_count());
  }
}
BENCHMARK(BM_IrEmission);

void BM_FlowGraphBuild(benchmark::State& state) {
  const auto one =
      ir::extract_function(gemm_app().module, gemm_app().regions[0].function);
  for (auto _ : state) {
    auto g = graph::build_flow_graph(one);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_FlowGraphBuild);

void BM_SimulatorExpected(benchmark::State& state) {
  const sim::Simulator simulator(hw::MachineModel::haswell());
  const auto& desc = gemm_app().regions[0].desc;
  const sim::OmpConfig cfg{16, sim::Schedule::Dynamic, 64};
  for (auto _ : state)
    benchmark::DoNotOptimize(simulator.expected(desc, cfg, 60.0).seconds);
}
BENCHMARK(BM_SimulatorExpected);

void BM_ExhaustiveOracleSweep(benchmark::State& state) {
  // Cost of what the paper's oracle does for ONE region at one cap:
  // 127 candidate evaluations.
  const sim::Simulator simulator(hw::MachineModel::haswell());
  const auto space = core::SearchSpace::for_machine(hw::MachineModel::haswell());
  const auto& desc = gemm_app().regions[0].desc;
  for (auto _ : state) {
    double best = 1e300;
    for (int c = 0; c < space.num_candidates_per_cap(); ++c)
      best = std::min(best,
                      simulator.expected(desc, space.candidate(c), 60.0).seconds);
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_ExhaustiveOracleSweep);

void BM_RgcnForward(benchmark::State& state) {
  const auto one =
      ir::extract_function(gemm_app().module, gemm_app().regions[0].function);
  const auto fg = graph::build_flow_graph(one);
  const auto vocab = graph::Vocabulary::from_graphs({&fg});
  const auto tensors = graph::to_tensors(fg, vocab);
  nn::RgcnNetConfig cfg;
  cfg.vocab_size = vocab.size();
  cfg.head_sizes = {6, 3, 8};
  cfg.extra_features = 0;
  nn::RgcnNet net(cfg);
  for (auto _ : state) {
    const auto dc = net.forward(tensors, {});
    benchmark::DoNotOptimize(dc.logits[0]);
  }
}
BENCHMARK(BM_RgcnForward);

void BM_RgcnForwardBackward(benchmark::State& state) {
  const auto one =
      ir::extract_function(gemm_app().module, gemm_app().regions[0].function);
  const auto fg = graph::build_flow_graph(one);
  const auto vocab = graph::Vocabulary::from_graphs({&fg});
  const auto tensors = graph::to_tensors(fg, vocab);
  nn::RgcnNetConfig cfg;
  cfg.vocab_size = vocab.size();
  cfg.head_sizes = {6, 3, 8};
  cfg.extra_features = 0;
  nn::RgcnNet net(cfg);
  for (auto _ : state) {
    const auto gc = net.encode(tensors);
    const auto dc = net.dense_forward(gc.readout, {});
    std::vector<double> dlogits(dc.logits.size(), 0.1);
    const auto dr = net.dense_backward(dc, dlogits);
    net.gnn_backward(gc, dr);
    net.zero_grad();
    benchmark::DoNotOptimize(dc.logits[0]);
  }
}
BENCHMARK(BM_RgcnForwardBackward);

void BM_PnpInference(benchmark::State& state) {
  // Whole-pipeline inference cost for one unseen region: what replaces the
  // baselines' 20–40 sampled executions.
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  static const core::MeasurementDb db(
      simulator, space, workloads::Suite::instance().all_regions());
  core::PnpOptions opt;
  opt.trainer.max_epochs = 8;
  static core::PnpTuner tuner(db, opt);
  static bool trained = false;
  if (!trained) {
    std::vector<int> train;
    for (int r = 0; r < 40; ++r) train.push_back(r);
    tuner.train_power_scenario(train);
    trained = true;
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(tuner.predict_power(50, 1).threads);
}
BENCHMARK(BM_PnpInference);

void BM_BlissTuneOneRegion(benchmark::State& state) {
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const auto& desc = gemm_app().regions[0].desc;
  core::BaselineOptions opt;
  core::BlissTuner bliss(simulator, space, opt);
  for (auto _ : state)
    benchmark::DoNotOptimize(bliss.tune_at_cap(desc, 60.0).executions);
}
BENCHMARK(BM_BlissTuneOneRegion);

void BM_OpenTunerTuneOneRegion(benchmark::State& state) {
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const auto& desc = gemm_app().regions[0].desc;
  core::BaselineOptions opt;
  core::OpenTunerLike otl(simulator, space, opt);
  for (auto _ : state)
    benchmark::DoNotOptimize(otl.tune_at_cap(desc, 60.0).executions);
}
BENCHMARK(BM_OpenTunerTuneOneRegion);

}  // namespace

BENCHMARK_MAIN();
