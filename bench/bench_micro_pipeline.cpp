/// \file bench_micro_pipeline.cpp
/// google-benchmark micro-benchmarks for the library's substrates: IR
/// emission, graph construction (+ CSR tensor form), RGCN
/// forward/backward in steady-state training mode (reused workspaces, the
/// path train() drives), one full train epoch, simulator throughput,
/// exhaustive-sweep (oracle) cost, and per-run cost of the sampling
/// baselines. These quantify the §VI claim that a trained PnP tuner needs
/// *no* executions while BLISS/OpenTuner pay per region.
///
/// Besides the normal console output, the binary writes BENCH_micro.json
/// (kernel → ns/op) to the working directory — or to the path in the
/// PNP_BENCH_JSON environment variable — for CI artifact upload and the
/// before/after tables in docs/BENCHMARKS.md.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/latency_histogram.hpp"
#include "core/baselines.hpp"
#include "core/measurement_db.hpp"
#include "core/pnp_tuner.hpp"
#include "graph/builder.hpp"
#include "ir/extract.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "nn/trainer.hpp"
#include "serve/inference_engine.hpp"
#include "serve/tuning_service.hpp"
#include "workloads/generator.hpp"
#include "workloads/irgen.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

namespace {

const workloads::Application& gemm_app() {
  return *workloads::Suite::instance().find("gemm");
}

void BM_IrEmission(benchmark::State& state) {
  const auto& desc = gemm_app().regions[0].desc;
  for (auto _ : state) {
    auto m = workloads::emit_application("gemm", {desc});
    benchmark::DoNotOptimize(m.instruction_count());
  }
}
BENCHMARK(BM_IrEmission);

void BM_GenerateCorpus(benchmark::State& state) {
  // Procedural corpus sampling + IR emission + verification for 32
  // regions — the per-run setup cost of every cross-suite evaluation
  // (pnp_eval) and generated-load scenario.
  workloads::GeneratorOptions opt;
  opt.seed = 7;
  opt.num_regions = 32;
  const workloads::Generator gen(opt);
  for (auto _ : state) {
    const auto corpus = gen.generate();
    benchmark::DoNotOptimize(corpus.total_regions());
  }
}
BENCHMARK(BM_GenerateCorpus);

void BM_FlowGraphBuild(benchmark::State& state) {
  const auto one =
      ir::extract_function(gemm_app().module, gemm_app().regions[0].function);
  for (auto _ : state) {
    auto g = graph::build_flow_graph(one);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_FlowGraphBuild);

void BM_GraphTensorsBuild(benchmark::State& state) {
  // Vocabulary lookup + per-relation edge lists + the CSR message-passing
  // form (dst-sorted offsets, 1/deg) built once per graph.
  const auto one =
      ir::extract_function(gemm_app().module, gemm_app().regions[0].function);
  const auto fg = graph::build_flow_graph(one);
  const auto vocab = graph::Vocabulary::from_graphs({&fg});
  for (auto _ : state) {
    auto t = graph::to_tensors(fg, vocab);
    benchmark::DoNotOptimize(t.csr(0).num_edges());
  }
}
BENCHMARK(BM_GraphTensorsBuild);

void BM_SimulatorExpected(benchmark::State& state) {
  const sim::Simulator simulator(hw::MachineModel::haswell());
  const auto& desc = gemm_app().regions[0].desc;
  const sim::OmpConfig cfg{16, sim::Schedule::Dynamic, 64};
  for (auto _ : state)
    benchmark::DoNotOptimize(simulator.expected(desc, cfg, 60.0).seconds);
}
BENCHMARK(BM_SimulatorExpected);

void BM_ExhaustiveOracleSweep(benchmark::State& state) {
  // Cost of what the paper's oracle does for ONE region at one cap:
  // 127 candidate evaluations.
  const sim::Simulator simulator(hw::MachineModel::haswell());
  const auto space = core::SearchSpace::for_machine(hw::MachineModel::haswell());
  const auto& desc = gemm_app().regions[0].desc;
  for (auto _ : state) {
    double best = 1e300;
    for (int c = 0; c < space.num_candidates_per_cap(); ++c)
      best = std::min(best,
                      simulator.expected(desc, space.candidate(c), 60.0).seconds);
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_ExhaustiveOracleSweep);

nn::RgcnNetConfig table2_config(int vocab_size) {
  nn::RgcnNetConfig cfg;
  cfg.vocab_size = vocab_size;
  cfg.head_sizes = {6, 3, 8};
  cfg.extra_features = 0;
  return cfg;
}

void BM_RgcnForward(benchmark::State& state) {
  // Steady-state training mode: the encode/dense workspaces are reused
  // across passes (zero allocation), exactly as train() drives them.
  const auto one =
      ir::extract_function(gemm_app().module, gemm_app().regions[0].function);
  const auto fg = graph::build_flow_graph(one);
  const auto vocab = graph::Vocabulary::from_graphs({&fg});
  const auto tensors = graph::to_tensors(fg, vocab);
  nn::RgcnNet net(table2_config(vocab.size()));
  nn::RgcnNet::GnnCache gc;
  nn::RgcnNet::DenseCache dc;
  for (auto _ : state) {
    net.encode_into(tensors, gc);
    net.dense_forward_into(gc.readout, {}, dc);
    benchmark::DoNotOptimize(dc.logits[0]);
  }
}
BENCHMARK(BM_RgcnForward);

void BM_RgcnForwardBackward(benchmark::State& state) {
  const auto one =
      ir::extract_function(gemm_app().module, gemm_app().regions[0].function);
  const auto fg = graph::build_flow_graph(one);
  const auto vocab = graph::Vocabulary::from_graphs({&fg});
  const auto tensors = graph::to_tensors(fg, vocab);
  nn::RgcnNet net(table2_config(vocab.size()));
  nn::RgcnNet::GnnCache gc;
  nn::RgcnNet::DenseCache dc;
  std::vector<double> dlogits;
  for (auto _ : state) {
    net.encode_into(tensors, gc);
    net.dense_forward_into(gc.readout, {}, dc);
    dlogits.assign(dc.logits.size(), 0.1);
    const auto dr = net.dense_backward(dc, dlogits);
    net.gnn_backward(gc, dr);
    net.zero_grad();
    benchmark::DoNotOptimize(dc.logits[0]);
  }
}
BENCHMARK(BM_RgcnForwardBackward);

void BM_TrainEpoch(benchmark::State& state) {
  // One full training epoch (16 region graphs × 4 members, batch 16) —
  // the unit the LOOCV folds repeat tens of times per trained fold.
  const auto& suite = workloads::Suite::instance();
  std::vector<graph::FlowGraph> graphs;
  std::vector<const graph::FlowGraph*> graph_ptrs;
  const auto regions = suite.all_regions();
  for (int i = 0; i < 16 && i < static_cast<int>(regions.size()); ++i) {
    const auto& rr = regions[static_cast<std::size_t>(i)];
    const auto m = ir::extract_function(rr.app->module, rr.region->function);
    graphs.push_back(graph::build_flow_graph(m));
  }
  for (const auto& g : graphs) graph_ptrs.push_back(&g);
  const auto vocab = graph::Vocabulary::from_graphs(graph_ptrs);
  std::vector<graph::GraphTensors> tensors;
  for (const auto& g : graphs) tensors.push_back(graph::to_tensors(g, vocab));

  std::vector<nn::TrainSample> samples;
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    nn::TrainSample s;
    s.graph = &tensors[i];
    for (int mbr = 0; mbr < 4; ++mbr)
      s.members.push_back(nn::SampleMember{
          {}, {static_cast<int>(i) % 6, mbr % 3, (mbr + static_cast<int>(i)) % 8}});
    samples.push_back(std::move(s));
  }

  nn::TrainerConfig tc;
  tc.max_epochs = 1;
  tc.patience = 1000;
  tc.min_loss = 0.0;
  nn::RgcnNet net(table2_config(vocab.size()));
  auto opt = nn::Adam::adamw_amsgrad();
  for (auto _ : state) {
    const auto rep = nn::train(net, *opt, samples, tc);
    benchmark::DoNotOptimize(rep.final_loss);
  }
}
BENCHMARK(BM_TrainEpoch);

void BM_PnpInference(benchmark::State& state) {
  // Whole-pipeline inference cost for one unseen region: what replaces the
  // baselines' 20–40 sampled executions.
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  static const core::MeasurementDb db(
      simulator, space, workloads::Suite::instance().all_regions());
  core::PnpOptions opt;
  opt.trainer.max_epochs = 8;
  static core::PnpTuner tuner(db, opt);
  static bool trained = false;
  if (!trained) {
    std::vector<int> train;
    for (int r = 0; r < 40; ++r) train.push_back(r);
    tuner.train_power_scenario(train);
    trained = true;
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(tuner.predict_power(50, 1).threads);
}
BENCHMARK(BM_PnpInference);

void BM_PredictBatch(benchmark::State& state) {
  // Steady-state serving: a 64-query batch (16 regions × 4 caps) through
  // the InferenceEngine. Each distinct graph is encoded once ever (cached
  // across batches) and all per-query buffers are reused — compare the
  // per-query cost (ns/op ÷ 64) against BM_PnpInference, which re-encodes
  // the graph on every call.
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  static const core::MeasurementDb db(
      simulator, space, workloads::Suite::instance().all_regions());
  static serve::InferenceEngine* engine = [] {
    core::PnpOptions opt;
    opt.trainer.max_epochs = 8;
    core::PnpTuner tuner(db, opt);
    std::vector<int> train;
    for (int r = 0; r < 40; ++r) train.push_back(r);
    tuner.train_power_scenario(train);
    return new serve::InferenceEngine(std::move(tuner));
  }();
  static const std::vector<serve::PowerQuery> queries = [] {
    std::vector<serve::PowerQuery> q;
    for (int r = 40; r < 56; ++r)
      for (int k = 0; k < db.num_caps(); ++k) q.push_back({r, k});
    return q;
  }();
  for (auto _ : state) {
    auto out = engine->predict_power_batch(queries);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_PredictBatch);

void BM_ServiceThroughput(benchmark::State& state) {
  // Concurrent serving throughput: N caller threads issue single power
  // queries against one TuningService (sharded encoding cache + admission
  // queue). Reported as queries/sec via items_per_second; compare 1/2/4
  // threads to see how coalescing and cache sharding hold up under
  // contention (numbers in docs/BENCHMARKS.md).
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  static const core::MeasurementDb db(
      simulator, space, workloads::Suite::instance().all_regions());
  static serve::TuningService* service = [] {
    core::PnpOptions opt;
    opt.trainer.max_epochs = 8;
    core::PnpTuner tuner(db, opt);
    std::vector<int> train;
    for (int r = 0; r < 40; ++r) train.push_back(r);
    tuner.train_power_scenario(train);
    return new serve::TuningService(std::move(tuner));
  }();
  // Round-robin over 16 held-out regions × all caps; offset per thread so
  // concurrent callers hit different shards.
  int i = state.thread_index() * 7;
  for (auto _ : state) {
    const serve::TuneRequest q =
        serve::TuneRequest::power(40 + (i % 16), i % db.num_caps());
    ++i;
    benchmark::DoNotOptimize(service->tune(q).config.threads);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceThroughput)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

void BM_HistogramRecord(benchmark::State& state) {
  // The per-request cost the network server pays to record one latency
  // sample into common::LatencyHistogram (one relaxed fetch_add per
  // counter, no locks). Run at 1/4 threads: the multi-threaded rate
  // shows the recording path stays wait-free under the worker pool.
  static LatencyHistogram hist;
  std::uint64_t v = 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(state.thread_index());
  for (auto _ : state) {
    v = v * 6364136223846793005ull + 1442695040888963407ull;
    hist.record((v >> 33) & 0xfffff);  // 0..1M ns, several octaves
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord)->Threads(1)->Threads(4)->UseRealTime();

void BM_BlissTuneOneRegion(benchmark::State& state) {
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const auto& desc = gemm_app().regions[0].desc;
  core::BaselineOptions opt;
  core::BlissTuner bliss(simulator, space, opt);
  for (auto _ : state)
    benchmark::DoNotOptimize(bliss.tune_at_cap(desc, 60.0).executions);
}
BENCHMARK(BM_BlissTuneOneRegion);

void BM_OpenTunerTuneOneRegion(benchmark::State& state) {
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const auto& desc = gemm_app().regions[0].desc;
  core::BaselineOptions opt;
  core::OpenTunerLike otl(simulator, space, opt);
  for (auto _ : state)
    benchmark::DoNotOptimize(otl.tune_at_cap(desc, 60.0).executions);
}
BENCHMARK(BM_OpenTunerTuneOneRegion);

/// Console output plus a kernel → ns/op map written as BENCH_micro.json
/// (or $PNP_BENCH_JSON) when the run finishes — the machine-readable
/// artifact CI uploads and docs/BENCHMARKS.md tables are built from.
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  // benchmark 1.8 replaced Run::error_occurred with Run::skipped; detect
  // whichever this libbenchmark has so the bench builds against both.
  template <class R, class = void>
  struct HasSkipped : std::false_type {};
  template <class R>
  struct HasSkipped<R, std::void_t<decltype(std::declval<const R&>().skipped)>>
      : std::true_type {};
  template <class R>
  static bool run_skipped(const R& run) {
    if constexpr (HasSkipped<R>::value)
      return static_cast<bool>(run.skipped);
    else
      return run.error_occurred;
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run_skipped(run) || run.run_type != Run::RT_Iteration) continue;
      const double ns = run.GetAdjustedRealTime();  // console unit is ns
      // Keep one entry per kernel (under --benchmark_repetitions every
      // repetition reports the same name — keep the fastest).
      bool found = false;
      for (auto& [name, best] : results_)
        if (name == run.benchmark_name()) {
          best = std::min(best, ns);
          found = true;
          break;
        }
      if (!found) results_.emplace_back(run.benchmark_name(), ns);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    const char* env_path = std::getenv("PNP_BENCH_JSON");
    const std::string path = env_path ? env_path : "BENCH_micro.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < results_.size(); ++i)
      std::fprintf(f, "  \"%s\": %.1f%s\n", results_[i].first.c_str(),
                   results_[i].second, i + 1 < results_.size() ? "," : "");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s (%zu kernels, ns/op)\n", path.c_str(),
                 results_.size());
  }

 private:
  std::vector<std::pair<std::string, double>> results_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonExportReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
