/// \file bench_fig2_haswell.cpp
/// Reproduces Figure 2: power-constrained tuning on the 16-core Haswell
/// model. For each of the four power caps (40/60/70/85 W) it reports, per
/// application, the geometric-mean oracle-normalized speedup of every
/// tuner (Default, PnP static, PnP dynamic, BLISS, OpenTuner), followed by
/// the aggregate statistics quoted in §IV-B (geomean speedups of
/// 1.19/1.12/1.13/1.14× for PnP; ≥0.95×-oracle hit rates; head-to-head
/// win rates vs BLISS and OpenTuner).

#include <cstdio>

#include "report_utils.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

int main() {
  std::printf("=== Fig. 2 — Power-constrained tuning (Haswell, LOOCV) ===\n\n");
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const core::MeasurementDb db(simulator, space,
                               workloads::Suite::instance().all_regions());

  auto opt = bench::default_experiment_options();
  const auto res = core::run_power_experiment(simulator, db, opt);

  for (std::size_t k = 0; k < res.caps.size(); ++k) {
    std::printf("\n--- normalized speedups at %.0f W (oracle = 1.0) ---\n",
                res.caps[k]);
    bench::print_power_chart(res, k);
  }
  bench::print_power_aggregates(res);
  return 0;
}
