/// \file bench_fig7_speedup_greenup.cpp
/// Reproduces Figure 7: the time and energy consequences of EDP tuning.
/// Per application, the speedup and greenup of each tuner's EDP-optimal
/// choice over the default configuration at TDP, plus the §IV-C prose
/// aggregates: PnP speeds up execution in ~84% of cases and reduces energy
/// in ~94%, with geomean speedup 1.27×/1.12× and greenup 1.40×/1.22× on
/// Skylake/Haswell (static variant).

#include <cstdio>

#include "report_utils.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

namespace {

void run_system(const hw::MachineModel& machine, std::uint64_t seed_tweak) {
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const core::MeasurementDb db(simulator, space,
                               workloads::Suite::instance().all_regions());
  auto opt = bench::default_experiment_options();
  opt.pnp.seed ^= seed_tweak;  // same seeds as bench_fig6: identical choices
  const auto res = core::run_edp_experiment(simulator, db, opt);

  const std::size_t R = res.regions.size();
  std::vector<std::string> names;
  for (const auto& [n, c] : res.tuners) names.push_back(n);

  for (const char* metric : {"speedup", "greenup"}) {
    const bool is_speedup = std::string(metric) == "speedup";
    std::printf("\n--- %s: %s over default@TDP ---\n", machine.name.c_str(),
                metric);
    std::vector<std::string> header{"application"};
    for (const auto& n : names) header.push_back(n);
    Table t(header);
    std::map<std::string, std::vector<double>> vals;
    for (std::size_t r = 0; r < R; ++r) {
      for (const auto& n : names) {
        const auto& c = res.tuners.at(n)[r];
        vals[n].push_back(is_speedup
                              ? core::speedup(res.default_seconds[r], c.seconds)
                              : core::greenup(res.default_joules[r], c.joules));
      }
    }
    std::map<std::string, core::PerAppGeomean> ta;
    for (const auto& n : names) ta[n] = core::per_app_geomean(res.apps, vals[n]);
    for (std::size_t a = 0; a < ta[names[0]].apps.size(); ++a) {
      std::vector<std::string> row{ta[names[0]].apps[a]};
      for (const auto& n : names)
        row.push_back(fmt_double(ta[n].geomeans[a], 3));
      t.add_row(row);
    }
    std::printf("%s", t.to_string().c_str());

    for (const auto& n : names) {
      const auto& v = vals[n];
      std::printf(
          "  %-16s geomean %.2fx | improved in %4.1f%% of regions | worst "
          "%.2fx\n",
          n.c_str(), geomean(v), 100.0 * fraction_at_least(v, 1.0),
          min_of(v));
    }
  }
}

}  // namespace

int main() {
  std::printf(
      "=== Fig. 7 — Speedups & greenups over default@TDP of EDP-tuned "
      "configurations ===\n");
  run_system(hw::MachineModel::skylake(), 0x6a);
  run_system(hw::MachineModel::haswell(), 0x6b);
  return 0;
}
