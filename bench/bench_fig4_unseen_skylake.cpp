/// \file bench_fig4_unseen_skylake.cpp
/// Reproduces Figure 4: tuning at *unseen* power constraints on Skylake.
/// For each test the target cap (75 W or 150 W) is excluded from training;
/// the model uses dynamic features (five profiled counters) plus the
/// normalized power cap as a scalar feature, and predicts at the held-out
/// cap under LOOCV. §IV-B reports ≥0.95× oracle in 64% and ≥0.80× in 85%
/// of cases across both systems, with Skylake geomean speedups of 1.29×
/// (150 W) and 1.36× (75 W) vs oracle 1.44× / 1.59×.

#include <cstdio>

#include "report_utils.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

namespace {

void report(const core::UnseenCapResult& res) {
  for (std::size_t hi = 0; hi < res.heldout_cap_indices.size(); ++hi) {
    const double cap =
        res.caps[static_cast<std::size_t>(res.heldout_cap_indices[hi])];
    std::printf("\n--- held-out cap %.0f W: normalized speedups ---\n", cap);
    Table t({"application", "Default", "PnP (dynamic)"});
    std::vector<double> dnorm, pnorm;
    for (std::size_t r = 0; r < res.regions.size(); ++r) {
      dnorm.push_back(core::normalized_speedup(res.oracle_seconds[hi][r],
                                               res.default_seconds[hi][r]));
      pnorm.push_back(core::normalized_speedup(res.oracle_seconds[hi][r],
                                               res.pnp[hi][r].seconds));
    }
    const auto da = core::per_app_geomean(res.apps, dnorm);
    const auto pa = core::per_app_geomean(res.apps, pnorm);
    for (std::size_t a = 0; a < da.apps.size(); ++a)
      t.add_row({da.apps[a], fmt_double(da.geomeans[a], 3),
                 fmt_double(pa.geomeans[a], 3)});
    std::printf("%s", t.to_string().c_str());

    std::vector<double> sp_pnp, sp_oracle;
    for (std::size_t r = 0; r < res.regions.size(); ++r) {
      sp_pnp.push_back(res.default_seconds[hi][r] / res.pnp[hi][r].seconds);
      sp_oracle.push_back(res.default_seconds[hi][r] /
                          res.oracle_seconds[hi][r]);
    }
    std::printf(
        "\ngeomean speedup over default: PnP %.2fx vs oracle %.2fx\n"
        "cases >=0.95x oracle: %.1f%%, >=0.80x oracle: %.1f%%\n",
        geomean(sp_pnp), geomean(sp_oracle),
        100.0 * fraction_at_least(pnorm, 0.95),
        100.0 * fraction_at_least(pnorm, 0.80));
  }
}

}  // namespace

int main() {
  std::printf(
      "=== Fig. 4 — Unseen power constraints (Skylake, counters + "
      "normalized-cap feature) ===\n");
  const auto machine = hw::MachineModel::skylake();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const core::MeasurementDb db(simulator, space,
                               workloads::Suite::instance().all_regions());
  auto opt = bench::default_experiment_options();
  opt.pnp.seed ^= 0xf4;
  const auto res = core::run_unseen_cap_experiment(simulator, db, opt);
  report(res);
  return 0;
}
