/// \file bench_motivating_example.cpp
/// Reproduces the §I motivating example as a table: the exhaustive sweep
/// of LULESH's ApplyAccelerationBoundaryConditionsForNodes kernel on the
/// Haswell model. Paper shape: best speedups fall from 7.54× (40 W) to
/// 1.67× (85 W); the most energy-efficient point is NOT the fastest
/// (race-to-halt violated); the EDP optimum sits at yet another
/// (config, cap) pair — here, like in the paper, at 60 W.

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/measurement_db.hpp"
#include "core/metrics.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

int main() {
  std::printf(
      "=== §I motivating example — LULESH ApplyAccelerationBC exhaustive "
      "sweep (Haswell) ===\n\n");
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const core::MeasurementDb db(simulator, space,
                               workloads::Suite::instance().all_regions());
  const int r = db.find_region("lulesh", "r3_apply_accel_bc");
  const int tdp = db.num_caps() - 1;
  const double t_def_tdp = db.at_default(r, tdp).seconds;
  const double e_def_tdp = db.at_default(r, tdp).joules;

  Table t({"cap(W)", "best-time config", "speedup vs default@cap",
           "speedup vs default@TDP", "greenup vs default@TDP"});
  for (int k = 0; k < db.num_caps(); ++k) {
    const int c = db.best_candidate_by_time(r, k);
    const auto& er = db.at(r, k, c);
    t.add_row({fmt_double(space.power_caps()[static_cast<std::size_t>(k)], 0),
               space.candidate(c).to_string(),
               fmt_double(db.at_default(r, k).seconds / er.seconds, 2) + "x",
               fmt_double(t_def_tdp / er.seconds, 2) + "x",
               fmt_double(e_def_tdp / er.joules, 2) + "x"});
  }
  std::printf("%s", t.to_string().c_str());

  // Energy-optimal and EDP-optimal points across the joint space.
  double best_e = 1e300;
  int be_cap = 0, be_c = 0;
  for (int k = 0; k < db.num_caps(); ++k)
    for (int c = 0; c < space.num_candidates_per_cap(); ++c)
      if (db.at(r, k, c).joules < best_e) {
        best_e = db.at(r, k, c).joules;
        be_cap = k;
        be_c = c;
      }
  const auto jb = db.best_by_edp(r);

  Table o({"objective", "config", "cap(W)", "speedup vs default@TDP",
           "greenup vs default@TDP"});
  const auto& er = db.at(r, be_cap, be_c);
  o.add_row({"min energy", space.candidate(be_c).to_string(),
             fmt_double(space.power_caps()[static_cast<std::size_t>(be_cap)], 0),
             fmt_double(t_def_tdp / er.seconds, 2) + "x",
             fmt_double(e_def_tdp / er.joules, 2) + "x"});
  const auto& jr = db.at(r, jb.cap_index, jb.candidate);
  o.add_row({"min EDP", space.candidate(jb.candidate).to_string(),
             fmt_double(space.power_caps()[static_cast<std::size_t>(jb.cap_index)], 0),
             fmt_double(t_def_tdp / jr.seconds, 2) + "x",
             fmt_double(e_def_tdp / jr.joules, 2) + "x"});
  const int bt = db.best_candidate_by_time(r, tdp);
  const auto& tr = db.at(r, tdp, bt);
  o.add_row({"min time@TDP", space.candidate(bt).to_string(),
             fmt_double(space.power_caps().back(), 0),
             fmt_double(t_def_tdp / tr.seconds, 2) + "x",
             fmt_double(e_def_tdp / tr.joules, 2) + "x"});
  std::printf("\n%s", o.to_string().c_str());

  std::printf(
      "\ntakeaway: optimizing for time, energy, and EDP yields different\n"
      "(configuration, power-cap) points — the premise of the PnP tuner.\n");
  return 0;
}
