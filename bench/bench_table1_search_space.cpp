/// \file bench_table1_search_space.cpp
/// Reproduces Table I: the tuning search space on both machines, with the
/// derived counts the paper quotes (504 regular configurations + 4
/// defaults = 508) and a sanity sweep showing the per-cap frequency
/// ceiling the RAPL model induces (the mechanism the whole study rests on).

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/search_space.hpp"
#include "hw/power.hpp"

using namespace pnp;

namespace {

void print_machine(const hw::MachineModel& m) {
  const auto s = core::SearchSpace::for_machine(m);
  std::printf("\n--- %s ---\n", m.name.c_str());

  Table t({"parameter", "values"});
  std::string caps, threads, chunks;
  for (double c : s.power_caps()) caps += fmt_double(c, 0) + "W ";
  for (int v : s.thread_values()) threads += std::to_string(v) + " ";
  for (int v : s.chunk_values()) chunks += std::to_string(v) + " ";
  t.add_row({"Power caps", caps});
  t.add_row({"Threads", threads});
  t.add_row({"Schedule", "static dynamic guided"});
  t.add_row({"Chunk sizes", chunks});
  t.add_row({"Default config", s.default_config().to_string()});
  std::printf("%s", t.to_string().c_str());

  std::printf(
      "regular configurations: %d per cap x %zu caps = %d; + %zu defaults "
      "= %d total\n",
      s.num_omp_configs(), s.power_caps().size(),
      s.num_omp_configs() * static_cast<int>(s.power_caps().size()),
      s.power_caps().size(), s.joint_size());

  std::printf("\nRAPL model: sustainable all-core frequency per cap\n");
  Table f({"cap(W)", "1 core", "quarter", "half", "all cores"});
  for (double cap : s.power_caps()) {
    const int all = m.total_cores();
    auto fr = [&](int cores) {
      const int sockets = (cores + m.cores_per_socket - 1) / m.cores_per_socket;
      return fmt_double(
          hw::PowerCapController::max_frequency_ghz(m, cap, cores, sockets), 1);
    };
    f.add_row({fmt_double(cap, 0), fr(1), fr(all / 4), fr(all / 2), fr(all)});
  }
  std::printf("%s", f.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("=== Table I — Search space for performance and power tuning ===\n");
  print_machine(hw::MachineModel::skylake());
  print_machine(hw::MachineModel::haswell());
  return 0;
}
