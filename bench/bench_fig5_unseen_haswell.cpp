/// \file bench_fig5_unseen_haswell.cpp
/// Reproduces Figure 5: tuning at *unseen* power constraints on Haswell
/// (held-out 40 W and 85 W), mirroring bench_fig4_unseen_skylake. §IV-B
/// reports Haswell geomean speedups of 1.13× (85 W) and 1.17× (40 W)
/// versus oracle speedups of 1.16× and 1.27×.

#include <cstdio>

#include "report_utils.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

int main() {
  std::printf(
      "=== Fig. 5 — Unseen power constraints (Haswell, counters + "
      "normalized-cap feature) ===\n");
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const core::MeasurementDb db(simulator, space,
                               workloads::Suite::instance().all_regions());
  auto opt = bench::default_experiment_options();
  opt.pnp.seed ^= 0xf5;
  const auto res = core::run_unseen_cap_experiment(simulator, db, opt);

  for (std::size_t hi = 0; hi < res.heldout_cap_indices.size(); ++hi) {
    const double cap =
        res.caps[static_cast<std::size_t>(res.heldout_cap_indices[hi])];
    std::printf("\n--- held-out cap %.0f W: normalized speedups ---\n", cap);
    Table t({"application", "Default", "PnP (dynamic)"});
    std::vector<double> dnorm, pnorm;
    for (std::size_t r = 0; r < res.regions.size(); ++r) {
      dnorm.push_back(core::normalized_speedup(res.oracle_seconds[hi][r],
                                               res.default_seconds[hi][r]));
      pnorm.push_back(core::normalized_speedup(res.oracle_seconds[hi][r],
                                               res.pnp[hi][r].seconds));
    }
    const auto da = core::per_app_geomean(res.apps, dnorm);
    const auto pa = core::per_app_geomean(res.apps, pnorm);
    for (std::size_t a = 0; a < da.apps.size(); ++a)
      t.add_row({da.apps[a], fmt_double(da.geomeans[a], 3),
                 fmt_double(pa.geomeans[a], 3)});
    std::printf("%s", t.to_string().c_str());

    std::vector<double> sp_pnp, sp_oracle;
    for (std::size_t r = 0; r < res.regions.size(); ++r) {
      sp_pnp.push_back(res.default_seconds[hi][r] / res.pnp[hi][r].seconds);
      sp_oracle.push_back(res.default_seconds[hi][r] /
                          res.oracle_seconds[hi][r]);
    }
    std::printf(
        "\ngeomean speedup over default: PnP %.2fx vs oracle %.2fx\n"
        "cases >=0.95x oracle: %.1f%%, >=0.80x oracle: %.1f%%\n",
        geomean(sp_pnp), geomean(sp_oracle),
        100.0 * fraction_at_least(pnorm, 0.95),
        100.0 * fraction_at_least(pnorm, 0.80));
  }
  return 0;
}
