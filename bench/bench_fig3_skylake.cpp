/// \file bench_fig3_skylake.cpp
/// Reproduces Figure 3: power-constrained tuning on the 32-core Skylake
/// model at 75/100/120/150 W — same protocol as Fig. 2 (the paper
/// additionally warm-starts Skylake training from the Haswell GNN; that
/// transfer-learning timing claim is reproduced by bench_table2_model).
/// §IV-B quotes PnP geomean speedups of 1.5/1.25/1.26/1.34× and ≥0.95×-
/// oracle in ~74% of cases (static) across both systems.

#include <cstdio>

#include "report_utils.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

int main() {
  std::printf("=== Fig. 3 — Power-constrained tuning (Skylake, LOOCV) ===\n\n");
  const auto machine = hw::MachineModel::skylake();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const core::MeasurementDb db(simulator, space,
                               workloads::Suite::instance().all_regions());

  auto opt = bench::default_experiment_options();
  opt.pnp.seed ^= 0x51;
  const auto res = core::run_power_experiment(simulator, db, opt);

  for (std::size_t k = 0; k < res.caps.size(); ++k) {
    std::printf("\n--- normalized speedups at %.0f W (oracle = 1.0) ---\n",
                res.caps[k]);
    bench::print_power_chart(res, k);
  }
  bench::print_power_aggregates(res);
  return 0;
}
