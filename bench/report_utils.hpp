#pragma once

/// \file report_utils.hpp
/// Shared reporting for the per-figure benchmark harnesses: per-application
/// oracle-normalized tables (the bar groups of Figs. 2–6) and the aggregate
/// statistics the paper quotes in prose (§IV-B/C).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/loocv.hpp"
#include "core/metrics.hpp"

namespace pnp::bench {

/// Default experiment options used by all figure harnesses: the Table II
/// model, shortened-but-sufficient training, and the paper's sampling
/// budgets for the baselines.
inline core::ExperimentOptions default_experiment_options() {
  core::ExperimentOptions opt;
  opt.pnp.trainer.max_epochs = 28;
  opt.pnp.trainer.patience = 6;
  opt.pnp.trainer.min_loss = 8e-2;
  opt.pnp.seed = 20230222;  // arXiv date of the paper
  opt.baselines.bliss_samples = 20;
  opt.baselines.opentuner_evals = 40;
  return opt;
}

/// Per-application geomean of oracle-normalized speedups for one tuner at
/// one cap (the height of one bar in Figs. 2–3).
inline std::vector<double> per_region_normalized(
    const core::Scenario1Result& res,
    const std::vector<std::vector<core::S1Cell>>& cells, std::size_t cap) {
  std::vector<double> out;
  out.reserve(res.regions.size());
  for (std::size_t r = 0; r < res.regions.size(); ++r)
    out.push_back(core::normalized_speedup(res.oracle_seconds[r][cap],
                                           cells[r][cap].seconds));
  return out;
}

/// Prints one figure chart: rows = applications, columns = tuners, values
/// = geomean oracle-normalized speedup of the app's regions at `cap`.
inline void print_power_chart(const core::Scenario1Result& res,
                              std::size_t cap) {
  std::vector<std::string> header{"application", "Default"};
  std::vector<std::string> tuner_names;
  for (const auto& [name, cells] : res.tuners) tuner_names.push_back(name);
  for (const auto& n : tuner_names) header.push_back(n);
  Table t(header);

  // Default normalized values.
  std::vector<double> def_norm;
  for (std::size_t r = 0; r < res.regions.size(); ++r)
    def_norm.push_back(core::normalized_speedup(res.oracle_seconds[r][cap],
                                                res.default_seconds[r][cap]));
  const auto def_apps = core::per_app_geomean(res.apps, def_norm);

  std::map<std::string, core::PerAppGeomean> tuner_apps;
  for (const auto& name : tuner_names)
    tuner_apps[name] = core::per_app_geomean(
        res.apps, per_region_normalized(res, res.tuners.at(name), cap));

  for (std::size_t a = 0; a < def_apps.apps.size(); ++a) {
    std::vector<std::string> row{def_apps.apps[a],
                                 fmt_double(def_apps.geomeans[a], 3)};
    for (const auto& name : tuner_names)
      row.push_back(fmt_double(tuner_apps[name].geomeans[a], 3));
    t.add_row(row);
  }
  std::printf("%s", t.to_string().c_str());
}

/// The aggregate lines the paper quotes: per-cap geomean speedups over the
/// default, oracle-normalized hit rates, and head-to-head win rates.
inline void print_power_aggregates(const core::Scenario1Result& res) {
  std::printf("\n-- aggregate geomean speedup over default, per cap --\n");
  Table t({"tuner", "cap1", "cap2", "cap3", "cap4", "overall"});
  {
    std::vector<std::string> row{"Oracle"};
    std::vector<double> all;
    for (std::size_t k = 0; k < res.caps.size(); ++k) {
      std::vector<double> sp;
      for (std::size_t r = 0; r < res.regions.size(); ++r)
        sp.push_back(res.default_seconds[r][k] / res.oracle_seconds[r][k]);
      row.push_back(fmt_double(geomean(sp), 2));
      all.insert(all.end(), sp.begin(), sp.end());
    }
    row.push_back(fmt_double(geomean(all), 2));
    t.add_row(row);
  }
  for (const auto& [name, cells] : res.tuners) {
    std::vector<std::string> row{name};
    std::vector<double> all;
    for (std::size_t k = 0; k < res.caps.size(); ++k) {
      std::vector<double> sp;
      for (std::size_t r = 0; r < res.regions.size(); ++r)
        sp.push_back(res.default_seconds[r][k] / cells[r][k].seconds);
      row.push_back(fmt_double(geomean(sp), 2));
      all.insert(all.end(), sp.begin(), sp.end());
    }
    row.push_back(fmt_double(geomean(all), 2));
    t.add_row(row);
  }
  std::printf("%s", t.to_string().c_str());

  std::printf("\n-- fraction of cases within 5%% of the oracle (>=0.95x) --\n");
  for (const auto& [name, cells] : res.tuners) {
    std::vector<double> norms;
    for (std::size_t k = 0; k < res.caps.size(); ++k) {
      const auto v = per_region_normalized(res, cells, k);
      norms.insert(norms.end(), v.begin(), v.end());
    }
    std::printf("  %-16s %5.1f%%   (>=0.80x: %5.1f%%)\n", name.c_str(),
                100.0 * fraction_at_least(norms, 0.95),
                100.0 * fraction_at_least(norms, 0.80));
  }

  // Head-to-head: PnP (static) vs baselines across all (region, cap) cells.
  auto win_rate = [&](const std::string& a, const std::string& b) {
    if (!res.tuners.count(a) || !res.tuners.count(b)) return -1.0;
    const auto& ca = res.tuners.at(a);
    const auto& cb = res.tuners.at(b);
    int wins = 0, total = 0;
    for (std::size_t r = 0; r < res.regions.size(); ++r) {
      for (std::size_t k = 0; k < res.caps.size(); ++k) {
        ++total;
        if (ca[r][k].seconds <= cb[r][k].seconds) ++wins;
      }
    }
    return 100.0 * wins / total;
  };
  const double vs_bliss = win_rate(core::kPnpStatic, core::kBliss);
  const double vs_ot = win_rate(core::kPnpStatic, core::kOpenTuner);
  if (vs_bliss >= 0.0)
    std::printf("\nPnP (static) at least as fast as BLISS in %.1f%% of cases\n",
                vs_bliss);
  if (vs_ot >= 0.0)
    std::printf("PnP (static) at least as fast as OpenTuner in %.1f%% of cases\n",
                vs_ot);

  // Sampling cost: the PnP tuner needs zero executions.
  std::printf("\n-- sampled executions per (region, cap) --\n");
  for (const auto& [name, cells] : res.tuners) {
    double total = 0.0;
    for (const auto& rr : cells)
      for (const auto& c : rr) total += c.executions;
    std::printf("  %-16s %.1f avg\n", name.c_str(),
                total / (static_cast<double>(res.regions.size()) *
                         static_cast<double>(res.caps.size())));
  }
}

}  // namespace pnp::bench
