/// \file pnp_served.cpp
/// The always-on network serving daemon: serve::Server over a
/// serve::TuningService, speaking the length-prefixed binary protocol of
/// docs/SERVING.md ("Network protocol") on a TCP or unix socket:
///
///   pnp_served --machine NAME[,NAME...] --model MODEL --listen ADDR
///              [--workers N] [--queue N] [--shards N] [--pin]
///              [--cache-stripes N] [--precision f64|f32] [--max-batch N]
///              [--batch-wait-us N] [--no-coalesce]
///              [--observe-log PATH] [--retrain-interval MS]
///              [--retrain-publish PATH] [--retrain-epochs N]
///              [--retrain-min-records N] [--retrain-min-gain X]
///
/// `--machine` takes one or more comma-separated machine names (haswell,
/// skylake, or gen:<seed>:<index> zoo specs, docs/HARDWARE.md). Each name
/// becomes one *tenant*: its own simulator, measurement db, and
/// TuningService, all serving the same artifact — so a multi-machine
/// daemon needs a fleet artifact whose fingerprint list admits every
/// tenant. Tune requests carry the tenant index on the wire; `reload`
/// broadcasts to every tenant, `observe` and the retraining loop bind
/// tenant 0.
///
/// `--shards N` puts the TuningService in worker-shard mode: N dedicated
/// serving threads, requests routed by region hash, one encoding-cache
/// stripe + arena workspace per worker (`--pin` additionally pins them to
/// cores). `--cache-stripes` sizes the encoding cache's lock striping on
/// the default (leader/follower) path. `--precision` overrides the
/// artifact's persisted serving tier.
///
/// `--observe-log PATH` opens (or creates) a core::MeasurementLog and
/// enables the `observe` opcode: clients stream real (region, config,
/// cap, runtime/energy) measurements, each durably appended before it is
/// acked. `--retrain-interval MS` additionally starts the
/// serve::RetrainController feedback loop (requires --observe-log and the
/// power scenario): every MS milliseconds, new log records are replayed
/// onto a private copy of the measurement db, a candidate is warm-started
/// from the incumbent's weights and fine-tuned, and it is published
/// through the zero-downtime reload path only if it beats the incumbent
/// on a held-out split. `--retrain-publish` names the candidate artifact
/// file (default: observe-log path + ".candidate"); `--retrain-epochs`
/// bounds each fine-tune; `--retrain-min-records` is the per-round
/// ingest floor; `--retrain-min-gain` is the gate's speedup margin.
///
/// ADDR is `unix:PATH` or `tcp:[HOST:]PORT` (`tcp:0` picks an ephemeral
/// loopback port; the bound address is printed to stderr as
/// `listening on …`). The daemon serves until SIGINT/SIGTERM, then drains
/// gracefully — the listener closes first, every accepted request
/// completes and flushes its reply, and a final summary (request counts
/// and the p50/p95/p99 tune latency) lands on stderr. Exit codes: 0
/// success (clean drain), 1 bad input (unreadable model, unbindable
/// address), 2 bad usage.

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "hw/machine_generator.hpp"
#include "serve/retrainer.hpp"
#include "serve/server.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

namespace {

struct Args {
  std::string machine = "haswell";
  std::string model_path;
  std::string listen;
  serve::ServerOptions server;
  serve::TuningServiceOptions service;
  std::string observe_log;
  int retrain_interval_ms = 0;  ///< 0 = feedback loop off
  serve::RetrainOptions retrain;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s --machine NAME[,NAME...] --model MODEL --listen ADDR\n"
      "     [--workers N] [--queue N] [--shards N] [--pin]\n"
      "     [--cache-stripes N] [--precision f64|f32] [--max-batch N]\n"
      "     [--batch-wait-us N] [--no-coalesce]\n"
      "     [--observe-log PATH] [--retrain-interval MS]\n"
      "     [--retrain-publish PATH] [--retrain-epochs N]\n"
      "     [--retrain-min-records N] [--retrain-min-gain X]\n"
      "ADDR: 'unix:PATH' or 'tcp:[HOST:]PORT' (tcp:0 = ephemeral port).\n"
      "--machine NAME[,NAME...]: one tenant per comma-separated machine\n"
      "(haswell, skylake, or gen:<seed>:<index>); multi-machine daemons\n"
      "need a fleet artifact.\n"
      "--shards N serves through N region-hash-routed worker shards;\n"
      "--precision overrides the artifact's serving tier.\n"
      "--observe-log enables the observe opcode; --retrain-interval\n"
      "starts the gated online-retraining loop (requires --observe-log).\n"
      "Serves until SIGINT/SIGTERM, then drains gracefully.\n",
      argv0);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (flag == "--machine") a.machine = value();
      else if (flag == "--model") a.model_path = value();
      else if (flag == "--listen") a.listen = value();
      else if (flag == "--workers")
        a.server.workers = parse_int(value(), "--workers", 1, 4096);
      else if (flag == "--queue")
        a.server.queue_depth = parse_int(value(), "--queue", 1, 1 << 20);
      else if (flag == "--shards")
        a.service.worker_shards = parse_int(value(), "--shards", 0, 4096);
      else if (flag == "--pin") a.service.pin_workers = true;
      else if (flag == "--cache-stripes")
        a.service.cache_shards = parse_int(value(), "--cache-stripes", 1, 4096);
      else if (flag == "--precision") {
        const std::string p = value();
        if (p == "f64") a.service.precision = nn::Precision::f64;
        else if (p == "f32") a.service.precision = nn::Precision::f32;
        else throw Error("bad --precision '" + p + "' (expected f64 or f32)");
      }
      else if (flag == "--max-batch")
        a.service.max_batch = parse_int(value(), "--max-batch", 1, 1 << 20);
      else if (flag == "--batch-wait-us")
        a.service.batch_wait = std::chrono::microseconds(
            parse_int(value(), "--batch-wait-us", 0, 60000000));
      else if (flag == "--no-coalesce") a.service.coalesce = false;
      else if (flag == "--observe-log") a.observe_log = value();
      else if (flag == "--retrain-interval")
        a.retrain_interval_ms =
            parse_int(value(), "--retrain-interval", 0, 86400000);
      else if (flag == "--retrain-publish") a.retrain.publish_path = value();
      else if (flag == "--retrain-epochs")
        a.retrain.fine_tune.max_epochs =
            parse_int(value(), "--retrain-epochs", 1, 100000);
      else if (flag == "--retrain-min-records")
        a.retrain.min_new_records = static_cast<std::uint64_t>(
            parse_int(value(), "--retrain-min-records", 0, 1 << 30));
      else if (flag == "--retrain-min-gain")
        a.retrain.min_speedup_gain = parse_double(value(), "--retrain-min-gain");
      else usage(argv[0]);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage(argv[0]);
  }
  if (a.model_path.empty() || a.listen.empty()) usage(argv[0]);
  if (a.retrain_interval_ms > 0 && a.observe_log.empty())
    throw Error("--retrain-interval requires --observe-log");
  a.server.listen = a.listen;
  a.retrain.log_path = a.observe_log;
  if (a.retrain.publish_path.empty() && !a.observe_log.empty())
    a.retrain.publish_path = a.observe_log + ".candidate";
  return a;
}

/// "--machine A,B,C" → one resolved MachineModel per tenant, in order.
std::vector<hw::MachineModel> machines_for(const std::string& spec) {
  std::vector<hw::MachineModel> out;
  std::istringstream is(spec);
  std::string name;
  while (std::getline(is, name, ',')) {
    PNP_CHECK_MSG(!name.empty(), "empty machine name in '" << spec << "'");
    out.push_back(hw::machine_by_name(name));
  }
  PNP_CHECK_MSG(!out.empty(), "no machine names in '" << spec << "'");
  return out;
}

// SIGINT/SIGTERM handshake: the handler writes one byte into a self-pipe
// (async-signal-safe); the main thread blocks reading it.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_signal(int) {
  const char b = 's';
  [[maybe_unused]] const ssize_t r = ::write(g_signal_pipe[1], &b, 1);
}

int run(const Args& a) {
  // Install the handlers before the server exists and starts accepting:
  // a signal delivered in that window must park in the self-pipe for the
  // drain below, not kill the daemon with the default disposition.
  PNP_CHECK_MSG(::pipe(g_signal_pipe) == 0, "cannot create signal pipe");
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  // One tenant per --machine name: its own simulator, measurement db,
  // and TuningService, all loading the same artifact. Tenant 0 is the
  // observe/retrain tenant. Construction order doubles as lifetime
  // order: sims outlive dbs outlive services outlive the server.
  const std::vector<hw::MachineModel> machines = machines_for(a.machine);
  std::vector<std::unique_ptr<sim::Simulator>> sims;
  std::vector<std::unique_ptr<core::MeasurementDb>> dbs;
  std::vector<std::unique_ptr<serve::TuningService>> services;
  for (const hw::MachineModel& m : machines) {
    sims.push_back(std::make_unique<sim::Simulator>(m));
    dbs.push_back(std::make_unique<core::MeasurementDb>(
        *sims.back(), core::SearchSpace::for_machine(m),
        workloads::Suite::instance().all_regions()));
    services.push_back(std::make_unique<serve::TuningService>(
        *dbs.back(), a.model_path, a.service));
  }
  serve::TuningService& service = *services.front();
  std::vector<serve::TuningService*> tenants;
  for (auto& s : services) tenants.push_back(s.get());

  std::unique_ptr<core::MeasurementLog> observe_log;
  std::unique_ptr<serve::RetrainController> retrainer;
  serve::ServerOptions server_opt = a.server;
  if (!a.observe_log.empty()) {
    observe_log = std::make_unique<core::MeasurementLog>(a.observe_log);
    server_opt.observe_log = observe_log.get();
  }
  if (a.retrain_interval_ms > 0) {
    serve::RetrainOptions ro = a.retrain;
    ro.verbose = true;
    retrainer = std::make_unique<serve::RetrainController>(*sims.front(),
                                                           service,
                                                           std::move(ro));
    server_opt.retrain_counters = [&retrainer] {
      const auto s = retrainer->stats();
      serve::protocol::RetrainCounters rc;
      rc.observed = s.observed;
      rc.attempts = s.attempts;
      rc.published = s.published;
      rc.rejected_gate = s.rejected_gate;
      rc.rejected_candidate = s.rejected_candidate;
      rc.rejected_log = s.rejected_log;
      rc.last_published_version = s.last_published_version;
      return rc;
    };
  }

  serve::Server server(tenants, server_opt);
  if (retrainer)
    retrainer->start(std::chrono::milliseconds(a.retrain_interval_ms));
  std::fprintf(stderr,
               "listening on %s (model %s v%llu %s, %zu tenants, %d workers, "
               "queue %d, %d shards)\n",
               server.address().to_string().c_str(), a.model_path.c_str(),
               static_cast<unsigned long long>(service.model_version()),
               nn::precision_name(service.precision()), tenants.size(),
               a.server.workers, a.server.queue_depth,
               service.worker_shards());

  char b;
  for (;;) {
    const ssize_t r = ::read(g_signal_pipe[0], &b, 1);
    if (r >= 0) break;  // got the handler's byte (or EOF — either way, stop)
    // Retry only the handler interrupting us mid-read; any other errno
    // (EBADF, ...) would busy-spin forever.
    PNP_CHECK_MSG(errno == EINTR, "signal pipe read failed");
  }
  std::fprintf(stderr, "draining...\n");
  // Stop the feedback loop before the drain: the final summary below must
  // not race a publish, and a round in flight completes first.
  if (retrainer) retrainer->stop();
  server.shutdown();

  const auto st = server.stats();
  const auto& h = server.latency();
  std::fprintf(stderr,
               "served %llu ok, %llu errors, %llu shed, %llu malformed over "
               "%llu connections\n",
               static_cast<unsigned long long>(st.ok),
               static_cast<unsigned long long>(st.errors),
               static_cast<unsigned long long>(st.shed),
               static_cast<unsigned long long>(st.malformed),
               static_cast<unsigned long long>(st.connections));
  if (h.count() > 0) {
    std::fprintf(stderr,
                 "tune latency (ns): p50<=%llu p95<=%llu p99<=%llu max=%llu\n",
                 static_cast<unsigned long long>(h.quantile_ns(0.50)),
                 static_cast<unsigned long long>(h.quantile_ns(0.95)),
                 static_cast<unsigned long long>(h.quantile_ns(0.99)),
                 static_cast<unsigned long long>(h.max_ns()));
  }
  if (observe_log)
    std::fprintf(stderr, "observe log %s: %llu records\n",
                 observe_log->path().c_str(),
                 static_cast<unsigned long long>(observe_log->size()));
  if (retrainer) {
    const auto rs = retrainer->stats();
    std::fprintf(stderr,
                 "retrain observed=%llu attempts=%llu published=%llu "
                 "rejected_gate=%llu rejected_candidate=%llu "
                 "rejected_log=%llu last_published_version=%llu\n",
                 static_cast<unsigned long long>(rs.observed),
                 static_cast<unsigned long long>(rs.attempts),
                 static_cast<unsigned long long>(rs.published),
                 static_cast<unsigned long long>(rs.rejected_gate),
                 static_cast<unsigned long long>(rs.rejected_candidate),
                 static_cast<unsigned long long>(rs.rejected_log),
                 static_cast<unsigned long long>(rs.last_published_version));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pnp_served: error: %s\n", e.what());
    return 1;
  }
}
