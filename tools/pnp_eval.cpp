/// \file pnp_eval.cpp
/// Cross-suite generalization harness CLI (docs/WORKLOADS.md):
///
///   pnp_eval --seed 7 --regions 64 [--machine haswell|skylake]
///            [--epochs N] [--max-per-app K] [--counters]
///            [--heads factored|dense] [--space table1|extended]
///            [--beam-width N] [--out FILE]
///
/// End-to-end flow: procedurally generate a corpus of --regions OpenMP
/// regions (workloads::Generator), build one MeasurementDb over paper
/// suite + generated corpus, then train/evaluate the §IV split axes via
/// core::Evaluator with predictions served through the batched
/// serve::InferenceEngine:
///
///   - unseen-app:          train on the 68 paper regions, test on every
///                          generated region (all apps unseen);
///   - unseen-family-<f>:   train on paper + all generated families but f,
///                          test on family f (one split per family
///                          present in the generated corpus);
///   - unseen-cap-low/high: train on paper regions at all caps but one
///                          (scalar cap feature + counters), test on the
///                          generated regions at the held-out cap;
///   - unseen-machine:      with --machines N --holdout-machines K, build
///                          a seeded hardware-zoo fleet (docs/HARDWARE.md),
///                          train one machine-conditioned tuner across the
///                          first N−K machines' tables, and score the v4
///                          fleet artifact on the K machines it never saw
///                          (the "machine_split" JSON block).
///
/// Output is one stable JSON document (schema "pnp-eval-v3", self-checked
/// with json_validate before writing): a pure function of the flags, so
/// two runs with the same arguments are byte-identical — serial and
/// OMP_NUM_THREADS-fixed PNP_PARALLEL builds included. CI runs it twice
/// and diffs.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/parse.hpp"
#include "core/evaluator.hpp"
#include "core/fleet.hpp"
#include "core/tuner_artifact.hpp"
#include "hw/machine_generator.hpp"
#include "serve/inference_engine.hpp"
#include "workloads/generator.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

namespace {

struct Args {
  std::uint64_t seed = 7;
  int regions = 64;
  int max_per_app = 4;
  int epochs = 12;
  bool counters = false;
  std::string machine = "haswell";
  std::string heads = "factored";  // factored | dense
  std::string space = "table1";    // table1 | extended
  int beam_width = 0;              // <= 0 = full-width (exact) search
  int machines = 0;                // 0 = no unseen-machine split
  int holdout_machines = 2;
  std::string out_path;  // empty = stdout
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--regions N] [--machine NAME]\n"
               "          [--epochs N] [--max-per-app N] [--counters]\n"
               "          [--heads factored|dense] [--space table1|extended]\n"
               "          [--beam-width N] [--machines N]\n"
               "          [--holdout-machines K] [--out FILE]\n"
               "machine names: haswell, skylake, or gen:<seed>:<index>\n"
               "--machines N adds the unseen-machine split over an N-machine\n"
               "generated fleet (table1 space only), holding out the last K\n",
               argv0);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (flag == "--seed") a.seed = parse_uint64(value(), "--seed");
      else if (flag == "--regions")
        a.regions = parse_int(value(), "--regions", 1, 100000);
      else if (flag == "--machine") a.machine = value();
      else if (flag == "--epochs")
        a.epochs = parse_int(value(), "--epochs", 1, 100000);
      else if (flag == "--max-per-app")
        a.max_per_app = parse_int(value(), "--max-per-app", 1, 100000);
      else if (flag == "--counters") a.counters = true;
      else if (flag == "--heads") a.heads = value();
      else if (flag == "--space") a.space = value();
      else if (flag == "--beam-width")
        a.beam_width = parse_int(value(), "--beam-width", 0, 1 << 20);
      else if (flag == "--machines")
        a.machines = parse_int(value(), "--machines", 2, 256);
      else if (flag == "--holdout-machines")
        a.holdout_machines = parse_int(value(), "--holdout-machines", 1, 255);
      else if (flag == "--out") a.out_path = value();
      else usage(argv[0]);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage(argv[0]);
  }
  if (a.machines > 0) {
    if (a.machines - a.holdout_machines < 1) {
      std::fprintf(stderr,
                   "--holdout-machines %d leaves no training machine out of "
                   "--machines %d\n",
                   a.holdout_machines, a.machines);
      usage(argv[0]);
    }
    if (a.space != "table1") {
      std::fprintf(stderr,
                   "--machines requires --space table1 (fleet machines share "
                   "one head layout only on the generic grid)\n");
      usage(argv[0]);
    }
  }
  return a;
}

core::SearchSpace space_for(const std::string& name,
                            const hw::MachineModel& m) {
  if (name == "table1") return core::SearchSpace::for_machine(m);
  if (name == "extended") return core::SearchSpace::extended_for_machine(m);
  throw Error("unknown space '" + name + "' (expected table1 or extended)");
}

bool factored_for(const std::string& heads) {
  if (heads == "factored") return true;
  if (heads == "dense") return false;
  throw Error("unknown heads '" + heads + "' (expected factored or dense)");
}

std::string hex_fingerprint(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

/// Serve one split's test grid through the batched engine, in the
/// row-major (region, cap) order core::Evaluator::score expects.
std::vector<sim::OmpConfig> predict_split(const core::Evaluator& evaluator,
                                          const core::EvalSplit& split,
                                          serve::InferenceEngine& engine,
                                          const std::vector<double>& caps_w) {
  const auto qs = evaluator.queries(split);
  if (split.train_cap_indices.empty()) {
    std::vector<serve::PowerQuery> pq;
    pq.reserve(qs.size());
    for (const auto& q : qs) pq.push_back({q.region, q.cap_index});
    return engine.predict_power_batch(pq);
  }
  // Held-out caps: one scalar-cap batch per evaluated cap, interleaved
  // back into query order (queries() is row-major test_regions × caps).
  const std::vector<int> eval_caps = evaluator.eval_caps(split);
  const std::size_t C = eval_caps.size();
  std::vector<sim::OmpConfig> configs(qs.size());
  for (std::size_t c = 0; c < C; ++c) {
    const auto out = engine.predict_power_at_batch(
        split.test_regions,
        caps_w[static_cast<std::size_t>(eval_caps[c])]);
    for (std::size_t r = 0; r < out.size(); ++r) configs[r * C + c] = out[r];
  }
  return configs;
}

void emit_metrics(JsonWriter& w, const core::SplitMetrics& m) {
  w.begin_object();
  w.key("queries").value(m.queries);
  w.key("geomean_speedup").value(m.geomean_speedup);
  w.key("geomean_normalized").value(m.geomean_normalized);
  w.key("oracle_match").value(m.oracle_match);
  w.end_object();
}

void emit_split(JsonWriter& w, const core::EvalSplit& split,
                const core::SplitResult& res, bool base_counters,
                const std::vector<double>& caps_w) {
  // Unseen-cap splits train with the scalar cap feature and counters
  // forced on (Evaluator::train, paper §IV-B recipe) regardless of
  // --counters; record the configuration actually used.
  const bool scalar_cap = !split.train_cap_indices.empty();
  w.begin_object();
  w.key("name").value(res.name);
  w.key("train_regions").value(res.num_train_regions);
  w.key("test_regions").value(res.num_test_regions);
  w.key("scalar_cap").value(scalar_cap);
  w.key("counters").value(base_counters || scalar_cap);
  w.key("eval_caps_w").begin_array();
  for (int k : res.eval_cap_indices)
    w.value(caps_w[static_cast<std::size_t>(k)]);
  w.end_array();
  w.key("overall");
  emit_metrics(w, res.overall);
  w.key("per_cap").begin_array();
  for (std::size_t i = 0; i < res.per_cap.size(); ++i) {
    w.begin_object();
    w.key("cap_w").value(
        caps_w[static_cast<std::size_t>(res.eval_cap_indices[i])]);
    w.key("metrics");
    emit_metrics(w, res.per_cap[i]);
    w.end_object();
  }
  w.end_array();
  w.key("per_app").begin_array();
  for (std::size_t i = 0; i < res.per_app_speedup.apps.size(); ++i) {
    w.begin_object();
    w.key("app").value(res.per_app_speedup.apps[i]);
    w.key("geomean_speedup").value(res.per_app_speedup.geomeans[i]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

int run(const Args& a) {
  const auto machine = hw::machine_by_name(a.machine);
  const sim::Simulator sim(machine);
  const auto space = space_for(a.space, machine);

  workloads::GeneratorOptions gopt;
  gopt.seed = a.seed;
  gopt.num_regions = a.regions;
  gopt.max_regions_per_app = a.max_per_app;
  const workloads::Generator generator(gopt);
  const workloads::Corpus generated = generator.generate();
  std::fprintf(stderr, "generated %zu applications / %zu regions (seed %llu)\n",
               generated.application_count(), generated.total_regions(),
               static_cast<unsigned long long>(a.seed));

  // One measurement db over both corpora: paper regions first, generated
  // regions after — split indices derive from application names.
  auto regions = workloads::Suite::instance().all_regions();
  const std::size_t paper_regions = regions.size();
  for (const auto& rr : generated.all_regions()) regions.push_back(rr);
  const core::MeasurementDb db(sim, space, regions);

  core::EvaluatorOptions eopt;
  eopt.pnp.trainer.max_epochs = a.epochs;
  eopt.pnp.use_counters = a.counters;
  eopt.pnp.seed = a.seed;
  eopt.pnp.factored_heads = factored_for(a.heads);
  const core::Evaluator evaluator(sim, db);

  const auto is_generated = [&](const std::string& app) {
    return workloads::Generator::family_of(app).has_value();
  };

  std::vector<core::EvalSplit> splits;
  splits.push_back(core::make_app_split(db, "unseen-app", is_generated));
  for (int f = 0; f < workloads::kNumFamilies; ++f) {
    const auto fam = static_cast<workloads::Family>(f);
    auto s = core::make_app_split(
        db, std::string("unseen-family-") + workloads::family_name(fam),
        [&](const std::string& app) {
          return workloads::Generator::family_of(app) == fam;
        });
    if (!s.test_regions.empty()) splits.push_back(std::move(s));
  }
  splits.push_back(core::with_heldout_cap(
      core::make_app_split(db, "unseen-cap-low", is_generated), 0,
      db.num_caps()));
  splits.push_back(core::with_heldout_cap(
      core::make_app_split(db, "unseen-cap-high", is_generated),
      db.num_caps() - 1, db.num_caps()));

  const auto& caps_w = space.power_caps();
  std::vector<core::SplitResult> results;
  core::Evaluator::PrecisionDelta pdelta;
  for (std::size_t i = 0; i < splits.size(); ++i) {
    const auto& split = splits[i];
    core::PnpTuner tuner = evaluator.train(split, eopt);
    std::vector<sim::OmpConfig> configs;
    if (i == 0) {
      // The unseen-app split doubles as the f32-tier acceptance gate:
      // stamp an f64 reference engine and an f32 candidate engine from
      // ONE artifact of the same trained model (an in-memory round trip —
      // exactly what reload deserializes), serve the identical grid
      // through both, and diff. The reference grid is also the split's
      // scored prediction set, so the f64 path stays the single source of
      // truth for the headline metrics.
      const core::TunerArtifact art = tuner.to_artifact();
      serve::EngineOptions ref_opt, f32_opt;
      ref_opt.precision = nn::Precision::f64;
      f32_opt.precision = nn::Precision::f32;
      ref_opt.beam_width = f32_opt.beam_width = a.beam_width;
      serve::InferenceEngine ref_engine(core::PnpTuner::from_artifact(db, art),
                                        ref_opt);
      serve::InferenceEngine f32_engine(core::PnpTuner::from_artifact(db, art),
                                        f32_opt);
      configs = predict_split(evaluator, split, ref_engine, caps_w);
      const auto f32_configs =
          predict_split(evaluator, split, f32_engine, caps_w);
      pdelta = evaluator.precision_delta(split, configs, f32_configs);
      std::fprintf(stderr,
                   "f32 tier: %d/%d flips (%.4f), max |dPower| %.4f W\n",
                   pdelta.flips, pdelta.queries, pdelta.flip_rate,
                   pdelta.max_abs_dpower_w);
    } else {
      serve::EngineOptions eng_opt;
      eng_opt.beam_width = a.beam_width;
      serve::InferenceEngine engine(std::move(tuner), eng_opt);
      configs = predict_split(evaluator, split, engine, caps_w);
    }
    results.push_back(evaluator.score(split, configs));
    const auto& res = results.back();
    std::fprintf(stderr,
                 "%-24s train=%d test=%d speedup=%.3f normalized=%.3f\n",
                 res.name.c_str(), res.num_train_regions, res.num_test_regions,
                 res.overall.geomean_speedup, res.overall.geomean_normalized);
  }

  // Unseen-machine split (docs/HARDWARE.md): a seeded fleet over the SAME
  // combined corpus, one machine-conditioned tuner trained across the
  // first N−K machines' tables, scored on the K held-out machines.
  std::unique_ptr<core::Fleet> fleet;
  std::vector<core::MachineSplitResult> machine_results;
  if (a.machines > 0) {
    fleet = std::make_unique<core::Fleet>(a.seed, a.machines, regions);
    const core::FleetEvaluator fleet_eval(*fleet);
    machine_results = fleet_eval.evaluate(a.holdout_machines, eopt.pnp);
    for (const auto& mr : machine_results)
      std::fprintf(stderr,
                   "unseen-machine %-18s speedup=%.3f normalized=%.3f\n",
                   mr.machine_name.c_str(), mr.overall.geomean_speedup,
                   mr.overall.geomean_normalized);
  }

  JsonWriter w;
  w.begin_object();
  w.key("schema").value("pnp-eval-v3");
  w.key("machine").value(a.machine);
  w.key("seed").value(static_cast<std::uint64_t>(a.seed));
  // Self-describing search-space block: the grid this run tuned over, how
  // the classifier scored it, and how much of it the constraint layer
  // prunes — so an archived report is interpretable without the flags.
  w.key("search_space").begin_object();
  w.key("space").value(a.space);
  w.key("heads").value(a.heads);
  w.key("beam_width").value(a.beam_width);
  w.key("caps").value(space.num_cap_classes());
  w.key("threads").value(space.num_thread_classes());
  w.key("schedules").value(space.num_schedule_classes());
  w.key("chunks").value(space.num_chunk_classes());
  w.key("joint_candidates").value(space.joint_size());
  w.key("constraint_rules").value(
      static_cast<std::int64_t>(space.constraints().size()));
  w.key("constraint_pruned").value(space.joint_invalid_count());
  w.end_object();
  w.key("generator").begin_object();
  w.key("regions").value(a.regions);
  w.key("max_regions_per_app").value(a.max_per_app);
  w.key("applications").value(
      static_cast<std::int64_t>(generated.application_count()));
  w.key("families").begin_object();
  {
    std::vector<int> counts(workloads::kNumFamilies, 0);
    for (const auto& app : generated.applications()) {
      const auto fam = workloads::Generator::family_of(app.name);
      if (fam)
        counts[static_cast<std::size_t>(*fam)] +=
            static_cast<int>(app.regions.size());
    }
    for (int f = 0; f < workloads::kNumFamilies; ++f)
      w.key(workloads::family_name(static_cast<workloads::Family>(f)))
          .value(counts[static_cast<std::size_t>(f)]);
  }
  w.end_object();
  w.end_object();
  w.key("corpus").begin_object();
  w.key("paper_regions").value(static_cast<std::int64_t>(paper_regions));
  w.key("generated_regions").value(
      static_cast<std::int64_t>(generated.total_regions()));
  w.key("total_regions").value(db.num_regions());
  w.end_object();
  w.key("training").begin_object();
  w.key("epochs").value(a.epochs);
  w.key("counters").value(a.counters);  // base flag; see per-split values
  w.end_object();
  if (fleet) {
    const hw::MachineGenerator gen(a.seed);
    w.key("machine_split").begin_object();
    w.key("fleet_seed").value(static_cast<std::uint64_t>(a.seed));
    w.key("machines").value(a.machines);
    w.key("holdout").value(a.holdout_machines);
    w.key("fleet").begin_array();
    for (int i = 0; i < fleet->size(); ++i) {
      const hw::MachineModel& m = fleet->machine(i);
      w.begin_object();
      w.key("index").value(i);
      w.key("name").value(m.name);
      w.key("archetype").value(hw::archetype_name(gen.archetype_of(i)));
      w.key("fingerprint").value(
          hex_fingerprint(hw::machine_fingerprint(m)));
      w.key("max_threads").value(m.max_threads());
      w.key("tdp_w").value(m.tdp_w);
      w.key("min_cap_w").value(m.min_cap_w);
      w.key("held_out").value(i >= fleet->size() - a.holdout_machines);
      w.end_object();
    }
    w.end_array();
    w.key("holdout_results").begin_array();
    for (const auto& mr : machine_results) {
      const auto& mcaps = fleet->db(mr.machine_index).space().power_caps();
      w.begin_object();
      w.key("index").value(mr.machine_index);
      w.key("name").value(mr.machine_name);
      w.key("fingerprint").value(hex_fingerprint(mr.fingerprint));
      w.key("overall");
      emit_metrics(w, mr.overall);
      w.key("per_cap").begin_array();
      for (std::size_t k = 0; k < mr.per_cap.size(); ++k) {
        w.begin_object();
        w.key("cap_w").value(mcaps[k]);
        w.key("metrics");
        emit_metrics(w, mr.per_cap[k]);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.key("precision_tier").begin_object();
  w.key("split").value(results.front().name);
  w.key("reference").value(nn::precision_name(nn::Precision::f64));
  w.key("candidate").value(nn::precision_name(nn::Precision::f32));
  w.key("queries").value(pdelta.queries);
  w.key("flips").value(pdelta.flips);
  w.key("flip_rate").value(pdelta.flip_rate);
  w.key("max_abs_dpower_w").value(pdelta.max_abs_dpower_w);
  w.key("max_abs_dtime_s").value(pdelta.max_abs_dtime_s);
  w.key("geomean_speedup_f64").value(pdelta.geomean_speedup_reference);
  w.key("geomean_speedup_f32").value(pdelta.geomean_speedup_candidate);
  w.end_object();
  w.key("splits").begin_array();
  for (std::size_t i = 0; i < results.size(); ++i)
    emit_split(w, splits[i], results[i], a.counters, caps_w);
  w.end_array();
  w.end_object();

  const std::string doc = w.str();
  std::string err;
  PNP_CHECK_MSG(json_validate(doc, &err), "pnp_eval JSON self-check: " << err);

  if (a.out_path.empty()) {
    std::cout << doc;
    PNP_CHECK_MSG(std::cout.good(), "writing to stdout failed");
  } else {
    std::ofstream os(a.out_path, std::ios::binary);
    PNP_CHECK_MSG(os.is_open(), "cannot open '" << a.out_path << "'");
    os << doc;
    os.flush();
    PNP_CHECK_MSG(os.good(), "writing '" << a.out_path << "' failed");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pnp_eval: error: %s\n", e.what());
    return 1;
  }
}
