/// \file pnp_loadgen.cpp
/// Seeded open-loop load generator for pnp_served (docs/SERVING.md,
/// docs/BENCHMARKS.md): replays a deterministic blend of power /
/// power_at / edp requests against a live daemon at a fixed arrival
/// rate, measures per-request latency client-side, and prints a summary
/// suitable for CI assertion:
///
///   pnp_loadgen --target ADDR [--seed S] [--requests N] [--rate R]
///               [--arrivals poisson|fixed] [--connections C]
///               [--blend power:W,power_at:W,edp:W,observe:W]
///               [--machine haswell|skylake] [--regions N] [--caps N]
///               [--precision f64|f32]
///               [--reload PATH --reload-after K] [--no-stats]
///               [--connect-timeout-ms T] [--recv-timeout-ms T] [--out FILE]
///
/// `--precision` records which serving tier the targeted daemon runs
/// (pnp_served --precision) in the summary header, so a sweep over both
/// tiers yields self-describing outputs; it changes no request bytes.
///
/// An `observe:W` blend weight mixes write-path traffic in: observe
/// requests carrying truthful (region, cap, config, runtime/energy)
/// measurements drawn from the same noiseless tables pnp_served builds
/// (`--machine` must match the daemon's), so an enabled feedback loop
/// (pnp_served --observe-log --retrain-interval) ingests real ground
/// truth. With observe weight 0 the planned request stream is
/// byte-identical to earlier versions of this tool for the same seed.
/// When `--no-stats` is absent the summary ends with a `p99_side_by_side`
/// line putting the client-observed and server-observed p99 next to each
/// other — the gap is the transport + queueing overhead the wire adds on
/// top of the service's own serve time.
///
/// Open loop: every request's send time is fixed up front by the arrival
/// process (Poisson or fixed-interval at `--rate` req/s, from `--seed`) —
/// senders do not wait for replies, so an overloaded server cannot slow
/// the offered load down; it must shed, and the summary counts exactly
/// how much. Requests round-robin over C connections, each with a sender
/// and a receiver thread; replies are matched to send timestamps by
/// request id. `--reload-after K` turns the K-th request into a hot
/// `reload` of the given artifact mid-run.
///
/// The request stream is a pure function of the flags; the latency
/// numbers of course are not. Exit codes: 0 success (shed and
/// request-level errors are *reported*, not fatal), 1 transport/protocol
/// failure (unreachable target, malformed reply, dropped connection),
/// 2 bad usage.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/latency_histogram.hpp"
#include "common/net.hpp"
#include "common/parse.hpp"
#include "common/rng.hpp"
#include "core/measurement_db.hpp"
#include "hw/machine_generator.hpp"
#include "serve/protocol.hpp"
#include "workloads/suite.hpp"

using namespace pnp;
namespace protocol = serve::protocol;

namespace {

struct Args {
  std::string target;
  std::string out_path;  // empty = stdout
  std::string machine = "haswell";  // observe blends: must match the daemon
  std::uint64_t seed = 7;
  int requests = 1000;
  double rate = 2000.0;  // offered req/s across all connections
  bool poisson = true;
  int connections = 4;
  std::string blend = "power:2,power_at:1";
  int regions = 10;
  int caps = 4;
  std::string precision;  // label only; empty = unspecified
  std::string reload_path;
  int reload_after = -1;
  int tenants = 1;  // daemon tenants; tune requests round-robin over them
  bool fetch_stats = true;
  int connect_timeout_ms = 5000;
  int recv_timeout_ms = 30000;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s --target ADDR [--seed S] [--requests N] [--rate R]\n"
      "     [--arrivals poisson|fixed] [--connections C]\n"
      "     [--blend power:W,power_at:W,edp:W,observe:W]\n"
      "     [--machine NAME] [--regions N] [--caps N] [--tenants N]\n"
      "     [--precision f64|f32]\n"
      "     [--reload PATH --reload-after K] [--no-stats]\n"
      "     [--connect-timeout-ms T] [--recv-timeout-ms T] [--out FILE]\n"
      "ADDR: 'unix:PATH' or 'tcp:HOST:PORT' of a running pnp_served.\n"
      "machine names: haswell, skylake, or gen:<seed>:<index>\n",
      argv0);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (flag == "--target") a.target = value();
      else if (flag == "--out") a.out_path = value();
      else if (flag == "--seed") a.seed = parse_uint64(value(), "--seed");
      else if (flag == "--requests")
        a.requests = parse_int(value(), "--requests", 1, 100000000);
      else if (flag == "--rate") {
        a.rate = parse_double(value(), "--rate");
        if (a.rate <= 0.0) usage(argv[0]);
      } else if (flag == "--arrivals") {
        const std::string v = value();
        if (v == "poisson") a.poisson = true;
        else if (v == "fixed") a.poisson = false;
        else usage(argv[0]);
      } else if (flag == "--connections")
        a.connections = parse_int(value(), "--connections", 1, 4096);
      else if (flag == "--machine") a.machine = value();
      else if (flag == "--blend") a.blend = value();
      else if (flag == "--regions")
        a.regions = parse_int(value(), "--regions", 1, 100000);
      else if (flag == "--caps")
        a.caps = parse_int(value(), "--caps", 1, 100000);
      else if (flag == "--tenants")
        a.tenants = parse_int(value(), "--tenants", 1, 256);
      else if (flag == "--precision") {
        a.precision = value();
        if (a.precision != "f64" && a.precision != "f32") usage(argv[0]);
      }
      else if (flag == "--reload") a.reload_path = value();
      else if (flag == "--reload-after")
        a.reload_after = parse_int(value(), "--reload-after", 0, 100000000);
      else if (flag == "--no-stats") a.fetch_stats = false;
      else if (flag == "--connect-timeout-ms")
        a.connect_timeout_ms =
            parse_int(value(), "--connect-timeout-ms", 1, 600000);
      else if (flag == "--recv-timeout-ms")
        a.recv_timeout_ms = parse_int(value(), "--recv-timeout-ms", 1, 600000);
      else usage(argv[0]);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage(argv[0]);
  }
  if (a.target.empty()) usage(argv[0]);
  if (!a.reload_path.empty() != (a.reload_after >= 0)) usage(argv[0]);
  if (a.reload_after >= a.requests) usage(argv[0]);
  return a;
}

/// Relative request-kind weights parsed from
/// "power:2,power_at:1,edp:0,observe:1".
struct Blend {
  int power = 0, power_at = 0, edp = 0, observe = 0;
  int total() const { return power + power_at + edp + observe; }
};

Blend parse_blend(const std::string& spec) {
  Blend b;
  std::istringstream is(spec);
  std::string part;
  while (std::getline(is, part, ',')) {
    const auto colon = part.find(':');
    PNP_CHECK_MSG(colon != std::string::npos,
                  "bad blend part '" << part << "' (expected kind:weight)");
    const std::string kind = part.substr(0, colon);
    const int w = parse_int(part.substr(colon + 1), "blend weight", 0, 1000000);
    if (kind == "power") b.power = w;
    else if (kind == "power_at") b.power_at = w;
    else if (kind == "edp") b.edp = w;
    else if (kind == "observe") b.observe = w;
    else throw Error("unknown blend kind '" + kind + "'");
  }
  PNP_CHECK_MSG(b.total() > 0, "blend '" << spec << "' has no positive weight");
  return b;
}

struct PlannedRequest {
  protocol::Request request;
  std::uint64_t offset_ns = 0;  ///< send time relative to run start
  bool is_tune = false;         ///< counted into the latency histogram
  bool is_observe = false;      ///< write-path; counted separately
};

/// The full seeded open-loop schedule: request i's kind/arguments and
/// arrival offset are a pure function of (seed, i). `obs_db` supplies
/// truthful measurement values for observe requests (non-null iff the
/// blend has observe weight); cap and candidate indices are derived from
/// the same single uniform draw every kind consumes, so a zero observe
/// weight leaves the stream byte-identical to earlier tool versions.
std::vector<PlannedRequest> plan(const Args& a, const Blend& blend,
                                 const core::MeasurementDb* obs_db) {
  Rng rng(a.seed);
  std::vector<PlannedRequest> out;
  out.reserve(static_cast<std::size_t>(a.requests));
  double t_ns = 0.0;
  const double mean_gap_ns = 1e9 / a.rate;
  for (int i = 0; i < a.requests; ++i) {
    // Arrival process first, so the timeline is independent of the blend.
    if (a.poisson) {
      const double u = rng.uniform();
      t_ns += -std::log(1.0 - u) * mean_gap_ns;
    } else {
      t_ns += mean_gap_ns;
    }
    PlannedRequest p;
    p.offset_ns = static_cast<std::uint64_t>(t_ns);
    p.request.id = static_cast<std::uint64_t>(i);
    if (i == a.reload_after) {
      p.request.op = protocol::Op::Reload;
      p.request.reload_path = a.reload_path;
      // Burn the draws a tune request would take so later requests are
      // unchanged by the reload's presence.
      rng.uniform_index(static_cast<std::size_t>(blend.total()));
      rng.uniform_index(static_cast<std::size_t>(a.regions));
      rng.uniform(0.0, 1.0);
      out.push_back(std::move(p));
      continue;
    }
    const int pick = static_cast<int>(
        rng.uniform_index(static_cast<std::size_t>(blend.total())));
    const int region =
        static_cast<int>(rng.uniform_index(static_cast<std::size_t>(a.regions)));
    const double draw = rng.uniform(0.0, 1.0);
    // Tenant routing is round-robin by request index — no extra rng draw,
    // so --tenants 1 leaves the planned stream identical to a pre-tenant
    // plan of the same seed.
    p.request.machine = static_cast<std::uint32_t>(i % a.tenants);
    if (pick < blend.power) {
      p.is_tune = true;
      p.request.op = protocol::Op::Power;
      p.request.tune = serve::TuneRequest::power(
          region, static_cast<int>(draw * a.caps));
    } else if (pick < blend.power + blend.power_at) {
      p.is_tune = true;
      p.request.op = protocol::Op::PowerAt;
      p.request.tune =
          serve::TuneRequest::power_at(region, 30.0 + draw * 60.0);
    } else if (pick < blend.power + blend.power_at + blend.edp) {
      p.is_tune = true;
      p.request.op = protocol::Op::Edp;
      p.request.tune = serve::TuneRequest::edp(region);
    } else {
      // Truthful observation of one grid cell: the cap index comes from
      // the draw's integer part over the cap axis, the candidate from the
      // fractional remainder — one draw, two independent uniforms.
      p.is_observe = true;
      p.request.op = protocol::Op::Observe;
      const int nr = obs_db->num_regions();
      const int r = region % nr;
      const int nc = obs_db->num_caps();
      const int nomp = obs_db->space().num_omp_configs();
      const double scaled = draw * nc;
      const int cap = std::min(nc - 1, static_cast<int>(scaled));
      const int cand =
          std::min(nomp - 1, static_cast<int>((scaled - cap) * nomp));
      const sim::ExecutionResult& res = obs_db->at(r, cap, cand);
      p.request.observe.region = r;
      p.request.observe.cap_w = obs_db->space().power_caps()[
          static_cast<std::size_t>(cap)];
      p.request.observe.config = obs_db->space().candidate(cand);
      p.request.observe.seconds = res.seconds;
      p.request.observe.joules = res.joules;
    }
    out.push_back(std::move(p));
  }
  return out;
}

/// One connection's worth of the run: a sender thread pacing the
/// schedule and a receiver thread matching replies to send timestamps.
struct ConnDriver {
  net::Socket sock;
  std::vector<const PlannedRequest*> mine;
  std::mutex mu;
  std::unordered_map<std::uint64_t, std::chrono::steady_clock::time_point>
      sent_at;
  LatencyHistogram latency;
  std::uint64_t ok = 0, errors = 0, shed = 0, reload_ok = 0, reload_errors = 0;
  std::uint64_t observe_ok = 0, observe_errors = 0;
  std::string failure;  ///< first transport/protocol failure, if any
  std::chrono::steady_clock::time_point last_reply;
};

enum class ReqKind : std::uint8_t { Control, Tune, Observe };

void sender_loop(ConnDriver& c, std::chrono::steady_clock::time_point start) {
  try {
    for (const PlannedRequest* p : c.mine) {
      std::this_thread::sleep_until(start +
                                    std::chrono::nanoseconds(p->offset_ns));
      const std::string payload = protocol::encode_request(p->request);
      {
        // Timestamp before the write so the measured latency includes
        // the full round trip; the map entry must exist before the reply
        // can possibly arrive.
        std::lock_guard<std::mutex> lk(c.mu);
        c.sent_at[p->request.id] = std::chrono::steady_clock::now();
      }
      net::send_frame(c.sock, payload);
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lk(c.mu);
    if (c.failure.empty()) c.failure = e.what();
  }
}

void receiver_loop(ConnDriver& c, const std::vector<ReqKind>& kind_by_id) {
  try {
    for (std::size_t n = 0; n < c.mine.size(); ++n) {
      const auto frame = net::recv_frame(c.sock);
      PNP_CHECK_MSG(frame.has_value(),
                    "server closed the connection " << n << " replies in, "
                    << c.mine.size() - n << " outstanding");
      const protocol::Response resp = protocol::decode_response(*frame);
      const auto now = std::chrono::steady_clock::now();
      std::chrono::steady_clock::time_point t0;
      {
        std::lock_guard<std::mutex> lk(c.mu);
        const auto it = c.sent_at.find(resp.id);
        PNP_CHECK_MSG(it != c.sent_at.end(),
                      "reply for unknown request id " << resp.id);
        t0 = it->second;
        c.sent_at.erase(it);
      }
      c.last_reply = now;
      const ReqKind kind = resp.id < kind_by_id.size() ? kind_by_id[resp.id]
                                                       : ReqKind::Control;
      const bool tune = kind == ReqKind::Tune;
      switch (resp.status) {
        case protocol::Status::Ok:
          (kind == ReqKind::Tune      ? c.ok
           : kind == ReqKind::Observe ? c.observe_ok
                                      : c.reload_ok)++;
          break;
        case protocol::Status::Error:
          (kind == ReqKind::Tune      ? c.errors
           : kind == ReqKind::Observe ? c.observe_errors
                                      : c.reload_errors)++;
          break;
        case protocol::Status::Shed:
          ++c.shed;
          break;
      }
      if (tune && resp.status != protocol::Status::Shed) {
        c.latency.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now - t0)
                .count()));
      }
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lk(c.mu);
    if (c.failure.empty()) c.failure = e.what();
  }
}

void print_quantiles(std::ostream& os, const char* label,
                     const LatencyHistogram& h) {
  os << label << " count=" << h.count();
  if (h.count() > 0) {
    os << " p50<=" << h.quantile_ns(0.50) << " p95<=" << h.quantile_ns(0.95)
       << " p99<=" << h.quantile_ns(0.99) << " max=" << h.max_ns() << " mean="
       << static_cast<std::uint64_t>(static_cast<double>(h.total_ns()) /
                                     static_cast<double>(h.count()));
  }
  os << "\n";
}

int run(const Args& a) {
  const Blend blend = parse_blend(a.blend);
  const net::Address target = net::Address::parse(a.target);

  // Observe blends carry real measurements: rebuild the daemon's own
  // noiseless tables (pnp_served uses the table-1 space + the full suite)
  // so every observation is ground truth for its grid cell.
  std::unique_ptr<core::MeasurementDb> obs_db;
  if (blend.observe > 0) {
    const hw::MachineModel machine = hw::machine_by_name(a.machine);
    const sim::Simulator sim(machine);
    obs_db = std::make_unique<core::MeasurementDb>(
        sim, core::SearchSpace::for_machine(machine),
        workloads::Suite::instance().all_regions());
  }

  const std::vector<PlannedRequest> schedule = plan(a, blend, obs_db.get());
  std::vector<ReqKind> kind_by_id(schedule.size(), ReqKind::Control);
  for (const auto& p : schedule)
    kind_by_id[p.request.id] = p.is_tune      ? ReqKind::Tune
                               : p.is_observe ? ReqKind::Observe
                                              : ReqKind::Control;

  // Connect every connection up front (retrying while a freshly started
  // daemon finishes binding), then fan the schedule out round-robin.
  std::vector<std::unique_ptr<ConnDriver>> conns;
  for (int c = 0; c < a.connections; ++c) {
    auto d = std::make_unique<ConnDriver>();
    d->sock = net::connect_to(target, a.connect_timeout_ms);
    d->sock.set_recv_timeout_ms(a.recv_timeout_ms);
    conns.push_back(std::move(d));
  }
  for (std::size_t i = 0; i < schedule.size(); ++i)
    conns[i % conns.size()]->mine.push_back(&schedule[i]);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> team;
  for (auto& c : conns) {
    team.emplace_back([&c, start] { sender_loop(*c, start); });
    team.emplace_back([&c, &kind_by_id] { receiver_loop(*c, kind_by_id); });
  }
  for (auto& t : team) t.join();

  // Aggregate in connection order: the merge is deterministic addition.
  LatencyHistogram latency;
  std::uint64_t ok = 0, errors = 0, shed = 0, reload_ok = 0, reload_errors = 0;
  std::uint64_t observe_ok = 0, observe_errors = 0;
  auto last_reply = start;
  for (auto& c : conns) {
    if (!c->failure.empty())
      throw Error("connection failed: " + c->failure);
    latency.merge(c->latency);
    ok += c->ok;
    errors += c->errors;
    shed += c->shed;
    reload_ok += c->reload_ok;
    reload_errors += c->reload_errors;
    observe_ok += c->observe_ok;
    observe_errors += c->observe_errors;
    if (c->last_reply > last_reply) last_reply = c->last_reply;
  }
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(last_reply -
                                                                start)
          .count();

  std::ostringstream os;
  os << "# pnp-loadgen-v1\n";
  os << "target=" << target.to_string() << " seed=" << a.seed
     << " requests=" << a.requests << " connections=" << a.connections
     << " rate=" << a.rate << " arrivals=" << (a.poisson ? "poisson" : "fixed")
     << " blend=power:" << blend.power << ",power_at:" << blend.power_at
     << ",edp:" << blend.edp << ",observe:" << blend.observe;
  if (!a.precision.empty()) os << " precision=" << a.precision;
  if (a.tenants > 1) os << " tenants=" << a.tenants;
  os << "\n";
  os << "sent=" << schedule.size() << " ok=" << ok << " errors=" << errors
     << " shed=" << shed << " reload_ok=" << reload_ok
     << " reload_errors=" << reload_errors << " observe_ok=" << observe_ok
     << " observe_errors=" << observe_errors << "\n";
  {
    char buf[64];
    std::snprintf(buf, sizeof buf, "elapsed_s=%.3f achieved_rps=%.1f",
                  elapsed_s,
                  elapsed_s > 0.0
                      ? static_cast<double>(schedule.size()) / elapsed_s
                      : 0.0);
    os << buf << "\n";
  }
  print_quantiles(os, "latency_ns", latency);

  if (a.fetch_stats) {
    // One final stats frame on a fresh connection: the server-side view
    // (its own histogram + the TuningService counters).
    net::Socket s = net::connect_to(target, a.connect_timeout_ms);
    s.set_recv_timeout_ms(a.recv_timeout_ms);
    protocol::Request q;
    q.id = schedule.size();
    q.op = protocol::Op::Stats;
    net::send_frame(s, protocol::encode_request(q));
    const auto frame = net::recv_frame(s);
    PNP_CHECK_MSG(frame.has_value(), "server closed before the stats reply");
    LatencyHistogram server_latency;
    const protocol::Response resp =
        protocol::decode_response(*frame, &server_latency);
    PNP_CHECK_MSG(resp.status == protocol::Status::Ok,
                  "stats request failed: " << resp.error);
    os << "server ok=" << resp.server.ok << " errors=" << resp.server.errors
       << " shed=" << resp.server.shed << " malformed=" << resp.server.malformed
       << " connections=" << resp.server.connections << "\n";
    os << "service requests=" << resp.service.requests
       << " batches=" << resp.service.batches
       << " coalesced=" << resp.service.coalesced
       << " encode_hits=" << resp.service.encode_hits
       << " encode_misses=" << resp.service.encode_misses
       << " reloads=" << resp.service.reloads
       << " failed_reloads=" << resp.service.failed_reloads << "\n";
    os << "retrain observed=" << resp.retrain.observed
       << " attempts=" << resp.retrain.attempts
       << " published=" << resp.retrain.published
       << " rejected_gate=" << resp.retrain.rejected_gate
       << " rejected_candidate=" << resp.retrain.rejected_candidate
       << " rejected_log=" << resp.retrain.rejected_log
       << " last_published_version=" << resp.retrain.last_published_version
       << "\n";
    print_quantiles(os, "server_latency_ns", server_latency);
    // Client p99 (full round trip) next to server p99 (admission→reply):
    // the difference is what the wire + reader/worker queueing add.
    if (latency.count() > 0 && server_latency.count() > 0) {
      const std::uint64_t client_p99 = latency.quantile_ns(0.99);
      const std::uint64_t server_p99 = server_latency.quantile_ns(0.99);
      os << "p99_side_by_side client_ns=" << client_p99
         << " server_ns=" << server_p99 << " transport_overhead_ns="
         << (client_p99 > server_p99 ? client_p99 - server_p99 : 0) << "\n";
    }
  }

  if (a.out_path.empty()) {
    std::cout << os.str();
    std::cout.flush();
  } else {
    std::ofstream f(a.out_path);
    PNP_CHECK_MSG(f.is_open(), "cannot open '" << a.out_path
                                               << "' for writing");
    f << os.str();
    f.flush();
    PNP_CHECK_MSG(f.good(), "writing '" << a.out_path << "' failed");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pnp_loadgen: error: %s\n", e.what());
    return 1;
  }
}
