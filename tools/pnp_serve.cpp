/// \file pnp_serve.cpp
/// Drive serve::TuningService from a request file with a configurable
/// thread pool and print a deterministic result grid (docs/SERVING.md):
///
///   pnp_serve --machine NAME --model MODEL --requests FILE
///             [--threads N] [--shards N] [--max-batch N]
///             [--batch-wait-us N] [--no-coalesce]
///             [--space table1|extended] [--beam-width N] [--out FILE]
///             [--observe-log PATH]
///
/// The request file holds one request per line ('#' starts a comment):
///
///   power    <region> <cap_index>
///   power_at <region> <cap_watts>      (scalar-cap models only)
///   edp      <region>
///   reload   <artifact-path>
///   observe  <region> <cap_watts> <threads> <sched> <chunk> <seconds> <joules>
///
/// Query lines are served concurrently by N pool threads. A `reload` line
/// is a barrier: all earlier requests drain, the model is swapped, and
/// later requests are served by the new version — so the printed grid,
/// including the per-request model-version tags, is a pure function of
/// the file and byte-identical across runs and thread counts (CI runs the
/// same file twice and diffs). An `observe` line (requires --observe-log)
/// is also a barrier: the measurement is validated against the serving
/// grid and durably appended to the core::MeasurementLog, feeding the
/// retraining loop of docs/SERVING.md "Model lifecycle" (`sched` is the
/// schedule index: 0=static, 1=dynamic, 2=guided). Exit codes: 0 success,
/// 1 bad input (unreadable model/request file, invalid request), 2 bad
/// usage.

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "core/measurement_log.hpp"
#include "hw/machine_generator.hpp"
#include "serve/tuning_service.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

namespace {

struct Args {
  std::string machine = "haswell";
  std::string model_path;
  std::string requests_path;
  std::string out_path;  // empty = stdout
  std::string space = "table1";  // table1 | extended
  std::string observe_log;  // empty = observe lines rejected
  int threads = 4;
  serve::TuningServiceOptions service;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s --machine NAME --model MODEL --requests FILE\n"
      "     [--threads N] [--shards N] [--max-batch N] [--batch-wait-us N]\n"
      "     [--no-coalesce] [--space table1|extended] [--beam-width N]\n"
      "     [--out FILE] [--observe-log PATH]\n"
      "request file lines: 'power R K' | 'power_at R WATTS' | 'edp R' |\n"
      "'reload PATH' (a barrier: drains, swaps the model, continues) |\n"
      "'observe R WATTS THREADS SCHED CHUNK SECONDS JOULES' (a barrier:\n"
      "validates + appends the measurement to --observe-log)\n"
      "machine names: haswell, skylake, or gen:<seed>:<index>\n",
      argv0);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (flag == "--machine") a.machine = value();
      else if (flag == "--model") a.model_path = value();
      else if (flag == "--requests") a.requests_path = value();
      else if (flag == "--out") a.out_path = value();
      else if (flag == "--threads")
        a.threads = parse_int(value(), "--threads", 1, 4096);
      else if (flag == "--shards")
        a.service.cache_shards = parse_int(value(), "--shards", 1, 4096);
      else if (flag == "--max-batch")
        a.service.max_batch = parse_int(value(), "--max-batch", 1, 1 << 20);
      else if (flag == "--batch-wait-us")
        a.service.batch_wait = std::chrono::microseconds(
            parse_int(value(), "--batch-wait-us", 0, 60000000));
      else if (flag == "--no-coalesce") a.service.coalesce = false;
      else if (flag == "--space") a.space = value();
      else if (flag == "--observe-log") a.observe_log = value();
      else if (flag == "--beam-width")
        a.service.beam_width = parse_int(value(), "--beam-width", 0, 1 << 20);
      else usage(argv[0]);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage(argv[0]);
  }
  if (a.model_path.empty() || a.requests_path.empty()) usage(argv[0]);
  return a;
}

core::SearchSpace space_for(const std::string& name,
                            const hw::MachineModel& m) {
  if (name == "table1") return core::SearchSpace::for_machine(m);
  if (name == "extended") return core::SearchSpace::extended_for_machine(m);
  throw Error("unknown space '" + name + "' (expected table1 or extended)");
}

struct Op {
  bool is_reload = false;
  bool is_observe = false;
  serve::TuneRequest request;       // query lines
  std::string reload_path;          // when is_reload
  core::MeasurementRecord observe;  // when is_observe
  int line = 0;
};

std::vector<Op> parse_requests(const std::string& path) {
  std::ifstream is(path);
  PNP_CHECK_MSG(is.is_open(), "cannot open request file '" << path << "'");
  std::vector<Op> ops;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank / comment-only line
    Op op;
    op.line = line_no;
    const auto fail = [&](const char* why) -> Error {
      return Error("request file line " + std::to_string(line_no) + ": " +
                   why + ": '" + line + "'");
    };
    if (kind == "power") {
      int region = 0, cap = 0;
      if (!(ls >> region >> cap)) throw fail("expected 'power R K'");
      op.request = serve::TuneRequest::power(region, cap);
    } else if (kind == "power_at") {
      int region = 0;
      double watts = 0.0;
      if (!(ls >> region >> watts)) throw fail("expected 'power_at R WATTS'");
      op.request = serve::TuneRequest::power_at(region, watts);
    } else if (kind == "edp") {
      int region = 0;
      if (!(ls >> region)) throw fail("expected 'edp R'");
      op.request = serve::TuneRequest::edp(region);
    } else if (kind == "reload") {
      std::string p;
      if (!(ls >> p)) throw fail("expected 'reload PATH'");
      op.is_reload = true;
      op.reload_path = p;
    } else if (kind == "observe") {
      int sched = 0;
      core::MeasurementRecord& m = op.observe;
      if (!(ls >> m.region >> m.cap_w >> m.config.threads >> sched >>
            m.config.chunk >> m.seconds >> m.joules))
        throw fail(
            "expected 'observe R WATTS THREADS SCHED CHUNK SECONDS JOULES'");
      if (sched < 0 || sched >= sim::kNumSchedules)
        throw fail("schedule index out of range");
      m.config.schedule = static_cast<sim::Schedule>(sched);
      op.is_observe = true;
    } else {
      throw fail("unknown request kind");
    }
    std::string extra;
    if (ls >> extra) throw fail("trailing tokens");
    ops.push_back(std::move(op));
  }
  PNP_CHECK_MSG(!ops.empty(), "request file '" << path << "' holds no requests");
  return ops;
}

/// Serve ops[seg_begin, seg_end) — all queries — with `threads` pool
/// threads pulling from a shared index. Results land in their op's slot,
/// so the output order is the file order regardless of scheduling.
void run_segment(serve::TuningService& service, const std::vector<Op>& ops,
                 std::size_t seg_begin, std::size_t seg_end, int threads,
                 std::vector<serve::TuneResult>& results,
                 std::vector<std::string>& errors) {
  std::atomic<std::size_t> next{seg_begin};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= seg_end) return;
      try {
        results[i] = service.tune(ops[i].request);
      } catch (const std::exception& e) {
        errors[i] = e.what();
      }
    }
  };
  const int pool = std::min<int>(
      threads, static_cast<int>(seg_end - seg_begin) > 0
                   ? static_cast<int>(seg_end - seg_begin)
                   : 1);
  std::vector<std::thread> team;
  team.reserve(static_cast<std::size_t>(pool));
  for (int t = 0; t < pool; ++t) team.emplace_back(worker);
  for (auto& th : team) th.join();
}

void print_grid(const std::vector<Op>& ops,
                const std::vector<serve::TuneResult>& results,
                std::ostream& os) {
  os << "# pnp-serve-v1\n";
  std::size_t req = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].is_reload) {
      os << "# reload -> v=" << results[i].model_version << "\n";
      continue;
    }
    if (ops[i].is_observe) {
      // Barrier ops park their result in the model_version slot: for an
      // observe that's the log sequence number of the appended record.
      os << "# observe -> seq=" << results[i].model_version << "\n";
      continue;
    }
    const serve::TuneRequest& q = ops[i].request;
    const serve::TuneResult& r = results[i];
    os << "req=" << req++ << " ";
    switch (q.kind) {
      case serve::TuneRequest::Kind::Power:
        os << "power region=" << q.region << " cap=" << q.cap_index;
        break;
      case serve::TuneRequest::Kind::PowerAt: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%g", q.cap_w);
        os << "power_at region=" << q.region << " cap_w=" << buf;
        break;
      }
      case serve::TuneRequest::Kind::Edp:
        os << "edp region=" << q.region;
        break;
    }
    os << " -> " << r.config.to_string();
    if (q.kind == serve::TuneRequest::Kind::Edp)
      os << " cap*=" << r.cap_index;
    os << " v=" << r.model_version << "\n";
  }
}

int run(const Args& a) {
  const auto machine = hw::machine_by_name(a.machine);
  const sim::Simulator sim(machine);
  const core::MeasurementDb db(sim, space_for(a.space, machine),
                               workloads::Suite::instance().all_regions());
  serve::TuningService service(db, a.model_path, a.service);
  std::fprintf(stderr, "serving %s v%llu with %d threads\n",
               a.model_path.c_str(),
               static_cast<unsigned long long>(service.model_version()),
               a.threads);

  const std::vector<Op> ops = parse_requests(a.requests_path);
  std::vector<serve::TuneResult> results(ops.size());
  std::vector<std::string> errors(ops.size());

  std::optional<core::MeasurementLog> observe_log;
  if (!a.observe_log.empty()) observe_log.emplace(a.observe_log);

  // Serve the file as segments between barriers (reload/observe lines):
  // every request before a barrier is answered by the old model, every
  // request after by the new one — which makes the version tags
  // deterministic. (The racy mid-stream reload path is exercised by
  // tests/service_test.cpp.)
  std::size_t seg_begin = 0;
  for (std::size_t i = 0; i <= ops.size(); ++i) {
    if (i < ops.size() && !ops[i].is_reload && !ops[i].is_observe) continue;
    run_segment(service, ops, seg_begin, i, a.threads, results, errors);
    if (i < ops.size() && ops[i].is_reload) {
      results[i].model_version = service.reload(ops[i].reload_path);
      std::fprintf(stderr, "reloaded %s -> v%llu\n",
                   ops[i].reload_path.c_str(),
                   static_cast<unsigned long long>(results[i].model_version));
    } else if (i < ops.size()) {
      PNP_CHECK_MSG(observe_log.has_value(),
                    "request file line " << ops[i].line
                                         << ": observe needs --observe-log");
      // Refuse off-grid measurements before anything becomes durable,
      // exactly like the network server's observe path.
      core::locate_observation(service.db(), ops[i].observe);
      results[i].model_version = observe_log->append(ops[i].observe);
    }
    seg_begin = i + 1;
  }

  for (std::size_t i = 0; i < ops.size(); ++i)
    if (!errors[i].empty())
      throw Error("request file line " + std::to_string(ops[i].line) +
                  " failed: " + errors[i]);

  if (a.out_path.empty()) {
    print_grid(ops, results, std::cout);
  } else {
    std::ofstream os(a.out_path);
    PNP_CHECK_MSG(os.is_open(), "cannot open '" << a.out_path
                                                << "' for writing");
    print_grid(ops, results, os);
    os.flush();
    PNP_CHECK_MSG(os.good(), "writing '" << a.out_path << "' failed");
  }

  const auto st = service.stats();
  std::fprintf(stderr,
               "served %llu requests in %llu batches (%llu coalesced), "
               "encodings %llu cached / %llu computed, %llu reloads\n",
               static_cast<unsigned long long>(st.requests),
               static_cast<unsigned long long>(st.batches),
               static_cast<unsigned long long>(st.coalesced),
               static_cast<unsigned long long>(st.encode_hits),
               static_cast<unsigned long long>(st.encode_misses),
               static_cast<unsigned long long>(st.reloads));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pnp_serve: error: %s\n", e.what());
    return 1;
  }
}
