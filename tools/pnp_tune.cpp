/// \file pnp_tune.cpp
/// End-to-end CLI for the persistence + serving workflow (docs/SERVING.md):
///
///   pnp_tune train   --machine haswell --scenario power --out model.pnp
///                    [--epochs N] [--predictions preds.txt]
///   pnp_tune predict --machine haswell --model model.pnp
///                    [--predictions preds.txt]
///   pnp_tune info    --model model.pnp
///
/// `train` trains a tuner on every region of the machine's measurement db,
/// saves the versioned artifact, and dumps the model's predictions for the
/// whole (region × cap) grid. `predict` reloads the artifact in a fresh
/// process and dumps the same grid through the batched InferenceEngine —
/// the two dumps must be byte-identical (CI diffs them). `info` prints the
/// artifact metadata without needing a measurement db.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "core/tuner_artifact.hpp"
#include "hw/machine_generator.hpp"
#include "serve/inference_engine.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

namespace {

struct Args {
  std::string command;
  std::string machine = "haswell";
  std::string scenario = "power";
  std::string model_path;
  std::string predictions_path;  // empty = stdout
  int epochs = 12;
  bool scalar_cap = false;
  std::string precision;  // empty = keep the artifact's default (f64)
  std::string heads = "factored";  // factored | dense
  std::string space = "table1";    // table1 | extended
  int beam_width = 0;              // <= 0 = full-width (exact) search
};

nn::Precision precision_for(const std::string& name) {
  if (name == "f64") return nn::Precision::f64;
  if (name == "f32") return nn::Precision::f32;
  throw Error("unknown precision '" + name + "' (expected f64 or f32)");
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s train   --machine NAME --scenario power|edp\n"
               "             --out MODEL [--epochs N] [--scalar-cap]\n"
               "             [--precision f64|f32] [--heads factored|dense]\n"
               "             [--space table1|extended] [--beam-width N]\n"
               "             [--predictions FILE]\n"
               "  %s predict --machine NAME --model MODEL\n"
               "             [--space table1|extended] [--beam-width N]\n"
               "             [--predictions FILE]\n"
               "  %s info    --model MODEL\n"
               "machine names: haswell, skylake, or gen:<seed>:<index>\n",
               argv0, argv0, argv0);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  Args a;
  a.command = argv[1];
  try {
    for (int i = 2; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (flag == "--machine") a.machine = value();
      else if (flag == "--scenario") a.scenario = value();
      else if (flag == "--out" || flag == "--model") a.model_path = value();
      else if (flag == "--predictions") a.predictions_path = value();
      else if (flag == "--epochs")
        a.epochs = parse_int(value(), "--epochs", 1, 100000);
      else if (flag == "--scalar-cap") a.scalar_cap = true;
      else if (flag == "--precision") a.precision = value();
      else if (flag == "--heads") a.heads = value();
      else if (flag == "--space") a.space = value();
      else if (flag == "--beam-width")
        a.beam_width = parse_int(value(), "--beam-width", 0, 1 << 20);
      else usage(argv[0]);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage(argv[0]);
  }
  return a;
}

core::SearchSpace space_for(const std::string& name,
                            const hw::MachineModel& m) {
  if (name == "table1") return core::SearchSpace::for_machine(m);
  if (name == "extended") return core::SearchSpace::extended_for_machine(m);
  throw Error("unknown space '" + name + "' (expected table1 or extended)");
}

bool factored_for(const std::string& heads) {
  if (heads == "factored") return true;
  if (heads == "dense") return false;
  throw Error("unknown heads '" + heads + "' (expected factored or dense)");
}

/// Dump predictions over the full query grid in a stable text format —
/// the train-process and fresh-process outputs are diffed byte for byte.
void dump_predictions(serve::InferenceEngine& engine, std::ostream& os) {
  const core::MeasurementDb& db = engine.tuner().db();
  if (engine.tuner().mode() == core::PnpTuner::Mode::Power) {
    std::vector<serve::PowerQuery> queries;
    for (int r = 0; r < db.num_regions(); ++r)
      for (int k = 0; k < db.num_caps(); ++k) queries.push_back({r, k});
    const auto configs = engine.predict_power_batch(queries);
    for (std::size_t i = 0; i < queries.size(); ++i)
      os << "region=" << queries[i].region << " cap=" << queries[i].cap_index
         << " " << configs[i].to_string() << "\n";
  } else {
    std::vector<int> regions;
    for (int r = 0; r < db.num_regions(); ++r) regions.push_back(r);
    const auto choices = engine.predict_edp_batch(regions);
    for (std::size_t i = 0; i < regions.size(); ++i)
      os << "region=" << regions[i] << " cap*=" << choices[i].cap_index << " "
         << choices[i].cfg.to_string() << "\n";
  }
}

void dump_to(serve::InferenceEngine& engine, const std::string& path) {
  if (path.empty()) {
    dump_predictions(engine, std::cout);
    return;
  }
  std::ofstream os(path);
  PNP_CHECK_MSG(os.is_open(), "cannot open '" << path << "' for writing");
  dump_predictions(engine, os);
  os.flush();
  PNP_CHECK_MSG(os.good(), "writing '" << path << "' failed");
}

int cmd_train(const Args& a) {
  if (a.model_path.empty()) throw Error("train needs --out MODEL");
  const auto machine = hw::machine_by_name(a.machine);
  const sim::Simulator sim(machine);
  const core::MeasurementDb db(sim, space_for(a.space, machine),
                               workloads::Suite::instance().all_regions());
  core::PnpOptions opt;
  opt.trainer.max_epochs = a.epochs;
  // Scalar-cap models additionally serve arbitrary-watt power_at queries
  // (paper Figs. 4-5) — what pnp_served needs for mixed loadgen blends.
  opt.cap_onehot = !a.scalar_cap;
  opt.factored_heads = factored_for(a.heads);
  core::PnpTuner tuner(db, opt);
  std::vector<int> all;
  for (int r = 0; r < db.num_regions(); ++r) all.push_back(r);

  nn::TrainReport report;
  if (a.scenario == "power") report = tuner.train_power_scenario(all);
  else if (a.scenario == "edp") report = tuner.train_edp_scenario(all);
  else throw Error("unknown scenario '" + a.scenario + "'");
  std::fprintf(stderr, "trained %s/%s: %d epochs, %.2fs, train acc %.2f\n",
               a.machine.c_str(), a.scenario.c_str(), report.epochs_run,
               report.seconds, report.train_accuracy);

  // Stamp the preferred serving tier into the artifact ("serve.precision"):
  // loaders that don't override precision will serve at this tier.
  if (!a.precision.empty())
    tuner.set_serve_precision(precision_for(a.precision));
  tuner.save(a.model_path);
  std::fprintf(stderr, "saved artifact -> %s (serve precision %s)\n",
               a.model_path.c_str(),
               nn::precision_name(tuner.serve_precision()));

  serve::EngineOptions eopt;
  eopt.beam_width = a.beam_width;
  serve::InferenceEngine engine(std::move(tuner), eopt);
  dump_to(engine, a.predictions_path);
  return 0;
}

int cmd_predict(const Args& a) {
  if (a.model_path.empty()) throw Error("predict needs --model MODEL");
  const auto machine = hw::machine_by_name(a.machine);
  const sim::Simulator sim(machine);
  const core::MeasurementDb db(sim, space_for(a.space, machine),
                               workloads::Suite::instance().all_regions());
  serve::EngineOptions eopt;
  eopt.beam_width = a.beam_width;
  serve::InferenceEngine engine(db, a.model_path, eopt);
  std::fprintf(stderr, "loaded artifact %s (%zu regions)\n",
               a.model_path.c_str(),
               static_cast<std::size_t>(db.num_regions()));
  dump_to(engine, a.predictions_path);
  return 0;
}

int cmd_info(const Args& a) {
  if (a.model_path.empty()) throw Error("info needs --model MODEL");
  const auto art = core::TunerArtifact::load_file(a.model_path);
  std::printf("artifact: %s v%lld\n", core::TunerArtifact::kKind,
              static_cast<long long>(art.version));
  std::printf("mode: %s\n",
              art.mode == core::TunerArtifact::Mode::Power ? "power" : "edp");
  std::printf("vocab tokens: %zu (+1 OOV)\n", art.vocab_tokens.size());
  std::printf("heads: %s\n", art.opt_factored_heads ? "factored" : "dense");
  std::printf("head sizes:");
  for (int h : art.head_sizes) std::printf(" %d", h);
  std::printf("\nextra features: %d\n", art.extra_features);
  if (art.has_constraint_fingerprint)
    std::printf("constraint rules: %zu\n", art.constraint_rules().size());
  else
    std::printf("constraint rules: none (pre-v3 artifact)\n");
  if (art.machine_fingerprint != 0) {
    std::printf("machine: %s (fingerprint %016llx)\n",
                art.machine_name.c_str(),
                static_cast<unsigned long long>(art.machine_fingerprint));
    if (art.fleet)
      std::printf("fleet: yes (%zu training machines, machine features %s)\n",
                  art.fleet_fingerprints.size(),
                  art.opt_machine_features ? "on" : "off");
    else
      std::printf("fleet: no\n");
  } else {
    std::printf("machine: unknown (pre-v4 artifact)\n");
  }
  std::printf("counter stats: %zu\n", art.counter_mean.size());
  std::printf("serve precision: %s\n", nn::precision_name(art.serve_precision));
  std::size_t weights = 0;
  for (const auto& name : art.net_weights.names())
    weights += art.net_weights.get(name).size();
  std::printf("net parameters: %zu tensors, %zu weights\n",
              art.net_weights.names().size(), weights);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse_args(argc, argv);
    if (a.command == "train") return cmd_train(a);
    if (a.command == "predict") return cmd_predict(a);
    if (a.command == "info") return cmd_info(a);
    usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pnp_tune: error: %s\n", e.what());
    return 1;
  }
}
