/// \file motivating_example.cpp
/// Reproduces the paper's §I motivating example: an exhaustive sweep of the
/// OpenMP configuration space for LULESH's
/// ApplyAccelerationBoundaryConditionsForNodes kernel on the 16-core
/// Haswell model.
///
/// The paper observes (at 40/60/70/85 W): best speedups of 7.54×, 2.11×,
/// 1.80×, 1.67× over the default configuration; the most energy-efficient
/// execution at 60 W with a 3.89× greenup but a 0.95× *slowdown* (violating
/// race-to-halt); and an EDP-optimal point at yet another (config, cap)
/// combination. This example reports the same quantities from the
/// simulator substrate — the shape, not the absolute numbers, is the claim.

#include <cstdio>

#include "core/measurement_db.hpp"
#include "core/metrics.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

int main() {
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const auto& suite = workloads::Suite::instance();
  const core::MeasurementDb db(simulator, space, suite.all_regions());

  const int r = db.find_region("lulesh", "r3_apply_accel_bc");
  std::printf("LULESH ApplyAccelerationBoundaryConditionsForNodes (Haswell)\n");
  std::printf("default config: %s at each cap\n\n",
              space.default_config().to_string().c_str());

  const int tdp = db.num_caps() - 1;
  const double t_def_tdp = db.at_default(r, tdp).seconds;
  const double e_def_tdp = db.at_default(r, tdp).joules;

  std::printf("%-8s %-18s %-10s %-10s %-10s\n", "cap(W)", "best config",
              "speedup", "vs default", "at same cap");
  for (int k = 0; k < db.num_caps(); ++k) {
    const int best = db.best_candidate_by_time(r, k);
    const auto cfg = space.candidate(best);
    const double sp =
        core::speedup(db.at_default(r, k).seconds, db.best_time(r, k));
    std::printf("%-8.0f %-18s %.2fx\n",
                space.power_caps()[static_cast<std::size_t>(k)],
                cfg.to_string().c_str(), sp);
  }

  // Most energy-efficient point in the whole joint space.
  double best_e = 1e300;
  int be_cap = 0, be_cand = 0;
  for (int k = 0; k < db.num_caps(); ++k)
    for (int c = 0; c < space.num_candidates_per_cap(); ++c)
      if (db.at(r, k, c).joules < best_e) {
        best_e = db.at(r, k, c).joules;
        be_cap = k;
        be_cand = c;
      }
  const auto& er = db.at(r, be_cap, be_cand);
  std::printf(
      "\nmost energy-efficient: %s @ %.0f W -> greenup %.2fx, speedup %.2fx "
      "vs default@TDP%s\n",
      space.candidate(be_cand).to_string().c_str(),
      space.power_caps()[static_cast<std::size_t>(be_cap)],
      core::greenup(e_def_tdp, er.joules), core::speedup(t_def_tdp, er.seconds),
      core::speedup(t_def_tdp, er.seconds) < 1.0 ? "  (race-to-halt violated)"
                                                 : "");

  // EDP-optimal point.
  const auto jb = db.best_by_edp(r);
  const auto& jr = db.at(r, jb.cap_index, jb.candidate);
  std::printf("EDP-optimal          : %s @ %.0f W -> greenup %.2fx, speedup %.2fx "
              "vs default@TDP\n",
              space.candidate(jb.candidate).to_string().c_str(),
              space.power_caps()[static_cast<std::size_t>(jb.cap_index)],
              core::greenup(e_def_tdp, jr.joules),
              core::speedup(t_def_tdp, jr.seconds));
  const int tb_cand = db.best_candidate_by_time(r, tdp);
  const bool time_vs_edp = !(space.candidate(tb_cand) ==
                             space.candidate(jb.candidate)) ||
                           jb.cap_index != tdp;
  std::printf(
      "\nconclusion: the time-optimal point (at TDP) %s the EDP-optimal "
      "point —\noptimizing one metric does not optimize the others.\n",
      time_vs_edp ? "differs from" : "coincides with");
  return 0;
}
