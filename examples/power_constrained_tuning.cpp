/// \file power_constrained_tuning.cpp
/// Scenario 1 end-to-end (paper §III-D2): a data-center node runs under a
/// strict package power cap; pick the OpenMP configuration that maximizes
/// performance at that cap — without executing the candidate region.
///
/// The example trains the PnP tuner on a training split of the suite and
/// tunes the held-out LULESH regions at every cap, comparing against the
/// default configuration and the exhaustive oracle.

#include <cstdio>

#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/loocv.hpp"
#include "core/metrics.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

int main() {
  std::printf("== Power-constrained tuning of LULESH (Haswell model) ==\n\n");
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const core::MeasurementDb db(simulator, space,
                               workloads::Suite::instance().all_regions());

  // Train on every application except LULESH (a genuine LOOCV fold).
  core::PnpOptions pnp;
  pnp.trainer.max_epochs = 28;
  core::PnpTuner tuner(db, pnp);
  std::vector<int> train, lulesh;
  for (const auto& [app, regions] : core::regions_by_app(db)) {
    auto& dst = (app == "lulesh") ? lulesh : train;
    dst.insert(dst.end(), regions.begin(), regions.end());
  }
  std::printf("training on %zu regions (29 applications)...\n", train.size());
  const auto rep = tuner.train_power_scenario(train);
  std::printf("done: %d epochs, %.1fs\n\n", rep.epochs_run, rep.seconds);

  Table t({"region", "cap(W)", "predicted config", "speedup", "% of oracle"});
  std::vector<double> norms;
  for (int r : lulesh) {
    const auto& desc = db.region(r).region->desc;
    for (int k = 0; k < db.num_caps(); ++k) {
      const double cap = space.power_caps()[static_cast<std::size_t>(k)];
      const auto cfg = tuner.predict_power(r, k);
      const double tp = simulator.expected(desc, cfg, cap).seconds;
      const double norm = core::normalized_speedup(db.best_time(r, k), tp);
      norms.push_back(norm);
      if (k == 0 || k == db.num_caps() - 1)  // print low + TDP rows
        t.add_row({desc.region, fmt_double(cap, 0), cfg.to_string(),
                   fmt_double(db.at_default(r, k).seconds / tp, 2) + "x",
                   fmt_double(100.0 * norm, 0) + "%"});
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nacross all LULESH regions and caps: geomean %.0f%% of oracle "
      "speedup,\nwith zero executions of LULESH itself.\n",
      100.0 * geomean(norms));
  return 0;
}
