/// \file quickstart.cpp
/// Five-minute tour of the PnP-tuner library:
///   1. load the benchmark suite (30 apps / 68 OpenMP regions),
///   2. look at one region's IR and PROGRAML flow graph,
///   3. simulate it under different OpenMP configs and power caps,
///   4. ask the exhaustive oracle for the best configuration,
///   5. train a small PnP model and predict for a held-out application.

#include <cstdio>
#include <string>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/loocv.hpp"
#include "core/measurement_db.hpp"
#include "core/metrics.hpp"
#include "graph/export.hpp"
#include "ir/extract.hpp"
#include "ir/printer.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

int main() {
  std::printf("== PnP-Tuner quickstart ==\n\n");

  // 1. The suite.
  const auto& suite = workloads::Suite::instance();
  std::printf("suite: %zu applications, %zu OpenMP regions\n",
              suite.application_count(), suite.total_regions());

  // 2. One region: gemm's single parallel region.
  const auto* gemm = suite.find("gemm");
  const auto& region = gemm->regions.front();
  std::printf("\n-- IR of %s (outlined, llvm-extract style) --\n",
              region.desc.qualified_name().c_str());
  const ir::Module one = ir::extract_function(gemm->module, region.function);
  std::printf("%s", ir::print_function(one, one.functions.front()).c_str());

  const auto fg = graph::build_flow_graph(one);
  std::printf("\n-- PROGRAML flow graph --\n%s\n\n",
              graph::summary(fg).c_str());

  // 3. Simulate under a few configurations on the Haswell model.
  const auto machine = hw::MachineModel::haswell();
  const sim::Simulator simulator(machine);
  Table t({"config", "cap(W)", "time(ms)", "power(W)", "energy(J)", "GHz"});
  for (double cap : {40.0, 85.0}) {
    for (const auto& cfg :
         {sim::OmpConfig{32, sim::Schedule::Static, 0},
          sim::OmpConfig{8, sim::Schedule::Dynamic, 64},
          sim::OmpConfig{1, sim::Schedule::Static, 0}}) {
      const auto r = simulator.expected(region.desc, cfg, cap);
      t.add_row({cfg.to_string(), fmt_double(cap, 0),
                 fmt_double(r.seconds * 1e3, 3), fmt_double(r.avg_power_w, 1),
                 fmt_double(r.joules, 3), fmt_double(r.frequency_ghz, 2)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  // 4. The oracle: exhaustive sweep of Table I's search space.
  const auto space = core::SearchSpace::for_machine(machine);
  const core::MeasurementDb db(simulator, space, suite.all_regions());
  const int r = db.find_region("gemm", "r0_gemm");
  for (int k = 0; k < db.num_caps(); ++k) {
    const int best = db.best_candidate_by_time(r, k);
    const auto cfg = space.candidate(best);
    std::printf("oracle @ %3.0f W: %-18s  speedup over default %.2fx\n",
                space.power_caps()[static_cast<std::size_t>(k)],
                cfg.to_string().c_str(),
                core::speedup(db.at_default(r, k).seconds,
                              db.best_time(r, k)));
  }

  // 5. Train a small PnP model on eight applications, predict for gemm.
  std::printf("\ntraining a PnP model (8-app subset, static features)...\n");
  core::PnpOptions pnp;
  pnp.trainer.max_epochs = 30;
  core::PnpTuner tuner(db, pnp);
  std::vector<int> train;
  for (const auto& [app, regions] : core::regions_by_app(db)) {
    if (app == "gemm") continue;
    if (train.size() >= 20) break;
    for (int idx : regions) train.push_back(idx);
  }
  const auto rep = tuner.train_power_scenario(train);
  std::printf("trained %d epochs in %.2fs (train acc %.0f%%)\n",
              rep.epochs_run, rep.seconds, 100.0 * rep.train_accuracy);

  for (int k = 0; k < db.num_caps(); ++k) {
    const auto cfg = tuner.predict_power(r, k);
    const double t_pred =
        simulator
            .expected(region.desc, cfg,
                      space.power_caps()[static_cast<std::size_t>(k)])
            .seconds;
    std::printf(
        "PnP    @ %3.0f W: %-18s  %.0f%% of oracle speedup\n",
        space.power_caps()[static_cast<std::size_t>(k)], cfg.to_string().c_str(),
        100.0 * core::normalized_speedup(db.best_time(r, k), t_pred));
  }
  std::printf("\nquickstart done.\n");
  return 0;
}
