/// \file edp_tuning.cpp
/// Scenario 2 end-to-end (paper §III-D3): no external power cap is
/// imposed; the tuner instead *chooses* a power cap together with an
/// OpenMP configuration to minimize the energy-delay product, trading
/// performance and energy simultaneously. Demonstrated on the Monte Carlo
/// transport proxies (XSBench/RSBench), which are bandwidth/latency-bound
/// and therefore profit from aggressive capping.

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/loocv.hpp"
#include "core/metrics.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

int main() {
  std::printf("== EDP tuning of XSBench & RSBench (Skylake model) ==\n\n");
  const auto machine = hw::MachineModel::skylake();
  const sim::Simulator simulator(machine);
  const auto space = core::SearchSpace::for_machine(machine);
  const core::MeasurementDb db(simulator, space,
                               workloads::Suite::instance().all_regions());

  core::PnpOptions pnp;
  pnp.use_adamw = false;  // Table II: Adam for the EDP scenario
  pnp.trainer.max_epochs = 28;
  core::PnpTuner tuner(db, pnp);
  std::vector<int> train, held;
  for (const auto& [app, regions] : core::regions_by_app(db)) {
    auto& dst = (app == "xsbench" || app == "rsbench") ? held : train;
    dst.insert(dst.end(), regions.begin(), regions.end());
  }
  std::printf("training EDP model on %zu regions...\n", train.size());
  const auto rep = tuner.train_edp_scenario(train);
  std::printf("done: %d epochs, %.1fs\n\n", rep.epochs_run, rep.seconds);

  const int tdp = db.num_caps() - 1;
  Table t({"region", "chosen cap", "chosen config", "speedup", "greenup",
           "EDP gain", "% of oracle EDP gain"});
  for (int r : held) {
    const auto& desc = db.region(r).region->desc;
    const auto jc = tuner.predict_edp(r);
    const double cap =
        space.power_caps()[static_cast<std::size_t>(jc.cap_index)];
    const auto er = simulator.expected(desc, jc.cfg, cap);
    const auto& dflt = db.at_default(r, tdp);
    const double gain = core::edp_improvement(dflt.edp(), er.edp());
    const double oracle_gain =
        core::edp_improvement(dflt.edp(), db.best_by_edp(r).edp);
    t.add_row({desc.qualified_name(), fmt_double(cap, 0) + "W",
               jc.cfg.to_string(),
               fmt_double(core::speedup(dflt.seconds, er.seconds), 2) + "x",
               fmt_double(core::greenup(dflt.joules, er.joules), 2) + "x",
               fmt_double(gain, 2) + "x",
               fmt_double(100.0 * gain / oracle_gain, 0) + "%"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nnote: the tuner picks *both* the cap and the OpenMP config; for "
      "bandwidth-bound\nMonte Carlo lookups it caps aggressively — little "
      "time is lost, much energy saved.\n");
  return 0;
}
