/// \file cross_arch_transfer.cpp
/// The transfer-learning workflow of §IV-B: because PROGRAML graphs are
/// compiler artifacts, they are identical on every machine — so a GNN
/// trained on one system can be reused on another, retraining only the
/// dense classifier. The paper reports a 4.18× training-time reduction.
///
/// This example trains on the Haswell model, saves the full versioned
/// tuner artifact to disk (the deployment unit of docs/SERVING.md),
/// reloads it in-place to verify bit-identical predictions, then imports
/// its GNN stage for the Skylake model with a frozen GNN and compares
/// wall-clock time and quality against training Skylake from scratch.

#include <cstdio>

#include "common/serialize.hpp"
#include "core/loocv.hpp"
#include "core/tuner_artifact.hpp"
#include "workloads/suite.hpp"

using namespace pnp;

int main() {
  std::printf("== Cross-architecture transfer: Haswell -> Skylake ==\n\n");
  const auto haswell = hw::MachineModel::haswell();
  const auto skylake = hw::MachineModel::skylake();
  const sim::Simulator sim_h(haswell), sim_s(skylake);
  const auto regions = workloads::Suite::instance().all_regions();
  const core::MeasurementDb db_h(
      sim_h, core::SearchSpace::for_machine(haswell), regions);
  const core::MeasurementDb db_s(
      sim_s, core::SearchSpace::for_machine(skylake), regions);

  std::vector<int> all;
  for (int r = 0; r < db_h.num_regions(); ++r) all.push_back(r);

  core::PnpOptions pnp;
  pnp.trainer.max_epochs = 20;
  pnp.trainer.patience = 1000;  // fixed epochs for a fair timing comparison
  pnp.trainer.min_loss = 0.0;

  // 1. Train on Haswell and persist the full tuner artifact.
  core::PnpTuner source(db_h, pnp);
  const auto rep_h = source.train_power_scenario(all);
  source.save("/tmp/pnp_haswell.pnp");
  std::printf("haswell training: %.2fs (%d epochs) -> /tmp/pnp_haswell.pnp\n",
              rep_h.seconds, rep_h.epochs_run);

  // Sanity: a fresh load of the artifact serves bit-identical predictions.
  const core::PnpTuner reloaded = core::PnpTuner::load(db_h, "/tmp/pnp_haswell.pnp");
  const bool identical = reloaded.predict_power(0, 0) == source.predict_power(0, 0);
  std::printf("artifact reload check: predictions %s\n",
              identical ? "bit-identical" : "DIVERGED");

  // 2. Skylake from scratch.
  core::PnpTuner scratch(db_s, pnp);
  const auto rep_scratch = scratch.train_power_scenario(all);
  std::printf("skylake from scratch:   %.2fs  (train acc %.2f)\n",
              rep_scratch.seconds, rep_scratch.train_accuracy);

  // 3. Skylake with the imported, frozen Haswell GNN (dense-only training).
  // The artifact carries the whole tuner; transfer uses just its GNN stage.
  core::PnpTuner transfer(db_s, pnp);
  transfer.import_gnn(
      core::TunerArtifact::load_file("/tmp/pnp_haswell.pnp").net_weights,
      /*freeze_gnn=*/true);
  const auto rep_xfer = transfer.train_power_scenario(all);
  std::printf("skylake transferred:    %.2fs  (train acc %.2f)\n",
              rep_xfer.seconds, rep_xfer.train_accuracy);

  std::printf(
      "\ntransfer speedup: %.2fx (paper: 4.18x). The GNN encodings of the "
      "frozen stage\nare cached across epochs — only the dense layers "
      "(%zu of %zu weights) train.\n",
      rep_scratch.seconds / rep_xfer.seconds,
      transfer.net().num_weights(true), transfer.net().num_weights(false));
  return 0;
}
