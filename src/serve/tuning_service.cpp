#include "serve/tuning_service.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/tuner_artifact.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pnp::serve {

namespace {

// Counter increments release, stats() loads acquire: a derived counter's
// increment (hit/miss/batch/coalesced) is sequenced after its request's
// increment, so a stats() snapshot that observes the derived increment
// also observes the request increment — provided it reads the derived
// counters first and `requests` last (see stats()). On x86 this costs
// nothing over relaxed; the ordering is what makes the documented
// snapshot invariants provable instead of accidental.
constexpr auto kRelease = std::memory_order_release;
constexpr auto kAcquire = std::memory_order_acquire;

/// Best-effort: pin `t` to CPU `cpu` mod hardware_concurrency. Failures
/// (cgroup-restricted affinity masks, non-Linux hosts) are ignored —
/// pinning is a locality hint, never a correctness requirement.
void pin_to_cpu(std::thread& t, unsigned cpu) {
#if defined(__linux__)
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % hw, &set);
  (void)pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
#else
  (void)t;
  (void)cpu;
#endif
}

}  // namespace

// --- Snapshot ----------------------------------------------------------------

TuningService::Snapshot::Snapshot(core::PnpTuner tuner,
                                  std::optional<nn::Precision> precision,
                                  int beam_width, std::size_t shard_count,
                                  std::shared_ptr<Counters> ctrs)
    : model(std::move(tuner), precision, beam_width),
      locks(shard_count),
      shards(shard_count),
      counters(std::move(ctrs)) {}

const nn::RgcnNet::GnnCache& TuningService::Snapshot::encoding(
    int region) const {
  const std::size_t stripe =
      locks.stripe_of(static_cast<std::uint64_t>(region));
  {
    std::shared_lock<std::shared_mutex> rl(locks.at(stripe));
    const auto it = shards[stripe].find(region);
    if (it != shards[stripe].end()) {
      counters->encode_hits.fetch_add(1, kRelease);
      // Safe to use after unlock: entries are append-only and the pointee
      // is immutable once published under the stripe lock.
      return *it->second;
    }
  }
  // Miss: run the GNN outside any lock — encoding dominates the cost and
  // must not serialize unrelated regions. If two threads race on the same
  // region, both encodes are bit-identical and the first insert wins.
  auto fresh = std::make_unique<nn::RgcnNet::GnnCache>();
  model.encode(region, *fresh);
  counters->encode_misses.fetch_add(1, kRelease);
  std::unique_lock<std::shared_mutex> wl(locks.at(stripe));
  const auto [it, inserted] =
      shards[stripe].try_emplace(region, std::move(fresh));
  return *it->second;
}

TuneResult TuningService::Snapshot::serve(const TuneRequest& q, ServeCtx& c,
                                          bool use_arena) const {
  model.validate_region(q.region);
  TuneResult out;
  out.model_version = version;
  // Same primitives either way; use_arena only picks which per-thread
  // buffers back them (arena fast path vs allocation-path oracle).
  const auto run = [&](std::optional<int> ci, std::optional<double> cw) {
    const nn::RgcnNet::GnnCache& enc = encoding(q.region);
    if (use_arena)
      model.run_heads(enc, q.region, ci, cw, c.ws);
    else
      model.run_heads(enc, q.region, ci, cw, c.scratch);
  };
  const auto power = [&] {
    return use_arena ? model.decode_power(c.ws) : model.decode_power(c.scratch);
  };
  switch (q.kind) {
    case TuneRequest::Kind::Power: {
      model.require_mode(core::PnpTuner::Mode::Power, "a power query");
      model.validate_cap(q.cap_index);
      run(q.cap_index, std::nullopt);
      out.config = power();
      out.cap_index = q.cap_index;
      return out;
    }
    case TuneRequest::Kind::PowerAt: {
      model.require_mode(core::PnpTuner::Mode::Power, "a power_at query");
      model.require_scalar_cap();
      PNP_CHECK_MSG(q.cap_w > 0.0,
                    "cap must be positive, got " << q.cap_w << " W");
      run(std::nullopt, q.cap_w);
      out.config = power();
      out.cap_index = -1;
      return out;
    }
    case TuneRequest::Kind::Edp: {
      model.require_mode(core::PnpTuner::Mode::Edp, "an edp query");
      run(std::nullopt, std::nullopt);
      const core::PnpTuner::JointChoice jc =
          use_arena ? model.decode_edp(c.ws) : model.decode_edp(c.scratch);
      out.config = jc.cfg;
      out.cap_index = jc.cap_index;
      return out;
    }
  }
  PNP_CHECK_MSG(false, "unknown request kind "
                           << static_cast<int>(q.kind));
  throw Error("unreachable");
}

std::size_t TuningService::Snapshot::cached() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    std::shared_lock<std::shared_mutex> rl(locks.at(i));
    n += shards[i].size();
  }
  return n;
}

// --- CtxLease ----------------------------------------------------------------

TuningService::CtxLease::CtxLease(TuningService& svc) : svc_(svc) {
  std::lock_guard<std::mutex> lk(svc_.ctx_mu_);
  if (svc_.ctx_free_.empty()) {
    svc_.ctx_owned_.push_back(std::make_unique<ServeCtx>());
    ctx_ = svc_.ctx_owned_.back().get();
  } else {
    ctx_ = svc_.ctx_free_.back();
    svc_.ctx_free_.pop_back();
  }
}

TuningService::CtxLease::~CtxLease() {
  std::lock_guard<std::mutex> lk(svc_.ctx_mu_);
  svc_.ctx_free_.push_back(ctx_);
}

// --- TuningService -----------------------------------------------------------

TuningService::TuningService(const core::MeasurementDb& db,
                             const std::string& artifact_path,
                             TuningServiceOptions options)
    : db_(db), opt_(options), counters_(std::make_shared<Counters>()) {
  {
    std::lock_guard<std::mutex> rl(reload_mu_);
    publish_locked(core::PnpTuner::load(db_, artifact_path));
  }
  start_workers();
}

TuningService::TuningService(core::PnpTuner tuner,
                             TuningServiceOptions options)
    : db_(tuner.db()), opt_(options),
      counters_(std::make_shared<Counters>()) {
  {
    std::lock_guard<std::mutex> rl(reload_mu_);
    publish_locked(std::move(tuner));
  }
  start_workers();
}

TuningService::~TuningService() {
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lk(w->mu);
    w->stop = true;
    w->cv.notify_all();
  }
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
}

std::size_t TuningService::shard_count() const {
  // Worker mode stripes the cache to exactly the worker count so a
  // region's cache stripe and its worker coincide (see shard_of_key).
  if (opt_.worker_shards > 0)
    return static_cast<std::size_t>(opt_.worker_shards);
  return static_cast<std::size_t>(std::max(1, opt_.cache_shards));
}

std::uint64_t TuningService::publish_locked(core::PnpTuner tuner) {
  // ModelState's constructor rejects untrained tuners, so an invalid
  // candidate throws here, before anything is published.
  auto snap = std::make_shared<Snapshot>(std::move(tuner), opt_.precision,
                                         opt_.beam_width, shard_count(),
                                         counters_);
  snap->version = snapshot_.version() + 1;
  const std::uint64_t published = snapshot_.publish(std::move(snap));
  return published;
}

void TuningService::start_workers() {
  if (opt_.worker_shards <= 0) return;
  workers_.reserve(static_cast<std::size_t>(opt_.worker_shards));
  for (int i = 0; i < opt_.worker_shards; ++i) {
    workers_.push_back(std::make_unique<WorkerShard>());
    WorkerShard& w = *workers_.back();
    w.thread = std::thread([this, &w] { worker_loop(w); });
    if (opt_.pin_workers) pin_to_cpu(w.thread, static_cast<unsigned>(i));
  }
}

void TuningService::worker_loop(WorkerShard& w) {
  const std::size_t max_batch =
      static_cast<std::size_t>(std::max(1, opt_.max_batch));
  std::vector<Pending*> batch;
  std::unique_lock<std::mutex> lk(w.mu);
  for (;;) {
    w.cv.wait(lk, [&] { return w.stop || !w.queue.empty(); });
    if (w.queue.empty()) return;  // stop && drained
    const auto take = static_cast<std::ptrdiff_t>(
        std::min(w.queue.size(), max_batch));
    batch.assign(w.queue.begin(), w.queue.begin() + take);
    w.queue.erase(w.queue.begin(), w.queue.begin() + take);
    lk.unlock();
    counters_->batches.fetch_add(1, kRelease);
    counters_->coalesced.fetch_add(batch.size() - 1, kRelease);
    // One snapshot per drained batch — same atomicity contract as the
    // leader/follower path.
    const std::shared_ptr<const Snapshot> snap = snapshot_.current().value;
    for (Pending* p : batch) {
      try {
        p->result = snap->serve(*p->req, w.ctx, opt_.use_arena);
      } catch (...) {
        p->error = std::current_exception();
      }
    }
    lk.lock();
    for (Pending* p : batch) p->done = true;
    w.cv.notify_all();
  }
}

TuneResult TuningService::tune_sharded(const TuneRequest& request) {
  WorkerShard& w = *workers_[shard_of_key(
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(request.region)),
      workers_.size())];
  Pending p;
  p.req = &request;
  std::unique_lock<std::mutex> lk(w.mu);
  w.queue.push_back(&p);
  w.cv.notify_all();
  w.cv.wait(lk, [&] { return p.done; });
  lk.unlock();
  if (p.error) std::rethrow_exception(p.error);
  return p.result;
}

std::uint64_t TuningService::reload(const std::string& artifact_path) {
  std::lock_guard<std::mutex> rl(reload_mu_);
  try {
    // Everything fallible happens off to the side: artifact parse,
    // search-space validation (core::validate_artifact, inside load),
    // tensor rebuild. The live snapshot is untouched until publish.
    core::PnpTuner fresh = core::PnpTuner::load(db_, artifact_path);
    const auto cur = snapshot_.current();
    PNP_CHECK_MSG(fresh.mode() == cur.value->model.mode(),
                  "reload would switch the served scenario (power vs edp); "
                  "start a new service for a different scenario");
    const std::uint64_t v = publish_locked(std::move(fresh));
    counters_->reloads.fetch_add(1, kRelease);
    return v;
  } catch (...) {
    counters_->failed_reloads.fetch_add(1, kRelease);
    throw;
  }
}

core::PnpTuner::Mode TuningService::mode() const {
  return snapshot_.current().value->model.mode();
}

nn::Precision TuningService::precision() const {
  return snapshot_.current().value->model.precision();
}

std::size_t TuningService::cached_encodings() const {
  return snapshot_.current().value->cached();
}

void TuningService::run_batch(const std::vector<Pending*>& batch) {
  counters_->batches.fetch_add(1, kRelease);
  counters_->coalesced.fetch_add(batch.size() - 1, kRelease);
  // One snapshot for the whole batch: every request in it is served —
  // and version-tagged — by exactly one model, never a half-swapped one.
  const std::shared_ptr<const Snapshot> snap = snapshot_.current().value;
  CtxLease lease(*this);
  for (Pending* p : batch) {
    try {
      p->result = snap->serve(*p->req, lease.get(), opt_.use_arena);
    } catch (...) {
      p->error = std::current_exception();
    }
  }
}

TuneResult TuningService::tune(const TuneRequest& request) {
  counters_->requests.fetch_add(1, kRelease);

  if (!workers_.empty()) return tune_sharded(request);

  if (!opt_.coalesce) {
    counters_->batches.fetch_add(1, kRelease);
    const std::shared_ptr<const Snapshot> snap = snapshot_.current().value;
    CtxLease lease(*this);
    return snap->serve(request, lease.get(), opt_.use_arena);
  }

  Pending p;
  p.req = &request;
  std::unique_lock<std::mutex> lk(admit_mu_);
  queue_.push_back(&p);
  // Wake a leader parked in its bounded batch_wait: the queue just grew.
  // With batch_wait == 0 no leader ever parks there, so skip the
  // broadcast — it would only wake followers into re-sleeping.
  if (opt_.batch_wait.count() > 0) admit_cv_.notify_all();
  while (!p.done) {
    if (leader_active_) {
      // Follower: a leader is executing (or filling) a batch; our request
      // either rides in it or waits for the next leader.
      admit_cv_.wait(lk);
      continue;
    }
    // Become the leader. Optionally wait — bounded — for the batch to
    // fill, then take up to max_batch queued requests and execute them
    // outside the lock.
    leader_active_ = true;
    const std::size_t max_batch =
        static_cast<std::size_t>(std::max(1, opt_.max_batch));
    if (opt_.batch_wait.count() > 0 && queue_.size() < max_batch) {
      admit_cv_.wait_for(lk, opt_.batch_wait,
                         [&] { return queue_.size() >= max_batch; });
    }
    const std::size_t take = std::min(queue_.size(), max_batch);
    const std::vector<Pending*> batch(queue_.begin(),
                                      queue_.begin() + static_cast<std::ptrdiff_t>(take));
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(take));
    lk.unlock();
    run_batch(batch);
    lk.lock();
    for (Pending* q : batch) q->done = true;
    leader_active_ = false;
    // Wake the batch's owners and the next leader candidate.
    admit_cv_.notify_all();
  }
  lk.unlock();
  if (p.error) std::rethrow_exception(p.error);
  return p.result;
}

std::vector<TuneResult> TuningService::tune_batch(
    std::span<const TuneRequest> requests) {
  counters_->requests.fetch_add(requests.size(), kRelease);
  counters_->batches.fetch_add(1, kRelease);
  if (!requests.empty())
    counters_->coalesced.fetch_add(requests.size() - 1, kRelease);
  const std::shared_ptr<const Snapshot> snap = snapshot_.current().value;
  CtxLease lease(*this);
  std::vector<TuneResult> out;
  out.reserve(requests.size());
  for (const TuneRequest& q : requests)
    out.push_back(snap->serve(q, lease.get(), opt_.use_arena));
  return out;
}

TuningService::Stats TuningService::stats() const {
  // Read order is the contract (see the Stats doc comment): every derived
  // counter first, `requests` last, all with acquire. A derived increment
  // is released after its request's increment, so observing it here
  // guarantees the later `requests` load covers that request too —
  // which is exactly the snapshot invariants
  //   encode_hits + encode_misses <= requests
  //   batches + coalesced        <= requests.
  // Reading `requests` first (or everything relaxed, as this used to)
  // allows a snapshot where a request's hit is counted but the request
  // itself is not, momentarily violating the stats frame's own
  // documented arithmetic under load.
  Stats s;
  s.encode_hits = counters_->encode_hits.load(kAcquire);
  s.encode_misses = counters_->encode_misses.load(kAcquire);
  s.coalesced = counters_->coalesced.load(kAcquire);
  s.batches = counters_->batches.load(kAcquire);
  s.reloads = counters_->reloads.load(kAcquire);
  s.failed_reloads = counters_->failed_reloads.load(kAcquire);
  s.requests = counters_->requests.load(kAcquire);
  return s;
}

core::TunerArtifact TuningService::current_artifact() const {
  return snapshot_.current().value->model.tuner().to_artifact();
}

}  // namespace pnp::serve
