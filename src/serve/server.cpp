#include "serve/server.hpp"

#include <chrono>
#include <exception>

#include "common/error.hpp"

namespace pnp::serve {

namespace {

ServerOptions validated(ServerOptions opt) {
  PNP_CHECK_MSG(opt.workers >= 1, "a server needs at least one worker");
  PNP_CHECK_MSG(opt.queue_depth >= 1,
                "a server needs an admission queue of at least one");
  PNP_CHECK_MSG(opt.max_frame_bytes > 0 &&
                    opt.max_frame_bytes <= net::kMaxFrameBytes,
                "max_frame_bytes " << opt.max_frame_bytes
                                   << " outside (0, " << net::kMaxFrameBytes
                                   << "]");
  return opt;
}

bool is_tune_op(protocol::Op op) {
  return op == protocol::Op::Power || op == protocol::Op::PowerAt ||
         op == protocol::Op::Edp;
}

}  // namespace

Server::Server(TuningService& service, ServerOptions options)
    : Server(std::vector<TuningService*>{&service}, std::move(options)) {}

Server::Server(std::vector<TuningService*> services, ServerOptions options)
    : services_(std::move(services)),
      opt_(validated(std::move(options))),
      listener_(net::Address::parse(opt_.listen)) {
  PNP_CHECK_MSG(!services_.empty(), "a server needs at least one service");
  for (const TuningService* s : services_)
    PNP_CHECK_MSG(s != nullptr, "a server tenant service must not be null");
  workers_.reserve(static_cast<std::size_t>(opt_.workers));
  for (int i = 0; i < opt_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { shutdown(); }

void Server::accept_loop() {
  for (;;) {
    std::optional<net::Socket> sock;
    try {
      sock = listener_.accept();
    } catch (const std::exception&) {
      return;  // listener torn down under us during shutdown
    }
    if (!sock.has_value()) return;  // interrupted: shutting down
    connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Conn>(std::move(*sock));
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(std::shared_ptr<Conn> conn) {
  for (;;) {
    std::optional<std::string> payload;
    try {
      payload = net::recv_frame(conn->sock, opt_.max_frame_bytes);
    } catch (const std::exception& e) {
      // Unsynchronizable stream (truncated prefix, oversized claim,
      // mid-frame disconnect): best-effort error frame, then wind this
      // connection down. Only half-close here — in-flight jobs may still
      // be writing their replies, and the fd itself is closed once all
      // threads are joined in shutdown(). Other connections are
      // untouched. During a drain the stream ends because shutdown()
      // half-closed our read side, not because the client misbehaved —
      // don't inflate the malformed counter or emit an id-0 error frame
      // a strict id-matching client cannot correlate.
      if (!shut_down_.load(std::memory_order_relaxed)) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        reply(*conn, protocol::encode_error_response(0, e.what()));
      }
      close_writes(*conn);
      conn->sock.shutdown_read();
      return;
    }
    if (!payload.has_value()) return;  // clean EOF at a frame boundary

    Job job;
    job.conn = conn;
    job.admitted = std::chrono::steady_clock::now();
    try {
      job.request = protocol::decode_request(*payload);
    } catch (const std::exception& e) {
      // The frame boundary is intact — reject just this request and keep
      // the connection serving.
      malformed_.fetch_add(1, std::memory_order_relaxed);
      reply(*conn,
            protocol::encode_error_response(protocol::peek_id(*payload),
                                            e.what()));
      continue;
    }
    admit(std::move(job));
  }
}

bool Server::admit(Job job) {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (admitting_ && queue_.size() <
                          static_cast<std::size_t>(opt_.queue_depth)) {
      queue_.push_back(std::move(job));
      queue_cv_.notify_one();
      return true;
    }
  }
  // Full queue (or draining): explicit backpressure, never unbounded
  // buffering — the client gets a shed frame right now. Count only after
  // the frame is delivered: a refusal the client can never observe
  // (during a drain the reader may still be flushing requests buffered
  // before the FIN went out) must not show up in the stats the client
  // reconciles against, and counting post-send keeps the counter
  // monotonic. A client holding shed frame N still finds it in stats,
  // because its stats request re-enters this reader only after the
  // increment below.
  if (reply(*job.conn, protocol::encode_shed_response(job.request.id)))
    shed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void Server::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return !queue_.empty() || workers_stop_; });
      if (queue_.empty()) return;  // workers_stop_ && drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++executing_;
    }
    if (opt_.test_hook_before_execute) opt_.test_hook_before_execute();
    execute(job);
    {
      std::lock_guard<std::mutex> lk(queue_mu_);
      --executing_;
      if (queue_.empty() && executing_ == 0) drain_cv_.notify_all();
    }
  }
}

void Server::execute(const Job& job) {
  const protocol::Request& q = job.request;
  std::string out;
  switch (q.op) {
    case protocol::Op::Power:
    case protocol::Op::PowerAt:
    case protocol::Op::Edp:
      try {
        PNP_CHECK_MSG(q.machine < services_.size(),
                      "unknown tenant " << q.machine << " (this daemon serves "
                                        << services_.size() << ")");
        const TuneResult r = services_[q.machine]->tune(q.tune);
        out = protocol::encode_tune_response(q.id, q.op, r);
        ok_.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception& e) {
        out = protocol::encode_error_response(q.id, e.what());
        errors_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case protocol::Op::Reload:
      try {
        // Broadcast: every tenant swaps to the same artifact (sequential,
        // not atomic — a tenant that rejects the artifact leaves earlier
        // tenants on the new model and the rest on the old, and the error
        // reply names it). The echoed version is tenant 0's.
        std::uint64_t v = 0;
        for (std::size_t t = 0; t < services_.size(); ++t) {
          try {
            const std::uint64_t vt = services_[t]->reload(q.reload_path);
            if (t == 0) v = vt;
          } catch (const std::exception& e) {
            throw Error("tenant " + std::to_string(t) +
                        " rejected the reload: " + e.what());
          }
        }
        out = protocol::encode_reload_response(q.id, v);
        ok_.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception& e) {
        out = protocol::encode_error_response(q.id, e.what());
        errors_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case protocol::Op::Observe:
      try {
        PNP_CHECK_MSG(opt_.observe_log != nullptr,
                      "observation ingestion is disabled on this server");
        // Locate before appending: a record that cannot land on the
        // serving grid (unknown region, off-grid cap or config, absurd
        // values) is refused here and never becomes durable. Observations
        // always ingest against tenant 0, the retraining tenant.
        core::locate_observation(services_[0]->db(), q.observe);
        const std::uint64_t seq = opt_.observe_log->append(q.observe);
        // The append flushed before we reply: a client holding this ack
        // can count on the record surviving a drain (exactly-once — the
        // drain finishes every admitted request, and a request is only
        // admitted once).
        out = protocol::encode_observe_response(q.id, seq);
        ok_.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception& e) {
        out = protocol::encode_error_response(q.id, e.what());
        errors_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case protocol::Op::Stats: {
      // Counters are sampled before this stats request itself is counted.
      protocol::ServerCounters sc;
      const Stats st = stats();
      sc.connections = st.connections;
      sc.ok = st.ok;
      sc.errors = st.errors;
      sc.shed = st.shed;
      sc.malformed = st.malformed;
      const protocol::RetrainCounters rc =
          opt_.retrain_counters ? opt_.retrain_counters()
                                : protocol::RetrainCounters{};
      // Multi-tenant: the exported service counters are the sum over
      // tenants — one daemon, one stats frame.
      TuningService::Stats svc;
      for (const TuningService* s : services_) {
        const TuningService::Stats t = s->stats();
        svc.requests += t.requests;
        svc.batches += t.batches;
        svc.coalesced += t.coalesced;
        svc.encode_hits += t.encode_hits;
        svc.encode_misses += t.encode_misses;
        svc.reloads += t.reloads;
        svc.failed_reloads += t.failed_reloads;
      }
      out = protocol::encode_stats_response(q.id, sc, svc, rc, latency_);
      ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  // Record before replying: once a client holds the reply to request N,
  // any later stats frame is guaranteed to include N's latency sample.
  if (is_tune_op(q.op)) {
    const auto dt = std::chrono::steady_clock::now() - job.admitted;
    latency_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
  }
  reply(*job.conn, out);
}

bool Server::reply(Conn& conn, std::string_view payload) {
  std::lock_guard<std::mutex> lk(conn.write_mu);
  if (conn.write_closed) return false;
  try {
    net::send_frame(conn.sock, payload);
    return true;
  } catch (const std::exception&) {
    // The peer is gone; its reader will observe EOF and wind the
    // connection down. Nothing useful to do with the reply.
    return false;
  }
}

void Server::close_writes(Conn& conn) {
  // Taking write_mu means a FIN can never land mid-frame: either a
  // reply's last byte precedes it, or the reply never starts.
  std::lock_guard<std::mutex> lk(conn.write_mu);
  if (conn.write_closed) return;
  conn.write_closed = true;
  conn.sock.shutdown_write();
}

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> lk(shutdown_mu_);
    if (shut_down_.load(std::memory_order_relaxed)) return;
    // Readers consult this flag to tell a drain-induced EOF from a
    // genuinely malformed stream; set it before step 2 half-closes their
    // read sides.
    shut_down_.store(true, std::memory_order_relaxed);
  }
  // 1. Stop admitting (late arrivals get shed frames) and close the
  //    listener so no new connections form.
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    admitting_ = false;
  }
  listener_.interrupt();
  if (acceptor_.joinable()) acceptor_.join();
  // 2. Wake readers blocked mid-recv; half-read frames were never
  //    admitted, so nothing accepted is lost.
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& c : conns_) c->sock.shutdown_read();
  }
  // 3. Drain: every admitted request executes and flushes its reply.
  {
    std::unique_lock<std::mutex> lk(queue_mu_);
    drain_cv_.wait(lk, [this] { return queue_.empty() && executing_ == 0; });
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  // 4. Close write sides (clients see EOF after their last reply), join
  //    readers, drop connections. close_writes serializes the FIN
  //    against in-flight replies; readers still flushing buffered-
  //    before-FIN requests get fail-fast (uncounted) shed refusals.
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& c : conns_) close_writes(*c);
  }
  for (auto& r : readers_) r.join();
  readers_.clear();
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.clear();
  }
  listener_.close();
}

Server::Stats Server::stats() const {
  Stats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.malformed = malformed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace pnp::serve
