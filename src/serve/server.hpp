#pragma once

/// \file server.hpp
/// The network front end over serve::TuningService (docs/SERVING.md,
/// "Network protocol"): a TCP/unix-socket daemon speaking the
/// length-prefixed binary protocol of serve/protocol.hpp, built from
/// three moving parts:
///
///  - **an acceptor** + one reader thread per connection, which parse
///    frames and *admit* requests — a malformed frame is answered with an
///    error frame (or, when the stream cannot be resynchronized: a
///    truncated length prefix, an oversized length claim, a mid-frame
///    disconnect) the connection is closed, while every other connection
///    keeps serving;
///  - **a bounded admission queue** drained by a fixed worker pool.
///    Backpressure is explicit: when the queue is full the reader replies
///    with a shed frame immediately — the server never buffers without
///    bound, and a load generator sees exactly how much traffic was
///    refused;
///  - **graceful drain**: shutdown() closes the listener first, stops
///    admitting (late arrivals get shed frames), lets every accepted
///    request finish and flush its reply, then closes connections and
///    joins every thread. An accepted request is never lost.
///
/// Responses carry the request's id, so workers may answer a
/// connection's pipelined requests out of order; per-connection writes
/// are serialized by a write mutex. Each admitted tune request's
/// admission→reply latency lands in a common::LatencyHistogram, exported
/// (with the server + TuningService counters) through the `stats`
/// opcode. Request semantics and results are exactly TuningService's:
/// the soak suite (tests/server_soak_test.cpp) proves served results are
/// bit-identical to an in-process reference, across a hot reload.
///
/// A server may front several TuningServices at once — one per machine of
/// a multi-tenant daemon (pnp_served --machine A,B,...). Tune requests
/// carry the tenant index on the wire and are routed to that tenant's
/// service; an out-of-range index is an error reply, not a protocol
/// violation. `reload` is a broadcast (every tenant swaps to the same
/// artifact — only a fleet artifact can satisfy every tenant's machine
/// fingerprint, docs/HARDWARE.md), `observe` always ingests against
/// tenant 0 (the retraining tenant), and `stats` sums the per-tenant
/// service counters.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/latency_histogram.hpp"
#include "common/net.hpp"
#include "serve/protocol.hpp"
#include "serve/tuning_service.hpp"

namespace pnp::serve {

struct ServerOptions {
  /// Endpoint spec: "unix:PATH" or "tcp:[HOST:]PORT" ("tcp:0" binds an
  /// ephemeral loopback port; Server::address() reports it).
  std::string listen = "tcp:127.0.0.1:0";
  /// Worker threads executing admitted requests (≥ 1).
  int workers = 2;
  /// Admission-queue capacity (≥ 1). A request arriving while the queue
  /// holds this many is refused with a shed frame.
  int queue_depth = 128;
  /// Largest request payload a client may send; larger length claims
  /// close the connection (net::kMaxFrameBytes caps it).
  std::uint32_t max_frame_bytes = 64 * 1024;
  /// Ingestion sink for `observe` requests (the feedback loop's write
  /// path). null → observe requests are answered with an error frame.
  /// The log must outlive the server. An admitted observe is appended —
  /// and flushed — before its reply is written, and the graceful drain
  /// finishes every admitted request, so an observe accepted before a
  /// drain is always durably logged and answered exactly once.
  core::MeasurementLog* observe_log = nullptr;
  /// Source of the feedback-loop counters exported in the stats frame
  /// (serve/retrainer.hpp RetrainController::counters). null → zeros.
  std::function<protocol::RetrainCounters()> retrain_counters;
  /// Test-only: invoked by a worker before executing each admitted
  /// request. Lets tests hold the worker pool on a latch to fill the
  /// admission queue deterministically (tests/server_test.cpp). Must be
  /// null in production use.
  std::function<void()> test_hook_before_execute;
};

class Server {
 public:
  /// Bind, listen, and start serving `service` immediately (single
  /// tenant: every tune request must carry machine index 0). Throws
  /// pnp::Error on a bad option or an unbindable address.
  Server(TuningService& service, ServerOptions options);
  /// Multi-tenant: tune requests route to services[machine]. The
  /// services (all non-null, ≥ 1) must outlive the server; tenant 0 is
  /// the observe/retrain tenant.
  Server(std::vector<TuningService*> services, ServerOptions options);
  /// Implies shutdown().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound endpoint (ephemeral tcp port resolved).
  const net::Address& address() const { return listener_.bound(); }

  /// Graceful drain, idempotent: stop accepting, refuse new admissions
  /// with shed frames, finish + flush every accepted request, close every
  /// connection, join every thread.
  void shutdown();

  struct Stats {
    std::uint64_t connections = 0;  ///< connections accepted
    std::uint64_t ok = 0;           ///< requests answered Status::Ok
    std::uint64_t errors = 0;       ///< requests answered Status::Error
    std::uint64_t shed = 0;   ///< requests refused with a delivered
                              ///< shed frame (a refusal whose frame the
                              ///< drain's FIN beat to the socket counts
                              ///< as never read, not as shed)
    std::uint64_t malformed = 0;    ///< frames rejected before admission
  };
  Stats stats() const;

  /// Admission→reply latency of every admitted tune request (ok and
  /// error; reload/stats requests are not SLO traffic and are excluded).
  const LatencyHistogram& latency() const { return latency_; }

 private:
  struct Conn {
    explicit Conn(net::Socket s) : sock(std::move(s)) {}
    net::Socket sock;
    std::mutex write_mu;  ///< workers + reader serialize frame writes
    /// Set (under write_mu) before shutdown_write so no frame is ever
    /// truncated by the FIN and late writes fail fast instead of EPIPE.
    bool write_closed = false;
  };

  struct Job {
    std::shared_ptr<Conn> conn;
    protocol::Request request;
    std::chrono::steady_clock::time_point admitted;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Conn> conn);
  void worker_loop();
  /// Admit or shed one decoded request. Returns false when the job was
  /// shed (reply already sent).
  bool admit(Job job);
  void execute(const Job& job);
  /// Write one response frame. Returns false when it could not be
  /// delivered (write side closed, or the peer is gone).
  bool reply(Conn& conn, std::string_view payload);
  /// Half-close a connection's write side, serialized against reply().
  static void close_writes(Conn& conn);

  std::vector<TuningService*> services_;  ///< tenant index → service
  ServerOptions opt_;
  net::Listener listener_;
  LatencyHistogram latency_;

  std::atomic<std::uint64_t> connections_{0}, ok_{0}, errors_{0}, shed_{0},
      malformed_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;  ///< workers: work available / stop
  std::condition_variable drain_cv_;  ///< shutdown: queue empty + idle
  std::deque<Job> queue_;
  int executing_ = 0;
  bool admitting_ = true;     ///< cleared first in shutdown()
  bool workers_stop_ = false; ///< set after the queue drains

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> readers_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex shutdown_mu_;
  /// Atomic so readers can distinguish a drain-induced stream end from a
  /// malformed stream without taking shutdown_mu_.
  std::atomic<bool> shut_down_{false};
};

}  // namespace pnp::serve
