#pragma once

/// \file tuning_service.hpp
/// Thread-safe concurrent tuning service — the production front end of the
/// paper's deployment story: many callers asking "best (threads, schedule,
/// chunk) under this power cap" at once, against a model that can be
/// replaced without downtime. Three mechanisms (docs/SERVING.md has the
/// full contracts):
///
///  - **Sharded encoding cache.** Per-region GNN encodings live in N
///    lock-striped shards (common/sync.hpp StripedSharedMutex), so
///    queries for unrelated regions never contend; each region is encoded
///    at most once per model version and the encode itself runs outside
///    any lock.
///
///  - **Admission queue.** Small concurrent requests coalesce into
///    batches (leader/follower combining): the first caller to find no
///    active leader takes the queued requests — optionally waiting a
///    bounded `batch_wait` for the batch to fill — executes them against
///    one model snapshot, and wakes the owners. Callers never see the
///    queue; tune() simply returns their result (or rethrows their
///    error).
///
///  - **Worker shards (opt-in).** worker_shards > 0 replaces the
///    leader/follower queue with N dedicated worker threads, requests
///    routed by region hash (common/sync.hpp shard_of_key) to the worker
///    whose index equals the region's cache stripe. Each worker owns one
///    serving context — allocation-path Scratch plus arena-backed
///    Workspace (nn/arena.hpp) — so steady-state serving is
///    allocation-free and workers never touch each other's cache
///    stripes. Optionally pinned to cores (pin_workers).
///
///  - **Versioned hot reload.** reload(path) loads and validates a new
///    artifact entirely off to the side, then atomically publishes it
///    (common/sync.hpp VersionedSnapshot). In-flight requests finish on
///    the snapshot that admitted them; requests admitted after the
///    publish use the new model; a failed reload (corrupt / incompatible
///    / missing artifact) throws and the old model keeps serving. Every
///    result is tagged with the model version that served it.
///
/// Determinism contract: a request's result is a pure function of
/// (request, model version). Concurrent execution, batching order, cache
/// state, and thread count never change any result — the stress suite
/// (tests/service_test.cpp) checks bit-identity against a single-threaded
/// reference run, including across a mid-stream reload.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"
#include "serve/inference_engine.hpp"

namespace pnp::serve {

/// One tuning request. `Power` asks for the best OpenMP configuration at
/// a search-space cap index; `PowerAt` at an arbitrary cap in watts
/// (scalar-cap models only, paper Figs. 4–5); `Edp` for the joint
/// (cap, configuration) minimizing energy-delay product.
struct TuneRequest {
  enum class Kind { Power, PowerAt, Edp };
  Kind kind = Kind::Power;
  int region = 0;
  int cap_index = 0;  ///< Kind::Power only
  double cap_w = 0.0; ///< Kind::PowerAt only

  static TuneRequest power(int region, int cap_index) {
    return {Kind::Power, region, cap_index, 0.0};
  }
  static TuneRequest power_at(int region, double cap_w) {
    return {Kind::PowerAt, region, 0, cap_w};
  }
  static TuneRequest edp(int region) { return {Kind::Edp, region, 0, 0.0}; }
};

struct TuneResult {
  sim::OmpConfig config;
  /// Edp: the predicted best cap index. Power: the request's cap index
  /// echoed back. PowerAt: -1 (the cap was given in watts).
  int cap_index = -1;
  /// The model version that served this request (1 for the initial model,
  /// +1 per successful reload). Proves swap atomicity: a result is always
  /// consistent with exactly this version's single-threaded predictions.
  std::uint64_t model_version = 0;
};

struct TuningServiceOptions {
  /// Lock stripes of the per-version encoding cache (≥ 1).
  int cache_shards = 16;
  /// Largest batch one admission-queue leader executes at once (≥ 1).
  int max_batch = 64;
  /// Bounded extra wait for a batch to fill before the leader runs it.
  /// 0 (default) adds no latency: a leader takes whatever is queued at
  /// that instant, and batches still form naturally under load because
  /// requests arriving while a leader executes queue up for the next one.
  std::chrono::microseconds batch_wait{0};
  /// false → skip the admission queue entirely: every caller executes its
  /// own request directly against the current snapshot (lowest latency,
  /// no coalescing; cache sharding still applies).
  bool coalesce = true;
  /// > 0 → worker-shard mode: that many dedicated worker threads, each
  /// owning one serving context (scratch + arena workspace). Requests are
  /// routed to workers by region hash (common/sync.hpp shard_of_key) and
  /// the encoding cache is striped to exactly the worker count, so a
  /// region's worker and its cache stripe coincide — workers never
  /// contend on each other's stripes. Supersedes the leader/follower
  /// admission queue (`coalesce` is ignored); batching still happens
  /// because a busy worker drains up to max_batch queued requests per
  /// wakeup. 0 (default) keeps the caller-thread leader/follower path.
  int worker_shards = 0;
  /// Worker-shard mode only: best-effort pin worker i to CPU
  /// i mod hardware_concurrency (Linux pthread_setaffinity_np; silently
  /// a no-op elsewhere or when the affinity call is rejected).
  bool pin_workers = false;
  /// Serving tier override passed to every published ModelState; nullopt
  /// uses each artifact's persisted preference (f64 for artifacts
  /// predating the f32 tier). A reload may therefore switch tiers
  /// mid-stream when the new artifact asks for a different one.
  std::optional<nn::Precision> precision;
  /// Serve through the arena-backed Workspace fast path (zero steady-state
  /// allocations). false keeps the allocation-path Scratch oracle —
  /// selectable so tests can compare both end to end.
  bool use_arena = true;
  /// Constraint-fallback beam width passed to every published ModelState
  /// (<= 0 = full width, exact). Only consulted when a query's argmax
  /// tuple is pruned by the search space's constraint layer.
  int beam_width = 0;
};

class TuningService {
 public:
  /// Load + validate the artifact at `artifact_path` and serve it against
  /// `db`. Throws pnp::Error on malformed or incompatible artifacts.
  TuningService(const core::MeasurementDb& db,
                const std::string& artifact_path,
                TuningServiceOptions options = {});

  /// Adopt an already-trained or already-loaded tuner as version 1.
  explicit TuningService(core::PnpTuner tuner,
                         TuningServiceOptions options = {});

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Serve one request. Thread-safe; blocks until the result is ready
  /// (possibly riding in another caller's batch). Throws pnp::Error for
  /// invalid requests (bad region/cap, kind not servable by the current
  /// model's scenario) — an invalid request never affects the others in
  /// its batch.
  TuneResult tune(const TuneRequest& request);

  /// Serve a caller-assembled batch against a single model snapshot (all
  /// results carry the same version). Thread-safe; bypasses the admission
  /// queue — the batch is already formed. Throws on the first invalid
  /// request.
  std::vector<TuneResult> tune_batch(std::span<const TuneRequest> requests);

  /// Zero-downtime model replacement: load the artifact at `path`,
  /// validate it against the live db and the served scenario, and
  /// atomically publish it as the new version. Returns the new version.
  /// On any failure — missing file, corrupt bytes, wrong search space,
  /// scenario switch — throws pnp::Error and the current model keeps
  /// serving, unchanged. Concurrent reloads are serialized.
  std::uint64_t reload(const std::string& artifact_path);

  ~TuningService();

  /// Version of the model currently serving new requests.
  std::uint64_t model_version() const { return snapshot_.version(); }
  /// Scenario of the model currently serving new requests.
  core::PnpTuner::Mode mode() const;
  /// Inference tier of the model currently serving new requests.
  nn::Precision precision() const;
  /// Worker threads in worker-shard mode (0 on the leader/follower path).
  int worker_shards() const { return static_cast<int>(workers_.size()); }
  /// Region encodings cached by the current snapshot.
  std::size_t cached_encodings() const;
  /// The measurement db this service validates and serves against.
  const core::MeasurementDb& db() const { return db_; }
  /// Full artifact of the model currently serving new requests — the
  /// warm-start source for the retrain loop (serve/retrainer.hpp).
  /// Consistent with one published snapshot; reloading it through
  /// from_artifact yields bit-identical predictions to that snapshot.
  core::TunerArtifact current_artifact() const;

  struct Stats {
    std::uint64_t requests = 0;       ///< tune() + tune_batch() requests
    std::uint64_t batches = 0;        ///< executed batches (incl. direct)
    std::uint64_t coalesced = 0;      ///< requests − batches: requests
                                      ///< that shared a batch instead of
                                      ///< executing one of their own
                                      ///< (another caller's admission
                                      ///< batch, or extra members of a
                                      ///< tune_batch() call)
    std::uint64_t encode_hits = 0;    ///< cache lookups that found the
                                      ///< region already encoded
    std::uint64_t encode_misses = 0;  ///< lookups that ran the GNN
    std::uint64_t reloads = 0;        ///< successful reload() calls
    std::uint64_t failed_reloads = 0; ///< reload() calls that threw
  };
  /// A consistent-enough snapshot of the counters. Under concurrent
  /// traffic a snapshot is NOT an instantaneous cut — requests are always
  /// mid-flight — but every snapshot satisfies the invariants
  ///
  ///     encode_hits + encode_misses <= requests
  ///     batches + coalesced        <= requests
  ///
  /// because every derived counter's increment happens after its
  /// request's increment (release order), and stats() reads the derived
  /// counters first and `requests` last (acquire order) — a derived
  /// increment can never be visible without the request increment that
  /// caused it. At quiescence (no tune/tune_batch call in flight) both
  /// become the documented equalities:
  ///
  ///     encode_hits + encode_misses == requests
  ///     batches + coalesced        == requests
  ///
  /// tests/stats_consistency_test.cpp hammers both claims.
  Stats stats() const;

 private:
  /// Monotonic counters shared by the service and its snapshots (shared
  /// ownership: an in-flight snapshot may outlive a publish).
  struct Counters {
    std::atomic<std::uint64_t> requests{0}, batches{0}, coalesced{0},
        encode_hits{0}, encode_misses{0}, reloads{0}, failed_reloads{0};
  };

  /// One thread's serving context: the allocation-path Scratch and the
  /// arena-backed Workspace; TuningServiceOptions::use_arena picks which
  /// one each request runs through.
  struct ServeCtx {
    ModelState::Scratch scratch;
    ModelState::Workspace ws;
  };

  /// One published model: the immutable ModelState plus its sharded
  /// encoding cache. The cache is internally synchronized and append-only
  /// (entries are never replaced or erased), so a reference returned by
  /// encoding() stays valid for the snapshot's lifetime.
  struct Snapshot {
    Snapshot(core::PnpTuner tuner, std::optional<nn::Precision> precision,
             int beam_width, std::size_t shard_count,
             std::shared_ptr<Counters> counters);

    std::uint64_t version = 0;
    ModelState model;
    StripedSharedMutex locks;
    /// shards[i] guarded by locks.at(i); GnnCache pointees are immutable
    /// once inserted.
    mutable std::vector<
        std::unordered_map<int, std::unique_ptr<nn::RgcnNet::GnnCache>>>
        shards;
    std::shared_ptr<Counters> counters;

    /// Get-or-compute the encoding of `region` (encode runs unlocked; on
    /// a race the first insert wins — both encodings are bit-identical).
    const nn::RgcnNet::GnnCache& encoding(int region) const;
    /// Serve one request entirely against this snapshot, through the
    /// arena or the allocation path per `use_arena`.
    TuneResult serve(const TuneRequest& q, ServeCtx& c, bool use_arena) const;
    std::size_t cached() const;
  };

  /// A request parked in the admission queue.
  struct Pending {
    const TuneRequest* req = nullptr;
    TuneResult result;
    std::exception_ptr error;
    bool done = false;
  };

  /// One worker shard: a dedicated thread draining its own queue with its
  /// own serving context. `mu` guards `queue` and `stop`; `cv` is both
  /// the worker's wakeup and the callers' completion signal.
  struct WorkerShard {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Pending*> queue;
    bool stop = false;
    ServeCtx ctx;
    std::thread thread;
  };

  /// RAII lease of a ServeCtx from the service pool (leader/follower and
  /// tune_batch paths; worker shards own theirs outright).
  class CtxLease {
   public:
    explicit CtxLease(TuningService& svc);
    ~CtxLease();
    ServeCtx& get() { return *ctx_; }

   private:
    TuningService& svc_;
    ServeCtx* ctx_;
  };

  std::size_t shard_count() const;
  /// Build + publish a snapshot; all publishes run under reload_mu_.
  std::uint64_t publish_locked(core::PnpTuner tuner);
  /// Execute a formed batch against one snapshot, filling each Pending.
  void run_batch(const std::vector<Pending*>& batch);
  /// Spawn opt_.worker_shards workers (no-op at 0).
  void start_workers();
  /// Body of one worker thread: drain ≤ max_batch requests per wakeup,
  /// serve them against one snapshot, wake the owners; exits when `stop`
  /// is set and the queue is empty.
  void worker_loop(WorkerShard& w);
  /// Worker-shard tune(): route by region hash, park until served.
  TuneResult tune_sharded(const TuneRequest& request);

  const core::MeasurementDb& db_;
  TuningServiceOptions opt_;
  std::shared_ptr<Counters> counters_;
  VersionedSnapshot<Snapshot> snapshot_;
  std::mutex reload_mu_;  ///< serializes publishes (ctor + reload)

  // Admission queue (leader/follower combining; unused in worker mode).
  std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  std::vector<Pending*> queue_;
  bool leader_active_ = false;

  // Worker shards (empty on the leader/follower path). The vector is
  // filled once in the constructor and never resized, so unsynchronized
  // reads of workers_.size()/workers_[i] are safe.
  std::vector<std::unique_ptr<WorkerShard>> workers_;

  // ServeCtx pool (grows on demand, reused forever).
  std::mutex ctx_mu_;
  std::vector<std::unique_ptr<ServeCtx>> ctx_owned_;
  std::vector<ServeCtx*> ctx_free_;
};

}  // namespace pnp::serve
