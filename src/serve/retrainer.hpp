#pragma once

/// \file retrainer.hpp
/// The continual-retraining half of the serving feedback loop
/// (docs/SERVING.md, "Model lifecycle"):
///
///   observe → MeasurementLog → replay onto a train db → warm-start
///   fine-tune → held-out validation → regression gate → reload()
///
/// RetrainController owns a mutable *copy* of the service's measurement
/// db. Each round it replays any new log records onto that copy (the
/// serving db stays immutable — in-flight requests never race an ingest),
/// restores a candidate tuner from the currently-published artifact's
/// weights, fine-tunes it on the grown table, and scores candidate vs.
/// incumbent on a held-out region split with core::Evaluator. Only a
/// candidate that beats the incumbent on the gate metrics (geomean
/// speedup strictly better, oracle-match no worse than the configured
/// slack, f32-tier flip rate within bounds) is saved and published
/// through TuningService::reload(). Every failed candidate is counted
/// and discarded; the incumbent keeps serving bit-identical predictions.
///
/// Failure contract, per round:
///  - unreadable / torn / poisoned log  → RejectedLog, nothing applied,
///    nothing trained, nothing published;
///  - candidate not better on the gate  → RejectedGate, not published;
///  - candidate save/reload failure     → RejectedCandidate, the
///    incumbent keeps serving (reload() already guarantees this).
///
/// Power scenario only (core::Evaluator scores scenario 1). The optional
/// background thread (start/stop) is how pnp_served --retrain-interval
/// drives it; run_once() is the synchronous unit tests and tools call.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "core/measurement_log.hpp"
#include "serve/tuning_service.hpp"

namespace pnp::serve {

struct RetrainOptions {
  /// The MeasurementLog file observations land in (required).
  std::string log_path;
  /// Where gated candidates are saved before reload() republishes them
  /// (required). Overwritten per publish.
  std::string publish_path;
  /// Regions held out of fine-tuning and used to score the gate. Empty →
  /// every 4th region (deterministic default).
  std::vector<int> holdout_regions;
  /// Per-round fine-tune budget (epochs/patience/min_loss).
  nn::TrainerConfig fine_tune;
  /// A round with fewer than this many unconsumed records is a no-op.
  std::uint64_t min_new_records = 1;
  /// The candidate's held-out geomean speedup must exceed the
  /// incumbent's by more than this margin.
  double min_speedup_gain = 0.0;
  /// The candidate's oracle-match may be at most this much below the
  /// incumbent's.
  double oracle_match_slack = 0.0;
  /// When the service serves the f32 tier: the candidate's f32-vs-f64
  /// flip rate on the held-out grid must not exceed this.
  double max_flip_rate = 1.0;
  /// Log each round's outcome to stderr.
  bool verbose = false;
  /// Test-only: invoked with publish_path after the candidate is saved
  /// and before reload() — lets tests corrupt the artifact mid-publish
  /// to prove a corrupt candidate never serves. Must be null in
  /// production use.
  std::function<void(const std::string&)> test_hook_after_save;
};

class RetrainController {
 public:
  /// `sim` scores held-out predictions (noiseless expected()); `service`
  /// supplies the incumbent artifact and the reload() publish path. Both
  /// must outlive the controller. Throws pnp::Error unless the service
  /// serves the power scenario and the options name a log + publish path.
  RetrainController(const sim::Simulator& sim, TuningService& service,
                    RetrainOptions options);

  RetrainController(const RetrainController&) = delete;
  RetrainController& operator=(const RetrainController&) = delete;

  /// Implies stop().
  ~RetrainController();

  enum class Outcome {
    NoNewData,          ///< fewer than min_new_records unconsumed records
    Published,          ///< candidate beat the gate and is now serving
    RejectedGate,       ///< candidate trained but not better on held-out
    RejectedCandidate,  ///< candidate save or reload failed
    RejectedLog,        ///< log unreadable/torn/poisoned; nothing applied
  };

  /// One synchronous ingest → retrain → gate → publish round.
  /// Thread-safe (rounds are serialized); never throws — every failure
  /// maps to an Outcome and a counter.
  Outcome run_once();

  /// Start the background thread: one run_once() every `interval` until
  /// stop(). Throws if already started.
  void start(std::chrono::milliseconds interval);
  /// Stop and join the background thread (no-op when not started). The
  /// round in flight, if any, completes first.
  void stop();

  struct Stats {
    std::uint64_t observed = 0;       ///< records ingested into the train db
    std::uint64_t attempts = 0;       ///< rounds that trained a candidate
    std::uint64_t published = 0;
    std::uint64_t rejected_gate = 0;
    std::uint64_t rejected_candidate = 0;
    std::uint64_t rejected_log = 0;
    std::uint64_t last_published_version = 0;  ///< 0 = never published
  };
  Stats stats() const;

  /// The controller's private training table (the serving db plus every
  /// replayed observation). Exposed for tests that perturb the table to
  /// stage improvement/regression scenarios; production code never
  /// touches it.
  core::MeasurementDb& train_db() { return train_db_; }

  /// Regions the gate scores on (the configured or derived holdout).
  const std::vector<int>& holdout_regions() const { return holdout_; }

 private:
  Outcome run_once_locked();
  void log_outcome(Outcome outcome, const std::string& detail);

  const sim::Simulator& sim_;
  TuningService& service_;
  RetrainOptions opt_;
  core::MeasurementDb train_db_;  ///< private copy; grown by replay
  std::vector<int> holdout_;
  std::vector<int> train_regions_;

  std::mutex round_mu_;     ///< serializes run_once rounds
  std::size_t consumed_ = 0;  ///< log records already replayed (round_mu_)

  std::atomic<std::uint64_t> observed_{0}, attempts_{0}, published_{0},
      rejected_gate_{0}, rejected_candidate_{0}, rejected_log_{0},
      last_published_version_{0};

  std::mutex thread_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace pnp::serve
