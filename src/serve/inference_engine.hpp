#pragma once

/// \file inference_engine.hpp
/// Batched inference over a trained (usually reloaded) PnP tuner — the
/// serving half of the paper's train-once, predict-anywhere deployment
/// story (§IV-B). The engine owns the tuner and answers predict_power /
/// predict_edp for batches of queries:
///
///  - each distinct region graph is encoded through the GNN at most once
///    and the encoding is cached across batches (weights are immutable
///    while serving, so encodings never go stale);
///  - every per-query buffer (dense workspace, extra features, argmax
///    scratch) is reused, so steady-state serving does zero heap
///    allocation;
///  - under PNP_PARALLEL the encode and dense phases run query-parallel
///    with per-thread scratch, bit-identical to the serial path.
///
/// See docs/SERVING.md for the end-to-end flow (pnp_tune CLI → artifact →
/// engine).

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pnp_tuner.hpp"

namespace pnp::serve {

/// One scenario-1 query: the best OpenMP configuration for `region` under
/// power cap `cap_index`.
struct PowerQuery {
  int region = 0;
  int cap_index = 0;
};

class InferenceEngine {
 public:
  /// Serve the artifact at `path` against `db` (the fresh-process entry:
  /// load + validate + ready to predict). Throws pnp::Error on malformed
  /// or incompatible artifacts.
  InferenceEngine(const core::MeasurementDb& db, const std::string& path);

  /// Adopt an already-trained or already-loaded tuner.
  explicit InferenceEngine(core::PnpTuner tuner);

  const core::PnpTuner& tuner() const { return tuner_; }

  /// Single-query predictions; bit-identical to PnpTuner::predict_* but
  /// allocation-free in steady state.
  sim::OmpConfig predict_power(int region, int cap_index);
  core::PnpTuner::JointChoice predict_edp(int region);

  /// Batched predictions, one result per query in query order.
  /// Bit-identical to calling the single-query APIs one by one.
  std::vector<sim::OmpConfig> predict_power_batch(
      std::span<const PowerQuery> queries);
  std::vector<core::PnpTuner::JointChoice> predict_edp_batch(
      std::span<const int> regions);

  /// Batched scenario-1 predictions at an arbitrary package cap in watts —
  /// including caps outside the training search space (paper Figs. 4–5).
  /// Requires a scalar-cap model (cap_onehot == false); bit-identical to
  /// PnpTuner::predict_power_at per region. Used by the cross-suite
  /// generalization harness to serve held-out-cap grids over generated
  /// corpora.
  std::vector<sim::OmpConfig> predict_power_at_batch(
      std::span<const int> regions, double cap_w);

  /// Number of region encodings currently cached.
  std::size_t cached_encodings() const { return enc_.size(); }

 private:
  /// Per-thread dense-phase scratch (index 0 serves the serial path).
  struct Scratch {
    nn::RgcnNet::DenseCache dc;
    std::vector<double> extra;
    std::vector<int> preds;
  };

  void validate_region(int region) const;
  /// Encode any not-yet-cached regions of the batch (parallel when built
  /// with PNP_PARALLEL).
  void ensure_encoded(std::span<const int> regions);
  /// Run `fn(i, scratch)` for every i in [0, n) — query-parallel with
  /// per-thread scratch under PNP_PARALLEL, serial otherwise. Queries are
  /// independent and write disjoint outputs, so the parallel path is
  /// bit-identical to the serial one.
  template <class Fn>
  void for_each_query(std::size_t n, Fn&& fn);
  /// Dense pass + argmax for one query using `s`'s buffers; fills s.preds.
  /// `cap_w` substitutes the scalar cap feature (held-out caps).
  void run_heads(int region, std::optional<int> cap_index,
                 std::optional<double> cap_w, Scratch& s);

  core::PnpTuner tuner_;
  std::unordered_map<int, nn::RgcnNet::GnnCache> enc_;
  std::vector<Scratch> scratch_;
  std::vector<int> pending_;      ///< ensure_encoded work list (reused)
  std::vector<int> regions_buf_;  ///< per-batch region-id staging (reused)
};

}  // namespace pnp::serve
