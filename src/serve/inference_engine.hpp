#pragma once

/// \file inference_engine.hpp
/// The serving half of the paper's train-once, predict-anywhere deployment
/// story (§IV-B), in two layers:
///
///  - ModelState: an immutable trained model (tuner + net + tensors) with
///    const, thread-safe primitives — encode a region into a caller-owned
///    cache, run the dense heads with caller-owned scratch, decode the
///    predictions. Every serving front end (the single-threaded batched
///    InferenceEngine below, the concurrent serve::TuningService) is a
///    cache/scheduling policy over these primitives, and hot reload is
///    "publish a new ModelState snapshot".
///
///  - InferenceEngine: batched single-caller serving. Each distinct region
///    graph is encoded through the GNN at most once and cached across
///    batches; per-query buffers are reused so steady-state serving does
///    zero heap allocation; under PNP_PARALLEL the encode and dense phases
///    run query-parallel with per-thread scratch, bit-identical to serial.
///
/// See docs/SERVING.md for the end-to-end flow (pnp_tune CLI → artifact →
/// engine → service).

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pnp_tuner.hpp"
#include "nn/arena.hpp"

namespace pnp::serve {

/// One scenario-1 query: the best OpenMP configuration for `region` under
/// power cap `cap_index`.
struct PowerQuery {
  int region = 0;
  int cap_index = 0;
};

/// An immutable trained model. All methods are const and safe to call
/// concurrently from many threads provided each thread passes its own
/// GnnCache / Scratch (the model itself is never mutated after
/// construction). This is the unit serve::TuningService snapshots for
/// zero-downtime hot reload.
class ModelState {
 public:
  /// Adopt a trained or loaded tuner. Throws pnp::Error if the tuner has
  /// no trained scenario. `precision` overrides the serving tier; nullopt
  /// uses the tuner's artifact-persisted preference (f64 by default).
  /// At Precision::f32 the dense weights are down-converted once here and
  /// encodings additionally carry an f32 readout. `beam_width` bounds the
  /// constraint-fallback beam search (<= 0 = full width, exact); it only
  /// matters when the per-head argmax tuple violates a constraint —
  /// unconstrained spaces never run the beam.
  explicit ModelState(core::PnpTuner tuner,
                      std::optional<nn::Precision> precision = std::nullopt,
                      int beam_width = 0);

  const core::PnpTuner& tuner() const { return tuner_; }
  core::PnpTuner::Mode mode() const { return tuner_.mode(); }
  nn::Precision precision() const { return precision_; }
  int num_regions() const { return tuner_.db().num_regions(); }
  int num_caps() const { return tuner_.db().num_caps(); }
  /// True when the model uses the normalized scalar cap feature and can
  /// therefore serve arbitrary (unseen) caps in watts.
  bool scalar_cap() const;

  /// Per-query dense-phase scratch; reused across calls so steady-state
  /// serving allocates nothing. This is the allocation-path oracle the
  /// arena-backed Workspace below is tested against.
  struct Scratch {
    nn::RgcnNet::DenseCache dc;
    std::vector<double> extra;
    std::vector<int> preds;
    /// f32 tier only: u0 = readout_f32 ⊕ extra, in-place-relu hiddens,
    /// logits.
    std::vector<float> u0f, h1f, h2f, logitsf;
    /// Query cap in watts, stashed by run_heads for the decode-time
    /// constraint check (0 for EDP queries, which carry the cap in the
    /// prediction itself).
    double cap_w = 0.0;
  };

  /// Arena-backed per-thread serving workspace: every per-request scratch
  /// tensor of run_heads — extra features, dense activations, logits,
  /// predictions — laid into ONE contiguous nn::Arena with lifetime-based
  /// byte reuse (nn/arena.hpp). bind() re-plans only when the model's
  /// dense shape or precision changes (first use and hot reloads);
  /// steady-state run_heads/decode touch one hot cache-resident block and
  /// never allocate.
  class Workspace {
   public:
    /// Plan (or re-plan) the arena for `m`; cheap no-op when already
    /// bound to the same shape/precision key.
    void bind(const ModelState& m);
    /// Total planned arena bytes (0 before the first bind).
    std::size_t arena_bytes() const { return arena_.bytes(); }
    const nn::ArenaPlan& plan() const { return arena_.plan(); }

   private:
    friend class ModelState;
    std::uint64_t key_ = 0;  ///< shape/precision fingerprint; 0 = unbound
    double cap_w_ = 0.0;     ///< query cap stash (see Scratch::cap_w)
    nn::Arena arena_;
  };

  // --- Validation (all throw pnp::Error) ---------------------------------
  void validate_region(int region) const;
  void validate_cap(int cap_index) const;
  /// Require the trained scenario to be `m`; `what` names the request in
  /// the error message.
  void require_mode(core::PnpTuner::Mode m, const char* what) const;
  void require_scalar_cap() const;

  // --- Serving primitives ------------------------------------------------
  /// GNN-encode one region into `out`, reusing its buffers (zero
  /// allocation when the shapes already match).
  void encode(int region, nn::RgcnNet::GnnCache& out) const;

  /// Dense pass + argmax over a cached encoding; fills s.preds. Exactly
  /// one of `cap_index` / `cap_w` is set for power queries (cap_w serves
  /// held-out caps on scalar-cap models); both empty for EDP.
  void run_heads(const nn::RgcnNet::GnnCache& enc, int region,
                 std::optional<int> cap_index, std::optional<double> cap_w,
                 Scratch& s) const;

  /// Arena-backed run_heads: identical arithmetic (the dense phase runs
  /// through the same span implementation), zero allocations at steady
  /// state. Results are bit-identical to the Scratch overload.
  void run_heads(const nn::RgcnNet::GnnCache& enc, int region,
                 std::optional<int> cap_index, std::optional<double> cap_w,
                 Workspace& ws) const;

  /// Decode after a power-scenario run_heads: the argmax tuple in preds is
  /// constraint-checked against the stashed query cap; a violation falls
  /// back to beam search over the logits (both live in the scratch /
  /// workspace, at the serving tier). On unconstrained spaces this is the
  /// historic argmax decode bit-for-bit.
  sim::OmpConfig decode_power(const Scratch& s) const;
  sim::OmpConfig decode_power(const Workspace& ws) const;
  /// Decode after an EDP run_heads (same fast-path/beam protocol).
  core::PnpTuner::JointChoice decode_edp(const Scratch& s) const;
  core::PnpTuner::JointChoice decode_edp(const Workspace& ws) const;

  /// Beam width of the constraint-fallback search (0 = full width).
  int beam_width() const { return beam_width_; }

 private:
  template <typename T>
  sim::OmpConfig decode_power_logits_t(std::span<const int> preds,
                                       std::span<const T> logits,
                                       double cap_w) const;
  template <typename T>
  core::PnpTuner::JointChoice decode_edp_logits_t(
      std::span<const int> preds, std::span<const T> logits) const;
  std::span<const int> preds_of(const Workspace& ws) const;

  core::PnpTuner tuner_;
  nn::Precision precision_ = nn::Precision::f64;
  int beam_width_ = 0;
  /// f32 tier only: the dense weights down-converted once at construction.
  nn::RgcnNet::DenseWeightsF32 dense_f32_;
};

struct EngineOptions {
  /// Serving tier override; nullopt uses the artifact's persisted
  /// preference (f64 for artifacts predating the f32 tier).
  std::optional<nn::Precision> precision;
  /// Arena-backed per-query scratch (the fast path). false keeps the
  /// allocation-path oracle — kept selectable so tests can compare both.
  bool use_arena = true;
  /// Constraint-fallback beam width (<= 0 = full width). Only consulted
  /// when the argmax tuple is pruned by the space's constraint layer.
  int beam_width = 0;
};

class InferenceEngine {
 public:
  /// Serve the artifact at `path` against `db` (the fresh-process entry:
  /// load + validate + ready to predict). Throws pnp::Error on malformed
  /// or incompatible artifacts.
  InferenceEngine(const core::MeasurementDb& db, const std::string& path,
                  EngineOptions options = {});

  /// Adopt an already-trained or already-loaded tuner.
  explicit InferenceEngine(core::PnpTuner tuner, EngineOptions options = {});

  const core::PnpTuner& tuner() const { return state_.tuner(); }
  /// The immutable model this engine serves.
  const ModelState& state() const { return state_; }
  nn::Precision precision() const { return state_.precision(); }

  /// Single-query predictions; bit-identical to PnpTuner::predict_* but
  /// allocation-free in steady state.
  sim::OmpConfig predict_power(int region, int cap_index);
  core::PnpTuner::JointChoice predict_edp(int region);

  /// Batched predictions, one result per query in query order.
  /// Bit-identical to calling the single-query APIs one by one.
  std::vector<sim::OmpConfig> predict_power_batch(
      std::span<const PowerQuery> queries);
  std::vector<core::PnpTuner::JointChoice> predict_edp_batch(
      std::span<const int> regions);

  /// Batched scenario-1 predictions at an arbitrary package cap in watts —
  /// including caps outside the training search space (paper Figs. 4–5).
  /// Requires a scalar-cap model (cap_onehot == false); bit-identical to
  /// PnpTuner::predict_power_at per region. Used by the cross-suite
  /// generalization harness to serve held-out-cap grids over generated
  /// corpora.
  std::vector<sim::OmpConfig> predict_power_at_batch(
      std::span<const int> regions, double cap_w);

  /// Number of region encodings currently cached.
  std::size_t cached_encodings() const { return enc_.size(); }

 private:
  /// Per-thread serving state (index 0 serves the serial path): the
  /// allocation-path Scratch and the arena-backed Workspace; EngineOptions
  /// picks which one each query uses.
  struct PerThread {
    ModelState::Scratch scratch;
    ModelState::Workspace ws;
  };

  /// Encode any not-yet-cached regions of the batch (parallel when built
  /// with PNP_PARALLEL).
  void ensure_encoded(std::span<const int> regions);
  /// Run `fn(i, per_thread)` for every i in [0, n) — query-parallel with
  /// per-thread scratch under PNP_PARALLEL, serial otherwise. Queries are
  /// independent and write disjoint outputs, so the parallel path is
  /// bit-identical to the serial one.
  template <class Fn>
  void for_each_query(std::size_t n, Fn&& fn);
  /// run_heads through the arena or allocation path per opt_.use_arena,
  /// then decode_power.
  sim::OmpConfig serve_power(const nn::RgcnNet::GnnCache& enc, int region,
                             std::optional<int> cap_index,
                             std::optional<double> cap_w, PerThread& t);

  ModelState state_;
  EngineOptions opt_;
  std::unordered_map<int, nn::RgcnNet::GnnCache> enc_;
  std::vector<PerThread> scratch_;
  std::vector<int> pending_;      ///< ensure_encoded work list (reused)
  std::vector<int> regions_buf_;  ///< per-batch region-id staging (reused)
};

}  // namespace pnp::serve
