#include "serve/retrainer.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <utility>

#include "common/error.hpp"
#include "core/tuner_artifact.hpp"

namespace pnp::serve {

namespace {

const char* outcome_name(RetrainController::Outcome o) {
  switch (o) {
    case RetrainController::Outcome::NoNewData: return "no-new-data";
    case RetrainController::Outcome::Published: return "published";
    case RetrainController::Outcome::RejectedGate: return "rejected-gate";
    case RetrainController::Outcome::RejectedCandidate:
      return "rejected-candidate";
    case RetrainController::Outcome::RejectedLog: return "rejected-log";
  }
  return "unknown";
}

}  // namespace

RetrainController::RetrainController(const sim::Simulator& sim,
                                     TuningService& service,
                                     RetrainOptions options)
    : sim_(sim),
      service_(service),
      opt_(std::move(options)),
      train_db_(service.db()) {
  PNP_CHECK_MSG(!opt_.log_path.empty(), "retrain needs a measurement log path");
  PNP_CHECK_MSG(!opt_.publish_path.empty(),
                "retrain needs a candidate publish path");
  PNP_CHECK_MSG(service_.mode() == core::PnpTuner::Mode::Power,
                "the retrain gate scores the power scenario; an edp service "
                "cannot be retrained online");

  const int n = train_db_.num_regions();
  holdout_ = opt_.holdout_regions;
  if (holdout_.empty()) {
    // Deterministic default: every 4th region is held out of fine-tuning
    // and scores the gate.
    for (int r = 3; r < n; r += 4) holdout_.push_back(r);
  }
  std::sort(holdout_.begin(), holdout_.end());
  holdout_.erase(std::unique(holdout_.begin(), holdout_.end()),
                 holdout_.end());
  for (int r : holdout_)
    PNP_CHECK_MSG(r >= 0 && r < n,
                  "holdout region " << r << " outside the db's " << n);
  for (int r = 0; r < n; ++r)
    if (!std::binary_search(holdout_.begin(), holdout_.end(), r))
      train_regions_.push_back(r);
  PNP_CHECK_MSG(!holdout_.empty() && !train_regions_.empty(),
                "retrain needs both a training and a held-out region set ("
                    << n << " regions, " << holdout_.size() << " held out)");
}

RetrainController::~RetrainController() { stop(); }

void RetrainController::start(std::chrono::milliseconds interval) {
  PNP_CHECK_MSG(!thread_.joinable(), "retrain thread already started");
  {
    std::lock_guard<std::mutex> lk(thread_mu_);
    stop_ = false;
  }
  thread_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lk(thread_mu_);
    for (;;) {
      if (stop_cv_.wait_for(lk, interval, [this] { return stop_; })) return;
      lk.unlock();
      run_once();
      lk.lock();
    }
  });
}

void RetrainController::stop() {
  {
    std::lock_guard<std::mutex> lk(thread_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

RetrainController::Stats RetrainController::stats() const {
  Stats s;
  s.observed = observed_.load(std::memory_order_acquire);
  s.attempts = attempts_.load(std::memory_order_acquire);
  s.published = published_.load(std::memory_order_acquire);
  s.rejected_gate = rejected_gate_.load(std::memory_order_acquire);
  s.rejected_candidate = rejected_candidate_.load(std::memory_order_acquire);
  s.rejected_log = rejected_log_.load(std::memory_order_acquire);
  s.last_published_version =
      last_published_version_.load(std::memory_order_acquire);
  return s;
}

void RetrainController::log_outcome(Outcome outcome,
                                    const std::string& detail) {
  if (!opt_.verbose) return;
  std::fprintf(stderr, "retrain: %s%s%s\n", outcome_name(outcome),
               detail.empty() ? "" : " — ", detail.c_str());
}

RetrainController::Outcome RetrainController::run_once() {
  std::lock_guard<std::mutex> lk(round_mu_);
  return run_once_locked();
}

RetrainController::Outcome RetrainController::run_once_locked() {
  // --- 1. Ingest: read + validate the whole log, replay the new tail. ----
  std::vector<core::MeasurementRecord> records;
  try {
    records = core::MeasurementLog::read_all(opt_.log_path);
    PNP_CHECK_MSG(records.size() >= consumed_,
                  "measurement log shrank under the retrainer ("
                      << records.size() << " records, " << consumed_
                      << " already consumed)");
  } catch (const std::exception& e) {
    rejected_log_.fetch_add(1, std::memory_order_release);
    log_outcome(Outcome::RejectedLog, e.what());
    return Outcome::RejectedLog;
  }
  if (records.size() - consumed_ < opt_.min_new_records) {
    log_outcome(Outcome::NoNewData, "");
    return Outcome::NoNewData;
  }
  try {
    // All-or-nothing: one record that cannot land on the grid aborts the
    // whole batch before any cell is overwritten, and stays unconsumed —
    // a poisoned log keeps being rejected, it never trains anything.
    const std::size_t applied =
        core::replay_observations(train_db_, records, consumed_);
    consumed_ = records.size();
    observed_.fetch_add(applied, std::memory_order_release);
  } catch (const std::exception& e) {
    rejected_log_.fetch_add(1, std::memory_order_release);
    log_outcome(Outcome::RejectedLog, e.what());
    return Outcome::RejectedLog;
  }

  // --- 2. Warm-start a candidate from the incumbent's weights. -----------
  core::SplitMetrics inc_metrics, cand_metrics;
  std::uint64_t incumbent_version = 0;
  try {
    const core::TunerArtifact incumbent_art = service_.current_artifact();
    incumbent_version = service_.model_version();
    attempts_.fetch_add(1, std::memory_order_release);

    core::PnpTuner candidate =
        core::PnpTuner::from_artifact(train_db_, incumbent_art);
    candidate.fine_tune(train_regions_, opt_.fine_tune);

    // --- 3. Gate: incumbent vs candidate on the held-out split. ----------
    core::EvalSplit split;
    split.name = "retrain-gate";
    split.train_regions = train_regions_;
    split.test_regions = holdout_;
    const core::Evaluator ev(sim_, train_db_);
    const auto queries = ev.queries(split);

    const core::PnpTuner incumbent =
        core::PnpTuner::from_artifact(train_db_, incumbent_art);
    std::vector<sim::OmpConfig> inc_cfgs, cand_cfgs;
    inc_cfgs.reserve(queries.size());
    cand_cfgs.reserve(queries.size());
    for (const auto& q : queries) {
      inc_cfgs.push_back(incumbent.predict_power(q.region, q.cap_index));
      cand_cfgs.push_back(candidate.predict_power(q.region, q.cap_index));
    }
    inc_metrics = ev.score(split, inc_cfgs).overall;
    cand_metrics = ev.score(split, cand_cfgs).overall;

    const bool better =
        cand_metrics.geomean_speedup >
            inc_metrics.geomean_speedup + opt_.min_speedup_gain &&
        cand_metrics.oracle_match >=
            inc_metrics.oracle_match - opt_.oracle_match_slack;
    bool tier_ok = true;
    double flip_rate = 0.0;
    if (better && service_.precision() == nn::Precision::f32) {
      // The service serves the f32 tier: the candidate must also stay
      // within the precision-delta bound, scored exactly like pnp_eval's
      // precision_tier block (f64 reference vs f32 engine output).
      EngineOptions eo;
      eo.precision = nn::Precision::f32;
      InferenceEngine f32_engine(
          core::PnpTuner::from_artifact(train_db_, candidate.to_artifact()),
          eo);
      std::vector<PowerQuery> pq;
      pq.reserve(queries.size());
      for (const auto& q : queries) pq.push_back({q.region, q.cap_index});
      const auto f32_cfgs = f32_engine.predict_power_batch(pq);
      flip_rate = ev.precision_delta(split, cand_cfgs, f32_cfgs).flip_rate;
      tier_ok = flip_rate <= opt_.max_flip_rate;
    }

    char detail[256];
    std::snprintf(detail, sizeof detail,
                  "held-out speedup %.4f -> %.4f, oracle-match %.3f -> %.3f, "
                  "flip-rate %.3f (incumbent v%llu)",
                  inc_metrics.geomean_speedup, cand_metrics.geomean_speedup,
                  inc_metrics.oracle_match, cand_metrics.oracle_match,
                  flip_rate,
                  static_cast<unsigned long long>(incumbent_version));
    if (!better || !tier_ok) {
      rejected_gate_.fetch_add(1, std::memory_order_release);
      log_outcome(Outcome::RejectedGate, detail);
      return Outcome::RejectedGate;
    }

    // --- 4. Publish through the zero-downtime reload path. ---------------
    candidate.save(opt_.publish_path);
    if (opt_.test_hook_after_save) opt_.test_hook_after_save(opt_.publish_path);
    const std::uint64_t v = service_.reload(opt_.publish_path);
    last_published_version_.store(v, std::memory_order_release);
    published_.fetch_add(1, std::memory_order_release);
    log_outcome(Outcome::Published, detail);
    return Outcome::Published;
  } catch (const std::exception& e) {
    // Training, save, or reload failed: the candidate is discarded and the
    // incumbent keeps serving (reload() never publishes on failure).
    rejected_candidate_.fetch_add(1, std::memory_order_release);
    log_outcome(Outcome::RejectedCandidate, e.what());
    return Outcome::RejectedCandidate;
  }
}

}  // namespace pnp::serve
