#pragma once

/// \file protocol.hpp
/// The pnp_served wire protocol (docs/SERVING.md, "Network protocol"):
/// request/response payload encode/decode shared byte-for-byte by the
/// server (serve/server.cpp), the load generator (tools/pnp_loadgen.cpp),
/// and the test clients. Every message rides in a net.hpp length-prefixed
/// frame; this file defines what is inside the frame.
///
/// Request payload (little-endian):
///
///   u64 id          echoed verbatim in the response (responses may be
///                   written out of order across a connection's pipeline)
///   u8  opcode      1 power | 2 power_at | 3 edp | 4 reload | 5 stats |
///                   6 observe
///   opcode 1: u32 machine, u32 region, u32 cap_index
///   opcode 2: u32 machine, u32 region, f64 cap_watts
///   opcode 3: u32 machine, u32 region
///   opcode 4: u32 path_len, path bytes (the artifact to hot-reload)
///   opcode 5: (empty)
///   opcode 6: u32 region, f64 cap_watts, u32 threads, u8 schedule,
///             u32 chunk, f64 seconds, f64 joules — one observed
///             measurement for the feedback loop (core::MeasurementLog)
///
/// Response payload:
///
///   u64 id
///   u8  status      0 ok | 1 error | 2 shed
///   status 0: u8 opcode echo, then per opcode:
///     1/2/3: u32 threads, u8 schedule, u32 chunk, u32 cap_index (two's
///            complement; -1 for power_at), u64 model_version
///     4:     u64 new_version
///     5:     the stats blob: u64 × {connections, ok, error, shed,
///            malformed} server counters, u64 × {requests, batches,
///            coalesced, encode_hits, encode_misses, reloads,
///            failed_reloads} TuningService counters, u64 × {observed,
///            attempts, published, rejected_gate, rejected_candidate,
///            rejected_log, last_published_version} retrain counters
///            (all zero when the daemon runs without a retrain
///            controller), then the common::LatencyHistogram wire form
///     6:     u64 seq — the measurement's 1-based sequence number in the
///            durable log (the append is flushed before this reply is
///            written)
///   status 1: u32 msg_len, message bytes (the pnp::Error text)
///   status 2: (empty — the admission queue was full; retry later)
///
/// Trailing bytes after any well-formed payload are a protocol error.
/// Integers that carry an `int` (region, cap_index, chunk) are encoded as
/// two's-complement u32 so invalid negatives round-trip into the
/// service's own validation instead of dying in the codec.
///
/// The tune opcodes (1/2/3) carry a required `machine` field — the tenant
/// index of a multi-tenant daemon (pnp_served --machine A,B,...). Single-
/// tenant daemons accept only machine 0; routing to an out-of-range
/// tenant is a Status::Error, not a malformed frame. Reload deliberately
/// carries no machine: it is a broadcast barrier that swaps every
/// tenant's model. Observe always lands on tenant 0, the retraining
/// tenant. Stats sums the per-tenant service counters.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/latency_histogram.hpp"
#include "core/measurement_log.hpp"
#include "serve/tuning_service.hpp"

namespace pnp::serve::protocol {

enum class Op : std::uint8_t {
  Power = 1,
  PowerAt = 2,
  Edp = 3,
  Reload = 4,
  Stats = 5,
  Observe = 6,
};

enum class Status : std::uint8_t {
  Ok = 0,
  Error = 1,
  Shed = 2,
};

struct Request {
  std::uint64_t id = 0;
  Op op = Op::Power;
  std::uint32_t machine = 0;  ///< tenant index (Power / PowerAt / Edp)
  TuneRequest tune;          ///< Power / PowerAt / Edp
  std::string reload_path;   ///< Reload
  core::MeasurementRecord observe;  ///< Observe
};

/// Server-side counters carried by a stats response, alongside the
/// TuningService counters and the latency histogram.
struct ServerCounters {
  std::uint64_t connections = 0;  ///< accepted connections
  std::uint64_t ok = 0;           ///< requests answered with Status::Ok
  std::uint64_t errors = 0;       ///< requests answered with Status::Error
  std::uint64_t shed = 0;         ///< requests refused with Status::Shed
  std::uint64_t malformed = 0;    ///< frames rejected before admission
};

/// Feedback-loop counters carried by a stats response (docs/SERVING.md,
/// "Model lifecycle"). All zero when the daemon runs without a retrain
/// controller.
struct RetrainCounters {
  std::uint64_t observed = 0;       ///< log records ingested into the train db
  std::uint64_t attempts = 0;       ///< retrain rounds that trained a candidate
  std::uint64_t published = 0;      ///< candidates that passed the gate
  std::uint64_t rejected_gate = 0;  ///< candidates worse on the held-out split
  std::uint64_t rejected_candidate = 0;  ///< candidates whose save/reload failed
  std::uint64_t rejected_log = 0;   ///< rounds aborted by a corrupt/poisoned log
  std::uint64_t last_published_version = 0;  ///< 0 = never published
};

/// A decoded response. Which fields are meaningful depends on (status,
/// op), mirroring the payload layout above.
struct Response {
  std::uint64_t id = 0;
  Status status = Status::Ok;
  Op op = Op::Power;           ///< echoed opcode (Status::Ok only)
  TuneResult result;           ///< tune opcodes
  std::uint64_t new_version = 0;  ///< reload
  std::uint64_t observe_seq = 0;  ///< observe: durable log sequence number
  std::string error;           ///< Status::Error message
  ServerCounters server;       ///< stats
  TuningService::Stats service;  ///< stats
  RetrainCounters retrain;     ///< stats
};

std::string encode_request(const Request& q);
/// Throws pnp::Error on malformed payloads (truncation, unknown opcode,
/// trailing bytes). The id, when present, is recoverable from the first 8
/// bytes even of a malformed payload — see peek_id.
Request decode_request(std::string_view payload);

/// Best-effort id of a request payload too malformed to decode (0 when
/// even the id is truncated), so error replies can still name the
/// request they reject.
std::uint64_t peek_id(std::string_view payload);

std::string encode_tune_response(std::uint64_t id, Op op, const TuneResult& r);
std::string encode_reload_response(std::uint64_t id, std::uint64_t version);
std::string encode_observe_response(std::uint64_t id, std::uint64_t seq);
std::string encode_stats_response(std::uint64_t id, const ServerCounters& sc,
                                  const TuningService::Stats& svc,
                                  const RetrainCounters& rc,
                                  const LatencyHistogram& hist);
std::string encode_error_response(std::uint64_t id, std::string_view message);
std::string encode_shed_response(std::uint64_t id);

/// Decode any response payload. For stats responses the histogram is
/// decoded into `stats_hist` when non-null (and skipped otherwise).
/// Throws pnp::Error on malformed payloads.
Response decode_response(std::string_view payload,
                         LatencyHistogram* stats_hist = nullptr);

}  // namespace pnp::serve::protocol
