#include "serve/inference_engine.hpp"

#ifdef PNP_PARALLEL
#include <omp.h>
#endif

#include "common/error.hpp"
#include "core/config_search.hpp"
#include "core/tuner_artifact.hpp"
#include "nn/loss.hpp"

namespace pnp::serve {

namespace {

int worker_count() {
#ifdef PNP_PARALLEL
  return omp_get_max_threads();
#else
  return 1;
#endif
}

const char* mode_name(core::PnpTuner::Mode m) {
  switch (m) {
    case core::PnpTuner::Mode::Power:
      return "power";
    case core::PnpTuner::Mode::Edp:
      return "edp";
    default:
      return "untrained";
  }
}

}  // namespace

// --- ModelState --------------------------------------------------------------

namespace {

// Arena tensor indices, in execution-step order. The f64 tier mirrors the
// allocation path's DenseCache buffer-for-buffer (separate pre/post
// activations) so both paths run the identical dense_forward_spans code;
// the f32 tier runs ReLU in place and needs fewer slots.
enum F64Slot { kExtra64 = 0, kU0, kZ1, kA1, kZ2, kA2, kLogits, kPreds64 };
enum F32Slot { kExtra32 = 0, kU0F, kH1F, kH2F, kLogitsF, kPreds32 };

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

ModelState::ModelState(core::PnpTuner tuner,
                       std::optional<nn::Precision> precision, int beam_width)
    : tuner_(std::move(tuner)),
      precision_(precision.value_or(tuner_.serve_precision())),
      beam_width_(beam_width) {
  PNP_CHECK_MSG(
      tuner_.net_ != nullptr && tuner_.mode_ != core::PnpTuner::Mode::None,
      "serving needs a trained or loaded tuner");
  if (precision_ == nn::Precision::f32)
    dense_f32_ = tuner_.net_->dense_weights_f32();
}

void ModelState::Workspace::bind(const ModelState& m) {
  const nn::RgcnNetConfig& cfg = m.tuner_.net_->config();
  const int heads = static_cast<int>(cfg.head_sizes.size());
  std::uint64_t key = 0x8000000000000001ull;  // never 0 (= unbound)
  key = mix(key, static_cast<std::uint64_t>(m.precision_));
  key = mix(key, static_cast<std::uint64_t>(cfg.extra_features));
  key = mix(key, static_cast<std::uint64_t>(cfg.hidden));
  key = mix(key, static_cast<std::uint64_t>(cfg.dense_hidden1));
  key = mix(key, static_cast<std::uint64_t>(cfg.dense_hidden2));
  key = mix(key, static_cast<std::uint64_t>(cfg.total_logits()));
  key = mix(key, static_cast<std::uint64_t>(heads));
  if (key == key_) return;

  // Lifetimes by execution step of run_heads: fill_extra writes `extra`
  // (0), u0 = readout ⊕ extra (1), each linear/activation is one step,
  // argmax reads logits and writes preds last. Buffers whose intervals
  // never meet (e.g. extra and z1) share bytes.
  const auto d = [](int n) { return static_cast<std::size_t>(n) * sizeof(double); };
  const auto f = [](int n) { return static_cast<std::size_t>(n) * sizeof(float); };
  std::vector<nn::TensorSpec> specs;
  if (m.precision_ == nn::Precision::f64) {
    specs = {
        {"extra", d(cfg.extra_features), 0, 1},
        {"u0", d(cfg.hidden + cfg.extra_features), 1, 2},
        {"z1", d(cfg.dense_hidden1), 2, 3},
        {"a1", d(cfg.dense_hidden1), 3, 4},
        {"z2", d(cfg.dense_hidden2), 4, 5},
        {"a2", d(cfg.dense_hidden2), 5, 6},
        {"logits", d(cfg.total_logits()), 6, 7},
        {"preds", static_cast<std::size_t>(heads) * sizeof(int), 7, 8},
    };
  } else {
    specs = {
        {"extra", d(cfg.extra_features), 0, 1},
        {"u0f", f(cfg.hidden + cfg.extra_features), 1, 2},
        {"h1f", f(cfg.dense_hidden1), 2, 3},
        {"h2f", f(cfg.dense_hidden2), 3, 4},
        {"logitsf", f(cfg.total_logits()), 4, 5},
        {"preds", static_cast<std::size_t>(heads) * sizeof(int), 5, 6},
    };
  }
  arena_.reset(nn::ArenaPlan::build(std::move(specs)));
  key_ = key;
}

bool ModelState::scalar_cap() const { return !tuner_.opt_.cap_onehot; }

void ModelState::validate_region(int region) const {
  PNP_CHECK_MSG(region >= 0 && region < tuner_.db_.num_regions(),
                "region " << region << " out of range [0, "
                          << tuner_.db_.num_regions() << ")");
}

void ModelState::validate_cap(int cap_index) const {
  PNP_CHECK_MSG(cap_index >= 0 && cap_index < tuner_.db_.num_caps(),
                "cap index " << cap_index << " out of range [0, "
                             << tuner_.db_.num_caps() << ")");
}

void ModelState::require_mode(core::PnpTuner::Mode m, const char* what) const {
  PNP_CHECK_MSG(tuner_.mode_ == m, what << " not servable by a "
                                        << mode_name(tuner_.mode_)
                                        << "-scenario model");
}

void ModelState::require_scalar_cap() const {
  PNP_CHECK_MSG(!tuner_.opt_.cap_onehot,
                "predicting at arbitrary caps requires a scalar-cap model "
                "(cap_onehot == false)");
}

void ModelState::encode(int region, nn::RgcnNet::GnnCache& out) const {
  validate_region(region);
  tuner_.net_->encode_into(tuner_.tensors_[static_cast<std::size_t>(region)],
                           out);
  if (precision_ == nn::Precision::f32) {
    // Down-convert once per encode; cached encodings then carry both
    // tiers, so the per-query fast path never touches doubles.
    out.readout_f32.resize(out.readout.size());
    for (std::size_t i = 0; i < out.readout.size(); ++i)
      out.readout_f32[i] = static_cast<float>(out.readout[i]);
  }
}

void ModelState::run_heads(const nn::RgcnNet::GnnCache& enc, int region,
                           std::optional<int> cap_index,
                           std::optional<double> cap_w, Scratch& s) const {
  s.cap_w = cap_index.has_value()
                ? tuner_.db_.space()
                      .power_caps()[static_cast<std::size_t>(*cap_index)]
                : cap_w.value_or(0.0);
  tuner_.fill_extra(region, cap_index, cap_w, s.extra);
  const nn::RgcnNet& net = *tuner_.net_;
  const nn::RgcnNetConfig& cfg = net.config();
  const int heads = static_cast<int>(cfg.head_sizes.size());
  s.preds.clear();
  if (precision_ == nn::Precision::f64) {
    net.dense_forward_into(enc.readout, s.extra, s.dc);
    for (int h = 0; h < heads; ++h)
      s.preds.push_back(nn::argmax_index(net.head_logits(s.dc, h)));
    return;
  }
  PNP_CHECK_MSG(enc.readout_f32.size() == enc.readout.size(),
                "encoding lacks the f32 readout — encode regions through "
                "this f32 ModelState");
  s.u0f.resize(enc.readout_f32.size() + s.extra.size());
  std::copy(enc.readout_f32.begin(), enc.readout_f32.end(), s.u0f.begin());
  for (std::size_t i = 0; i < s.extra.size(); ++i)
    s.u0f[enc.readout_f32.size() + i] = static_cast<float>(s.extra[i]);
  s.h1f.resize(static_cast<std::size_t>(cfg.dense_hidden1));
  s.h2f.resize(static_cast<std::size_t>(cfg.dense_hidden2));
  s.logitsf.resize(static_cast<std::size_t>(cfg.total_logits()));
  nn::RgcnNet::dense_forward_f32(dense_f32_, s.u0f, s.h1f, s.h2f, s.logitsf);
  for (int h = 0; h < heads; ++h)
    s.preds.push_back(nn::argmax_index(
        std::span<const float>(s.logitsf)
            .subspan(static_cast<std::size_t>(net.head_offset(h)),
                     static_cast<std::size_t>(
                         cfg.head_sizes[static_cast<std::size_t>(h)]))));
}

void ModelState::run_heads(const nn::RgcnNet::GnnCache& enc, int region,
                           std::optional<int> cap_index,
                           std::optional<double> cap_w, Workspace& ws) const {
  ws.bind(*this);
  ws.cap_w_ = cap_index.has_value()
                  ? tuner_.db_.space()
                        .power_caps()[static_cast<std::size_t>(*cap_index)]
                  : cap_w.value_or(0.0);
  const nn::RgcnNet& net = *tuner_.net_;
  const nn::RgcnNetConfig& cfg = net.config();
  const int heads = static_cast<int>(cfg.head_sizes.size());
  nn::Arena& a = ws.arena_;
  const auto dspan = [&a](std::size_t slot) {
    return std::span<double>(a.data<double>(slot), a.count<double>(slot));
  };
  const auto fspan = [&a](std::size_t slot) {
    return std::span<float>(a.data<float>(slot), a.count<float>(slot));
  };
  if (precision_ == nn::Precision::f64) {
    const std::span<double> extra = dspan(kExtra64);
    tuner_.fill_extra_into(region, cap_index, cap_w, extra);
    const std::span<double> logits = dspan(kLogits);
    net.dense_forward_spans(enc.readout, extra, dspan(kU0), dspan(kZ1),
                            dspan(kA1), dspan(kZ2), dspan(kA2), logits);
    int* preds = a.data<int>(kPreds64);
    for (int h = 0; h < heads; ++h)
      preds[h] = nn::argmax_index(std::span<const double>(logits).subspan(
          static_cast<std::size_t>(net.head_offset(h)),
          static_cast<std::size_t>(
              cfg.head_sizes[static_cast<std::size_t>(h)])));
    return;
  }
  PNP_CHECK_MSG(enc.readout_f32.size() == enc.readout.size(),
                "encoding lacks the f32 readout — encode regions through "
                "this f32 ModelState");
  const std::span<double> extra = dspan(kExtra32);
  tuner_.fill_extra_into(region, cap_index, cap_w, extra);
  const std::span<float> u0 = fspan(kU0F);
  std::copy(enc.readout_f32.begin(), enc.readout_f32.end(), u0.begin());
  for (std::size_t i = 0; i < extra.size(); ++i)
    u0[enc.readout_f32.size() + i] = static_cast<float>(extra[i]);
  const std::span<float> logits = fspan(kLogitsF);
  nn::RgcnNet::dense_forward_f32(dense_f32_, u0, fspan(kH1F), fspan(kH2F),
                                 logits);
  int* preds = a.data<int>(kPreds32);
  for (int h = 0; h < heads; ++h)
    preds[h] = nn::argmax_index(std::span<const float>(logits).subspan(
        static_cast<std::size_t>(net.head_offset(h)),
        static_cast<std::size_t>(
            cfg.head_sizes[static_cast<std::size_t>(h)])));
}

std::span<const int> ModelState::preds_of(const Workspace& ws) const {
  PNP_CHECK_MSG(ws.key_ != 0, "decode before run_heads on this workspace");
  const std::size_t slot = precision_ == nn::Precision::f64
                               ? static_cast<std::size_t>(kPreds64)
                               : static_cast<std::size_t>(kPreds32);
  return {ws.arena_.data<int>(slot), ws.arena_.count<int>(slot)};
}

template <typename T>
sim::OmpConfig ModelState::decode_power_logits_t(std::span<const int> preds,
                                                 std::span<const T> logits,
                                                 double cap_w) const {
  const core::SearchSpace& space = tuner_.db_.space();
  // Fast path: run_heads already computed the per-head (or flat) argmax —
  // the maximum-sum tuple. If the constraint layer admits it, it is the
  // constrained argmax too, and this decode is the historic one verbatim.
  const sim::OmpConfig fast = tuner_.decode_config(preds, 0);
  if (space.is_valid(fast, cap_w)) return fast;
  if (tuner_.opt_.factored_heads) {
    const int nt = space.num_thread_classes();
    const int ns = space.num_schedule_classes();
    const int nc = space.num_chunk_classes();
    const auto choice = core::search_power<T>(
        space, cap_w, logits.subspan(0, static_cast<std::size_t>(nt)),
        logits.subspan(static_cast<std::size_t>(nt),
                       static_cast<std::size_t>(ns)),
        logits.subspan(static_cast<std::size_t>(nt + ns),
                       static_cast<std::size_t>(nc)),
        beam_width_);
    return space.config_from_classes(choice.thread_cls, choice.sched_cls,
                                     choice.chunk_cls);
  }
  const int flat =
      core::dense_argmax_valid<T>(space, logits, /*edp_scenario=*/false, cap_w);
  if (flat < 0) return space.default_config();
  const core::TunerClasses c =
      core::tuner_classes_from_flat(space, flat, /*edp_scenario=*/false);
  return space.config_from_classes(c.thread, c.sched, c.chunk);
}

template <typename T>
core::PnpTuner::JointChoice ModelState::decode_edp_logits_t(
    std::span<const int> preds, std::span<const T> logits) const {
  const core::SearchSpace& space = tuner_.db_.space();
  core::PnpTuner::JointChoice jc;
  if (tuner_.opt_.factored_heads) {
    jc.cap_index = preds[0];
    jc.cfg = tuner_.decode_config(preds, 1);
  } else {
    jc.cap_index = core::tuner_classes_from_flat(space, preds[0],
                                                 /*edp_scenario=*/true)
                       .cap;
    jc.cfg = tuner_.decode_config(preds, 0);
  }
  const double cap_w =
      space.power_caps()[static_cast<std::size_t>(jc.cap_index)];
  if (space.is_valid(jc.cfg, cap_w)) return jc;
  if (tuner_.opt_.factored_heads) {
    const int np = space.num_cap_classes();
    const int nt = space.num_thread_classes();
    const int ns = space.num_schedule_classes();
    const int nc = space.num_chunk_classes();
    const auto choice = core::search_edp<T>(
        space, logits.subspan(0, static_cast<std::size_t>(np)),
        logits.subspan(static_cast<std::size_t>(np),
                       static_cast<std::size_t>(nt)),
        logits.subspan(static_cast<std::size_t>(np + nt),
                       static_cast<std::size_t>(ns)),
        logits.subspan(static_cast<std::size_t>(np + nt + ns),
                       static_cast<std::size_t>(nc)),
        beam_width_);
    jc.cap_index = choice.cap_cls;
    jc.cfg = space.config_from_classes(choice.thread_cls, choice.sched_cls,
                                       choice.chunk_cls);
    return jc;
  }
  const int flat = core::dense_argmax_valid<T>(space, logits,
                                               /*edp_scenario=*/true, 0.0);
  if (flat < 0) {
    jc.cap_index = space.num_cap_classes() - 1;
    jc.cfg = space.default_config();
    return jc;
  }
  const core::TunerClasses c =
      core::tuner_classes_from_flat(space, flat, /*edp_scenario=*/true);
  jc.cap_index = c.cap;
  jc.cfg = space.config_from_classes(c.thread, c.sched, c.chunk);
  return jc;
}

sim::OmpConfig ModelState::decode_power(const Scratch& s) const {
  if (precision_ == nn::Precision::f64)
    return decode_power_logits_t<double>(
        s.preds, std::span<const double>(s.dc.logits), s.cap_w);
  return decode_power_logits_t<float>(
      s.preds, std::span<const float>(s.logitsf), s.cap_w);
}

sim::OmpConfig ModelState::decode_power(const Workspace& ws) const {
  const std::span<const int> preds = preds_of(ws);
  if (precision_ == nn::Precision::f64)
    return decode_power_logits_t<double>(
        preds,
        std::span<const double>(ws.arena_.data<double>(kLogits),
                                ws.arena_.count<double>(kLogits)),
        ws.cap_w_);
  return decode_power_logits_t<float>(
      preds,
      std::span<const float>(ws.arena_.data<float>(kLogitsF),
                             ws.arena_.count<float>(kLogitsF)),
      ws.cap_w_);
}

core::PnpTuner::JointChoice ModelState::decode_edp(const Scratch& s) const {
  if (precision_ == nn::Precision::f64)
    return decode_edp_logits_t<double>(s.preds,
                                       std::span<const double>(s.dc.logits));
  return decode_edp_logits_t<float>(s.preds,
                                    std::span<const float>(s.logitsf));
}

core::PnpTuner::JointChoice ModelState::decode_edp(const Workspace& ws) const {
  const std::span<const int> preds = preds_of(ws);
  if (precision_ == nn::Precision::f64)
    return decode_edp_logits_t<double>(
        preds, std::span<const double>(ws.arena_.data<double>(kLogits),
                                       ws.arena_.count<double>(kLogits)));
  return decode_edp_logits_t<float>(
      preds, std::span<const float>(ws.arena_.data<float>(kLogitsF),
                                    ws.arena_.count<float>(kLogitsF)));
}

// --- InferenceEngine ---------------------------------------------------------

InferenceEngine::InferenceEngine(const core::MeasurementDb& db,
                                 const std::string& path,
                                 EngineOptions options)
    : InferenceEngine(core::PnpTuner::load(db, path), options) {}

InferenceEngine::InferenceEngine(core::PnpTuner tuner, EngineOptions options)
    : state_(std::move(tuner), options.precision, options.beam_width),
      opt_(options) {
  scratch_.resize(static_cast<std::size_t>(worker_count()));
}

void InferenceEngine::ensure_encoded(std::span<const int> regions) {
  // The OpenMP thread count may have been raised since construction
  // (omp_set_num_threads); re-size the per-thread scratch at this serial
  // point so the dense phase never indexes past it.
  if (scratch_.size() < static_cast<std::size_t>(worker_count()))
    scratch_.resize(static_cast<std::size_t>(worker_count()));
  // Validate the whole batch before touching the cache: a reserved slot
  // for a region that never gets encoded would poison every later query.
  for (int r : regions) state_.validate_region(r);
  pending_.clear();
  for (int r : regions) {
    // try_emplace both dedupes the work list and reserves the cache slot;
    // unordered_map references stay valid across later insertions.
    if (enc_.try_emplace(r).second) pending_.push_back(r);
  }
  if (pending_.empty()) return;
  const auto encode_one = [this](int r) {
    state_.encode(r, enc_.find(r)->second);
  };
#ifdef PNP_PARALLEL
#pragma omp parallel for schedule(dynamic)
  for (std::size_t i = 0; i < pending_.size(); ++i) encode_one(pending_[i]);
#else
  for (int r : pending_) encode_one(r);
#endif
}

template <class Fn>
void InferenceEngine::for_each_query(std::size_t n, Fn&& fn) {
#ifdef PNP_PARALLEL
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i)
    fn(i, scratch_[static_cast<std::size_t>(omp_get_thread_num())]);
#else
  for (std::size_t i = 0; i < n; ++i) fn(i, scratch_[0]);
#endif
}

sim::OmpConfig InferenceEngine::serve_power(const nn::RgcnNet::GnnCache& enc,
                                            int region,
                                            std::optional<int> cap_index,
                                            std::optional<double> cap_w,
                                            PerThread& t) {
  if (opt_.use_arena) {
    state_.run_heads(enc, region, cap_index, cap_w, t.ws);
    return state_.decode_power(t.ws);
  }
  state_.run_heads(enc, region, cap_index, cap_w, t.scratch);
  return state_.decode_power(t.scratch);
}

sim::OmpConfig InferenceEngine::predict_power(int region, int cap_index) {
  const PowerQuery q{region, cap_index};
  return predict_power_batch(std::span<const PowerQuery>(&q, 1))[0];
}

core::PnpTuner::JointChoice InferenceEngine::predict_edp(int region) {
  return predict_edp_batch(std::span<const int>(&region, 1))[0];
}

std::vector<sim::OmpConfig> InferenceEngine::predict_power_batch(
    std::span<const PowerQuery> queries) {
  state_.require_mode(core::PnpTuner::Mode::Power, "a power query");
  regions_buf_.clear();
  regions_buf_.reserve(queries.size());
  for (const PowerQuery& q : queries) {
    state_.validate_cap(q.cap_index);
    regions_buf_.push_back(q.region);
  }
  ensure_encoded(regions_buf_);

  std::vector<sim::OmpConfig> out(queries.size());
  for_each_query(queries.size(), [&](std::size_t i, PerThread& t) {
    out[i] = serve_power(enc_.find(queries[i].region)->second,
                         queries[i].region, queries[i].cap_index,
                         std::nullopt, t);
  });
  return out;
}

std::vector<sim::OmpConfig> InferenceEngine::predict_power_at_batch(
    std::span<const int> regions, double cap_w) {
  state_.require_mode(core::PnpTuner::Mode::Power, "a power query");
  state_.require_scalar_cap();
  PNP_CHECK_MSG(cap_w > 0.0, "cap must be positive, got " << cap_w);
  ensure_encoded(regions);

  std::vector<sim::OmpConfig> out(regions.size());
  for_each_query(regions.size(), [&](std::size_t i, PerThread& t) {
    out[i] = serve_power(enc_.find(regions[i])->second, regions[i],
                         std::nullopt, cap_w, t);
  });
  return out;
}

std::vector<core::PnpTuner::JointChoice> InferenceEngine::predict_edp_batch(
    std::span<const int> regions) {
  state_.require_mode(core::PnpTuner::Mode::Edp, "an edp query");
  ensure_encoded(regions);

  std::vector<core::PnpTuner::JointChoice> out(regions.size());
  for_each_query(regions.size(), [&](std::size_t i, PerThread& t) {
    if (opt_.use_arena) {
      state_.run_heads(enc_.find(regions[i])->second, regions[i],
                       std::nullopt, std::nullopt, t.ws);
      out[i] = state_.decode_edp(t.ws);
    } else {
      state_.run_heads(enc_.find(regions[i])->second, regions[i],
                       std::nullopt, std::nullopt, t.scratch);
      out[i] = state_.decode_edp(t.scratch);
    }
  });
  return out;
}

}  // namespace pnp::serve
