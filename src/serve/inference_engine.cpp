#include "serve/inference_engine.hpp"

#ifdef PNP_PARALLEL
#include <omp.h>
#endif

#include "common/error.hpp"
#include "nn/loss.hpp"

namespace pnp::serve {

namespace {

int worker_count() {
#ifdef PNP_PARALLEL
  return omp_get_max_threads();
#else
  return 1;
#endif
}

const char* mode_name(core::PnpTuner::Mode m) {
  switch (m) {
    case core::PnpTuner::Mode::Power:
      return "power";
    case core::PnpTuner::Mode::Edp:
      return "edp";
    default:
      return "untrained";
  }
}

}  // namespace

// --- ModelState --------------------------------------------------------------

ModelState::ModelState(core::PnpTuner tuner) : tuner_(std::move(tuner)) {
  PNP_CHECK_MSG(
      tuner_.net_ != nullptr && tuner_.mode_ != core::PnpTuner::Mode::None,
      "serving needs a trained or loaded tuner");
}

bool ModelState::scalar_cap() const { return !tuner_.opt_.cap_onehot; }

void ModelState::validate_region(int region) const {
  PNP_CHECK_MSG(region >= 0 && region < tuner_.db_.num_regions(),
                "region " << region << " out of range [0, "
                          << tuner_.db_.num_regions() << ")");
}

void ModelState::validate_cap(int cap_index) const {
  PNP_CHECK_MSG(cap_index >= 0 && cap_index < tuner_.db_.num_caps(),
                "cap index " << cap_index << " out of range [0, "
                             << tuner_.db_.num_caps() << ")");
}

void ModelState::require_mode(core::PnpTuner::Mode m, const char* what) const {
  PNP_CHECK_MSG(tuner_.mode_ == m, what << " not servable by a "
                                        << mode_name(tuner_.mode_)
                                        << "-scenario model");
}

void ModelState::require_scalar_cap() const {
  PNP_CHECK_MSG(!tuner_.opt_.cap_onehot,
                "predicting at arbitrary caps requires a scalar-cap model "
                "(cap_onehot == false)");
}

void ModelState::encode(int region, nn::RgcnNet::GnnCache& out) const {
  validate_region(region);
  tuner_.net_->encode_into(tuner_.tensors_[static_cast<std::size_t>(region)],
                           out);
}

void ModelState::run_heads(const nn::RgcnNet::GnnCache& enc, int region,
                           std::optional<int> cap_index,
                           std::optional<double> cap_w, Scratch& s) const {
  tuner_.fill_extra(region, cap_index, cap_w, s.extra);
  const nn::RgcnNet& net = *tuner_.net_;
  net.dense_forward_into(enc.readout, s.extra, s.dc);
  s.preds.clear();
  const int heads = static_cast<int>(net.config().head_sizes.size());
  for (int h = 0; h < heads; ++h)
    s.preds.push_back(nn::argmax_index(net.head_logits(s.dc, h)));
}

sim::OmpConfig ModelState::decode_power(const Scratch& s) const {
  return tuner_.decode_config(s.preds, 0);
}

core::PnpTuner::JointChoice ModelState::decode_edp(const Scratch& s) const {
  core::PnpTuner::JointChoice jc;
  if (tuner_.opt_.factored_heads) {
    jc.cap_index = s.preds[0];
    jc.cfg = tuner_.decode_config(s.preds, 1);
  } else {
    const core::SearchSpace& space = tuner_.db_.space();
    const int per_cap = space.num_thread_classes() *
                        space.num_schedule_classes() *
                        space.num_chunk_classes();
    jc.cap_index = s.preds[0] / per_cap;
    jc.cfg = tuner_.decode_config(s.preds, 0);
  }
  return jc;
}

// --- InferenceEngine ---------------------------------------------------------

InferenceEngine::InferenceEngine(const core::MeasurementDb& db,
                                 const std::string& path)
    : InferenceEngine(core::PnpTuner::load(db, path)) {}

InferenceEngine::InferenceEngine(core::PnpTuner tuner)
    : state_(std::move(tuner)) {
  scratch_.resize(static_cast<std::size_t>(worker_count()));
}

void InferenceEngine::ensure_encoded(std::span<const int> regions) {
  // The OpenMP thread count may have been raised since construction
  // (omp_set_num_threads); re-size the per-thread scratch at this serial
  // point so the dense phase never indexes past it.
  if (scratch_.size() < static_cast<std::size_t>(worker_count()))
    scratch_.resize(static_cast<std::size_t>(worker_count()));
  // Validate the whole batch before touching the cache: a reserved slot
  // for a region that never gets encoded would poison every later query.
  for (int r : regions) state_.validate_region(r);
  pending_.clear();
  for (int r : regions) {
    // try_emplace both dedupes the work list and reserves the cache slot;
    // unordered_map references stay valid across later insertions.
    if (enc_.try_emplace(r).second) pending_.push_back(r);
  }
  if (pending_.empty()) return;
  const auto encode_one = [this](int r) {
    state_.encode(r, enc_.find(r)->second);
  };
#ifdef PNP_PARALLEL
#pragma omp parallel for schedule(dynamic)
  for (std::size_t i = 0; i < pending_.size(); ++i) encode_one(pending_[i]);
#else
  for (int r : pending_) encode_one(r);
#endif
}

template <class Fn>
void InferenceEngine::for_each_query(std::size_t n, Fn&& fn) {
#ifdef PNP_PARALLEL
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i)
    fn(i, scratch_[static_cast<std::size_t>(omp_get_thread_num())]);
#else
  for (std::size_t i = 0; i < n; ++i) fn(i, scratch_[0]);
#endif
}

sim::OmpConfig InferenceEngine::predict_power(int region, int cap_index) {
  const PowerQuery q{region, cap_index};
  return predict_power_batch(std::span<const PowerQuery>(&q, 1))[0];
}

core::PnpTuner::JointChoice InferenceEngine::predict_edp(int region) {
  return predict_edp_batch(std::span<const int>(&region, 1))[0];
}

std::vector<sim::OmpConfig> InferenceEngine::predict_power_batch(
    std::span<const PowerQuery> queries) {
  state_.require_mode(core::PnpTuner::Mode::Power, "a power query");
  regions_buf_.clear();
  regions_buf_.reserve(queries.size());
  for (const PowerQuery& q : queries) {
    state_.validate_cap(q.cap_index);
    regions_buf_.push_back(q.region);
  }
  ensure_encoded(regions_buf_);

  std::vector<sim::OmpConfig> out(queries.size());
  for_each_query(queries.size(), [&](std::size_t i, Scratch& s) {
    state_.run_heads(enc_.find(queries[i].region)->second, queries[i].region,
                     queries[i].cap_index, std::nullopt, s);
    out[i] = state_.decode_power(s);
  });
  return out;
}

std::vector<sim::OmpConfig> InferenceEngine::predict_power_at_batch(
    std::span<const int> regions, double cap_w) {
  state_.require_mode(core::PnpTuner::Mode::Power, "a power query");
  state_.require_scalar_cap();
  PNP_CHECK_MSG(cap_w > 0.0, "cap must be positive, got " << cap_w);
  ensure_encoded(regions);

  std::vector<sim::OmpConfig> out(regions.size());
  for_each_query(regions.size(), [&](std::size_t i, Scratch& s) {
    state_.run_heads(enc_.find(regions[i])->second, regions[i], std::nullopt,
                     cap_w, s);
    out[i] = state_.decode_power(s);
  });
  return out;
}

std::vector<core::PnpTuner::JointChoice> InferenceEngine::predict_edp_batch(
    std::span<const int> regions) {
  state_.require_mode(core::PnpTuner::Mode::Edp, "an edp query");
  ensure_encoded(regions);

  std::vector<core::PnpTuner::JointChoice> out(regions.size());
  for_each_query(regions.size(), [&](std::size_t i, Scratch& s) {
    state_.run_heads(enc_.find(regions[i])->second, regions[i], std::nullopt,
                     std::nullopt, s);
    out[i] = state_.decode_edp(s);
  });
  return out;
}

}  // namespace pnp::serve
