#include "serve/inference_engine.hpp"

#ifdef PNP_PARALLEL
#include <omp.h>
#endif

#include "common/error.hpp"
#include "nn/loss.hpp"

namespace pnp::serve {

namespace {

int worker_count() {
#ifdef PNP_PARALLEL
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace

InferenceEngine::InferenceEngine(const core::MeasurementDb& db,
                                 const std::string& path)
    : InferenceEngine(core::PnpTuner::load(db, path)) {}

InferenceEngine::InferenceEngine(core::PnpTuner tuner)
    : tuner_(std::move(tuner)) {
  PNP_CHECK_MSG(tuner_.net_ != nullptr && tuner_.mode_ != core::PnpTuner::Mode::None,
                "InferenceEngine needs a trained or loaded tuner");
  scratch_.resize(static_cast<std::size_t>(worker_count()));
}

void InferenceEngine::validate_region(int region) const {
  PNP_CHECK_MSG(region >= 0 && region < tuner_.db_.num_regions(),
                "region " << region << " out of range [0, "
                          << tuner_.db_.num_regions() << ")");
}

void InferenceEngine::ensure_encoded(std::span<const int> regions) {
  // The OpenMP thread count may have been raised since construction
  // (omp_set_num_threads); re-size the per-thread scratch at this serial
  // point so the dense phase never indexes past it.
  if (scratch_.size() < static_cast<std::size_t>(worker_count()))
    scratch_.resize(static_cast<std::size_t>(worker_count()));
  // Validate the whole batch before touching the cache: a reserved slot
  // for a region that never gets encoded would poison every later query.
  for (int r : regions) validate_region(r);
  pending_.clear();
  for (int r : regions) {
    // try_emplace both dedupes the work list and reserves the cache slot;
    // unordered_map references stay valid across later insertions.
    if (enc_.try_emplace(r).second) pending_.push_back(r);
  }
  if (pending_.empty()) return;
  const auto encode_one = [this](int r) {
    tuner_.net_->encode_into(
        tuner_.tensors_[static_cast<std::size_t>(r)], enc_.find(r)->second);
  };
#ifdef PNP_PARALLEL
#pragma omp parallel for schedule(dynamic)
  for (std::size_t i = 0; i < pending_.size(); ++i) encode_one(pending_[i]);
#else
  for (int r : pending_) encode_one(r);
#endif
}

template <class Fn>
void InferenceEngine::for_each_query(std::size_t n, Fn&& fn) {
#ifdef PNP_PARALLEL
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i)
    fn(i, scratch_[static_cast<std::size_t>(omp_get_thread_num())]);
#else
  for (std::size_t i = 0; i < n; ++i) fn(i, scratch_[0]);
#endif
}

void InferenceEngine::run_heads(int region, std::optional<int> cap_index,
                                std::optional<double> cap_w, Scratch& s) {
  tuner_.fill_extra(region, cap_index, cap_w, s.extra);
  const nn::RgcnNet& net = *tuner_.net_;
  net.dense_forward_into(enc_.find(region)->second.readout, s.extra, s.dc);
  s.preds.clear();
  const int heads = static_cast<int>(net.config().head_sizes.size());
  for (int h = 0; h < heads; ++h)
    s.preds.push_back(nn::argmax_index(net.head_logits(s.dc, h)));
}

sim::OmpConfig InferenceEngine::predict_power(int region, int cap_index) {
  const PowerQuery q{region, cap_index};
  return predict_power_batch(std::span<const PowerQuery>(&q, 1))[0];
}

core::PnpTuner::JointChoice InferenceEngine::predict_edp(int region) {
  return predict_edp_batch(std::span<const int>(&region, 1))[0];
}

std::vector<sim::OmpConfig> InferenceEngine::predict_power_batch(
    std::span<const PowerQuery> queries) {
  PNP_CHECK_MSG(tuner_.mode_ == core::PnpTuner::Mode::Power,
                "engine serves an EDP model; use predict_edp_batch");
  const int num_caps = tuner_.db_.num_caps();
  regions_buf_.clear();
  regions_buf_.reserve(queries.size());
  for (const PowerQuery& q : queries) {
    PNP_CHECK_MSG(q.cap_index >= 0 && q.cap_index < num_caps,
                  "cap index " << q.cap_index << " out of range [0, "
                               << num_caps << ")");
    regions_buf_.push_back(q.region);
  }
  ensure_encoded(regions_buf_);

  std::vector<sim::OmpConfig> out(queries.size());
  for_each_query(queries.size(), [&](std::size_t i, Scratch& s) {
    run_heads(queries[i].region, queries[i].cap_index, std::nullopt, s);
    out[i] = tuner_.decode_config(s.preds, 0);
  });
  return out;
}

std::vector<sim::OmpConfig> InferenceEngine::predict_power_at_batch(
    std::span<const int> regions, double cap_w) {
  PNP_CHECK_MSG(tuner_.mode_ == core::PnpTuner::Mode::Power,
                "engine serves an EDP model; use predict_edp_batch");
  PNP_CHECK_MSG(!tuner_.opt_.cap_onehot,
                "predicting at arbitrary caps requires a scalar-cap model "
                "(cap_onehot == false)");
  PNP_CHECK_MSG(cap_w > 0.0, "cap must be positive, got " << cap_w);
  ensure_encoded(regions);

  std::vector<sim::OmpConfig> out(regions.size());
  for_each_query(regions.size(), [&](std::size_t i, Scratch& s) {
    run_heads(regions[i], std::nullopt, cap_w, s);
    out[i] = tuner_.decode_config(s.preds, 0);
  });
  return out;
}

std::vector<core::PnpTuner::JointChoice> InferenceEngine::predict_edp_batch(
    std::span<const int> regions) {
  PNP_CHECK_MSG(tuner_.mode_ == core::PnpTuner::Mode::Edp,
                "engine serves a power-scenario model; use "
                "predict_power_batch");
  ensure_encoded(regions);

  const core::SearchSpace& space = tuner_.db_.space();
  const int per_cap = space.num_thread_classes() *
                      space.num_schedule_classes() * space.num_chunk_classes();
  const auto decode_one = [&](int region, Scratch& s) {
    run_heads(region, std::nullopt, std::nullopt, s);
    core::PnpTuner::JointChoice jc;
    if (tuner_.opt_.factored_heads) {
      jc.cap_index = s.preds[0];
      jc.cfg = tuner_.decode_config(s.preds, 1);
    } else {
      jc.cap_index = s.preds[0] / per_cap;
      jc.cfg = tuner_.decode_config(s.preds, 0);
    }
    return jc;
  };

  std::vector<core::PnpTuner::JointChoice> out(regions.size());
  for_each_query(regions.size(), [&](std::size_t i, Scratch& s) {
    out[i] = decode_one(regions[i], s);
  });
  return out;
}

}  // namespace pnp::serve
