#include "serve/protocol.hpp"

#include "common/error.hpp"
#include "common/wire.hpp"

namespace pnp::serve::protocol {

namespace {

void put_i32(std::string& out, int v) {
  wire::put_u32(out, static_cast<std::uint32_t>(v));
}

int get_i32(wire::Reader& r) { return static_cast<int>(r.u32()); }

std::string response_header(std::uint64_t id, Status status) {
  std::string out;
  wire::put_u64(out, id);
  wire::put_u8(out, static_cast<std::uint8_t>(status));
  return out;
}

}  // namespace

std::string encode_request(const Request& q) {
  std::string out;
  wire::put_u64(out, q.id);
  wire::put_u8(out, static_cast<std::uint8_t>(q.op));
  switch (q.op) {
    case Op::Power:
      wire::put_u32(out, q.machine);
      put_i32(out, q.tune.region);
      put_i32(out, q.tune.cap_index);
      break;
    case Op::PowerAt:
      wire::put_u32(out, q.machine);
      put_i32(out, q.tune.region);
      wire::put_f64(out, q.tune.cap_w);
      break;
    case Op::Edp:
      wire::put_u32(out, q.machine);
      put_i32(out, q.tune.region);
      break;
    case Op::Reload:
      wire::put_u32(out, static_cast<std::uint32_t>(q.reload_path.size()));
      wire::put_bytes(out, q.reload_path);
      break;
    case Op::Stats:
      break;
    case Op::Observe:
      put_i32(out, q.observe.region);
      wire::put_f64(out, q.observe.cap_w);
      put_i32(out, q.observe.config.threads);
      wire::put_u8(out, static_cast<std::uint8_t>(q.observe.config.schedule));
      put_i32(out, q.observe.config.chunk);
      wire::put_f64(out, q.observe.seconds);
      wire::put_f64(out, q.observe.joules);
      break;
  }
  return out;
}

Request decode_request(std::string_view payload) {
  wire::Reader r(payload);
  Request q;
  q.id = r.u64();
  const std::uint8_t op = r.u8();
  switch (op) {
    case static_cast<std::uint8_t>(Op::Power): {
      q.op = Op::Power;
      q.machine = r.u32();
      const int region = get_i32(r);
      const int cap = get_i32(r);
      q.tune = TuneRequest::power(region, cap);
      break;
    }
    case static_cast<std::uint8_t>(Op::PowerAt): {
      q.op = Op::PowerAt;
      q.machine = r.u32();
      const int region = get_i32(r);
      const double watts = r.f64();
      q.tune = TuneRequest::power_at(region, watts);
      break;
    }
    case static_cast<std::uint8_t>(Op::Edp): {
      q.op = Op::Edp;
      q.machine = r.u32();
      q.tune = TuneRequest::edp(get_i32(r));
      break;
    }
    case static_cast<std::uint8_t>(Op::Reload): {
      q.op = Op::Reload;
      const std::uint32_t len = r.u32();
      PNP_CHECK_MSG(len > 0, "reload request with an empty artifact path");
      q.reload_path = std::string(r.bytes(len));
      break;
    }
    case static_cast<std::uint8_t>(Op::Stats):
      q.op = Op::Stats;
      break;
    case static_cast<std::uint8_t>(Op::Observe): {
      q.op = Op::Observe;
      q.observe.region = get_i32(r);
      q.observe.cap_w = r.f64();
      q.observe.config.threads = get_i32(r);
      const std::uint8_t sched = r.u8();
      PNP_CHECK_MSG(sched < static_cast<std::uint8_t>(sim::kNumSchedules),
                    "bad schedule byte " << static_cast<int>(sched));
      q.observe.config.schedule = static_cast<sim::Schedule>(sched);
      q.observe.config.chunk = get_i32(r);
      q.observe.seconds = r.f64();
      q.observe.joules = r.f64();
      // Value sanity (finite positive measurements, sane indices) lives in
      // core::validate_measurement, called by the server before the record
      // can become durable — the codec only guards the byte layout.
      break;
    }
    default:
      throw Error("unknown opcode " + std::to_string(op));
  }
  r.expect_done("request");
  return q;
}

std::uint64_t peek_id(std::string_view payload) {
  if (payload.size() < 8) return 0;
  wire::Reader r(payload);
  return r.u64();
}

std::string encode_tune_response(std::uint64_t id, Op op, const TuneResult& r) {
  std::string out = response_header(id, Status::Ok);
  wire::put_u8(out, static_cast<std::uint8_t>(op));
  put_i32(out, r.config.threads);
  wire::put_u8(out, static_cast<std::uint8_t>(r.config.schedule));
  put_i32(out, r.config.chunk);
  put_i32(out, r.cap_index);
  wire::put_u64(out, r.model_version);
  return out;
}

std::string encode_reload_response(std::uint64_t id, std::uint64_t version) {
  std::string out = response_header(id, Status::Ok);
  wire::put_u8(out, static_cast<std::uint8_t>(Op::Reload));
  wire::put_u64(out, version);
  return out;
}

std::string encode_observe_response(std::uint64_t id, std::uint64_t seq) {
  std::string out = response_header(id, Status::Ok);
  wire::put_u8(out, static_cast<std::uint8_t>(Op::Observe));
  wire::put_u64(out, seq);
  return out;
}

std::string encode_stats_response(std::uint64_t id, const ServerCounters& sc,
                                  const TuningService::Stats& svc,
                                  const RetrainCounters& rc,
                                  const LatencyHistogram& hist) {
  std::string out = response_header(id, Status::Ok);
  wire::put_u8(out, static_cast<std::uint8_t>(Op::Stats));
  wire::put_u64(out, sc.connections);
  wire::put_u64(out, sc.ok);
  wire::put_u64(out, sc.errors);
  wire::put_u64(out, sc.shed);
  wire::put_u64(out, sc.malformed);
  wire::put_u64(out, svc.requests);
  wire::put_u64(out, svc.batches);
  wire::put_u64(out, svc.coalesced);
  wire::put_u64(out, svc.encode_hits);
  wire::put_u64(out, svc.encode_misses);
  wire::put_u64(out, svc.reloads);
  wire::put_u64(out, svc.failed_reloads);
  wire::put_u64(out, rc.observed);
  wire::put_u64(out, rc.attempts);
  wire::put_u64(out, rc.published);
  wire::put_u64(out, rc.rejected_gate);
  wire::put_u64(out, rc.rejected_candidate);
  wire::put_u64(out, rc.rejected_log);
  wire::put_u64(out, rc.last_published_version);
  hist.encode(out);
  return out;
}

std::string encode_error_response(std::uint64_t id, std::string_view message) {
  std::string out = response_header(id, Status::Error);
  wire::put_u32(out, static_cast<std::uint32_t>(message.size()));
  wire::put_bytes(out, message);
  return out;
}

std::string encode_shed_response(std::uint64_t id) {
  return response_header(id, Status::Shed);
}

Response decode_response(std::string_view payload,
                         LatencyHistogram* stats_hist) {
  wire::Reader r(payload);
  Response resp;
  resp.id = r.u64();
  const std::uint8_t status = r.u8();
  switch (status) {
    case static_cast<std::uint8_t>(Status::Ok):
      break;
    case static_cast<std::uint8_t>(Status::Error): {
      resp.status = Status::Error;
      const std::uint32_t len = r.u32();
      resp.error = std::string(r.bytes(len));
      r.expect_done("error response");
      return resp;
    }
    case static_cast<std::uint8_t>(Status::Shed):
      resp.status = Status::Shed;
      r.expect_done("shed response");
      return resp;
    default:
      throw Error("unknown response status " + std::to_string(status));
  }
  const std::uint8_t op = r.u8();
  switch (op) {
    case static_cast<std::uint8_t>(Op::Power):
    case static_cast<std::uint8_t>(Op::PowerAt):
    case static_cast<std::uint8_t>(Op::Edp): {
      resp.op = static_cast<Op>(op);
      resp.result.config.threads = get_i32(r);
      const std::uint8_t sched = r.u8();
      PNP_CHECK_MSG(sched < static_cast<std::uint8_t>(sim::kNumSchedules),
                    "bad schedule byte " << static_cast<int>(sched));
      resp.result.config.schedule = static_cast<sim::Schedule>(sched);
      resp.result.config.chunk = get_i32(r);
      resp.result.cap_index = get_i32(r);
      resp.result.model_version = r.u64();
      break;
    }
    case static_cast<std::uint8_t>(Op::Reload):
      resp.op = Op::Reload;
      resp.new_version = r.u64();
      break;
    case static_cast<std::uint8_t>(Op::Observe):
      resp.op = Op::Observe;
      resp.observe_seq = r.u64();
      break;
    case static_cast<std::uint8_t>(Op::Stats): {
      resp.op = Op::Stats;
      resp.server.connections = r.u64();
      resp.server.ok = r.u64();
      resp.server.errors = r.u64();
      resp.server.shed = r.u64();
      resp.server.malformed = r.u64();
      resp.service.requests = r.u64();
      resp.service.batches = r.u64();
      resp.service.coalesced = r.u64();
      resp.service.encode_hits = r.u64();
      resp.service.encode_misses = r.u64();
      resp.service.reloads = r.u64();
      resp.service.failed_reloads = r.u64();
      resp.retrain.observed = r.u64();
      resp.retrain.attempts = r.u64();
      resp.retrain.published = r.u64();
      resp.retrain.rejected_gate = r.u64();
      resp.retrain.rejected_candidate = r.u64();
      resp.retrain.rejected_log = r.u64();
      resp.retrain.last_published_version = r.u64();
      if (stats_hist != nullptr) {
        stats_hist->decode(r);
      } else {
        LatencyHistogram skipped;
        skipped.decode(r);
      }
      break;
    }
    default:
      throw Error("unknown opcode echo " + std::to_string(op));
  }
  r.expect_done("response");
  return resp;
}

}  // namespace pnp::serve::protocol
