#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace pnp {

// --- JsonWriter ------------------------------------------------------------

void JsonWriter::before_value() {
  PNP_CHECK_MSG(!done_, "JSON document already complete");
  if (!stack_.empty() && stack_.back() == 'o')
    PNP_CHECK_MSG(have_key_, "value inside an object requires key() first");
  if (need_comma_) out_ += ',';
  have_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_ += 'o';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PNP_CHECK_MSG(!stack_.empty() && stack_.back() == 'o' && !have_key_,
                "end_object without matching begin_object");
  out_ += '}';
  stack_.pop_back();
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_ += 'a';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PNP_CHECK_MSG(!stack_.empty() && stack_.back() == 'a',
                "end_array without matching begin_array");
  out_ += ']';
  stack_.pop_back();
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  PNP_CHECK_MSG(!stack_.empty() && stack_.back() == 'o' && !have_key_,
                "key() is only valid directly inside an object");
  if (need_comma_) out_ += ',';
  out_ += json_quote(k);
  out_ += ':';
  need_comma_ = false;
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  PNP_CHECK_MSG(std::isfinite(v), "JSON numbers must be finite, got " << v);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // %.17g prints integral doubles without a decimal point ("3"); that is
  // still valid JSON and round-trips exactly, so keep it as is.
  out_ += buf;
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  out_ += json_quote(s);
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  PNP_CHECK_MSG(done_ && stack_.empty(),
                "JSON document incomplete (open containers or no value)");
  return out_ + "\n";
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// --- json_validate ---------------------------------------------------------

namespace {

/// Recursive-descent syntax checker. Positions are byte offsets.
class Parser {
 public:
  explicit Parser(std::string_view t) : t_(t) {}

  bool run(std::string* error) {
    ok_ = value();
    if (ok_) {
      skip_ws();
      if (pos_ != t_.size()) fail("trailing content");
    }
    if (!ok_ && error) {
      *error = "byte " + std::to_string(pos_) + ": " + msg_;
    }
    return ok_;
  }

 private:
  bool fail(const char* why) {
    if (ok_) {
      msg_ = why;
      ok_ = false;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < t_.size() && (t_[pos_] == ' ' || t_[pos_] == '\t' ||
                                t_[pos_] == '\n' || t_[pos_] == '\r'))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < t_.size() && t_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (t_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return fail("expected string");
    while (pos_ < t_.size()) {
      const unsigned char c = static_cast<unsigned char>(t_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= t_.size()) return fail("truncated escape");
        const char e = t_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<std::size_t>(i) >= t_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    t_[pos_ + static_cast<std::size_t>(i)])))
              return fail("bad \\u escape");
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape character");
        }
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool digits() {
    if (pos_ >= t_.size() || !std::isdigit(static_cast<unsigned char>(t_[pos_])))
      return false;
    while (pos_ < t_.size() &&
           std::isdigit(static_cast<unsigned char>(t_[pos_])))
      ++pos_;
    return true;
  }

  bool number() {
    eat('-');
    if (eat('0')) {
      // no leading zeros
    } else if (!digits()) {
      return fail("bad number");
    }
    if (eat('.') && !digits()) return fail("bad fraction");
    if (pos_ < t_.size() && (t_[pos_] == 'e' || t_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < t_.size() && (t_[pos_] == '+' || t_[pos_] == '-')) ++pos_;
      if (!digits()) return fail("bad exponent");
    }
    return true;
  }

  bool value() {
    if (++depth_ > 256) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= t_.size()) return fail("expected value");
    bool r = false;
    switch (t_[pos_]) {
      case '{':
        r = object();
        break;
      case '[':
        r = array();
        break;
      case '"':
        r = string();
        break;
      case 't':
        r = literal("true");
        break;
      case 'f':
        r = literal("false");
        break;
      case 'n':
        r = literal("null");
        break;
      default:
        r = number();
    }
    --depth_;
    return r;
  }

  bool object() {
    eat('{');
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return fail("expected object key");
      skip_ws();
      if (!eat(':')) return fail("expected ':' after key");
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool array() {
    eat('[');
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  std::string_view t_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  bool ok_ = true;
  std::string msg_;
};

}  // namespace

bool json_validate(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace pnp
