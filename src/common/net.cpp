#include "common/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "common/wire.hpp"

namespace pnp::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

sockaddr_un make_unix_sockaddr(const std::string& path) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  PNP_CHECK_MSG(path.size() < sizeof(sa.sun_path),
                "unix socket path too long (" << path.size() << " bytes): '"
                                              << path << "'");
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  return sa;
}

sockaddr_in make_tcp_sockaddr(const Address& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(a.port));
  PNP_CHECK_MSG(inet_pton(AF_INET, a.host.c_str(), &sa.sin_addr) == 1,
                "bad IPv4 host '" << a.host << "'");
  return sa;
}

}  // namespace

Address Address::parse(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    Address a;
    a.is_unix = true;
    a.path = spec.substr(5);
    PNP_CHECK_MSG(!a.path.empty(), "empty unix socket path in '" << spec << "'");
    return a;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    Address a;
    const std::string rest = spec.substr(4);
    const auto colon = rest.rfind(':');
    std::string port_str = rest;
    if (colon != std::string::npos) {
      a.host = rest.substr(0, colon);
      port_str = rest.substr(colon + 1);
      PNP_CHECK_MSG(!a.host.empty(), "empty host in '" << spec << "'");
    }
    try {
      std::size_t pos = 0;
      a.port = std::stoi(port_str, &pos);
      PNP_CHECK(pos == port_str.size());
    } catch (const std::exception&) {
      throw Error("bad tcp port in '" + spec + "'");
    }
    PNP_CHECK_MSG(a.port >= 0 && a.port <= 65535,
                  "tcp port " << a.port << " out of range in '" << spec << "'");
    return a;
  }
  throw Error("bad address '" + spec +
              "' (expected unix:PATH or tcp:[HOST:]PORT)");
}

std::string Address::to_string() const {
  if (is_unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

std::size_t Socket::read_exact(void* buf, std::size_t n) {
  PNP_CHECK_MSG(valid(), "read on a closed socket");
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, static_cast<char*>(buf) + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return got;  // peer closed (or shutdown_read on our end)
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      throw Error("socket read timed out");
    throw_errno("socket read failed");
  }
  return got;
}

void Socket::write_all(const void* buf, std::size_t n) {
  PNP_CHECK_MSG(valid(), "write on a closed socket");
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd_, static_cast<const char*>(buf) + sent,
                             n - sent, MSG_NOSIGNAL);
    if (r >= 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("socket write failed");
  }
}

void Socket::shutdown_read() {
  if (valid()) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() {
  if (valid()) ::shutdown(fd_, SHUT_WR);
}

void Socket::set_recv_timeout_ms(int ms) {
  PNP_CHECK_MSG(valid(), "timeout on a closed socket");
  PNP_CHECK_MSG(ms >= 0, "negative receive timeout");
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0)
    throw_errno("setsockopt(SO_RCVTIMEO) failed");
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(const Address& addr, int backlog) : bound_(addr) {
  fd_ = ::socket(addr.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket() failed");
  try {
    if (addr.is_unix) {
      const sockaddr_un sa = make_unix_sockaddr(addr.path);
      if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0)
        throw_errno("bind(" + addr.to_string() + ") failed");
      unlink_on_close_ = true;
    } else {
      const int one = 1;
      ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      const sockaddr_in sa = make_tcp_sockaddr(addr);
      if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0)
        throw_errno("bind(" + addr.to_string() + ") failed");
      sockaddr_in actual{};
      socklen_t len = sizeof actual;
      if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&actual), &len) != 0)
        throw_errno("getsockname() failed");
      bound_.port = ntohs(actual.sin_port);
    }
    if (::listen(fd_, backlog) != 0)
      throw_errno("listen(" + bound_.to_string() + ") failed");
    int pipefd[2];
    if (::pipe(pipefd) != 0) throw_errno("pipe() failed");
    wake_rd_ = pipefd[0];
    wake_wr_ = pipefd[1];
  } catch (...) {
    close();
    throw;
  }
}

Listener::~Listener() { close(); }

std::optional<Socket> Listener::accept() {
  for (;;) {
    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
    if (fd_ < 0 || wake_rd_ < 0) return std::nullopt;
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll() on listener failed");
    }
    if (fds[1].revents) return std::nullopt;  // interrupted
    if (!(fds[0].revents & POLLIN)) continue;
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno("accept() failed");
    }
    return Socket(conn);
  }
}

void Listener::interrupt() {
  if (wake_wr_ >= 0) {
    const char b = 'x';
    // Best effort: a full pipe already means a pending wake-up.
    [[maybe_unused]] const ssize_t r = ::write(wake_wr_, &b, 1);
  }
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (wake_rd_ >= 0) {
    ::close(wake_rd_);
    wake_rd_ = -1;
  }
  if (wake_wr_ >= 0) {
    ::close(wake_wr_);
    wake_wr_ = -1;
  }
  if (unlink_on_close_) {
    ::unlink(bound_.path.c_str());
    unlink_on_close_ = false;
  }
}

Socket connect_to(const Address& addr, int retry_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(retry_ms);
  for (;;) {
    const int fd = ::socket(addr.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket() failed");
    Socket s(fd);
    int rc;
    if (addr.is_unix) {
      const sockaddr_un sa = make_unix_sockaddr(addr.path);
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
    } else {
      const sockaddr_in sa = make_tcp_sockaddr(addr);
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
    }
    if (rc == 0) {
      if (!addr.is_unix) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      }
      return s;
    }
    const bool retryable = errno == ECONNREFUSED || errno == ENOENT ||
                           errno == EAGAIN || errno == EINTR;
    if (!retryable || std::chrono::steady_clock::now() >= deadline)
      throw_errno("connect(" + addr.to_string() + ") failed");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void send_frame(Socket& s, std::string_view payload) {
  PNP_CHECK_MSG(payload.size() <= kMaxFrameBytes,
                "frame payload of " << payload.size() << " bytes exceeds "
                                    << kMaxFrameBytes);
  std::string msg;
  msg.reserve(4 + payload.size());
  wire::put_u32(msg, static_cast<std::uint32_t>(payload.size()));
  wire::put_bytes(msg, payload);
  s.write_all(msg.data(), msg.size());
}

std::optional<std::string> recv_frame(Socket& s, std::uint32_t max_payload) {
  unsigned char hdr[4];
  const std::size_t got = s.read_exact(hdr, 4);
  if (got == 0) return std::nullopt;  // clean EOF at a frame boundary
  PNP_CHECK_MSG(got == 4, "truncated frame length prefix (" << got
                          << " of 4 bytes)");
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
  PNP_CHECK_MSG(len <= max_payload, "frame length claim of " << len
                                    << " bytes exceeds limit " << max_payload);
  std::string payload(len, '\0');
  if (len > 0) {
    const std::size_t body = s.read_exact(payload.data(), len);
    PNP_CHECK_MSG(body == len, "connection closed mid-frame (" << body
                               << " of " << len << " payload bytes)");
  }
  return payload;
}

}  // namespace pnp::net
