#pragma once

/// \file json.hpp
/// Minimal deterministic JSON emission + syntax validation.
///
/// JsonWriter produces byte-stable output: keys are emitted in call order,
/// numbers are formatted with fixed printf conversions (%.17g preserves
/// doubles exactly), and there is no locale, pointer, or timestamp
/// dependence — two runs of the same deterministic computation yield
/// byte-identical documents (the property tools/pnp_eval's CI smoke
/// diffs). json_validate is a strict RFC 8259 syntax checker used by
/// tests and by emitters as a self-check before writing to disk.

#include <cstdint>
#include <string>
#include <string_view>

namespace pnp {

/// Streaming writer for a single JSON document. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("n").value(3).key("xs").begin_array().value(1.5).end_array();
///   w.end_object();
///   std::string doc = w.str();
/// Structural misuse (value without key inside an object, unbalanced
/// end_*, str() before completion) throws pnp::Error.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; must be directly inside an object and followed by
  /// exactly one value (or container).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& null();

  /// The finished document (exactly one complete top-level value),
  /// terminated with a newline.
  std::string str() const;

 private:
  void before_value();

  std::string out_;
  std::string stack_;       // 'o' / 'a' nesting
  bool need_comma_ = false;
  bool have_key_ = false;   // inside an object, key() emitted, value due
  bool done_ = false;
};

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes added by the caller — the result includes them).
std::string json_quote(std::string_view s);

/// Strict JSON syntax check of a complete document. Returns true when
/// `text` is exactly one valid JSON value (plus whitespace); otherwise
/// false, with a short position-tagged message in *error when provided.
bool json_validate(std::string_view text, std::string* error = nullptr);

}  // namespace pnp
