#pragma once

/// \file stats.hpp
/// Summary statistics used throughout the evaluation (the paper reports
/// geometric means of speedups/greenups, fractions of cases above
/// thresholds, etc.).

#include <cstddef>
#include <span>
#include <vector>

namespace pnp {

/// Arithmetic mean. Requires non-empty input.
double mean(std::span<const double> xs);

/// Geometric mean. Requires non-empty input of strictly positive values.
double geomean(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Median (copies and sorts).
double median(std::span<const double> xs);

/// Minimum / maximum. Require non-empty input.
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Fraction of entries x with x >= threshold.
double fraction_at_least(std::span<const double> xs, double threshold);

/// Fraction of entries x with x < threshold.
double fraction_below(std::span<const double> xs, double threshold);

/// Index of the smallest element; ties broken by the lowest index.
std::size_t argmin(std::span<const double> xs);

/// Index of the largest element; ties broken by the lowest index.
std::size_t argmax(std::span<const double> xs);

/// Pearson correlation coefficient of two equal-length series.
double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace pnp
