#pragma once

/// \file error.hpp
/// Error handling for the PnP tuner library.
///
/// All precondition violations throw pnp::Error so that tests can assert on
/// failure modes and library consumers get actionable messages instead of
/// aborts.

#include <sstream>
#include <stdexcept>
#include <string>

namespace pnp {

/// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace pnp

/// Check a precondition; throws pnp::Error with location info on failure.
#define PNP_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond))                                                            \
      ::pnp::detail::throw_check_failure(#cond, __FILE__, __LINE__, "");    \
  } while (0)

/// Check a precondition with a streamable message.
#define PNP_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream pnp_check_os_;                                     \
      pnp_check_os_ << msg;                                                 \
      ::pnp::detail::throw_check_failure(#cond, __FILE__, __LINE__,         \
                                         pnp_check_os_.str());              \
    }                                                                       \
  } while (0)
