#pragma once

/// \file wire.hpp
/// Byte-level encode/decode for the serving wire format (docs/SERVING.md,
/// "Network protocol"): little-endian fixed-width integers and IEEE-754
/// doubles appended to a std::string, and a bounds-checked Reader that
/// treats its input as hostile — every read is validated against the
/// remaining bytes and failures throw pnp::Error, never read past the
/// end. Header-only; shared by common::LatencyHistogram (stats-frame
/// payload), serve::protocol, and the loadgen/test clients, so both sides
/// of every frame agree byte-for-byte.

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace pnp::wire {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/// IEEE-754 bits, so doubles (e.g. power_at caps in watts) round-trip
/// bit-identically — the determinism contract depends on it.
inline void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

inline void put_bytes(std::string& out, std::string_view s) {
  out.append(s);
}

/// Bounds-checked sequential reader over one payload. All accessors throw
/// pnp::Error on truncation; expect_done() rejects trailing garbage.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1, "u8");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_++]))
           << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_++]))
           << (8 * i);
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string_view bytes(std::size_t n) {
    need(n, "byte string");
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  /// Reject payloads with trailing bytes (a well-formed frame is consumed
  /// exactly).
  void expect_done(const char* what) const {
    PNP_CHECK_MSG(done(), what << ": " << remaining()
                               << " trailing byte(s) after payload");
  }

 private:
  void need(std::size_t n, const char* what) const {
    PNP_CHECK_MSG(remaining() >= n, "truncated payload: need " << n
                                    << " byte(s) for " << what << ", have "
                                    << remaining());
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace pnp::wire
