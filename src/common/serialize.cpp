#include "common/serialize.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>

#include "common/error.hpp"

namespace pnp {

namespace {

constexpr char kMagicV1[8] = {'P', 'N', 'P', 'S', 'T', 'A', 'T', '1'};
constexpr char kMagicV2[8] = {'P', 'N', 'P', 'S', 'T', 'A', 'T', '2'};

// v2 entry tags.
constexpr unsigned char kTagArray = 1;
constexpr unsigned char kTagString = 2;
constexpr unsigned char kTagInt = 3;

constexpr std::uint64_t kMaxNameLen = 1ULL << 20;
// Variable-length payloads are read in bounded chunks so a malformed
// length fails at the first missing byte instead of pre-allocating the
// claimed size.
constexpr std::uint64_t kChunkBytes = 1ULL << 16;

void write_u64(std::ostream& os, std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  os.write(reinterpret_cast<const char*>(buf), 8);
}

/// Bounded reader over a StateDict stream: when the stream is seekable the
/// remaining byte count is known up front, and every claimed length is
/// validated against it before any allocation happens.
class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {
    const auto pos = is_.tellg();
    if (pos < 0) {
      is_.clear();
      return;  // non-seekable: chunked reads still bound memory
    }
    is_.seekg(0, std::ios::end);
    const auto end = is_.tellg();
    is_.seekg(pos);
    if (end >= pos && is_.good())
      remaining_ = static_cast<std::uint64_t>(end - pos);
    else
      is_.clear();
  }

  /// Fail fast when an on-disk length claims more bytes than remain.
  void check_claim(std::uint64_t bytes, const char* what) const {
    PNP_CHECK_MSG(!remaining_.has_value() || bytes <= *remaining_,
                  "malformed StateDict: " << what << " claims " << bytes
                                          << " bytes but only " << *remaining_
                                          << " remain");
  }

  void read_bytes(char* dst, std::uint64_t n, const char* what) {
    check_claim(n, what);
    is_.read(dst, static_cast<std::streamsize>(n));
    PNP_CHECK_MSG(is_.good(), "truncated StateDict: " << what);
    if (remaining_.has_value()) *remaining_ -= n;
  }

  unsigned char read_u8(const char* what) {
    char b;
    read_bytes(&b, 1, what);
    return static_cast<unsigned char>(b);
  }

  std::uint64_t read_u64(const char* what) {
    unsigned char buf[8];
    read_bytes(reinterpret_cast<char*>(buf), 8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    return v;
  }

  std::string read_string(std::uint64_t len, const char* what) {
    check_claim(len, what);
    std::string s;
    while (s.size() < len) {
      const std::uint64_t take = std::min<std::uint64_t>(kChunkBytes, len - s.size());
      const std::size_t old = s.size();
      s.resize(old + static_cast<std::size_t>(take));
      read_bytes(s.data() + old, take, what);
    }
    return s;
  }

  std::vector<double> read_f64_array(std::uint64_t len, const char* what) {
    PNP_CHECK_MSG(len <= (1ULL << 60), "unreasonable array length");
    check_claim(len * 8, what);
    std::vector<double> v;
    unsigned char buf[kChunkBytes];
    while (v.size() < len) {
      const std::uint64_t take =
          std::min<std::uint64_t>(kChunkBytes / 8, len - v.size());
      read_bytes(reinterpret_cast<char*>(buf), take * 8, what);
      const std::size_t old = v.size();
      v.resize(old + static_cast<std::size_t>(take));
      for (std::uint64_t i = 0; i < take; ++i) {
        std::uint64_t bits = 0;
        for (int b = 0; b < 8; ++b)
          bits |= static_cast<std::uint64_t>(buf[i * 8 + b]) << (8 * b);
        std::memcpy(&v[old + i], &bits, 8);
      }
    }
    return v;
  }

  /// True when the stream has no bytes left.
  bool at_end() {
    return is_.peek() == std::char_traits<char>::eof();
  }

 private:
  std::istream& is_;
  std::optional<std::uint64_t> remaining_;
};

}  // namespace

void StateDict::put(const std::string& name, std::vector<double> values) {
  entries_[name] = std::move(values);
}

void StateDict::put_string(const std::string& name, std::string value) {
  strings_[name] = std::move(value);
}

void StateDict::put_int(const std::string& name, std::int64_t value) {
  ints_[name] = value;
}

bool StateDict::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

bool StateDict::contains_string(const std::string& name) const {
  return strings_.count(name) != 0;
}

bool StateDict::contains_int(const std::string& name) const {
  return ints_.count(name) != 0;
}

const std::vector<double>& StateDict::get(const std::string& name) const {
  auto it = entries_.find(name);
  PNP_CHECK_MSG(it != entries_.end(), "StateDict has no entry '" << name << "'");
  return it->second;
}

const std::string& StateDict::get_string(const std::string& name) const {
  auto it = strings_.find(name);
  PNP_CHECK_MSG(it != strings_.end(),
                "StateDict has no string entry '" << name << "'");
  return it->second;
}

std::int64_t StateDict::get_int(const std::string& name) const {
  auto it = ints_.find(name);
  PNP_CHECK_MSG(it != ints_.end(),
                "StateDict has no int entry '" << name << "'");
  return it->second;
}

std::vector<std::string> StateDict::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : entries_) out.push_back(k);
  return out;
}

void StateDict::save(std::ostream& os) const {
  os.write(kMagicV2, sizeof(kMagicV2));
  write_u64(os, entries_.size() + strings_.size() + ints_.size());
  auto write_header = [&os](unsigned char tag, const std::string& name) {
    const char t = static_cast<char>(tag);
    os.write(&t, 1);
    write_u64(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
  };
  for (const auto& [name, values] : entries_) {
    write_header(kTagArray, name);
    write_u64(os, values.size());
    for (double d : values) {
      std::uint64_t bits;
      std::memcpy(&bits, &d, 8);
      write_u64(os, bits);
    }
  }
  for (const auto& [name, value] : strings_) {
    write_header(kTagString, name);
    write_u64(os, value.size());
    os.write(value.data(), static_cast<std::streamsize>(value.size()));
  }
  for (const auto& [name, value] : ints_) {
    write_header(kTagInt, name);
    write_u64(os, static_cast<std::uint64_t>(value));
  }
  PNP_CHECK_MSG(os.good(), "StateDict write failed");
}

StateDict StateDict::load(std::istream& is) {
  Reader r(is);
  char magic[8];
  r.read_bytes(magic, 8, "magic");
  int version = 0;
  if (std::memcmp(magic, kMagicV1, 8) == 0) version = 1;
  if (std::memcmp(magic, kMagicV2, 8) == 0) version = 2;
  PNP_CHECK_MSG(version != 0, "bad StateDict magic");

  StateDict sd;
  const std::uint64_t n = r.read_u64("entry count");
  PNP_CHECK_MSG(n <= (1ULL << 40), "unreasonable entry count");
  // Smallest possible entry: [tag] + name length + empty name + payload
  // length — bounds absurd entry counts before the loop starts.
  r.check_claim(n * (version == 2 ? 17 : 16), "entry count");
  for (std::uint64_t i = 0; i < n; ++i) {
    const unsigned char tag = version == 1 ? kTagArray : r.read_u8("entry tag");
    const std::uint64_t name_len = r.read_u64("name length");
    PNP_CHECK_MSG(name_len < kMaxNameLen, "unreasonable name length");
    const std::string name = r.read_string(name_len, "entry name");
    switch (tag) {
      case kTagArray: {
        const std::uint64_t len = r.read_u64("array length");
        PNP_CHECK_MSG(
            sd.entries_.emplace(name, r.read_f64_array(len, "array data"))
                .second,
            "duplicate StateDict entry '" << name << "'");
        break;
      }
      case kTagString: {
        const std::uint64_t len = r.read_u64("string length");
        PNP_CHECK_MSG(
            sd.strings_.emplace(name, r.read_string(len, "string data")).second,
            "duplicate StateDict string entry '" << name << "'");
        break;
      }
      case kTagInt: {
        const std::int64_t v =
            static_cast<std::int64_t>(r.read_u64("int value"));
        PNP_CHECK_MSG(sd.ints_.emplace(name, v).second,
                      "duplicate StateDict int entry '" << name << "'");
        break;
      }
      default:
        PNP_CHECK_MSG(false, "unknown StateDict entry tag "
                                 << static_cast<int>(tag));
    }
  }
  PNP_CHECK_MSG(r.at_end(), "trailing bytes after last StateDict entry");
  return sd;
}

void StateDict::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  PNP_CHECK_MSG(os.is_open(), "cannot open '" << path << "' for writing");
  save(os);
  os.flush();
  PNP_CHECK_MSG(os.good(), "writing '" << path << "' failed (disk full?)");
  os.close();
  PNP_CHECK_MSG(!os.fail(), "closing '" << path << "' failed");
}

StateDict StateDict::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PNP_CHECK_MSG(is.is_open(), "cannot open '" << path << "' for reading");
  return load(is);
}

}  // namespace pnp
