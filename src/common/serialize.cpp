#include "common/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace pnp {

namespace {

constexpr char kMagic[8] = {'P', 'N', 'P', 'S', 'T', 'A', 'T', '1'};

void write_u64(std::ostream& os, std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  os.write(reinterpret_cast<const char*>(buf), 8);
}

std::uint64_t read_u64(std::istream& is) {
  unsigned char buf[8];
  is.read(reinterpret_cast<char*>(buf), 8);
  PNP_CHECK_MSG(is.good(), "truncated StateDict stream");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

}  // namespace

void StateDict::put(const std::string& name, std::vector<double> values) {
  entries_[name] = std::move(values);
}

bool StateDict::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

const std::vector<double>& StateDict::get(const std::string& name) const {
  auto it = entries_.find(name);
  PNP_CHECK_MSG(it != entries_.end(), "StateDict has no entry '" << name << "'");
  return it->second;
}

std::vector<std::string> StateDict::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : entries_) out.push_back(k);
  return out;
}

void StateDict::save(std::ostream& os) const {
  os.write(kMagic, sizeof(kMagic));
  write_u64(os, entries_.size());
  for (const auto& [name, values] : entries_) {
    write_u64(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_u64(os, values.size());
    for (double d : values) {
      std::uint64_t bits;
      std::memcpy(&bits, &d, 8);
      write_u64(os, bits);
    }
  }
  PNP_CHECK_MSG(os.good(), "StateDict write failed");
}

StateDict StateDict::load(std::istream& is) {
  char magic[8];
  is.read(magic, 8);
  PNP_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, 8) == 0,
                "bad StateDict magic");
  StateDict sd;
  const std::uint64_t n = read_u64(is);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t name_len = read_u64(is);
    PNP_CHECK_MSG(name_len < (1ULL << 20), "unreasonable name length");
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    PNP_CHECK_MSG(is.good(), "truncated StateDict name");
    const std::uint64_t len = read_u64(is);
    PNP_CHECK_MSG(len < (1ULL << 32), "unreasonable array length");
    std::vector<double> values(len);
    for (auto& d : values) {
      const std::uint64_t bits = read_u64(is);
      std::memcpy(&d, &bits, 8);
    }
    sd.put(name, std::move(values));
  }
  return sd;
}

void StateDict::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  PNP_CHECK_MSG(os.is_open(), "cannot open '" << path << "' for writing");
  save(os);
}

StateDict StateDict::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PNP_CHECK_MSG(is.is_open(), "cannot open '" << path << "' for reading");
  return load(is);
}

}  // namespace pnp
