#pragma once

/// \file sync.hpp
/// Small concurrency primitives for the serving layer (docs/SERVING.md):
///
///  - StripedSharedMutex: a fixed array of reader-writer locks indexed by
///    key, so operations on unrelated keys (e.g. different region ids in
///    the encoding cache) never contend on one global mutex;
///  - VersionedSnapshot<T>: an atomically swappable shared_ptr with a
///    monotonically increasing version — the model-lifecycle primitive
///    behind zero-downtime hot reload. Readers grab a consistent
///    (value, version) pair; in-flight holders keep the old snapshot
///    alive until their shared_ptr drops.
///
/// Both are deliberately tiny: plain standard-library mutexes, no
/// lock-free cleverness, so they stay obviously correct under
/// ThreadSanitizer (CI runs the serving suites with -fsanitize=thread).

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/error.hpp"

namespace pnp {

/// Shard index a 64-bit key maps to among `n` shards. Mixes the bits
/// (splitmix64 finalizer) so both dense keys (region ids 0,1,2,…) and
/// pointer-like keys spread evenly. This is THE routing function of the
/// serving layer: StripedSharedMutex::stripe_of delegates here, and
/// serve::TuningService routes requests to worker shards with it — so a
/// service whose cache stripe count equals its worker count sends a
/// region's requests and its cache entry to the same index (one worker
/// per stripe → no cross-worker lock contention at steady state).
inline std::size_t shard_of_key(std::uint64_t key, std::size_t n) {
  PNP_CHECK_MSG(n > 0, "shard_of_key needs at least one shard");
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ull;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebull;
  key ^= key >> 31;
  return static_cast<std::size_t>(key % n);
}

/// N independent reader-writer locks ("stripes") addressed by key. Callers
/// that partition a shared structure (a sharded cache, a bucketed table)
/// lock only the stripe their key hashes to, so accesses to different
/// stripes proceed fully concurrently.
class StripedSharedMutex {
 public:
  explicit StripedSharedMutex(std::size_t stripes) {
    PNP_CHECK_MSG(stripes > 0, "a striped mutex needs at least one stripe");
    mus_.reserve(stripes);
    for (std::size_t i = 0; i < stripes; ++i)
      mus_.push_back(std::make_unique<std::shared_mutex>());
  }

  std::size_t stripes() const { return mus_.size(); }

  /// Stripe a key maps to (shard_of_key over this mutex's stripe count).
  std::size_t stripe_of(std::uint64_t key) const {
    return shard_of_key(key, mus_.size());
  }

  /// The lock of one stripe (locking is logically non-mutating: the
  /// accessors are const so holders can be members of const snapshots).
  std::shared_mutex& at(std::size_t stripe) const {
    PNP_CHECK_MSG(stripe < mus_.size(), "stripe " << stripe
                                                  << " out of range [0, "
                                                  << mus_.size() << ")");
    return *mus_[stripe];
  }
  std::shared_mutex& for_key(std::uint64_t key) const {
    return *mus_[stripe_of(key)];
  }

 private:
  std::vector<std::unique_ptr<std::shared_mutex>> mus_;
};

/// Holder of an immutable snapshot that can be atomically replaced while
/// readers are using the previous one. publish() bumps the version and
/// swaps the pointer under a mutex; current() returns a consistent
/// (value, version) pair. A reader's shared_ptr keeps its snapshot alive
/// for as long as the reader works with it — replacing the snapshot never
/// invalidates in-flight uses, which is exactly the hot-reload contract
/// of serve::TuningService.
template <class T>
class VersionedSnapshot {
 public:
  struct Ref {
    std::shared_ptr<const T> value;
    std::uint64_t version = 0;
  };

  VersionedSnapshot() = default;

  /// Replace the snapshot; returns the new version (1 for the first
  /// publish, then 2, 3, …).
  std::uint64_t publish(std::shared_ptr<const T> next) {
    PNP_CHECK_MSG(next != nullptr, "cannot publish a null snapshot");
    std::lock_guard<std::mutex> lk(mu_);
    cur_ = std::move(next);
    return ++version_;
  }

  /// The current snapshot and its version, read atomically. value is null
  /// only before the first publish().
  Ref current() const {
    std::lock_guard<std::mutex> lk(mu_);
    return {cur_, version_};
  }

  /// Version of the current snapshot (0 before the first publish()).
  std::uint64_t version() const {
    std::lock_guard<std::mutex> lk(mu_);
    return version_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const T> cur_;
  std::uint64_t version_ = 0;
};

}  // namespace pnp
