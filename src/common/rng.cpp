#include "common/rng.hpp"

#include <cmath>
#include <string_view>

#include "common/error.hpp"

namespace pnp {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::uniform_index(std::size_t n) {
  PNP_CHECK_MSG(n > 0, "uniform_index requires n > 0");
  // Scale a 53-bit uniform into [0, n); the trailing % n only guards the
  // uniform() ≈ 1 rounding edge case. Bias is negligible for our n (< 2^32).
  return static_cast<std::size_t>(uniform() * static_cast<double>(n)) % n;
}

int Rng::uniform_int(int lo, int hi) {
  PNP_CHECK_MSG(lo <= hi, "uniform_int requires lo <= hi");
  return lo + static_cast<int>(uniform_index(
                  static_cast<std::size_t>(hi - lo + 1)));
}

double Rng::normal() {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_jitter(double sigma) { return std::exp(normal(0.0, sigma)); }

std::uint64_t fnv1a(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a(const std::string_view s) { return fnv1a(s.data(), s.size()); }

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  // splitmix-style avalanche of the sum.
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace pnp
