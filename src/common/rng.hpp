#pragma once

/// \file rng.hpp
/// Deterministic random number generation.
///
/// Everything in the repository that needs randomness — weight
/// initialization, tuner sampling, simulator run-to-run jitter — goes
/// through these generators so that experiments are bit-reproducible.
/// We intentionally avoid std::mt19937 + std::*_distribution because their
/// outputs are not guaranteed identical across standard library
/// implementations.

#include <cstdint>
#include <string_view>
#include <vector>

namespace pnp {

/// SplitMix64: used to expand a single seed into stream seeds.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — the workhorse generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal multiplicative jitter: exp(normal(0, sigma)).
  double lognormal_jitter(double sigma);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// FNV-1a hash of a byte string; used for stable, platform-independent
/// hashing of identifiers (e.g. deriving per-kernel noise streams).
std::uint64_t fnv1a(const void* data, std::size_t size);
std::uint64_t fnv1a(const std::string_view s);

/// Combine two 64-bit hashes (boost-style avalanche mix).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

}  // namespace pnp
