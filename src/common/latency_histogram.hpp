#pragma once

/// \file latency_histogram.hpp
/// Lock-cheap per-request latency recording for the serving layer
/// (docs/SERVING.md): a fixed array of log-spaced buckets in nanoseconds
/// (HDR-style linear-log layout: 8 sub-buckets per power-of-two octave,
/// so every bucket's width is ≤ 1/8 of its lower bound), recorded into
/// with one relaxed atomic increment — no locks, no allocation, safe to
/// hammer from every server worker at once.
///
/// Contracts the tests (tests/histogram_test.cpp) pin down:
///
///  - **Bracketing.** quantile_bounds(q) returns an inclusive [lower,
///    upper] window that contains the exact q-quantile of the recorded
///    samples; upper/lower ≤ 1 + 1/8 for in-range buckets (sub-bucket
///    resolution), so quantile_ns(q) — the upper bound — overestimates by
///    at most 12.5% plus one nanosecond of integer rounding.
///  - **Deterministic merge.** Buckets are plain counters, so merging
///    per-thread histograms is integer addition: any merge order yields
///    identical counts, and a merged histogram equals the histogram of
///    the concatenated samples.
///  - **Overflow.** Values above kMaxTracked (~9.1 minutes) land in a
///    dedicated overflow bucket; count()/max_ns() stay exact, and a
///    quantile that falls into the overflow bucket reports
///    [kMaxTracked+1, max_ns()].
///  - **Wire round trip.** encode()/decode() carry the histogram inside
///    the `stats` frame as a sparse (index, count) list; decode validates
///    the layout tag and every index, and rejects malformed input with
///    pnp::Error.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pnp {

namespace wire {
class Reader;
}

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits buckets per octave.
  static constexpr int kSubBits = 3;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;
  /// Largest bucket shift; regular buckets cover [0, kMaxTracked].
  static constexpr int kMaxShift = 35;
  /// Largest value (ns) that lands in a regular bucket: 2^39 − 1 ≈ 9.1 min.
  static constexpr std::uint64_t kMaxTracked =
      (1ull << (kMaxShift + kSubBits + 1)) - 1;
  /// Regular buckets plus one overflow bucket.
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kMaxShift + 2) * kSubBuckets + 1;
  static constexpr std::size_t kOverflowBucket = kBucketCount - 1;

  LatencyHistogram();

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Record one latency sample. One relaxed fetch_add per counter —
  /// thread-safe and wait-free.
  void record(std::uint64_t ns);

  /// Add every counter of `other` into this histogram (commutative, so
  /// per-thread histograms merge deterministically in any order).
  void merge(const LatencyHistogram& other);

  /// Zero every counter.
  void reset();

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  /// Exact maximum recorded value (0 when empty).
  std::uint64_t max_ns() const {
    return max_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t overflow_count() const {
    return buckets_[kOverflowBucket].load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t idx) const;

  /// Inclusive value range [lower, upper] of one bucket. The overflow
  /// bucket reports [kMaxTracked + 1, uint64 max].
  struct Bounds {
    std::uint64_t lower = 0;
    std::uint64_t upper = 0;
  };
  static std::size_t bucket_index(std::uint64_t ns);
  static Bounds bucket_bounds(std::size_t idx);

  /// Bracket of the q-quantile (q clamped to (0, 1]): the bounds of the
  /// bucket holding the ceil(q·count)-th smallest sample. An overflow-
  /// bucket hit reports upper = max_ns() (exact). Requires count() > 0.
  Bounds quantile_bounds(double q) const;
  /// Conservative scalar quantile: quantile_bounds(q).upper.
  std::uint64_t quantile_ns(double q) const { return quantile_bounds(q).upper; }

  /// Append the wire form (docs/SERVING.md stats frame): layout tag,
  /// summary counters, then a sparse (u32 index, u64 count) list of the
  /// non-empty buckets. Safe against concurrent record(): the frame is
  /// built from one bucket snapshot (count = the snapshot's sum), so it
  /// always satisfies decode()'s consistency checks even mid-burst.
  void encode(std::string& out) const;
  /// Replace this histogram's contents with a decoded wire form. Throws
  /// pnp::Error on any malformed input (layout mismatch, bad index,
  /// duplicate or unsorted indices, counter mismatch, truncation).
  void decode(wire::Reader& r);

 private:
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

}  // namespace pnp
