#include "common/parse.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pnp {

namespace {

[[noreturn]] void fail(const char* what, const std::string& s,
                       const char* why) {
  throw Error(std::string("bad ") + what + " '" + s + "' (" + why + ")");
}

}  // namespace

int parse_int(const std::string& s, const char* what, int min_value,
              int max_value) {
  int v = 0;
  try {
    std::size_t pos = 0;
    v = std::stoi(s, &pos);
    if (pos != s.size()) fail(what, s, "trailing characters");
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    fail(what, s, "not an integer");
  }
  if (v < min_value || v > max_value)
    throw Error(std::string("bad ") + what + " '" + s + "' (expected " +
                std::to_string(min_value) + ".." + std::to_string(max_value) +
                ")");
  return v;
}

std::uint64_t parse_uint64(const std::string& s, const char* what) {
  if (!s.empty() && (s[0] == '-' || s[0] == '+'))
    fail(what, s, "expected an unsigned integer");
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(s, &pos);
    if (pos != s.size()) fail(what, s, "trailing characters");
    return static_cast<std::uint64_t>(v);
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    fail(what, s, "not an unsigned integer");
  }
}

double parse_double(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) fail(what, s, "trailing characters");
    if (!std::isfinite(v)) fail(what, s, "not finite");
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    fail(what, s, "not a number");
  }
}

}  // namespace pnp
