#pragma once

/// \file serialize.hpp
/// Minimal binary (de)serialization, used for neural-network state dicts in
/// the transfer-learning workflow (train on Haswell, reload GNN weights for
/// Skylake — paper §IV-B).
///
/// Format: little-endian, tag/length-prefixed named f64 arrays.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace pnp {

/// Named collection of double arrays — the unit of model persistence.
class StateDict {
 public:
  /// Insert or overwrite an entry.
  void put(const std::string& name, std::vector<double> values);

  /// True if the entry exists.
  bool contains(const std::string& name) const;

  /// Fetch an entry; throws pnp::Error if missing.
  const std::vector<double>& get(const std::string& name) const;

  /// All entry names in lexicographic order.
  std::vector<std::string> names() const;

  std::size_t size() const { return entries_.size(); }

  /// Serialize to/from a binary stream. Throws pnp::Error on malformed input.
  void save(std::ostream& os) const;
  static StateDict load(std::istream& is);

  /// Convenience file helpers.
  void save_file(const std::string& path) const;
  static StateDict load_file(const std::string& path);

  bool operator==(const StateDict& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::map<std::string, std::vector<double>> entries_;
};

}  // namespace pnp
