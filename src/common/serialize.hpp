#pragma once

/// \file serialize.hpp
/// Minimal binary (de)serialization, used for neural-network state dicts
/// and whole-tuner artifacts (train on Haswell, reload for Skylake —
/// paper §IV-B; docs/SERVING.md documents the on-disk layout).
///
/// Format v2 ("PNPSTAT2"): little-endian, tag/length-prefixed typed
/// entries — f64 arrays, UTF-8 strings, and signed 64-bit integers.
/// v1 ("PNPSTAT1") files, which hold f64 arrays only, still load.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace pnp {

/// Named collection of double arrays, strings, and integers — the unit of
/// model persistence. Each kind has its own namespace: an array, a string,
/// and an int may share a name without colliding.
class StateDict {
 public:
  /// Insert or overwrite an entry.
  void put(const std::string& name, std::vector<double> values);
  void put_string(const std::string& name, std::string value);
  void put_int(const std::string& name, std::int64_t value);

  /// True if the entry exists.
  bool contains(const std::string& name) const;
  bool contains_string(const std::string& name) const;
  bool contains_int(const std::string& name) const;

  /// Fetch an entry; throws pnp::Error if missing.
  const std::vector<double>& get(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;

  /// All f64-array entry names in lexicographic order.
  std::vector<std::string> names() const;

  /// Number of f64-array entries (v1-compatible notion of size).
  std::size_t size() const { return entries_.size(); }

  /// Serialize to a binary stream (always writes format v2).
  void save(std::ostream& os) const;

  /// Deserialize from a binary stream; accepts v1 and v2 files. Throws
  /// pnp::Error on any malformed input — bad magic, truncation at any
  /// field boundary, lengths exceeding the remaining stream, duplicate
  /// entry names, or trailing bytes after the last entry — and never
  /// pre-allocates more memory than the stream actually provides.
  static StateDict load(std::istream& is);

  /// Convenience file helpers. save_file flushes and verifies the stream
  /// before returning, so a full disk is an error, not a silent
  /// truncation.
  void save_file(const std::string& path) const;
  static StateDict load_file(const std::string& path);

  bool operator==(const StateDict& other) const {
    return entries_ == other.entries_ && strings_ == other.strings_ &&
           ints_ == other.ints_;
  }

 private:
  std::map<std::string, std::vector<double>> entries_;
  std::map<std::string, std::string> strings_;
  std::map<std::string, std::int64_t> ints_;
};

}  // namespace pnp
