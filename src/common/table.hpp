#pragma once

/// \file table.hpp
/// ASCII table and CSV emission for the benchmark harnesses. Every paper
/// table/figure harness prints both a human-readable table and, optionally,
/// a CSV block so results can be plotted externally.

#include <iosfwd>
#include <string>
#include <vector>

namespace pnp {

/// A simple column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

  /// Render with column alignment and a separator line under the header.
  std::string to_string() const;

  /// Render as CSV (no quoting of separators; callers avoid commas in cells).
  std::string to_csv() const;

  /// Convenience: print the aligned table to a stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pnp
