#include "common/strings.hpp"

#include <cctype>
#include <cstdio>

namespace pnp {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace pnp
