#pragma once

/// \file net.hpp
/// Minimal blocking-socket helpers for the serving daemon and its clients
/// (docs/SERVING.md, "Network protocol"):
///
///  - Address: a parsed listen/connect endpoint — `unix:PATH` (an
///    AF_UNIX stream socket) or `tcp:PORT` / `tcp:HOST:PORT` (IPv4;
///    `tcp:0` binds an ephemeral loopback port, reported by
///    Listener::bound());
///  - Socket: a move-only RAII fd with read_exact / write_all loops
///    (EINTR-safe, MSG_NOSIGNAL so a dead peer is an error, not a
///    SIGPIPE), half-close via shutdown_read/shutdown_write, and an
///    optional receive timeout;
///  - Listener: bind + listen + accept with an internal self-pipe so
///    interrupt() wakes a blocked accept() deterministically (the
///    graceful-shutdown path closes listeners first);
///  - send_frame / recv_frame: the length-prefixed framing every protocol
///    message rides in — a little-endian u32 payload length, then the
///    payload. recv_frame distinguishes a clean EOF at a frame boundary
///    (std::nullopt) from truncation mid-frame or an oversized length
///    claim (pnp::Error).
///
/// Everything is deliberately blocking + thread-per-connection: the
/// server's concurrency policy lives in serve::Server, not here.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace pnp::net {

/// A parsed endpoint: `unix:PATH` or `tcp:[HOST:]PORT`.
struct Address {
  bool is_unix = false;
  std::string path;               ///< unix: filesystem path
  std::string host = "127.0.0.1"; ///< tcp: IPv4 dotted quad
  int port = 0;                   ///< tcp: 0 = ephemeral (listen only)

  /// Parse "unix:/tmp/x.sock", "tcp:7070", or "tcp:127.0.0.1:7070".
  /// Throws pnp::Error on anything else.
  static Address parse(const std::string& spec);
  std::string to_string() const;
};

/// Move-only RAII wrapper of a connected stream-socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Read exactly n bytes. Returns the bytes read before EOF: n on
  /// success, 0 if the peer closed before the first byte, and anything in
  /// between on a mid-read close. Throws pnp::Error on transport errors.
  std::size_t read_exact(void* buf, std::size_t n);
  /// Write all n bytes (MSG_NOSIGNAL). Throws pnp::Error on any failure,
  /// including a closed peer.
  void write_all(const void* buf, std::size_t n);

  /// Half-close: further reads on this end see EOF / the peer sees EOF.
  /// Safe to call from another thread to wake a blocked read_exact.
  void shutdown_read();
  void shutdown_write();

  /// Blocking-receive timeout (SO_RCVTIMEO); a timed-out read throws
  /// pnp::Error mentioning "timed out". 0 = wait forever.
  void set_recv_timeout_ms(int ms);

  void close();

 private:
  int fd_ = -1;
};

/// A bound, listening socket. accept() blocks until a connection arrives
/// or interrupt() is called from another thread (then returns nullopt
/// forever after).
class Listener {
 public:
  /// Bind + listen. For unix addresses the path must not already exist
  /// (a stale socket file is an error, not silently stolen); the file is
  /// unlinked on close. For tcp, port 0 picks an ephemeral port.
  /// Throws pnp::Error on failure.
  explicit Listener(const Address& addr, int backlog = 128);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The actual bound address (tcp port resolved).
  const Address& bound() const { return bound_; }

  /// Next connection, or nullopt once interrupt() has been called.
  std::optional<Socket> accept();

  /// Wake any blocked accept() and make all future accepts return
  /// nullopt. Idempotent, callable from any thread.
  void interrupt();

  void close();

 private:
  Address bound_;
  int fd_ = -1;
  int wake_rd_ = -1, wake_wr_ = -1;  ///< self-pipe: interrupt() -> accept()
  bool unlink_on_close_ = false;
};

/// Connect to an address, retrying ECONNREFUSED / missing-socket-file for
/// up to `retry_ms` (a daemon started in parallel may not be listening
/// yet). Throws pnp::Error when the deadline passes.
Socket connect_to(const Address& addr, int retry_ms = 0);

/// Maximum payload a peer may claim in a frame header; anything larger is
/// rejected before allocation (recv_frame throws).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Write one frame: little-endian u32 payload size, then the payload.
void send_frame(Socket& s, std::string_view payload);

/// Read one frame. Returns nullopt on a clean EOF at a frame boundary.
/// Throws pnp::Error on a truncated length prefix, EOF mid-payload, a
/// length claim above `max_payload`, or transport errors.
std::optional<std::string> recv_frame(Socket& s,
                                      std::uint32_t max_payload = kMaxFrameBytes);

}  // namespace pnp::net
