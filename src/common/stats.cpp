#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pnp {

double mean(std::span<const double> xs) {
  PNP_CHECK(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  PNP_CHECK(!xs.empty());
  double s = 0.0;
  for (double x : xs) {
    PNP_CHECK_MSG(x > 0.0, "geomean requires strictly positive values, got " << x);
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) {
  PNP_CHECK(!xs.empty());
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double min_of(std::span<const double> xs) {
  PNP_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  PNP_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double fraction_at_least(std::span<const double> xs, double threshold) {
  PNP_CHECK(!xs.empty());
  std::size_t c = 0;
  for (double x : xs)
    if (x >= threshold) ++c;
  return static_cast<double>(c) / static_cast<double>(xs.size());
}

double fraction_below(std::span<const double> xs, double threshold) {
  return 1.0 - fraction_at_least(xs, threshold);
}

std::size_t argmin(std::span<const double> xs) {
  PNP_CHECK(!xs.empty());
  return static_cast<std::size_t>(
      std::min_element(xs.begin(), xs.end()) - xs.begin());
}

std::size_t argmax(std::span<const double> xs) {
  PNP_CHECK(!xs.empty());
  return static_cast<std::size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  PNP_CHECK(xs.size() == ys.size() && !xs.empty());
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace pnp
