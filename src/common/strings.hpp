#pragma once

/// \file strings.hpp
/// Small string utilities used by the IR printer/parser and table output.

#include <string>
#include <string_view>
#include <vector>

namespace pnp {

/// Split on a delimiter character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on any whitespace; drops empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// printf-style double formatting with fixed precision.
std::string fmt_double(double v, int precision = 3);

}  // namespace pnp
