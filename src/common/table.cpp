#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace pnp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PNP_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  PNP_CHECK_MSG(row.size() == header_.size(),
                "row width " << row.size() << " != header width "
                             << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << row[c];
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

}  // namespace pnp
