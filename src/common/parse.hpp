#pragma once

/// \file parse.hpp
/// Checked numeric parsing for CLI flags and specs. Every tool shares
/// these instead of raw std::stoi so trailing garbage ("8garbage"),
/// out-of-range values, and empty strings are rejected uniformly with a
/// pnp::Error naming the offending flag — the caller decides whether
/// that is a usage error (exit 2) or bad input (exit 1).

#include <cstdint>
#include <limits>
#include <string>

namespace pnp {

/// Parse a whole string as an int in [min_value, max_value]. Throws
/// pnp::Error mentioning `what` on empty input, non-numeric characters,
/// trailing characters, or a value outside the bounds.
int parse_int(const std::string& s, const char* what,
              int min_value = std::numeric_limits<int>::min(),
              int max_value = std::numeric_limits<int>::max());

/// Parse a whole string as a non-negative 64-bit integer (seeds).
std::uint64_t parse_uint64(const std::string& s, const char* what);

/// Parse a whole string as a finite double. Throws pnp::Error mentioning
/// `what` on empty input, trailing characters, or non-finite values.
double parse_double(const std::string& s, const char* what);

}  // namespace pnp
