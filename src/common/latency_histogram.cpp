#include "common/latency_histogram.hpp"

#include <bit>

#include "common/error.hpp"
#include "common/wire.hpp"

namespace pnp {

LatencyHistogram::LatencyHistogram() : buckets_(kBucketCount) {}

std::size_t LatencyHistogram::bucket_index(std::uint64_t ns) {
  if (ns < kSubBuckets) return static_cast<std::size_t>(ns);
  if (ns > kMaxTracked) return kOverflowBucket;
  const int octave = std::bit_width(ns) - 1;  // >= kSubBits
  const int shift = octave - kSubBits;
  return (static_cast<std::size_t>(shift) + 1) * kSubBuckets +
         static_cast<std::size_t>((ns >> shift) - kSubBuckets);
}

LatencyHistogram::Bounds LatencyHistogram::bucket_bounds(std::size_t idx) {
  PNP_CHECK_MSG(idx < kBucketCount, "bucket index " << idx
                                    << " out of range [0, " << kBucketCount
                                    << ")");
  if (idx == kOverflowBucket)
    return {kMaxTracked + 1, ~std::uint64_t{0}};
  if (idx < kSubBuckets) return {idx, idx};
  const int shift = static_cast<int>(idx / kSubBuckets) - 1;
  const std::uint64_t sub = (idx % kSubBuckets) + kSubBuckets;
  return {sub << shift, ((sub + 1) << shift) - 1};
}

void LatencyHistogram::record(std::uint64_t ns) {
  buckets_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t prev = max_ns_.load(std::memory_order_relaxed);
  while (prev < ns && !max_ns_.compare_exchange_weak(
                          prev, ns, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  total_ns_.fetch_add(other.total_ns(), std::memory_order_relaxed);
  const std::uint64_t omax = other.max_ns();
  std::uint64_t prev = max_ns_.load(std::memory_order_relaxed);
  while (prev < omax && !max_ns_.compare_exchange_weak(
                            prev, omax, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::bucket(std::size_t idx) const {
  PNP_CHECK_MSG(idx < kBucketCount, "bucket index " << idx
                                    << " out of range [0, " << kBucketCount
                                    << ")");
  return buckets_[idx].load(std::memory_order_relaxed);
}

LatencyHistogram::Bounds LatencyHistogram::quantile_bounds(double q) const {
  const std::uint64_t n = count();
  PNP_CHECK_MSG(n > 0, "quantile of an empty histogram");
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample, 1-based: ceil(q * n), at least 1.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
  if (static_cast<double>(rank) < q * static_cast<double>(n)) ++rank;
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum >= rank) {
      Bounds b = bucket_bounds(i);
      // The exact max tightens both the overflow bucket and the tail
      // bucket of the in-range distribution.
      const std::uint64_t mx = max_ns();
      if (b.upper > mx) b.upper = mx;
      if (b.lower > b.upper) b.lower = b.upper;
      return b;
    }
  }
  // Unreachable: cum reaches count() by the last bucket.
  PNP_CHECK_MSG(false, "histogram counters inconsistent");
  return {};
}

namespace {
/// Layout tag in the wire form: decoding rejects a histogram built with a
/// different bucket geometry instead of silently misbinning.
constexpr std::uint32_t kWireLayout =
    (static_cast<std::uint32_t>(LatencyHistogram::kSubBits) << 16) |
    static_cast<std::uint32_t>(LatencyHistogram::kBucketCount);
}  // namespace

void LatencyHistogram::encode(std::string& out) const {
  // Concurrent record() calls may land between any two atomic loads, and
  // decode() strictly enforces internal consistency (bucket sum == count,
  // no trailing bytes). So read the bucket array exactly once into a
  // plain snapshot and derive *every* emitted field — count, nonzero, and
  // the entry list — from that snapshot alone.
  std::vector<std::uint64_t> snap(kBucketCount);
  std::uint64_t sum = 0;
  std::uint32_t nonzero = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    sum += snap[i];
    if (snap[i]) ++nonzero;
  }
  // The summary counters are only advisory relative to the snapshot
  // (total/max may trail or lead by in-flight samples); clamp the one
  // combination decode() rejects — a non-zero summary on an empty
  // histogram.
  std::uint64_t total = total_ns_.load(std::memory_order_relaxed);
  std::uint64_t mx = max_ns_.load(std::memory_order_relaxed);
  if (sum == 0) {
    total = 0;
    mx = 0;
  }
  wire::put_u32(out, kWireLayout);
  wire::put_u64(out, sum);
  wire::put_u64(out, total);
  wire::put_u64(out, mx);
  wire::put_u32(out, nonzero);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (!snap[i]) continue;
    wire::put_u32(out, static_cast<std::uint32_t>(i));
    wire::put_u64(out, snap[i]);
  }
}

void LatencyHistogram::decode(wire::Reader& r) {
  const std::uint32_t layout = r.u32();
  PNP_CHECK_MSG(layout == kWireLayout,
                "histogram layout mismatch: got " << layout << ", expected "
                                                  << kWireLayout);
  const std::uint64_t count = r.u64();
  const std::uint64_t total = r.u64();
  const std::uint64_t mx = r.u64();
  const std::uint32_t nonzero = r.u32();
  PNP_CHECK_MSG(nonzero <= kBucketCount,
                "histogram claims " << nonzero << " non-empty buckets of "
                                    << kBucketCount);
  reset();
  std::uint64_t sum = 0;
  std::uint32_t prev_idx = 0;
  for (std::uint32_t i = 0; i < nonzero; ++i) {
    const std::uint32_t idx = r.u32();
    const std::uint64_t c = r.u64();
    PNP_CHECK_MSG(idx < kBucketCount, "histogram bucket index " << idx
                                      << " out of range");
    PNP_CHECK_MSG(i == 0 || idx > prev_idx,
                  "histogram bucket indices not strictly increasing");
    PNP_CHECK_MSG(c > 0, "histogram entry with zero count");
    prev_idx = idx;
    buckets_[idx].store(c, std::memory_order_relaxed);
    sum += c;
  }
  PNP_CHECK_MSG(sum == count, "histogram count " << count
                              << " does not match bucket sum " << sum);
  PNP_CHECK_MSG(count > 0 || (total == 0 && mx == 0),
                "empty histogram with non-zero summary counters");
  count_.store(count, std::memory_order_relaxed);
  total_ns_.store(total, std::memory_order_relaxed);
  max_ns_.store(mx, std::memory_order_relaxed);
}

}  // namespace pnp
