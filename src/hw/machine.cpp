#include "hw/machine.hpp"

#include "common/error.hpp"

namespace pnp::hw {

double MachineModel::l3_total_bytes(int sockets_used) const {
  return l3_mib_per_socket * 1024.0 * 1024.0 * sockets_used;
}

double MachineModel::l2_total_bytes(int cores_used) const {
  return l2_kib_per_core * 1024.0 * cores_used;
}

double MachineModel::l1_total_bytes(int cores_used) const {
  return l1d_kib_per_core * 1024.0 * cores_used;
}

double MachineModel::power_demand_w(int active_cores, int sockets_used,
                                    double f_ghz, double activity) const {
  PNP_CHECK(active_cores >= 0 && active_cores <= total_cores());
  PNP_CHECK(sockets_used >= 0 && sockets_used <= sockets);
  PNP_CHECK_MSG(active_cores == 0 || sockets_used >= 1,
                "active cores must occupy at least one socket");
  const double per_core =
      alpha_w_per_core * f_ghz * f_ghz * f_ghz + beta_w_per_core * f_ghz;
  const double act = 0.35 + 0.65 * activity;  // stalled cores still clock
  return p_static_w + p_uncore_per_socket_w * sockets_used +
         active_cores * per_core * act;
}

MachineModel MachineModel::skylake() {
  MachineModel m;
  m.name = "skylake";
  m.sockets = 2;
  m.cores_per_socket = 16;
  m.smt_per_core = 2;
  m.fmin_ghz = 0.8;
  m.fmax_ghz = 3.7;
  m.fstep_ghz = 0.1;
  m.l1d_kib_per_core = 32.0;
  m.l2_kib_per_core = 1024.0;
  m.l3_mib_per_socket = 22.0;
  m.mem_bw_gbs_per_socket = 100.0;
  m.p_static_w = 18.0;
  m.p_uncore_per_socket_w = 7.0;
  // Calibrated so that all 32 cores at ~2.6 GHz demand ≈ TDP (150 W) and
  // tightening the cap to 75 W forces all-core frequency to ≈ 1.3 GHz.
  m.alpha_w_per_core = 0.166;
  m.beta_w_per_core = 0.30;
  m.tdp_w = 150.0;
  m.min_cap_w = 75.0;
  m.flops_per_cycle_per_core = 16.0;
  m.smt_throughput_gain = 1.25;
  return m;
}

MachineModel MachineModel::haswell() {
  MachineModel m;
  m.name = "haswell";
  m.sockets = 2;
  m.cores_per_socket = 8;
  m.smt_per_core = 2;
  m.fmin_ghz = 0.8;
  m.fmax_ghz = 3.2;
  m.fstep_ghz = 0.1;
  m.l1d_kib_per_core = 32.0;
  m.l2_kib_per_core = 256.0;
  m.l3_mib_per_socket = 20.0;
  m.mem_bw_gbs_per_socket = 59.0;
  m.p_static_w = 10.0;
  m.p_uncore_per_socket_w = 5.0;
  // Calibrated so that 16 cores at ~2.4 GHz demand ≈ TDP (85 W) and a
  // 40 W cap forces all-core frequency to ≈ 1.1 GHz.
  m.alpha_w_per_core = 0.242;
  m.beta_w_per_core = 0.30;
  m.tdp_w = 85.0;
  m.min_cap_w = 40.0;
  m.flops_per_cycle_per_core = 8.0;
  m.smt_throughput_gain = 1.25;
  return m;
}

}  // namespace pnp::hw
