#pragma once

/// \file variorum.hpp
/// A Variorum-flavoured C-style facade over the power substrate
/// (paper §II-B / §III-C: "we used Variorum APIs to interface with RAPL and
/// device MSRs to constrain power"). Downstream code written against
/// LLNL Variorum's vocabulary can port to the simulator by swapping
/// headers: the functions mirror variorum_cap_best_effort_node_power_limit,
/// variorum_print_power, and the monitoring entry points, returning 0 on
/// success like the original.
///
/// The facade holds one NodePowerDomain per modeled node; the OO interface
/// underneath (PowerCapController / EnergyMeter) remains the primary API.

#include <string>

#include "hw/machine.hpp"
#include "hw/power.hpp"

namespace pnp::hw::variorum {

/// One node's power-management state (package domain only, like the
/// paper's CPU capping). Owns a copy of the machine model so callers may
/// pass temporaries (PowerCapController itself only borrows).
class NodePowerDomain {
 public:
  explicit NodePowerDomain(MachineModel machine)
      : machine_(std::move(machine)), controller_(machine_) {}

  // The controller borrows machine_; this type must not be moved/copied.
  NodePowerDomain(const NodePowerDomain&) = delete;
  NodePowerDomain& operator=(const NodePowerDomain&) = delete;

  PowerCapController& controller() { return controller_; }
  const PowerCapController& controller() const { return controller_; }
  EnergyMeter& meter() { return meter_; }
  const EnergyMeter& meter() const { return meter_; }

 private:
  MachineModel machine_;
  PowerCapController controller_;
  EnergyMeter meter_;
};

/// Best-effort node power cap, clamped to the machine's [min_cap, TDP]
/// window. Returns 0 on success (Variorum convention); the applied value
/// is written to *applied_watts when non-null.
inline int cap_best_effort_node_power_limit(NodePowerDomain& node,
                                            double watts,
                                            double* applied_watts = nullptr) {
  const double applied = node.controller().set_cap_watts(watts);
  if (applied_watts != nullptr) *applied_watts = applied;
  return 0;
}

/// Current package power limit in watts.
inline int get_node_power_limit(const NodePowerDomain& node, double* watts) {
  if (watts == nullptr) return -1;
  *watts = node.controller().cap_watts();
  return 0;
}

/// Accumulated package energy (the RAPL energy MSR analogue).
inline int get_node_energy_joules(const NodePowerDomain& node,
                                  double* joules) {
  if (joules == nullptr) return -1;
  *joules = node.meter().joules();
  return 0;
}

/// Human-readable power summary, à la variorum_print_power().
inline std::string print_power(const NodePowerDomain& node) {
  const auto& m = node.controller().machine();
  std::string s = "node=" + m.name;
  s += " cap=" + std::to_string(node.controller().cap_watts()) + "W";
  s += " tdp=" + std::to_string(m.tdp_w) + "W";
  s += " min=" + std::to_string(m.min_cap_w) + "W";
  s += " energy=" + std::to_string(node.meter().joules()) + "J";
  return s;
}

}  // namespace pnp::hw::variorum
