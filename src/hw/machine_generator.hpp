#pragma once

/// \file machine_generator.hpp
/// The hardware zoo (ROADMAP item 5, docs/HARDWARE.md): a seeded
/// deterministic generator of realistic MachineModel descriptors, the
/// hardware-axis mirror of the PR-4 workload generator. Every descriptor
/// is a pure function of (seed, machine index) — bit-identical across
/// runs, platforms, and build modes — so "train on N machines, evaluate
/// on held-out ones" (generalizing paper Figs. 4–5) is a reproducible
/// experiment, not a lottery.
///
/// Machines are drawn from four archetype families, assigned round-robin
/// by index so any contiguous fleet covers all of them:
///
///   index % 4 == 0  big-node server   (2-4 sockets, 12-28 cores each)
///   index % 4 == 1  narrow desktop    (1 socket, high clocks, big L3)
///   index % 4 == 2  many-thin-core    (32-64 slim cores, low clocks)
///   index % 4 == 3  bandwidth-bound   (HBM-class memory, modest cores)
///
/// Generator contract (tests/machine_generator_test.cpp enforces it):
///  - all frequencies are integer MHz, so every ladder point
///    fmax − k·fstep is exactly representable and fmin is on the ladder;
///  - max_threads() >= 32, so the generic SearchSpace::for_machine grid
///    always has the full 6 thread classes and every generated machine
///    shares one classifier head layout (what lets a single fleet
///    artifact serve them all — docs/HARDWARE.md "Fleet artifacts");
///  - tdp_w is derived from the sampled alpha/beta power coefficients at
///    a mid-ladder sustained frequency (integer watts), min_cap_w is
///    40-60% of tdp_w, so cap grids are non-degenerate and the power
///    model is self-consistent;
///  - the descriptor's name is its spec, "gen:<seed>:<index>", and
///    machine_by_name() round-trips it.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "hw/machine.hpp"

namespace pnp::hw {

enum class MachineArchetype : int {
  kBigNodeServer = 0,
  kNarrowDesktop = 1,
  kManyThinCore = 2,
  kBandwidthBound = 3,
};

inline constexpr int kNumMachineArchetypes = 4;

const char* archetype_name(MachineArchetype a);

class MachineGenerator {
 public:
  explicit MachineGenerator(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// Archetype family of machine `index` (round-robin).
  MachineArchetype archetype_of(int index) const;

  /// The `index`-th machine of this seed's zoo. Pure function of
  /// (seed, index): two generators with equal seeds produce bit-identical
  /// descriptors for every index, in any call order.
  MachineModel machine(int index) const;

  /// Machines 0..count-1.
  std::vector<MachineModel> fleet(int count) const;

 private:
  std::uint64_t seed_;
};

/// Order-sensitive hash of every MachineModel field (name bytes plus the
/// raw bit patterns of all numeric fields). Two machines agreeing on the
/// fingerprint agree on the whole descriptor; artifact v4 stores it so a
/// tuner trained on one machine refuses to serve another even when their
/// search-space grids collide (docs/HARDWARE.md "Machine fingerprints").
std::uint64_t machine_fingerprint(const MachineModel& m);

/// Machine-conditioned model inputs (artifact v4 fleet models append these
/// to the dense-layer extra features so one network can tell the fleet's
/// machines apart): log2-normalized thread count, bandwidth/compute
/// balance, and cap-range shape. All O(1) magnitudes by construction.
inline constexpr int kNumMachineFeatures = 3;
std::array<double, kNumMachineFeatures> machine_feature_vector(
    const MachineModel& m);

/// The one machine registry every tool shares: resolves the two paper
/// machines ("haswell", "skylake") and generated-machine specs
/// ("gen:<seed>:<index>"). Throws pnp::Error on anything else. For every
/// accepted name, machine_by_name(name).name == name.
MachineModel machine_by_name(const std::string& name);

}  // namespace pnp::hw
