#pragma once

/// \file power.hpp
/// The Variorum/RAPL facade (paper §II-B, §III-C): package power capping
/// and energy accounting, plus the PAPI-like counter record.
///
/// On the authors' testbed this is `variorum_cap_best_effort_node_power_limit`
/// over Intel MSRs; here the same interface is served by the analytical
/// machine model: a cap determines the highest frequency-ladder point whose
/// package power demand stays within budget at the active core count.

#include <cstdint>

#include "hw/machine.hpp"

namespace pnp::hw {

/// Simulated-RAPL package power controller for one machine.
class PowerCapController {
 public:
  explicit PowerCapController(const MachineModel& machine);

  /// Set the package cap in watts; clamped to [min_cap_w, tdp_w].
  /// Returns the applied (clamped) value — mirroring best-effort capping.
  double set_cap_watts(double watts);

  double cap_watts() const { return cap_w_; }

  /// Highest ladder frequency sustainable with `active_cores` running
  /// compute-heavy code under the current cap. Never below fmin.
  double max_frequency_ghz(int active_cores, int sockets_used) const;

  /// Same, for an explicit cap (stateless helper).
  static double max_frequency_ghz(const MachineModel& m, double cap_w,
                                  int active_cores, int sockets_used);

  const MachineModel& machine() const { return machine_; }

 private:
  const MachineModel& machine_;
  double cap_w_;
};

/// The five performance counters the paper's dynamic variant feeds to the
/// dense layers (§IV-B): L1/L2/L3 cache misses, instructions, and
/// mispredicted branches.
struct Counters {
  double instructions = 0.0;
  double l1_misses = 0.0;
  double l2_misses = 0.0;
  double l3_misses = 0.0;
  double branch_mispredictions = 0.0;
};

/// Accumulates energy over (power, duration) intervals — the RAPL energy
/// MSR analogue used by the EDP experiments.
class EnergyMeter {
 public:
  /// Record an interval of `seconds` at `watts`.
  void accumulate(double watts, double seconds);

  double joules() const { return joules_; }
  double seconds() const { return seconds_; }

  /// Mean power over everything recorded so far (0 if nothing recorded).
  double average_power_w() const;

  void reset();

 private:
  double joules_ = 0.0;
  double seconds_ = 0.0;
};

}  // namespace pnp::hw
