#pragma once

/// \file machine.hpp
/// Parameterized analytical models of the paper's two experimental
/// platforms (§IV-A):
///   - "Skylake": Intel Xeon Gold 6142, 2 sockets × 16 cores, 2-way SMT,
///     package power 75 W (min cap) … 150 W (TDP);
///   - "Haswell": Intel Xeon E5-2630 v3, 2 sockets × 8 cores, 2-way SMT,
///     package power 40 W (min cap) … 85 W (TDP).
///
/// The model covers exactly what the tuning problem needs: how the
/// sustainable core frequency falls as the RAPL package cap tightens and
/// the active-core count grows (cube-law dynamic power), how much compute
/// and memory bandwidth a configuration can draw, and cache capacities for
/// the miss model. See DESIGN.md §4.4 for the substitution rationale.

#include <string>

namespace pnp::hw {

struct MachineModel {
  std::string name;

  // Topology.
  int sockets = 2;
  int cores_per_socket = 16;
  int smt_per_core = 2;

  // Frequency ladder (GHz).
  double fmin_ghz = 0.8;
  double fmax_ghz = 3.7;
  double fstep_ghz = 0.1;

  // Cache capacities.
  double l1d_kib_per_core = 32.0;
  double l2_kib_per_core = 1024.0;
  double l3_mib_per_socket = 22.0;

  // Memory subsystem.
  double mem_bw_gbs_per_socket = 100.0;
  double numa_remote_factor = 0.85;  ///< bandwidth retained across sockets

  // Power model: P(cap demand) = p_static + sockets_used * p_uncore +
  //              active_cores * (alpha·f³ + beta·f).
  double p_static_w = 18.0;
  double p_uncore_per_socket_w = 7.0;
  double alpha_w_per_core = 0.166;  ///< f in GHz
  double beta_w_per_core = 0.30;

  // Package limits (per Table I of the paper).
  double tdp_w = 150.0;
  double min_cap_w = 75.0;

  // Core throughput.
  double flops_per_cycle_per_core = 16.0;  ///< vector FMA peak
  double smt_throughput_gain = 1.25;       ///< 2nd hyperthread yield

  int total_cores() const { return sockets * cores_per_socket; }
  int max_threads() const { return total_cores() * smt_per_core; }
  double l3_total_bytes(int sockets_used) const;
  double l2_total_bytes(int cores_used) const;
  double l1_total_bytes(int cores_used) const;

  /// Package power demanded when `active_cores` run at `f_ghz` with the
  /// given core-activity factor in [0,1] (memory-stalled cores draw less).
  double power_demand_w(int active_cores, int sockets_used, double f_ghz,
                        double activity = 1.0) const;

  /// The Xeon Gold 6142 node of the paper.
  static MachineModel skylake();
  /// The Xeon E5-2630 v3 node of the paper.
  static MachineModel haswell();
};

}  // namespace pnp::hw
