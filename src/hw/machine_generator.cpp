#include "hw/machine_generator.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace pnp::hw {

namespace {

/// lo + q·k for a uniform k — a quantized draw, so every sampled value is
/// one of a small closed set of doubles (bit-stable across platforms).
double pick_q(Rng& rng, double lo, double q, int steps) {
  return lo + q * static_cast<double>(rng.uniform_int(0, steps));
}

/// One of an explicit menu.
template <typename T, std::size_t N>
T pick(Rng& rng, const std::array<T, N>& menu) {
  return menu[rng.uniform_index(N)];
}

struct Ladder {
  int fmin_mhz = 0, fmax_mhz = 0, step_mhz = 0;
};

/// Sample a DVFS ladder in integer MHz: fmax from [lo, hi] on a 100 MHz
/// raster, a step from `steps_mhz`, and a depth of `kmin..kmax` rungs
/// (clamped so fmin never falls below 800 MHz). fmin is always exactly
/// fmax − k·step, i.e. on the ladder.
Ladder sample_ladder(Rng& rng, int fmax_lo_mhz, int fmax_hi_mhz,
                     std::array<int, 2> steps_mhz, int kmin, int kmax) {
  Ladder l;
  l.fmax_mhz = fmax_lo_mhz + 100 * rng.uniform_int(
                                       0, (fmax_hi_mhz - fmax_lo_mhz) / 100);
  l.step_mhz = pick(rng, steps_mhz);
  const int kcap = (l.fmax_mhz - 800) / l.step_mhz;
  int k = rng.uniform_int(kmin, kmax);
  if (k > kcap) k = kcap;
  l.fmin_mhz = l.fmax_mhz - k * l.step_mhz;
  return l;
}

}  // namespace

const char* archetype_name(MachineArchetype a) {
  switch (a) {
    case MachineArchetype::kBigNodeServer: return "big-node-server";
    case MachineArchetype::kNarrowDesktop: return "narrow-desktop";
    case MachineArchetype::kManyThinCore: return "many-thin-core";
    case MachineArchetype::kBandwidthBound: return "bandwidth-bound";
  }
  throw Error("unknown machine archetype");
}

MachineArchetype MachineGenerator::archetype_of(int index) const {
  PNP_CHECK_MSG(index >= 0, "machine index must be >= 0, got " << index);
  return static_cast<MachineArchetype>(index % kNumMachineArchetypes);
}

MachineModel MachineGenerator::machine(int index) const {
  const MachineArchetype arch = archetype_of(index);
  Rng rng(hash_combine(seed_, static_cast<std::uint64_t>(index)));

  MachineModel m;
  m.name = "gen:" + std::to_string(seed_) + ":" + std::to_string(index);

  Ladder ladder;
  switch (arch) {
    case MachineArchetype::kBigNodeServer:
      m.sockets = 2 * rng.uniform_int(1, 2);
      m.cores_per_socket = 12 + 2 * rng.uniform_int(0, 8);
      m.smt_per_core = 2;
      ladder = sample_ladder(rng, 2400, 3600, {100, 100}, 16, 28);
      m.l1d_kib_per_core = pick(rng, std::array<double, 2>{32.0, 48.0});
      m.l2_kib_per_core =
          pick(rng, std::array<double, 3>{512.0, 1024.0, 2048.0});
      m.l3_mib_per_socket =
          pick(rng, std::array<double, 4>{16.0, 22.0, 32.0, 48.0});
      m.mem_bw_gbs_per_socket = pick_q(rng, 80.0, 10.0, 6);
      m.flops_per_cycle_per_core = pick(rng, std::array<double, 2>{16.0, 32.0});
      m.alpha_w_per_core = pick_q(rng, 0.10, 0.002, 100);
      m.beta_w_per_core = pick_q(rng, 0.20, 0.01, 30);
      m.p_static_w = pick_q(rng, 12.0, 1.0, 13);
      m.p_uncore_per_socket_w = pick_q(rng, 5.0, 1.0, 5);
      break;
    case MachineArchetype::kNarrowDesktop:
      m.sockets = 1;
      m.cores_per_socket = 16 + 2 * rng.uniform_int(0, 4);
      m.smt_per_core = 2;
      ladder = sample_ladder(rng, 3600, 5000, {50, 100}, 24, 48);
      m.l1d_kib_per_core = pick(rng, std::array<double, 2>{32.0, 48.0});
      m.l2_kib_per_core = pick(rng, std::array<double, 2>{1024.0, 2048.0});
      m.l3_mib_per_socket =
          pick(rng, std::array<double, 3>{24.0, 32.0, 64.0});
      m.mem_bw_gbs_per_socket = pick_q(rng, 40.0, 10.0, 4);
      m.flops_per_cycle_per_core = 16.0;
      m.alpha_w_per_core = pick_q(rng, 0.12, 0.002, 90);
      m.beta_w_per_core = pick_q(rng, 0.20, 0.01, 25);
      m.p_static_w = pick_q(rng, 8.0, 1.0, 7);
      m.p_uncore_per_socket_w = pick_q(rng, 4.0, 1.0, 4);
      break;
    case MachineArchetype::kManyThinCore:
      m.sockets = rng.uniform_int(1, 2);
      m.cores_per_socket = 32 + 4 * rng.uniform_int(0, 8);
      m.smt_per_core = pick(rng, std::array<int, 2>{1, 4});
      ladder = sample_ladder(rng, 1200, 2000, {50, 100}, 8, 16);
      m.l1d_kib_per_core = 32.0;
      m.l2_kib_per_core = pick(rng, std::array<double, 2>{256.0, 512.0});
      m.l3_mib_per_socket =
          pick(rng, std::array<double, 3>{8.0, 16.0, 32.0});
      m.mem_bw_gbs_per_socket = pick_q(rng, 60.0, 10.0, 6);
      m.flops_per_cycle_per_core = pick(rng, std::array<double, 2>{4.0, 8.0});
      m.alpha_w_per_core = pick_q(rng, 0.03, 0.001, 70);
      m.beta_w_per_core = pick_q(rng, 0.10, 0.01, 20);
      m.p_static_w = pick_q(rng, 10.0, 1.0, 10);
      m.p_uncore_per_socket_w = pick_q(rng, 4.0, 1.0, 4);
      break;
    case MachineArchetype::kBandwidthBound:
      m.sockets = rng.uniform_int(1, 2);
      m.cores_per_socket = 16 + 4 * rng.uniform_int(0, 4);
      m.smt_per_core = 2;
      ladder = sample_ladder(rng, 2000, 3000, {100, 100}, 12, 20);
      m.l1d_kib_per_core = pick(rng, std::array<double, 2>{32.0, 48.0});
      m.l2_kib_per_core = pick(rng, std::array<double, 2>{512.0, 1024.0});
      m.l3_mib_per_socket =
          pick(rng, std::array<double, 3>{32.0, 48.0, 64.0});
      m.mem_bw_gbs_per_socket = pick_q(rng, 150.0, 25.0, 10);
      m.flops_per_cycle_per_core = pick(rng, std::array<double, 2>{8.0, 16.0});
      m.alpha_w_per_core = pick_q(rng, 0.08, 0.002, 60);
      m.beta_w_per_core = pick_q(rng, 0.20, 0.01, 20);
      m.p_static_w = pick_q(rng, 15.0, 1.0, 15);
      m.p_uncore_per_socket_w = pick_q(rng, 8.0, 1.0, 6);
      break;
  }

  m.fmin_ghz = static_cast<double>(ladder.fmin_mhz) / 1000.0;
  m.fmax_ghz = static_cast<double>(ladder.fmax_mhz) / 1000.0;
  m.fstep_ghz = static_cast<double>(ladder.step_mhz) / 1000.0;
  m.numa_remote_factor = pick_q(rng, 0.75, 0.01, 20);
  m.smt_throughput_gain = pick_q(rng, 1.10, 0.01, 25);

  // Calibrate the package limits to the sampled coefficients: TDP is the
  // integer-watt demand of the whole package at a mid-ladder sustained
  // frequency, so every machine's power model, cap range, and ladder are
  // consistent by construction rather than independently sampled.
  const int ft_mhz =
      ladder.fmin_mhz +
      ((ladder.fmax_mhz - ladder.fmin_mhz) * 3 / 5 / ladder.step_mhz) *
          ladder.step_mhz;
  const double ft = static_cast<double>(ft_mhz) / 1000.0;
  const double per_core =
      m.alpha_w_per_core * ft * ft * ft + m.beta_w_per_core * ft;
  m.tdp_w = std::ceil(m.p_static_w +
                      m.p_uncore_per_socket_w * static_cast<double>(m.sockets) +
                      static_cast<double>(m.total_cores()) * per_core);
  const double cap_ratio = pick_q(rng, 0.40, 0.01, 20);
  m.min_cap_w = std::floor(cap_ratio * m.tdp_w);
  return m;
}

std::vector<MachineModel> MachineGenerator::fleet(int count) const {
  PNP_CHECK_MSG(count >= 1, "fleet size must be >= 1, got " << count);
  std::vector<MachineModel> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(machine(i));
  return out;
}

std::uint64_t machine_fingerprint(const MachineModel& m) {
  std::uint64_t h = fnv1a(std::string_view(m.name));
  const auto mix_d = [&h](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    h = hash_combine(h, bits);
  };
  const auto mix_i = [&h](int v) {
    h = hash_combine(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  };
  mix_i(m.sockets);
  mix_i(m.cores_per_socket);
  mix_i(m.smt_per_core);
  mix_d(m.fmin_ghz);
  mix_d(m.fmax_ghz);
  mix_d(m.fstep_ghz);
  mix_d(m.l1d_kib_per_core);
  mix_d(m.l2_kib_per_core);
  mix_d(m.l3_mib_per_socket);
  mix_d(m.mem_bw_gbs_per_socket);
  mix_d(m.numa_remote_factor);
  mix_d(m.p_static_w);
  mix_d(m.p_uncore_per_socket_w);
  mix_d(m.alpha_w_per_core);
  mix_d(m.beta_w_per_core);
  mix_d(m.tdp_w);
  mix_d(m.min_cap_w);
  mix_d(m.flops_per_cycle_per_core);
  mix_d(m.smt_throughput_gain);
  return h;
}

std::array<double, kNumMachineFeatures> machine_feature_vector(
    const MachineModel& m) {
  // 1. Thread scale: log2(max_threads)/8 — 0.375 for a 8-thread desktop,
  //    1.0 at 256 threads. 2. Bandwidth/compute balance: package DRAM
  //    bandwidth over peak FLOP rate at fmax (a machine-level arithmetic
  //    intensity breakpoint). 3. Cap-range shape: how deep the cap grid
  //    cuts below TDP.
  const double threads = static_cast<double>(m.max_threads());
  const double bw =
      static_cast<double>(m.sockets) * m.mem_bw_gbs_per_socket;
  const double flops = static_cast<double>(m.total_cores()) *
                       m.flops_per_cycle_per_core * m.fmax_ghz;
  return {std::log2(threads) / 8.0, bw / flops, m.min_cap_w / m.tdp_w};
}

MachineModel machine_by_name(const std::string& name) {
  if (name == "haswell") return MachineModel::haswell();
  if (name == "skylake") return MachineModel::skylake();
  if (starts_with(name, "gen:")) {
    const std::vector<std::string> parts = split(name, ':');
    PNP_CHECK_MSG(parts.size() == 3,
                  "bad generated-machine spec '"
                      << name << "' (expected gen:<seed>:<index>)");
    const std::uint64_t seed = parse_uint64(parts[1], "machine seed");
    const int index = parse_int(parts[2], "machine index", 0);
    return MachineGenerator(seed).machine(index);
  }
  throw Error("unknown machine '" + name +
              "' (expected haswell, skylake, or gen:<seed>:<index>)");
}

}  // namespace pnp::hw
