#include "hw/power.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pnp::hw {

PowerCapController::PowerCapController(const MachineModel& machine)
    : machine_(machine), cap_w_(machine.tdp_w) {}

double PowerCapController::set_cap_watts(double watts) {
  cap_w_ = std::clamp(watts, machine_.min_cap_w, machine_.tdp_w);
  return cap_w_;
}

double PowerCapController::max_frequency_ghz(int active_cores,
                                             int sockets_used) const {
  return max_frequency_ghz(machine_, cap_w_, active_cores, sockets_used);
}

double PowerCapController::max_frequency_ghz(const MachineModel& m,
                                             double cap_w, int active_cores,
                                             int sockets_used) {
  PNP_CHECK(active_cores >= 1 && sockets_used >= 1);
  // Walk the ladder downward until the demand fits. Demand is evaluated at
  // full activity — RAPL must budget for the worst case within its window.
  // Each rung is recomputed from fmax by integer index — never accumulated
  // subtraction — so every returned frequency is an exact ladder point
  // regardless of ladder depth (generated machines have arbitrary ladders).
  const int rungs = static_cast<int>(
      std::lround((m.fmax_ghz - m.fmin_ghz) / m.fstep_ghz));
  for (int k = 0; k < rungs; ++k) {
    const double f = m.fmax_ghz - static_cast<double>(k) * m.fstep_ghz;
    if (m.power_demand_w(active_cores, sockets_used, f) <= cap_w) return f;
  }
  return m.fmin_ghz;
}

void EnergyMeter::accumulate(double watts, double seconds) {
  PNP_CHECK(watts >= 0.0 && seconds >= 0.0);
  joules_ += watts * seconds;
  seconds_ += seconds;
}

double EnergyMeter::average_power_w() const {
  return seconds_ > 0.0 ? joules_ / seconds_ : 0.0;
}

void EnergyMeter::reset() {
  joules_ = 0.0;
  seconds_ = 0.0;
}

}  // namespace pnp::hw
