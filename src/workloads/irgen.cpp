#include "workloads/irgen.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"

namespace pnp::workloads {

namespace {

using ir::Builder;
using ir::Opcode;
using ir::Type;
using ir::Value;

void declare_once(ir::Module& m, const ir::Declaration& d) {
  if (!m.is_declared(d.name)) m.declarations.push_back(d);
}

int clamp_int(double v, int lo, int hi) {
  return std::clamp(static_cast<int>(std::lround(v)), lo, hi);
}

/// Emits the innermost computation body; returns the running accumulator.
struct BodyPlan {
  int n_loads = 2;
  int n_flops = 4;
  int n_stores = 1;
  bool divergent_branch = false;
  bool math_call = false;
  bool atomic_combine = false;
  bool critical_section = false;
};

BodyPlan plan_body(const sim::KernelDescriptor& k) {
  BodyPlan p;
  p.n_loads = clamp_int(1.5 * std::log2(1.0 + k.bytes_per_iter / 8.0), 1, 10);
  p.n_flops = clamp_int(2.0 * std::log2(1.0 + k.flops_per_iter), 1, 16);
  p.n_stores = k.bytes_per_iter > 64 ? 2 : 1;
  p.divergent_branch = k.branch_div > 0.15;
  p.math_call = k.has_calls;
  p.atomic_combine = k.reduction;
  p.critical_section = k.critical_frac > 0.01;
  return p;
}

/// A loop level under construction.
struct LoopFrame {
  int header = -1;
  int body = -1;
  int latch = -1;
  int exit = -1;
  Value induction;  // phi in header
};

/// Opens a counted loop `for (i = 0; i < bound; ++i)` starting from the
/// current insertion point; leaves the builder inside the body block.
LoopFrame open_loop(Builder& b, int level, Value bound) {
  LoopFrame fr;
  const std::string tag = "l" + std::to_string(level);
  fr.header = b.add_block(tag + ".header");
  fr.body = b.add_block(tag + ".body");
  fr.latch = b.add_block(tag + ".latch");
  fr.exit = b.add_block(tag + ".exit");

  const int pre = b.current_block();
  b.br(fr.header);

  b.set_block(fr.header);
  fr.induction = b.phi(Type::I64, {{b.ci64(0), pre}});
  const Value cond = b.icmp("slt", fr.induction, bound);
  b.condbr(cond, fr.body, fr.exit);

  b.set_block(fr.body);
  return fr;
}

/// Closes a loop opened by open_loop: jumps to the latch, increments, and
/// loops back; leaves the builder in the exit block.
void close_loop(Builder& b, const LoopFrame& fr) {
  b.br(fr.latch);
  b.set_block(fr.latch);
  const Value next = b.add(fr.induction, b.ci64(1));
  b.br(fr.header);
  b.phi_add_incoming(fr.induction, next, fr.latch);
  b.set_block(fr.exit);
}

}  // namespace

std::string emit_region(ir::Module& m, const sim::KernelDescriptor& k) {
  // Globals this region streams through (named per region for locality).
  const std::string base = k.region;
  auto add_global = [&](const std::string& suffix) {
    const std::string name = base + "_" + suffix;
    if (m.global_index(name) < 0) m.globals.push_back(ir::Global{name, Type::F64});
    return name;
  };
  const std::string g_in = add_global("in");
  const std::string g_out = add_global("out");

  declare_once(m, {"omp_get_thread_num", Type::I32, {}});
  declare_once(m, {"omp_get_num_threads", Type::I32, {}});

  ir::Function fn;
  fn.name = k.app + "." + k.region + ".omp_outlined";
  fn.ret = Type::Void;
  fn.args.push_back(ir::Argument{"ctx", Type::Ptr});
  fn.args.push_back(ir::Argument{"n", Type::I64});
  m.functions.push_back(std::move(fn));
  ir::Function& f = m.functions.back();

  Builder b(m, f);
  const int entry = b.add_block("entry");
  b.set_block(entry);

  const Value tid32 = b.call(Type::I32, "omp_get_thread_num", {});
  const Value tid = b.sext(tid32, Type::I64);
  const Value nthr32 = b.call(Type::I32, "omp_get_num_threads", {});
  const Value nthr = b.sext(nthr32, Type::I64);
  (void)nthr;

  const BodyPlan plan = plan_body(k);

  // Serial fraction: a __kmpc_single-guarded prologue executed by the
  // elected thread only.
  if (k.serial_frac > 0.02) {
    declare_once(m, {"__kmpc_single", Type::I32, {Type::Ptr}});
    declare_once(m, {"__kmpc_end_single", Type::Void, {Type::Ptr}});
    const Value got = b.call(Type::I32, "__kmpc_single", {b.arg(0)});
    const Value is_single = b.icmp("ne", got, b.ci32(0));
    const int single_bb = b.add_block("single.body");
    const int after_single = b.add_block("single.end");
    b.condbr(is_single, single_bb, after_single);
    b.set_block(single_bb);
    const Value p = b.gep(b.global(g_out), b.ci64(0));
    const Value v = b.load(Type::F64, p);
    const Value v2 = b.fmul(v, b.cf64(0.5));
    b.store(v2, p);
    b.call(Type::Void, "__kmpc_end_single", {b.arg(0)});
    b.br(after_single);
    b.set_block(after_single);
  }

  // The parallelized outer loop. Trip count appears as a constant bound —
  // the magnitude the static graph cannot see.
  const Value outer_bound =
      b.ci64(static_cast<std::int64_t>(std::max(1.0, k.trip_count)));
  const int depth = std::clamp(k.loop_nest_depth, 1, 3);

  std::vector<LoopFrame> frames;
  frames.push_back(open_loop(b, 0, outer_bound));

  // Data-dependent inner bound models imbalanced (CSR/triangular) nests.
  for (int level = 1; level < depth; ++level) {
    Value bound;
    if (k.imbalance > 0.15) {
      const Value bp = b.gep(b.global(g_in), frames.back().induction);
      const Value bw = b.load(Type::F64, bp);
      bound = b.cast(Opcode::FPToSI, Type::I64, bw);
    } else {
      bound = b.ci64(
          static_cast<std::int64_t>(std::max(1.0, k.trip_count / 4.0)));
    }
    frames.push_back(open_loop(b, level, bound));
  }

  // ---- Innermost body ------------------------------------------------------
  const Value idx = frames.back().induction;

  if (plan.critical_section) {
    declare_once(m, {"__kmpc_critical", Type::Void, {Type::Ptr}});
    b.call(Type::Void, "__kmpc_critical", {b.arg(0)});
  }

  // Loads.
  std::vector<Value> vals;
  for (int i = 0; i < plan.n_loads; ++i) {
    const Value off = b.add(idx, b.ci64(i));
    const Value p = b.gep(b.global(g_in), off);
    vals.push_back(b.load(Type::F64, p));
  }
  if (vals.empty()) vals.push_back(b.cf64(1.0));

  // Divergent branch: body splits on a data-dependent predicate.
  Value acc = vals[0];
  if (plan.divergent_branch) {
    const Value pred = b.fcmp("ogt", acc, b.cf64(0.0));
    const int then_bb = b.add_block("div.then");
    const int else_bb = b.add_block("div.else");
    const int join_bb = b.add_block("div.join");
    b.condbr(pred, then_bb, else_bb);
    b.set_block(then_bb);
    const Value tv = b.fmul(acc, b.cf64(1.5));
    b.br(join_bb);
    b.set_block(else_bb);
    const Value ev = b.fadd(acc, b.cf64(2.5));
    b.br(join_bb);
    b.set_block(join_bb);
    acc = b.phi(Type::F64, {{tv, then_bb}, {ev, else_bb}});
  }

  // Arithmetic chain; mix of fmul/fadd proportional to intensity.
  for (int i = 0; i < plan.n_flops; ++i) {
    const Value rhs = vals[static_cast<std::size_t>(i) % vals.size()];
    acc = (i % 3 == 2) ? b.fadd(acc, rhs) : b.fmul(acc, rhs);
  }
  if (plan.math_call) {
    declare_once(m, {"sqrt", Type::F64, {Type::F64}});
    acc = b.call(Type::F64, "sqrt", {acc});
  }

  // Stores / combine.
  if (plan.atomic_combine) {
    const Value p = b.gep(b.global(g_out), tid);
    b.atomicrmw("fadd", p, acc);
  }
  for (int i = 0; i < plan.n_stores; ++i) {
    const Value off = b.add(idx, b.ci64(100 + i));
    const Value p = b.gep(b.global(g_out), off);
    b.store(acc, p);
  }

  if (plan.critical_section) {
    declare_once(m, {"__kmpc_end_critical", Type::Void, {Type::Ptr}});
    b.call(Type::Void, "__kmpc_end_critical", {b.arg(0)});
  }

  // Close the nest inside-out; implicit OpenMP barrier; return.
  for (auto it = frames.rbegin(); it != frames.rend(); ++it)
    close_loop(b, *it);
  b.barrier();
  b.ret();

  return f.name;
}

ir::Module emit_application(const std::string& app_name,
                            const std::vector<sim::KernelDescriptor>& regions) {
  PNP_CHECK(!regions.empty());
  ir::Module m;
  m.name = app_name;

  std::vector<std::string> fn_names;
  for (const auto& k : regions) {
    PNP_CHECK_MSG(k.app == app_name,
                  "descriptor app '" << k.app << "' != module '" << app_name
                                     << "'");
    fn_names.push_back(emit_region(m, k));
  }

  // Driver providing call-flow context.
  ir::Function driver;
  driver.name = app_name + ".main";
  driver.ret = Type::Void;
  driver.args.push_back(ir::Argument{"ctx", Type::Ptr});
  m.functions.push_back(std::move(driver));
  ir::Function& dr = *m.find_function(app_name + ".main");
  Builder b(m, dr);
  const int entry = b.add_block("entry");
  b.set_block(entry);
  for (const auto& fname : fn_names)
    b.call(Type::Void, fname, {b.arg(0), b.ci64(1)});
  b.ret();

  ir::verify_or_throw(m);
  return m;
}

}  // namespace pnp::workloads
