#include "workloads/generator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "workloads/irgen.hpp"

namespace pnp::workloads {

namespace {

using sim::KernelDescriptor;

constexpr double MiB = 1024.0 * 1024.0;

/// Stream tags keeping the app-level and region-level draws independent.
constexpr std::uint64_t kAppStream = 0xA11C0DE5ULL;
constexpr std::uint64_t kRegionStream = 0x4E610215ULL;

double log_uniform(Rng& rng, double lo, double hi) {
  return std::exp(rng.uniform(std::log(lo), std::log(hi)));
}

/// Integer-valued problem size. Deterministic for a fixed libm: uniform()
/// is exact integer arithmetic, but exp/log are only ULP-accurate, so a
/// different libm could floor to a neighbouring integer (see the seeding
/// contract in generator.hpp).
double sample_size(Rng& rng, double lo, double hi) {
  return std::floor(log_uniform(rng, lo, hi));
}

bool chance(Rng& rng, double p) { return rng.uniform() < p; }

/// Optionally-present trait: 0 with probability 1-p, else uniform in
/// [lo, hi]. Draws exactly two values either way so the stream layout
/// (and thus every later draw) does not depend on the coin.
double maybe(Rng& rng, double p, double lo, double hi) {
  const bool on = chance(rng, p);
  const double v = rng.uniform(lo, hi);
  return on ? v : 0.0;
}

// --- Family samplers -------------------------------------------------------
// Each mirrors the corresponding hand-built family in suite.cpp but draws
// its parameters from the per-region stream. The returned tag becomes the
// region-name suffix ("r<i>_<tag>").

struct Sampled {
  KernelDescriptor desc;
  const char* tag;
};

Sampled sample_blas3(Rng& rng) {
  KernelDescriptor k;
  const double n = sample_size(rng, 450, 1500);
  k.trip_count = n;
  k.flops_per_iter = 2.0 * n * n;
  k.bytes_per_iter = 2.0 * n * 8.0;
  k.working_set_bytes = 3.0 * n * n * 8.0;
  k.imbalance = maybe(rng, 0.4, 0.05, 0.5);
  k.branch_div = maybe(rng, 0.2, 0.16, 0.3);
  k.loop_nest_depth = 3;
  k.flop_efficiency = rng.uniform(0.24, 0.4);
  k.has_calls = chance(rng, 0.3);
  return {k, "gemm"};
}

Sampled sample_stencil(Rng& rng) {
  KernelDescriptor k;
  const double n = sample_size(rng, 1800, 3800);
  const double arrays = rng.uniform_int(2, 5);
  k.trip_count = n;
  k.flops_per_iter = 6.0 * n;
  k.bytes_per_iter = arrays * n * 8.0;
  k.working_set_bytes = arrays * n * n * 8.0;
  k.serial_frac = maybe(rng, 0.25, 0.05, 0.35);
  k.imbalance = maybe(rng, 0.3, 0.1, 0.55);
  k.branch_div = maybe(rng, 0.25, 0.16, 0.35);
  k.loop_nest_depth = 2;
  k.flop_efficiency = rng.uniform(0.15, 0.25);
  return {k, "sweep"};
}

Sampled sample_factorization(Rng& rng) {
  KernelDescriptor k;
  const double n = sample_size(rng, 500, 2000);
  k.trip_count = n;
  k.flops_per_iter = n * n / 3.0;
  k.bytes_per_iter = n * 8.0;
  k.working_set_bytes = n * n * 8.0;
  k.imbalance = rng.uniform(0.3, 0.8);
  k.serial_frac = maybe(rng, 0.4, 0.02, 0.15);
  k.critical_frac = maybe(rng, 0.25, 0.011, 0.05);
  k.loop_nest_depth = 3;
  k.flop_efficiency = rng.uniform(0.18, 0.26);
  k.has_calls = chance(rng, 0.35);
  k.reduction = chance(rng, 0.3);
  return {k, "solve"};
}

Sampled sample_monte_carlo(Rng& rng, double ws_lo_mib, double ws_hi_mib) {
  KernelDescriptor k;
  k.trip_count = sample_size(rng, 4e4, 2.4e5);
  k.flops_per_iter = rng.uniform(40.0, 160.0);
  k.bytes_per_iter = 640.0;  // scattered grid reads
  k.working_set_bytes = rng.uniform(ws_lo_mib, ws_hi_mib) * MiB;
  k.imbalance = rng.uniform(0.1, 0.8);
  k.branch_div = rng.uniform(0.2, 0.8);
  k.critical_frac = maybe(rng, 0.2, 0.011, 0.04);
  k.reduction = chance(rng, 0.8);
  k.loop_nest_depth = 2;
  k.flop_efficiency = rng.uniform(0.05, 0.12);
  k.chunk_overhead_scale = rng.uniform(0.8, 1.25);
  return {k, "lookup"};
}

Sampled sample_critical(Rng& rng) {
  // The trisolv/matrix-assembly corner: little parallel work, much of it
  // behind a lock or an elected serial section.
  KernelDescriptor k;
  const double n = sample_size(rng, 800, 4000);
  k.trip_count = n;
  k.flops_per_iter = n * rng.uniform(0.01, 0.5);
  k.bytes_per_iter = n * 8.0 * rng.uniform(0.002, 0.05);
  k.working_set_bytes = rng.uniform(2.0, 32.0) * MiB;
  k.critical_frac = rng.uniform(0.05, 0.3);
  k.serial_frac = rng.uniform(0.2, 0.95);
  k.imbalance = maybe(rng, 0.5, 0.05, 0.3);
  k.loop_nest_depth = 2;
  k.flop_efficiency = rng.uniform(0.08, 0.2);
  k.reduction = chance(rng, 0.4);
  return {k, "locked"};
}

Sampled sample_blas2(Rng& rng) {
  KernelDescriptor k;
  const double n = sample_size(rng, 3000, 8000);
  const double passes = rng.uniform(1.0, 4.0);
  k.trip_count = n;
  k.flops_per_iter = 2.0 * n * passes;
  k.bytes_per_iter = passes * n * 8.0;
  k.working_set_bytes = passes * n * n * 8.0;
  k.imbalance = maybe(rng, 0.4, 0.1, 0.5);
  k.reduction = chance(rng, 0.5);
  k.loop_nest_depth = 2;
  k.flop_efficiency = rng.uniform(0.1, 0.2);
  return {k, "spmv"};
}

Sampled sample_tiny(Rng& rng) {
  KernelDescriptor k;
  k.trip_count = sample_size(rng, 2e3, 8e5);
  k.flops_per_iter = rng.uniform(1.0, 8.0);
  k.bytes_per_iter = rng.uniform(8.0, 96.0);
  k.working_set_bytes = k.trip_count * k.bytes_per_iter;
  k.loop_nest_depth = 1;
  k.flop_efficiency = rng.uniform(0.08, 0.12);
  k.reduction = chance(rng, 0.3);
  return {k, "tiny"};
}

Sampled sample_region(Family f, Rng& rng) {
  switch (f) {
    case Family::Blas3:
      return sample_blas3(rng);
    case Family::Stencil:
      return sample_stencil(rng);
    case Family::Factorization:
      return sample_factorization(rng);
    case Family::MonteCarlo:
      return sample_monte_carlo(rng, 32.0, 256.0);
    case Family::Critical:
      return sample_critical(rng);
    case Family::ProxyMix: {
      // Mixed proxy-app region: one of four sub-shapes per region.
      switch (rng.uniform_int(0, 3)) {
        case 0:
          return sample_blas2(rng);
        case 1:
          return sample_tiny(rng);
        case 2: {
          auto s = sample_stencil(rng);
          s.tag = "halo";
          return s;
        }
        default: {
          auto s = sample_monte_carlo(rng, 16.0, 96.0);
          s.tag = "tally";
          return s;
        }
      }
    }
  }
  PNP_CHECK_MSG(false, "unreachable family " << static_cast<int>(f));
  throw Error("unreachable");
}

Family pick_family(Rng& rng, const std::array<double, kNumFamilies>& w) {
  double total = 0.0;
  for (double x : w) total += x;
  double u = rng.uniform() * total;
  int last_positive = 0;
  for (int f = 0; f < kNumFamilies; ++f) {
    if (w[static_cast<std::size_t>(f)] <= 0.0) continue;
    last_positive = f;
    if (u < w[static_cast<std::size_t>(f)]) return static_cast<Family>(f);
    u -= w[static_cast<std::size_t>(f)];
  }
  return static_cast<Family>(last_positive);  // float round-off fallback
}

}  // namespace

const char* family_name(Family f) {
  switch (f) {
    case Family::Blas3:
      return "blas3";
    case Family::Stencil:
      return "stencil";
    case Family::Factorization:
      return "factor";
    case Family::MonteCarlo:
      return "montecarlo";
    case Family::Critical:
      return "critical";
    case Family::ProxyMix:
      return "proxymix";
  }
  PNP_CHECK_MSG(false, "unreachable family " << static_cast<int>(f));
  throw Error("unreachable");
}

Generator::Generator(GeneratorOptions options) : opt_(std::move(options)) {
  PNP_CHECK_MSG(opt_.num_regions > 0, "num_regions must be positive");
  PNP_CHECK_MSG(opt_.max_regions_per_app >= 1,
                "max_regions_per_app must be >= 1");
  double total = 0.0;
  for (double w : opt_.family_weights) {
    PNP_CHECK_MSG(w >= 0.0, "family weights must be non-negative");
    total += w;
  }
  PNP_CHECK_MSG(total > 0.0, "at least one family weight must be positive");
}

Corpus Generator::generate() const {
  std::vector<Application> apps;
  int remaining = opt_.num_regions;
  for (std::uint64_t a = 0; remaining > 0; ++a) {
    // App-level draws (family, region count) come from a stream keyed by
    // the application index alone.
    Rng app_rng(hash_combine(opt_.seed, hash_combine(kAppStream, a)));
    const Family family = pick_family(app_rng, opt_.family_weights);
    int count = app_rng.uniform_int(1, opt_.max_regions_per_app);
    if (count > remaining) count = remaining;
    remaining -= count;

    Application app;
    app.name = "g" + std::to_string(a) + "_" + family_name(family);

    std::vector<KernelDescriptor> descs;
    descs.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t r = 0; r < static_cast<std::uint64_t>(count); ++r) {
      Rng rng(hash_combine(opt_.seed,
                           hash_combine(kRegionStream, hash_combine(a, r))));
      Sampled s = sample_region(family, rng);
      s.desc.app = app.name;
      s.desc.region = "r" + std::to_string(r) + "_" + s.tag;
      descs.push_back(std::move(s.desc));
    }

    app.module = emit_application(app.name, descs);  // verifies the IR
    for (auto& d : descs) {
      Region region;
      region.function = d.app + "." + d.region + ".omp_outlined";
      region.desc = std::move(d);
      app.regions.push_back(std::move(region));
    }
    apps.push_back(std::move(app));
  }
  return Corpus(std::move(apps));
}

std::optional<Family> Generator::family_of(const std::string& app_name) {
  if (app_name.empty() || app_name[0] != 'g') return std::nullopt;
  const auto sep = app_name.find('_');
  if (sep == std::string::npos || sep < 2) return std::nullopt;  // need digits
  for (std::size_t i = 1; i < sep; ++i)
    if (app_name[i] < '0' || app_name[i] > '9') return std::nullopt;
  const std::string tag = app_name.substr(sep + 1);
  for (int f = 0; f < kNumFamilies; ++f)
    if (tag == family_name(static_cast<Family>(f)))
      return static_cast<Family>(f);
  return std::nullopt;
}

}  // namespace pnp::workloads
