#include "workloads/suite.hpp"

#include "common/error.hpp"
#include "workloads/irgen.hpp"

namespace pnp::workloads {

namespace {

using sim::KernelDescriptor;

constexpr double KiB = 1024.0;
constexpr double MiB = 1024.0 * 1024.0;

/// Builders per kernel family. Values are chosen so that region runtimes
/// land in the µs–tens-of-ms range and the families have distinct optima
/// (see suite.hpp header comment and DESIGN.md §4.5).

/// Dense BLAS-3-like compute kernel (gemm family).
KernelDescriptor blas3(std::string app, std::string region, double n,
                       double imbalance = 0.0, bool calls = false) {
  KernelDescriptor k;
  k.app = std::move(app);
  k.region = std::move(region);
  k.trip_count = n;
  k.flops_per_iter = 2.0 * n * n;       // rank-1 update row
  k.bytes_per_iter = 2.0 * n * 8.0;     // one row of each operand
  k.working_set_bytes = 3.0 * n * n * 8.0;
  k.imbalance = imbalance;
  k.loop_nest_depth = 3;
  k.flop_efficiency = 0.35;
  k.has_calls = calls;
  return k;
}

/// Bandwidth-bound 2-D stencil sweep.
KernelDescriptor stencil(std::string app, std::string region, double n,
                         double arrays, double serial_frac = 0.0) {
  KernelDescriptor k;
  k.app = std::move(app);
  k.region = std::move(region);
  k.trip_count = n;                      // rows
  k.flops_per_iter = 6.0 * n;
  k.bytes_per_iter = arrays * n * 8.0;   // rows streamed per iteration
  k.working_set_bytes = arrays * n * n * 8.0;
  k.serial_frac = serial_frac;
  k.loop_nest_depth = 2;
  k.flop_efficiency = 0.20;
  return k;
}

/// Memory-bound BLAS-2 (matrix-vector family).
KernelDescriptor blas2(std::string app, std::string region, double n,
                       double passes = 1.0, bool reduction = false) {
  KernelDescriptor k;
  k.app = std::move(app);
  k.region = std::move(region);
  k.trip_count = n;
  k.flops_per_iter = 2.0 * n * passes;
  k.bytes_per_iter = passes * n * 8.0;
  k.working_set_bytes = passes * n * n * 8.0;
  k.reduction = reduction;
  k.loop_nest_depth = 2;
  k.flop_efficiency = 0.15;
  return k;
}

/// Triangular / factorization kernel with ramp imbalance.
KernelDescriptor triangular(std::string app, std::string region, double n,
                            double imbalance, double serial_frac = 0.0,
                            bool calls = false) {
  KernelDescriptor k;
  k.app = std::move(app);
  k.region = std::move(region);
  k.trip_count = n;
  k.flops_per_iter = n * n / 3.0;
  k.bytes_per_iter = n * 8.0;
  k.working_set_bytes = n * n * 8.0;
  k.imbalance = imbalance;
  k.serial_frac = serial_frac;
  k.loop_nest_depth = 3;
  k.flop_efficiency = 0.22;
  k.has_calls = calls;
  return k;
}

/// Monte Carlo cross-section lookup (XSBench/RSBench family).
KernelDescriptor monte_carlo(std::string app, std::string region,
                             double lookups, double ws_mib,
                             double divergence) {
  KernelDescriptor k;
  k.app = std::move(app);
  k.region = std::move(region);
  k.trip_count = lookups;
  k.flops_per_iter = 90.0;
  k.bytes_per_iter = 640.0;  // scattered grid reads
  k.working_set_bytes = ws_mib * MiB;
  k.imbalance = 0.35;
  k.branch_div = divergence;
  k.reduction = true;
  k.loop_nest_depth = 2;
  k.flop_efficiency = 0.06;
  k.chunk_overhead_scale = 0.8;
  return k;
}

/// Tiny boundary/ghost kernel — fork/join-overhead dominated.
KernelDescriptor tiny(std::string app, std::string region, double trip,
                      double flops = 4.0, double bytes = 24.0) {
  KernelDescriptor k;
  k.app = std::move(app);
  k.region = std::move(region);
  k.trip_count = trip;
  k.flops_per_iter = flops;
  k.bytes_per_iter = bytes;
  k.working_set_bytes = trip * bytes;
  k.loop_nest_depth = 1;
  k.flop_efficiency = 0.10;
  return k;
}

std::vector<KernelDescriptor> make_app_regions(const std::string& app) {
  std::vector<KernelDescriptor> rs;
  auto add = [&](KernelDescriptor k) { rs.push_back(std::move(k)); };

  // ---- Proxy / mini applications (figure order) -------------------------
  if (app == "rsbench") {
    // Multipole cross-section lookups: heavy divergence, resonance windows.
    add(monte_carlo(app, "r0_xs_lookup", 160000, 64, 0.7));
    auto k = monte_carlo(app, "r1_verification", 40000, 64, 0.5);
    k.reduction = true;
    k.flops_per_iter = 40.0;
    add(k);
  } else if (app == "xsbench") {
    // Unionized-grid lookups: huge working set, random access.
    add(monte_carlo(app, "r0_macro_xs", 200000, 240, 0.6));
    auto k = monte_carlo(app, "r1_grid_init", 60000, 240, 0.2);
    k.branch_div = 0.1;
    k.imbalance = 0.1;
    add(k);
  } else if (app == "minife") {
    // CG solver pieces.
    auto spmv = blas2(app, "r0_spmv", 6000, 4.0);
    spmv.imbalance = 0.35;  // row-length variance
    spmv.working_set_bytes = 200 * MiB;
    add(spmv);
    auto dot = blas2(app, "r1_dot", 800000, 0.002, true);
    dot.bytes_per_iter = 16.0;
    dot.flops_per_iter = 2.0;
    dot.working_set_bytes = 13 * MiB;
    dot.loop_nest_depth = 1;
    add(dot);
    auto waxpby = blas2(app, "r2_waxpby", 800000, 0.003);
    waxpby.bytes_per_iter = 24.0;
    waxpby.flops_per_iter = 3.0;
    waxpby.working_set_bytes = 19 * MiB;
    waxpby.loop_nest_depth = 1;
    add(waxpby);
    auto asm_k = triangular(app, "r3_matrix_assembly", 2200, 0.3, 0.05);
    asm_k.critical_frac = 0.02;
    asm_k.reduction = true;
    add(asm_k);
    auto bc = tiny(app, "r4_dirichlet_bc", 12000, 6.0, 32.0);
    add(bc);
    auto vinit = tiny(app, "r5_vector_init", 800000, 1.0, 8.0);
    vinit.working_set_bytes = 6.4e6;
    add(vinit);
  } else if (app == "quicksilver") {
    // Particle histories: extreme imbalance + divergence.
    auto cyc = monte_carlo(app, "r0_cycle_tracking", 120000, 96, 0.75);
    cyc.imbalance = 0.8;
    cyc.chunk_overhead_scale = 1.2;
    add(cyc);
    auto init = monte_carlo(app, "r1_cycle_init", 60000, 96, 0.2);
    init.imbalance = 0.15;
    init.branch_div = 0.15;
    add(init);
    auto tally = monte_carlo(app, "r2_tallies", 80000, 32, 0.3);
    tally.critical_frac = 0.03;
    tally.imbalance = 0.3;
    add(tally);
    auto fin = tiny(app, "r3_cycle_finalize", 20000, 8.0, 48.0);
    fin.reduction = true;
    add(fin);
    auto pop = blas2(app, "r4_population_control", 120000, 0.004);
    pop.bytes_per_iter = 56.0;
    pop.branch_div = 0.4;
    pop.imbalance = 0.25;
    pop.working_set_bytes = 7 * MiB;
    pop.loop_nest_depth = 1;
    add(pop);
  } else if (app == "miniamr") {
    // Adaptive stencil on refined octree blocks.
    auto st = stencil(app, "r0_stencil_sweep", 3000, 4.0);
    st.imbalance = 0.5;  // refinement imbalance
    add(st);
    auto cmp = stencil(app, "r1_block_compare", 2200, 2.0);
    cmp.imbalance = 0.45;
    cmp.branch_div = 0.3;
    add(cmp);
    auto rf = triangular(app, "r2_refine", 1200, 0.6, 0.1);
    rf.critical_frac = 0.05;
    add(rf);
    auto gx = tiny(app, "r3_ghost_exchange", 9000, 2.0, 64.0);
    gx.working_set_bytes = 2 * MiB;
    add(gx);
    auto cks = blas2(app, "r4_checksum", 500000, 0.002, true);
    cks.bytes_per_iter = 16.0;
    cks.flops_per_iter = 2.0;
    cks.working_set_bytes = 8 * MiB;
    cks.loop_nest_depth = 1;
    add(cks);
    auto pack = tiny(app, "r5_comm_pack", 16000, 2.0, 96.0);
    pack.working_set_bytes = 1.5 * MiB;
    add(pack);
  } else if (app == "lulesh") {
    // Shock hydrodynamics proxy: nine regions of very different nature.
    auto f0 = blas3(app, "r0_calc_force", 900, 0.1);
    f0.flop_efficiency = 0.28;
    add(f0);
    auto f1 = blas3(app, "r1_volume_force", 800, 0.1, true);
    add(f1);
    auto is = stencil(app, "r2_integrate_stress", 2600, 3.0);
    is.imbalance = 0.2;
    add(is);
    // The §I motivating kernel: ApplyAccelerationBoundaryConditionsForNodes —
    // trivially small, fork/join dominated.
    add(tiny(app, "r3_apply_accel_bc", 2500, 3.0, 24.0));
    auto vel = stencil(app, "r4_calc_velocity", 3200, 2.0);
    add(vel);
    auto kin = blas3(app, "r5_kinematics", 700, 0.15, true);
    kin.flop_efficiency = 0.30;
    add(kin);
    auto qg = stencil(app, "r6_monotonic_q_gradient", 2400, 3.0);
    qg.branch_div = 0.3;
    add(qg);
    auto mat = monte_carlo(app, "r7_apply_material", 90000, 48, 0.5);
    mat.imbalance = 0.4;
    mat.reduction = false;
    mat.flops_per_iter = 160.0;
    mat.flop_efficiency = 0.12;
    add(mat);
    auto en = blas3(app, "r8_calc_energy", 600, 0.1, true);
    en.branch_div = 0.25;
    add(en);
  }

  // ---- PolyBench (figure order) ------------------------------------------
  else if (app == "seidel-2d") {
    // Gauss–Seidel wavefront dependency: a large serial remainder.
    add(stencil(app, "r0_sweep", 2800, 3.0, /*serial_frac=*/0.35));
  } else if (app == "adi") {
    add(stencil(app, "r0_column_sweep", 2600, 5.0));
    auto r1 = stencil(app, "r1_row_sweep", 2600, 3.0);
    add(r1);
  } else if (app == "jacobi-2d") {
    add(stencil(app, "r0_stencil_a", 3400, 3.0));
    add(stencil(app, "r1_stencil_b", 3400, 3.0));
  } else if (app == "bicg") {
    add(blas2(app, "r0_q_av", 7000, 1.0));
    add(blas2(app, "r1_s_atr", 7000, 1.0, true));
  } else if (app == "atax") {
    add(blas2(app, "r0_ax", 6500, 1.0));
    add(blas2(app, "r1_aty", 6500, 1.0, true));
  } else if (app == "gramschmidt") {
    add(triangular(app, "r0_projection", 1300, 0.6, 0.0, true));
    auto nrm = blas2(app, "r1_normalize", 1300, 1.0, true);
    nrm.has_calls = true;
    add(nrm);
  } else if (app == "correlation") {
    auto mean = blas2(app, "r0_mean_stddev", 1600, 1.0, true);
    mean.has_calls = true;
    add(mean);
    add(triangular(app, "r1_corr_matrix", 1600, 0.5));
  } else if (app == "doitgen") {
    auto k = blas3(app, "r0_contraction", 900);
    k.working_set_bytes = 30 * MiB;
    add(k);
  } else if (app == "covariance") {
    add(blas2(app, "r0_center", 1700, 1.0));
    add(triangular(app, "r1_cov_matrix", 1700, 0.5));
  } else if (app == "gemm") {
    add(blas3(app, "r0_gemm", 1100));
  } else if (app == "syrk") {
    add(blas3(app, "r0_syrk", 1000, 0.45));
  } else if (app == "cholesky") {
    add(triangular(app, "r0_factorize", 1400, 0.65, 0.08, true));
  } else if (app == "gemver") {
    add(blas2(app, "r0_a_update", 5200, 2.0));
    add(blas2(app, "r1_xw_update", 5200, 2.0, true));
  } else if (app == "mvt") {
    add(blas2(app, "r0_x1", 6000, 1.0, true));
    add(blas2(app, "r1_x2", 6000, 1.0, true));
  } else if (app == "durbin") {
    auto k = triangular(app, "r0_levinson", 500, 0.3, 0.45);
    k.flops_per_iter = 2.0 * 500;
    k.bytes_per_iter = 500 * 8.0;
    k.working_set_bytes = 2 * MiB;
    k.loop_nest_depth = 2;
    add(k);
  } else if (app == "trisolv") {
    // The paper's outlier: fastest with a single thread everywhere. The
    // forward-substitution recurrence leaves almost no parallel work, and
    // the little that remains sits behind a lock.
    auto k = triangular(app, "r0_forward_subst", 2000, 0.1, 0.95);
    k.flops_per_iter = 2.0 * 2000 * 0.002;
    k.bytes_per_iter = 2000 * 8.0 * 0.002;
    k.working_set_bytes = 16 * MiB;
    k.critical_frac = 0.25;
    k.loop_nest_depth = 2;
    add(k);
  } else if (app == "syr2k") {
    add(blas3(app, "r0_rank2k_a", 950, 0.45));
    add(blas3(app, "r1_rank2k_b", 950, 0.45));
  } else if (app == "lu") {
    add(triangular(app, "r0_eliminate", 1400, 0.7));
    auto up = triangular(app, "r1_update", 1400, 0.7);
    up.flops_per_iter = 1400.0 * 1400.0 / 4.0;
    add(up);
  } else if (app == "symm") {
    add(blas3(app, "r0_symm", 1000, 0.2));
  } else if (app == "fdtd-2d") {
    add(stencil(app, "r0_update_e", 3000, 4.0));
    add(stencil(app, "r1_update_h", 3000, 4.0));
  } else if (app == "fdtd-apml") {
    auto a = stencil(app, "r0_update_bz", 2400, 5.0);
    a.branch_div = 0.2;  // PML boundary conditionals
    add(a);
    add(stencil(app, "r1_update_ex_ey", 2400, 5.0));
  } else if (app == "2mm") {
    add(blas3(app, "r0_first_mm", 1000));
    add(blas3(app, "r1_second_mm", 1000));
  } else if (app == "gesummv") {
    add(blas2(app, "r0_summv", 6800, 2.0, true));
  } else if (app == "trmm") {
    add(blas3(app, "r0_trmm", 1000, 0.5));
  }

  PNP_CHECK_MSG(!rs.empty(), "unknown application '" << app << "'");
  return rs;
}

const std::vector<std::string> kAppOrder = {
    // Proxy/mini apps first, then PolyBench — the order of the paper's
    // figures (Fig. 2–7 x-axes).
    "rsbench",    "xsbench",     "minife",    "quicksilver", "miniamr",
    "lulesh",     "seidel-2d",   "adi",       "jacobi-2d",   "bicg",
    "atax",       "gramschmidt", "correlation", "doitgen",   "covariance",
    "gemm",       "syrk",        "cholesky",  "gemver",      "mvt",
    "durbin",     "trisolv",     "syr2k",     "lu",          "symm",
    "fdtd-2d",    "fdtd-apml",   "2mm",       "gesummv",     "trmm",
};

}  // namespace

std::size_t Corpus::total_regions() const {
  std::size_t n = 0;
  for (const auto& a : apps_) n += a.regions.size();
  return n;
}

std::vector<Corpus::RegionRef> Corpus::all_regions() const {
  std::vector<RegionRef> out;
  out.reserve(total_regions());
  for (const auto& a : apps_)
    for (const auto& r : a.regions) out.push_back(RegionRef{&a, &r});
  return out;
}

const Application* Corpus::find(const std::string& name) const {
  for (const auto& a : apps_)
    if (a.name == name) return &a;
  return nullptr;
}

std::vector<std::string> Corpus::application_names() const {
  std::vector<std::string> names;
  names.reserve(apps_.size());
  for (const auto& a : apps_) names.push_back(a.name);
  return names;
}

Suite::Suite() {
  apps_.reserve(kAppOrder.size());
  for (const auto& name : kAppOrder) {
    Application app;
    app.name = name;
    auto descs = make_app_regions(name);
    app.module = emit_application(name, descs);
    for (auto& d : descs) {
      Region r;
      r.function = d.app + "." + d.region + ".omp_outlined";
      r.desc = std::move(d);
      app.regions.push_back(std::move(r));
    }
    apps_.push_back(std::move(app));
  }
}

const Suite& Suite::instance() {
  static const Suite suite;
  return suite;
}

}  // namespace pnp::workloads
