#pragma once

/// \file irgen.hpp
/// Synthesis of mini-IR for an OpenMP region from its KernelDescriptor.
///
/// Clang outlines `#pragma omp parallel` regions into functions; this
/// generator produces the equivalent outlined function so the rest of the
/// pipeline (extract → PROGRAML graph → RGCN) is identical to the paper's.
/// The generated code mirrors the descriptor:
///   - loop-nest depth → nested header/body/latch block structure;
///   - arithmetic intensity → ratio of f-ops to loads/stores in the body;
///   - branch divergence → data-dependent if/else inside the body;
///   - imbalance → data-dependent inner trip count (CSR-style bound load);
///   - reduction → atomicrmw combine; critical sections → __kmpc_critical
///     call pairs; serial fraction → __kmpc_single-guarded block;
///   - math calls → calls to declared intrinsics (sqrt/exp);
///   - the implicit region-end barrier → a barrier instruction.
///
/// Magnitudes (trip counts, working sets) appear only as constant values —
/// which the graph vocabulary deliberately collapses to "const i64" — so,
/// exactly as in the paper, static graphs capture structure while dynamic
/// counters are needed to see magnitudes (§IV-B).

#include "ir/module.hpp"
#include "sim/kernel.hpp"

namespace pnp::workloads {

/// Append the outlined function for `desc` to `module` and return its
/// name (`<app>.<region>.omp_outlined`). Declares any intrinsics it
/// references (idempotently).
std::string emit_region(ir::Module& module, const sim::KernelDescriptor& desc);

/// Build a whole application module: one outlined function per region plus
/// an `@<app>.main` driver that calls each region in order (providing the
/// call-flow context PROGRAML encodes).
ir::Module emit_application(const std::string& app_name,
                            const std::vector<sim::KernelDescriptor>& regions);

}  // namespace pnp::workloads
