#pragma once

/// \file generator.hpp
/// Procedural workload generation: a seeded, deterministic sampler over
/// sim::KernelDescriptor space that produces arbitrary-size corpora shaped
/// exactly like the paper suite (workloads::Corpus), so generated programs
/// flow through the identical pipeline — IR emission + verification,
/// PROGRAML graphs, measurement sweeps, training, serving.
///
/// Regions are organized by kernel-family archetype, mirroring the
/// families the hand-built paper corpus spans (suite.cpp):
///   - Blas3         dense BLAS-3-like compute (gemm/syrk/2mm family);
///   - Stencil       bandwidth-bound sweeps (jacobi/fdtd family);
///   - Factorization triangular/factorization nests with ramp imbalance
///                   (lu/cholesky/gramschmidt family);
///   - MonteCarlo    branch-divergent scattered lookups with reductions
///                   (XSBench/RSBench/Quicksilver family);
///   - Critical      critical-section-/serial-fraction-dominated kernels
///                   (the trisolv corner of the space);
///   - ProxyMix      mixed proxy-app regions — per region one of
///                   {BLAS-2, tiny fork/join-bound, stencil, lookup}
///                   shapes with blended traits (miniFE/miniAMR/LULESH
///                   family).
///
/// Seeding contract (docs/WORKLOADS.md): every sampled value is a pure
/// function of (options.seed, application index, region index) — drawn
/// from per-region xoshiro streams keyed by hash, never from shared
/// generator state. Two Generator instances with equal options therefore
/// produce bit-identical corpora (names, descriptors, and printed IR),
/// independent of call order or thread count. Log-uniform size draws go
/// through std::exp/std::log, which are not required to be correctly
/// rounded, so bit-identity across *machines* additionally assumes the
/// same libm (true for any one CI platform; differing libms may round a
/// ULP apart and shift a sampled size).

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "workloads/suite.hpp"

namespace pnp::workloads {

/// Kernel-family archetypes the sampler draws from.
enum class Family : int {
  Blas3 = 0,
  Stencil = 1,
  Factorization = 2,
  MonteCarlo = 3,
  Critical = 4,
  ProxyMix = 5,
};
inline constexpr int kNumFamilies = 6;

/// Stable lowercase tag, e.g. "blas3"; embedded in generated app names.
const char* family_name(Family f);

struct GeneratorOptions {
  std::uint64_t seed = 7;
  /// Total regions in the generated corpus (> 0). Regions are grouped
  /// into applications of 1..max_regions_per_app regions each.
  int num_regions = 64;
  int max_regions_per_app = 4;
  /// Relative sampling weight per family (Family enum order). Weights of
  /// 0 exclude a family; at least one must be positive.
  std::array<double, kNumFamilies> family_weights{1, 1, 1, 1, 1, 1};
};

class Generator {
 public:
  /// Validates the options (throws pnp::Error on nonsense).
  explicit Generator(GeneratorOptions options);

  const GeneratorOptions& options() const { return opt_; }

  /// Sample the corpus: applications named "g<idx>_<family>", each with
  /// its regions' IR emitted and verified (emit_application throws on any
  /// malformed module, so every returned region passes ir::verify).
  /// Deterministic per the seeding contract above.
  Corpus generate() const;

  /// The family an application was sampled from, recovered from its name
  /// ("g03_stencil" → Stencil); nullopt for names this generator did not
  /// produce (e.g. paper-suite apps).
  static std::optional<Family> family_of(const std::string& app_name);

 private:
  GeneratorOptions opt_;
};

}  // namespace pnp::workloads
