#pragma once

/// \file suite.hpp
/// Workload corpora. Two kinds exist in the repository:
///   - Suite — the paper's benchmark corpus (§III-C, §IV): 30 applications
///     with 68 OpenMP parallel regions — 24 PolyBench kernels plus the
///     proxy-/mini-apps RSBench, XSBench, miniFE, Quicksilver, miniAMR,
///     and LULESH;
///   - generated corpora — arbitrary-size procedural corpora sampled by
///     workloads::Generator (generator.hpp).
/// Both are Corpus instances, so everything downstream (MeasurementDb,
/// PnpTuner, the LOOCV drivers, core::Evaluator, serve::InferenceEngine)
/// consumes them through the same abstraction.
///
/// Every region is described by a KernelDescriptor (see sim/kernel.hpp)
/// from which both its outlined IR (workloads/irgen.hpp) and its simulated
/// runtime behaviour derive. The paper corpus sets descriptor values per
/// kernel family: dense BLAS-3 compute kernels, bandwidth-bound stencils
/// and BLAS-2, triangular/factorization kernels with ramp imbalance, Monte
/// Carlo lookup kernels with branch divergence, and the proxy apps' mixed
/// regions (including LULESH's tiny boundary-condition kernel that drives
/// the paper's §I motivating example).

#include <string>
#include <vector>

#include "ir/module.hpp"
#include "sim/kernel.hpp"

namespace pnp::workloads {

/// One OpenMP region: descriptor + the outlined function in the module.
struct Region {
  sim::KernelDescriptor desc;
  std::string function;  ///< "<app>.<region>.omp_outlined"
};

/// One application: its IR module and regions.
struct Application {
  std::string name;
  ir::Module module;
  std::vector<Region> regions;
};

/// An ordered set of applications — the shared shape of the paper corpus
/// and generated corpora. Downstream consumers hold RegionRef views, which
/// point into this object's applications: keep the corpus alive (and
/// unmoved applications — moving the Corpus itself is fine, its
/// application vector's elements stay put) for as long as any RegionRef,
/// MeasurementDb, or tuner built on it is in use.
class Corpus {
 public:
  Corpus() = default;
  explicit Corpus(std::vector<Application> apps) : apps_(std::move(apps)) {}

  const std::vector<Application>& applications() const { return apps_; }

  std::size_t application_count() const { return apps_.size(); }
  std::size_t total_regions() const;

  /// All regions in application order, each paired with its application.
  struct RegionRef {
    const Application* app;
    const Region* region;
  };
  std::vector<RegionRef> all_regions() const;

  const Application* find(const std::string& name) const;

  /// Application names in corpus order (for the paper corpus: the figure
  /// order of the paper).
  std::vector<std::string> application_names() const;

 protected:
  std::vector<Application> apps_;
};

/// The paper's benchmark corpus, built once per process (IR emission +
/// verification happen at first access).
class Suite : public Corpus {
 public:
  static const Suite& instance();

 private:
  Suite();
};

}  // namespace pnp::workloads
