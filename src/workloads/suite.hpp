#pragma once

/// \file suite.hpp
/// The paper's benchmark corpus (§III-C, §IV): 30 applications with 68
/// OpenMP parallel regions — 24 PolyBench kernels plus the proxy-/mini-apps
/// RSBench, XSBench, miniFE, Quicksilver, miniAMR, and LULESH.
///
/// Every region is described by a KernelDescriptor (see sim/kernel.hpp)
/// from which both its outlined IR (workloads/irgen.hpp) and its simulated
/// runtime behaviour derive. Descriptor values are set per kernel family:
/// dense BLAS-3 compute kernels, bandwidth-bound stencils and BLAS-2,
/// triangular/factorization kernels with ramp imbalance, Monte Carlo
/// lookup kernels with branch divergence, and the proxy apps' mixed
/// regions (including LULESH's tiny boundary-condition kernel that drives
/// the paper's §I motivating example).

#include <string>
#include <vector>

#include "ir/module.hpp"
#include "sim/kernel.hpp"

namespace pnp::workloads {

/// One OpenMP region: descriptor + the outlined function in the module.
struct Region {
  sim::KernelDescriptor desc;
  std::string function;  ///< "<app>.<region>.omp_outlined"
};

/// One application: its IR module and regions.
struct Application {
  std::string name;
  ir::Module module;
  std::vector<Region> regions;
};

/// The full benchmark corpus, built once per process (IR emission +
/// verification happen at first access).
class Suite {
 public:
  static const Suite& instance();

  const std::vector<Application>& applications() const { return apps_; }

  std::size_t application_count() const { return apps_.size(); }
  std::size_t total_regions() const;

  /// All regions in application order, each paired with its application.
  struct RegionRef {
    const Application* app;
    const Region* region;
  };
  std::vector<RegionRef> all_regions() const;

  const Application* find(const std::string& name) const;

  /// Application names in the figure order of the paper.
  std::vector<std::string> application_names() const;

 private:
  Suite();
  std::vector<Application> apps_;
};

}  // namespace pnp::workloads
