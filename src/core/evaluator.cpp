#include "core/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace pnp::core {

namespace {

/// Relative tolerance for "the chosen config ties the oracle".
constexpr double kOracleTieRtol = 1e-9;

}  // namespace

SplitMetrics split_metrics_over(std::span<const double> chosen,
                                std::span<const double> dflt,
                                std::span<const double> best) {
  SplitMetrics m;
  m.queries = static_cast<int>(chosen.size());
  if (chosen.empty()) return m;
  std::vector<double> sp, nsp;
  sp.reserve(chosen.size());
  nsp.reserve(chosen.size());
  int ties = 0;
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    sp.push_back(speedup(dflt[i], chosen[i]));
    nsp.push_back(normalized_speedup(best[i], chosen[i]));
    if (chosen[i] <= best[i] * (1.0 + kOracleTieRtol)) ++ties;
  }
  m.geomean_speedup = geomean(sp);
  m.geomean_normalized = geomean(nsp);
  m.oracle_match = static_cast<double>(ties) / static_cast<double>(m.queries);
  return m;
}

Evaluator::Evaluator(const sim::Simulator& sim, const MeasurementDb& db)
    : sim_(sim), db_(db) {}

void Evaluator::check_split(const EvalSplit& split) const {
  PNP_CHECK_MSG(!split.train_regions.empty(),
                "split '" << split.name << "' has no training regions");
  PNP_CHECK_MSG(!split.test_regions.empty(),
                "split '" << split.name << "' has no test regions");
  std::unordered_set<int> train;
  for (int r : split.train_regions) {
    PNP_CHECK_MSG(r >= 0 && r < db_.num_regions(),
                  "train region " << r << " out of range");
    PNP_CHECK_MSG(train.insert(r).second, "train region " << r
                                          << " duplicated in split '"
                                          << split.name << "'");
  }
  std::unordered_set<int> test;
  for (int r : split.test_regions) {
    PNP_CHECK_MSG(r >= 0 && r < db_.num_regions(),
                  "test region " << r << " out of range");
    PNP_CHECK_MSG(test.insert(r).second, "test region " << r
                                         << " duplicated in split '"
                                         << split.name << "'");
    PNP_CHECK_MSG(!train.count(r), "region " << r << " is in both train and "
                                             << "test of split '" << split.name
                                             << "'");
  }
  std::unordered_set<int> caps;
  for (int k : split.train_cap_indices) {
    PNP_CHECK_MSG(k >= 0 && k < db_.num_caps(),
                  "train cap index " << k << " out of range");
    PNP_CHECK_MSG(caps.insert(k).second, "train cap index "
                                         << k << " duplicated in split '"
                                         << split.name << "'");
  }
  if (!split.train_cap_indices.empty())
    PNP_CHECK_MSG(static_cast<int>(caps.size()) < db_.num_caps(),
                  "unseen-cap split '" << split.name << "' holds out no cap");
}

std::vector<int> Evaluator::eval_caps(const EvalSplit& split) const {
  std::vector<int> caps;
  if (split.train_cap_indices.empty()) {
    for (int k = 0; k < db_.num_caps(); ++k) caps.push_back(k);
    return caps;
  }
  std::unordered_set<int> seen(split.train_cap_indices.begin(),
                               split.train_cap_indices.end());
  for (int k = 0; k < db_.num_caps(); ++k)
    if (!seen.count(k)) caps.push_back(k);
  return caps;
}

PnpTuner Evaluator::train(const EvalSplit& split,
                          const EvaluatorOptions& opt) const {
  check_split(split);
  PnpOptions pnp = opt.pnp;
  pnp.seed = hash_combine(opt.pnp.seed, fnv1a(split.name));
  if (!split.train_cap_indices.empty()) {
    // Paper §IV-B: behaviour at unobserved constraints needs the scalar
    // cap feature plus the profiled counters.
    pnp.train_cap_indices = split.train_cap_indices;
    pnp.cap_onehot = false;
    pnp.use_counters = true;
  }
  PnpTuner tuner(db_, pnp);
  tuner.train_power_scenario(split.train_regions);
  return tuner;
}

std::vector<Evaluator::Query> Evaluator::queries(const EvalSplit& split) const {
  check_split(split);
  const auto caps = eval_caps(split);
  std::vector<Query> out;
  out.reserve(split.test_regions.size() * caps.size());
  for (int r : split.test_regions)
    for (int k : caps) out.push_back(Query{r, k});
  return out;
}

SplitResult Evaluator::score(const EvalSplit& split,
                             std::span<const sim::OmpConfig> configs) const {
  const auto qs = queries(split);
  PNP_CHECK_MSG(configs.size() == qs.size(),
                "score() got " << configs.size() << " configs for "
                               << qs.size() << " queries");
  const auto& cap_w = db_.space().power_caps();

  SplitResult res;
  res.name = split.name;
  res.num_train_regions = static_cast<int>(split.train_regions.size());
  res.num_test_regions = static_cast<int>(split.test_regions.size());
  res.eval_cap_indices = eval_caps(split);

  std::vector<double> chosen(qs.size()), dflt(qs.size()), best(qs.size());
  std::vector<std::string> apps(qs.size());
  std::vector<double> sp_per_query(qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto& q = qs[i];
    const auto& desc = db_.region(q.region).region->desc;
    chosen[i] = sim_.expected(desc, configs[i],
                              cap_w[static_cast<std::size_t>(q.cap_index)])
                    .seconds;
    dflt[i] = db_.at_default(q.region, q.cap_index).seconds;
    best[i] = db_.best_time(q.region, q.cap_index);
    apps[i] = desc.app;
    sp_per_query[i] = speedup(dflt[i], chosen[i]);
  }

  res.overall = split_metrics_over(chosen, dflt, best);
  for (int k : res.eval_cap_indices) {
    std::vector<double> c, d, b;
    for (std::size_t i = 0; i < qs.size(); ++i) {
      if (qs[i].cap_index != k) continue;
      c.push_back(chosen[i]);
      d.push_back(dflt[i]);
      b.push_back(best[i]);
    }
    res.per_cap.push_back(split_metrics_over(c, d, b));
  }
  res.per_app_speedup = per_app_geomean(apps, sp_per_query);
  return res;
}

Evaluator::PrecisionDelta Evaluator::precision_delta(
    const EvalSplit& split, std::span<const sim::OmpConfig> reference,
    std::span<const sim::OmpConfig> candidate) const {
  const auto qs = queries(split);
  PNP_CHECK_MSG(reference.size() == qs.size(),
                "precision_delta() got " << reference.size()
                                         << " reference configs for "
                                         << qs.size() << " queries");
  PNP_CHECK_MSG(candidate.size() == qs.size(),
                "precision_delta() got " << candidate.size()
                                         << " candidate configs for "
                                         << qs.size() << " queries");
  const auto& cap_w = db_.space().power_caps();

  PrecisionDelta d;
  d.queries = static_cast<int>(qs.size());
  std::vector<double> ref_t(qs.size()), cand_t(qs.size()), dflt(qs.size()),
      best(qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto& q = qs[i];
    const auto& desc = db_.region(q.region).region->desc;
    const double w = cap_w[static_cast<std::size_t>(q.cap_index)];
    const sim::ExecutionResult ref = sim_.expected(desc, reference[i], w);
    const sim::ExecutionResult cand = sim_.expected(desc, candidate[i], w);
    ref_t[i] = ref.seconds;
    cand_t[i] = cand.seconds;
    dflt[i] = db_.at_default(q.region, q.cap_index).seconds;
    best[i] = db_.best_time(q.region, q.cap_index);
    if (!(reference[i] == candidate[i])) ++d.flips;
    d.max_abs_dpower_w = std::max(
        d.max_abs_dpower_w, std::abs(cand.avg_power_w - ref.avg_power_w));
    d.max_abs_dtime_s =
        std::max(d.max_abs_dtime_s, std::abs(cand.seconds - ref.seconds));
  }
  if (d.queries > 0) d.flip_rate = static_cast<double>(d.flips) / d.queries;
  d.geomean_speedup_reference = split_metrics_over(ref_t, dflt, best).geomean_speedup;
  d.geomean_speedup_candidate =
      split_metrics_over(cand_t, dflt, best).geomean_speedup;
  return d;
}

SplitResult Evaluator::evaluate(const EvalSplit& split,
                                const EvaluatorOptions& opt) const {
  const PnpTuner tuner = train(split, opt);
  const auto qs = queries(split);
  const bool heldout = !split.train_cap_indices.empty();
  const auto& cap_w = db_.space().power_caps();
  std::vector<sim::OmpConfig> configs;
  configs.reserve(qs.size());
  for (const auto& q : qs) {
    configs.push_back(
        heldout ? tuner.predict_power_at(
                      q.region, cap_w[static_cast<std::size_t>(q.cap_index)])
                : tuner.predict_power(q.region, q.cap_index));
  }
  return score(split, configs);
}

EvalSplit make_app_split(
    const MeasurementDb& db, std::string name,
    const std::function<bool(const std::string&)>& is_test) {
  EvalSplit s;
  s.name = std::move(name);
  for (int r = 0; r < db.num_regions(); ++r) {
    const auto& app = db.region(r).region->desc.app;
    (is_test(app) ? s.test_regions : s.train_regions).push_back(r);
  }
  return s;
}

EvalSplit with_heldout_cap(EvalSplit split, int heldout_cap, int num_caps) {
  // With a single cap the complement is empty, which EvalSplit treats as
  // the ordinary all-caps sentinel — the opposite of holding a cap out.
  PNP_CHECK_MSG(num_caps >= 2,
                "holding out a cap requires at least two caps, got "
                    << num_caps);
  PNP_CHECK_MSG(heldout_cap >= 0 && heldout_cap < num_caps,
                "held-out cap " << heldout_cap << " out of range");
  split.train_cap_indices.clear();
  for (int k = 0; k < num_caps; ++k)
    if (k != heldout_cap) split.train_cap_indices.push_back(k);
  return split;
}

}  // namespace pnp::core
