#pragma once

/// \file pnp_tuner.hpp
/// The PnP auto-tuner (paper §III): flow-aware code graphs of OpenMP
/// regions modeled by an RGCN whose readout feeds a dense classifier that
/// predicts the best configuration — without executing the code.
///
/// Two scenarios (paper §III-D):
///  1. power-constrained: at a given package cap, predict the OpenMP
///     configuration (threads / schedule / chunk) minimizing time;
///  2. EDP: jointly predict a power cap and an OpenMP configuration
///     minimizing energy-delay product.
///
/// Variants:
///  - static (graphs only) vs dynamic (graphs + five normalized profiled
///    counters appended to the dense input, §IV-B);
///  - power-cap feature as one-hot (within-space caps) or as a normalized
///    scalar (generalizing to *unseen* caps, Figs. 4–5);
///  - transfer learning: import a GNN stage trained on another machine and
///    retrain only the dense layers (§IV-B, the 4.18× training-time win).

#include <memory>
#include <optional>
#include <vector>

#include "core/measurement_db.hpp"
#include "core/search_space.hpp"
#include "graph/builder.hpp"
#include "nn/rgcn_net.hpp"
#include "nn/trainer.hpp"

namespace pnp::serve {
class ModelState;
}

namespace pnp::core {

struct TunerArtifact;

struct PnpOptions {
  // Feature variants.
  bool use_counters = false;  ///< dynamic variant (5 profiled counters)
  bool cap_onehot = true;     ///< false → normalized scalar cap feature
  bool factored_heads = true; ///< false → one flat softmax over all configs
  /// Append hw::kNumMachineFeatures machine-conditioned inputs (normalized
  /// core count, bandwidth/compute balance, cap-range shape) to the dense
  /// block — what lets one artifact serve a whole hardware zoo
  /// (train_power_fleet, docs/HARDWARE.md).
  bool machine_features = false;

  // Model hyperparameters (paper Table II: 4 RGCN + 3 FC layers; widths
  // sized for single-core training of 60 LOOCV folds per figure).
  int emb_dim = 12;
  int rgcn_layers = 4;
  int hidden = 16;
  int dense_hidden1 = 32;
  int dense_hidden2 = 24;
  int num_bases = 0;  ///< >0 enables RGCN basis decomposition (ablation)

  // Optimization (Table II: AdamW(amsgrad) for scenario 1, Adam for EDP,
  // lr 1e-3, batch 16, cross-entropy).
  bool use_adamw = true;
  double lr = 1e-3;
  double weight_decay = 1e-2;
  nn::TrainerConfig trainer;

  /// Cap indices available during training (scenario 1); empty = all.
  /// Used by the unseen-power-constraint experiments (Figs. 4–5).
  std::vector<int> train_cap_indices;

  std::uint64_t seed = 42;
};

class PnpTuner {
 public:
  /// Builds flow graphs for every region in `db` (extract → PROGRAML).
  PnpTuner(const MeasurementDb& db, PnpOptions options);

  /// Which scenario the tuner was trained (or loaded) for.
  enum class Mode { None, Power, Edp };
  Mode mode() const { return mode_; }

  // --- Scenario 1: power-constrained tuning -------------------------------
  /// Train on the given region indices; labels are the db's best-by-time
  /// candidates per cap.
  nn::TrainReport train_power_scenario(const std::vector<int>& train_regions);

  /// Fleet variant of the power scenario (docs/HARDWARE.md): one model
  /// trained across several machines' measurement tables at once. `dbs`
  /// must start with this tuner's own db, share its regions (same
  /// RegionRef identity — one graph per region serves every machine), cap
  /// count, and search-space *shape*; machine_features must be enabled so
  /// the model can tell the machines apart. Counter statistics are refit
  /// over all dbs' training regions. The resulting artifact records every
  /// training machine's fingerprint and loads on machines outside the
  /// fleet whose space shape matches — the unseen-machine transfer split.
  nn::TrainReport train_power_fleet(
      const std::vector<const MeasurementDb*>& dbs,
      const std::vector<int>& train_regions);

  /// Fingerprints of the fleet's training machines (empty unless
  /// train_power_fleet ran or a fleet artifact was restored).
  const std::vector<std::uint64_t>& fleet_fingerprints() const {
    return fleet_fingerprints_;
  }

  /// Predict the best OpenMP configuration for `region` at `cap_index`.
  /// `cap_w_override` substitutes the cap feature value (unseen caps).
  sim::OmpConfig predict_power(int region, int cap_index) const;
  sim::OmpConfig predict_power_at(int region, double cap_w) const;

  // --- Scenario 2: EDP tuning ---------------------------------------------
  nn::TrainReport train_edp_scenario(const std::vector<int>& train_regions);

  struct JointChoice {
    int cap_index = 0;
    sim::OmpConfig cfg;
  };
  JointChoice predict_edp(int region) const;

  // --- Continual retraining -------------------------------------------------
  /// Continue training the current model on the db's *current* labels
  /// without rebuilding it: vocabulary, graph tensors, counter statistics
  /// and — crucially — the network weights are all kept, so training
  /// warm-starts from wherever the model is (a freshly trained tuner or
  /// one restored from the serving artifact). This is the feedback loop's
  /// retrain step: after observations are replayed into the MeasurementDb,
  /// best-by-time / best-by-EDP labels are rederived from the grown table
  /// and the incumbent weights are fine-tuned toward them under `cfg`
  /// (which overrides the stored trainer config for this call only).
  /// Throws pnp::Error when no scenario has been trained or restored.
  nn::TrainReport fine_tune(const std::vector<int>& train_regions,
                            const nn::TrainerConfig& cfg);

  // --- Persistence ----------------------------------------------------------
  /// Write the full trained tuner — options, vocabulary, counter stats,
  /// mode, head layout, and all net weights — as a versioned artifact
  /// (docs/SERVING.md). Throws if no scenario has been trained.
  void save(const std::string& path) const;

  /// Reload a saved tuner against a measurement db with a compatible
  /// search space. Predictions are bit-identical to the tuner that was
  /// saved. Throws pnp::Error on malformed or incompatible artifacts.
  static PnpTuner load(const MeasurementDb& db, const std::string& path);

  /// In-memory artifact round-trip — save()/load() without the file.
  /// PnpTuner is move-only (it owns the net), so this is how callers stamp
  /// out several independent tuners from one training run (e.g. an f64
  /// reference and an f32 fast tier served side by side).
  TunerArtifact to_artifact() const;
  static PnpTuner from_artifact(const MeasurementDb& db,
                                const TunerArtifact& art);

  /// Preferred serving precision, persisted in the artifact (missing key →
  /// f64, so artifacts from before the f32 tier load unchanged). Serving
  /// layers may override per engine; training is always f64.
  nn::Precision serve_precision() const { return serve_precision_; }
  void set_serve_precision(nn::Precision p) { serve_precision_ = p; }

  /// The training vocabulary (valid after train_* or load()).
  const graph::Vocabulary& vocab() const { return vocab_; }

  // --- Transfer learning ----------------------------------------------------
  /// GNN-stage weights of the trained model.
  StateDict state() const;
  /// Load a (possibly cross-machine) state before training; when `freeze_gnn`
  /// is set only dense layers train and encode() results are cached.
  void import_gnn(const StateDict& sd, bool freeze_gnn);

  /// The trained network (valid after train_*).
  const nn::RgcnNet& net() const;

  const graph::FlowGraph& region_graph(int region) const;
  const MeasurementDb& db() const { return db_; }

 private:
  // The serving layer's immutable model wrapper reuses the tuner's private
  // caches and decode helpers without widening the public API.
  friend class pnp::serve::ModelState;

  /// make_extra into a caller-owned buffer (no allocation once the
  /// buffer's capacity is warm) — the serving fast path.
  void fill_extra(int region, std::optional<int> cap_index,
                  std::optional<double> cap_w, std::vector<double>& x) const;
  /// fill_extra into a pre-sized span of exactly extra_feature_count(mode)
  /// doubles — the arena-backed path (no resize, no allocation, ever).
  void fill_extra_into(int region, std::optional<int> cap_index,
                       std::optional<double> cap_w, std::span<double> x) const;
  std::vector<double> make_extra(int region, std::optional<int> cap_index,
                                 std::optional<double> cap_w) const;
  int extra_feature_count(Mode mode) const;
  /// Classifier head layout for a mode under this db's search space.
  std::vector<int> head_layout(Mode mode) const;
  /// Restore trained state from a loaded artifact (load() helper).
  void restore(const TunerArtifact& art);
  std::vector<int> power_labels(int region, int cap) const;
  /// power_labels against an arbitrary fleet db (labels are computed in
  /// that machine's own space — same class *shape*, different values).
  std::vector<int> power_labels_db(const MeasurementDb& db, int region,
                                   int cap) const;
  /// Power-scenario extra block for a fleet db: cap feature from the db's
  /// own space, counters from its table, `mfeats` its machine features.
  std::vector<double> fleet_extra(const MeasurementDb& db,
                                  std::span<const double> mfeats, int region,
                                  int cap) const;
  std::vector<int> edp_labels(int region) const;
  sim::OmpConfig decode_config(std::span<const int> preds, int base) const;
  /// Constraint-aware decode straight from the classifier logits: factored
  /// heads go through core::search_* (per-head-argmax fast path, beam on
  /// constraint violation), the dense head through a validity-filtered
  /// argmax scan. `beam_width` <= 0 = full width (exact); serving layers
  /// pass their configured width. On constraint-free spaces both decodes
  /// are bit-identical to the historic independent/flat argmax.
  sim::OmpConfig decode_power_logits(std::span<const double> logits,
                                     double cap_w, int beam_width) const;
  JointChoice decode_edp_logits(std::span<const double> logits,
                                int beam_width) const;
  void build_model(Mode mode, const std::vector<int>& train_regions);
  nn::TrainReport run_training(const std::vector<nn::TrainSample>& samples);

  const MeasurementDb& db_;
  PnpOptions opt_;
  std::vector<graph::FlowGraph> graphs_;           // one per region
  graph::Vocabulary vocab_;                        // from training graphs
  std::vector<graph::GraphTensors> tensors_;       // rebuilt per training run
  std::unique_ptr<nn::RgcnNet> net_;
  Mode mode_ = Mode::None;
  nn::Precision serve_precision_ = nn::Precision::f64;

  // Counter normalization (fit on training regions).
  std::vector<double> counter_mean_, counter_std_;

  // Machine-conditioned features of db_'s machine (always computed; used
  // only when opt_.machine_features) and, after train_power_fleet or a
  // fleet restore, the training machines' fingerprints.
  std::vector<double> machine_feats_;
  std::vector<std::uint64_t> fleet_fingerprints_;

  // Pending transfer-learning import (applied at build_model time).
  std::optional<StateDict> pending_gnn_;
  bool pending_freeze_ = false;
};

}  // namespace pnp::core
