#include "core/measurement_db.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pnp::core {

MeasurementDb::MeasurementDb(
    const sim::Simulator& sim, const SearchSpace& space,
    const std::vector<workloads::Corpus::RegionRef>& regions)
    : space_(space), machine_(sim.machine()), regions_(regions) {
  per_cap_ = space_.num_candidates_per_cap();
  const std::size_t total = regions_.size() *
                            static_cast<std::size_t>(num_caps()) *
                            static_cast<std::size_t>(per_cap_);
  results_.reserve(total);
  for (const auto& rr : regions_) {
    for (double cap : space_.power_caps()) {
      for (int c = 0; c < per_cap_; ++c) {
        results_.push_back(
            sim.expected(rr.region->desc, space_.candidate(c), cap));
      }
    }
  }
}

std::size_t MeasurementDb::slot(int region, int cap, int candidate) const {
  PNP_CHECK(region >= 0 && region < num_regions());
  PNP_CHECK(cap >= 0 && cap < num_caps());
  PNP_CHECK(candidate >= 0 && candidate < per_cap_);
  return grid_slot(static_cast<std::size_t>(region),
                   static_cast<std::size_t>(num_caps()),
                   static_cast<std::size_t>(per_cap_),
                   static_cast<std::size_t>(cap),
                   static_cast<std::size_t>(candidate));
}

void MeasurementDb::apply_observation(int region, int cap, int candidate,
                                      double seconds, double joules) {
  PNP_CHECK_MSG(std::isfinite(seconds) && seconds > 0.0,
                "observation seconds must be finite and > 0, got " << seconds);
  PNP_CHECK_MSG(std::isfinite(joules) && joules > 0.0,
                "observation joules must be finite and > 0, got " << joules);
  sim::ExecutionResult& cell = results_[slot(region, cap, candidate)];
  cell.seconds = seconds;
  cell.joules = joules;
  cell.avg_power_w = joules / seconds;
  // counters + frequency_ghz intentionally untouched (see header).
}

const sim::ExecutionResult& MeasurementDb::at(int region, int cap,
                                              int candidate) const {
  return results_[slot(region, cap, candidate)];
}

const sim::ExecutionResult& MeasurementDb::at_default(int region, int cap) const {
  return at(region, cap, space_.num_omp_configs());
}

int MeasurementDb::best_candidate_by_time(int region, int cap) const {
  // The oracle respects the constraint layer: invalid candidates are not
  // runnable, so they can be neither the answer nor a training label. The
  // default candidate is always valid, so a best always exists. On an
  // unconstrained space (Table I) every candidate passes and this is the
  // historic lowest-index-tie scan unchanged.
  const double cap_w = space_.power_caps()[static_cast<std::size_t>(cap)];
  int best = -1;
  double best_t = 0.0;
  for (int c = 0; c < per_cap_; ++c) {
    if (!space_.is_valid(space_.candidate(c), cap_w)) continue;
    const double t = at(region, cap, c).seconds;
    if (best < 0 || t < best_t) {
      best_t = t;
      best = c;
    }
  }
  PNP_CHECK(best >= 0);
  return best;
}

double MeasurementDb::best_time(int region, int cap) const {
  return at(region, cap, best_candidate_by_time(region, cap)).seconds;
}

MeasurementDb::JointBest MeasurementDb::best_by_edp(int region) const {
  JointBest jb;
  bool found = false;
  for (int k = 0; k < num_caps(); ++k) {
    const double cap_w = space_.power_caps()[static_cast<std::size_t>(k)];
    for (int c = 0; c < per_cap_; ++c) {
      if (!space_.is_valid(space_.candidate(c), cap_w)) continue;
      const double e = at(region, k, c).edp();
      if (!found || e < jb.edp) {
        jb.edp = e;
        jb.cap_index = k;
        jb.candidate = c;
        found = true;
      }
    }
  }
  PNP_CHECK(found);
  return jb;
}

int MeasurementDb::find_region(const std::string& app,
                               const std::string& region) const {
  for (int r = 0; r < num_regions(); ++r) {
    const auto& d = regions_[static_cast<std::size_t>(r)].region->desc;
    if (d.app == app && d.region == region) return r;
  }
  return -1;
}

}  // namespace pnp::core
