#pragma once

/// \file loocv.hpp
/// Experiment drivers reproducing the paper's evaluation protocol
/// (§IV-B/C): leave-one-out cross-validation over applications — each fold
/// trains the PnP tuner on 29 applications' regions and predicts for the
/// held-out application's regions — against the oracle (exhaustive
/// expected-time sweep), the default configuration, BLISS, and the
/// OpenTuner-like baseline.
///
/// Drivers:
///  - run_power_experiment      → Figs. 2 & 3 (per-cap tuning)
///  - run_unseen_cap_experiment → Figs. 4 & 5 (held-out power constraints)
///  - run_edp_experiment        → Figs. 6 & 7 (joint power+config EDP)
///  - run_transfer_experiment   → §IV-B transfer-learning timing (4.18×)

#include <map>
#include <string>
#include <vector>

#include "core/baselines.hpp"
#include "core/measurement_db.hpp"
#include "core/pnp_tuner.hpp"

namespace pnp::core {

/// Canonical tuner display names used as keys in result maps.
inline constexpr const char* kPnpStatic = "PnP (static)";
inline constexpr const char* kPnpDynamic = "PnP (dynamic)";
inline constexpr const char* kBliss = "BLISS";
inline constexpr const char* kOpenTuner = "OpenTuner";

struct ExperimentOptions {
  PnpOptions pnp;               ///< base (static-variant) tuner options
  BaselineOptions baselines;
  bool run_pnp_static = true;
  bool run_pnp_dynamic = true;  ///< also run the +counters variant
  bool run_baselines = true;
  /// Restrict to the first N applications (0 = all) — used by tests to
  /// keep integration runs fast.
  int max_apps = 0;
  std::uint64_t seed = 7;
};

/// One tuner's choice for one (region, cap) cell.
struct S1Cell {
  sim::OmpConfig cfg;
  double seconds = 0.0;  ///< noiseless expected time of the chosen config
  int executions = 0;    ///< sampling executions spent (0 for PnP/oracle)
};

struct Scenario1Result {
  std::vector<std::string> apps;     ///< application per region
  std::vector<std::string> regions;  ///< qualified region names
  std::vector<double> caps;          ///< the four power caps (watts)
  /// tuner name → [region][cap] choice.
  std::map<std::string, std::vector<std::vector<S1Cell>>> tuners;
  std::vector<std::vector<double>> oracle_seconds;   ///< [region][cap]
  std::vector<std::vector<double>> default_seconds;  ///< [region][cap]
};

Scenario1Result run_power_experiment(const sim::Simulator& sim,
                                     const MeasurementDb& db,
                                     const ExperimentOptions& opt);

struct UnseenCapResult {
  std::vector<std::string> apps;
  std::vector<std::string> regions;
  std::vector<int> heldout_cap_indices;  ///< typically {lowest, highest}
  std::vector<double> caps;              ///< all caps (watts)
  /// [heldout][region] → PnP choice (dynamic variant, scalar cap feature).
  std::vector<std::vector<S1Cell>> pnp;
  std::vector<std::vector<double>> oracle_seconds;   ///< [heldout][region]
  std::vector<std::vector<double>> default_seconds;  ///< [heldout][region]
};

UnseenCapResult run_unseen_cap_experiment(const sim::Simulator& sim,
                                          const MeasurementDb& db,
                                          const ExperimentOptions& opt);

/// One tuner's joint (cap, config) choice for one region.
struct S2Cell {
  int cap_index = 0;
  sim::OmpConfig cfg;
  double seconds = 0.0;
  double joules = 0.0;
  int executions = 0;
};

struct Scenario2Result {
  std::vector<std::string> apps;
  std::vector<std::string> regions;
  std::vector<double> caps;
  std::map<std::string, std::vector<S2Cell>> tuners;  ///< name → [region]
  std::vector<double> default_seconds;  ///< default config at TDP
  std::vector<double> default_joules;
  std::vector<double> oracle_edp;       ///< best achievable EDP
};

Scenario2Result run_edp_experiment(const sim::Simulator& sim,
                                   const MeasurementDb& db,
                                   const ExperimentOptions& opt);

struct TransferReport {
  double source_train_seconds = 0.0;   ///< full training on source machine
  double full_target_seconds = 0.0;    ///< training from scratch on target
  double transfer_target_seconds = 0.0;///< dense-only retraining on target
  double speedup = 0.0;                ///< full_target / transfer_target
  double full_accuracy = 0.0;          ///< train-set exact-match, from-scratch
  double transfer_accuracy = 0.0;      ///< train-set exact-match, transferred
  std::size_t full_trainable_weights = 0;
  std::size_t transfer_trainable_weights = 0;
};

/// Train scenario-1 models on the full suite of `src`, then on `dst` both
/// from scratch and with the imported frozen GNN (paper §IV-B).
TransferReport run_transfer_experiment(const MeasurementDb& src_db,
                                       const MeasurementDb& dst_db,
                                       const ExperimentOptions& opt);

/// Region indices of `db` grouped by application (preserving suite order).
std::vector<std::pair<std::string, std::vector<int>>> regions_by_app(
    const MeasurementDb& db);

}  // namespace pnp::core
