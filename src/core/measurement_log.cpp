#include "core/measurement_log.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "common/error.hpp"
#include "common/wire.hpp"
#include "core/measurement_db.hpp"

namespace pnp::core {

namespace {

constexpr char kMagic[] = "PNPMLOG1";
constexpr std::size_t kMagicLen = 8;
/// Payload of one record: u32 + f64 + u32 + u8 + u32 + f64 + f64.
constexpr std::size_t kRecordBytes = 37;
/// Hard ceiling on a record's length claim — far above any record this
/// version writes, far below anything that could make the reader allocate
/// unboundedly on a hostile length field.
constexpr std::uint32_t kMaxRecordBytes = 4096;

void check_positive_finite(double v, const char* what) {
  PNP_CHECK_MSG(std::isfinite(v) && v > 0.0,
                "measurement record: " << what << " must be finite and > 0, got "
                                       << v);
}

std::string encode_record(const MeasurementRecord& rec) {
  std::string out;
  wire::put_u32(out, static_cast<std::uint32_t>(rec.region));
  wire::put_f64(out, rec.cap_w);
  wire::put_u32(out, static_cast<std::uint32_t>(rec.config.threads));
  wire::put_u8(out, static_cast<std::uint8_t>(rec.config.schedule));
  wire::put_u32(out, static_cast<std::uint32_t>(rec.config.chunk));
  wire::put_f64(out, rec.seconds);
  wire::put_f64(out, rec.joules);
  return out;
}

/// Decode one payload, rejecting narrowing: the wire carries u32s, the db
/// indexes with ints, and a value above INT_MAX must die here — not wrap
/// negative in a cast and wander into slot arithmetic.
MeasurementRecord decode_record(std::string_view payload) {
  wire::Reader r(payload);
  MeasurementRecord rec;
  const std::uint32_t region = r.u32();
  PNP_CHECK_MSG(region <= static_cast<std::uint32_t>(
                              std::numeric_limits<int>::max()),
                "measurement record: region " << region << " overflows int");
  rec.region = static_cast<int>(region);
  rec.cap_w = r.f64();
  const std::uint32_t threads = r.u32();
  PNP_CHECK_MSG(threads >= 1 &&
                    threads <= static_cast<std::uint32_t>(
                                   std::numeric_limits<int>::max()),
                "measurement record: thread count " << threads
                                                    << " out of range");
  rec.config.threads = static_cast<int>(threads);
  const std::uint8_t sched = r.u8();
  PNP_CHECK_MSG(sched < static_cast<std::uint8_t>(sim::kNumSchedules),
                "measurement record: bad schedule byte "
                    << static_cast<int>(sched));
  rec.config.schedule = static_cast<sim::Schedule>(sched);
  const std::uint32_t chunk = r.u32();
  PNP_CHECK_MSG(chunk <= static_cast<std::uint32_t>(
                             std::numeric_limits<int>::max()),
                "measurement record: chunk " << chunk << " overflows int");
  rec.config.chunk = static_cast<int>(chunk);
  rec.seconds = r.f64();
  rec.joules = r.f64();
  r.expect_done("measurement record");
  validate_measurement(rec);
  return rec;
}

}  // namespace

void validate_measurement(const MeasurementRecord& rec) {
  PNP_CHECK_MSG(rec.region >= 0,
                "measurement record: negative region " << rec.region);
  PNP_CHECK_MSG(rec.config.threads >= 1, "measurement record: thread count "
                                             << rec.config.threads
                                             << " out of range");
  PNP_CHECK_MSG(rec.config.chunk >= 0,
                "measurement record: negative chunk " << rec.config.chunk);
  const auto sched = static_cast<int>(rec.config.schedule);
  PNP_CHECK_MSG(sched >= 0 && sched < sim::kNumSchedules,
                "measurement record: bad schedule " << sched);
  check_positive_finite(rec.cap_w, "cap_w");
  check_positive_finite(rec.seconds, "seconds");
  check_positive_finite(rec.joules, "joules");
}

GridCell locate_observation(const MeasurementDb& db,
                            const MeasurementRecord& rec) {
  validate_measurement(rec);
  GridCell cell;
  PNP_CHECK_MSG(rec.region >= 0 && rec.region < db.num_regions(),
                "observation names region " << rec.region << ", db has "
                                            << db.num_regions());
  cell.region = rec.region;
  cell.cap = db.space().cap_index(rec.cap_w);  // throws on off-grid caps
  cell.candidate = db.space().omp_index(rec.config);
  if (cell.candidate < 0) {
    PNP_CHECK_MSG(rec.config == db.space().default_config(),
                  "observation config " << rec.config.to_string()
                                        << " is not in the search space");
    cell.candidate = db.space().num_omp_configs();
  }
  return cell;
}

std::size_t replay_observations(MeasurementDb& db,
                                const std::vector<MeasurementRecord>& records,
                                std::size_t from) {
  PNP_CHECK_MSG(from <= records.size(), "replay offset " << from
                                                         << " past the log's "
                                                         << records.size()
                                                         << " record(s)");
  // Locate (and so validate) everything first: one bad record aborts the
  // whole batch before any cell is touched.
  std::vector<GridCell> cells;
  cells.reserve(records.size() - from);
  for (std::size_t i = from; i < records.size(); ++i)
    cells.push_back(locate_observation(db, records[i]));
  for (std::size_t i = from; i < records.size(); ++i) {
    const GridCell& c = cells[i - from];
    db.apply_observation(c.region, c.cap, c.candidate, records[i].seconds,
                         records[i].joules);
  }
  return cells.size();
}

MeasurementLog::MeasurementLog(const std::string& path) : path_(path) {
  std::ifstream probe(path_, std::ios::binary);
  if (probe.is_open()) {
    probe.close();
    // Existing file: validate it end to end so a torn or poisoned log is
    // rejected before any new observation is acknowledged on top of it.
    count_ = read_all(path_).size();
    return;
  }
  std::ofstream os(path_, std::ios::binary);
  PNP_CHECK_MSG(os.is_open(), "cannot create measurement log '" << path_
                                                                << "'");
  os.write(kMagic, static_cast<std::streamsize>(kMagicLen));
  os.flush();
  PNP_CHECK_MSG(os.good(), "cannot write measurement log magic to '"
                               << path_ << "'");
}

std::uint64_t MeasurementLog::append(const MeasurementRecord& rec) {
  validate_measurement(rec);
  std::string frame;
  const std::string payload = encode_record(rec);
  wire::put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame += payload;

  std::lock_guard<std::mutex> lk(mu_);
  PNP_CHECK_MSG(!failed_, "measurement log '"
                              << path_
                              << "' is failed; refusing further appends");
  std::ofstream os(path_, std::ios::binary | std::ios::app);
  if (!os.is_open()) {
    failed_ = true;
    throw Error("cannot open measurement log '" + path_ + "' for append");
  }
  // One write + flush per record: the record is fully on its way to disk
  // before the caller (the server's observe handler) acknowledges it.
  os.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  os.flush();
  if (!os.good()) {
    failed_ = true;
    throw Error("measurement log '" + path_ + "' append failed");
  }
  return ++count_;
}

std::uint64_t MeasurementLog::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return count_;
}

std::vector<MeasurementRecord> MeasurementLog::read_all(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PNP_CHECK_MSG(is.is_open(), "cannot open measurement log '" << path << "'");
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  PNP_CHECK_MSG(is.good() || is.eof(),
                "reading measurement log '" << path << "' failed");

  wire::Reader r(bytes);
  PNP_CHECK_MSG(r.remaining() >= kMagicLen,
                "measurement log '" << path << "': missing magic");
  PNP_CHECK_MSG(r.bytes(kMagicLen) == std::string_view(kMagic, kMagicLen),
                "measurement log '" << path
                                    << "': bad magic (not a PNPMLOG1 file)");
  std::vector<MeasurementRecord> out;
  while (!r.done()) {
    const std::uint32_t len = r.u32();
    PNP_CHECK_MSG(len >= kRecordBytes && len <= kMaxRecordBytes,
                  "measurement log '" << path << "': record length " << len
                                      << " outside [" << kRecordBytes << ", "
                                      << kMaxRecordBytes << "]");
    // Reader::bytes bounds-checks: a length claim past EOF (a torn tail)
    // throws here instead of yielding a short record.
    out.push_back(decode_record(r.bytes(len)));
  }
  return out;
}

}  // namespace pnp::core
