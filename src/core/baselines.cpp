#include "core/baselines.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pnp::core {

namespace {

/// Candidate universe for one tuning task: either the 127 per-cap
/// candidates at a fixed cap, or the full 508-point joint space.
struct Universe {
  const SearchSpace* space = nullptr;
  bool joint = false;
  int fixed_cap_index = 0;

  int size() const {
    return joint ? space->joint_size() : space->num_candidates_per_cap();
  }

  SearchSpace::JointPoint point(int idx) const {
    if (joint) return space->joint_point(idx);
    SearchSpace::JointPoint p;
    p.cap_index = fixed_cap_index;
    p.is_default = (idx == space->num_omp_configs());
    p.cfg = space->candidate(idx);
    return p;
  }
};

/// Objective evaluation through the noisy simulator. `draw` increments per
/// evaluation so repeats are independent samples.
struct Evaluator {
  const sim::Simulator* sim;
  const sim::KernelDescriptor* k;
  const Universe* uni;
  bool edp_objective = false;
  std::uint64_t base_draw = 0;
  int count = 0;

  double operator()(int idx) {
    const auto p = uni->point(idx);
    const double cap =
        uni->space->power_caps()[static_cast<std::size_t>(p.cap_index)];
    const auto r =
        sim->measure(*k, p.cfg, cap, base_draw + static_cast<std::uint64_t>(count));
    ++count;
    return edp_objective ? r.edp() : r.seconds;
  }
};

/// Feature vector for surrogate models: log2 threads, schedule one-hot,
/// log2 effective chunk, normalized cap.
std::array<double, 6> features(const SearchSpace& s,
                               const SearchSpace::JointPoint& p) {
  const double lt = std::log2(static_cast<double>(p.cfg.threads));
  const double chunk_eff = p.cfg.chunk == 0 ? 1024.0 : p.cfg.chunk;
  const double lc = std::log2(chunk_eff);
  const double cap =
      s.power_caps()[static_cast<std::size_t>(p.cap_index)] / s.tdp();
  std::array<double, 6> x{};
  x[0] = lt / 6.0;
  x[1] = p.cfg.schedule == sim::Schedule::Static ? 1.0 : 0.0;
  x[2] = p.cfg.schedule == sim::Schedule::Dynamic ? 1.0 : 0.0;
  x[3] = p.cfg.schedule == sim::Schedule::Guided ? 1.0 : 0.0;
  x[4] = lc / 10.0;
  x[5] = cap;
  return x;
}

double sqdist(const std::array<double, 6>& a, const std::array<double, 6>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// Solve A x = b for a small dense symmetric positive-definite system via
/// Gaussian elimination with partial pivoting.
std::vector<double> solve_dense(std::vector<std::vector<double>> a,
                                std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r][col]) > std::abs(a[piv][col])) piv = r;
    std::swap(a[col], a[piv]);
    std::swap(b[col], b[piv]);
    const double d = a[col][col];
    PNP_CHECK_MSG(std::abs(d) > 1e-12, "singular system in surrogate fit");
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / d;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= a[ri][c] * x[c];
    x[ri] = s / a[ri][ri];
  }
  return x;
}

/// The BLISS-style surrogate pool. All models consume (feature, log-time)
/// observations and score unobserved candidates; lower is better.
class SurrogatePool {
 public:
  void observe(const std::array<double, 6>& x, double y) {
    xs_.push_back(x);
    ys_.push_back(std::log(std::max(y, 1e-12)));
  }

  /// model 0: ridge regression on an 8-term design.
  /// model 1: 3-NN mean.
  /// model 2: RBF-GP lower-confidence bound.
  double score(int model, const std::array<double, 6>& x) const {
    switch (model) {
      case 0: return ridge_predict(x);
      case 1: return knn_predict(x);
      default: return gp_lcb(x);
    }
  }

  static constexpr int kNumModels = 3;

 private:
  static std::array<double, 8> design(const std::array<double, 6>& x) {
    return {1.0, x[0], x[0] * x[0], x[1], x[2], x[4], x[4] * x[4], x[0] * x[4]};
  }

  double ridge_predict(const std::array<double, 6>& x) const {
    const std::size_t m = 8;
    std::vector<std::vector<double>> ata(m, std::vector<double>(m, 0.0));
    std::vector<double> atb(m, 0.0);
    for (std::size_t i = 0; i < xs_.size(); ++i) {
      const auto phi = design(xs_[i]);
      for (std::size_t r = 0; r < m; ++r) {
        atb[r] += phi[r] * ys_[i];
        for (std::size_t c = 0; c < m; ++c) ata[r][c] += phi[r] * phi[c];
      }
    }
    for (std::size_t r = 0; r < m; ++r) ata[r][r] += 1e-3;  // ridge
    const auto w = solve_dense(std::move(ata), std::move(atb));
    const auto phi = design(x);
    double y = 0.0;
    for (std::size_t r = 0; r < m; ++r) y += w[r] * phi[r];
    return y;
  }

  double knn_predict(const std::array<double, 6>& x) const {
    std::vector<std::pair<double, double>> dy;  // (dist, y)
    dy.reserve(xs_.size());
    for (std::size_t i = 0; i < xs_.size(); ++i)
      dy.emplace_back(sqdist(x, xs_[i]), ys_[i]);
    std::sort(dy.begin(), dy.end());
    const std::size_t k = std::min<std::size_t>(3, dy.size());
    double s = 0.0;
    for (std::size_t i = 0; i < k; ++i) s += dy[i].second;
    return s / static_cast<double>(k);
  }

  double gp_lcb(const std::array<double, 6>& x) const {
    const std::size_t n = xs_.size();
    const double ell2 = 2.0 * 0.35 * 0.35;
    auto kern = [&](const std::array<double, 6>& a,
                    const std::array<double, 6>& b) {
      return std::exp(-sqdist(a, b) / ell2);
    };
    std::vector<std::vector<double>> K(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) K[i][j] = kern(xs_[i], xs_[j]);
      K[i][i] += 1e-3;  // noise
    }
    const auto alpha = solve_dense(K, ys_);
    double mu = 0.0, kxx = 0.0;
    std::vector<double> kx(n);
    for (std::size_t i = 0; i < n; ++i) {
      kx[i] = kern(x, xs_[i]);
      mu += kx[i] * alpha[i];
      kxx += kx[i] * kx[i];
    }
    // Cheap variance proxy: prior variance minus explained correlation.
    const double var = std::max(1e-6, 1.0 - kxx / static_cast<double>(n));
    return mu - 1.0 * std::sqrt(var);  // LCB, minimizing
  }

  std::vector<std::array<double, 6>> xs_;
  std::vector<double> ys_;
};

BaselineChoice run_bliss(const sim::Simulator& sim, const SearchSpace& space,
                         const BaselineOptions& opt,
                         const sim::KernelDescriptor& k, Universe uni,
                         bool edp_objective) {
  Evaluator eval{&sim, &k, &uni, edp_objective,
                 hash_combine(fnv1a(k.qualified_name()),
                              hash_combine(opt.seed, 0xb1155)),
                 0};
  Rng rng(hash_combine(opt.seed, fnv1a(k.qualified_name())));

  SurrogatePool pool;
  std::set<int> observed;
  int best_idx = -1;
  double best_y = 1e300;

  auto try_candidate = [&](int idx) {
    if (observed.count(idx)) return;
    observed.insert(idx);
    const double y = eval(idx);
    pool.observe(features(space, uni.point(idx)), y);
    if (y < best_y) {
      best_y = y;
      best_idx = idx;
    }
  };

  // Warm start: 5 random distinct points.
  const int warm = std::min(5, opt.bliss_samples);
  while (static_cast<int>(observed.size()) < warm)
    try_candidate(static_cast<int>(rng.uniform_index(
        static_cast<std::size_t>(uni.size()))));

  // Guided phase: rotate through the surrogate pool; each model nominates
  // the unobserved candidate it scores best, with ε-greedy exploration.
  int model = 0;
  while (static_cast<int>(observed.size()) < opt.bliss_samples) {
    int pick = -1;
    if (rng.uniform() < 0.15) {
      pick = static_cast<int>(
          rng.uniform_index(static_cast<std::size_t>(uni.size())));
    } else {
      double best_score = 1e300;
      for (int idx = 0; idx < uni.size(); ++idx) {
        if (observed.count(idx)) continue;
        const double s = pool.score(model, features(space, uni.point(idx)));
        if (s < best_score) {
          best_score = s;
          pick = idx;
        }
      }
      model = (model + 1) % SurrogatePool::kNumModels;
    }
    if (pick < 0) break;
    try_candidate(pick);
  }

  PNP_CHECK(best_idx >= 0);
  const auto p = uni.point(best_idx);
  return BaselineChoice{p.cap_index, p.cfg, eval.count};
}

/// One OpenTuner-style search technique: proposes the next candidate index.
struct Technique {
  enum Kind { Random, HillClimb, Pattern, MutateBest } kind;
  int uses = 0;
  double score_sum = 0.0;  // AUC-style credit
};

BaselineChoice run_opentuner(const sim::Simulator& sim,
                             const SearchSpace& space,
                             const BaselineOptions& opt,
                             const sim::KernelDescriptor& k, Universe uni,
                             bool edp_objective) {
  Evaluator eval{&sim, &k, &uni, edp_objective,
                 hash_combine(fnv1a(k.qualified_name()),
                              hash_combine(opt.seed, 0x07e4)),
                 0};
  Rng rng(hash_combine(opt.seed ^ 0xabcdef, fnv1a(k.qualified_name())));

  // Decompose an index into coordinate axes (threads, schedule, chunk[, cap])
  // for neighborhood moves. The default-config point is its own island.
  const int nt = space.num_thread_classes();
  const int ns = space.num_schedule_classes();
  const int nc = static_cast<int>(space.chunk_values().size());
  const int grid = space.num_omp_configs();
  const int per_cap = space.num_candidates_per_cap();

  auto to_axes = [&](int idx, std::array<int, 4>& ax) -> bool {
    const int cap = uni.joint ? idx / per_cap : uni.fixed_cap_index;
    const int rem = uni.joint ? idx % per_cap : idx;
    if (rem >= grid) return false;  // default point has no axes
    const SearchSpace::GridAxes g = space.omp_axes(rem);
    ax = {g.thread, g.sched, g.chunk, cap};
    return true;
  };
  auto from_axes = [&](const std::array<int, 4>& ax) {
    const int rem = space.omp_index_from_axes({ax[0], ax[1], ax[2]});
    return uni.joint ? ax[3] * per_cap + rem : rem;
  };
  auto clampi = [](int v, int lo, int hi) { return std::clamp(v, lo, hi); };

  std::map<int, double> seen;  // observed candidate → objective
  int best_idx = -1;
  double best_y = 1e300;
  auto evaluate = [&](int idx) -> double {
    auto it = seen.find(idx);
    if (it != seen.end()) return it->second;
    const double y = eval(idx);
    seen[idx] = y;
    if (y < best_y) {
      best_y = y;
      best_idx = idx;
    }
    return y;
  };

  std::vector<Technique> techniques = {{Technique::Random, 0, 0.0},
                                       {Technique::HillClimb, 0, 0.0},
                                       {Technique::Pattern, 0, 0.0},
                                       {Technique::MutateBest, 0, 0.0}};

  // Seed with the default configuration and one random point (OpenTuner
  // seeds from defaults too).
  evaluate(uni.joint ? (uni.size() - 1) : grid);
  evaluate(static_cast<int>(
      rng.uniform_index(static_cast<std::size_t>(uni.size()))));

  int cursor = best_idx;
  while (eval.count < opt.opentuner_evals) {
    // AUC-bandit technique selection (UCB over improvement rate).
    int t_pick = 0;
    double t_best = -1e300;
    const double total_uses = 1.0 + static_cast<double>(eval.count);
    for (std::size_t t = 0; t < techniques.size(); ++t) {
      const auto& tech = techniques[t];
      const double exploit =
          tech.uses > 0 ? tech.score_sum / tech.uses : 1.0;
      const double explore =
          std::sqrt(2.0 * std::log(total_uses) / (1.0 + tech.uses));
      if (exploit + explore > t_best) {
        t_best = exploit + explore;
        t_pick = static_cast<int>(t);
      }
    }
    Technique& tech = techniques[static_cast<std::size_t>(t_pick)];
    ++tech.uses;

    const double before = best_y;
    std::array<int, 4> ax{};
    switch (tech.kind) {
      case Technique::Random:
        evaluate(static_cast<int>(
            rng.uniform_index(static_cast<std::size_t>(uni.size()))));
        break;
      case Technique::HillClimb: {
        if (!to_axes(cursor, ax)) { cursor = best_idx >= 0 ? best_idx : 0; if (!to_axes(cursor, ax)) { evaluate(static_cast<int>(rng.uniform_index(static_cast<std::size_t>(uni.size())))); break; } }
        const int axis = uni.joint ? rng.uniform_int(0, 3) : rng.uniform_int(0, 2);
        const int dir = rng.uniform() < 0.5 ? -1 : 1;
        const std::array<int, 4> hi = {nt - 1, ns - 1, nc - 1,
                                       static_cast<int>(space.power_caps().size()) - 1};
        ax[static_cast<std::size_t>(axis)] = clampi(
            ax[static_cast<std::size_t>(axis)] + dir, 0,
            hi[static_cast<std::size_t>(axis)]);
        const int idx = from_axes(ax);
        const double y = evaluate(idx);
        if (y <= seen[cursor]) cursor = idx;  // accept improving move
        break;
      }
      case Technique::Pattern: {
        if (best_idx < 0 || !to_axes(best_idx, ax)) break;
        // Probe ±1 on every axis around the incumbent, budget permitting.
        const int axes = uni.joint ? 4 : 3;
        const std::array<int, 4> hi = {nt - 1, ns - 1, nc - 1,
                                       static_cast<int>(space.power_caps().size()) - 1};
        for (int axis = 0; axis < axes && eval.count < opt.opentuner_evals;
             ++axis) {
          for (int dir : {-1, 1}) {
            auto probe = ax;
            probe[static_cast<std::size_t>(axis)] =
                clampi(probe[static_cast<std::size_t>(axis)] + dir, 0,
                       hi[static_cast<std::size_t>(axis)]);
            evaluate(from_axes(probe));
            if (eval.count >= opt.opentuner_evals) break;
          }
        }
        break;
      }
      case Technique::MutateBest: {
        if (best_idx < 0 || !to_axes(best_idx, ax)) break;
        const int axis = uni.joint ? rng.uniform_int(0, 3) : rng.uniform_int(0, 2);
        const std::array<int, 4> hi = {nt - 1, ns - 1, nc - 1,
                                       static_cast<int>(space.power_caps().size()) - 1};
        ax[static_cast<std::size_t>(axis)] = rng.uniform_int(
            0, hi[static_cast<std::size_t>(axis)]);
        evaluate(from_axes(ax));
        break;
      }
    }
    tech.score_sum += (before - best_y) > 0.0 ? 1.0 : 0.0;
  }

  PNP_CHECK(best_idx >= 0);
  const auto p = uni.point(best_idx);
  return BaselineChoice{p.cap_index, p.cfg, eval.count};
}

}  // namespace

BlissTuner::BlissTuner(const sim::Simulator& sim, const SearchSpace& space,
                       BaselineOptions opt)
    : sim_(sim), space_(space), opt_(opt) {}

BaselineChoice BlissTuner::tune_at_cap(const sim::KernelDescriptor& k,
                                       double cap_w) {
  Universe uni;
  uni.space = &space_;
  uni.joint = false;
  uni.fixed_cap_index = space_.cap_index(cap_w);
  return run_bliss(sim_, space_, opt_, k, uni, /*edp_objective=*/false);
}

BaselineChoice BlissTuner::tune_edp(const sim::KernelDescriptor& k) {
  Universe uni;
  uni.space = &space_;
  uni.joint = true;
  return run_bliss(sim_, space_, opt_, k, uni, /*edp_objective=*/true);
}

OpenTunerLike::OpenTunerLike(const sim::Simulator& sim,
                             const SearchSpace& space, BaselineOptions opt)
    : sim_(sim), space_(space), opt_(opt) {}

BaselineChoice OpenTunerLike::tune_at_cap(const sim::KernelDescriptor& k,
                                          double cap_w) {
  Universe uni;
  uni.space = &space_;
  uni.joint = false;
  uni.fixed_cap_index = space_.cap_index(cap_w);
  return run_opentuner(sim_, space_, opt_, k, uni, /*edp_objective=*/false);
}

BaselineChoice OpenTunerLike::tune_edp(const sim::KernelDescriptor& k) {
  Universe uni;
  uni.space = &space_;
  uni.joint = true;
  return run_opentuner(sim_, space_, opt_, k, uni, /*edp_objective=*/true);
}

}  // namespace pnp::core
