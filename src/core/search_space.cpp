#include "core/search_space.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pnp::core {

SearchSpace SearchSpace::for_machine(const hw::MachineModel& m) {
  SearchSpace s;
  s.schedules_ = {sim::Schedule::Static, sim::Schedule::Dynamic,
                  sim::Schedule::Guided};
  s.chunks_ = {1, 8, 32, 64, 128, 256, 512};
  if (m.name == "skylake") {
    s.threads_ = {1, 4, 8, 16, 32, 64};
    s.caps_ = {75.0, 100.0, 120.0, 150.0};
  } else if (m.name == "haswell") {
    s.threads_ = {1, 2, 4, 8, 16, 32};
    s.caps_ = {40.0, 60.0, 70.0, 85.0};
  } else {
    // Generic machine — the main path for generated machines (the
    // hardware zoo, docs/HARDWARE.md): powers of two up to max threads
    // (at most 6 thread classes including max_threads itself; exactly 6
    // for every MachineGenerator machine, whose contract guarantees
    // max_threads() >= 32 — what gives the whole fleet one classifier
    // head layout); caps spanning [min_cap, tdp] in four steps.
    int t = 1;
    while (t < m.max_threads() && s.threads_.size() < 5) {
      s.threads_.push_back(t);
      t *= 2;
    }
    s.threads_.push_back(m.max_threads());
    // Degenerate cap ranges (min_cap == tdp, or so narrow the four points
    // collide within cap_index's 1e-9 match tolerance) collapse to the
    // distinct points only — duplicate caps would make cap_index
    // ambiguous and break the per-cap label layout.
    const double lo = m.min_cap_w, hi = m.tdp_w;
    PNP_CHECK_MSG(lo <= hi && lo > 0.0,
                  "machine '" << m.name << "' has an invalid cap range ["
                              << lo << ", " << hi << "]");
    for (double cap :
         {lo, lo + (hi - lo) / 3.0, lo + 2.0 * (hi - lo) / 3.0, hi}) {
      if (s.caps_.empty() || cap - s.caps_.back() > 1e-6) s.caps_.push_back(cap);
    }
  }
  s.default_ = sim::OmpConfig{m.max_threads(), sim::Schedule::Static, 0};
  return s;
}

SearchSpace SearchSpace::extended_for_machine(const hw::MachineModel& m) {
  SearchSpace s = for_machine(m);
  // Deeper thread grid: every Table I value plus intermediate counts,
  // capped at the machine's hardware threads (which must stay on the grid
  // so the default config remains representable).
  std::vector<int> threads;
  for (int t : {1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64}) {
    if (t <= m.max_threads()) threads.push_back(t);
  }
  if (threads.empty() || threads.back() != m.max_threads())
    threads.push_back(m.max_threads());
  s.threads_ = std::move(threads);
  // Denser chunk grid (15 values + the default class).
  s.chunks_ = {1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512};
  // Realistic validity rules. The thread-per-watt slope admits the full
  // grid only at TDP; tighter caps prune the high thread counts. The
  // default config is exempt by the fallback guarantee.
  const double slope = static_cast<double>(m.max_threads()) / s.tdp();
  s.constraints_ = {
      {ConstraintRule::Kind::kMaxThreadsPerWatt, slope, 0.0},
      {ConstraintRule::Kind::kMinChunkForSchedule,
       static_cast<double>(static_cast<int>(sim::Schedule::Dynamic)), 4.0},
      {ConstraintRule::Kind::kMaxChunkThreadProduct, 4096.0, 0.0},
  };
  return s;
}

SearchSpace SearchSpace::custom(std::vector<int> threads,
                                std::vector<sim::Schedule> schedules,
                                std::vector<int> chunks,
                                std::vector<double> caps,
                                sim::OmpConfig default_cfg,
                                std::vector<ConstraintRule> constraints) {
  PNP_CHECK_MSG(!threads.empty() && !schedules.empty() && !chunks.empty() &&
                    !caps.empty(),
                "custom search space needs non-empty grids");
  PNP_CHECK_MSG(std::is_sorted(caps.begin(), caps.end()),
                "power caps must be ascending");
  PNP_CHECK_MSG(default_cfg.chunk == 0,
                "default config must use the compiler-default chunk");
  PNP_CHECK_MSG(
      std::find(threads.begin(), threads.end(), default_cfg.threads) !=
          threads.end(),
      "default config thread count must be on the thread grid");
  PNP_CHECK_MSG(std::find(schedules.begin(), schedules.end(),
                          default_cfg.schedule) != schedules.end(),
                "default config schedule must be on the schedule grid");
  for (const ConstraintRule& r : constraints) {
    const int k = static_cast<int>(r.kind);
    PNP_CHECK_MSG(k >= 0 && k < kNumConstraintKinds,
                  "unknown constraint kind " << k);
    PNP_CHECK_MSG(std::isfinite(r.a) && std::isfinite(r.b),
                  "constraint parameters must be finite");
  }
  SearchSpace s;
  s.threads_ = std::move(threads);
  s.schedules_ = std::move(schedules);
  s.chunks_ = std::move(chunks);
  s.caps_ = std::move(caps);
  s.default_ = default_cfg;
  s.constraints_ = std::move(constraints);
  return s;
}

bool SearchSpace::is_valid(const sim::OmpConfig& cfg, double cap_w) const {
  if (cfg == default_) return true;  // the fallback guarantee
  for (const ConstraintRule& r : constraints_) {
    switch (r.kind) {
      case ConstraintRule::Kind::kMaxThreads:
        if (static_cast<double>(cfg.threads) > r.a) return false;
        break;
      case ConstraintRule::Kind::kMaxThreadsPerWatt:
        if (static_cast<double>(cfg.threads) > r.a * cap_w) return false;
        break;
      case ConstraintRule::Kind::kMinChunkForSchedule:
        if (static_cast<int>(cfg.schedule) == static_cast<int>(r.a) &&
            cfg.chunk != 0 && static_cast<double>(cfg.chunk) < r.b)
          return false;
        break;
      case ConstraintRule::Kind::kMaxChunkThreadProduct:
        if (cfg.chunk != 0 &&
            static_cast<double>(cfg.threads) * static_cast<double>(cfg.chunk) >
                r.a)
          return false;
        break;
    }
  }
  return true;
}

int SearchSpace::max_valid_threads(double cap_w) const {
  double limit = static_cast<double>(threads_.back());
  for (const ConstraintRule& r : constraints_) {
    if (r.kind == ConstraintRule::Kind::kMaxThreads)
      limit = std::min(limit, r.a);
    else if (r.kind == ConstraintRule::Kind::kMaxThreadsPerWatt)
      limit = std::min(limit, r.a * cap_w);
  }
  int best = 0;  // 0 = every grid thread count is pruned at this cap
  for (int t : threads_)
    if (static_cast<double>(t) <= limit) best = std::max(best, t);
  return best;
}

int SearchSpace::joint_invalid_count() const {
  if (constraints_.empty()) return 0;
  int pruned = 0;
  for (int i = 0; i < joint_size(); ++i) {
    const JointPoint p = joint_point(i);
    if (!is_valid(p.cfg, caps_[static_cast<std::size_t>(p.cap_index)]))
      ++pruned;
  }
  return pruned;
}

int SearchSpace::num_omp_configs() const {
  return static_cast<int>(threads_.size() * schedules_.size() * chunks_.size());
}

SearchSpace::GridAxes SearchSpace::omp_axes(int index) const {
  PNP_CHECK(index >= 0 && index < num_omp_configs());
  const int nc = static_cast<int>(chunks_.size());
  const int ns = static_cast<int>(schedules_.size());
  return GridAxes{index / (nc * ns), (index / nc) % ns, index % nc};
}

int SearchSpace::omp_index_from_axes(const GridAxes& ax) const {
  const int nc = static_cast<int>(chunks_.size());
  const int ns = static_cast<int>(schedules_.size());
  PNP_CHECK(ax.thread >= 0 && ax.thread < static_cast<int>(threads_.size()));
  PNP_CHECK(ax.sched >= 0 && ax.sched < ns);
  PNP_CHECK(ax.chunk >= 0 && ax.chunk < nc);
  return (ax.thread * ns + ax.sched) * nc + ax.chunk;
}

sim::OmpConfig SearchSpace::omp_config(int index) const {
  const GridAxes ax = omp_axes(index);
  return sim::OmpConfig{threads_[static_cast<std::size_t>(ax.thread)],
                        schedules_[static_cast<std::size_t>(ax.sched)],
                        chunks_[static_cast<std::size_t>(ax.chunk)]};
}

int SearchSpace::omp_index(const sim::OmpConfig& cfg) const {
  int ti = -1, si = -1, ci = -1;
  for (std::size_t i = 0; i < threads_.size(); ++i)
    if (threads_[i] == cfg.threads) ti = static_cast<int>(i);
  for (std::size_t i = 0; i < schedules_.size(); ++i)
    if (schedules_[i] == cfg.schedule) si = static_cast<int>(i);
  for (std::size_t i = 0; i < chunks_.size(); ++i)
    if (chunks_[i] == cfg.chunk) ci = static_cast<int>(i);
  if (ti < 0 || si < 0 || ci < 0) return -1;
  return omp_index_from_axes(GridAxes{ti, si, ci});
}

sim::OmpConfig SearchSpace::candidate(int index) const {
  PNP_CHECK(index >= 0 && index < num_candidates_per_cap());
  if (index == num_omp_configs()) return default_;
  return omp_config(index);
}

SearchSpace::JointPoint SearchSpace::joint_point(int index) const {
  PNP_CHECK(index >= 0 && index < joint_size());
  const int per_cap = num_candidates_per_cap();
  JointPoint p;
  p.cap_index = index / per_cap;
  const int ci = index % per_cap;
  p.is_default = (ci == num_omp_configs());
  p.cfg = candidate(ci);
  return p;
}

int SearchSpace::thread_class(int threads) const {
  for (std::size_t i = 0; i < threads_.size(); ++i)
    if (threads_[i] == threads) return static_cast<int>(i);
  PNP_CHECK_MSG(false, "thread count " << threads << " not in search space");
  throw Error("unreachable");  // PNP_CHECK_MSG(false, …) always throws
}

int SearchSpace::chunk_class(int chunk) const {
  if (chunk == 0) return 0;
  for (std::size_t i = 0; i < chunks_.size(); ++i)
    if (chunks_[i] == chunk) return static_cast<int>(i) + 1;
  PNP_CHECK_MSG(false, "chunk " << chunk << " not in search space");
  throw Error("unreachable");
}

sim::OmpConfig SearchSpace::config_from_classes(int thread_cls, int sched_cls,
                                                int chunk_cls) const {
  PNP_CHECK(thread_cls >= 0 && thread_cls < num_thread_classes());
  PNP_CHECK(sched_cls >= 0 && sched_cls < num_schedule_classes());
  PNP_CHECK(chunk_cls >= 0 && chunk_cls < num_chunk_classes());
  sim::OmpConfig cfg;
  cfg.threads = threads_[static_cast<std::size_t>(thread_cls)];
  cfg.schedule = schedules_[static_cast<std::size_t>(sched_cls)];
  cfg.chunk = (chunk_cls == 0) ? 0 : chunks_[static_cast<std::size_t>(chunk_cls - 1)];
  return cfg;
}

int SearchSpace::cap_index(double cap_w) const {
  for (std::size_t i = 0; i < caps_.size(); ++i)
    if (std::abs(caps_[i] - cap_w) < 1e-9) return static_cast<int>(i);
  PNP_CHECK_MSG(false, "cap " << cap_w << " W not in search space");
  throw Error("unreachable");
}

}  // namespace pnp::core
