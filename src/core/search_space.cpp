#include "core/search_space.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pnp::core {

SearchSpace SearchSpace::for_machine(const hw::MachineModel& m) {
  SearchSpace s;
  s.schedules_ = {sim::Schedule::Static, sim::Schedule::Dynamic,
                  sim::Schedule::Guided};
  s.chunks_ = {1, 8, 32, 64, 128, 256, 512};
  if (m.name == "skylake") {
    s.threads_ = {1, 4, 8, 16, 32, 64};
    s.caps_ = {75.0, 100.0, 120.0, 150.0};
  } else if (m.name == "haswell") {
    s.threads_ = {1, 2, 4, 8, 16, 32};
    s.caps_ = {40.0, 60.0, 70.0, 85.0};
  } else {
    // Generic machine: powers of two up to max threads (at most 6 thread
    // classes including max_threads itself); caps spanning [min_cap, tdp]
    // in four steps.
    int t = 1;
    while (t < m.max_threads() && s.threads_.size() < 5) {
      s.threads_.push_back(t);
      t *= 2;
    }
    s.threads_.push_back(m.max_threads());
    const double lo = m.min_cap_w, hi = m.tdp_w;
    s.caps_ = {lo, lo + (hi - lo) / 3.0, lo + 2.0 * (hi - lo) / 3.0, hi};
  }
  s.default_ = sim::OmpConfig{m.max_threads(), sim::Schedule::Static, 0};
  return s;
}

int SearchSpace::num_omp_configs() const {
  return static_cast<int>(threads_.size() * schedules_.size() * chunks_.size());
}

sim::OmpConfig SearchSpace::omp_config(int index) const {
  PNP_CHECK(index >= 0 && index < num_omp_configs());
  const int nc = static_cast<int>(chunks_.size());
  const int ns = static_cast<int>(schedules_.size());
  const int ci = index % nc;
  const int si = (index / nc) % ns;
  const int ti = index / (nc * ns);
  return sim::OmpConfig{threads_[static_cast<std::size_t>(ti)],
                        schedules_[static_cast<std::size_t>(si)],
                        chunks_[static_cast<std::size_t>(ci)]};
}

int SearchSpace::omp_index(const sim::OmpConfig& cfg) const {
  int ti = -1, si = -1, ci = -1;
  for (std::size_t i = 0; i < threads_.size(); ++i)
    if (threads_[i] == cfg.threads) ti = static_cast<int>(i);
  for (std::size_t i = 0; i < schedules_.size(); ++i)
    if (schedules_[i] == cfg.schedule) si = static_cast<int>(i);
  for (std::size_t i = 0; i < chunks_.size(); ++i)
    if (chunks_[i] == cfg.chunk) ci = static_cast<int>(i);
  if (ti < 0 || si < 0 || ci < 0) return -1;
  const int nc = static_cast<int>(chunks_.size());
  const int ns = static_cast<int>(schedules_.size());
  return (ti * ns + si) * nc + ci;
}

sim::OmpConfig SearchSpace::candidate(int index) const {
  PNP_CHECK(index >= 0 && index < num_candidates_per_cap());
  if (index == num_omp_configs()) return default_;
  return omp_config(index);
}

SearchSpace::JointPoint SearchSpace::joint_point(int index) const {
  PNP_CHECK(index >= 0 && index < joint_size());
  const int per_cap = num_candidates_per_cap();
  JointPoint p;
  p.cap_index = index / per_cap;
  const int ci = index % per_cap;
  p.is_default = (ci == num_omp_configs());
  p.cfg = candidate(ci);
  return p;
}

int SearchSpace::thread_class(int threads) const {
  for (std::size_t i = 0; i < threads_.size(); ++i)
    if (threads_[i] == threads) return static_cast<int>(i);
  PNP_CHECK_MSG(false, "thread count " << threads << " not in search space");
  throw Error("unreachable");  // PNP_CHECK_MSG(false, …) always throws
}

int SearchSpace::chunk_class(int chunk) const {
  if (chunk == 0) return 0;
  for (std::size_t i = 0; i < chunks_.size(); ++i)
    if (chunks_[i] == chunk) return static_cast<int>(i) + 1;
  PNP_CHECK_MSG(false, "chunk " << chunk << " not in search space");
  throw Error("unreachable");
}

sim::OmpConfig SearchSpace::config_from_classes(int thread_cls, int sched_cls,
                                                int chunk_cls) const {
  PNP_CHECK(thread_cls >= 0 && thread_cls < num_thread_classes());
  PNP_CHECK(sched_cls >= 0 && sched_cls < num_schedule_classes());
  PNP_CHECK(chunk_cls >= 0 && chunk_cls < num_chunk_classes());
  sim::OmpConfig cfg;
  cfg.threads = threads_[static_cast<std::size_t>(thread_cls)];
  cfg.schedule = schedules_[static_cast<std::size_t>(sched_cls)];
  cfg.chunk = (chunk_cls == 0) ? 0 : chunks_[static_cast<std::size_t>(chunk_cls - 1)];
  return cfg;
}

int SearchSpace::cap_index(double cap_w) const {
  for (std::size_t i = 0; i < caps_.size(); ++i)
    if (std::abs(caps_[i] - cap_w) < 1e-9) return static_cast<int>(i);
  PNP_CHECK_MSG(false, "cap " << cap_w << " W not in search space");
  throw Error("unreachable");
}

}  // namespace pnp::core
