#pragma once

/// \file search_space.hpp
/// The tuning search space of Table I:
///
///   Power caps  : 75/100/120/150 W (Skylake), 40/60/70/85 W (Haswell)
///   Threads     : 1,4,8,16,32,64 (Skylake), 1,2,4,8,16,32 (Haswell)
///   Schedule    : static, dynamic, guided
///   Chunk sizes : 1, 8, 32, 64, 128, 256, 512
///
/// 4 × 6 × 3 × 7 = 504 regular configurations, plus the default OpenMP
/// configuration (all hardware threads, static, compiler-default chunk) at
/// each of the four caps = 508 total.
///
/// The classifier's label space additionally treats "compiler-default
/// chunk" (chunk = 0) as an eighth chunk class so the default
/// configuration is representable as a label (see DESIGN.md §2 on this
/// deliberate deviation); the oracle and the baselines stay on the paper's
/// 508-point space.
///
/// Beyond Table I the space is parameterized: `custom()` builds a space
/// over arbitrary thread/chunk grids and `extended_for_machine()` builds a
/// ≥2000-point grid with realistic validity constraints. Constraints are
/// declarative `ConstraintRule` triples (kind, a, b) so they can be
/// fingerprinted into the tuner artifact, and `is_valid()` is the single
/// constraint layer every scorer (oracle, beam search, serving decode)
/// consults. The machine's default configuration is always valid — it is
/// the guaranteed fallback when pruning empties a cap's slice.

#include <vector>

#include "hw/machine.hpp"
#include "sim/omp_config.hpp"

namespace pnp::core {

/// One declarative validity constraint. Rules are (kind, a, b) triples of
/// plain numbers — no callbacks — so a space's constraint set can be
/// serialized verbatim into the artifact fingerprint and compared on load.
struct ConstraintRule {
  enum class Kind : int {
    /// threads <= a.
    kMaxThreads = 0,
    /// threads <= a * cap_w: high thread counts are invalid under tight
    /// power caps (they would immediately throttle).
    kMaxThreadsPerWatt = 1,
    /// schedule index == int(a) and chunk != 0 implies chunk >= b:
    /// fine-grained chunks under dynamic scheduling thrash the runtime.
    kMinChunkForSchedule = 2,
    /// threads * chunk <= a (chunk != 0): oversubscribed iteration blocks.
    kMaxChunkThreadProduct = 3,
  };
  Kind kind = Kind::kMaxThreads;
  double a = 0.0;
  double b = 0.0;

  friend bool operator==(const ConstraintRule&, const ConstraintRule&) = default;
};

/// Number of rule kinds — loaders reject fingerprints outside [0, count).
inline constexpr int kNumConstraintKinds = 4;

class SearchSpace {
 public:
  /// Table I values for one of the two machines (keyed on machine name).
  static SearchSpace for_machine(const hw::MachineModel& m);

  /// Extended constraint-carrying grid for the same machine: ~12 thread
  /// classes × 3 schedules × 15 chunk classes (+ default) over the Table I
  /// caps — ≥2000 joint candidates — with the validity rules above.
  static SearchSpace extended_for_machine(const hw::MachineModel& m);

  /// Fully parameterized space. `default_cfg.threads` must be on the
  /// thread grid and `default_cfg.chunk` must be 0 (the compiler-default
  /// chunk class) so the default remains representable as a label.
  static SearchSpace custom(std::vector<int> threads,
                            std::vector<sim::Schedule> schedules,
                            std::vector<int> chunks, std::vector<double> caps,
                            sim::OmpConfig default_cfg,
                            std::vector<ConstraintRule> constraints = {});

  const std::vector<int>& thread_values() const { return threads_; }
  const std::vector<sim::Schedule>& schedule_values() const { return schedules_; }
  const std::vector<int>& chunk_values() const { return chunks_; }
  const std::vector<double>& power_caps() const { return caps_; }

  /// Thermal design power = the highest cap (no constraint).
  double tdp() const { return caps_.back(); }

  // --- Constraint layer ---------------------------------------------------
  const std::vector<ConstraintRule>& constraints() const { return constraints_; }
  bool has_constraints() const { return !constraints_.empty(); }

  /// True when `cfg` may run at power cap `cap_w`. The machine default is
  /// always valid (the fallback guarantee); other configs must satisfy
  /// every rule.
  bool is_valid(const sim::OmpConfig& cfg, double cap_w) const;

  /// Largest thread count on the grid that the thread-only rules admit at
  /// `cap_w` (0 if they admit none). The default config is exempt from
  /// pruning — `is_valid` handles that; this is the beam search's early
  /// thread-stage bound.
  int max_valid_threads(double cap_w) const;

  /// Joint candidates removed by the constraint layer (0 on Table I
  /// spaces, which carry no constraints).
  int joint_invalid_count() const;

  // --- Per-cap OpenMP configuration grid (126 points) --------------------
  int num_omp_configs() const;
  sim::OmpConfig omp_config(int index) const;
  /// Index of a grid configuration; -1 if not on the grid.
  int omp_index(const sim::OmpConfig& cfg) const;

  /// Axis positions of one grid configuration on the raw value grids
  /// (thread-major layout: index == (thread * S + sched) * C + chunk).
  /// The single codec behind omp_config/omp_index and the baselines'
  /// neighborhood moves; the classifier's label layout (with its extra
  /// default-chunk class) lives in the tuner_head_layout helper family.
  struct GridAxes {
    int thread = 0;
    int sched = 0;
    int chunk = 0;
  };
  GridAxes omp_axes(int index) const;
  int omp_index_from_axes(const GridAxes& ax) const;

  /// The default OpenMP configuration for this machine.
  sim::OmpConfig default_config() const { return default_; }

  /// Candidates the oracle/baselines scan at one cap: the 126-point grid
  /// plus the default (index == num_omp_configs() encodes the default).
  int num_candidates_per_cap() const { return num_omp_configs() + 1; }
  sim::OmpConfig candidate(int index) const;

  /// Total size of the joint space across caps (paper: 508).
  int joint_size() const { return static_cast<int>(caps_.size()) * num_candidates_per_cap(); }
  struct JointPoint {
    int cap_index;
    sim::OmpConfig cfg;
    bool is_default;
  };
  JointPoint joint_point(int index) const;

  // --- Label-space helpers for the factorized classifier -----------------
  /// Head sizes: threads, schedule, chunk classes (chunk 0 = default).
  int num_thread_classes() const { return static_cast<int>(threads_.size()); }
  int num_schedule_classes() const { return static_cast<int>(schedules_.size()); }
  int num_chunk_classes() const { return static_cast<int>(chunks_.size()) + 1; }
  int num_cap_classes() const { return static_cast<int>(caps_.size()); }

  int thread_class(int threads) const;
  int chunk_class(int chunk) const;  ///< chunk 0 → class 0
  /// Build a configuration from head predictions.
  sim::OmpConfig config_from_classes(int thread_cls, int sched_cls,
                                     int chunk_cls) const;

  int cap_index(double cap_w) const;

 private:
  std::vector<int> threads_;
  std::vector<sim::Schedule> schedules_;
  std::vector<int> chunks_;
  std::vector<double> caps_;
  std::vector<ConstraintRule> constraints_;
  sim::OmpConfig default_;
};

}  // namespace pnp::core
