#pragma once

/// \file search_space.hpp
/// The tuning search space of Table I:
///
///   Power caps  : 75/100/120/150 W (Skylake), 40/60/70/85 W (Haswell)
///   Threads     : 1,4,8,16,32,64 (Skylake), 1,2,4,8,16,32 (Haswell)
///   Schedule    : static, dynamic, guided
///   Chunk sizes : 1, 8, 32, 64, 128, 256, 512
///
/// 4 × 6 × 3 × 7 = 504 regular configurations, plus the default OpenMP
/// configuration (all hardware threads, static, compiler-default chunk) at
/// each of the four caps = 508 total.
///
/// The classifier's label space additionally treats "compiler-default
/// chunk" (chunk = 0) as an eighth chunk class so the default
/// configuration is representable as a label (see DESIGN.md §2 on this
/// deliberate deviation); the oracle and the baselines stay on the paper's
/// 508-point space.

#include <vector>

#include "hw/machine.hpp"
#include "sim/omp_config.hpp"

namespace pnp::core {

class SearchSpace {
 public:
  /// Table I values for one of the two machines (keyed on machine name).
  static SearchSpace for_machine(const hw::MachineModel& m);

  const std::vector<int>& thread_values() const { return threads_; }
  const std::vector<sim::Schedule>& schedule_values() const { return schedules_; }
  const std::vector<int>& chunk_values() const { return chunks_; }
  const std::vector<double>& power_caps() const { return caps_; }

  /// Thermal design power = the highest cap (no constraint).
  double tdp() const { return caps_.back(); }

  // --- Per-cap OpenMP configuration grid (126 points) --------------------
  int num_omp_configs() const;
  sim::OmpConfig omp_config(int index) const;
  /// Index of a grid configuration; -1 if not on the grid.
  int omp_index(const sim::OmpConfig& cfg) const;

  /// The default OpenMP configuration for this machine.
  sim::OmpConfig default_config() const { return default_; }

  /// Candidates the oracle/baselines scan at one cap: the 126-point grid
  /// plus the default (index == num_omp_configs() encodes the default).
  int num_candidates_per_cap() const { return num_omp_configs() + 1; }
  sim::OmpConfig candidate(int index) const;

  /// Total size of the joint space across caps (paper: 508).
  int joint_size() const { return static_cast<int>(caps_.size()) * num_candidates_per_cap(); }
  struct JointPoint {
    int cap_index;
    sim::OmpConfig cfg;
    bool is_default;
  };
  JointPoint joint_point(int index) const;

  // --- Label-space helpers for the factorized classifier -----------------
  /// Head sizes: threads, schedule, chunk classes (chunk 0 = default).
  int num_thread_classes() const { return static_cast<int>(threads_.size()); }
  int num_schedule_classes() const { return static_cast<int>(schedules_.size()); }
  int num_chunk_classes() const { return static_cast<int>(chunks_.size()) + 1; }
  int num_cap_classes() const { return static_cast<int>(caps_.size()); }

  int thread_class(int threads) const;
  int chunk_class(int chunk) const;  ///< chunk 0 → class 0
  /// Build a configuration from head predictions.
  sim::OmpConfig config_from_classes(int thread_cls, int sched_cls,
                                     int chunk_cls) const;

  int cap_index(double cap_w) const;

 private:
  std::vector<int> threads_;
  std::vector<sim::Schedule> schedules_;
  std::vector<int> chunks_;
  std::vector<double> caps_;
  sim::OmpConfig default_;
};

}  // namespace pnp::core
