#pragma once

/// \file fleet.hpp
/// The hardware zoo's cross-machine harness (docs/HARDWARE.md): a Fleet
/// owns the seeded generated machines plus one simulator and one
/// exhaustive MeasurementDb per machine — all over a shared region list —
/// and the FleetEvaluator runs the unseen-machine transfer split on top:
/// train one machine-conditioned tuner across the first N−K machines'
/// tables (PnpTuner::train_power_fleet), round-trip it through the v4
/// fleet artifact, and score it on the K held-out machines the model
/// never saw. The analogue of the paper's unseen-cap protocol (§IV-B,
/// Figs. 4–5) with the machine, not the power constraint, as the held-out
/// axis.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/measurement_db.hpp"
#include "core/pnp_tuner.hpp"
#include "core/tuner_artifact.hpp"
#include "hw/machine_generator.hpp"
#include "sim/simulator.hpp"
#include "workloads/suite.hpp"

namespace pnp::core {

/// Generated machines 0..count-1 of `seed`'s zoo, each with its simulator
/// and fully swept measurement table over `regions`. Construction is the
/// expensive part (count exhaustive sweeps); everything after is lookups.
/// The referenced corpora must outlive the Fleet.
class Fleet {
 public:
  Fleet(std::uint64_t seed, int count,
        const std::vector<workloads::Corpus::RegionRef>& regions);

  int size() const { return static_cast<int>(machines_.size()); }
  std::uint64_t seed() const { return seed_; }
  const hw::MachineModel& machine(int i) const;
  const sim::Simulator& sim(int i) const;
  const MeasurementDb& db(int i) const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<hw::MachineModel> machines_;
  std::vector<std::unique_ptr<sim::Simulator>> sims_;
  std::vector<std::unique_ptr<MeasurementDb>> dbs_;
};

/// One held-out machine's share of the unseen-machine split, scored with
/// the same §IV metrics as every other split in the codebase.
struct MachineSplitResult {
  int machine_index = 0;  ///< fleet index
  std::string machine_name;
  std::uint64_t fingerprint = 0;
  SplitMetrics overall;
  /// Parallel to the machine's own cap grid (ascending cap order).
  std::vector<SplitMetrics> per_cap;
};

class FleetEvaluator {
 public:
  /// The fleet must outlive the evaluator.
  explicit FleetEvaluator(const Fleet& fleet);

  /// Train the machine-conditioned tuner on machines [0, size−holdout)
  /// over every region, and return its v4 fleet artifact. `base` options
  /// have machine_features forced on; the fleet seed is folded into the
  /// weight-init seed so different zoos get different initializations.
  TunerArtifact train(int holdout, const PnpOptions& base) const;

  /// Load `art` against machine `index`'s db (full v4 validation — this
  /// throws for single-machine artifacts from another machine) and score
  /// its predictions over every (region, cap) cell of that machine's
  /// table. Deterministic: f64 tuner inference, no threading.
  MachineSplitResult score_on(int index, const TunerArtifact& art) const;

  /// train() + score_on() for every held-out machine, in fleet order.
  std::vector<MachineSplitResult> evaluate(int holdout,
                                           const PnpOptions& base) const;

 private:
  const Fleet& fleet_;
};

}  // namespace pnp::core
