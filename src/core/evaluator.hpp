#pragma once

/// \file evaluator.hpp
/// Cross-suite generalization harness: train a PnP tuner on one set of
/// regions (suite A) and score it on a disjoint set (suite B) with the
/// paper's §IV metrics. Where the LOOCV drivers (loocv.hpp) reproduce the
/// paper's leave-one-application-out protocol inside the fixed 68-region
/// corpus, the Evaluator stresses the actual generalization claim on
/// corpora the model never saw — typically procedurally generated ones
/// (workloads::Generator) mixed with the paper suite in one MeasurementDb.
///
/// Split axes (tools/pnp_eval builds all three):
///   - unseen-app:    every test region belongs to an application absent
///                    from training;
///   - unseen-family: every test region belongs to a kernel-family
///                    archetype absent from training;
///   - unseen-cap:    training sees a strict subset of the power caps and
///                    the model predicts at a held-out cap through the
///                    scalar cap feature (paper Figs. 4–5 protocol).
///
/// The harness separates training from prediction from scoring so the
/// serving layer can sit in the middle: train() returns the tuner,
/// queries() enumerates the (region, cap) test grid, and score() consumes
/// externally produced configurations — e.g. serve::InferenceEngine batch
/// predictions — keeping core free of any serve dependency. evaluate() is
/// the in-process convenience that wires the three together.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/measurement_db.hpp"
#include "core/metrics.hpp"
#include "core/pnp_tuner.hpp"

namespace pnp::core {

/// One train-on-A / test-on-B experiment over a shared MeasurementDb.
struct EvalSplit {
  std::string name;
  std::vector<int> train_regions;  ///< db region indices (disjoint from test)
  std::vector<int> test_regions;
  /// Caps visible during training; empty = all caps (the test grid then
  /// covers all caps too). Non-empty = unseen-cap protocol: the tuner
  /// trains with the scalar cap feature on these caps only and the test
  /// grid covers exactly the complement.
  std::vector<int> train_cap_indices;
};

/// §IV metrics over a set of (region, cap) cells.
struct SplitMetrics {
  int queries = 0;
  /// Geometric-mean speedup over the default configuration
  /// (t_default / t_chosen; the paper's headline per-figure metric).
  double geomean_speedup = 0.0;
  /// Geometric-mean oracle-normalized speedup t_best / t_chosen — 1.0
  /// means every choice matches the exhaustive-sweep optimum.
  double geomean_normalized = 0.0;
  /// Fraction of cells whose chosen config ties the oracle's time
  /// (relative tolerance 1e-9 — tie-aware, unlike label exact-match).
  double oracle_match = 0.0;
};

/// §IV metrics from raw per-query timings: `chosen` is each query's
/// achieved time, `dflt` the default config's, `best` the oracle's. Shared
/// by Evaluator::score, precision_delta, and the fleet evaluator
/// (fleet.hpp) so every split in the codebase scores identically.
SplitMetrics split_metrics_over(std::span<const double> chosen,
                                std::span<const double> dflt,
                                std::span<const double> best);

struct SplitResult {
  std::string name;
  int num_train_regions = 0;
  int num_test_regions = 0;
  std::vector<int> eval_cap_indices;    ///< caps the test grid covered
  SplitMetrics overall;
  std::vector<SplitMetrics> per_cap;    ///< parallel to eval_cap_indices
  PerAppGeomean per_app_speedup;        ///< per test application
};

struct EvaluatorOptions {
  PnpOptions pnp;  ///< base tuner options; per-split seed derived from it
};

class Evaluator {
 public:
  /// Both references must outlive the Evaluator.
  Evaluator(const sim::Simulator& sim, const MeasurementDb& db);

  /// Train a tuner for the split (power scenario). For unseen-cap splits
  /// (non-empty train_cap_indices) the scalar cap feature and profiled
  /// counters are forced on, per the paper's protocol. The split's name
  /// is folded into the weight-init seed so distinct splits do not share
  /// initializations. Throws pnp::Error on malformed splits.
  PnpTuner train(const EvalSplit& split, const EvaluatorOptions& opt) const;

  /// The test grid score() expects predictions for, in row-major
  /// (test_region, eval_cap) order.
  struct Query {
    int region = 0;
    int cap_index = 0;
  };
  std::vector<Query> queries(const EvalSplit& split) const;

  /// The cap indices the test grid covers, in ascending order: all caps
  /// for ordinary splits, the held-out complement for unseen-cap splits.
  /// queries() enumerates exactly test_regions × eval_caps.
  std::vector<int> eval_caps(const EvalSplit& split) const;

  /// Score externally produced configurations, one per queries() entry in
  /// order. Chosen configs are evaluated with noiseless sim.expected()
  /// (predictions may land off the 508-point grid — e.g. default-chunk
  /// with a non-default thread count — so the db alone cannot score them).
  SplitResult score(const EvalSplit& split,
                    std::span<const sim::OmpConfig> configs) const;

  /// train() + tuner predictions + score() in one call. Held-out caps are
  /// predicted through predict_power_at (scalar cap feature), in-space
  /// caps through predict_power.
  SplitResult evaluate(const EvalSplit& split,
                       const EvaluatorOptions& opt) const;

  /// Agreement between two serving tiers of the SAME trained model over
  /// the same test grid — the acceptance gate of the opt-in f32 inference
  /// tier (docs/SERVING.md): how often did the reduced-precision argmax
  /// flip the chosen configuration, and when it flipped, how much did the
  /// outcome (power drawn, execution time) actually move.
  struct PrecisionDelta {
    int queries = 0;
    int flips = 0;          ///< queries where the chosen configs differ
    double flip_rate = 0.0; ///< flips / queries (0 when queries == 0)
    /// Outcome deltas |candidate − reference| under noiseless
    /// sim.expected() at each query's cap, maxed over all queries (not
    /// just flipped ones; agreeing configs contribute 0).
    double max_abs_dpower_w = 0.0;
    double max_abs_dtime_s = 0.0;
    /// Headline metric of each tier over the grid, for side-by-side
    /// reporting (geometric-mean speedup over the default config).
    double geomean_speedup_reference = 0.0;
    double geomean_speedup_candidate = 0.0;
  };

  /// Compare `candidate` (e.g. f32-tier engine output) against
  /// `reference` (f64), one config per queries() entry in order. Pure
  /// scoring: the Evaluator never sees the engines, so any two prediction
  /// sources can be diffed. Throws pnp::Error on size mismatches.
  PrecisionDelta precision_delta(
      const EvalSplit& split, std::span<const sim::OmpConfig> reference,
      std::span<const sim::OmpConfig> candidate) const;

 private:
  void check_split(const EvalSplit& split) const;

  const sim::Simulator& sim_;
  const MeasurementDb& db_;
};

/// Build a split by application-name predicate: regions of applications
/// where `is_test` returns true become the test set, all others train.
EvalSplit make_app_split(const MeasurementDb& db, std::string name,
                         const std::function<bool(const std::string&)>& is_test);

/// Turn a split into its unseen-cap variant: training sees every cap
/// except `heldout_cap`; the test grid covers exactly `heldout_cap`.
EvalSplit with_heldout_cap(EvalSplit split, int heldout_cap, int num_caps);

}  // namespace pnp::core
