#pragma once

/// \file baselines.hpp
/// The comparison tuners of the paper's evaluation:
///
///  - BlissTuner — after BLISS (Roy et al., PLDI'21): a pool of diverse
///    lightweight surrogate models (ridge regression, k-NN, a small RBF
///    Gaussian process) guides ~20 sampled executions per code region
///    (paper §VI: "BLISS needs 20 sampling runs for each code region").
///
///  - OpenTunerLike — after OpenTuner (Ansel et al., PACT'14): an ensemble
///    of search techniques (random, hill-climbing, pattern search, mutate-
///    best) coordinated by an AUC-bandit meta-technique, under an
///    evaluation budget standing in for the paper's `--stop-after` bound.
///
/// Both observe *noisy* simulated executions (Simulator::measure), unlike
/// the PnP tuner which never executes the region.

#include <cstdint>

#include "core/search_space.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"

namespace pnp::core {

struct BaselineOptions {
  int bliss_samples = 20;
  int opentuner_evals = 40;
  std::uint64_t seed = 99;
};

/// Result of a baseline tuning run: the chosen point and the sampling cost.
struct BaselineChoice {
  int cap_index = 0;        ///< meaningful for EDP tuning only
  sim::OmpConfig cfg;
  int executions = 0;       ///< sampled executions spent
};

class BlissTuner {
 public:
  BlissTuner(const sim::Simulator& sim, const SearchSpace& space,
             BaselineOptions opt);

  /// Scenario 1: minimize time at a fixed cap.
  BaselineChoice tune_at_cap(const sim::KernelDescriptor& k, double cap_w);

  /// Scenario 2: minimize EDP over (cap × config).
  BaselineChoice tune_edp(const sim::KernelDescriptor& k);

 private:
  const sim::Simulator& sim_;
  SearchSpace space_;
  BaselineOptions opt_;
};

class OpenTunerLike {
 public:
  OpenTunerLike(const sim::Simulator& sim, const SearchSpace& space,
                BaselineOptions opt);

  BaselineChoice tune_at_cap(const sim::KernelDescriptor& k, double cap_w);
  BaselineChoice tune_edp(const sim::KernelDescriptor& k);

 private:
  const sim::Simulator& sim_;
  SearchSpace space_;
  BaselineOptions opt_;
};

}  // namespace pnp::core
