#pragma once

/// \file config_search.hpp
/// Model-guided search over the factored head logits.
///
/// A factored model scores a joint configuration as the SUM of its
/// per-dimension head logits (cap + thread + schedule + chunk). Because
/// that sum is maximized by the per-head argmax tuple, the production
/// decode is a two-step protocol:
///
///   1. Fast path: take the per-head argmax tuple (exactly the historic
///      independent-argmax decode). If the constraint layer admits it, it
///      IS the joint argmax — done. On constraint-free spaces (the paper's
///      Table I grids) this is bit-identical to the pre-refactor behavior
///      and costs nothing extra.
///   2. Beam search fallback: only when the argmax tuple is pruned. The
///      beam expands dimensions in the fixed order cap → thread →
///      schedule → chunk, keeps the `beam_width` best partial sums at
///      each stage (width <= 0 keeps everything), prunes thread classes
///      a thread-only rule forbids at the query's cap, filters complete
///      tuples through `SearchSpace::is_valid`, and falls back to the
///      machine default configuration if pruning empties the beam (the
///      default is always valid, so serving can never fail to answer).
///
/// Ties break deterministically: higher score first, then lexicographic
/// ascending (cap, thread, schedule, chunk) class order — the same "first
/// maximum wins" protocol as `nn::argmax_index`. `exhaustive_*` scan the
/// entire class grid with the same scoring and tie-break and are the test
/// oracle: beam search with width >= the space size must match them
/// bit-for-bit.

#include <span>

#include "core/search_space.hpp"

namespace pnp::core {

/// Outcome of a model-guided search: the chosen class tuple, its score
/// (sum of the per-head logits, summed in cap→thread→sched→chunk order),
/// and whether the constraint layer forced the default-config fallback.
struct SearchChoice {
  int cap_cls = 0;
  int thread_cls = 0;
  int sched_cls = 0;
  int chunk_cls = 0;
  double score = 0.0;
  bool used_fallback = false;
};

/// Power mode: the cap is part of the query, so only the thread/schedule/
/// chunk heads are searched. `cap_w` feeds the constraint layer.
template <typename T>
SearchChoice search_power(const SearchSpace& space, double cap_w,
                          std::span<const T> thread_logits,
                          std::span<const T> sched_logits,
                          std::span<const T> chunk_logits, int beam_width);

/// EDP mode: the cap head is searched jointly with the config heads.
template <typename T>
SearchChoice search_edp(const SearchSpace& space,
                        std::span<const T> cap_logits,
                        std::span<const T> thread_logits,
                        std::span<const T> sched_logits,
                        std::span<const T> chunk_logits, int beam_width);

/// Exhaustive oracles: scan every class tuple in lexicographic order,
/// keep the best constraint-valid one (strictly-greater update == the
/// tie-break protocol above). O(joint class grid) — tests and benchmarks.
template <typename T>
SearchChoice exhaustive_power(const SearchSpace& space, double cap_w,
                              std::span<const T> thread_logits,
                              std::span<const T> sched_logits,
                              std::span<const T> chunk_logits);

template <typename T>
SearchChoice exhaustive_edp(const SearchSpace& space,
                            std::span<const T> cap_logits,
                            std::span<const T> thread_logits,
                            std::span<const T> sched_logits,
                            std::span<const T> chunk_logits);

/// Dense (one-logit-per-config) layout: validity-filtered argmax over the
/// flat class grid. Strictly-greater updates in index order — the same
/// first-max-wins tie-break as `nn::argmax_index`, so on an unconstrained
/// space this equals argmax_index(logits) exactly. For EDP layouts the
/// flat index is cap-majored and `cap_w` is ignored. Returns -1 when the
/// constraint layer prunes every class (callers fall back to the default
/// config).
template <typename T>
int dense_argmax_valid(const SearchSpace& space, std::span<const T> logits,
                       bool edp_scenario, double cap_w);

}  // namespace pnp::core
