#pragma once

/// \file metrics.hpp
/// Evaluation metrics of the paper: speedup over the default configuration,
/// greenup (energy_old / energy_new, Choi et al.), EDP improvement, and
/// oracle-normalized variants, plus per-application geometric-mean
/// aggregation as used on every figure's x-axis.

#include <map>
#include <span>
#include <string>
#include <vector>

namespace pnp::core {

/// speedup = t_default / t_chosen.
double speedup(double t_default, double t_chosen);

/// greenup = e_default / e_chosen (Choi et al., "A roofline model of energy").
double greenup(double e_default, double e_chosen);

/// EDP improvement = edp_default / edp_chosen.
double edp_improvement(double edp_default, double edp_chosen);

/// Oracle-normalized speedup in (0, 1]: (t_default/t) / (t_default/t_best)
/// = t_best / t.
double normalized_speedup(double t_best, double t_chosen);

/// Geometric mean per application, preserving first-seen application order.
/// `app_of_value[i]` names the application of `values[i]`.
struct PerAppGeomean {
  std::vector<std::string> apps;
  std::vector<double> geomeans;
};
PerAppGeomean per_app_geomean(std::span<const std::string> app_of_value,
                              std::span<const double> values);

}  // namespace pnp::core
