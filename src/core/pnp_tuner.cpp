#include "core/pnp_tuner.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "core/config_search.hpp"
#include "core/tuner_artifact.hpp"
#include "hw/machine_generator.hpp"
#include "ir/extract.hpp"
#include "nn/loss.hpp"

namespace pnp::core {

namespace {

constexpr int kNumCounters = kNumProfiledCounters;

std::array<double, kNumCounters> counter_values(const hw::Counters& c) {
  return {c.instructions, c.l1_misses, c.l2_misses, c.l3_misses,
          c.branch_mispredictions};
}

}  // namespace

PnpTuner::PnpTuner(const MeasurementDb& db, PnpOptions options)
    : db_(db), opt_(std::move(options)) {
  graphs_.reserve(static_cast<std::size_t>(db_.num_regions()));
  for (int r = 0; r < db_.num_regions(); ++r) {
    const auto& rr = db_.region(r);
    // llvm-extract equivalent: carve the outlined region out of the
    // application module, then build its PROGRAML graph.
    const ir::Module one = ir::extract_function(rr.app->module, rr.region->function);
    graphs_.push_back(graph::build_flow_graph(one));
  }
  if (!opt_.train_cap_indices.empty())
    PNP_CHECK_MSG(!opt_.cap_onehot,
                  "unseen-cap training requires the scalar cap feature");
  const auto mf = hw::machine_feature_vector(db_.machine());
  machine_feats_.assign(mf.begin(), mf.end());
}

int PnpTuner::extra_feature_count(Mode mode) const {
  return tuner_extra_feature_count(mode == Mode::Power, opt_.cap_onehot,
                                   db_.num_caps(), opt_.use_counters,
                                   opt_.machine_features);
}

void PnpTuner::fill_extra(int region, std::optional<int> cap_index,
                          std::optional<double> cap_w,
                          std::vector<double>& x) const {
  x.resize(static_cast<std::size_t>(extra_feature_count(mode_)));
  fill_extra_into(region, cap_index, cap_w, x);
}

void PnpTuner::fill_extra_into(int region, std::optional<int> cap_index,
                               std::optional<double> cap_w,
                               std::span<double> x) const {
  PNP_CHECK_MSG(static_cast<int>(x.size()) == extra_feature_count(mode_),
                "extra-feature buffer holds " << x.size() << ", expected "
                                              << extra_feature_count(mode_));
  std::size_t n = 0;
  if (mode_ == Mode::Power) {
    if (opt_.cap_onehot) {
      PNP_CHECK(cap_index.has_value());
      for (int k = 0; k < db_.num_caps(); ++k)
        x[n++] = k == *cap_index ? 1.0 : 0.0;
    } else {
      // Normalized power constraint (paper §IV-B, unseen-cap experiment).
      const double w =
          cap_w.has_value()
              ? *cap_w
              : db_.space().power_caps()[static_cast<std::size_t>(
                    cap_index.value())];
      x[n++] = w / db_.space().tdp();
    }
  }
  if (opt_.use_counters) {
    const auto vals = counter_values(db_.at(region, 0, 0).counters);
    PNP_CHECK(counter_mean_.size() == kNumCounters);
    for (int i = 0; i < kNumCounters; ++i) {
      const double z = (std::log1p(vals[static_cast<std::size_t>(i)]) -
                        counter_mean_[static_cast<std::size_t>(i)]) /
                       counter_std_[static_cast<std::size_t>(i)];
      x[n++] = z;
    }
  }
  if (opt_.machine_features)
    for (double v : machine_feats_) x[n++] = v;
  PNP_CHECK(n == x.size());
}

std::vector<double> PnpTuner::make_extra(int region,
                                         std::optional<int> cap_index,
                                         std::optional<double> cap_w) const {
  std::vector<double> x;
  fill_extra(region, cap_index, cap_w, x);
  return x;
}

std::vector<int> PnpTuner::power_labels(int region, int cap) const {
  return power_labels_db(db_, region, cap);
}

std::vector<int> PnpTuner::power_labels_db(const MeasurementDb& db, int region,
                                           int cap) const {
  const int c = db.best_candidate_by_time(region, cap);
  const sim::OmpConfig cfg = db.space().candidate(c);
  return tuner_labels(db.space(), tuner_classes_for(db.space(), cfg, cap),
                      opt_.factored_heads, /*edp_scenario=*/false);
}

std::vector<double> PnpTuner::fleet_extra(const MeasurementDb& db,
                                          std::span<const double> mfeats,
                                          int region, int cap) const {
  // Mirrors fill_extra_into's Mode::Power layout, but every machine-bound
  // input comes from the fleet db: the cap feature is indexed into (or
  // normalized by) *that machine's* cap grid, counters come from its
  // table, and mfeats are its machine features.
  std::vector<double> x;
  x.reserve(static_cast<std::size_t>(extra_feature_count(Mode::Power)));
  if (opt_.cap_onehot) {
    for (int k = 0; k < db.num_caps(); ++k) x.push_back(k == cap ? 1.0 : 0.0);
  } else {
    x.push_back(db.space().power_caps()[static_cast<std::size_t>(cap)] /
                db.space().tdp());
  }
  if (opt_.use_counters) {
    const auto vals = counter_values(db.at(region, 0, 0).counters);
    PNP_CHECK(counter_mean_.size() == kNumCounters);
    for (int i = 0; i < kNumCounters; ++i)
      x.push_back((std::log1p(vals[static_cast<std::size_t>(i)]) -
                   counter_mean_[static_cast<std::size_t>(i)]) /
                  counter_std_[static_cast<std::size_t>(i)]);
  }
  for (double v : mfeats) x.push_back(v);
  PNP_CHECK(static_cast<int>(x.size()) == extra_feature_count(Mode::Power));
  return x;
}

std::vector<int> PnpTuner::edp_labels(int region) const {
  const auto jb = db_.best_by_edp(region);
  const sim::OmpConfig cfg = db_.space().candidate(jb.candidate);
  return tuner_labels(db_.space(),
                      tuner_classes_for(db_.space(), cfg, jb.cap_index),
                      opt_.factored_heads, /*edp_scenario=*/true);
}

sim::OmpConfig PnpTuner::decode_config(std::span<const int> preds,
                                       int base) const {
  const SearchSpace& s = db_.space();
  if (opt_.factored_heads) {
    return s.config_from_classes(preds[static_cast<std::size_t>(base)],
                                 preds[static_cast<std::size_t>(base) + 1],
                                 preds[static_cast<std::size_t>(base) + 2]);
  }
  const TunerClasses c =
      tuner_classes_from_flat(s, preds[0], mode_ == Mode::Edp);
  return s.config_from_classes(c.thread, c.sched, c.chunk);
}

sim::OmpConfig PnpTuner::decode_power_logits(std::span<const double> logits,
                                             double cap_w,
                                             int beam_width) const {
  const SearchSpace& s = db_.space();
  if (opt_.factored_heads) {
    const int nt = s.num_thread_classes(), ns = s.num_schedule_classes();
    const int nc = s.num_chunk_classes();
    const auto choice = search_power<double>(
        s, cap_w, logits.subspan(0, static_cast<std::size_t>(nt)),
        logits.subspan(static_cast<std::size_t>(nt),
                       static_cast<std::size_t>(ns)),
        logits.subspan(static_cast<std::size_t>(nt + ns),
                       static_cast<std::size_t>(nc)),
        beam_width);
    return s.config_from_classes(choice.thread_cls, choice.sched_cls,
                                 choice.chunk_cls);
  }
  const int flat = dense_argmax_valid(s, logits, /*edp=*/false, cap_w);
  if (flat < 0) return s.default_config();
  const TunerClasses c = tuner_classes_from_flat(s, flat, /*edp=*/false);
  return s.config_from_classes(c.thread, c.sched, c.chunk);
}

PnpTuner::JointChoice PnpTuner::decode_edp_logits(
    std::span<const double> logits, int beam_width) const {
  const SearchSpace& s = db_.space();
  JointChoice jc;
  if (opt_.factored_heads) {
    const int np = s.num_cap_classes(), nt = s.num_thread_classes();
    const int ns = s.num_schedule_classes(), nc = s.num_chunk_classes();
    const auto choice = search_edp<double>(
        s, logits.subspan(0, static_cast<std::size_t>(np)),
        logits.subspan(static_cast<std::size_t>(np),
                       static_cast<std::size_t>(nt)),
        logits.subspan(static_cast<std::size_t>(np + nt),
                       static_cast<std::size_t>(ns)),
        logits.subspan(static_cast<std::size_t>(np + nt + ns),
                       static_cast<std::size_t>(nc)),
        beam_width);
    jc.cap_index = choice.cap_cls;
    jc.cfg = s.config_from_classes(choice.thread_cls, choice.sched_cls,
                                   choice.chunk_cls);
    return jc;
  }
  int flat = dense_argmax_valid(s, logits, /*edp=*/true, 0.0);
  if (flat < 0) {
    // Everything pruned: serve the default at the best-scoring default
    // slot's cap — scan the per-cap default logits is overkill here, the
    // highest cap (TDP, least constrained) is the canonical fallback.
    jc.cap_index = s.num_cap_classes() - 1;
    jc.cfg = s.default_config();
    return jc;
  }
  const TunerClasses c = tuner_classes_from_flat(s, flat, /*edp=*/true);
  jc.cap_index = c.cap;
  jc.cfg = s.config_from_classes(c.thread, c.sched, c.chunk);
  return jc;
}

std::vector<int> PnpTuner::head_layout(Mode mode) const {
  return tuner_head_layout(db_.space(), opt_.factored_heads,
                           mode == Mode::Edp);
}

void PnpTuner::build_model(Mode mode, const std::vector<int>& train_regions) {
  mode_ = mode;
  // A rebuilt model is single-machine until train_power_fleet stamps it.
  fleet_fingerprints_.clear();

  // Vocabulary strictly from training graphs; held-out regions exercise the
  // OOV path like the paper's unseen applications do.
  std::vector<const graph::FlowGraph*> corpus;
  for (int r : train_regions)
    corpus.push_back(&graphs_[static_cast<std::size_t>(r)]);
  vocab_ = graph::Vocabulary::from_graphs(corpus);

  tensors_.clear();
  tensors_.reserve(graphs_.size());
  for (const auto& g : graphs_) tensors_.push_back(graph::to_tensors(g, vocab_));

  // Counter normalization from training regions only.
  if (opt_.use_counters) {
    counter_mean_.assign(kNumCounters, 0.0);
    counter_std_.assign(kNumCounters, 0.0);
    for (int r : train_regions) {
      const auto vals = counter_values(db_.at(r, 0, 0).counters);
      for (int i = 0; i < kNumCounters; ++i)
        counter_mean_[static_cast<std::size_t>(i)] +=
            std::log1p(vals[static_cast<std::size_t>(i)]);
    }
    for (auto& m : counter_mean_) m /= static_cast<double>(train_regions.size());
    for (int r : train_regions) {
      const auto vals = counter_values(db_.at(r, 0, 0).counters);
      for (int i = 0; i < kNumCounters; ++i) {
        const double d = std::log1p(vals[static_cast<std::size_t>(i)]) -
                         counter_mean_[static_cast<std::size_t>(i)];
        counter_std_[static_cast<std::size_t>(i)] += d * d;
      }
    }
    for (auto& s : counter_std_) {
      s = std::sqrt(s / static_cast<double>(train_regions.size()));
      if (s < 1e-9) s = 1.0;
    }
  }

  nn::RgcnNetConfig nc;
  nc.vocab_size = vocab_.size();
  nc.emb_dim = opt_.emb_dim;
  nc.rgcn_layers = opt_.rgcn_layers;
  nc.hidden = opt_.hidden;
  nc.dense_hidden1 = opt_.dense_hidden1;
  nc.dense_hidden2 = opt_.dense_hidden2;
  nc.extra_features = extra_feature_count(mode);
  nc.num_bases = opt_.num_bases;
  nc.seed = opt_.seed;

  nc.head_sizes = head_layout(mode);

  net_ = std::make_unique<nn::RgcnNet>(nc);
  if (pending_gnn_.has_value()) {
    net_->load_state_dict(*pending_gnn_, /*load_gnn_only=*/true);
    net_->set_gnn_frozen(pending_freeze_);
  }
}

nn::TrainReport PnpTuner::run_training(
    const std::vector<nn::TrainSample>& samples) {
  std::unique_ptr<nn::Optimizer> opt;
  if (opt_.use_adamw)
    opt = nn::Adam::adamw_amsgrad(opt_.lr, opt_.weight_decay);
  else
    opt = nn::Adam::plain(opt_.lr);
  return nn::train(*net_, *opt, samples, opt_.trainer);
}

nn::TrainReport PnpTuner::train_power_scenario(
    const std::vector<int>& train_regions) {
  PNP_CHECK(!train_regions.empty());
  build_model(Mode::Power, train_regions);

  std::vector<int> caps = opt_.train_cap_indices;
  if (caps.empty())
    for (int k = 0; k < db_.num_caps(); ++k) caps.push_back(k);

  std::vector<nn::TrainSample> samples;
  samples.reserve(train_regions.size());
  for (int r : train_regions) {
    nn::TrainSample s;
    s.graph = &tensors_[static_cast<std::size_t>(r)];
    for (int k : caps) {
      nn::SampleMember m;
      m.extra = make_extra(r, k, std::nullopt);
      m.labels = power_labels(r, k);
      s.members.push_back(std::move(m));
    }
    samples.push_back(std::move(s));
  }
  return run_training(samples);
}

nn::TrainReport PnpTuner::train_power_fleet(
    const std::vector<const MeasurementDb*>& dbs,
    const std::vector<int>& train_regions) {
  PNP_CHECK(!train_regions.empty());
  PNP_CHECK_MSG(opt_.machine_features,
                "fleet training requires machine_features — without them the "
                "model cannot tell the fleet's machines apart");
  PNP_CHECK_MSG(!dbs.empty() && dbs[0] == &db_,
                "fleet training must start with this tuner's own db");
  for (const MeasurementDb* db : dbs) {
    PNP_CHECK(db != nullptr);
    PNP_CHECK_MSG(db->num_regions() == db_.num_regions(),
                  "fleet dbs must cover the same regions");
    for (int r = 0; r < db_.num_regions(); ++r)
      PNP_CHECK_MSG(db->region(r).region == db_.region(r).region,
                    "fleet dbs must reference the same region objects (one "
                    "graph per region serves the whole fleet)");
    PNP_CHECK_MSG(db->num_caps() == db_.num_caps(),
                  "fleet dbs must have the same cap count, got "
                      << db->num_caps() << " vs " << db_.num_caps());
    PNP_CHECK_MSG(tuner_head_layout(db->space(), opt_.factored_heads,
                                    /*edp_scenario=*/false) ==
                      tuner_head_layout(db_.space(), opt_.factored_heads,
                                        /*edp_scenario=*/false),
                  "fleet dbs must share one classifier head layout — machine '"
                      << db->machine().name << "' has a different space shape");
  }

  build_model(Mode::Power, train_regions);

  // Counter statistics must describe the whole fleet, not just machine 0:
  // refit over every (db, training region) pair.
  if (opt_.use_counters) {
    counter_mean_.assign(kNumCounters, 0.0);
    counter_std_.assign(kNumCounters, 0.0);
    const double count =
        static_cast<double>(dbs.size() * train_regions.size());
    for (const MeasurementDb* db : dbs)
      for (int r : train_regions) {
        const auto vals = counter_values(db->at(r, 0, 0).counters);
        for (int i = 0; i < kNumCounters; ++i)
          counter_mean_[static_cast<std::size_t>(i)] +=
              std::log1p(vals[static_cast<std::size_t>(i)]);
      }
    for (auto& m : counter_mean_) m /= count;
    for (const MeasurementDb* db : dbs)
      for (int r : train_regions) {
        const auto vals = counter_values(db->at(r, 0, 0).counters);
        for (int i = 0; i < kNumCounters; ++i) {
          const double d = std::log1p(vals[static_cast<std::size_t>(i)]) -
                           counter_mean_[static_cast<std::size_t>(i)];
          counter_std_[static_cast<std::size_t>(i)] += d * d;
        }
      }
    for (auto& s : counter_std_) {
      s = std::sqrt(s / count);
      if (s < 1e-9) s = 1.0;
    }
  }

  std::vector<int> caps = opt_.train_cap_indices;
  if (caps.empty())
    for (int k = 0; k < db_.num_caps(); ++k) caps.push_back(k);

  std::vector<nn::TrainSample> samples;
  samples.reserve(dbs.size() * train_regions.size());
  fleet_fingerprints_.clear();
  for (const MeasurementDb* db : dbs) {
    fleet_fingerprints_.push_back(hw::machine_fingerprint(db->machine()));
    const auto mfeats = hw::machine_feature_vector(db->machine());
    for (int r : train_regions) {
      nn::TrainSample s;
      s.graph = &tensors_[static_cast<std::size_t>(r)];
      for (int k : caps) {
        nn::SampleMember m;
        m.extra = fleet_extra(*db, mfeats, r, k);
        m.labels = power_labels_db(*db, r, k);
        s.members.push_back(std::move(m));
      }
      samples.push_back(std::move(s));
    }
  }
  return run_training(samples);
}

nn::TrainReport PnpTuner::train_edp_scenario(
    const std::vector<int>& train_regions) {
  PNP_CHECK(!train_regions.empty());
  build_model(Mode::Edp, train_regions);

  std::vector<nn::TrainSample> samples;
  samples.reserve(train_regions.size());
  for (int r : train_regions) {
    nn::TrainSample s;
    s.graph = &tensors_[static_cast<std::size_t>(r)];
    nn::SampleMember m;
    m.extra = make_extra(r, std::nullopt, std::nullopt);
    m.labels = edp_labels(r);
    s.members.push_back(std::move(m));
    samples.push_back(std::move(s));
  }
  return run_training(samples);
}

nn::TrainReport PnpTuner::fine_tune(const std::vector<int>& train_regions,
                                    const nn::TrainerConfig& cfg) {
  PNP_CHECK_MSG(net_ != nullptr && mode_ != Mode::None,
                "fine_tune needs a trained or restored model");
  PNP_CHECK(!train_regions.empty());

  // Samples are rebuilt exactly as train_*_scenario builds them — from the
  // db's *current* labels — but build_model is skipped: vocab_, tensors_,
  // counter stats and net_ stay as they are, so the existing weights are
  // the starting point.
  std::vector<nn::TrainSample> samples;
  samples.reserve(train_regions.size());
  if (mode_ == Mode::Power) {
    std::vector<int> caps = opt_.train_cap_indices;
    if (caps.empty())
      for (int k = 0; k < db_.num_caps(); ++k) caps.push_back(k);
    for (int r : train_regions) {
      nn::TrainSample s;
      s.graph = &tensors_[static_cast<std::size_t>(r)];
      for (int k : caps) {
        nn::SampleMember m;
        m.extra = make_extra(r, k, std::nullopt);
        m.labels = power_labels(r, k);
        s.members.push_back(std::move(m));
      }
      samples.push_back(std::move(s));
    }
  } else {
    for (int r : train_regions) {
      nn::TrainSample s;
      s.graph = &tensors_[static_cast<std::size_t>(r)];
      nn::SampleMember m;
      m.extra = make_extra(r, std::nullopt, std::nullopt);
      m.labels = edp_labels(r);
      s.members.push_back(std::move(m));
      samples.push_back(std::move(s));
    }
  }

  const nn::TrainerConfig saved = opt_.trainer;
  opt_.trainer = cfg;
  try {
    nn::TrainReport report = run_training(samples);
    opt_.trainer = saved;
    return report;
  } catch (...) {
    opt_.trainer = saved;
    throw;
  }
}

sim::OmpConfig PnpTuner::predict_power(int region, int cap_index) const {
  PNP_CHECK_MSG(mode_ == Mode::Power && net_ != nullptr,
                "train_power_scenario must run first");
  const auto extra = make_extra(region, cap_index, std::nullopt);
  const auto dc =
      net_->forward(tensors_[static_cast<std::size_t>(region)], extra);
  return decode_power_logits(
      dc.logits,
      db_.space().power_caps()[static_cast<std::size_t>(cap_index)],
      /*beam_width=*/0);
}

sim::OmpConfig PnpTuner::predict_power_at(int region, double cap_w) const {
  PNP_CHECK_MSG(mode_ == Mode::Power && net_ != nullptr,
                "train_power_scenario must run first");
  PNP_CHECK_MSG(!opt_.cap_onehot,
                "predicting at an arbitrary cap requires the scalar feature");
  const auto extra = make_extra(region, std::nullopt, cap_w);
  const auto dc =
      net_->forward(tensors_[static_cast<std::size_t>(region)], extra);
  return decode_power_logits(dc.logits, cap_w, /*beam_width=*/0);
}

PnpTuner::JointChoice PnpTuner::predict_edp(int region) const {
  PNP_CHECK_MSG(mode_ == Mode::Edp && net_ != nullptr,
                "train_edp_scenario must run first");
  const auto extra = make_extra(region, std::nullopt, std::nullopt);
  const auto dc =
      net_->forward(tensors_[static_cast<std::size_t>(region)], extra);
  return decode_edp_logits(dc.logits, /*beam_width=*/0);
}

TunerArtifact PnpTuner::to_artifact() const {
  PNP_CHECK_MSG(net_ != nullptr && mode_ != Mode::None,
                "no trained model to save — run train_*_scenario first");
  TunerArtifact art;
  art.set_options(opt_);
  art.mode = mode_ == Mode::Power ? TunerArtifact::Mode::Power
                                  : TunerArtifact::Mode::Edp;
  art.vocab_tokens.reserve(static_cast<std::size_t>(vocab_.size()) - 1);
  for (int id = 1; id < vocab_.size(); ++id)
    art.vocab_tokens.push_back(vocab_.token(id));
  art.counter_mean = counter_mean_;
  art.counter_std = counter_std_;
  art.head_sizes = net_->config().head_sizes;
  art.extra_features = net_->config().extra_features;
  art.serve_precision = serve_precision_;
  art.set_space(db_.space());
  // v4 machine identity: the primary training machine, plus the full
  // fingerprint list when the model was fleet-trained.
  art.machine_name = db_.machine().name;
  art.machine_fingerprint = hw::machine_fingerprint(db_.machine());
  art.fleet = !fleet_fingerprints_.empty();
  art.fleet_fingerprints = fleet_fingerprints_;
  art.net_weights = net_->state_dict();
  return art;
}

void PnpTuner::save(const std::string& path) const {
  to_artifact().save_file(path);
}

PnpTuner PnpTuner::from_artifact(const MeasurementDb& db,
                                 const TunerArtifact& art) {
  // Reject incompatible artifacts before building any model state (graph
  // extraction and tensor construction are the expensive part of the
  // constructor) — hot reload relies on this being side-effect-free.
  validate_artifact(art, db);
  PnpTuner tuner(db, art.options());
  tuner.restore(art);
  return tuner;
}

PnpTuner PnpTuner::load(const MeasurementDb& db, const std::string& path) {
  return from_artifact(db, TunerArtifact::load_file(path));
}

void PnpTuner::restore(const TunerArtifact& art) {
  // load() validates before constructing; re-validate here so restore is
  // safe on its own too (the checks are cheap and side-effect-free).
  validate_artifact(art, db_);
  mode_ = art.mode == TunerArtifact::Mode::Power ? Mode::Power : Mode::Edp;
  serve_precision_ = art.serve_precision;
  fleet_fingerprints_ = art.fleet ? art.fleet_fingerprints
                                  : std::vector<std::uint64_t>{};
  vocab_ = art.make_vocab();
  tensors_.clear();
  tensors_.reserve(graphs_.size());
  for (const auto& g : graphs_) tensors_.push_back(graph::to_tensors(g, vocab_));

  counter_mean_ = art.counter_mean;
  counter_std_ = art.counter_std;

  nn::RgcnNetConfig nc;
  nc.vocab_size = vocab_.size();
  nc.emb_dim = opt_.emb_dim;
  nc.rgcn_layers = opt_.rgcn_layers;
  nc.hidden = opt_.hidden;
  nc.dense_hidden1 = opt_.dense_hidden1;
  nc.dense_hidden2 = opt_.dense_hidden2;
  nc.extra_features = art.extra_features;
  nc.num_bases = opt_.num_bases;
  nc.seed = opt_.seed;
  nc.head_sizes = art.head_sizes;
  net_ = std::make_unique<nn::RgcnNet>(nc);
  net_->load_state_dict(art.net_weights);
}

StateDict PnpTuner::state() const {
  PNP_CHECK_MSG(net_ != nullptr, "no trained model");
  return net_->state_dict();
}

void PnpTuner::import_gnn(const StateDict& sd, bool freeze_gnn) {
  pending_gnn_ = sd;
  pending_freeze_ = freeze_gnn;
}

const nn::RgcnNet& PnpTuner::net() const {
  PNP_CHECK_MSG(net_ != nullptr, "no trained model");
  return *net_;
}

const graph::FlowGraph& PnpTuner::region_graph(int region) const {
  return graphs_.at(static_cast<std::size_t>(region));
}

}  // namespace pnp::core
