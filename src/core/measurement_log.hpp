#pragma once

/// \file measurement_log.hpp
/// Durable append-only store of runtime measurements — the ingestion half
/// of the serving feedback loop (docs/SERVING.md, "Model lifecycle").
/// Observed (region, config, cap, runtime/energy) samples arrive through
/// the `observe` protocol op, land here as length-prefixed records, and
/// are later replayed onto a MeasurementDb copy that the background
/// retrainer fine-tunes on.
///
/// File format (little-endian, versioned by the magic):
///
///   8 bytes  "PNPMLOG1"
///   per record:
///     u32 len      payload length (fixed 37 today; bounded, never trusted)
///     u32 region   db region index
///     f64 cap_w    power cap in watts (must match a search-space cap)
///     u32 threads  OpenMP configuration
///     u8  sched    sim::Schedule (< kNumSchedules)
///     u32 chunk
///     f64 seconds  measured runtime (finite, > 0)
///     f64 joules   measured package energy (finite, > 0)
///
/// The reader treats the file as hostile, exactly like the StateDict
/// loader: every length is bounded, every value validated, truncation /
/// trailing bytes / absurd values throw pnp::Error and nothing is
/// half-applied. The writer is sticky-failing: after any append error the
/// log refuses further appends, so a torn tail can never grow into a
/// longer corrupt file behind already-acknowledged records.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sim/omp_config.hpp"

namespace pnp::core {

class MeasurementDb;

/// One observed measurement, as carried by the wire op and the log.
struct MeasurementRecord {
  int region = 0;
  double cap_w = 0.0;
  sim::OmpConfig config;
  double seconds = 0.0;
  double joules = 0.0;
};

/// Where a record lands on a MeasurementDb grid.
struct GridCell {
  int region = 0;
  int cap = 0;
  int candidate = 0;
};

/// Value-sanity check shared by append and read: finite positive
/// measurements, a known schedule, non-negative indices. Throws
/// pnp::Error naming the offending field.
void validate_measurement(const MeasurementRecord& rec);

/// Map a record onto `db`'s grid or throw pnp::Error: the region must be
/// in range, the cap must match a search-space cap exactly, and the
/// configuration must be a grid candidate (or the default config, which
/// maps to the default slot). Nothing is mutated.
GridCell locate_observation(const MeasurementDb& db,
                            const MeasurementRecord& rec);

/// Replay records[from..) onto `db`, all-or-nothing: every record is
/// located (and so validated) before any cell is overwritten, so a
/// poisoned batch never leaves the db half-applied. Returns the number of
/// records applied.
std::size_t replay_observations(MeasurementDb& db,
                                const std::vector<MeasurementRecord>& records,
                                std::size_t from = 0);

class MeasurementLog {
 public:
  /// Open `path` for appending, creating it (with the magic) if absent.
  /// An existing file is fully validated first — a torn or corrupt log is
  /// rejected here, before the daemon ever acknowledges an observe.
  explicit MeasurementLog(const std::string& path);

  MeasurementLog(const MeasurementLog&) = delete;
  MeasurementLog& operator=(const MeasurementLog&) = delete;

  /// Durably append one record (validated, encoded, written and flushed
  /// in one call) and return its 1-based sequence number. Thread-safe.
  /// Throws pnp::Error on invalid records or I/O failure; after an I/O
  /// failure the log is sticky-failed and every later append throws too.
  std::uint64_t append(const MeasurementRecord& rec);

  /// Records in the log (pre-existing + appended). Thread-safe.
  std::uint64_t size() const;

  const std::string& path() const { return path_; }

  /// Hardened bulk reader: parse and validate the whole file. Throws
  /// pnp::Error on a bad magic, truncated record, oversized length claim,
  /// trailing bytes, or any invalid field — a poisoned log yields no
  /// records at all, never a prefix.
  static std::vector<MeasurementRecord> read_all(const std::string& path);

 private:
  mutable std::mutex mu_;
  std::string path_;
  std::uint64_t count_ = 0;
  bool failed_ = false;
};

}  // namespace pnp::core
