#include "core/tuner_artifact.hpp"

#include <cmath>
#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "core/measurement_db.hpp"
#include "core/pnp_tuner.hpp"
#include "core/search_space.hpp"
#include "hw/machine_generator.hpp"

namespace pnp::core {

namespace {

constexpr const char* kNetPrefix = "net.";

double get_scalar(const StateDict& sd, const std::string& name) {
  const auto& v = sd.get(name);
  PNP_CHECK_MSG(v.size() == 1,
                "artifact entry '" << name << "' must hold exactly one value");
  return v[0];
}

std::vector<int> get_int_array(const StateDict& sd, const std::string& name) {
  std::vector<int> out;
  for (double d : sd.get(name)) {
    // Range-check before the cast: float→int conversion of an
    // unrepresentable value (1e300, NaN) is undefined behavior.
    PNP_CHECK_MSG(std::isfinite(d) && d >= -2147483648.0 &&
                      d < 2147483648.0 && d == std::floor(d),
                  "artifact entry '" << name
                                     << "' holds a non-integer value");
    out.push_back(static_cast<int>(d));
  }
  return out;
}

std::vector<double> to_doubles(const std::vector<int>& v) {
  return std::vector<double>(v.begin(), v.end());
}

// Fleet fingerprints travel as a newline-joined string of fixed-width hex
// values: StateDict arrays are f64-only and a u64 does not round-trip
// through a double, while the textual form is exact and byte-stable.
std::string encode_fingerprints(const std::vector<std::uint64_t>& fps) {
  std::string out;
  for (std::uint64_t fp : fps) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(fp));
    if (!out.empty()) out += '\n';
    out += buf;
  }
  return out;
}

std::vector<std::uint64_t> decode_fingerprints(const std::string& joined) {
  std::vector<std::uint64_t> out;
  if (joined.empty()) return out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t end = joined.find('\n', start);
    const std::string tok = joined.substr(
        start, end == std::string::npos ? std::string::npos : end - start);
    PNP_CHECK_MSG(tok.size() == 16,
                  "fleet fingerprint entry must be 16 hex digits, got '"
                      << tok << "'");
    std::uint64_t v = 0;
    for (char c : tok) {
      int d = 0;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = 10 + (c - 'a');
      else
        PNP_CHECK_MSG(false, "fleet fingerprint entry holds a non-hex "
                             "character: '" << tok << "'");
      v = (v << 4) | static_cast<std::uint64_t>(d);
    }
    out.push_back(v);
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

}  // namespace

void TunerArtifact::set_options(const PnpOptions& o) {
  opt_use_counters = o.use_counters;
  opt_cap_onehot = o.cap_onehot;
  opt_factored_heads = o.factored_heads;
  opt_machine_features = o.machine_features;
  opt_emb_dim = o.emb_dim;
  opt_rgcn_layers = o.rgcn_layers;
  opt_hidden = o.hidden;
  opt_dense_hidden1 = o.dense_hidden1;
  opt_dense_hidden2 = o.dense_hidden2;
  opt_num_bases = o.num_bases;
  opt_use_adamw = o.use_adamw;
  opt_lr = o.lr;
  opt_weight_decay = o.weight_decay;
  opt_train_cap_indices = o.train_cap_indices;
  opt_seed = o.seed;
  opt_trainer_max_epochs = o.trainer.max_epochs;
  opt_trainer_batch_size = o.trainer.batch_size;
  opt_trainer_patience = o.trainer.patience;
  opt_trainer_min_loss = o.trainer.min_loss;
  opt_trainer_seed = o.trainer.seed;
}

PnpOptions TunerArtifact::options() const {
  PnpOptions o;
  o.use_counters = opt_use_counters;
  o.cap_onehot = opt_cap_onehot;
  o.factored_heads = opt_factored_heads;
  o.machine_features = opt_machine_features;
  o.emb_dim = opt_emb_dim;
  o.rgcn_layers = opt_rgcn_layers;
  o.hidden = opt_hidden;
  o.dense_hidden1 = opt_dense_hidden1;
  o.dense_hidden2 = opt_dense_hidden2;
  o.num_bases = opt_num_bases;
  o.use_adamw = opt_use_adamw;
  o.lr = opt_lr;
  o.weight_decay = opt_weight_decay;
  o.train_cap_indices = opt_train_cap_indices;
  o.seed = opt_seed;
  o.trainer.max_epochs = opt_trainer_max_epochs;
  o.trainer.batch_size = opt_trainer_batch_size;
  o.trainer.patience = opt_trainer_patience;
  o.trainer.min_loss = opt_trainer_min_loss;
  o.trainer.seed = opt_trainer_seed;
  return o;
}

void TunerArtifact::set_space(const SearchSpace& space) {
  space_threads = space.thread_values();
  space_chunks = space.chunk_values();
  space_caps = space.power_caps();
  space_schedules = space.num_schedule_classes();
  space_constraints.clear();
  for (const ConstraintRule& r : space.constraints()) {
    space_constraints.push_back(static_cast<double>(static_cast<int>(r.kind)));
    space_constraints.push_back(r.a);
    space_constraints.push_back(r.b);
  }
  has_constraint_fingerprint = true;
}

std::vector<ConstraintRule> TunerArtifact::constraint_rules() const {
  PNP_CHECK_MSG(space_constraints.size() % 3 == 0,
                "constraint fingerprint length must be a multiple of 3");
  std::vector<ConstraintRule> rules;
  for (std::size_t i = 0; i < space_constraints.size(); i += 3) {
    const double kd = space_constraints[i];
    PNP_CHECK_MSG(std::isfinite(kd) && kd == std::floor(kd) && kd >= 0.0 &&
                      kd < static_cast<double>(kNumConstraintKinds),
                  "unknown constraint kind in fingerprint: " << kd);
    const double a = space_constraints[i + 1], b = space_constraints[i + 2];
    PNP_CHECK_MSG(std::isfinite(a) && std::isfinite(b),
                  "constraint parameters must be finite");
    rules.push_back({static_cast<ConstraintRule::Kind>(static_cast<int>(kd)),
                     a, b});
  }
  return rules;
}

graph::Vocabulary TunerArtifact::make_vocab() const {
  graph::Vocabulary v;
  for (const auto& tok : vocab_tokens) v.add(tok);
  PNP_CHECK_MSG(v.size() == static_cast<int>(vocab_tokens.size()) + 1,
                "artifact vocabulary contains duplicate tokens");
  return v;
}

StateDict TunerArtifact::to_state_dict() const {
  StateDict sd;
  sd.put_string("artifact.kind", kKind);
  sd.put_int("artifact.version", kFormatVersion);
  sd.put_int("tuner.mode", static_cast<int>(mode));

  sd.put_int("opt.use_counters", opt_use_counters ? 1 : 0);
  sd.put_int("opt.cap_onehot", opt_cap_onehot ? 1 : 0);
  sd.put_int("opt.factored_heads", opt_factored_heads ? 1 : 0);
  sd.put_int("opt.machine_features", opt_machine_features ? 1 : 0);
  sd.put_int("opt.emb_dim", opt_emb_dim);
  sd.put_int("opt.rgcn_layers", opt_rgcn_layers);
  sd.put_int("opt.hidden", opt_hidden);
  sd.put_int("opt.dense_hidden1", opt_dense_hidden1);
  sd.put_int("opt.dense_hidden2", opt_dense_hidden2);
  sd.put_int("opt.num_bases", opt_num_bases);
  sd.put_int("opt.use_adamw", opt_use_adamw ? 1 : 0);
  sd.put("opt.lr", {opt_lr});
  sd.put("opt.weight_decay", {opt_weight_decay});
  sd.put("opt.train_cap_indices", to_doubles(opt_train_cap_indices));
  sd.put_int("opt.seed", static_cast<std::int64_t>(opt_seed));
  sd.put_int("opt.trainer.max_epochs", opt_trainer_max_epochs);
  sd.put_int("opt.trainer.batch_size", opt_trainer_batch_size);
  sd.put_int("opt.trainer.patience", opt_trainer_patience);
  sd.put("opt.trainer.min_loss", {opt_trainer_min_loss});
  sd.put_int("opt.trainer.seed", static_cast<std::int64_t>(opt_trainer_seed));

  std::string joined;
  for (std::size_t i = 0; i < vocab_tokens.size(); ++i) {
    const std::string& tok = vocab_tokens[i];
    PNP_CHECK_MSG(!tok.empty() && tok.find('\n') == std::string::npos,
                  "vocabulary token " << i << " is empty or contains '\\n'");
    if (i) joined += '\n';
    joined += tok;
  }
  sd.put_int("vocab.count", static_cast<std::int64_t>(vocab_tokens.size()));
  sd.put_string("vocab.tokens", joined);

  sd.put("norm.counter_mean", counter_mean);
  sd.put("norm.counter_std", counter_std);

  sd.put("model.head_sizes", to_doubles(head_sizes));
  sd.put_int("model.extra_features", extra_features);
  sd.put_int("serve.precision",
             serve_precision == nn::Precision::f32 ? 1 : 0);
  sd.put_int("model.vocab_size",
             static_cast<std::int64_t>(vocab_tokens.size()) + 1);

  sd.put("space.threads", to_doubles(space_threads));
  sd.put("space.chunks", to_doubles(space_chunks));
  sd.put("space.caps", space_caps);
  sd.put_int("space.schedules", space_schedules);
  // v3: the constraint fingerprint is written even when empty — its
  // presence is what distinguishes "trained on an unconstrained space"
  // from "predates the constraint layer".
  sd.put("space.constraints", space_constraints);

  // v4: machine identity. Saving without a recorded machine is an error —
  // only loaded pre-v4 files may carry fingerprint 0, and they keep their
  // original version on round-trip semantics by never reaching save
  // (PnpTuner always stamps the identity before writing).
  PNP_CHECK_MSG(machine_fingerprint != 0 && !machine_name.empty(),
                "artifact is missing its machine identity (v4 requires the "
                "training machine's name and fingerprint)");
  PNP_CHECK_MSG(!fleet || !fleet_fingerprints.empty(),
                "fleet artifact must list its training machines");
  sd.put_string("machine.name", machine_name);
  sd.put_int("machine.fingerprint",
             static_cast<std::int64_t>(machine_fingerprint));
  sd.put_int("machine.fleet", fleet ? 1 : 0);
  sd.put_string("machine.fleet_fingerprints",
                encode_fingerprints(fleet_fingerprints));

  for (const auto& name : net_weights.names())
    sd.put(kNetPrefix + name, net_weights.get(name));
  return sd;
}

TunerArtifact TunerArtifact::from_state_dict(const StateDict& sd) {
  PNP_CHECK_MSG(sd.contains_string("artifact.kind") &&
                    sd.get_string("artifact.kind") == kKind,
                "not a pnp-tuner artifact");
  const std::int64_t version = sd.get_int("artifact.version");
  PNP_CHECK_MSG(version >= 1 && version <= kFormatVersion,
                "unsupported artifact version " << version << " (this build "
                "understands <= " << kFormatVersion << ")");

  TunerArtifact a;
  a.version = version;
  const std::int64_t mode = sd.get_int("tuner.mode");
  PNP_CHECK_MSG(mode == 1 || mode == 2,
                "artifact holds no trained scenario (mode " << mode << ")");
  a.mode = static_cast<Mode>(mode);

  a.opt_use_counters = sd.get_int("opt.use_counters") != 0;
  a.opt_cap_onehot = sd.get_int("opt.cap_onehot") != 0;
  a.opt_factored_heads = sd.get_int("opt.factored_heads") != 0;
  // Network dimensions feed allocations at RgcnNet construction; bound
  // them here so a crafted artifact fails with pnp::Error, not bad_alloc.
  const auto checked_dim = [&sd](const char* name, std::int64_t lo) {
    const std::int64_t v = sd.get_int(name);
    PNP_CHECK_MSG(v >= lo && v <= (1 << 16),
                  "artifact option " << name << " out of range: " << v);
    return static_cast<int>(v);
  };
  a.opt_emb_dim = checked_dim("opt.emb_dim", 1);
  a.opt_rgcn_layers = checked_dim("opt.rgcn_layers", 1);
  a.opt_hidden = checked_dim("opt.hidden", 1);
  a.opt_dense_hidden1 = checked_dim("opt.dense_hidden1", 1);
  a.opt_dense_hidden2 = checked_dim("opt.dense_hidden2", 1);
  a.opt_num_bases = checked_dim("opt.num_bases", 0);
  a.opt_use_adamw = sd.get_int("opt.use_adamw") != 0;
  a.opt_lr = get_scalar(sd, "opt.lr");
  a.opt_weight_decay = get_scalar(sd, "opt.weight_decay");
  a.opt_train_cap_indices = get_int_array(sd, "opt.train_cap_indices");
  a.opt_seed = static_cast<std::uint64_t>(sd.get_int("opt.seed"));
  a.opt_trainer_max_epochs =
      static_cast<int>(sd.get_int("opt.trainer.max_epochs"));
  a.opt_trainer_batch_size =
      static_cast<int>(sd.get_int("opt.trainer.batch_size"));
  a.opt_trainer_patience = static_cast<int>(sd.get_int("opt.trainer.patience"));
  a.opt_trainer_min_loss = get_scalar(sd, "opt.trainer.min_loss");
  a.opt_trainer_seed =
      static_cast<std::uint64_t>(sd.get_int("opt.trainer.seed"));

  const std::int64_t vocab_count = sd.get_int("vocab.count");
  PNP_CHECK_MSG(vocab_count >= 0 && vocab_count < (1LL << 32),
                "unreasonable vocabulary count " << vocab_count);
  const std::string& joined = sd.get_string("vocab.tokens");
  if (vocab_count > 0) {
    std::size_t start = 0;
    for (std::int64_t i = 0; i < vocab_count; ++i) {
      const std::size_t end = joined.find('\n', start);
      const bool last = i + 1 == vocab_count;
      PNP_CHECK_MSG(last ? end == std::string::npos : end != std::string::npos,
                    "vocab.tokens holds a different token count than "
                    "vocab.count");
      const std::string tok = joined.substr(
          start, last ? std::string::npos : end - start);
      PNP_CHECK_MSG(!tok.empty(), "empty vocabulary token " << i);
      a.vocab_tokens.push_back(tok);
      start = end + 1;
    }
  } else {
    PNP_CHECK_MSG(joined.empty(),
                  "vocab.tokens non-empty but vocab.count is zero");
  }
  PNP_CHECK_MSG(sd.get_int("model.vocab_size") == vocab_count + 1,
                "model.vocab_size disagrees with vocab.count");

  a.counter_mean = sd.get("norm.counter_mean");
  a.counter_std = sd.get("norm.counter_std");
  PNP_CHECK_MSG(a.counter_mean.size() == a.counter_std.size(),
                "counter mean/std length mismatch");
  PNP_CHECK_MSG(!a.opt_use_counters || !a.counter_mean.empty(),
                "counters enabled but no normalization stats stored");

  a.head_sizes = get_int_array(sd, "model.head_sizes");
  PNP_CHECK_MSG(!a.head_sizes.empty(), "artifact has no classifier heads");
  for (int h : a.head_sizes)
    PNP_CHECK_MSG(h > 0 && h <= (1 << 20),
                  "classifier head size out of range: " << h);
  a.extra_features = static_cast<int>(sd.get_int("model.extra_features"));
  PNP_CHECK_MSG(a.extra_features >= 0 && a.extra_features <= (1 << 20),
                "extra-feature count out of range: " << a.extra_features);

  // Optional (added with the f32 inference tier); absent entry → f64.
  if (sd.contains_int("serve.precision")) {
    const std::int64_t p = sd.get_int("serve.precision");
    PNP_CHECK_MSG(p == 0 || p == 1,
                  "serve.precision must be 0 (f64) or 1 (f32), got " << p);
    a.serve_precision = p == 1 ? nn::Precision::f32 : nn::Precision::f64;
  }

  if (version >= 2) {
    // The search-space fingerprint is mandatory from v2 on (it may be
    // empty only for artifacts round-tripped from v1 files, which then
    // skip the fingerprint check at validation time).
    a.space_threads = get_int_array(sd, "space.threads");
    a.space_chunks = get_int_array(sd, "space.chunks");
    a.space_caps = sd.get("space.caps");
    a.space_schedules = static_cast<int>(sd.get_int("space.schedules"));
    PNP_CHECK_MSG(a.space_threads.size() <= 4096 &&
                      a.space_chunks.size() <= 4096 &&
                      a.space_caps.size() <= 4096 && a.space_schedules >= 0 &&
                      a.space_schedules <= 4096,
                  "unreasonable search-space fingerprint");
  }

  if (version >= 3) {
    // The constraint fingerprint is mandatory from v3 on; empty means the
    // space genuinely carries no rules. Decoding validates triple shape,
    // rule kinds, and finiteness, so a malformed fingerprint fails here
    // with pnp::Error rather than mis-scoring at serve time.
    a.space_constraints = sd.get("space.constraints");
    PNP_CHECK_MSG(a.space_constraints.size() <= 3 * 4096,
                  "unreasonable constraint fingerprint");
    a.has_constraint_fingerprint = true;
    (void)a.constraint_rules();
  }

  if (version >= 4) {
    // Machine identity is mandatory from v4 on; pre-v4 files leave
    // machine_fingerprint at 0, which routes validate_artifact onto the
    // legacy (no machine check) path.
    a.opt_machine_features = sd.get_int("opt.machine_features") != 0;
    a.machine_name = sd.get_string("machine.name");
    a.machine_fingerprint =
        static_cast<std::uint64_t>(sd.get_int("machine.fingerprint"));
    PNP_CHECK_MSG(!a.machine_name.empty() && a.machine_fingerprint != 0,
                  "v4 artifact must record its training machine's name and "
                  "fingerprint");
    a.fleet = sd.get_int("machine.fleet") != 0;
    a.fleet_fingerprints =
        decode_fingerprints(sd.get_string("machine.fleet_fingerprints"));
    PNP_CHECK_MSG(a.fleet_fingerprints.size() <= 4096,
                  "unreasonable fleet fingerprint count "
                      << a.fleet_fingerprints.size());
    PNP_CHECK_MSG(!a.fleet || !a.fleet_fingerprints.empty(),
                  "fleet artifact must list its training machines");
    PNP_CHECK_MSG(!a.fleet || a.opt_machine_features,
                  "fleet artifact must carry machine-conditioned features");
  }

  const std::string prefix = kNetPrefix;
  for (const auto& name : sd.names())
    if (name.rfind(prefix, 0) == 0)
      a.net_weights.put(name.substr(prefix.size()), sd.get(name));
  PNP_CHECK_MSG(a.net_weights.size() > 0, "artifact has no network weights");
  return a;
}

void TunerArtifact::save_file(const std::string& path) const {
  to_state_dict().save_file(path);
}

TunerArtifact TunerArtifact::load_file(const std::string& path) {
  return from_state_dict(StateDict::load_file(path));
}

std::vector<int> tuner_head_layout(const SearchSpace& space,
                                   bool factored_heads, bool edp_scenario) {
  const int per_cap = space.num_thread_classes() *
                      space.num_schedule_classes() * space.num_chunk_classes();
  if (factored_heads) {
    if (edp_scenario)
      return {space.num_cap_classes(), space.num_thread_classes(),
              space.num_schedule_classes(), space.num_chunk_classes()};
    return {space.num_thread_classes(), space.num_schedule_classes(),
            space.num_chunk_classes()};
  }
  return {edp_scenario ? space.num_cap_classes() * per_cap : per_cap};
}

TunerClasses tuner_classes_for(const SearchSpace& space,
                               const sim::OmpConfig& cfg, int cap_index) {
  TunerClasses c;
  c.cap = cap_index;
  c.thread = space.thread_class(cfg.threads);
  c.sched = -1;
  for (std::size_t i = 0; i < space.schedule_values().size(); ++i)
    if (space.schedule_values()[i] == cfg.schedule) c.sched = static_cast<int>(i);
  PNP_CHECK_MSG(c.sched >= 0, "schedule not in search space");
  c.chunk = space.chunk_class(cfg.chunk);
  return c;
}

int tuner_flat_class(const SearchSpace& space, const TunerClasses& c,
                     bool edp_scenario) {
  const int flat = (c.thread * space.num_schedule_classes() + c.sched) *
                       space.num_chunk_classes() +
                   c.chunk;
  if (!edp_scenario) return flat;
  const int per_cap = space.num_thread_classes() *
                      space.num_schedule_classes() * space.num_chunk_classes();
  return c.cap * per_cap + flat;
}

TunerClasses tuner_classes_from_flat(const SearchSpace& space, int flat,
                                     bool edp_scenario) {
  TunerClasses c;
  if (edp_scenario) {
    const int per_cap = space.num_thread_classes() *
                        space.num_schedule_classes() *
                        space.num_chunk_classes();
    c.cap = flat / per_cap;
    flat %= per_cap;
  }
  c.chunk = flat % space.num_chunk_classes();
  c.sched = (flat / space.num_chunk_classes()) % space.num_schedule_classes();
  c.thread = flat / (space.num_chunk_classes() * space.num_schedule_classes());
  return c;
}

std::vector<int> tuner_labels(const SearchSpace& space, const TunerClasses& c,
                              bool factored_heads, bool edp_scenario) {
  if (factored_heads) {
    if (edp_scenario) return {c.cap, c.thread, c.sched, c.chunk};
    return {c.thread, c.sched, c.chunk};
  }
  return {tuner_flat_class(space, c, edp_scenario)};
}

int tuner_extra_feature_count(bool power_scenario, bool cap_onehot,
                              int num_caps, bool use_counters,
                              bool machine_features) {
  int n = 0;
  if (power_scenario) n += cap_onehot ? num_caps : 1;
  if (use_counters) n += kNumProfiledCounters;
  if (machine_features) n += hw::kNumMachineFeatures;
  return n;
}

void validate_artifact(const TunerArtifact& art, const MeasurementDb& db) {
  PNP_CHECK_MSG(art.mode != TunerArtifact::Mode::None,
                "artifact holds no trained scenario");
  const bool edp = art.mode == TunerArtifact::Mode::Edp;
  const SearchSpace& space = db.space();

  // The classifier layout the db's search space demands: loading a tuner
  // against an incompatible machine is an error, not a silent
  // misprediction (cross-machine reuse goes through import_gnn instead).
  PNP_CHECK_MSG(
      art.head_sizes == tuner_head_layout(space, art.opt_factored_heads, edp),
      "artifact head layout does not match this measurement db's search "
      "space");
  PNP_CHECK_MSG(art.extra_features ==
                    tuner_extra_feature_count(!edp, art.opt_cap_onehot,
                                              db.num_caps(),
                                              art.opt_use_counters,
                                              art.opt_machine_features),
                "artifact extra-feature count " << art.extra_features
                                                << " does not match this "
                                                   "db/options layout");
  if (art.opt_use_counters)
    PNP_CHECK_MSG(art.counter_mean.size() ==
                      static_cast<std::size_t>(kNumProfiledCounters),
                  "artifact stores " << art.counter_mean.size()
                                     << " counter stats, expected "
                                     << kNumProfiledCounters);
  for (int k : art.opt_train_cap_indices)
    PNP_CHECK_MSG(k >= 0 && k < db.num_caps(),
                  "artifact train-cap index " << k << " out of range [0, "
                                              << db.num_caps() << ")");

  // v4+ artifacts pin the exact training machine: a single-machine model
  // serves only the machine it was swept on. Fleet artifacts instead carry
  // machine-conditioned features and are checked shape-only below — that
  // is the unseen-machine transfer path (docs/HARDWARE.md). Fingerprint 0
  // means pre-v4, never recorded: legacy path, machine check skipped.
  if (art.machine_fingerprint != 0 && !art.fleet) {
    const std::uint64_t here = hw::machine_fingerprint(db.machine());
    PNP_CHECK_MSG(art.machine_fingerprint == here,
                  "artifact was trained on machine '"
                      << art.machine_name << "' but this db was swept on '"
                      << db.machine().name
                      << "' — cross-machine serving needs a fleet artifact "
                         "(docs/HARDWARE.md)");
  }

  // v2+ artifacts carry the exact space they were trained on; two machines
  // can share a head layout (Haswell/Skylake both classify 6×3×8 over 4
  // caps) yet mean different things by class i, so compare the values.
  // Fleet artifacts relax this to shape-only: thread/cap *values* differ
  // per machine by design, and the machine features carry that identity
  // into the model instead.
  if (!art.space_threads.empty() || !art.space_chunks.empty() ||
      !art.space_caps.empty() || art.space_schedules != 0) {
    if (art.fleet) {
      PNP_CHECK_MSG(art.opt_machine_features,
                    "fleet artifact must carry machine-conditioned features");
      PNP_CHECK_MSG(
          art.space_threads.size() == space.thread_values().size() &&
              art.space_chunks.size() == space.chunk_values().size() &&
              art.space_caps.size() == space.power_caps().size() &&
              art.space_schedules == space.num_schedule_classes(),
          "fleet artifact search-space shape does not match this machine's "
          "space (thread/chunk/cap grid sizes must agree across the fleet)");
    } else {
      PNP_CHECK_MSG(art.space_threads == space.thread_values() &&
                        art.space_chunks == space.chunk_values() &&
                        art.space_caps == space.power_caps() &&
                        art.space_schedules == space.num_schedule_classes(),
                    "artifact was trained against a different search space "
                    "(thread/chunk/cap grid mismatch) — cross-machine reuse "
                    "goes through import_gnn, not load");
    }
  }

  // v3+ artifacts additionally pin the constraint layer: a model trained
  // with one validity rule set must not silently serve a space with
  // another (the labels themselves depend on what the oracle may pick).
  // Pre-v3 artifacts never recorded rules; they may serve only
  // unconstrained spaces (the legacy path).
  if (art.has_constraint_fingerprint) {
    PNP_CHECK_MSG(art.constraint_rules() == space.constraints(),
                  "artifact was trained under a different constraint set "
                  "than this search space carries");
  } else {
    PNP_CHECK_MSG(!space.has_constraints(),
                  "pre-v3 artifact (no constraint fingerprint) cannot serve "
                  "a constraint-carrying search space — retrain and save as "
                  "v3");
  }
}

}  // namespace pnp::core
