#include "core/config_search.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "core/tuner_artifact.hpp"
#include "nn/loss.hpp"

namespace pnp::core {

namespace {

/// A partially expanded class tuple. Unexpanded dimensions are -1.
struct Partial {
  double score = 0.0;
  int cap = -1;
  int thr = -1;
  int sch = -1;
  int chk = -1;
};

/// The deterministic ordering: score descending, then lexicographic
/// ascending class tuple — identical to `nn::argmax_index`'s first-max-wins
/// protocol, so an unconstrained full-width beam reproduces the historic
/// independent-argmax decode exactly.
bool better(const Partial& a, const Partial& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.cap != b.cap) return a.cap < b.cap;
  if (a.thr != b.thr) return a.thr < b.thr;
  if (a.sch != b.sch) return a.sch < b.sch;
  return a.chk < b.chk;
}

void trim(std::vector<Partial>& beam, int width) {
  std::sort(beam.begin(), beam.end(), better);
  if (width > 0 && beam.size() > static_cast<std::size_t>(width))
    beam.resize(static_cast<std::size_t>(width));
}

/// Class tuple of the machine default configuration — the guaranteed
/// fallback (always constraint-valid, always representable as a label).
template <typename T>
SearchChoice default_choice(const SearchSpace& space, int cap_cls,
                            double cap_base_score,
                            std::span<const T> thread_logits,
                            std::span<const T> sched_logits,
                            std::span<const T> chunk_logits) {
  const sim::OmpConfig def = space.default_config();
  SearchChoice c;
  c.cap_cls = cap_cls;
  c.thread_cls = space.thread_class(def.threads);
  for (std::size_t i = 0; i < space.schedule_values().size(); ++i)
    if (space.schedule_values()[i] == def.schedule)
      c.sched_cls = static_cast<int>(i);
  c.chunk_cls = 0;
  c.score = cap_base_score +
            static_cast<double>(thread_logits[static_cast<std::size_t>(c.thread_cls)]);
  c.score += static_cast<double>(sched_logits[static_cast<std::size_t>(c.sched_cls)]);
  c.score += static_cast<double>(chunk_logits[static_cast<std::size_t>(c.chunk_cls)]);
  c.used_fallback = true;
  return c;
}

/// Shared beam core. For power mode `cap_logits` is empty and the single
/// seed partial carries `fixed_cap_w` (cap_cls stays -1 in the result).
template <typename T>
SearchChoice beam_run(const SearchSpace& space, bool edp, double fixed_cap_w,
                      std::span<const T> cap_logits,
                      std::span<const T> thread_logits,
                      std::span<const T> sched_logits,
                      std::span<const T> chunk_logits, int beam_width) {
  std::vector<Partial> beam;
  if (edp) {
    for (std::size_t i = 0; i < cap_logits.size(); ++i)
      beam.push_back({static_cast<double>(cap_logits[i]),
                      static_cast<int>(i), -1, -1, -1});
    trim(beam, beam_width);
  } else {
    beam.push_back({0.0, -1, -1, -1, -1});
  }

  const std::vector<int>& threads = space.thread_values();
  const int def_threads = space.default_config().threads;
  std::vector<Partial> next;
  // Thread stage: thread-only rules are checkable here, so prune early.
  // The class holding the default thread count survives regardless (the
  // default config is exempt); its invalid siblings die at the chunk stage.
  for (const Partial& p : beam) {
    const double cap_w =
        edp ? space.power_caps()[static_cast<std::size_t>(p.cap)] : fixed_cap_w;
    const int tmax = space.max_valid_threads(cap_w);
    for (std::size_t i = 0; i < thread_logits.size(); ++i) {
      const int t = threads[i];
      if (t > tmax && t != def_threads) continue;
      next.push_back({p.score + static_cast<double>(thread_logits[i]), p.cap,
                      static_cast<int>(i), -1, -1});
    }
  }
  beam.swap(next);
  trim(beam, beam_width);

  next.clear();
  for (const Partial& p : beam)
    for (std::size_t i = 0; i < sched_logits.size(); ++i)
      next.push_back({p.score + static_cast<double>(sched_logits[i]), p.cap,
                      p.thr, static_cast<int>(i), -1});
  beam.swap(next);
  trim(beam, beam_width);

  // Chunk stage completes the tuple: this is where the constraint layer
  // filters (schedule- and product-rules need the full config).
  next.clear();
  for (const Partial& p : beam) {
    const double cap_w =
        edp ? space.power_caps()[static_cast<std::size_t>(p.cap)] : fixed_cap_w;
    for (std::size_t i = 0; i < chunk_logits.size(); ++i) {
      const sim::OmpConfig cfg = space.config_from_classes(
          p.thr, p.sch, static_cast<int>(i));
      if (!space.is_valid(cfg, cap_w)) continue;
      next.push_back({p.score + static_cast<double>(chunk_logits[i]), p.cap,
                      p.thr, p.sch, static_cast<int>(i)});
    }
  }

  if (next.empty()) {
    // Pruning emptied the beam: serve the machine default (always valid).
    if (edp) {
      SearchChoice best{};
      bool first = true;
      for (std::size_t i = 0; i < cap_logits.size(); ++i) {
        SearchChoice c = default_choice(space, static_cast<int>(i),
                                        static_cast<double>(cap_logits[i]),
                                        thread_logits, sched_logits,
                                        chunk_logits);
        if (first || c.score > best.score) best = c;
        first = false;
      }
      return best;
    }
    return default_choice(space, -1, 0.0, thread_logits, sched_logits,
                          chunk_logits);
  }

  const Partial& best = *std::min_element(
      next.begin(), next.end(),
      [](const Partial& a, const Partial& b) { return better(a, b); });
  return {best.cap, best.thr, best.sch, best.chk, best.score, false};
}

}  // namespace

template <typename T>
SearchChoice search_power(const SearchSpace& space, double cap_w,
                          std::span<const T> thread_logits,
                          std::span<const T> sched_logits,
                          std::span<const T> chunk_logits, int beam_width) {
  PNP_CHECK(static_cast<int>(thread_logits.size()) == space.num_thread_classes());
  PNP_CHECK(static_cast<int>(sched_logits.size()) == space.num_schedule_classes());
  PNP_CHECK(static_cast<int>(chunk_logits.size()) == space.num_chunk_classes());
  // Fast path: the per-head argmax tuple attains the maximum joint sum, so
  // if the constraint layer admits it, it is the joint argmax — no search.
  const int ti = nn::argmax_index(thread_logits);
  const int si = nn::argmax_index(sched_logits);
  const int ki = nn::argmax_index(chunk_logits);
  if (space.is_valid(space.config_from_classes(ti, si, ki), cap_w)) {
    double score = static_cast<double>(thread_logits[static_cast<std::size_t>(ti)]);
    score += static_cast<double>(sched_logits[static_cast<std::size_t>(si)]);
    score += static_cast<double>(chunk_logits[static_cast<std::size_t>(ki)]);
    return {-1, ti, si, ki, score, false};
  }
  return beam_run<T>(space, /*edp=*/false, cap_w, {}, thread_logits,
                     sched_logits, chunk_logits, beam_width);
}

template <typename T>
SearchChoice search_edp(const SearchSpace& space, std::span<const T> cap_logits,
                        std::span<const T> thread_logits,
                        std::span<const T> sched_logits,
                        std::span<const T> chunk_logits, int beam_width) {
  PNP_CHECK(static_cast<int>(cap_logits.size()) == space.num_cap_classes());
  PNP_CHECK(static_cast<int>(thread_logits.size()) == space.num_thread_classes());
  PNP_CHECK(static_cast<int>(sched_logits.size()) == space.num_schedule_classes());
  PNP_CHECK(static_cast<int>(chunk_logits.size()) == space.num_chunk_classes());
  const int ci = nn::argmax_index(cap_logits);
  const int ti = nn::argmax_index(thread_logits);
  const int si = nn::argmax_index(sched_logits);
  const int ki = nn::argmax_index(chunk_logits);
  const double cap_w = space.power_caps()[static_cast<std::size_t>(ci)];
  if (space.is_valid(space.config_from_classes(ti, si, ki), cap_w)) {
    double score = static_cast<double>(cap_logits[static_cast<std::size_t>(ci)]);
    score += static_cast<double>(thread_logits[static_cast<std::size_t>(ti)]);
    score += static_cast<double>(sched_logits[static_cast<std::size_t>(si)]);
    score += static_cast<double>(chunk_logits[static_cast<std::size_t>(ki)]);
    return {ci, ti, si, ki, score, false};
  }
  return beam_run<T>(space, /*edp=*/true, 0.0, cap_logits, thread_logits,
                     sched_logits, chunk_logits, beam_width);
}

template <typename T>
SearchChoice exhaustive_power(const SearchSpace& space, double cap_w,
                              std::span<const T> thread_logits,
                              std::span<const T> sched_logits,
                              std::span<const T> chunk_logits) {
  PNP_CHECK(static_cast<int>(thread_logits.size()) == space.num_thread_classes());
  PNP_CHECK(static_cast<int>(sched_logits.size()) == space.num_schedule_classes());
  PNP_CHECK(static_cast<int>(chunk_logits.size()) == space.num_chunk_classes());
  SearchChoice best{};
  bool found = false;
  for (std::size_t t = 0; t < thread_logits.size(); ++t) {
    const double st = 0.0 + static_cast<double>(thread_logits[t]);
    for (std::size_t s = 0; s < sched_logits.size(); ++s) {
      const double ss = st + static_cast<double>(sched_logits[s]);
      for (std::size_t k = 0; k < chunk_logits.size(); ++k) {
        const sim::OmpConfig cfg = space.config_from_classes(
            static_cast<int>(t), static_cast<int>(s), static_cast<int>(k));
        if (!space.is_valid(cfg, cap_w)) continue;
        const double sk = ss + static_cast<double>(chunk_logits[k]);
        if (!found || sk > best.score) {
          best = {-1, static_cast<int>(t), static_cast<int>(s),
                  static_cast<int>(k), sk, false};
          found = true;
        }
      }
    }
  }
  if (!found)
    return default_choice(space, -1, 0.0, thread_logits, sched_logits,
                          chunk_logits);
  return best;
}

template <typename T>
SearchChoice exhaustive_edp(const SearchSpace& space,
                            std::span<const T> cap_logits,
                            std::span<const T> thread_logits,
                            std::span<const T> sched_logits,
                            std::span<const T> chunk_logits) {
  PNP_CHECK(static_cast<int>(cap_logits.size()) == space.num_cap_classes());
  SearchChoice best{};
  bool found = false;
  for (std::size_t c = 0; c < cap_logits.size(); ++c) {
    const double cap_w = space.power_caps()[c];
    const double sc = static_cast<double>(cap_logits[c]);
    for (std::size_t t = 0; t < thread_logits.size(); ++t) {
      const double st = sc + static_cast<double>(thread_logits[t]);
      for (std::size_t s = 0; s < sched_logits.size(); ++s) {
        const double ss = st + static_cast<double>(sched_logits[s]);
        for (std::size_t k = 0; k < chunk_logits.size(); ++k) {
          const sim::OmpConfig cfg = space.config_from_classes(
              static_cast<int>(t), static_cast<int>(s), static_cast<int>(k));
          if (!space.is_valid(cfg, cap_w)) continue;
          const double sk = ss + static_cast<double>(chunk_logits[k]);
          if (!found || sk > best.score) {
            best = {static_cast<int>(c), static_cast<int>(t),
                    static_cast<int>(s), static_cast<int>(k), sk, false};
            found = true;
          }
        }
      }
    }
  }
  if (!found) {
    SearchChoice fb{};
    bool first = true;
    for (std::size_t c = 0; c < cap_logits.size(); ++c) {
      SearchChoice cand = default_choice(space, static_cast<int>(c),
                                         static_cast<double>(cap_logits[c]),
                                         thread_logits, sched_logits,
                                         chunk_logits);
      if (first || cand.score > fb.score) fb = cand;
      first = false;
    }
    return fb;
  }
  return best;
}

template <typename T>
int dense_argmax_valid(const SearchSpace& space, std::span<const T> logits,
                       bool edp_scenario, double cap_w) {
  int best = -1;
  double best_score = 0.0;
  for (int flat = 0; flat < static_cast<int>(logits.size()); ++flat) {
    const TunerClasses c = tuner_classes_from_flat(space, flat, edp_scenario);
    const sim::OmpConfig cfg =
        space.config_from_classes(c.thread, c.sched, c.chunk);
    const double w = edp_scenario
                         ? space.power_caps()[static_cast<std::size_t>(c.cap)]
                         : cap_w;
    if (!space.is_valid(cfg, w)) continue;
    const double score =
        static_cast<double>(logits[static_cast<std::size_t>(flat)]);
    if (best < 0 || score > best_score) {
      best = flat;
      best_score = score;
    }
  }
  return best;
}

// The serving layer scores at both precision tiers.
template SearchChoice search_power<double>(const SearchSpace&, double,
                                           std::span<const double>,
                                           std::span<const double>,
                                           std::span<const double>, int);
template SearchChoice search_power<float>(const SearchSpace&, double,
                                          std::span<const float>,
                                          std::span<const float>,
                                          std::span<const float>, int);
template SearchChoice search_edp<double>(const SearchSpace&,
                                         std::span<const double>,
                                         std::span<const double>,
                                         std::span<const double>,
                                         std::span<const double>, int);
template SearchChoice search_edp<float>(const SearchSpace&,
                                        std::span<const float>,
                                        std::span<const float>,
                                        std::span<const float>,
                                        std::span<const float>, int);
template SearchChoice exhaustive_power<double>(const SearchSpace&, double,
                                               std::span<const double>,
                                               std::span<const double>,
                                               std::span<const double>);
template SearchChoice exhaustive_power<float>(const SearchSpace&, double,
                                              std::span<const float>,
                                              std::span<const float>,
                                              std::span<const float>);
template SearchChoice exhaustive_edp<double>(const SearchSpace&,
                                             std::span<const double>,
                                             std::span<const double>,
                                             std::span<const double>,
                                             std::span<const double>);
template SearchChoice exhaustive_edp<float>(const SearchSpace&,
                                            std::span<const float>,
                                            std::span<const float>,
                                            std::span<const float>,
                                            std::span<const float>);
template int dense_argmax_valid<double>(const SearchSpace&,
                                        std::span<const double>, bool, double);
template int dense_argmax_valid<float>(const SearchSpace&,
                                       std::span<const float>, bool, double);

}  // namespace pnp::core
