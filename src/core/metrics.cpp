#include "core/metrics.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"

namespace pnp::core {

double speedup(double t_default, double t_chosen) {
  PNP_CHECK(t_default > 0.0 && t_chosen > 0.0);
  return t_default / t_chosen;
}

double greenup(double e_default, double e_chosen) {
  PNP_CHECK(e_default > 0.0 && e_chosen > 0.0);
  return e_default / e_chosen;
}

double edp_improvement(double edp_default, double edp_chosen) {
  PNP_CHECK(edp_default > 0.0 && edp_chosen > 0.0);
  return edp_default / edp_chosen;
}

double normalized_speedup(double t_best, double t_chosen) {
  PNP_CHECK(t_best > 0.0 && t_chosen > 0.0);
  return t_best / t_chosen;
}

PerAppGeomean per_app_geomean(std::span<const std::string> app_of_value,
                              std::span<const double> values) {
  PNP_CHECK(app_of_value.size() == values.size());
  PerAppGeomean out;
  std::map<std::string, std::vector<double>> buckets;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (buckets.find(app_of_value[i]) == buckets.end())
      out.apps.push_back(app_of_value[i]);
    buckets[app_of_value[i]].push_back(values[i]);
  }
  for (const auto& app : out.apps) out.geomeans.push_back(geomean(buckets[app]));
  return out;
}

}  // namespace pnp::core
