#include "core/fleet.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pnp::core {

Fleet::Fleet(std::uint64_t seed, int count,
             const std::vector<workloads::Corpus::RegionRef>& regions)
    : seed_(seed) {
  PNP_CHECK_MSG(count >= 1, "a fleet needs at least one machine, got "
                                << count);
  PNP_CHECK_MSG(!regions.empty(), "a fleet needs at least one region");
  const hw::MachineGenerator gen(seed);
  machines_ = gen.fleet(count);
  sims_.reserve(machines_.size());
  dbs_.reserve(machines_.size());
  for (const hw::MachineModel& m : machines_) {
    sims_.push_back(std::make_unique<sim::Simulator>(m));
    dbs_.push_back(std::make_unique<MeasurementDb>(
        *sims_.back(), SearchSpace::for_machine(m), regions));
  }
}

const hw::MachineModel& Fleet::machine(int i) const {
  PNP_CHECK(i >= 0 && i < size());
  return machines_[static_cast<std::size_t>(i)];
}

const sim::Simulator& Fleet::sim(int i) const {
  PNP_CHECK(i >= 0 && i < size());
  return *sims_[static_cast<std::size_t>(i)];
}

const MeasurementDb& Fleet::db(int i) const {
  PNP_CHECK(i >= 0 && i < size());
  return *dbs_[static_cast<std::size_t>(i)];
}

FleetEvaluator::FleetEvaluator(const Fleet& fleet) : fleet_(fleet) {}

TunerArtifact FleetEvaluator::train(int holdout, const PnpOptions& base) const {
  PNP_CHECK_MSG(holdout >= 1, "unseen-machine split needs >= 1 held-out "
                              "machine, got " << holdout);
  const int train_count = fleet_.size() - holdout;
  PNP_CHECK_MSG(train_count >= 1,
                "unseen-machine split needs >= 1 training machine ("
                    << fleet_.size() << " machines, " << holdout
                    << " held out)");

  PnpOptions pnp = base;
  pnp.machine_features = true;
  pnp.seed = hash_combine(base.seed, fleet_.seed());

  std::vector<const MeasurementDb*> dbs;
  dbs.reserve(static_cast<std::size_t>(train_count));
  for (int i = 0; i < train_count; ++i) dbs.push_back(&fleet_.db(i));

  std::vector<int> regions;
  for (int r = 0; r < fleet_.db(0).num_regions(); ++r) regions.push_back(r);

  PnpTuner tuner(fleet_.db(0), pnp);
  tuner.train_power_fleet(dbs, regions);
  return tuner.to_artifact();
}

MachineSplitResult FleetEvaluator::score_on(int index,
                                            const TunerArtifact& art) const {
  const MeasurementDb& db = fleet_.db(index);
  const sim::Simulator& sim = fleet_.sim(index);
  const PnpTuner tuner = PnpTuner::from_artifact(db, art);

  MachineSplitResult res;
  res.machine_index = index;
  res.machine_name = db.machine().name;
  res.fingerprint = hw::machine_fingerprint(db.machine());

  const auto& cap_w = db.space().power_caps();
  const std::size_t cells = static_cast<std::size_t>(db.num_regions()) *
                            static_cast<std::size_t>(db.num_caps());
  std::vector<double> chosen, dflt, best;
  chosen.reserve(cells);
  dflt.reserve(cells);
  best.reserve(cells);
  for (int r = 0; r < db.num_regions(); ++r)
    for (int k = 0; k < db.num_caps(); ++k) {
      const sim::OmpConfig cfg = tuner.predict_power(r, k);
      // Predictions may land off the measurement grid (default-chunk
      // classes) — score through noiseless expected(), like
      // Evaluator::score does.
      const auto& desc = db.region(r).region->desc;
      chosen.push_back(
          sim.expected(desc, cfg, cap_w[static_cast<std::size_t>(k)]).seconds);
      dflt.push_back(db.at_default(r, k).seconds);
      best.push_back(db.best_time(r, k));
    }

  res.overall = split_metrics_over(chosen, dflt, best);
  for (int k = 0; k < db.num_caps(); ++k) {
    std::vector<double> c, d, b;
    for (int r = 0; r < db.num_regions(); ++r) {
      const std::size_t i =
          static_cast<std::size_t>(r) * static_cast<std::size_t>(db.num_caps()) +
          static_cast<std::size_t>(k);
      c.push_back(chosen[i]);
      d.push_back(dflt[i]);
      b.push_back(best[i]);
    }
    res.per_cap.push_back(split_metrics_over(c, d, b));
  }
  return res;
}

std::vector<MachineSplitResult> FleetEvaluator::evaluate(
    int holdout, const PnpOptions& base) const {
  const TunerArtifact art = train(holdout, base);
  std::vector<MachineSplitResult> out;
  out.reserve(static_cast<std::size_t>(holdout));
  for (int i = fleet_.size() - holdout; i < fleet_.size(); ++i)
    out.push_back(score_on(i, art));
  return out;
}

}  // namespace pnp::core
